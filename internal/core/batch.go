package core

// Batch updates: applying many rule insertions and removals as one atomic
// step. The paper observes (§6) that "the main loops over atoms in
// Algorithm 1 and 2 are highly parallelizable"; a batch makes that
// parallelism available on the update path itself. The batch is staged so
// that the only serial work is what must be serial:
//
//  1. validate every operation up front (all-or-nothing semantics);
//  2. create all atoms (CREATE_ATOMS+ for every insertion, |Δ| ≤ 2 each)
//     and clone owner state for split atoms — serial, since splits mutate
//     the shared boundary map M;
//  3. group the operations by atom over the now-final partition: each rule
//     expands to ⟦interval(r)⟧ exactly once, and k batch rules covering
//     the same atom produce one per-atom job instead of k full passes;
//  4. replay each atom's operations against its owner BSTs on a worker
//     pool — atoms are independent, so this fans out with no locking —
//     emitting the net label change per (source, atom);
//  5. apply the net label-bit changes and rule/GC bookkeeping serially.
//
// The resulting Delta is compacted: it records the net difference between
// the labels before and after the whole batch, so a bit that an early
// operation sets and a later operation clears does not appear at all, and
// one incremental loop/black-hole check over the merged delta replaces one
// check per rule. A batch is one atomic update; transient states between
// its operations are not observable and not checked.

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"deltanet/internal/intervalmap"
	"deltanet/internal/netgraph"
)

// BatchOp is one element of a batch: a rule insertion (Insert true, Rule
// fully populated) or a removal (Insert false, only Rule.ID consulted).
// The layout deliberately mirrors trace.Op so replay tools convert
// trivially.
type BatchOp struct {
	Insert bool
	Rule   Rule
}

// InsertOp returns a BatchOp inserting r.
func InsertOp(r Rule) BatchOp { return BatchOp{Insert: true, Rule: r} }

// RemoveOp returns a BatchOp removing the rule with the given id.
func RemoveOp(id RuleID) BatchOp { return BatchOp{Rule: Rule{ID: id}} }

// batchItem is a validated operation: rule is fully resolved by value
// (for removals it is a copy of the rule being removed, so Match is
// authoritative even after the rule's arena slot is recycled). slot is
// the rule-store slot — assigned after validation for inserts, and for
// removals of rules inserted earlier in the same batch, resolved via ref
// (the index of that insert item) once its slot exists.
type batchItem struct {
	insert bool
	slot   int32
	ref    int32 // insert-item index a removal refers to, or -1
	rule   Rule
}

// ApplyBatch applies ops in order as one atomic update, writing the net
// delta-graph of the whole batch into d. Validation runs before any engine
// state changes: on error the engine is untouched (except that drop links
// may have been lazily created for insertions naming NoLink) and d is
// reset but empty.
//
// The per-atom ownership work is deduplicated across the batch — k
// operations covering one atom become a single replay of that atom's owner
// BSTs — and fanned out over a worker pool (workers ≤ 0 selects
// GOMAXPROCS). The produced Delta has Op == OpBatch and compacted
// Added/Removed lists: only bits whose final value differs from their
// pre-batch value appear, in ascending atom order, so downstream
// incremental checks run once over the net change.
//
// With GC enabled, boundary collection is deferred to the end of the
// batch; the final forwarding behaviour matches the sequential execution,
// though atom identifiers may be assigned differently when a batch both
// removes and re-adds a boundary.
func (n *Network) ApplyBatch(ops []BatchOp, d *Delta, workers int) error {
	d.reset(0, OpBatch)
	if len(ops) == 0 {
		return nil
	}

	items, err := n.validateBatch(ops)
	if err != nil {
		return err
	}

	// Allocate arena slots for every insertion before any other phase
	// runs: all allocations precede all releases (which happen in phase
	// 5), so no slot is recycled mid-batch, and the rule arena is
	// read-only while phase 4's workers run. Removals of rules inserted
	// earlier in this batch pick up the slot their insert item received.
	for i := range items {
		if items[i].insert {
			items[i].slot = n.store.alloc(items[i].rule)
		}
	}
	for i := range items {
		if !items[i].insert && items[i].ref >= 0 {
			items[i].slot = items[items[i].ref].slot
		}
	}

	// Phase 2: create every atom the batch needs (serial; splits mutate M)
	// and clone owner state for split atoms exactly as Algorithm 1 does.
	for _, it := range items {
		if !it.insert {
			continue
		}
		n.splitBuf = n.m.CreateAtomsInto(it.rule.Match, n.splitBuf[:0])
		split := n.splitBuf
		d.NewAtoms = append(d.NewAtoms, split...)
		n.splits += int64(len(split))
		for _, sp := range split {
			newOwner := n.ownerAt(sp.New) // may grow the directory: take first
			oldOwner := &n.owner[sp.Old]
			newOwner.cloneFrom(oldOwner)
			for i := range oldOwner.cells {
				c := oldOwner.cells[i]
				top := oldOwner.slab[c.off+c.n-1]
				n.labelOf(n.store.recs[top].Link).Add(int(sp.New))
			}
		}
	}

	// Phase 3: expand every operation over the final partition and group
	// by atom, preserving operation order within each atom's list. Each
	// interval is expanded once; overlapping rules share per-atom jobs.
	// Grouping is a sort over retained (atom, item) pairs rather than a
	// map of slices: churn batches run this path constantly, and the map
	// allocated one bucket slice per touched atom per call.
	n.batchPairs = n.batchPairs[:0]
	maxAtom := intervalmap.AtomID(0)
	for i, it := range items {
		n.atomBuf = n.m.Atoms(it.rule.Match, n.atomBuf[:0])
		for _, alpha := range n.atomBuf {
			n.batchPairs = append(n.batchPairs, atomOp{atom: alpha, item: int32(i)})
			if alpha > maxAtom {
				maxAtom = alpha
			}
		}
	}
	// Pre-grow the owner slice so workers only ever write their own
	// element and never resize shared state.
	for int(maxAtom) >= len(n.owner) {
		n.owner = append(n.owner, ownerAtom{})
	}

	// Sorting by (atom, item) groups each atom's operations contiguously
	// in operation order and makes phase 5 deterministic (ascending atom
	// order), exactly as the former per-atom map + sorted key slice did.
	pairs := n.batchPairs
	slices.SortFunc(pairs, func(a, b atomOp) int {
		if a.atom != b.atom {
			return int(a.atom) - int(b.atom)
		}
		return int(a.item) - int(b.item)
	})
	n.batchRuns = n.batchRuns[:0]
	for i := range pairs {
		if i == 0 || pairs[i].atom != pairs[i-1].atom {
			n.batchRuns = append(n.batchRuns, int32(i))
		}
	}
	n.batchRuns = append(n.batchRuns, int32(len(pairs)))
	numAtoms := len(n.batchRuns) - 1

	// Phase 4: replay each atom's operations in parallel. Jobs write only
	// owner[α] for their own α and emit net label changes into their own
	// result slot, so the pool needs no locks. Result slots are retained
	// across batches and reset by truncation.
	for len(n.batchResults) < numAtoms {
		n.batchResults = append(n.batchResults, atomResult{})
	}
	results := n.batchResults[:numAtoms]
	for i := range results {
		results[i].added = results[i].added[:0]
		results[i].removed = results[i].removed[:0]
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numAtoms {
		workers = numAtoms
	}
	if workers <= 1 {
		for i := 0; i < numAtoms; i++ {
			run := pairs[n.batchRuns[i]:n.batchRuns[i+1]]
			n.replayAtom(run[0].atom, items, run, &results[i], &n.replayTmp)
		}
	} else {
		var wg sync.WaitGroup
		var cursor atomic.Int64
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				var rs replayScratch
				for {
					i := int(cursor.Add(1)) - 1
					if i >= numAtoms {
						return
					}
					run := pairs[n.batchRuns[i]:n.batchRuns[i+1]]
					n.replayAtom(run[0].atom, items, run, &results[i], &rs)
				}
			}()
		}
		wg.Wait()
	}

	// Phase 5: apply the net label-bit changes (serial, deterministic:
	// ascending atom order) and per-rule bookkeeping in operation order.
	for i := range results {
		for _, la := range results[i].removed {
			n.labelOf(la.Link).Remove(int(la.Atom))
			d.Removed = append(d.Removed, la)
		}
		for _, la := range results[i].added {
			n.labelOf(la.Link).Add(int(la.Atom))
			d.Added = append(d.Added, la)
		}
	}
	// Boundary refcounts are updated in operation order, but collection
	// (deleting the bound from M and merging atoms) is deferred until all
	// operations are accounted for: a removal may zero a bound that a
	// later insertion in the same batch re-uses, and collecting eagerly
	// would merge away atoms the insertion's owner state was just laid
	// over.
	var deadBounds []uint64
	for _, it := range items {
		if it.insert {
			// The id→slot index entry was written by alloc above.
			if n.gc {
				n.bounds[it.rule.Match.Lo]++
				n.bounds[it.rule.Match.Hi]++
			}
		} else {
			n.store.releaseSlot(it.rule.ID, it.slot)
			if n.gc {
				for _, b := range [2]uint64{it.rule.Match.Lo, it.rule.Match.Hi} {
					n.bounds[b]--
					if n.bounds[b] == 0 {
						deadBounds = append(deadBounds, b)
					}
				}
			}
		}
	}
	for _, b := range deadBounds {
		// Still zero (no later insertion revived it) and not already
		// collected via a duplicate candidate entry.
		if c, ok := n.bounds[b]; ok && c == 0 {
			delete(n.bounds, b)
			n.releaseBound(b)
		}
	}
	return nil
}

// validateBatch checks every operation against the engine state plus the
// batch's own earlier operations, resolving removals to their live rules
// and drop links for insertions. It mutates nothing but the graph's lazy
// drop links.
func (n *Network) validateBatch(ops []BatchOp) ([]batchItem, error) {
	items := n.batchItems[:0]
	defer func() { n.batchItems = items[:0] }() // retain grown capacity
	// pending tracks ids touched by the batch: the item index of the
	// live pending insert, or -1 after an intra-batch removal.
	if n.batchPending == nil {
		n.batchPending = make(map[RuleID]int32, len(ops))
	}
	clear(n.batchPending)
	pending := n.batchPending
	for i, op := range ops {
		if op.Insert {
			r := op.Rule
			idx, touched := pending[r.ID]
			if touched && idx >= 0 {
				return nil, fmt.Errorf("%w: %d (op %d)", ErrDuplicateRule, r.ID, i)
			}
			if !touched {
				if _, dup := n.store.slotOf(r.ID); dup {
					return nil, fmt.Errorf("%w: %d (op %d)", ErrDuplicateRule, r.ID, i)
				}
			}
			if r.Match.Empty() {
				return nil, fmt.Errorf("%w (op %d)", ErrEmptyMatch, i)
			}
			if !n.space.Contains(r.Match) {
				return nil, fmt.Errorf("%w: %v (op %d)", ErrOutOfSpace, r.Match, i)
			}
			if r.Link == netgraph.NoLink {
				r.Link = n.graph.DropLink(r.Source)
			} else if n.graph.Link(r.Link).Src != r.Source {
				return nil, fmt.Errorf("%w: rule %d source %d link %d (op %d)",
					ErrBadLink, r.ID, r.Source, r.Link, i)
			}
			pending[r.ID] = int32(len(items))
			items = append(items, batchItem{insert: true, ref: -1, rule: r})
		} else {
			id := op.Rule.ID
			idx, touched := pending[id]
			var it batchItem
			if touched {
				if idx < 0 {
					return nil, fmt.Errorf("%w: %d (op %d)", ErrUnknownRule, id, i)
				}
				it = batchItem{ref: idx, rule: items[idx].rule}
			} else {
				slot, ok := n.store.slotOf(id)
				if !ok {
					return nil, fmt.Errorf("%w: %d (op %d)", ErrUnknownRule, id, i)
				}
				it = batchItem{ref: -1, slot: slot, rule: n.store.recs[slot]}
			}
			pending[id] = -1
			items = append(items, it)
		}
	}
	return items, nil
}

// atomResult is one per-atom job's net label changes.
type atomResult struct {
	added   []LinkAtom
	removed []LinkAtom
}

// atomOp is one (atom, operation) incidence from phase 3's interval
// expansion; sorting these by (atom, item) groups each atom's operations
// contiguously while keeping them in operation order.
type atomOp struct {
	atom intervalmap.AtomID
	item int32
}

// replayScratch holds replayAtom's per-call source bookkeeping so a worker
// can replay many atoms without allocating.
type replayScratch struct {
	touched []netgraph.NodeID
	prev    []int32
}

// replayAtom replays the batch operations covering atom alpha against its
// owner BSTs and records the net forwarding change per touched source: one
// Removed entry when the source's pre-batch out-link lost the atom, one
// Added entry when a new out-link gained it. Sources whose owning rule
// changed but whose out-link did not produce no entries — forwarding is
// unchanged, so no downstream check needs to look at them.
func (n *Network) replayAtom(alpha intervalmap.AtomID, items []batchItem, run []atomOp, res *atomResult, rs *replayScratch) {
	oa := &n.owner[alpha]
	// touched preserves first-touch order; prev is parallel to it (the
	// pre-batch owning slot per source, noSlot for none). Batches rarely
	// touch more than a handful of sources per atom, so a linear scan
	// beats a map. The rule arena is read-only during phase 4, so slot
	// dereferences here race with nothing.
	touched := rs.touched[:0]
	prev := rs.prev[:0]
	recordPrev := func(s netgraph.NodeID) {
		for _, t := range touched {
			if t == s {
				return
			}
		}
		touched = append(touched, s)
		prev = append(prev, oa.top(s))
	}
	for _, op := range run {
		it := &items[op.item]
		s := it.rule.Source
		recordPrev(s)
		if it.insert {
			oa.insert(&n.store, s, it.slot, it.rule.key())
		} else {
			oa.remove(&n.store, s, it.rule.key())
		}
	}
	for i, s := range touched {
		after := oa.top(s)
		p := prev[i]
		switch {
		case p == noSlot && after == noSlot:
		case p == noSlot:
			res.added = append(res.added, LinkAtom{Link: n.store.recs[after].Link, Atom: alpha})
		case after == noSlot:
			res.removed = append(res.removed, LinkAtom{Link: n.store.recs[p].Link, Atom: alpha})
		default:
			pl, al := n.store.recs[p].Link, n.store.recs[after].Link
			if pl != al {
				res.removed = append(res.removed, LinkAtom{Link: pl, Atom: alpha})
				res.added = append(res.added, LinkAtom{Link: al, Atom: alpha})
			}
		}
	}
	rs.touched, rs.prev = touched, prev // hand grown capacity back
}
