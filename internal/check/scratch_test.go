package check

import (
	"fmt"
	"testing"

	"deltanet/internal/bitset"
	"deltanet/internal/core"
	"deltanet/internal/netgraph"
)

// scratchNet builds a ring network with overlapping rules so different
// sources reach different atom sets — enough structural variety that a
// stale reach entry, queue stamp, or verdict leaking across scratch
// epochs would change some query's answer.
func scratchNet(t *testing.T) (*core.Network, []netgraph.NodeID) {
	t.Helper()
	g, nodes, links := ring(8)
	n := core.NewNetwork(g, core.Options{})
	id := core.RuleID(1)
	for i := range nodes {
		// Every node forwards a window that shifts around the ring, so
		// reachability narrows with distance and differs per source.
		lo := uint64(i * 10)
		hi := lo + 60
		mustInsert(t, n, core.Rule{ID: id, Source: nodes[i], Link: links[i],
			Match: iv(lo, hi), Priority: 1})
		id++
	}
	// A couple of higher-priority overrides to exercise owner maxima.
	mustInsert(t, n, core.Rule{ID: id, Source: nodes[2], Link: links[2],
		Match: iv(15, 35), Priority: 9})
	id++
	mustInsert(t, n, core.Rule{ID: id, Source: nodes[5], Link: links[5],
		Match: iv(40, 90), Priority: 9})
	return n, nodes
}

// TestScratchEpochIsolation runs many summaries and loop scans over
// per-worker scratches via RunSharded — the monitor's exact fan-out
// shape — and checks every result against a fresh-scratch ground truth.
// Under -race this also proves the per-worker scratches never share
// state across shards.
func TestScratchEpochIsolation(t *testing.T) {
	n, nodes := scratchNet(t)
	V := len(nodes)

	// Ground truth per source, computed with throwaway scratches.
	truth := make([][]*bitset.Set, V)
	for i, from := range nodes {
		truth[i] = make([]*bitset.Set, V)
		for j, to := range nodes {
			truth[i][j] = Reachable(n, from, to)
		}
	}
	wantLoops := len(FindLoopsAll(n))

	const workers = 4
	scs := make([]*Scratch, workers)
	for w := range scs {
		scs[w] = NewScratch()
	}
	jobs := 64 * V
	errs := make([]error, jobs)
	RunSharded(workers, jobs, func(w, i int) {
		sc := scs[w]
		from := nodes[i%V]
		deps := bitset.New(n.Graph().NumLinks())
		reach, _ := ReachSummary(n, from, netgraph.NoNode, deps, sc)
		for j, to := range nodes {
			got := reach[to]
			if got == nil {
				got = bitset.New(0)
			}
			if !got.Equal(truth[i%V][j]) {
				errs[i] = fmt.Errorf("job %d: reach %d->%d = %v, want %v", i, from, to, got, truth[i%V][j])
				return
			}
		}
		// Interleave a full loop scan on the same scratch so walk and
		// verdict epochs churn between fixpoint runs.
		if i%7 == 0 {
			if got := len(FindLoopsAllScratch(n, sc)); got != wantLoops {
				errs[i] = fmt.Errorf("job %d: FindLoopsAll = %d loops, want %d", i, got, wantLoops)
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestScratchGenerationWraparound forces every epoch counter to the
// uint32 edge and checks queries stay correct across the rollover (the
// rollover path zeroes the stamp arrays so ancient stamps cannot alias
// the new epoch).
func TestScratchGenerationWraparound(t *testing.T) {
	n, nodes := scratchNet(t)
	sc := NewScratch()

	deps := bitset.New(n.Graph().NumLinks())
	reach, _ := ReachSummary(n, nodes[0], netgraph.NoNode, deps, sc)
	want := make([]*bitset.Set, len(nodes))
	for j, to := range nodes {
		if reach[to] != nil {
			want[j] = reach[to].Clone()
		}
	}
	wantLoops := len(FindLoopsAllScratch(n, sc))

	sc.fixGen = ^uint32(0) - 1
	sc.walkGen = ^uint32(0) - 1
	sc.verdEpoch = ^uint32(0) - 1
	sc.atomEpoch = ^uint32(0) - 1
	for round := 0; round < 4; round++ { // crosses the wrap mid-loop
		deps.Clear()
		reach, _ := ReachSummary(n, nodes[0], netgraph.NoNode, deps, sc)
		for j, to := range nodes {
			got, want := reach[to], want[j]
			switch {
			case (got == nil) != (want == nil):
				t.Fatalf("round %d: reach[%d] nil-ness flipped", round, to)
			case got != nil && !got.Equal(want):
				t.Fatalf("round %d: reach[%d] = %v, want %v", round, to, got, want)
			}
		}
		if got := len(FindLoopsAllScratch(n, sc)); got != wantLoops {
			t.Fatalf("round %d: FindLoopsAll = %d loops, want %d", round, got, wantLoops)
		}
	}
}

// TestReachSummaryScratchAllocs pins the steady-state allocation cost of
// the monitor's hot query: with a warmed scratch, one ReachSummary may
// allocate only its returned DepRanges and the sort it ships with —
// everything else (reach sets, worklist, visited list, range builder)
// must come from the scratch.
func TestReachSummaryScratchAllocs(t *testing.T) {
	n, nodes := scratchNet(t)
	sc := NewScratch()
	deps := bitset.New(n.Graph().NumLinks())
	for i := 0; i < 4; i++ { // warm the scratch and the deps set
		deps.Clear()
		ReachSummary(n, nodes[0], netgraph.NoNode, deps, sc)
	}
	allocs := testing.AllocsPerRun(200, func() {
		deps.Clear()
		ReachSummary(n, nodes[0], netgraph.NoNode, deps, sc)
	})
	// Exactly one make for the returned DepRanges; everything else
	// (reach sets, worklist, visited list, range builder, the sort)
	// must be allocation-free. A regression in scratch reuse shows up
	// as per-node or per-hop allocations far above this.
	if allocs != 1 {
		t.Fatalf("ReachSummary allocates %.1f objects/op with warmed scratch, want exactly 1", allocs)
	}
}

// TestLoopScanScratchAllocs pins the loop checkers at zero allocations
// when nothing loops — the common steady-state outcome.
func TestLoopScanScratchAllocs(t *testing.T) {
	g := netgraph.New()
	nodes := make([]netgraph.NodeID, 6)
	for i := range nodes {
		nodes[i] = g.AddNode(fmt.Sprintf("n%d", i))
	}
	links := make([]netgraph.LinkID, 5)
	for i := range links { // a line: no loop possible
		links[i] = g.AddLink(nodes[i], nodes[i+1])
	}
	n := core.NewNetwork(g, core.Options{})
	for i, l := range links {
		mustInsert(t, n, core.Rule{ID: core.RuleID(i + 1), Source: nodes[i], Link: l,
			Match: iv(0, 100), Priority: 1})
	}
	sc := NewScratch()
	FindLoopsAllScratch(n, sc) // warm
	if allocs := testing.AllocsPerRun(100, func() {
		if loops := FindLoopsAllScratch(n, sc); loops != nil {
			t.Fatalf("unexpected loops: %v", loops)
		}
	}); allocs != 0 {
		t.Fatalf("loop-free full scan allocates %.1f objects/op with warmed scratch, want 0", allocs)
	}
}

// BenchmarkReachSummaryScratch is the regression guard for the worklist
// and scratch conversion: a long relaxation chain that the old
// `queue = queue[1:]` worklist and per-run reach allocations made both
// slow and allocation-heavy. Run with -benchmem; the interesting number
// is allocs/op, which must stay O(1) in chain length.
func BenchmarkReachSummaryScratch(b *testing.B) {
	const chain = 512
	g := netgraph.New()
	nodes := make([]netgraph.NodeID, chain)
	for i := range nodes {
		nodes[i] = g.AddNode(fmt.Sprintf("n%d", i))
	}
	links := make([]netgraph.LinkID, chain-1)
	for i := range links {
		links[i] = g.AddLink(nodes[i], nodes[i+1])
	}
	n := core.NewNetwork(g, core.Options{})
	for i, l := range links {
		if _, err := n.InsertRule(core.Rule{ID: core.RuleID(i + 1), Source: nodes[i], Link: l,
			Match: iv(0, 1<<16), Priority: 1}); err != nil {
			b.Fatal(err)
		}
	}
	sc := NewScratch()
	deps := bitset.New(g.NumLinks())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deps.Clear()
		ReachSummary(n, nodes[0], netgraph.NoNode, deps, sc)
	}
}
