package monitor

import (
	"testing"
	"time"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
)

// TestBurstCountTrigger: with MaxDeltas=3, the first two updates only
// coalesce (no events, stale cached verdict), and the third flushes the
// merged delta, emitting one event stamped with the coalesced update
// range.
func TestBurstCountTrigger(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	m.SetBurst(BurstConfig{MaxDeltas: 3})
	id, st := m.Register(Reachable{From: nodes[0], To: nodes[3]})
	if st != Violated {
		t.Fatalf("initial status: %v", st)
	}

	// Three inserts complete the a->b->c->d path; only the third (which
	// trips the flush) may report events.
	for i, link := range links {
		ev := mustInsert(t, n, m, core.Rule{ID: core.RuleID(i + 1), Source: nodes[i], Link: link,
			Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
		if i < 2 {
			if len(ev) != 0 {
				t.Fatalf("update %d emitted before flush: %v", i, ev)
			}
			if got := m.Pending(); got != i+1 {
				t.Fatalf("update %d: pending = %d, want %d", i, got, i+1)
			}
			if got, _, _ := m.Status(id); got != Violated {
				t.Fatalf("update %d: cached verdict flipped mid-burst", i)
			}
		} else {
			if len(ev) != 1 || ev[0].Kind != Cleared || ev[0].ID != id {
				t.Fatalf("flush events: %v", ev)
			}
			if ev[0].FirstUpdate != 1 || ev[0].LastUpdate != 3 {
				t.Fatalf("event update range %d:%d, want 1:3", ev[0].FirstUpdate, ev[0].LastUpdate)
			}
		}
	}
	if got, _, _ := m.Status(id); got != Holds {
		t.Fatalf("status after flush: %v", got)
	}
	st2 := m.Stats()
	if st2.Bursts != 1 || st2.Coalesced != 3 || st2.Pending != 0 {
		t.Fatalf("stats %+v: want 1 burst of 3 coalesced deltas, none pending", st2)
	}
	// One evaluation for the whole burst, not one per update.
	if st2.Evaluations != 1 {
		t.Fatalf("stats %+v: want exactly 1 evaluation for the burst", st2)
	}
}

// TestBurstExplicitFlush: Flush evaluates a partial burst immediately and
// is a no-op when nothing is pending.
func TestBurstExplicitFlush(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	m.SetBurst(BurstConfig{MaxDeltas: 100})
	id, _ := m.Register(Reachable{From: nodes[0], To: nodes[1]})

	if ev := m.Flush(); ev != nil {
		t.Fatalf("flush of empty burst: %v", ev)
	}
	if ev := mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1}); len(ev) != 0 {
		t.Fatalf("coalesced update emitted: %v", ev)
	}
	ev := m.Flush()
	if len(ev) != 1 || ev[0].Kind != Cleared || ev[0].ID != id {
		t.Fatalf("flush events: %v", ev)
	}
	if ev[0].FirstUpdate != 1 || ev[0].LastUpdate != 1 {
		t.Fatalf("event update range %d:%d, want 1:1", ev[0].FirstUpdate, ev[0].LastUpdate)
	}
	if m.Pending() != 0 {
		t.Fatalf("pending after flush: %d", m.Pending())
	}
}

// TestBurstAgeTrigger: with only MaxAge set, an Apply that finds the
// pending burst old enough flushes it.
func TestBurstAgeTrigger(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	m.SetBurst(BurstConfig{MaxAge: 5 * time.Millisecond})
	id, _ := m.Register(Reachable{From: nodes[0], To: nodes[1]})

	if ev := mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1}); len(ev) != 0 {
		t.Fatalf("young burst flushed immediately: %v", ev)
	}
	time.Sleep(10 * time.Millisecond)
	// An unrelated update on the other link now trips the age trigger;
	// the flush evaluates the whole merged window.
	ev := mustInsert(t, n, m, core.Rule{ID: 2, Source: nodes[1], Link: links[1],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	if len(ev) != 1 || ev[0].ID != id || ev[0].Kind != Cleared {
		t.Fatalf("age-triggered flush events: %v", ev)
	}
	if ev[0].FirstUpdate != 1 || ev[0].LastUpdate != 2 {
		t.Fatalf("event update range %d:%d, want 1:2", ev[0].FirstUpdate, ev[0].LastUpdate)
	}
}

// TestBurstCancellingUpdates: an insert and its removal coalesced into
// one burst cancel out — the flush must not report a transition, and the
// cached verdict must match a from-scratch evaluation.
func TestBurstCancellingUpdates(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	m.SetBurst(BurstConfig{MaxDeltas: 2})
	id, _ := m.Register(Reachable{From: nodes[0], To: nodes[1]})

	ev := mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	if len(ev) != 0 {
		t.Fatalf("first update emitted: %v", ev)
	}
	ev = mustRemove(t, n, m, 1)
	if len(ev) != 0 {
		t.Fatalf("cancelled burst emitted: %v", ev)
	}
	if got, _, _ := m.Status(id); got != Violated {
		t.Fatalf("status after cancelled burst: %v, want violated", got)
	}
}

// TestRecheckAllAbsorbsPendingBurst: RecheckAll covers everything a
// buffered burst could have dirtied, so the pending burst is dropped and
// verdicts still come out right.
func TestRecheckAllAbsorbsPendingBurst(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	m.SetBurst(BurstConfig{MaxDeltas: 100})
	id, _ := m.Register(Reachable{From: nodes[0], To: nodes[1]})

	mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	ev := m.RecheckAll()
	if len(ev) != 1 || ev[0].ID != id || ev[0].Kind != Cleared {
		t.Fatalf("RecheckAll events: %v", ev)
	}
	if m.Pending() != 0 {
		t.Fatalf("pending after RecheckAll: %d", m.Pending())
	}
	if ev := m.Flush(); ev != nil {
		t.Fatalf("flush after RecheckAll: %v", ev)
	}
}

// TestDisableBurstAbsorbsPending: if bursting is disabled while deltas
// are still buffered and no explicit Flush intervenes, the next Apply
// must absorb the buffered window rather than evaluate against its own
// delta alone.
func TestDisableBurstAbsorbsPending(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	m.SetBurst(BurstConfig{MaxDeltas: 100})
	id, _ := m.Register(Reachable{From: nodes[0], To: nodes[2]})

	// Buffered: the first hop of the a->c path.
	mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	m.SetBurst(BurstConfig{}) // disabled with one delta still pending

	// The completing hop arrives through the now-unbursted path; its
	// evaluation must see the merged window and clear the invariant.
	ev := mustInsert(t, n, m, core.Rule{ID: 2, Source: nodes[1], Link: links[1],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	if len(ev) != 1 || ev[0].ID != id || ev[0].Kind != Cleared {
		t.Fatalf("absorbing apply events: %v", ev)
	}
	if ev[0].FirstUpdate != 1 || ev[0].LastUpdate != 2 {
		t.Fatalf("event update range %d:%d, want 1:2", ev[0].FirstUpdate, ev[0].LastUpdate)
	}
	if m.Pending() != 0 {
		t.Fatalf("pending after absorption: %d", m.Pending())
	}
}
