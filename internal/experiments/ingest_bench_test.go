package experiments

import "testing"

// BenchmarkSustainedIngest is the benchstat artifact behind the
// ingestion acceptance gate: each sub-benchmark drives one front-end
// arm of the sustained-ingest experiment (see ingest.go for the arm
// semantics) and reports its updates/s. Compare line-sync against
// binary-b256 for the gate ratio; line-b256 shows where blind batching
// converges on the engine ceiling.
func BenchmarkSustainedIngest(b *testing.B) {
	const (
		seed  = 1
		batch = 256
		conns = 4
	)
	static, flap := ingestWorkingRules(ingestWorkingSet, seed)
	b.Run("line-sync", func(b *testing.B) {
		const updates = 2 * ingestWorkingSet // round-trip bound; keep iterations short
		var rate float64
		for i := 0; i < b.N; i++ {
			r, err := runIngestLineArm(static, flap, updates, batch, true)
			if err != nil {
				b.Fatal(err)
			}
			rate = r
		}
		b.ReportMetric(rate, "updates/s")
	})
	b.Run("line-b256", func(b *testing.B) {
		const updates = 16 * ingestWorkingSet
		var rate float64
		for i := 0; i < b.N; i++ {
			r, err := runIngestLineArm(static, flap, updates, batch, false)
			if err != nil {
				b.Fatal(err)
			}
			rate = r
		}
		b.ReportMetric(rate, "updates/s")
	})
	b.Run("binary-b256", func(b *testing.B) {
		const updates = 16 * ingestWorkingSet
		var rate float64
		for i := 0; i < b.N; i++ {
			r, _, _, err := runIngestBinaryArm("", static, flap, updates, batch, conns)
			if err != nil {
				b.Fatal(err)
			}
			rate = r
		}
		b.ReportMetric(rate, "updates/s")
	})
}
