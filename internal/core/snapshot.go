package core

import (
	"hash/fnv"
	"sort"

	"deltanet/internal/intervalmap"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// Snapshot captures the live rules of a data plane in a deterministic
// order (by rule id). Replaying a snapshot into a fresh engine over the
// same graph reproduces identical forwarding behaviour (though atom ids
// may differ, since they depend on insertion history — §3.1).
func (n *Network) Snapshot() []Rule {
	out := make([]Rule, 0, n.store.len())
	for _, slot := range n.store.byID {
		out = append(out, n.store.recs[slot])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Restore loads a snapshot into the engine, which must be empty.
func (n *Network) Restore(rules []Rule) error {
	var d Delta
	for _, r := range rules {
		if err := n.insertRule(r, &d); err != nil {
			return err
		}
	}
	return nil
}

// LinkFlows returns the link's current flows as a minimal sorted list of
// address intervals (adjacent atoms merged) — the canonical,
// atom-id-independent description of the link's behaviour.
func (n *Network) LinkFlows(link netgraph.LinkID) []ipnet.Interval {
	label := n.Label(link)
	var out []ipnet.Interval
	n.m.ForEachAtom(func(id intervalmap.AtomID, iv ipnet.Interval) bool {
		if !label.Contains(int(id)) {
			return true
		}
		if k := len(out); k > 0 && out[k-1].Hi == iv.Lo {
			out[k-1].Hi = iv.Hi
		} else {
			out = append(out, iv)
		}
		return true
	})
	return out
}

// BehaviourDigest hashes the network's complete forwarding behaviour in
// canonical form: per link, the merged interval list of its flows. Two
// networks over the same graph have equal digests iff every link carries
// the same addresses, regardless of atom-id assignment or insertion
// order. Useful for order-independence testing and change detection.
func (n *Network) BehaviourDigest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for link := 0; link < n.graph.NumLinks(); link++ {
		flows := n.LinkFlows(netgraph.LinkID(link))
		if len(flows) == 0 {
			continue
		}
		writeU64(uint64(link) | 1<<63) // link marker
		for _, iv := range flows {
			writeU64(iv.Lo)
			writeU64(iv.Hi)
		}
	}
	return h.Sum64()
}

// BehaviourEqual reports whether two networks over graphs with identical
// link numbering forward exactly the same addresses on every link.
func BehaviourEqual(a, b *Network) bool {
	links := a.graph.NumLinks()
	if b.graph.NumLinks() > links {
		links = b.graph.NumLinks()
	}
	for link := 0; link < links; link++ {
		fa := a.LinkFlows(netgraph.LinkID(link))
		fb := b.LinkFlows(netgraph.LinkID(link))
		if len(fa) != len(fb) {
			return false
		}
		for i := range fa {
			if fa[i] != fb[i] {
				return false
			}
		}
	}
	return true
}
