package check

import (
	"math/rand"
	"testing"

	"deltanet/internal/bitset"
	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

func iv(lo, hi uint64) ipnet.Interval { return ipnet.Interval{Lo: lo, Hi: hi} }

// ring builds an n-node unidirectional ring s0 -> s1 -> ... -> s0.
func ring(n int) (*netgraph.Graph, []netgraph.NodeID, []netgraph.LinkID) {
	g := netgraph.New()
	nodes := make([]netgraph.NodeID, n)
	for i := range nodes {
		nodes[i] = g.AddNode(string(rune('a' + i)))
	}
	links := make([]netgraph.LinkID, n)
	for i := range nodes {
		links[i] = g.AddLink(nodes[i], nodes[(i+1)%n])
	}
	return g, nodes, links
}

func mustInsert(t *testing.T, n *core.Network, r core.Rule) *core.Delta {
	t.Helper()
	d, err := n.InsertRule(r)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFindLoopsDeltaDetectsRingLoop(t *testing.T) {
	g, nodes, links := ring(3)
	n := core.NewNetwork(g, core.Options{})
	// First two rules cannot close the cycle.
	for i := 0; i < 2; i++ {
		d := mustInsert(t, n, core.Rule{ID: core.RuleID(i + 1), Source: nodes[i],
			Link: links[i], Match: iv(0, 100), Priority: 1})
		if loops := FindLoopsDelta(n, d); len(loops) != 0 {
			t.Fatalf("premature loop: %+v", loops)
		}
	}
	// The third closes it.
	d := mustInsert(t, n, core.Rule{ID: 3, Source: nodes[2],
		Link: links[2], Match: iv(0, 100), Priority: 1})
	loops := FindLoopsDelta(n, d)
	if len(loops) == 0 {
		t.Fatal("ring loop not detected")
	}
	// The loop visits all three nodes and closes on the first.
	l := loops[0]
	if len(l.Nodes) != 4 || l.Nodes[0] != l.Nodes[3] {
		t.Fatalf("loop shape: %+v", l)
	}
	// Full scan agrees, one loop per affected atom.
	all := FindLoopsAll(n)
	if len(all) == 0 {
		t.Fatal("FindLoopsAll missed ring loop")
	}
}

func TestFindLoopsDeltaPartialOverlap(t *testing.T) {
	// Only the overlap of the three rules loops: [40:60).
	g, nodes, links := ring(3)
	n := core.NewNetwork(g, core.Options{})
	mustInsert(t, n, core.Rule{ID: 1, Source: nodes[0], Link: links[0], Match: iv(0, 60), Priority: 1})
	mustInsert(t, n, core.Rule{ID: 2, Source: nodes[1], Link: links[1], Match: iv(40, 100), Priority: 1})
	d := mustInsert(t, n, core.Rule{ID: 3, Source: nodes[2], Link: links[2], Match: iv(20, 80), Priority: 1})
	loops := FindLoopsDelta(n, d)
	if len(loops) == 0 {
		t.Fatal("overlap loop not detected")
	}
	for _, l := range loops {
		in, ok := n.AtomInterval(l.Atom)
		if !ok {
			t.Fatalf("loop atom %d has no interval", l.Atom)
		}
		if !in.CoveredBy(iv(40, 60)) {
			t.Fatalf("loop atom %v outside the overlap [40:60)", in)
		}
	}
}

func TestLoopBrokenByRemoval(t *testing.T) {
	g, nodes, links := ring(3)
	n := core.NewNetwork(g, core.Options{})
	for i := 0; i < 3; i++ {
		mustInsert(t, n, core.Rule{ID: core.RuleID(i + 1), Source: nodes[i],
			Link: links[i], Match: iv(0, 100), Priority: 1})
	}
	if len(FindLoopsAll(n)) == 0 {
		t.Fatal("setup loop missing")
	}
	if _, err := n.RemoveRule(2); err != nil {
		t.Fatal(err)
	}
	if loops := FindLoopsAll(n); len(loops) != 0 {
		t.Fatalf("loop survived removal: %+v", loops)
	}
}

func TestDropBreaksLoop(t *testing.T) {
	// A higher-priority drop rule on part of the space kills the loop
	// only for that part.
	g, nodes, links := ring(3)
	n := core.NewNetwork(g, core.Options{})
	for i := 0; i < 3; i++ {
		mustInsert(t, n, core.Rule{ID: core.RuleID(i + 1), Source: nodes[i],
			Link: links[i], Match: iv(0, 100), Priority: 1})
	}
	mustInsert(t, n, core.Rule{ID: 4, Source: nodes[1], Link: netgraph.NoLink,
		Match: iv(0, 50), Priority: 9})
	loops := FindLoopsAll(n)
	if len(loops) == 0 {
		t.Fatal("remaining loop for [50:100) missed")
	}
	for _, l := range loops {
		in, _ := n.AtomInterval(l.Atom)
		if in.Overlaps(iv(0, 50)) {
			t.Fatalf("dropped range still loops: %v", in)
		}
	}
}

func TestFindLoopsDeltaNilAndEmpty(t *testing.T) {
	g, nodes, links := ring(2)
	n := core.NewNetwork(g, core.Options{})
	if FindLoopsDelta(n, nil) != nil {
		t.Fatal("nil delta")
	}
	d := mustInsert(t, n, core.Rule{ID: 1, Source: nodes[0], Link: links[0], Match: iv(0, 10), Priority: 1})
	// Low-priority shadowed rule produces an empty delta.
	d2 := mustInsert(t, n, core.Rule{ID: 2, Source: nodes[0], Link: links[0], Match: iv(0, 10), Priority: 0})
	if !d2.Empty() {
		t.Fatalf("shadowed insert delta: %+v", d2)
	}
	if loops := FindLoopsDelta(n, d2); len(loops) != 0 {
		t.Fatal("loops from empty delta")
	}
	_ = d
}

func TestReachable(t *testing.T) {
	// Chain a -> b -> c with narrowing labels: a→b carries [0:100),
	// b→c carries [50:150). Reach(a, c) = [50:100).
	g := netgraph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab := g.AddLink(a, b)
	bc := g.AddLink(b, c)
	n := core.NewNetwork(g, core.Options{})
	mustInsert(t, n, core.Rule{ID: 1, Source: a, Link: ab, Match: iv(0, 100), Priority: 1})
	mustInsert(t, n, core.Rule{ID: 2, Source: b, Link: bc, Match: iv(50, 150), Priority: 1})

	r := Reachable(n, a, c)
	if r.Empty() {
		t.Fatal("nothing reaches c")
	}
	r.ForEach(func(atom int) bool {
		in, _ := n.AtomInterval(intervalmap.AtomID(atom))
		if !in.CoveredBy(iv(50, 100)) {
			t.Fatalf("atom %v escapes [50:100)", in)
		}
		return true
	})
	// Every address in [50:100) is represented.
	for addr := uint64(50); addr < 100; addr += 7 {
		if !r.Contains(int(n.AtomOf(addr))) {
			t.Fatalf("addr %d missing from reach set", addr)
		}
	}
	// Unreachable pair.
	if !Reachable(n, c, a).Empty() {
		t.Fatal("reverse direction should be empty")
	}
}

func TestReachableMultiPathUnion(t *testing.T) {
	// Two disjoint paths a→b→d and a→c→d carrying different ranges;
	// reach(a, d) is their union.
	g := netgraph.New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	ab, ac := g.AddLink(a, b), g.AddLink(a, c)
	bd, cd := g.AddLink(b, d), g.AddLink(c, d)
	n := core.NewNetwork(g, core.Options{})
	mustInsert(t, n, core.Rule{ID: 1, Source: a, Link: ab, Match: iv(0, 50), Priority: 2})
	mustInsert(t, n, core.Rule{ID: 2, Source: a, Link: ac, Match: iv(50, 100), Priority: 1})
	mustInsert(t, n, core.Rule{ID: 3, Source: b, Link: bd, Match: iv(0, 100), Priority: 1})
	mustInsert(t, n, core.Rule{ID: 4, Source: c, Link: cd, Match: iv(0, 100), Priority: 1})
	r := Reachable(n, a, d)
	for addr := uint64(0); addr < 100; addr += 3 {
		if !r.Contains(int(n.AtomOf(addr))) {
			t.Fatalf("addr %d should reach d", addr)
		}
	}
	if r.Contains(int(n.AtomOf(100))) {
		t.Fatal("addr 100 should not reach d")
	}
}

func TestAllPairsMatchesReachable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := netgraph.New()
	var nodes []netgraph.NodeID
	for i := 0; i < 6; i++ {
		nodes = append(nodes, g.AddNode(string(rune('a'+i))))
	}
	var links []netgraph.LinkID
	for i := range nodes {
		for j := range nodes {
			if i != j && rng.Intn(3) == 0 {
				links = append(links, g.AddLink(nodes[i], nodes[j]))
			}
		}
	}
	if len(links) == 0 {
		t.Skip("degenerate random graph")
	}
	n := core.NewNetwork(g, core.Options{})
	for i := 0; i < 40; i++ {
		l := links[rng.Intn(len(links))]
		lo := uint64(rng.Intn(1000))
		r := core.Rule{ID: core.RuleID(i + 1), Source: g.Link(l).Src, Link: l,
			Match: iv(lo, lo+1+uint64(rng.Intn(1000))), Priority: core.Priority(rng.Intn(20))}
		mustInsert(t, n, r)
	}

	ap := AllPairs(n)
	app := AllPairsParallel(n, 4)
	for i := range nodes {
		for j := range nodes {
			if i == j {
				continue
			}
			if !ap[nodes[i]][nodes[j]].Equal(app[nodes[i]][nodes[j]]) {
				t.Fatalf("serial vs parallel differ at (%d,%d)", i, j)
			}
			// Algorithm 3 computes flows that *enter* j from i; the
			// worklist Reachable computes the same quantity.
			want := Reachable(n, nodes[i], nodes[j])
			if !ap[nodes[i]][nodes[j]].Equal(want) {
				t.Fatalf("all-pairs (%d,%d) = %v, reachable = %v",
					i, j, ap[nodes[i]][nodes[j]], want)
			}
		}
	}
	if PairReach(ap, nodes[0], nodes[1]) != ap[nodes[0]][nodes[1]] {
		t.Fatal("PairReach")
	}
}

func TestAffectedByLinkFailure(t *testing.T) {
	// Chain a→b→c; failing b→c affects exactly what b forwards to c,
	// and the subgraph includes the upstream a→b edge restricted to it.
	g := netgraph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab := g.AddLink(a, b)
	bc := g.AddLink(b, c)
	n := core.NewNetwork(g, core.Options{})
	mustInsert(t, n, core.Rule{ID: 1, Source: a, Link: ab, Match: iv(0, 100), Priority: 1})
	mustInsert(t, n, core.Rule{ID: 2, Source: b, Link: bc, Match: iv(50, 150), Priority: 1})

	sub := AffectedByLinkFailure(n, bc)
	if sub.Affected.Empty() {
		t.Fatal("no affected atoms")
	}
	if sub.NumEdges() != 2 { // both ab and bc intersect [50:150)
		t.Fatalf("subgraph edges = %d, want 2", sub.NumEdges())
	}
	// Restriction: the ab edge's subgraph label excludes [0:50).
	for i, lid := range sub.Links {
		if lid == ab {
			if sub.Labels[i].Contains(int(n.AtomOf(10))) {
				t.Fatal("unaffected atom leaked into subgraph")
			}
			if !sub.Labels[i].Contains(int(n.AtomOf(75))) {
				t.Fatal("affected atom missing from subgraph")
			}
		}
	}
	// A link carrying nothing yields an empty subgraph.
	idle := g.AddLink(c, a)
	if s := AffectedByLinkFailure(n, idle); s.NumEdges() != 0 || !s.Affected.Empty() {
		t.Fatal("idle link subgraph not empty")
	}
	// Loops in subgraph: none here.
	if loops := LoopsInSubgraph(n, sub); len(loops) != 0 {
		t.Fatalf("phantom loops: %+v", loops)
	}
}

func TestLoopsInSubgraphFindsLoop(t *testing.T) {
	g, nodes, links := ring(3)
	n := core.NewNetwork(g, core.Options{})
	for i := 0; i < 3; i++ {
		mustInsert(t, n, core.Rule{ID: core.RuleID(i + 1), Source: nodes[i],
			Link: links[i], Match: iv(0, 100), Priority: 1})
	}
	sub := AffectedByLinkFailure(n, links[0])
	loops := LoopsInSubgraph(n, sub)
	if len(loops) == 0 {
		t.Fatal("loop in affected subgraph missed")
	}
}

func TestFindBlackHoles(t *testing.T) {
	// a forwards [0:100) to b; b only forwards [0:50) on. [50:100)
	// vanishes at b: black hole.
	g := netgraph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab := g.AddLink(a, b)
	bc := g.AddLink(b, c)
	n := core.NewNetwork(g, core.Options{})
	mustInsert(t, n, core.Rule{ID: 1, Source: a, Link: ab, Match: iv(0, 100), Priority: 1})
	mustInsert(t, n, core.Rule{ID: 2, Source: b, Link: bc, Match: iv(0, 50), Priority: 1})

	holes := FindBlackHoles(n, nil)
	if len(holes) != 2 {
		// b black-holes [50:100); c receives [0:50) and has no rules.
		t.Fatalf("holes = %+v", holes)
	}
	var atB *BlackHole
	for i := range holes {
		if holes[i].Node == b {
			atB = &holes[i]
		}
	}
	if atB == nil {
		t.Fatal("no hole at b")
	}
	if !atB.Atoms.Contains(int(n.AtomOf(75))) || atB.Atoms.Contains(int(n.AtomOf(25))) {
		t.Fatalf("hole atoms wrong: %v", atB.Atoms)
	}
	// Declaring c a sink hides its hole.
	holes = FindBlackHoles(n, map[netgraph.NodeID]bool{c: true})
	if len(holes) != 1 || holes[0].Node != b {
		t.Fatalf("with sink: %+v", holes)
	}
	// An explicit drop at b is not a black hole.
	mustInsert(t, n, core.Rule{ID: 3, Source: b, Link: netgraph.NoLink, Match: iv(50, 100), Priority: 1})
	holes = FindBlackHoles(n, map[netgraph.NodeID]bool{c: true})
	if len(holes) != 0 {
		t.Fatalf("drop counted as hole: %+v", holes)
	}
}

func TestIsolatedAndWaypoint(t *testing.T) {
	g := netgraph.New()
	a, w, b := g.AddNode("a"), g.AddNode("w"), g.AddNode("b")
	aw := g.AddLink(a, w)
	wb := g.AddLink(w, b)
	n := core.NewNetwork(g, core.Options{})
	mustInsert(t, n, core.Rule{ID: 1, Source: a, Link: aw, Match: iv(0, 100), Priority: 1})
	mustInsert(t, n, core.Rule{ID: 2, Source: w, Link: wb, Match: iv(0, 100), Priority: 1})

	// a and b are NOT isolated.
	if v := Isolated(n, []netgraph.NodeID{a}, []netgraph.NodeID{b}, nil); v == nil {
		t.Fatal("isolation false positive")
	}
	// Restricted to atoms outside [0:100) they are isolated.
	outside := bitset.New(0)
	outside.Add(int(n.AtomOf(200)))
	if v := Isolated(n, []netgraph.NodeID{a}, []netgraph.NodeID{b}, outside); v != nil {
		t.Fatalf("isolation false negative: %v", v)
	}
	// Everything from a to b passes w.
	if bypass := Waypoint(n, a, b, w); !bypass.Empty() {
		t.Fatalf("waypoint bypass: %v", bypass)
	}
	// Add a direct a→b path: bypass appears.
	abl := g.AddLink(a, b)
	mustInsert(t, n, core.Rule{ID: 3, Source: a, Link: abl, Match: iv(200, 300), Priority: 1})
	if bypass := Waypoint(n, a, b, w); bypass.Empty() {
		t.Fatal("bypass missed")
	}
}

// TestDeltaLoopEquivalence cross-validates the incremental loop check
// against full scans over a randomized workload: after every insertion the
// set "some loop exists" must agree.
func TestDeltaLoopEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g, nodes, links := ring(5)
	// Extra chords make loops likely but not certain.
	for i := 0; i < 5; i++ {
		links = append(links, g.AddLink(nodes[rng.Intn(5)], nodes[rng.Intn(5)]))
	}
	n := core.NewNetwork(g, core.Options{})
	haveLoop := false
	for i := 0; i < 120; i++ {
		l := links[rng.Intn(len(links))]
		src := g.Link(l).Src
		if g.Link(l).Dst == src {
			continue
		}
		lo := uint64(rng.Intn(500))
		d, err := n.InsertRule(core.Rule{ID: core.RuleID(i + 1), Source: src, Link: l,
			Match: iv(lo, lo+1+uint64(rng.Intn(500))), Priority: core.Priority(rng.Intn(9))})
		if err != nil {
			t.Fatal(err)
		}
		newLoops := FindLoopsDelta(n, d)
		allLoops := FindLoopsAll(n)
		if len(newLoops) > 0 && len(allLoops) == 0 {
			t.Fatalf("op %d: delta reports loop, full scan none", i)
		}
		if !haveLoop && len(allLoops) > 0 && len(newLoops) == 0 {
			t.Fatalf("op %d: first loop appeared but delta check missed it", i)
		}
		haveLoop = len(allLoops) > 0
	}
}
