// Command dngen generates the paper's datasets (§4.2, Table 2) as
// replayable trace files.
//
// Usage:
//
//	dngen [-scale f] [-out file] berkeley|inet|rf1755|rf3257|rf6461|airtel1|airtel2|4switch
//
// With no -out the trace is written to stdout. Generation is deterministic
// per (dataset, scale).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deltanet/internal/datasets"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = laptop default)")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: dngen [-scale f] [-out file] <%s>\n",
			strings.Join(datasets.Names(), "|"))
		os.Exit(2)
	}
	name := flag.Arg(0)
	tr, err := datasets.Build(name, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	info := datasets.Describe(tr)
	fmt.Fprintf(os.Stderr, "%s: %d nodes, %d links, %d operations (%d inserts)\n",
		info.Name, info.Nodes, info.Links, info.Operations, info.Inserts)
}
