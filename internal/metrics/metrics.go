// Package metrics is deltanet's stdlib-only observability core: atomic
// counters, gauges, and fixed-bucket latency histograms, registered by
// name in a Registry that renders the Prometheus text exposition format
// (version 0.0.4) for scraping from the dnserve admin endpoint.
//
// Everything on the hot path is a plain atomic word: Observe/Inc/Add
// never allocate, never take a lock, and the histogram's bucket storage
// is a pointer-free fixed array (annotated //deltanet:pointerfree and
// enforced by dnlint), so a process holding thousands of metrics adds
// nothing to GC scan work. Registration and rendering take the registry
// lock; both are off the update path.
//
// Values that already live elsewhere (the monitor's Stats counters, the
// engine's rule/atom counts) are exported with the *Func variants, which
// read the source of truth at scrape time instead of double-accounting.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry is a named collection of metrics rendered together. The zero
// value is not usable; call NewRegistry.
//
// Lock order: mu → CounterVec.mu → HistogramVec.mu (rendering holds mu
// while visiting each vec's label space).
type Registry struct {
	//deltanet:lockrank 10
	mu     sync.RWMutex
	fams   []*family
	byName map[string]bool
}

// family is one registered metric: a # HELP / # TYPE header plus a
// sample renderer.
type family struct {
	name, help, typ string
	render          func(w *bufio.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]bool{}}
}

// add registers a family, panicking on a duplicate or invalid name —
// metric registration is program structure, not input, so a collision is
// a bug worth failing loudly on.
func (r *Registry) add(f *family) {
	if !validName(f.name) {
		panic("metrics: invalid metric name " + strconv.Quote(f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[f.name] {
		panic("metrics: duplicate metric name " + f.name)
	}
	r.byName[f.name] = true
	r.fams = append(r.fams, f)
}

// validName reports whether s is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// WriteText renders every registered metric in Prometheus text
// exposition format. Rendering reads each metric atomically but the
// exposition as a whole is not a consistent snapshot — standard for
// Prometheus scrapes.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	fams := append([]*family(nil), r.fams...)
	r.mu.RUnlock()
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		f.render(bw)
	}
	return bw.Flush()
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// escapeLabel escapes a label value: backslash, newline, double quote.
func escapeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		case '"':
			out = append(out, '\\', '"')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, typ: "counter", render: func(w *bufio.Writer) {
		fmt.Fprintf(w, "%s %d\n", name, c.v.Load())
	}})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotonic counts that already live elsewhere (monitor
// Stats, engine totals).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, typ: "counter", render: func(w *bufio.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn()))
	}})
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, help: help, typ: "gauge", render: func(w *bufio.Writer) {
		fmt.Fprintf(w, "%s %d\n", name, g.v.Load())
	}})
	return g
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, typ: "gauge", render: func(w *bufio.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn()))
	}})
}

// VecSample is one labelled value of a *FuncVec metric.
type VecSample struct {
	Label string
	Value float64
}

// GaugeFuncVec registers a gauge family whose labelled samples are read
// from fn at scrape time (e.g. per-shard index population).
func (r *Registry) GaugeFuncVec(name, help, label string, fn func() []VecSample) {
	r.add(&family{name: name, help: help, typ: "gauge", render: func(w *bufio.Writer) {
		for _, s := range fn() {
			fmt.Fprintf(w, "%s{%s=%q} %s\n", name, label, escapeLabel(s.Label), formatFloat(s.Value))
		}
	}})
}

// CounterVec is a family of counters distinguished by one label (e.g.
// commands by verb). With creates or returns the counter for a value;
// the returned *Counter is cacheable and lock-free to update.
type CounterVec struct {
	name, label string
	//deltanet:lockrank 20
	mu sync.RWMutex
	m  map[string]*Counter
}

// With returns the counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[value]; c == nil {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

// CounterVec registers and returns a labelled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, label: label, m: map[string]*Counter{}}
	r.add(&family{name: name, help: help, typ: "counter", render: func(w *bufio.Writer) {
		v.mu.RLock()
		keys := make([]string, 0, len(v.m))
		for k := range v.m {
			keys = append(keys, k)
		}
		v.mu.RUnlock()
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, escapeLabel(k), v.With(k).v.Load())
		}
	}})
	return v
}

// HistogramVec is a family of histograms distinguished by one label
// (e.g. update-pipeline stages).
type HistogramVec struct {
	name, label string
	//deltanet:lockrank 30
	mu sync.RWMutex
	m  map[string]*Histogram
}

// With returns the histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.m[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.m[value]; h == nil {
		h = &Histogram{}
		v.m[value] = h
	}
	return h
}

// HistogramVec registers and returns a labelled histogram family.
func (r *Registry) HistogramVec(name, help, label string) *HistogramVec {
	v := &HistogramVec{name: name, label: label, m: map[string]*Histogram{}}
	r.add(&family{name: name, help: help, typ: "histogram", render: func(w *bufio.Writer) {
		v.mu.RLock()
		keys := make([]string, 0, len(v.m))
		for k := range v.m {
			keys = append(keys, k)
		}
		v.mu.RUnlock()
		sort.Strings(keys)
		for _, k := range keys {
			v.With(k).renderLabelled(w, name, fmt.Sprintf("%s=%q", v.label, escapeLabel(k)))
		}
	}})
	return v
}

// Histogram registers and returns a fixed-bucket latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.add(&family{name: name, help: help, typ: "histogram", render: func(w *bufio.Writer) {
		h.renderLabelled(w, name, "")
	}})
	return h
}
