// Package clean is the wireproto analyzer's clean fixture: registry,
// dispatch code, README table and fuzz seeds agree exactly. "quit" is
// registry-only (handled by a bare comparison, not a switch), which is
// allowed — it still must be documented and fuzzed.
package clean

//deltanet:dispatch
var commands = []string{
	"get",
	"put",
	"quit",
}

//deltanet:dispatch
func dispatch(cmd string) string {
	if cmd == "quit" {
		return "bye"
	}
	switch cmd {
	case "get":
		return "ok get"
	case "put":
		return "ok put"
	}
	return "err"
}
