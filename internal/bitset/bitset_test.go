package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddContainsRemove(t *testing.T) {
	s := New(0)
	vals := []int{0, 1, 63, 64, 65, 127, 128, 1000}
	for _, v := range vals {
		s.Add(v)
	}
	for _, v := range vals {
		if !s.Contains(v) {
			t.Fatalf("missing %d", v)
		}
	}
	for _, v := range []int{2, 62, 66, 999, 1001} {
		if s.Contains(v) {
			t.Fatalf("spurious %d", v)
		}
	}
	if s.Len() != len(vals) {
		t.Fatalf("Len=%d want %d", s.Len(), len(vals))
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Remove failed")
	}
	s.Remove(64) // idempotent
	s.Remove(100000)
	if s.Len() != len(vals)-1 {
		t.Fatalf("Len=%d", s.Len())
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Set
	s.Add(5)
	if !s.Contains(5) || s.Len() != 1 {
		t.Fatal("zero value not usable")
	}
}

func TestEmptyAndClear(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatal("New set not empty")
	}
	s.Add(50)
	if s.Empty() {
		t.Fatal("nonempty set reported empty")
	}
	s.Clear()
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestSetOps(t *testing.T) {
	a := FromSlice([]int{1, 2, 3, 100})
	b := FromSlice([]int{2, 3, 4, 200})

	u := Union(a, b)
	for _, v := range []int{1, 2, 3, 4, 100, 200} {
		if !u.Contains(v) {
			t.Fatalf("union missing %d", v)
		}
	}
	if u.Len() != 6 {
		t.Fatalf("union Len=%d", u.Len())
	}

	i := Intersect(a, b)
	if i.Len() != 2 || !i.Contains(2) || !i.Contains(3) {
		t.Fatalf("intersect wrong: %v", i)
	}

	d := Difference(a, b)
	if d.Len() != 2 || !d.Contains(1) || !d.Contains(100) {
		t.Fatalf("difference wrong: %v", d)
	}

	// Original sets untouched.
	if a.Len() != 4 || b.Len() != 4 {
		t.Fatal("operands mutated")
	}
}

func TestInPlaceOpsDifferentSizes(t *testing.T) {
	small := FromSlice([]int{1})
	big := FromSlice([]int{1, 500})

	s := small.Clone()
	s.UnionWith(big)
	if !s.Contains(500) {
		t.Fatal("UnionWith did not grow")
	}

	s = big.Clone()
	s.IntersectWith(small)
	if s.Contains(500) || !s.Contains(1) {
		t.Fatalf("IntersectWith with smaller operand: %v", s)
	}

	s = small.Clone()
	s.IntersectWith(big)
	if !s.Contains(1) || s.Len() != 1 {
		t.Fatalf("IntersectWith with larger operand: %v", s)
	}

	s = small.Clone()
	s.DifferenceWith(big)
	if !s.Empty() {
		t.Fatalf("DifferenceWith: %v", s)
	}
}

func TestOrAnd(t *testing.T) {
	a := FromSlice([]int{1, 2, 3})
	b := FromSlice([]int{2, 3, 4})
	s := FromSlice([]int{9})
	if !s.OrAnd(a, b) {
		t.Fatal("OrAnd should report change")
	}
	want := FromSlice([]int{2, 3, 9})
	if !s.Equal(want) {
		t.Fatalf("OrAnd: got %v want %v", s, want)
	}
	if s.OrAnd(a, b) {
		t.Fatal("second OrAnd should report no change")
	}
	// Growth when target is smaller than operands.
	tiny := New(0)
	x := FromSlice([]int{300})
	if !tiny.OrAnd(x, x) || !tiny.Contains(300) {
		t.Fatal("OrAnd did not grow target")
	}
}

func TestIntersects(t *testing.T) {
	a := FromSlice([]int{1, 100})
	b := FromSlice([]int{100})
	c := FromSlice([]int{2, 200})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("Intersects false negative")
	}
	if a.Intersects(c) {
		t.Fatal("Intersects false positive")
	}
	if a.Intersects(New(0)) {
		t.Fatal("Intersects with empty")
	}
}

func TestEqualAndSubset(t *testing.T) {
	a := FromSlice([]int{1, 2, 3})
	b := FromSlice([]int{1, 2, 3})
	b.Add(5000)
	b.Remove(5000) // trailing zero words must not break Equal
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("Equal with trailing zeros")
	}
	b.Add(4)
	if a.Equal(b) {
		t.Fatal("Equal false positive")
	}
	if !a.IsSubset(b) {
		t.Fatal("IsSubset false negative")
	}
	if b.IsSubset(a) {
		t.Fatal("IsSubset false positive")
	}
	big := FromSlice([]int{1, 2, 3, 900})
	if big.IsSubset(a) {
		t.Fatal("IsSubset with larger operand")
	}
}

func TestForEachAndSlice(t *testing.T) {
	vals := []int{5, 1, 300, 64}
	s := FromSlice(vals)
	got := s.Slice()
	want := []int{1, 5, 64, 300}
	if len(got) != len(want) {
		t.Fatalf("Slice=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice=%v want %v", got, want)
		}
	}
	// Early termination.
	n := 0
	s.ForEach(func(int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("ForEach early stop: n=%d", n)
	}
}

func TestMinMax(t *testing.T) {
	s := New(0)
	if s.Min() != -1 || s.Max() != -1 {
		t.Fatal("Min/Max of empty set")
	}
	s.Add(200)
	s.Add(7)
	s.Add(64)
	if s.Min() != 7 || s.Max() != 200 {
		t.Fatalf("Min=%d Max=%d", s.Min(), s.Max())
	}
}

func TestCopy(t *testing.T) {
	a := FromSlice([]int{1, 2, 900})
	b := FromSlice([]int{5})
	b.Copy(a)
	if !b.Equal(a) {
		t.Fatal("Copy mismatch")
	}
	b.Add(6)
	if a.Contains(6) {
		t.Fatal("Copy aliases source")
	}
}

func TestString(t *testing.T) {
	s := FromSlice([]int{2, 1})
	if got := s.String(); got != "{1, 2}" {
		t.Fatalf("String=%q", got)
	}
	if got := New(0).String(); got != "{}" {
		t.Fatalf("empty String=%q", got)
	}
}

// Property: set semantics match a reference map under random ops.
func TestPropertyAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(0)
	ref := map[int]bool{}
	for i := 0; i < 50000; i++ {
		v := rng.Intn(1 << 12)
		if rng.Intn(2) == 0 {
			s.Add(v)
			ref[v] = true
		} else {
			s.Remove(v)
			delete(ref, v)
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len=%d want %d", s.Len(), len(ref))
	}
	for v := range ref {
		if !s.Contains(v) {
			t.Fatalf("missing %d", v)
		}
	}
	s.ForEach(func(v int) bool {
		if !ref[v] {
			t.Fatalf("spurious %d", v)
		}
		return true
	})
}

// Property: De Morgan-ish algebra — |A ∪ B| = |A| + |B| − |A ∩ B|.
func TestPropertyInclusionExclusion(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(0), New(0)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		return Union(a, b).Len() == a.Len()+b.Len()-Intersect(a, b).Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: difference then union with the intersection reconstructs A.
func TestPropertyDifferenceReconstruction(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(0), New(0)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		r := Difference(a, b)
		r.UnionWith(Intersect(a, b))
		return r.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(i & (1<<20 - 1))
	}
}

func BenchmarkUnionWith4096(b *testing.B) {
	x := New(4096)
	y := New(4096)
	for i := 0; i < 4096; i += 3 {
		y.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.UnionWith(y)
	}
}

func BenchmarkOrAnd4096(b *testing.B) {
	x := New(4096)
	y := New(4096)
	z := New(4096)
	for i := 0; i < 4096; i += 2 {
		y.Add(i)
	}
	for i := 0; i < 4096; i += 3 {
		z.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.OrAnd(y, z)
	}
}

func TestNextSet(t *testing.T) {
	s := FromSlice([]int{3, 64, 65, 200})
	cases := []struct{ from, want int }{
		{-5, 3}, {0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 65}, {66, 200},
		{200, 200}, {201, -1}, {10_000, -1},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := New(0).NextSet(0); got != -1 {
		t.Errorf("empty NextSet(0) = %d, want -1", got)
	}
	// Walking via NextSet enumerates exactly the elements.
	var walked []int
	for v := s.NextSet(0); v >= 0; v = s.NextSet(v + 1) {
		walked = append(walked, v)
	}
	if want := s.Slice(); !slicesEqual(walked, want) {
		t.Errorf("NextSet walk %v, want %v", walked, want)
	}
}

func TestAndOf(t *testing.T) {
	a := FromSlice([]int{1, 5, 70, 128, 300})
	b := FromSlice([]int{5, 70, 301})
	s := New(512) // oversized scratch: AndOf must shrink it
	s.Add(400)    // stale content must vanish
	s.AndOf(a, b)
	if want := Intersect(a, b); !s.Equal(want) {
		t.Errorf("AndOf = %v, want %v", s, want)
	}
	// Different operand sizes, reusing the same scratch.
	s.AndOf(b, a)
	if want := Intersect(a, b); !s.Equal(want) {
		t.Errorf("AndOf reversed = %v, want %v", s, want)
	}
	s.AndOf(a, New(0))
	if !s.Empty() {
		t.Errorf("AndOf with empty = %v, want empty", s)
	}
}

func slicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
