package ipnet

import "testing"

// FuzzParsePrefix checks that every accepted input yields a well-formed
// prefix that survives round-trips: its interval lies inside the IPv4
// space, re-parsing its canonical String form reproduces it, and
// PrefixFromInterval inverts Interval exactly.
func FuzzParsePrefix(f *testing.F) {
	for _, seed := range []string{
		"10.0.0.0/8",
		"0.0.0.10/31",
		"255.255.255.255",
		"1.2.3.4/0",
		"0.0.0.0/32",
		"192.168.100.14/24",
		"1.2.3.4/33",  // length out of range
		"1.2.3/8",     // too few octets
		"1.2.3.4.5/8", // too many octets
		"1.2.3.4/",    // empty length
		"256.0.0.1",   // octet out of range
		"",
		"/8",
		"a.b.c.d/8",
		"1.2.3.4/08",
		" 1.2.3.4/8",
		"10.0.0.0/8/8",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return // rejected inputs only need to not crash
		}
		if p.Bits != 32 || p.Len < 0 || p.Len > 32 {
			t.Fatalf("ParsePrefix(%q) = malformed %+v", s, p)
		}
		iv := p.Interval()
		if !IPv4.Contains(iv) {
			t.Fatalf("ParsePrefix(%q): interval %v outside IPv4 space", s, iv)
		}
		if p.Addr&(iv.Size()-1) != 0 {
			t.Fatalf("ParsePrefix(%q): host bits not masked in %+v", s, p)
		}
		again, err := ParsePrefix(p.String())
		if err != nil || again != p {
			t.Fatalf("ParsePrefix(%q) = %v, but reparse of %q = %v, %v",
				s, p, p.String(), again, err)
		}
		back, ok := PrefixFromInterval(IPv4, iv)
		if !ok || back != p {
			t.Fatalf("PrefixFromInterval(%v) = %v, %v; want %v", iv, back, ok, p)
		}
	})
}
