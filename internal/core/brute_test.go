package core

// Differential testing of the Delta-net engine against a brute-force
// single-packet data-plane simulator. The simulator evaluates forwarding
// the way a switch would — scan all rules at a node, pick the
// highest-priority match — with none of the engine's atom machinery, so
// agreement on randomized workloads validates the label-soundness and
// label-completeness invariants (DESIGN.md §3.1 invariant 3).

import (
	"math/rand"
	"testing"

	"deltanet/internal/netgraph"
)

// brute is the reference data plane.
type brute struct {
	rules map[RuleID]Rule
}

func newBrute() *brute { return &brute{rules: map[RuleID]Rule{}} }

func (b *brute) insert(r Rule)    { b.rules[r.ID] = r }
func (b *brute) remove(id RuleID) { delete(b.rules, id) }

// forward returns the link taken by a packet addressed to addr at node v,
// or NoLink, using linear scan and the engine's tie-break (priority, then
// rule id).
func (b *brute) forward(v netgraph.NodeID, addr uint64) netgraph.LinkID {
	var best *Rule
	for id := range b.rules {
		r := b.rules[id]
		if r.Source != v || !r.Match.Contains(addr) {
			continue
		}
		if best == nil || cmpPrioKey(best.key(), r.key()) < 0 {
			cp := r
			best = &cp
		}
	}
	if best == nil {
		return netgraph.NoLink
	}
	return best.Link
}

// samplePoints returns probe addresses covering every behaviour region:
// all rule bounds, their neighbours, and midpoints.
func (b *brute) samplePoints() []uint64 {
	seen := map[uint64]bool{0: true}
	add := func(a uint64) {
		if a < 1<<32 {
			seen[a] = true
		}
	}
	for _, r := range b.rules {
		add(r.Match.Lo)
		add(r.Match.Hi)
		if r.Match.Lo > 0 {
			add(r.Match.Lo - 1)
		}
		add(r.Match.Lo + (r.Match.Hi-r.Match.Lo)/2)
	}
	out := make([]uint64, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	return out
}

// checkAgainstBrute compares engine forwarding with the reference at every
// sample point and node, and verifies that labels agree with forwarding.
func checkAgainstBrute(t *testing.T, n *Network, b *brute, nodes []netgraph.NodeID) {
	t.Helper()
	g := n.Graph()
	for _, addr := range b.samplePoints() {
		atom := n.AtomOf(addr)
		for _, v := range nodes {
			want := b.forward(v, addr)
			got := n.ForwardLink(v, atom)
			// The brute simulator models explicit drop rules with
			// their resolved drop link, so compare directly.
			if got != want {
				t.Fatalf("node %s addr %d: engine link %d, brute link %d",
					g.NodeName(v), addr, got, want)
			}
			// Label consistency: the atom is on exactly the chosen
			// out-link of v.
			for _, l := range g.Out(v) {
				has := n.Label(l).Contains(int(atom))
				if has != (l == want) {
					t.Fatalf("node %s addr %d atom %d: label bit on link %d = %v, forwarding link %d",
						g.NodeName(v), addr, atom, l, has, want)
				}
			}
		}
	}
}

// buildRandomTopology creates a small dense topology for randomized tests.
func buildRandomTopology(rng *rand.Rand, nodes int) (*netgraph.Graph, []netgraph.NodeID, []netgraph.LinkID) {
	g := netgraph.New()
	ids := make([]netgraph.NodeID, nodes)
	for i := range ids {
		ids[i] = g.AddNode(string(rune('A' + i)))
	}
	var links []netgraph.LinkID
	for i := range ids {
		for j := range ids {
			if i != j {
				links = append(links, g.AddLink(ids[i], ids[j]))
			}
		}
	}
	return g, ids, links
}

func runRandomWorkload(t *testing.T, seed int64, gc bool, ops int) {
	rng := rand.New(rand.NewSource(seed))
	g, nodes, _ := buildRandomTopology(rng, 5)
	n := NewNetwork(g, Options{GC: gc})
	b := newBrute()

	live := []RuleID{}
	nextID := RuleID(1)
	const addrSpace = 1 << 16 // small space provokes heavy overlap

	for i := 0; i < ops; i++ {
		insert := len(live) == 0 || rng.Intn(100) < 60
		if insert {
			src := nodes[rng.Intn(len(nodes))]
			var link netgraph.LinkID = netgraph.NoLink
			if rng.Intn(10) > 0 { // 10% drop rules
				outs := g.Out(src)
				// Only choose real (non-drop) out links of src.
				link = outs[rng.Intn(len(outs))]
				if g.IsDropLink(link) {
					link = netgraph.NoLink
				}
			}
			lo := uint64(rng.Intn(addrSpace))
			hi := lo + 1 + uint64(rng.Intn(addrSpace/4))
			r := Rule{ID: nextID, Source: src, Link: link,
				Match: iv(lo, hi), Priority: Priority(rng.Intn(50))}
			nextID++
			d, err := n.InsertRule(r)
			if err != nil {
				t.Fatal(err)
			}
			if len(d.NewAtoms) > 2 {
				t.Fatalf("|Δ| = %d > 2", len(d.NewAtoms))
			}
			// Mirror into the reference with the drop link resolved.
			rr := r
			if rr.Link == netgraph.NoLink {
				rr.Link = g.DropLink(src)
			}
			b.insert(rr)
			live = append(live, r.ID)
		} else {
			k := rng.Intn(len(live))
			id := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if _, err := n.RemoveRule(id); err != nil {
				t.Fatal(err)
			}
			b.remove(id)
		}
		if i%53 == 0 {
			checkAgainstBrute(t, n, b, nodes)
			if msg := n.CheckInvariants(); msg != "" {
				t.Fatalf("op %d: %s", i, msg)
			}
		}
	}
	checkAgainstBrute(t, n, b, nodes)
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatalf("final: %s", msg)
	}
}

func TestRandomizedVsBruteForce(t *testing.T) {
	runRandomWorkload(t, 1, false, 400)
}

func TestRandomizedVsBruteForceGC(t *testing.T) {
	runRandomWorkload(t, 2, true, 400)
}

func TestRandomizedVsBruteForceMoreSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized test")
	}
	for seed := int64(3); seed < 9; seed++ {
		seed := seed
		gc := seed%2 == 0
		t.Run("", func(t *testing.T) { runRandomWorkload(t, seed, gc, 250) })
	}
}

// TestOrderIndependenceOfLabels: inserting the same rule set in different
// orders yields identical forwarding behaviour (DESIGN.md invariant 4).
func TestOrderIndependenceOfLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g, nodes, links := buildRandomTopology(rng, 4)
	rules := make([]Rule, 60)
	for i := range rules {
		lo := uint64(rng.Intn(5000))
		rules[i] = Rule{
			ID:       RuleID(i + 1),
			Source:   g.Link(links[rng.Intn(len(links))]).Src,
			Match:    iv(lo, lo+1+uint64(rng.Intn(5000))),
			Priority: Priority(rng.Intn(40)),
		}
	}
	// Link must originate at source: fix up.
	for i := range rules {
		outs := g.Out(rules[i].Source)
		rules[i].Link = outs[rng.Intn(len(outs))]
	}

	build := func(order []int) *Network {
		n := NewNetwork(g, Options{})
		for _, j := range order {
			if _, err := n.InsertRule(rules[j]); err != nil {
				t.Fatal(err)
			}
		}
		return n
	}
	base := build(rng.Perm(len(rules)))
	for trial := 0; trial < 4; trial++ {
		other := build(rng.Perm(len(rules)))
		// Compare per-address forwarding on every node (atom ids may
		// differ between orders; behaviour may not).
		for addr := uint64(0); addr < 10000; addr += 37 {
			for _, v := range nodes {
				if base.ForwardLink(v, base.AtomOf(addr)) != other.ForwardLink(v, other.AtomOf(addr)) {
					t.Fatalf("trial %d: forwarding differs at node %d addr %d", trial, v, addr)
				}
			}
		}
	}
}

func BenchmarkInsertRuleDense(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, _, links := buildRandomTopology(rng, 8)
	n := NewNetwork(g, Options{})
	b.ResetTimer()
	var d Delta
	for i := 0; i < b.N; i++ {
		l := links[rng.Intn(len(links))]
		lo := uint64(rng.Intn(1 << 24))
		r := Rule{ID: RuleID(i + 1), Source: g.Link(l).Src, Link: l,
			Match: iv(lo, lo+1+uint64(rng.Intn(1<<20))), Priority: Priority(rng.Intn(1000))}
		if err := n.InsertRuleInto(r, &d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertRemoveChurnGC(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, _, links := buildRandomTopology(rng, 8)
	n := NewNetwork(g, Options{GC: true})
	var d Delta
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := links[rng.Intn(len(links))]
		lo := uint64(rng.Intn(1 << 24))
		r := Rule{ID: RuleID(i + 1), Source: g.Link(l).Src, Link: l,
			Match: iv(lo, lo+1+uint64(rng.Intn(1<<20))), Priority: Priority(rng.Intn(1000))}
		if err := n.InsertRuleInto(r, &d); err != nil {
			b.Fatal(err)
		}
		if err := n.RemoveRuleInto(r.ID, &d); err != nil {
			b.Fatal(err)
		}
	}
}
