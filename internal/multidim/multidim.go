// Package multidim extends Delta-net's atom representation to rules that
// match several range-based header fields at once — the direction the
// paper's §6 marks for future work: "since a naive implementation of
// Delta-net is exponential in the number of range-based packet header
// fields (as is Veriflow's), it would be interesting to guide further
// developments into multi-range support in higher dimensions using the
// 'overlapping degree' among rules."
//
// This package implements that baseline faithfully: one boundary map M
// per dimension, atoms per dimension, and forwarding state keyed by atom
// *tuples* (the cross product). The exponential blow-up is inherent to
// the approach and surfaces in TupleCount; the package exposes
// OverlapDegree so users can estimate it up front, as the paper suggests.
// Algorithms 1 and 2 generalize hop-for-hop: CREATE_ATOMS+ runs per
// dimension (still |Δ| ≤ 2 per dimension), atom splits copy owner state
// for every tuple containing the split atom, and ownership reassignment
// iterates the tuple cross product of the rule's per-dimension atom
// lists.
package multidim

import (
	"errors"
	"fmt"

	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
	"deltanet/internal/rbtree"
)

// Rule matches a conjunction of per-dimension intervals.
type Rule struct {
	ID       core.RuleID
	Source   netgraph.NodeID
	Link     netgraph.LinkID // NoLink drops
	Match    []ipnet.Interval
	Priority core.Priority
}

type prioKey struct {
	prio core.Priority
	id   core.RuleID
}

func cmpPrioKey(a, b prioKey) int {
	switch {
	case a.prio < b.prio:
		return -1
	case a.prio > b.prio:
		return 1
	case a.id < b.id:
		return -1
	case a.id > b.id:
		return 1
	default:
		return 0
	}
}

type prioTree = rbtree.Tree[prioKey, *Rule]

func newPrioTree() *prioTree { return rbtree.New[prioKey, *Rule](cmpPrioKey) }

// tuple encodes one atom per dimension as a compact map key.
type tuple string

func makeTuple(atoms []intervalmap.AtomID) tuple {
	b := make([]byte, len(atoms)*4)
	for i, a := range atoms {
		b[i*4] = byte(a)
		b[i*4+1] = byte(a >> 8)
		b[i*4+2] = byte(a >> 16)
		b[i*4+3] = byte(a >> 24)
	}
	return tuple(b)
}

func (t tuple) atom(dim int) intervalmap.AtomID {
	i := dim * 4
	return intervalmap.AtomID(uint32(t[i]) | uint32(t[i+1])<<8 | uint32(t[i+2])<<16 | uint32(t[i+3])<<24)
}

func (t tuple) with(dim int, a intervalmap.AtomID) tuple {
	b := []byte(t)
	b[dim*4] = byte(a)
	b[dim*4+1] = byte(a >> 8)
	b[dim*4+2] = byte(a >> 16)
	b[dim*4+3] = byte(a >> 24)
	return tuple(b)
}

// Network is the multi-field Delta-net engine.
type Network struct {
	graph  *netgraph.Graph
	spaces []ipnet.Space
	dims   []*intervalmap.Map

	owner  map[tuple]map[netgraph.NodeID]*prioTree
	labels map[netgraph.LinkID]map[tuple]bool
	rules  map[core.RuleID]*Rule

	// byAtom[d][a] indexes the live tuples whose d-th atom is a, so an
	// atom split can copy exactly the affected tuples.
	byAtom []map[intervalmap.AtomID]map[tuple]bool
}

// NewNetwork returns an engine over the topology with one address space
// per match dimension (e.g. {IPv4, Space{Bits:16}} for dstIP × dstPort).
func NewNetwork(g *netgraph.Graph, spaces []ipnet.Space) *Network {
	n := &Network{
		graph:  g,
		spaces: spaces,
		owner:  map[tuple]map[netgraph.NodeID]*prioTree{},
		labels: map[netgraph.LinkID]map[tuple]bool{},
		rules:  map[core.RuleID]*Rule{},
	}
	for _, s := range spaces {
		n.dims = append(n.dims, intervalmap.New(s))
		n.byAtom = append(n.byAtom, map[intervalmap.AtomID]map[tuple]bool{})
	}
	return n
}

// Dims returns the number of match dimensions.
func (n *Network) Dims() int { return len(n.dims) }

// NumRules returns the number of live rules.
func (n *Network) NumRules() int { return len(n.rules) }

// AtomsPerDim returns the atom count of each dimension.
func (n *Network) AtomsPerDim() []int {
	out := make([]int, len(n.dims))
	for i, m := range n.dims {
		out[i] = m.NumAtoms()
	}
	return out
}

// TupleCount returns the number of distinct atom tuples currently holding
// forwarding state — the measurable face of the naive approach's
// exponential worst case.
func (n *Network) TupleCount() int { return len(n.owner) }

// OverlapDegree returns, for the given rule, how many live rules at the
// same source overlap it in every dimension — the statistic [32] proposes
// for guiding multi-range designs.
func (n *Network) OverlapDegree(r Rule) int {
	count := 0
	for _, o := range n.rules {
		if o.Source != r.Source || o.ID == r.ID {
			continue
		}
		all := true
		for d := range n.dims {
			if !o.Match[d].Overlaps(r.Match[d]) {
				all = false
				break
			}
		}
		if all {
			count++
		}
	}
	return count
}

// Errors.
var (
	ErrArity     = errors.New("multidim: rule arity does not match network dimensions")
	ErrDuplicate = errors.New("multidim: duplicate rule id")
	ErrUnknown   = errors.New("multidim: unknown rule id")
)

func (n *Network) validate(r *Rule) error {
	if len(r.Match) != len(n.dims) {
		return fmt.Errorf("%w: got %d want %d", ErrArity, len(r.Match), len(n.dims))
	}
	for d, iv := range r.Match {
		if !n.spaces[d].Contains(iv) {
			return fmt.Errorf("multidim: dimension %d interval %v invalid", d, iv)
		}
	}
	return nil
}

// InsertRule applies the multi-dimensional generalization of Algorithm 1.
func (n *Network) InsertRule(r Rule) error {
	if _, dup := n.rules[r.ID]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicate, r.ID)
	}
	if err := n.validate(&r); err != nil {
		return err
	}
	if r.Link == netgraph.NoLink {
		r.Link = n.graph.DropLink(r.Source)
	}
	rp := &r

	// Per-dimension CREATE_ATOMS+ with tuple-aware split copying.
	for d, m := range n.dims {
		for _, sp := range m.CreateAtoms(r.Match[d]) {
			n.splitTuples(d, sp)
		}
	}

	// Ownership reassignment over the tuple cross product.
	n.forEachTuple(rp.Match, func(tp tuple) {
		ow := n.owner[tp]
		if ow == nil {
			ow = map[netgraph.NodeID]*prioTree{}
			n.owner[tp] = ow
			n.indexTuple(tp)
		}
		bst := ow[r.Source]
		if bst == nil {
			bst = newPrioTree()
			ow[r.Source] = bst
		}
		var prev *Rule
		if !bst.Empty() {
			prev = bst.Max().Value
		}
		if prev == nil || cmpPrioKey(prioKey{prev.Priority, prev.ID}, prioKey{r.Priority, r.ID}) < 0 {
			n.labelAdd(r.Link, tp)
			if prev != nil && prev.Link != r.Link {
				n.labelRemove(prev.Link, tp)
			}
		}
		bst.Insert(prioKey{r.Priority, r.ID}, rp)
	})
	n.rules[r.ID] = rp
	return nil
}

// RemoveRule applies the multi-dimensional generalization of Algorithm 2.
func (n *Network) RemoveRule(id core.RuleID) error {
	r, ok := n.rules[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknown, id)
	}
	n.forEachTuple(r.Match, func(tp tuple) {
		ow := n.owner[tp]
		bst := ow[r.Source]
		top := bst.Max().Value
		bst.Delete(prioKey{r.Priority, r.ID})
		if top == r {
			n.labelRemove(r.Link, tp)
			if !bst.Empty() {
				next := bst.Max().Value
				n.labelAdd(next.Link, tp)
			}
		}
		if bst.Empty() {
			delete(ow, r.Source)
			if len(ow) == 0 {
				delete(n.owner, tp)
				n.unindexTuple(tp)
			}
		}
	})
	delete(n.rules, id)
	return nil
}

// splitTuples copies owner and label state from every tuple containing
// sp.Old in dimension d to its counterpart with sp.New — the
// multi-dimensional analogue of Algorithm 1 lines 3–9.
func (n *Network) splitTuples(d int, sp intervalmap.SplitPair) {
	affected := n.byAtom[d][sp.Old]
	for tp := range affected {
		ntp := tp.with(d, sp.New)
		ow := n.owner[tp]
		nw := map[netgraph.NodeID]*prioTree{}
		for src, bst := range ow {
			nw[src] = bst.Clone()
			top := bst.Max().Value
			n.labelAdd(top.Link, ntp)
		}
		n.owner[ntp] = nw
		n.indexTuple(ntp)
	}
}

// forEachTuple enumerates the cross product of the per-dimension atom
// expansions of a match vector.
func (n *Network) forEachTuple(match []ipnet.Interval, fn func(tuple)) {
	lists := make([][]intervalmap.AtomID, len(n.dims))
	for d, m := range n.dims {
		lists[d] = m.Atoms(match[d], nil)
	}
	atoms := make([]intervalmap.AtomID, len(lists))
	var rec func(d int)
	rec = func(d int) {
		if d == len(lists) {
			fn(makeTuple(atoms))
			return
		}
		for _, a := range lists[d] {
			atoms[d] = a
			rec(d + 1)
		}
	}
	rec(0)
}

func (n *Network) indexTuple(tp tuple) {
	for d := range n.dims {
		a := tp.atom(d)
		set := n.byAtom[d][a]
		if set == nil {
			set = map[tuple]bool{}
			n.byAtom[d][a] = set
		}
		set[tp] = true
	}
}

func (n *Network) unindexTuple(tp tuple) {
	for d := range n.dims {
		a := tp.atom(d)
		if set := n.byAtom[d][a]; set != nil {
			delete(set, tp)
			if len(set) == 0 {
				delete(n.byAtom[d], a)
			}
		}
	}
}

func (n *Network) labelAdd(l netgraph.LinkID, tp tuple) {
	set := n.labels[l]
	if set == nil {
		set = map[tuple]bool{}
		n.labels[l] = set
	}
	set[tp] = true
}

func (n *Network) labelRemove(l netgraph.LinkID, tp tuple) {
	if set := n.labels[l]; set != nil {
		delete(set, tp)
	}
}

// ForwardLink returns the link a packet takes from node v, given one
// concrete header value per dimension, or NoLink.
func (n *Network) ForwardLink(v netgraph.NodeID, values []uint64) netgraph.LinkID {
	atoms := make([]intervalmap.AtomID, len(n.dims))
	for d, m := range n.dims {
		atoms[d] = m.AtomOf(values[d])
	}
	ow := n.owner[makeTuple(atoms)]
	if ow == nil {
		return netgraph.NoLink
	}
	bst := ow[v]
	if bst == nil || bst.Empty() {
		return netgraph.NoLink
	}
	return bst.Max().Value.Link
}

// LabelSize returns the number of tuples currently labelled on a link.
func (n *Network) LabelSize(l netgraph.LinkID) int { return len(n.labels[l]) }
