package check

import (
	"testing"

	"deltanet/internal/core"
	"deltanet/internal/netgraph"
)

// diamond builds a -> {b, c} -> d with distinct ranges on each branch.
func diamond(t *testing.T) (*core.Network, *netgraph.Graph, []netgraph.NodeID, []netgraph.LinkID) {
	t.Helper()
	g := netgraph.New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	ab, ac := g.AddLink(a, b), g.AddLink(a, c)
	bd, cd := g.AddLink(b, d), g.AddLink(c, d)
	n := core.NewNetwork(g, core.Options{})
	mustInsert(t, n, core.Rule{ID: 1, Source: a, Link: ab, Match: iv(0, 100), Priority: 1})
	mustInsert(t, n, core.Rule{ID: 2, Source: a, Link: ac, Match: iv(100, 200), Priority: 1})
	mustInsert(t, n, core.Rule{ID: 3, Source: b, Link: bd, Match: iv(0, 200), Priority: 1})
	mustInsert(t, n, core.Rule{ID: 4, Source: c, Link: cd, Match: iv(0, 200), Priority: 1})
	return n, g, []netgraph.NodeID{a, b, c, d}, []netgraph.LinkID{ab, ac, bd, cd}
}

func TestReachableAvoiding(t *testing.T) {
	n, _, nodes, links := diamond(t)
	a, d := nodes[0], nodes[3]
	full := Reachable(n, a, d)
	if full.Empty() {
		t.Fatal("baseline reachability empty")
	}
	// Failing the upper branch (ab) kills [0:100) but not [100:200).
	after := ReachableAvoiding(n, a, d, map[netgraph.LinkID]bool{links[0]: true})
	if after.Contains(int(n.AtomOf(50))) {
		t.Fatal("[0:100) should be stranded")
	}
	if !after.Contains(int(n.AtomOf(150))) {
		t.Fatal("[100:200) should survive")
	}
	// No mask = identical to Reachable.
	if !ReachableAvoiding(n, a, d, nil).Equal(full) {
		t.Fatal("empty mask differs from Reachable")
	}
}

func TestAnalyzeFailure(t *testing.T) {
	n, _, nodes, links := diamond(t)
	a, d := nodes[0], nodes[3]
	imp := AnalyzeFailure(n, []netgraph.LinkID{links[0]}, a, d)
	if imp.Affected.Empty() {
		t.Fatal("no affected atoms")
	}
	if !imp.Stranded.Contains(int(n.AtomOf(50))) {
		t.Fatalf("stranded should include [0:100): %v", imp.Stranded)
	}
	if imp.Stranded.Contains(int(n.AtomOf(150))) {
		t.Fatal("stranded should exclude the surviving branch")
	}
	// Without probes, only Affected is computed.
	imp = AnalyzeFailure(n, []netgraph.LinkID{links[0]}, netgraph.NoNode, netgraph.NoNode)
	if !imp.Stranded.Empty() {
		t.Fatal("stranded without probe")
	}
	// Double failure of both branches strands everything.
	imp = AnalyzeFailure(n, []netgraph.LinkID{links[0], links[1]}, a, d)
	if !imp.Stranded.Equal(Reachable(n, a, d)) {
		t.Fatal("double failure should strand all traffic")
	}
}

func TestSweepDoubleFailures(t *testing.T) {
	n, _, nodes, links := diamond(t)
	a, d := nodes[0], nodes[3]
	all := SweepDoubleFailures(n, links, a, d, 0)
	if len(all) != 6 { // C(4,2)
		t.Fatalf("pairs=%d", len(all))
	}
	// Ranked by affected size, descending.
	for i := 1; i < len(all); i++ {
		if all[i].Affected.Len() > all[i-1].Affected.Len() {
			t.Fatal("not ranked")
		}
	}
	top := SweepDoubleFailures(n, links, a, d, 2)
	if len(top) != 2 {
		t.Fatalf("topK=%d", len(top))
	}
	if top[0].Affected.Len() < all[len(all)-1].Affected.Len() {
		t.Fatal("topK did not select the largest")
	}
	// The worst pair must strand everything (both branches at some stage).
	if top[0].Stranded.Empty() {
		t.Fatal("worst pair strands nothing")
	}
}

func TestFindLoopsDeltaParallelAgrees(t *testing.T) {
	g, nodes, links := ring(3)
	n := core.NewNetwork(g, core.Options{})
	var last *core.Delta
	for i := 0; i < 3; i++ {
		last = mustInsert(t, n, core.Rule{ID: core.RuleID(i + 1), Source: nodes[i],
			Link: links[i], Match: iv(0, 1000), Priority: 1})
	}
	serial := FindLoopsDelta(n, last)
	parallel := FindLoopsDeltaParallel(n, last, 4)
	if len(serial) == 0 || len(parallel) == 0 {
		t.Fatalf("loops: serial=%d parallel=%d", len(serial), len(parallel))
	}
	if FindLoopsDeltaParallel(n, nil, 4) != nil {
		t.Fatal("nil delta")
	}
	if got := FindLoopsDeltaParallel(n, &core.Delta{}, 4); got != nil {
		t.Fatal("empty delta")
	}
	// Workers clamp: more workers than atoms.
	if got := FindLoopsDeltaParallel(n, last, 1000); len(got) == 0 {
		t.Fatal("clamped workers missed loop")
	}
}
