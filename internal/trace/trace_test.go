package trace

import (
	"bytes"
	"strings"
	"testing"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

func sampleTrace() *Trace {
	g := netgraph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	ab := g.AddLink(a, b)
	return &Trace{
		Name:  "sample",
		Graph: g,
		Ops: []Op{
			{Insert: true, Rule: core.Rule{ID: 1, Source: a, Link: ab,
				Match: ipnet.Interval{Lo: 10, Hi: 20}, Priority: 5}},
			{Insert: true, Rule: core.Rule{ID: 2, Source: a, Link: netgraph.NoLink,
				Match: ipnet.Interval{Lo: 0, Hi: 1 << 32}, Priority: 1}},
			{Rule: core.Rule{ID: 1}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "sample" {
		t.Fatalf("name=%q", got.Name)
	}
	if got.Graph.NumNodes() != 2 || got.Graph.NumLinks() != 1 {
		t.Fatalf("graph %d/%d", got.Graph.NumNodes(), got.Graph.NumLinks())
	}
	if got.Graph.NodeName(0) != "a" {
		t.Fatal("node names lost")
	}
	if len(got.Ops) != 3 {
		t.Fatalf("ops=%d", len(got.Ops))
	}
	if !got.Ops[0].Insert || got.Ops[0].Rule != orig.Ops[0].Rule {
		t.Fatalf("op0 %+v", got.Ops[0])
	}
	if got.Ops[1].Rule.Link != netgraph.NoLink {
		t.Fatal("drop link lost")
	}
	if got.Ops[2].Insert || got.Ops[2].Rule.ID != 1 {
		t.Fatalf("op2 %+v", got.Ops[2])
	}
	if got.NumInserts() != 2 {
		t.Fatalf("NumInserts=%d", got.NumInserts())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                              // empty
		"bogus header\n",                // bad header
		"deltanet-trace v1\nnode x\n",   // short node line
		"deltanet-trace v1\nnode 5 a\n", // non-dense node id
		"deltanet-trace v1\nlink 0 0\n", // short link line
		"deltanet-trace v1\nnode 0 a\nnode 1 b\nlink 7 0 1\n", // bad link id
		"deltanet-trace v1\nI 1 2\n",                          // short insert
		"deltanet-trace v1\nI a 0 0 0 1 1\n",                  // non-numeric
		"deltanet-trace v1\nR\n",                              // short remove
		"deltanet-trace v1\nR x\n",                            // non-numeric remove
		"deltanet-trace v1\nwhat 1\n",                         // unknown directive
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# my trace\n\ndeltanet-trace v1\n# interlude\nnode 0 a\n\nR 3\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "my trace" || len(got.Ops) != 1 {
		t.Fatalf("%+v", got)
	}
}

func TestApply(t *testing.T) {
	tr := sampleTrace()
	n := core.NewNetwork(tr.Graph, core.Options{})
	var d core.Delta
	for i, op := range tr.Ops {
		if err := Apply(n, op, &d); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if n.NumRules() != 1 { // two inserts, one removal
		t.Fatalf("rules=%d", n.NumRules())
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}
