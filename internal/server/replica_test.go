package server

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"deltanet/internal/check"
	"deltanet/internal/journal"
	"deltanet/internal/monitor"
)

// startJournaledPrimary runs a primary with a journal at dir/primary.j.
func startJournaledPrimary(t *testing.T, dir string) (*Server, *journal.Journal, string, func()) {
	t.Helper()
	j, err := journal.Open(dir+"/primary.j", journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	s, addr, cleanup := startServer(t, WithJournal(j))
	return s, j, addr, func() {
		cleanup()
		j.Close()
	}
}

// startReplica runs a read replica of the primary at primaryAddr.
func startReplica(t *testing.T, primaryAddr string) (*Server, string, func()) {
	t.Helper()
	return startServer(t, WithReplicaOf(primaryAddr))
}

// waitReplicaCaughtUp polls until the replica's applied update count
// reaches the primary's and its byte lag is zero.
func waitReplicaCaughtUp(t *testing.T, primary, replica *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		want := primary.Monitor().UpdateSeq()
		if replica.Monitor().UpdateSeq() >= want && replica.replicaLagBytes() == 0 &&
			primary.Monitor().UpdateSeq() == want { // unchanged across the read
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: primary upd=%d replica upd=%d lag=%d",
				primary.Monitor().UpdateSeq(), replica.Monitor().UpdateSeq(), replica.replicaLagBytes())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicaConvergence is the convergence equivalence test: under
// concurrent rule churn on the primary, a replica must fold to the same
// state — all-pairs reach verdicts, loop events, and the brute-force
// loop oracle all agree once the journal drains.
func TestReplicaConvergence(t *testing.T) {
	primary, _, addr, cleanup := startJournaledPrimary(t, t.TempDir())
	defer cleanup()

	// Topology plus a standing loopfree invariant, registered before the
	// replica anchors so the checkpoint dump carries the spec.
	pc := dial(t, addr)
	defer pc.close()
	for _, req := range []string{
		"node a", "node b", "node c",
		"link 0 1",          // 0: a->b
		"link 1 2",          // 1: b->c
		"link 1 0",          // 2: b->a (the bounce link churn abuses)
		"link 2 0",          // 3: c->a
		"I 1 0 0 0 1000 10", // a->b for 0..1000
	} {
		if got := pc.roundTrip(t, req); !strings.HasPrefix(got, "ok") {
			t.Fatalf("%s: %q", req, got)
		}
	}
	if got := pc.roundTrip(t, "W loopfree"); !strings.HasPrefix(got, "ok watch 0 ") {
		t.Fatalf("W loopfree: %q", got)
	}

	replica, raddr, rcleanup := startReplica(t, addr)
	defer rcleanup()
	waitReplicaCaughtUp(t, primary, replica)

	// Concurrent churn: one writer toggles a loop-closing bounce rule
	// (each toggle is a loopfree verdict transition), another churns
	// plain rules, while readers query the replica mid-stream.
	const rounds = 8
	var wg sync.WaitGroup
	wg.Add(3)
	churnErr := make(chan error, 3)
	go func() {
		defer wg.Done()
		c := dial(t, addr)
		defer c.close()
		for i := 0; i < rounds; i++ {
			if got := c.roundTrip(t, "I 100 1 2 0 1000 10"); !strings.HasPrefix(got, "ok") {
				churnErr <- fmt.Errorf("bounce insert: %q", got)
				return
			}
			if got := c.roundTrip(t, "R 100"); !strings.HasPrefix(got, "ok") {
				churnErr <- fmt.Errorf("bounce remove: %q", got)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		c := dial(t, addr)
		defer c.close()
		for i := 0; i < rounds*4; i++ {
			id := 200 + i
			if got := c.roundTrip(t, fmt.Sprintf("I %d 1 1 %d %d 5", id, i*10, i*10+5)); !strings.HasPrefix(got, "ok") {
				churnErr <- fmt.Errorf("churn insert: %q", got)
				return
			}
			if i%2 == 0 {
				if got := c.roundTrip(t, fmt.Sprintf("R %d", id)); !strings.HasPrefix(got, "ok") {
					churnErr <- fmt.Errorf("churn remove: %q", got)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		c := dial(t, raddr)
		defer c.close()
		for i := 0; i < rounds*4; i++ {
			if got := c.roundTrip(t, "reach a c"); !strings.HasPrefix(got, "ok reach ") {
				churnErr <- fmt.Errorf("replica read mid-churn: %q", got)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-churnErr:
		t.Fatal(err)
	default:
	}
	waitReplicaCaughtUp(t, primary, replica)

	// All-pairs reach verdicts agree over the wire.
	prc, rrc := dial(t, addr), dial(t, raddr)
	defer prc.close()
	defer rrc.close()
	for _, src := range []string{"a", "b", "c"} {
		for _, dst := range []string{"a", "b", "c"} {
			if src == dst {
				continue
			}
			req := fmt.Sprintf("reach %s %s", src, dst)
			p, r := prc.roundTrip(t, req), rrc.roundTrip(t, req)
			if p != r {
				t.Errorf("%s: primary %q, replica %q", req, p, r)
			}
		}
	}

	// Loop oracle: the replica's own engine agrees with a brute-force
	// loop scan, and with the primary's.
	pLoops := len(check.FindLoopsAll(primary.Network()))
	rLoops := len(check.FindLoopsAll(replica.Network()))
	if pLoops != rLoops {
		t.Errorf("loop oracle: primary %d, replica %d", pLoops, rLoops)
	}

	// Event streams: the replica replayed every loopfree transition the
	// churn produced, with the primary's numbering — its backlog is a
	// suffix of the primary's, line for line.
	pEvents := eventLines(t, prc, "events since 0")
	rEvents := eventLines(t, rrc, "events since 0")
	if len(rEvents) == 0 || len(pEvents) < len(rEvents) {
		t.Fatalf("event counts: primary %d, replica %d", len(pEvents), len(rEvents))
	}
	offset := len(pEvents) - len(rEvents)
	for i, r := range rEvents {
		if p := pEvents[offset+i]; p != r {
			t.Errorf("event %d diverged:\nprimary %q\nreplica %q", i, p, r)
		}
	}
	if got := rrc.roundTrip(t, "stats"); !strings.Contains(got, " lag=0") {
		t.Errorf("replica stats missing lag=0: %q", got)
	}
	if got := prc.roundTrip(t, "stats"); !strings.Contains(got, " jrnl=") {
		t.Errorf("primary stats missing jrnl=: %q", got)
	}
}

// eventLines replays the event backlog via req, skipping gap markers.
func eventLines(t *testing.T, c *client, req string) []string {
	t.Helper()
	resp := c.roundTrip(t, req)
	var n int
	if _, err := fmt.Sscanf(resp, "ok events n=%d", &n); err != nil {
		t.Fatalf("%s: %q", req, resp)
	}
	var lines []string
	for i := 0; i < n; i++ {
		if !c.r.Scan() {
			t.Fatalf("event replay truncated at %d/%d: %v", i, n, c.r.Err())
		}
		if l := c.r.Text(); strings.HasPrefix(l, "event ") {
			lines = append(lines, l)
		}
	}
	return lines
}

// TestReplicaRejectsMutations: every mutation verb is refused by a
// replica — including batch bodies, which must be drained, not
// executed.
func TestReplicaRejectsMutations(t *testing.T) {
	_, _, addr, cleanup := startJournaledPrimary(t, t.TempDir())
	defer cleanup()
	replica, raddr, rcleanup := startReplica(t, addr)
	defer rcleanup()

	c := dial(t, raddr)
	defer c.close()
	for _, req := range []string{
		"node x", "link 0 1", "I 1 0 0 0 100 1", "R 1", "burst 2 0",
	} {
		if got := c.roundTrip(t, req); !strings.HasPrefix(got, "err read-only replica") {
			t.Errorf("%s on replica: %q, want read-only refusal", req, got)
		}
	}
	// The batch body must be consumed as the batch's payload: the I line
	// inside it is not executed as a command, and the connection stays
	// usable in sync.
	if got := c.roundTrip(t, "B 1\nI 1 0 0 0 100 1"); !strings.HasPrefix(got, "err read-only replica") {
		t.Errorf("B on replica: %q", got)
	}
	if got := c.roundTrip(t, "stats"); !strings.HasPrefix(got, "ok stats ") {
		t.Errorf("stats after refused batch: %q", got)
	}
	if replica.Network().NumRules() != 0 {
		t.Errorf("refused mutations changed replica state: %d rules", replica.Network().NumRules())
	}
}

// proxy is a byte-level TCP forwarder whose upstream can be swapped,
// so a replica's fixed -replica-of address can survive a primary
// restart on a new port.
type proxy struct {
	l  net.Listener
	mu sync.Mutex
	up string
}

func newProxy(t *testing.T) *proxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &proxy{l: l}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go p.forward(c)
		}
	}()
	t.Cleanup(func() { l.Close() })
	return p
}

func (p *proxy) addr() string { return p.l.Addr().String() }

func (p *proxy) setUpstream(addr string) {
	p.mu.Lock()
	p.up = addr
	p.mu.Unlock()
}

func (p *proxy) forward(c net.Conn) {
	p.mu.Lock()
	up := p.up
	p.mu.Unlock()
	if up == "" {
		c.Close()
		return
	}
	u, err := net.Dial("tcp", up)
	if err != nil {
		c.Close()
		return
	}
	go func() {
		io.Copy(u, c)
		u.Close()
		c.Close()
	}()
	io.Copy(c, u)
	u.Close()
	c.Close()
}

// TestReplicaReanchorsAfterRotation: a replica that was offline across
// a primary restart plus journal rotation finds its cursor truncated
// and re-anchors on a fresh checkpoint instead of failing permanently.
func TestReplicaReanchorsAfterRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(dir+"/p.j", journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}

	primary1, addr1, cleanup1 := startServer(t, WithJournal(j))
	px := newProxy(t)
	px.setUpstream(addr1)

	pc := dial(t, addr1)
	for _, req := range []string{
		"node a", "node b", "link 0 1", "link 1 0", "I 1 0 0 0 1000 10",
	} {
		if got := pc.roundTrip(t, req); !strings.HasPrefix(got, "ok") {
			t.Fatalf("%s: %q", req, got)
		}
	}
	pc.close()

	replica, _, rcleanup := startReplica(t, px.addr())
	defer rcleanup()
	waitReplicaCaughtUp(t, primary1, replica)
	cursorBefore := replica.replCursor.Load()

	// Take the primary down; its state survives as a checkpoint dump.
	var state bytes.Buffer
	if _, err := primary1.CheckpointTo(&state, primary1.Monitor().SnapshotSpecs()); err != nil {
		t.Fatal(err)
	}
	cleanup1()

	// Restart: load the checkpoint, apply more updates, checkpoint
	// again, and rotate the journal past the replica's cursor — the
	// window the replica missed no longer exists as journal records.
	primary2 := New(WithJournal(j))
	if err := primary2.LoadState(bytes.NewReader(state.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, err := primary2.ReplayJournal(j); err != nil {
		t.Fatal(err)
	}
	owned := map[monitor.ID]int{}
	for _, req := range []string{
		"node c", "link 1 2", "I 2 1 2 0 500 5", "R 1",
	} {
		if got := primary2.dispatch(req, owned); !strings.HasPrefix(got, "ok") {
			t.Fatalf("%s on primary2: %q", req, got)
		}
	}
	off, err := primary2.CheckpointTo(io.Discard, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Rotate(off); err != nil {
		t.Fatal(err)
	}
	if j.Base() <= cursorBefore {
		t.Fatalf("rotation did not pass the replica's cursor: base=%d cursor=%d", j.Base(), cursorBefore)
	}

	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- primary2.Serve(l2) }()
	defer func() {
		primary2.Close()
		<-done2
		j.Close()
	}()
	px.setUpstream(l2.Addr().String())

	deadline := time.Now().Add(15 * time.Second)
	for replica.replanchors.Load() == 0 || replica.Monitor().UpdateSeq() < primary2.Monitor().UpdateSeq() {
		if time.Now().After(deadline) {
			t.Fatalf("replica never re-anchored: reanchors=%d upd=%d (primary %d)",
				replica.replanchors.Load(), replica.Monitor().UpdateSeq(), primary2.Monitor().UpdateSeq())
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitReplicaCaughtUp(t, primary2, replica)
	if pr, rr := primary2.Network().NumRules(), replica.Network().NumRules(); pr != rr {
		t.Errorf("post-re-anchor rules: primary %d, replica %d", pr, rr)
	}
	if pn, rn := primary2.Graph().NumNodes(), replica.Graph().NumNodes(); pn != rn {
		t.Errorf("post-re-anchor nodes: primary %d, replica %d", pn, rn)
	}
}

// TestJournalCrashRecovery: checkpoint + journal suffix equals the full
// pre-crash state, and a torn final record (the crash landed mid-write)
// is dropped, not misapplied.
func TestJournalCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/p.j"
	j, err := journal.Open(path, journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}

	s1 := New(WithJournal(j))
	owned := map[monitor.ID]int{}
	reqs := []string{
		"node a", "node b", "link 0 1",
		"I 1 0 0 0 100 1", "I 2 0 0 200 300 1", "I 3 0 0 400 500 1",
	}
	for _, req := range reqs {
		if got := s1.dispatch(req, owned); !strings.HasPrefix(got, "ok") {
			t.Fatalf("%s: %q", req, got)
		}
	}
	wantUpd := s1.Monitor().UpdateSeq()
	j.Close() // crash: no checkpoint was ever written

	// Clean recovery: replay the whole journal into a fresh server.
	j2, err := journal.Open(path, journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(WithJournal(j2))
	applied, err := s2.ReplayJournal(j2)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(reqs) {
		t.Fatalf("replayed %d records, want %d", applied, len(reqs))
	}
	if s2.Network().NumRules() != 3 || s2.Graph().NumNodes() != 2 || s2.Monitor().UpdateSeq() != wantUpd {
		t.Fatalf("recovered state wrong: %d rules, %d nodes, upd=%d (want 3, 2, %d)",
			s2.Network().NumRules(), s2.Graph().NumNodes(), s2.Monitor().UpdateSeq(), wantUpd)
	}
	j2.Close()

	// Torn tail: chop bytes off the final record; recovery must drop
	// exactly that record and apply the rest.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	j3, err := journal.Open(path, journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Dropped() == 0 {
		t.Fatal("torn tail not detected")
	}
	s3 := New(WithJournal(j3))
	applied, err = s3.ReplayJournal(j3)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(reqs)-1 {
		t.Fatalf("torn replay applied %d records, want %d", applied, len(reqs)-1)
	}
	if s3.Network().NumRules() != 2 {
		t.Fatalf("torn recovery: %d rules, want 2 (last insert dropped)", s3.Network().NumRules())
	}
}

// TestCheckpointVerb: the wire checkpoint is a loadable state dump
// whose offset anchors "journal since" exactly at the dump's cut.
func TestCheckpointVerb(t *testing.T) {
	_, j, addr, cleanup := startJournaledPrimary(t, t.TempDir())
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	for _, req := range []string{"node a", "node b", "link 0 1", "I 1 0 0 0 100 1"} {
		c.roundTrip(t, req)
	}
	resp := c.roundTrip(t, "checkpoint")
	var n int
	var off uint64
	if _, err := fmt.Sscanf(resp, "ok checkpoint n=%d offset=%d", &n, &off); err != nil {
		t.Fatalf("checkpoint: %q", resp)
	}
	if off != j.End() {
		t.Errorf("checkpoint offset %d, journal end %d", off, j.End())
	}
	var dump strings.Builder
	for i := 0; i < n; i++ {
		if !c.r.Scan() {
			t.Fatalf("dump truncated at %d/%d", i, n)
		}
		dump.WriteString(c.r.Text())
		dump.WriteByte('\n')
	}
	restored := New()
	if err := restored.LoadState(strings.NewReader(dump.String())); err != nil {
		t.Fatalf("checkpoint dump not loadable: %v\n%s", err, dump.String())
	}
	if restored.Network().NumRules() != 1 || restored.Graph().NumNodes() != 2 {
		t.Fatalf("restored %d rules, %d nodes", restored.Network().NumRules(), restored.Graph().NumNodes())
	}
	if restored.loadedJournal != off {
		t.Errorf("restored journal cursor %d, want %d", restored.loadedJournal, off)
	}
}
