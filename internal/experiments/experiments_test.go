package experiments

import (
	"strings"
	"testing"
	"time"
)

const tinyScale = 0.01

func TestRunTable2(t *testing.T) {
	rows, err := RunTable2(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows=%d want 8", len(rows))
	}
	for _, r := range rows {
		if r.Nodes == 0 || r.MaxLinks == 0 || r.Operations == 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	// INET is the largest synthetic topology.
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Dataset] = r
	}
	if byName["inet"].Nodes <= byName["rf1755"].Nodes {
		t.Fatal("inet should have the most nodes")
	}
}

func TestRunBatch(t *testing.T) {
	seq, err := RunBatch("rf1755", tinyScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := RunBatch("rf1755", tinyScale, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Identical replays must agree on final engine state regardless of
	// batch size.
	if seq.Atoms != bat.Atoms || seq.Ops != bat.Ops {
		t.Fatalf("batch replay diverged: %+v vs %+v", seq, bat)
	}
	if seq.Throughput <= 0 || bat.Throughput <= 0 {
		t.Fatalf("throughput missing: %+v vs %+v", seq, bat)
	}
	if _, err := RunBatch("rf1755", tinyScale, 0); err == nil {
		t.Fatal("batch size 0 accepted")
	}
}

func TestRunTable3(t *testing.T) {
	row, err := RunTable3("rf1755", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if row.TotalAtoms == 0 {
		t.Fatal("no atoms")
	}
	if row.Average <= 0 || row.Median <= 0 {
		t.Fatalf("times %v/%v", row.Median, row.Average)
	}
	if row.PctBelow250 <= 0 || row.PctBelow250 > 100 {
		t.Fatalf("pct=%v", row.PctBelow250)
	}
	if row.Latencies.Len() == 0 {
		t.Fatal("no samples retained")
	}
	if _, err := RunTable3("bogus", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunTable3Veriflow(t *testing.T) {
	row, err := RunTable3Veriflow("4switch", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if row.Average <= 0 {
		t.Fatal("no time measured")
	}
	if !strings.Contains(row.Dataset, "veriflow") {
		t.Fatalf("dataset label %q", row.Dataset)
	}
}

func TestDeltaNetFasterThanVeriflowOnChurn(t *testing.T) {
	// The headline claim at laptop scale: Delta-net's per-update time
	// beats Veriflow-RI's on a dataset with many overlapping rules.
	dn, err := RunTable3("rf1755", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	vf, err := RunTable3Veriflow("rf1755", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if dn.Average >= vf.Average {
		t.Fatalf("Delta-net avg %v not faster than Veriflow-RI avg %v", dn.Average, vf.Average)
	}
}

func TestRunFigure8(t *testing.T) {
	series, err := RunFigure8(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 8 {
		t.Fatalf("series=%d", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("%s: no CDF points", s.Dataset)
		}
		last := s.Points[len(s.Points)-1]
		if last.Fraction < 0.99 {
			t.Fatalf("%s: CDF tops out at %v", s.Dataset, last.Fraction)
		}
	}
}

func TestRunTable4(t *testing.T) {
	row, err := RunTable4("airtel1", tinyScale, 8)
	if err != nil {
		t.Fatal(err)
	}
	if row.Rules == 0 || row.Queries == 0 {
		t.Fatalf("row %+v", row)
	}
	if row.DeltanetAvg <= 0 || row.VeriflowAvg <= 0 {
		t.Fatalf("times %+v", row)
	}
	// The paper's headline: Delta-net's subgraph restriction beats
	// Veriflow's per-EC graph construction.
	if row.DeltanetAvg >= row.VeriflowAvg {
		t.Fatalf("Delta-net %v not faster than Veriflow %v", row.DeltanetAvg, row.VeriflowAvg)
	}
	if row.VeriflowGraphs == 0 {
		t.Fatal("Veriflow built no graphs")
	}
}

func TestRunTable5(t *testing.T) {
	row, err := RunTable5("rf1755", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if row.VeriflowBytes <= 0 || row.DeltanetBytes <= 0 {
		t.Fatalf("bytes %+v", row)
	}
	// Delta-net trades memory for time (paper: 5–7×); at minimum it must
	// use more than Veriflow-RI.
	if row.Ratio <= 1 {
		t.Fatalf("ratio=%v, expected Delta-net to use more memory", row.Ratio)
	}
}

func TestRunAppendixC(t *testing.T) {
	// Needs enough prefixes for overlap; tinyScale yields too few.
	res, err := RunAppendixC("rf1755", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxECs < 2 {
		t.Fatalf("MaxECs=%d", res.MaxECs)
	}
}

func TestRunScaling(t *testing.T) {
	pts, err := RunScaling([]float64{0.01, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1].Ops <= pts[0].Ops {
		t.Fatalf("points %+v", pts)
	}
	// Quasi-linear: per-op time must not blow up with op count. Allow a
	// generous factor for noise.
	if pts[1].PerOp > pts[0].PerOp*20+time.Millisecond {
		t.Fatalf("per-op time exploded: %v -> %v", pts[0].PerOp, pts[1].PerOp)
	}
}

func TestFormatTable(t *testing.T) {
	s := FormatTable([]string{"a", "bb"}, [][]string{{"xxx", "y"}})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("table %q", s)
	}
	if !strings.HasPrefix(lines[0], "a  ") {
		t.Fatalf("header %q", lines[0])
	}
}

func TestBuildConsistentDataPlane(t *testing.T) {
	n, tr, err := BuildConsistentDataPlane("4switch", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumRules() == 0 {
		t.Fatal("no rules")
	}
	if len(LinksOf(tr)) == 0 {
		t.Fatal("no links")
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}
