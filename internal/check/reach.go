package check

import (
	"slices"

	"deltanet/internal/bitset"
	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
	"deltanet/internal/netgraph"
)

// fixpoint configures one run of the monotone reachability worklist that
// underlies Reachable, Waypoint and ReachableAvoiding. The three queries
// differ only in which edges they are willing to traverse and in what they
// read off the resulting reach vector, so they share one implementation.
type fixpoint struct {
	// avoid is a node whose out-links are not traversed (flows may arrive
	// at it but not continue); NoNode disables it. Waypoint checks use it.
	avoid netgraph.NodeID
	// failed masks out links entirely (nil = none). Failure analyses use
	// it.
	failed map[netgraph.LinkID]bool
	// deps, when non-nil, records every link the fixpoint examined. This
	// is the dependency set incremental monitors key dirtiness on: a label
	// change on any link NOT recorded here cannot alter the result,
	// because that link's source node was unreachable and nothing else
	// changed. (Any new path out of the reached region must begin with an
	// edge out of a reached node, and all such edges are recorded —
	// including currently empty-labelled ones.)
	deps *bitset.Set
	// visited, when non-nil, collects the nodes something arrived at
	// (the injection node first) — exactly the nodes whose reach sets
	// the dependency summaries read, collected here so summary builders
	// need not scan the whole node space for non-nil reach entries.
	visited *[]netgraph.NodeID
}

// run executes the fixpoint from node from and returns the full reach
// vector: reach[v] is the set of atoms that can arrive at v starting from
// from (nil where nothing arrives). Injection at from is unrestricted (all
// atoms), so reach[from] is conceptually the full space.
//
// The vector and its sets alias sc and stay valid only until sc's next
// use; callers that outlive the scratch must clone what they keep. The
// worklist is a head-index ring over sc's retained backing array — the
// former `queue = queue[1:]` idiom allocated a fresh worklist per run
// and bled capacity at the front on every pop, re-copying on append
// once it ran out (O(n²)-prone on long relaxation chains; see
// BenchmarkReachSummaryScratch for the regression guard).
func (o fixpoint) run(n *core.Network, from netgraph.NodeID, sc *Scratch) []*bitset.Set {
	g := n.Graph()
	reach := sc.beginFix(g.NumNodes())
	sc.queue = append(sc.queue, from)
	sc.inq[from] = sc.fixGen
	if o.visited != nil {
		*o.visited = append(*o.visited, from)
	}
	scratch := sc.hop // reused per hop; UnionWith below copies out of it

	for sc.head < len(sc.queue) {
		v := sc.queue[sc.head]
		sc.head++
		sc.inq[v] = 0
		if v == o.avoid {
			continue // flows must not pass through
		}
		for _, lid := range g.Out(v) {
			if o.failed != nil && o.failed[lid] {
				continue
			}
			if o.deps != nil {
				o.deps.Add(int(lid))
			}
			label := n.Label(lid)
			if label.Empty() {
				continue
			}
			var contribution *bitset.Set
			if v == from {
				// Everything the first hop admits.
				contribution = label
			} else {
				scratch.AndOf(reach[v], label)
				if scratch.Empty() {
					continue
				}
				contribution = scratch
			}
			w := g.Link(lid).Dst
			if reach[w] == nil {
				reach[w] = sc.reachSet(w, n.MaxAtomID())
				if o.visited != nil && w != from {
					*o.visited = append(*o.visited, w)
				}
			}
			before := reach[w].Len()
			reach[w].UnionWith(contribution)
			if reach[w].Len() != before && sc.inq[w] != sc.fixGen && w != from {
				sc.queue = append(sc.queue, w)
				sc.inq[w] = sc.fixGen
			}
		}
	}
	return reach
}

// cloneAt extracts one entry of a scratch-aliased reach vector as an
// independent set, never returning nil — what the one-shot entry points
// hand out after releasing their pooled scratch.
func cloneAt(reach []*bitset.Set, to netgraph.NodeID) *bitset.Set {
	if reach[to] == nil {
		return bitset.New(0)
	}
	return reach[to].Clone()
}

// Reachable computes the set of atoms (packets) that can flow from node
// from to node to along some forwarding path — the paper's design goal 1:
// "efficiently find all packets that can reach a node B from A" in one
// query rather than one SAT call per witness.
func Reachable(n *core.Network, from, to netgraph.NodeID) *bitset.Set {
	sc := GetScratch()
	defer PutScratch(sc)
	return cloneAt(fixpoint{avoid: netgraph.NoNode}.run(n, from, sc), to)
}

// ReachableDeps is Reachable with dependency recording: every link the
// query examined is added to deps. A later label change on a link outside
// deps cannot change the result, which is what lets the monitor subsystem
// skip re-evaluation (see fixpoint.deps).
func ReachableDeps(n *core.Network, from, to netgraph.NodeID, deps *bitset.Set) *bitset.Set {
	sc := GetScratch()
	defer PutScratch(sc)
	return cloneAt(fixpoint{avoid: netgraph.NoNode, deps: deps}.run(n, from, sc), to)
}

// ReachFrom computes the full single-source reach vector (reach[v] may be
// nil where nothing arrives), recording examined links into deps when it
// is non-nil. Group queries such as isolation evaluate one fixpoint per
// source instead of one per pair. The vector is backed by a scratch
// private to this call, so the caller owns it outright.
func ReachFrom(n *core.Network, from netgraph.NodeID, deps *bitset.Set) []*bitset.Set {
	return fixpoint{avoid: netgraph.NoNode, deps: deps}.run(n, from, NewScratch())
}

// LinkSketch pairs a dep link with the coarse sketch of atom ids whose
// label changes there could alter the query's result.
//
//deltanet:pointerfree
type LinkSketch struct {
	Link   netgraph.LinkID
	Sketch intervalmap.Sketch
}

// DepRanges refines a link-level dependency set to atom granularity: for
// each sketched dep link, the atoms that matter on it, ascending by link
// id. A dep link absent from the list has no usable sketch — every atom
// on it must be treated as relevant. Entries are inlined pointer-free
// values in one backing array, so the hundreds of thousands of sketches
// a loaded monitor derives cost one allocation per evaluation and
// nothing at garbage collection time.
type DepRanges []LinkSketch

// ReachSummary is the monitor-facing fixpoint: one single-source run
// (avoiding avoid's out-links; netgraph.NoNode disables that) that
// records the link-level dependency set into deps and returns the reach
// vector together with the per-link atom-range sketches refining deps.
//
// The sound per-link summary is the set of atoms that can arrive at the
// link's source (everything, for the injection node): any delta that
// changes the query's result must add or remove some atom a on a dep
// link l with a ∈ reach[src(l)] — a new derivation's first new edge
// leaves an already-reached node, and a lost derivation loses an edge
// its flow actually used. Atoms outside the sketch therefore cannot
// flip the verdict, no matter which dep links they move on.
//
// Links whose sketch would cover every current atom are omitted (the
// injection node's out-links always are): a summary as wide as
// "everything" is dead weight, and consumers already treat missing
// sketches as all-atoms-relevant. The sketches are only valid for atoms
// that existed at evaluation time — consumers must pair them with
// core.Network.AtomAllocSeq and conservatively treat younger atoms as
// hits.
//
// The reach vector aliases sc and is valid only until sc's next use —
// read the verdict off it before reusing the scratch. The DepRanges is
// independently allocated and may be retained.
func ReachSummary(n *core.Network, from, avoid netgraph.NodeID, deps *bitset.Set, sc *Scratch) ([]*bitset.Set, DepRanges) {
	reach := fixpoint{avoid: avoid, deps: deps, visited: &sc.visited}.run(n, from, sc)
	visited := sc.visited

	g := n.Graph()
	maxAtoms := n.MaxAtomID()
	out := make(DepRanges, 0, deps.Len())
	scratch := &sc.rs
	var sk intervalmap.Sketch
	for _, v := range visited {
		if v == from || v == avoid {
			continue // from: all atoms admitted; avoid: out-links not deps
		}
		scratch.Reset()
		if int(v) < len(reach) && reach[v] != nil {
			reach[v].ForEach(func(a int) bool {
				scratch.AppendID(intervalmap.AtomID(a))
				return true
			})
		}
		if scratch.CoversAll(maxAtoms) {
			continue // no more selective than link-level tracking
		}
		sk.SetFrom(scratch)
		for _, l := range g.Out(v) {
			if deps.Contains(int(l)) {
				out = append(out, LinkSketch{Link: l, Sketch: sk})
			}
		}
	}
	// Visited order is discovery order; consumers merge against the
	// ascending deps bitset, so order by link id. (slices.SortFunc, not
	// sort.Slice: the reflection-based sort costs three allocations per
	// call, which would dominate a warmed-scratch evaluation.)
	slices.SortFunc(out, func(a, b LinkSketch) int { return int(a.Link) - int(b.Link) })
	return reach, out
}

// MergeDepRanges combines two per-source dependency summaries into one,
// as multi-source queries (isolation) need: a link relevant to several
// sources keeps the union of the atoms relevant to each. Because an
// omitted sketch on a dep link means "every atom relevant", omission is
// contagious: a link either side depends on without a sketch has no
// sketch in the merge. aDeps and bDeps are the link-level dependency
// sets the summaries were built from (a nil a means "no prior summary":
// b is returned as-is).
func MergeDepRanges(a DepRanges, aDeps *bitset.Set, b DepRanges, bDeps *bitset.Set) DepRanges {
	if a == nil {
		return b
	}
	out := make(DepRanges, 0, len(a)+len(b))
	var au, bu intervalmap.RangeSet
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Link < b[j].Link):
			if !bDeps.Contains(int(a[i].Link)) {
				out = append(out, a[i]) // b does not dep it; a's sketch stands
			}
			i++
		case i >= len(a) || b[j].Link < a[i].Link:
			if !aDeps.Contains(int(b[j].Link)) {
				out = append(out, b[j])
			}
			j++
		default: // both sketched: union
			a[i].Sketch.ToRangeSet(&au)
			b[j].Sketch.ToRangeSet(&bu)
			au.UnionWith(&bu)
			ls := LinkSketch{Link: a[i].Link}
			ls.Sketch.SetFrom(&au)
			out = append(out, ls)
			i++
			j++
		}
	}
	return out
}

// AffectedByLinkFailure answers the paper's exemplar "what if" query
// (§4.3.2): what is the fate of packets that are using a link that fails?
// For Delta-net the affected packets are available in constant time as
// label[link]; the subgraph of all flows involving those packets is the
// restriction of the edge-labelled graph to edges whose label intersects
// it. The returned Subgraph represents, via one labelled graph, all
// forwarding graphs Veriflow would have to construct per affected
// equivalence class.
func AffectedByLinkFailure(n *core.Network, link netgraph.LinkID) *Subgraph {
	affected := n.Label(link)
	sub := &Subgraph{Affected: affected.Clone()}
	if affected.Empty() {
		return sub
	}
	g := n.Graph()
	for _, l := range g.Links() {
		lbl := n.Label(l.ID)
		if lbl.Intersects(affected) {
			sub.Links = append(sub.Links, l.ID)
			sub.Labels = append(sub.Labels, bitset.Intersect(lbl, affected))
		}
	}
	return sub
}

// Subgraph is the restriction of the edge-labelled graph to a set of
// atoms: the compact representation of "all flows of packets through the
// network that would be affected" by an event (§4.3.2).
type Subgraph struct {
	Affected *bitset.Set // the atoms of interest
	Links    []netgraph.LinkID
	Labels   []*bitset.Set // parallel to Links: label ∩ Affected
}

// NumEdges returns the number of labelled edges in the subgraph.
func (s *Subgraph) NumEdges() int { return len(s.Links) }

// LoopsInSubgraph runs per-atom loop detection restricted to the affected
// atoms of a subgraph (the "+Loops" column of Table 4).
func LoopsInSubgraph(n *core.Network, sub *Subgraph) []Loop {
	var loops []Loop
	g := n.Graph()
	sc := GetScratch()
	defer PutScratch(sc)
	sub.Affected.ForEach(func(atom int) bool {
		a := intervalmap.AtomID(atom)
		// Walk from the source of each subgraph edge carrying the atom.
		for i, lid := range sub.Links {
			if !sub.Labels[i].Contains(atom) {
				continue
			}
			if loop, ok := traceLoop(n, g.Link(lid).Src, a, sc); ok {
				loops = append(loops, loop)
				return true // one loop per atom suffices
			}
		}
		return true
	})
	return loops
}

// BlackHole describes packets that arrive at a node with no matching rule:
// the node receives atoms on some in-link whose forwarding function is
// undefined there (distinct from an explicit drop, which is intentional).
type BlackHole struct {
	Node  netgraph.NodeID
	Atoms *bitset.Set
}

// BlackHoleAtoms returns the atoms some in-link delivers to v that v
// neither forwards nor drops — v's black-hole traffic. The result is never
// nil; an empty set means v handles everything it receives. Incremental
// monitors re-evaluate this per candidate node instead of scanning every
// node.
func BlackHoleAtoms(n *core.Network, v netgraph.NodeID) *bitset.Set {
	g := n.Graph()
	incoming := bitset.New(0)
	for _, lid := range g.In(v) {
		incoming.UnionWith(n.Label(lid))
	}
	if incoming.Empty() {
		return incoming
	}
	// Subtract everything v forwards or drops.
	for _, lid := range g.Out(v) {
		incoming.DifferenceWith(n.Label(lid))
	}
	return incoming
}

// FindBlackHoles reports, for every node, the atoms that some in-link
// delivers but that no rule at the node matches. Edge nodes that are
// legitimate traffic sinks can be excluded via the sinks set (nil means no
// exclusions).
func FindBlackHoles(n *core.Network, sinks map[netgraph.NodeID]bool) []BlackHole {
	g := n.Graph()
	var out []BlackHole
	for v := netgraph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if sinks[v] || (g.DropNode() != netgraph.NoNode && v == g.DropNode()) {
			continue
		}
		if atoms := BlackHoleAtoms(n, v); !atoms.Empty() {
			out = append(out, BlackHole{Node: v, Atoms: atoms})
		}
	}
	return out
}

// Isolated verifies a traffic-isolation property (§3.3: "traffic isolation
// properties"): no packet in the given atom set can flow from any node in
// groupA to any node in groupB. It returns the first violating atom set
// found (nil when isolated).
func Isolated(n *core.Network, groupA, groupB []netgraph.NodeID, atoms *bitset.Set) *bitset.Set {
	inB := map[netgraph.NodeID]bool{}
	for _, b := range groupB {
		inB[b] = true
	}
	for _, a := range groupA {
		for _, b := range groupB {
			r := Reachable(n, a, b)
			if atoms != nil {
				r.IntersectWith(atoms)
			}
			if !r.Empty() {
				return r
			}
		}
	}
	return nil
}

// Waypoint verifies that every packet flowing from from to to traverses
// the waypoint node: removing the waypoint's out-links from consideration,
// nothing must remain reachable. It returns the atoms that bypass the
// waypoint (empty when the property holds).
func Waypoint(n *core.Network, from, to, waypoint netgraph.NodeID) *bitset.Set {
	sc := GetScratch()
	defer PutScratch(sc)
	return cloneAt(fixpoint{avoid: waypoint}.run(n, from, sc), to)
}

// WaypointDeps is Waypoint with dependency recording into deps, as
// ReachableDeps is to Reachable. The waypoint's own out-links are never
// recorded: flows through them traverse the waypoint by definition, so
// changes there cannot alter the bypass set.
func WaypointDeps(n *core.Network, from, to, waypoint netgraph.NodeID, deps *bitset.Set) *bitset.Set {
	sc := GetScratch()
	defer PutScratch(sc)
	return cloneAt(fixpoint{avoid: waypoint, deps: deps}.run(n, from, sc), to)
}
