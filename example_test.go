package deltanet_test

import (
	"fmt"

	"deltanet"
)

// Example reproduces the paper's Table 1 in a few lines: a drop rule
// shadowing part of a forward rule, with the flows read back as merged
// address ranges.
func Example() {
	c := deltanet.New()
	s := c.AddSwitch("s")
	peer := c.AddSwitch("peer")
	uplink := c.AddLink(s, peer)

	c.InsertPrefixRule(1, s, deltanet.NoLink, "0.0.0.10/31", 30) // rH: drop [10:12)
	c.InsertPrefixRule(2, s, uplink, "0.0.0.0/28", 10)           // rL: forward [0:16)

	for _, r := range c.ReachableRanges(s, peer) {
		fmt.Println(r)
	}
	// Output:
	// [0:10)
	// [12:16)
}

// ExampleChecker_InsertRule shows per-update loop detection: the report
// of the rule that closes a cycle carries the loop.
func ExampleChecker_InsertRule() {
	c := deltanet.New()
	a := c.AddSwitch("a")
	b := c.AddSwitch("b")
	ab := c.AddLink(a, b)
	ba := c.AddLink(b, a)

	p, _ := deltanet.ParsePrefix("10.0.0.0/8")
	c.InsertRule(deltanet.Rule{ID: 1, Source: a, Link: ab, Match: p.Interval(), Priority: 1})
	rep, _ := c.InsertRule(deltanet.Rule{ID: 2, Source: b, Link: ba, Match: p.Interval(), Priority: 1})

	fmt.Println("loops introduced:", len(rep.Loops))
	// Output:
	// loops introduced: 1
}

// ExampleChecker_WhatIfLinkFails shows the §4.3.2 query: the packets that
// would be affected by a hypothetical link failure, in constant time from
// the link's label.
func ExampleChecker_WhatIfLinkFails() {
	c := deltanet.New()
	a := c.AddSwitch("a")
	b := c.AddSwitch("b")
	ab := c.AddLink(a, b)

	c.InsertPrefixRule(1, a, ab, "10.0.0.0/8", 1)
	c.InsertPrefixRule(2, a, ab, "192.168.0.0/16", 1)

	sub := c.WhatIfLinkFails(ab)
	fmt.Println("affected packet classes:", sub.Affected.Len())
	fmt.Println("edges carrying them:", sub.NumEdges())
	// Output:
	// affected packet classes: 2
	// edges carrying them: 1
}

// ExampleChecker_AddPort shows §4.1's composite-node encoding for rules
// that also match an input port: each (switch, port) pair becomes its own
// node in the edge-labelled graph.
func ExampleChecker_AddPort() {
	c := deltanet.New()
	// Two ingress ports of switch s1, with different policies.
	p1 := c.AddPort("s1", 1)
	p2 := c.AddPort("s1", 2)
	egress := c.AddSwitch("s2")
	l1 := c.AddLink(p1, egress)

	// Port 1 forwards the prefix; port 2 drops it.
	c.InsertPrefixRule(1, p1, l1, "10.0.0.0/8", 1)
	c.InsertPrefixRule(2, p2, deltanet.NoLink, "10.0.0.0/8", 1)

	fmt.Println("port1 ranges:", c.ReachableRanges(p1, egress))
	fmt.Println("port2 ranges:", c.ReachableRanges(p2, egress))
	// Output:
	// port1 ranges: [[167772160:184549376)]
	// port2 ranges: []
}
