package deltanet

import "testing"

// chain builds a -> b -> c carrying 10.0.0.0/8 end to end.
func chain(t *testing.T) (*Checker, SwitchID, SwitchID, SwitchID, LinkID, LinkID) {
	t.Helper()
	c := New()
	a, b, d := c.AddSwitch("a"), c.AddSwitch("b"), c.AddSwitch("c")
	ab, bc := c.AddLink(a, b), c.AddLink(b, d)
	if _, err := c.InsertPrefixRule(1, a, ab, "10.0.0.0/8", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InsertPrefixRule(2, b, bc, "10.0.0.0/8", 1); err != nil {
		t.Fatal(err)
	}
	return c, a, b, d, ab, bc
}

func TestFacadeBlackHoles(t *testing.T) {
	c, _, _, d, _, _ := chain(t)
	holes := c.FindBlackHoles(nil)
	if len(holes) != 1 || holes[0].Node != d {
		t.Fatalf("holes=%+v", holes)
	}
	if got := c.FindBlackHoles(map[SwitchID]bool{d: true}); len(got) != 0 {
		t.Fatalf("with sink: %+v", got)
	}
}

func TestFacadeIsolationAndWaypoint(t *testing.T) {
	c, a, b, d, _, _ := chain(t)
	if v := c.Isolated([]SwitchID{a}, []SwitchID{d}, nil); v == nil {
		t.Fatal("a reaches c; not isolated")
	}
	if v := c.Isolated([]SwitchID{d}, []SwitchID{a}, nil); v != nil {
		t.Fatalf("reverse should be isolated: %v", v)
	}
	if bypass := c.BypassesWaypoint(a, d, b); !bypass.Empty() {
		t.Fatalf("bypass=%v", bypass)
	}
}

func TestFacadeTransforms(t *testing.T) {
	c := New()
	a, b, d := c.AddSwitch("a"), c.AddSwitch("b"), c.AddSwitch("c")
	ab, bc := c.AddLink(a, b), c.AddLink(b, d)
	// a forwards 10/8; b only forwards 192.168.0.0/16 onward.
	if _, err := c.InsertPrefixRule(1, a, ab, "10.0.0.0/8", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InsertPrefixRule(2, b, bc, "192.168.0.0/16", 1); err != nil {
		t.Fatal(err)
	}
	if got := c.ReachableAtoms(a, d); !got.Empty() {
		t.Fatal("untransformed traffic should stall at b")
	}
	tf := NewTransforms()
	p10, _ := ParsePrefix("10.0.0.0/16")
	p192, _ := ParsePrefix("192.168.0.0/16")
	if err := tf.Set(ab, Rewrite{From: p10.Interval(), To: p192.Interval()}); err != nil {
		t.Fatal(err)
	}
	if got := c.ReachableAtomsVia(tf, a, d); got.Empty() {
		t.Fatal("NAT-rewritten traffic should reach c")
	}
}

func TestFacadeMinimalECs(t *testing.T) {
	c, _, _, _, _, _ := chain(t)
	classes := c.MinimalECs()
	if len(classes) == 0 {
		t.Fatal("no classes")
	}
	total := 0
	for _, cl := range classes {
		total += len(cl.Atoms)
	}
	if total != c.NumAtoms() {
		t.Fatalf("classes cover %d atoms of %d", total, c.NumAtoms())
	}
}

func TestFacadeSnapshotDigest(t *testing.T) {
	c, _, _, _, _, _ := chain(t)
	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot=%d rules", len(snap))
	}
	// Rebuild over an identical topology.
	c2 := New()
	a, b, d := c2.AddSwitch("a"), c2.AddSwitch("b"), c2.AddSwitch("c")
	c2.AddLink(a, b)
	c2.AddLink(b, d)
	if err := c2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !BehaviourEqual(c, c2) {
		t.Fatal("restored behaviour differs")
	}
	if c.BehaviourDigest() != c2.BehaviourDigest() {
		t.Fatal("digests differ")
	}
	if len(c.LinkFlows(0)) == 0 {
		t.Fatal("LinkFlows empty")
	}
}
