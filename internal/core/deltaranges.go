package core

import (
	"sort"

	"deltanet/internal/intervalmap"
	"deltanet/internal/netgraph"
)

// DeltaRanges indexes one delta-graph's label changes by link, as sorted
// atom-id range sets: for every link the delta touched, the compact set
// of atoms added to or removed from its label. This is the form the
// monitor's atom-granular dependency index intersects against its
// per-invariant range sketches — an update only dirties an invariant
// when, on some shared link, the delta's ranges overlap the sketch.
//
// A DeltaRanges is reusable scratch: Build resets and refills it,
// retaining capacity, so steady-state churn allocates nothing.
type DeltaRanges struct {
	// NewestBorn is the largest atom allocation stamp among the touched
	// atoms (0 when the delta is empty). An invariant whose dependency
	// sketch predates it may be looking at ids that changed meaning since
	// (split-minted or GC-recycled), so consumers must treat such atoms
	// as conservative hits rather than trust the id intersection.
	NewestBorn int64

	byLink map[netgraph.LinkID]*linkTouch
	links  []netgraph.LinkID // links touched by the current build
	gen    uint64
}

// linkTouch is one link's touched-atom scratch; gen marks the build it
// belongs to, so stale entries from earlier deltas are never returned.
type linkTouch struct {
	gen uint64
	ids []intervalmap.AtomID
	rs  intervalmap.RangeSet
}

// Build fills dr from d: per-link touched atoms as sorted range sets,
// plus the newest allocation stamp among them (read from n).
func (dr *DeltaRanges) Build(n *Network, d *Delta) {
	dr.gen++
	dr.links = dr.links[:0]
	dr.NewestBorn = 0
	if dr.byLink == nil {
		dr.byLink = map[netgraph.LinkID]*linkTouch{}
	}
	touch := func(la LinkAtom) {
		t := dr.byLink[la.Link]
		if t == nil {
			t = &linkTouch{}
			dr.byLink[la.Link] = t
		}
		if t.gen != dr.gen {
			t.gen = dr.gen
			t.ids = t.ids[:0]
			t.rs.Reset()
			dr.links = append(dr.links, la.Link)
		}
		t.ids = append(t.ids, la.Atom)
		if born := n.AtomBornSeq(la.Atom); born > dr.NewestBorn {
			dr.NewestBorn = born
		}
	}
	for _, la := range d.Added {
		touch(la)
	}
	for _, la := range d.Removed {
		touch(la)
	}
	for _, l := range dr.links {
		t := dr.byLink[l]
		sort.Slice(t.ids, func(i, j int) bool { return t.ids[i] < t.ids[j] })
		for _, id := range t.ids {
			t.rs.AppendID(id)
		}
	}
}

// Ranges returns the touched-atom range set of a link from the most
// recent Build, or nil when the delta did not touch the link. The result
// is owned by dr and valid until the next Build.
func (dr *DeltaRanges) Ranges(l netgraph.LinkID) *intervalmap.RangeSet {
	if t := dr.byLink[l]; t != nil && t.gen == dr.gen {
		return &t.rs
	}
	return nil
}

// Links returns the links the most recent Build touched, in first-touch
// order. The slice is owned by dr and valid until the next Build.
func (dr *DeltaRanges) Links() []netgraph.LinkID { return dr.links }
