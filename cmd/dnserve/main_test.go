package main

import (
	"os"
	"strings"
	"testing"
	"time"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/server"
)

func TestParseCheckpoint(t *testing.T) {
	cases := []struct {
		in      string
		every   time.Duration
		updates uint64
		wantErr bool
	}{
		{in: "", every: 0, updates: 0},
		{in: "30s", every: 30 * time.Second},
		{in: "5m", every: 5 * time.Minute},
		{in: "1000u", updates: 1000},
		{in: "1u", updates: 1},
		{in: "0u", wantErr: true},
		{in: "0s", wantErr: true},
		{in: "-5s", wantErr: true},
		{in: "u", wantErr: true},
		{in: "soon", wantErr: true},
		{in: "12", wantErr: true}, // bare count: ambiguous, demand the suffix
	}
	for _, c := range cases {
		every, updates, err := parseCheckpoint(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("parseCheckpoint(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && (every != c.every || updates != c.updates) {
			t.Errorf("parseCheckpoint(%q) = (%v, %d), want (%v, %d)",
				c.in, every, updates, c.every, c.updates)
		}
	}
}

// TestCheckpointerWritesState: the background checkpointer saves a
// loadable state file through the atomic-rename path while the server
// is live, without waiting for shutdown.
func TestCheckpointerWritesState(t *testing.T) {
	s := server.New()
	a := s.Graph().AddNode("a")
	b := s.Graph().AddNode("b")
	l := s.Graph().AddLink(a, b)
	var d core.Delta
	if err := s.Network().InsertRuleInto(core.Rule{
		ID: 1, Source: a, Link: l, Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1}, &d); err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/dn.state"
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		runCheckpointer(s, path, nil, 5*time.Millisecond, 0, stop)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restored := server.New()
	if err := restored.LoadState(strings.NewReader(string(data))); err != nil {
		t.Fatalf("checkpoint not loadable: %v\n%s", err, data)
	}
	if restored.Network().NumRules() != 1 || restored.Graph().NumNodes() != 2 {
		t.Fatalf("checkpoint content wrong: %d rules, %d nodes",
			restored.Network().NumRules(), restored.Graph().NumNodes())
	}
}
