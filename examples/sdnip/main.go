// Sdnip: the paper's end-to-end experimental pipeline (§4.2.2, Figure 7)
// in one program — an SDN-IP controller over the Airtel WAN converges,
// then the event injector fails every inter-switch link one at a time
// (with recovery) while Delta-net checks each resulting rule update in
// real time, reproducing the Airtel 1 scenario.
//
// Run with: go run ./examples/sdnip
package main

import (
	"fmt"
	"log"
	"time"

	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/sdnip"
	"deltanet/internal/stats"
	"deltanet/internal/topo"
	"deltanet/internal/trace"
)

func main() {
	g, err := topo.Build("airtel")
	if err != nil {
		log.Fatal(err)
	}
	ads := sdnip.RandomAdvertisements(sdnip.Switches(g), 25, 9498)
	fmt.Printf("Airtel WAN: %d switches; %d BGP prefixes advertised\n",
		len(sdnip.Switches(g)), len(ads))

	// The controller converges and the event injector cycles through
	// single-link failures, producing the Airtel 1 style trace.
	tr := sdnip.Airtel1Trace(g, ads)
	fmt.Printf("controller emitted %d rule operations (%d inserts)\n",
		len(tr.Ops), tr.NumInserts())

	// Delta-net checks every update as it happens.
	n := core.NewNetwork(tr.Graph, core.Options{})
	lat := stats.NewLatencies(len(tr.Ops))
	transientLoops := 0
	var d core.Delta
	for i, op := range tr.Ops {
		t0 := time.Now()
		if err := trace.Apply(n, op, &d); err != nil {
			log.Fatalf("op %d: %v", i, err)
		}
		loops := check.FindLoopsDelta(n, &d)
		lat.Add(time.Since(t0))
		transientLoops += len(loops)
	}

	fmt.Printf("\nreal-time verification of the full failure campaign:\n")
	fmt.Printf("  median  %8s per update (insert/remove + loop check)\n", stats.FormatMicros(lat.Median()))
	fmt.Printf("  average %8s\n", stats.FormatMicros(lat.Mean()))
	fmt.Printf("  p99     %8s\n", stats.FormatMicros(lat.Percentile(99)))
	fmt.Printf("  < 250µs %7.2f%%  (the paper's Table 3 threshold)\n",
		lat.FractionBelow(250*time.Microsecond)*100)
	fmt.Printf("  transient loop alarms during reconvergence: %d\n", transientLoops)

	// The converged network must be clean.
	if loops := check.FindLoopsAll(n); len(loops) != 0 {
		log.Fatalf("converged data plane has %d loops", len(loops))
	}
	fmt.Println("  converged data plane: loop-free ✓")
}
