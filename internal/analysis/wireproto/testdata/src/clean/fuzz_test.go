package clean

type fuzzer interface {
	Add(args ...any)
}

func FuzzDispatch(f fuzzer) {
	for _, seed := range []string{
		"get a\nput a 1\n",
		"quit\n",
	} {
		f.Add([]byte(seed))
	}
}
