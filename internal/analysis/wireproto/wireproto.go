// Package wireproto cross-checks the server's wire-protocol surface:
// the command strings the dispatch code actually handles, the command
// registry (the []string variable annotated //deltanet:dispatch), the
// README's protocol table, and the fuzz seed corpus must all agree.
//
// The invariant: a new command cannot ship undocumented or unfuzzed.
// Concretely, for a package whose dispatch functions and registry are
// annotated //deltanet:dispatch:
//
//   - every command string a dispatch function switches on must be in
//     the registry (the registry may list more: commands handled outside
//     a switch, like a bare "quit" comparison, are registry-only);
//   - the registry must be sorted and duplicate-free;
//   - registry and README protocol table (the markdown table whose
//     header row contains "| Request") must list exactly the same
//     commands — the README is found by walking up from the package
//     directory, so fixtures carry their own;
//   - every registry command must appear as the first token of a line
//     in some fuzz seed: an f.Add string in a Fuzz* function of the
//     package's _test.go files, or a testdata/fuzz corpus entry.
//
// Packages with no //deltanet:dispatch markers are skipped.
package wireproto

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"deltanet/internal/analysis/dnlint"
)

// Analyzer cross-checks dispatch code, registry, README and fuzz seeds.
var Analyzer = &dnlint.Analyzer{
	Name: "wireproto",
	Doc:  "check that dispatched wire commands, the command registry, the README protocol table and the fuzz seeds agree",
	Run:  run,
}

// registryEntry is one command in the //deltanet:dispatch registry.
type registryEntry struct {
	name string
	pos  token.Pos
}

func run(pass *dnlint.Pass) error {
	var (
		registry    []registryEntry
		registryPos token.Pos
		dispatchFns []*ast.FuncDecl
	)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if _, ok := dnlint.GroupMarker(d.Doc, "dispatch"); ok {
					dispatchFns = append(dispatchFns, d)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					_, marked := dnlint.GroupMarker(vs.Doc, "dispatch")
					if !marked && len(d.Specs) == 1 {
						_, marked = dnlint.GroupMarker(d.Doc, "dispatch")
					}
					if !marked {
						continue
					}
					if registryPos != token.NoPos {
						pass.Reportf(vs.Pos(), "duplicate //deltanet:dispatch registry (first at %s)", pass.Fset.Position(registryPos))
						continue
					}
					registryPos = vs.Pos()
					registry = registryEntries(pass, vs)
				}
			}
		}
	}
	if registryPos == token.NoPos && len(dispatchFns) == 0 {
		return nil // package has no annotated wire protocol
	}
	if registryPos == token.NoPos {
		for _, fn := range dispatchFns {
			pass.Reportf(fn.Pos(), "//deltanet:dispatch function %s has no //deltanet:dispatch registry variable in the package", fn.Name.Name)
		}
		return nil
	}

	inRegistry := make(map[string]bool, len(registry))
	for i, e := range registry {
		if inRegistry[e.name] {
			pass.Reportf(e.pos, "registry lists %q twice", e.name)
		}
		inRegistry[e.name] = true
		if i > 0 && registry[i-1].name > e.name {
			pass.Reportf(e.pos, "registry is not sorted: %q belongs before %q", e.name, registry[i-1].name)
		}
	}

	// Dispatched command strings must all be registered.
	for _, fn := range dispatchFns {
		for _, cmd := range dispatchedCommands(fn) {
			if !inRegistry[cmd.name] {
				pass.Reportf(cmd.pos, "command %q is dispatched but missing from the //deltanet:dispatch registry", cmd.name)
			}
		}
	}

	// Registry vs README protocol table, both directions.
	readme, documented, err := readmeCommands(pass.Dir)
	if err != nil {
		pass.Reportf(registryPos, "cannot cross-check README protocol table: %v", err)
	} else {
		for _, e := range registry {
			if !documented[e.name] {
				pass.Reportf(e.pos, "registry command %q is not documented in the protocol table of %s", e.name, readme)
			}
		}
		var undocumented []string
		for cmd := range documented {
			if !inRegistry[cmd] {
				undocumented = append(undocumented, cmd)
			}
		}
		sort.Strings(undocumented)
		for _, cmd := range undocumented {
			pass.Reportf(registryPos, "protocol table of %s documents %q, which is not in the registry", readme, cmd)
		}
	}

	// Every registry command needs a fuzz seed.
	seeds, err := seedTokens(pass)
	if err != nil {
		pass.Reportf(registryPos, "cannot cross-check fuzz seeds: %v", err)
		return nil
	}
	for _, e := range registry {
		if !seeds[e.name] {
			pass.Reportf(e.pos, "registry command %q has no fuzz seed (no f.Add literal or testdata/fuzz corpus line starts with it)", e.name)
		}
	}
	return nil
}

// registryEntries extracts the command strings of the registry variable,
// which must be a single []string composite literal.
func registryEntries(pass *dnlint.Pass, vs *ast.ValueSpec) []registryEntry {
	if len(vs.Values) != 1 {
		pass.Reportf(vs.Pos(), "//deltanet:dispatch registry must be a single []string composite literal")
		return nil
	}
	cl, ok := vs.Values[0].(*ast.CompositeLit)
	if !ok {
		pass.Reportf(vs.Pos(), "//deltanet:dispatch registry must be a []string composite literal")
		return nil
	}
	var entries []registryEntry
	for _, elt := range cl.Elts {
		lit, ok := stringLit(elt)
		if !ok {
			pass.Reportf(elt.Pos(), "//deltanet:dispatch registry entries must be plain string literals")
			continue
		}
		entries = append(entries, registryEntry{name: lit, pos: elt.Pos()})
	}
	return entries
}

// dispatchedCommands collects the command strings an annotated function
// switches on: case literals of a tag switch, and string literals
// compared with == in a tagless switch.
func dispatchedCommands(fn *ast.FuncDecl) []registryEntry {
	var cmds []registryEntry
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				if sw.Tag != nil {
					if s, ok := stringLit(e); ok {
						cmds = append(cmds, registryEntry{name: s, pos: e.Pos()})
					}
					continue
				}
				if be, ok := e.(*ast.BinaryExpr); ok && be.Op == token.EQL {
					if s, ok := stringLit(be.X); ok {
						cmds = append(cmds, registryEntry{name: s, pos: be.X.Pos()})
					}
					if s, ok := stringLit(be.Y); ok {
						cmds = append(cmds, registryEntry{name: s, pos: be.Y.Pos()})
					}
				}
			}
		}
		return true
	})
	return cmds
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// readmeCommands finds the nearest README.md at or above dir (not
// looking past the module root) and returns the first-token command set
// of its protocol table — the markdown table whose header row contains
// "| Request".
func readmeCommands(dir string) (string, map[string]bool, error) {
	path := ""
	for d := dir; ; {
		cand := filepath.Join(d, "README.md")
		if _, err := os.Stat(cand); err == nil {
			path = cand
			break
		}
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			break // module root reached without a README
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	if path == "" {
		return "", nil, fmt.Errorf("no README.md between %s and the module root", dir)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	cmds := make(map[string]bool)
	inTable := false
	rows := 0
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			inTable = false
			continue
		}
		if strings.Contains(line, "| Request") {
			inTable = true
			rows++
			continue
		}
		if !inTable {
			continue
		}
		cell := firstCell(line)
		if cell == "" || strings.HasPrefix(cell, "-") {
			continue // separator row
		}
		cell = strings.Trim(cell, "`")
		if fields := strings.Fields(cell); len(fields) > 0 {
			cmds[strings.Trim(fields[0], "`")] = true
		}
	}
	if rows == 0 {
		return "", nil, fmt.Errorf("%s has no protocol table (no row containing %q)", path, "| Request")
	}
	return filepath.Base(path), cmds, nil
}

func firstCell(row string) string {
	row = strings.TrimPrefix(row, "|")
	if i := strings.Index(row, "|"); i >= 0 {
		row = row[:i]
	}
	return strings.TrimSpace(row)
}

// seedTokens gathers the first token of every seed line the package's
// fuzzers know: string/[]byte literals inside Fuzz* functions of the
// package's _test.go files, plus `go test fuzz v1` corpus files under
// testdata/fuzz.
func seedTokens(pass *dnlint.Pass) (map[string]bool, error) {
	tokens := make(map[string]bool)
	add := func(seed string) {
		for _, line := range strings.Split(seed, "\n") {
			if fields := strings.Fields(line); len(fields) > 0 {
				tokens[fields[0]] = true
			}
		}
	}

	testFiles, err := filepath.Glob(filepath.Join(pass.Dir, "*_test.go"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	for _, tf := range testFiles {
		f, err := parser.ParseFile(fset, tf, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", filepath.Base(tf), err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Fuzz") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if s, ok := n.(ast.Expr); ok {
					if lit, ok := stringLit(s); ok {
						add(lit)
					}
				}
				return true
			})
		}
	}

	corpus, err := filepath.Glob(filepath.Join(pass.Dir, "testdata", "fuzz", "*", "*"))
	if err != nil {
		return nil, err
	}
	for _, cf := range corpus {
		data, err := os.ReadFile(cf)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n")[1:] {
			// Each line is e.g. string("reach 0 1\n") or []byte("..."):
			// unquote the inner Go literal.
			open := strings.Index(line, `("`)
			end := strings.LastIndex(line, `")`)
			if open < 0 || end <= open {
				continue
			}
			if s, err := strconv.Unquote(line[open+1 : end+1]); err == nil {
				add(s)
			}
		}
	}
	return tokens, nil
}
