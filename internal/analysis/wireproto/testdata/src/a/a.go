// Package a is the wireproto analyzer's flagged fixture: the registry,
// the dispatch switches, the README protocol table and the fuzz seeds
// all disagree in one way each.
package a

import "strings"

// commands is the wire registry. "get" and "del" are deliberately
// swapped (sort violation), "put" is listed twice, "del" is neither in
// the README table nor the fuzz seeds, and the README documents a
// "quux" command nobody dispatches.
//
//deltanet:dispatch
var commands = []string{ // want `protocol table of README\.md documents "quux", which is not in the registry`
	"get",
	"del", // want `registry is not sorted: "del" belongs before "get"` `registry command "del" is not documented in the protocol table of README\.md` `registry command "del" has no fuzz seed`
	"put",
	"put", // want `registry lists "put" twice`
}

//deltanet:dispatch
func dispatch(cmd string) string {
	switch cmd {
	case "get":
		return "ok get"
	case "put":
		return "ok put"
	case "new": // want `command "new" is dispatched but missing from the //deltanet:dispatch registry`
		return "ok new"
	}
	return "err"
}

//deltanet:dispatch
func handle(line string) string {
	fields := strings.Fields(line)
	switch {
	case len(fields) > 0 && fields[0] == "del":
		return "ok del"
	}
	return dispatch(line)
}
