// Package sdnip simulates the SDN-IP / ONOS experimental setup of the
// paper (§4.2.2, Figure 7). The real setup — an ONOS controller running the
// SDN-IP application over Mininet-emulated Open vSwitches peered with
// Quagga BGP routers — is an external software stack, so per the
// reproduction's substitution rule we model the part the data-plane checker
// observes: a controller that, for every externally advertised prefix,
// installs longest-prefix-priority forwarding rules along shortest paths
// toward the egress border switch, and that reacts to link failures by
// rerouting (removing the rules of broken paths and installing rules for
// new ones). An event injector drives the Airtel 1 (all single-link
// failures with recovery) and Airtel 2 (all 2-link failure pairs)
// scenarios.
//
// The controller's output is an operation trace, exactly what Delta-net
// checks in the paper's experiments.
package sdnip

import (
	"math/rand"
	"sort"

	"deltanet/internal/bgp"
	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
	"deltanet/internal/routes"
	"deltanet/internal/trace"
)

// Advertisement is one external BGP route: a prefix reachable through a
// border switch (the switch the external AS peers with).
type Advertisement struct {
	Prefix ipnet.Prefix
	Egress netgraph.NodeID
}

// Controller is the miniature SDN-IP control plane.
type Controller struct {
	g      *netgraph.Graph
	ads    []Advertisement
	failed map[netgraph.LinkID]bool
	nextID core.RuleID

	// installed[adIndex][node] is the live rule id at node for that
	// advertisement, or 0 when none.
	installed []map[netgraph.NodeID]core.RuleID

	// ruleLinks tracks each installed rule's link so reroute can detect
	// path changes without retaining whole rules.
	ruleLinks map[core.RuleID]netgraph.LinkID

	// extLinks[sw] is the link from border switch sw to its external
	// peer node, created lazily. At an advertisement's egress, SDN-IP
	// hands traffic off to the external AS through this link (the eBGP
	// peering of Figure 7); without it, packets would wrongly fall
	// through to other prefixes' rules at the border.
	extLinks map[netgraph.NodeID]netgraph.LinkID

	ops []trace.Op
}

// NewController creates a controller over the topology with the given
// advertisements. Rules are not installed until Announce is called.
func NewController(g *netgraph.Graph, ads []Advertisement) *Controller {
	return &Controller{
		g:         g,
		ads:       ads,
		failed:    map[netgraph.LinkID]bool{},
		nextID:    1,
		installed: make([]map[netgraph.NodeID]core.RuleID, len(ads)),
		extLinks:  map[netgraph.NodeID]netgraph.LinkID{},
	}
}

// extLink returns the egress hand-off link for a border switch, creating
// the external peer node on first use.
func (c *Controller) extLink(sw netgraph.NodeID) netgraph.LinkID {
	if l, ok := c.extLinks[sw]; ok {
		return l
	}
	ext := c.g.AddNode("ext:" + c.g.NodeName(sw))
	l := c.g.AddLink(sw, ext)
	c.extLinks[sw] = l
	return l
}

// AdvertiseAll installs the rules for every advertisement, emitting insert
// operations — the initial convergence of SDN-IP after the BGP speakers
// exchange routes.
func (c *Controller) AdvertiseAll() {
	for i := range c.ads {
		c.reroute(i)
	}
}

// reroute recomputes advertisement i's shortest-path tree under the
// current failure set and diffs it against what is installed: removals
// first (as ONOS withdraws broken intents), then inserts.
//
// Update ordering follows the consistent-update discipline real intent
// frameworks use to avoid transient forwarding loops: stale rules are
// removed deepest-first (so the survivors always form a connected subtree
// containing the egress) and new rules are installed egress-outward (so a
// packet that reaches any node already carrying the new rule rides the new
// tree straight to the egress). With this ordering every intermediate data
// plane state is loop-free, which the sdnip tests assert per operation.
func (c *Controller) reroute(i int) {
	ad := c.ads[i]
	next := routes.ShortestPathTree(c.g, ad.Egress, c.failed)
	// The egress itself hands traffic to the external AS.
	next[ad.Egress] = c.extLink(ad.Egress)
	cur := c.installed[i]
	if cur == nil {
		cur = map[netgraph.NodeID]core.RuleID{}
		c.installed[i] = cur
	}

	// Pass 1: remove rules whose link changed or disappeared, deepest
	// (farthest from the egress along the OLD tree) first.
	var stale []netgraph.NodeID
	for v, id := range cur {
		if next[v] == netgraph.NoLink || c.linkChanged(id, v, next[v]) {
			stale = append(stale, v)
		}
	}
	oldDepth := c.treeDepths(func(v netgraph.NodeID) netgraph.LinkID {
		id, ok := cur[v]
		if !ok {
			return netgraph.NoLink
		}
		return c.ruleLinks[id]
	}, ad.Egress)
	sortByDepth(stale, oldDepth, false)
	for _, v := range stale {
		id := cur[v]
		c.ops = append(c.ops, trace.Op{Rule: core.Rule{ID: id}})
		delete(cur, v)
		delete(c.ruleLinks, id)
	}

	// Pass 2: insert missing rules, egress-outward along the NEW tree.
	var missing []netgraph.NodeID
	for v := netgraph.NodeID(0); int(v) < len(next); v++ {
		if next[v] == netgraph.NoLink {
			continue
		}
		if _, ok := cur[v]; !ok {
			missing = append(missing, v)
		}
	}
	newDepth := c.treeDepths(func(v netgraph.NodeID) netgraph.LinkID {
		if int(v) < len(next) {
			return next[v]
		}
		return netgraph.NoLink
	}, ad.Egress)
	sortByDepth(missing, newDepth, true)
	for _, v := range missing {
		id := c.nextID
		c.nextID++
		r := core.Rule{
			ID:       id,
			Source:   v,
			Link:     next[v],
			Match:    ad.Prefix.Interval(),
			Priority: core.Priority(ad.Prefix.Len), // longest-prefix priority
		}
		cur[v] = id
		c.rememberLink(id, next[v])
		c.ops = append(c.ops, trace.Op{Insert: true, Rule: r})
	}
}

// treeDepths computes each node's hop distance to the egress following the
// given next-link function (a forest; unreachable nodes get a large
// depth).
func (c *Controller) treeDepths(nextLink func(netgraph.NodeID) netgraph.LinkID, egress netgraph.NodeID) map[netgraph.NodeID]int {
	const unreachable = 1 << 20
	depth := map[netgraph.NodeID]int{egress: 0}
	var resolve func(v netgraph.NodeID, hops int) int
	resolve = func(v netgraph.NodeID, hops int) int {
		if d, ok := depth[v]; ok {
			return d
		}
		if hops > c.g.NumNodes() {
			return unreachable
		}
		l := nextLink(v)
		if l == netgraph.NoLink {
			depth[v] = unreachable
			return unreachable
		}
		dst := c.g.Link(l).Dst
		if isExternal(c.g, dst) {
			// Hand-off link: terminates at the external peer.
			depth[v] = 1
			return 1
		}
		d := resolve(dst, hops+1)
		if d != unreachable {
			d++
		}
		depth[v] = d
		return d
	}
	for v := netgraph.NodeID(0); int(v) < c.g.NumNodes(); v++ {
		resolve(v, 0)
	}
	return depth
}

// sortByDepth orders nodes by tree depth, ascending (root-first) or
// descending (leaves-first), breaking ties by node id for determinism.
func sortByDepth(nodes []netgraph.NodeID, depth map[netgraph.NodeID]int, ascending bool) {
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := depth[nodes[i]], depth[nodes[j]]
		if di != dj {
			if ascending {
				return di < dj
			}
			return di > dj
		}
		return nodes[i] < nodes[j]
	})
}

func (c *Controller) rememberLink(id core.RuleID, l netgraph.LinkID) {
	if c.ruleLinks == nil {
		c.ruleLinks = map[core.RuleID]netgraph.LinkID{}
	}
	c.ruleLinks[id] = l
}

func (c *Controller) linkChanged(id core.RuleID, v netgraph.NodeID, want netgraph.LinkID) bool {
	return c.ruleLinks[id] != want
}

// FailLink marks a link (and its reverse twin) failed and reroutes every
// advertisement, emitting the removal/insert churn ONOS would produce.
func (c *Controller) FailLink(l netgraph.LinkID) {
	c.failed[l] = true
	if rev := c.reverseOf(l); rev != netgraph.NoLink {
		c.failed[rev] = true
	}
	c.rerouteAll()
}

// RecoverLink clears a failure and re-optimizes paths.
func (c *Controller) RecoverLink(l netgraph.LinkID) {
	delete(c.failed, l)
	if rev := c.reverseOf(l); rev != netgraph.NoLink {
		delete(c.failed, rev)
	}
	c.rerouteAll()
}

func (c *Controller) rerouteAll() {
	for i := range c.ads {
		c.reroute(i)
	}
}

func (c *Controller) reverseOf(l netgraph.LinkID) netgraph.LinkID {
	lk := c.g.Link(l)
	return c.g.FindLink(lk.Dst, lk.Src)
}

// Ops returns the accumulated operation stream.
func (c *Controller) Ops() []trace.Op { return c.ops }

// ResetOps clears the accumulated stream (e.g. after initial convergence
// when only failure churn should be traced).
func (c *Controller) ResetOps() { c.ops = nil }

// RandomAdvertisements draws prefixesPerBorder advertisements for each
// border switch from a synthetic Route-Views feed, as in the paper's setup
// where each Quagga border router advertises a fixed number of prefixes
// randomly selected from real tables. Prefixes are distinct across ALL
// borders: SDN-IP's BGP best-path selection installs at most one intent
// per prefix, so two borders never compete for the same prefix.
func RandomAdvertisements(borders []netgraph.NodeID, prefixesPerBorder int, seed int64) []Advertisement {
	feed := bgp.NewFeed(seed, 0.3)
	rng := rand.New(rand.NewSource(seed + 1))
	seen := map[ipnet.Prefix]bool{}
	var ads []Advertisement
	for _, b := range borders {
		for got := 0; got < prefixesPerBorder; {
			p := feed.Next()
			if seen[p] {
				continue
			}
			seen[p] = true
			ads = append(ads, Advertisement{Prefix: p, Egress: b})
			got++
		}
	}
	rng.Shuffle(len(ads), func(i, j int) { ads[i], ads[j] = ads[j], ads[i] })
	return ads
}

// InterSwitchLinks returns one representative per bidirectional link pair
// (the failure candidates; the paper fails inter-switch links).
func InterSwitchLinks(g *netgraph.Graph) []netgraph.LinkID {
	var out []netgraph.LinkID
	seen := map[[2]netgraph.NodeID]bool{}
	for _, l := range g.Links() {
		if g.IsDropLink(l.ID) || isExternal(g, l.Src) || isExternal(g, l.Dst) {
			continue
		}
		key := [2]netgraph.NodeID{l.Src, l.Dst}
		rkey := [2]netgraph.NodeID{l.Dst, l.Src}
		if seen[key] || seen[rkey] {
			continue
		}
		seen[key] = true
		out = append(out, l.ID)
	}
	return out
}

// Airtel1Trace generates the Airtel 1 dataset: initial convergence, then
// every inter-switch link failed and recovered one at a time (§4.2.2).
func Airtel1Trace(g *netgraph.Graph, ads []Advertisement) *trace.Trace {
	c := NewController(g, ads)
	c.AdvertiseAll()
	for _, l := range InterSwitchLinks(g) {
		c.FailLink(l)
		c.RecoverLink(l)
	}
	return &trace.Trace{Name: "airtel1", Graph: g, Ops: c.Ops()}
}

// Airtel2Trace generates the Airtel 2 dataset: all 2-link failure pairs,
// separately failing the first link and then the second, including
// recovery (§4.2.2). maxPairs > 0 caps the number of pairs for scaled-down
// runs; 0 means all pairs.
func Airtel2Trace(g *netgraph.Graph, ads []Advertisement, maxPairs int) *trace.Trace {
	c := NewController(g, ads)
	c.AdvertiseAll()
	links := InterSwitchLinks(g)
	pairs := 0
	for i := 0; i < len(links) && (maxPairs == 0 || pairs < maxPairs); i++ {
		for j := i + 1; j < len(links) && (maxPairs == 0 || pairs < maxPairs); j++ {
			c.FailLink(links[i])
			c.FailLink(links[j])
			c.RecoverLink(links[j])
			c.RecoverLink(links[i])
			pairs++
		}
	}
	return &trace.Trace{Name: "airtel2", Graph: g, Ops: c.Ops()}
}

// FourSwitchTrace generates the 4Switch dataset: a 4-switch ring where
// each border router advertises many prefixes, repeated over several
// rounds with different prefixes, insertions only (§4.2.2).
func FourSwitchTrace(g *netgraph.Graph, prefixesPerBorder, rounds int, seed int64) *trace.Trace {
	var all []trace.Op
	var c *Controller
	nextBase := core.RuleID(1)
	borders := switchesOf(g)
	for round := 0; round < rounds; round++ {
		ads := RandomAdvertisements(borders, prefixesPerBorder, seed+int64(round)*977)
		c = NewController(g, ads)
		c.nextID = nextBase
		c.AdvertiseAll()
		all = append(all, c.Ops()...)
		nextBase = c.nextID
	}
	return &trace.Trace{Name: "4switch", Graph: g, Ops: all}
}

// Switches returns the SDN switches of a topology: every node except the
// drop sink and external AS peers.
func Switches(g *netgraph.Graph) []netgraph.NodeID { return switchesOf(g) }

func switchesOf(g *netgraph.Graph) []netgraph.NodeID {
	var out []netgraph.NodeID
	for v := netgraph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if v != g.DropNode() && !isExternal(g, v) {
			out = append(out, v)
		}
	}
	return out
}

// IsExternal reports whether the node models an external AS peer rather
// than a switch of the SDN network.
func IsExternal(g *netgraph.Graph, v netgraph.NodeID) bool { return isExternal(g, v) }

func isExternal(g *netgraph.Graph, v netgraph.NodeID) bool {
	name := g.NodeName(v)
	return len(name) > 4 && name[:4] == "ext:"
}
