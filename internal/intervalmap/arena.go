package intervalmap

// arenaTree is an index-addressed red-black tree specialized to the
// boundary map's key/value types (uint64 bounds ↦ AtomID). Nodes live in
// one contiguous slice and refer to each other by int32 index instead of
// pointer, with -1 as nil. Deleted node slots are recycled through an
// intrusive free list threaded through the left field, so steady-state
// split/merge churn reuses slots instead of allocating.
//
// The layout matters for two reasons. First, the node arena is a single
// pointer-free allocation: the garbage collector never scans it, no
// matter how many boundaries the map holds (internal/rbtree allocates one
// heap node per key, each with three pointers for the GC to chase).
// Second, tree traversals walk a contiguous slice rather than scattered
// heap objects, which is kinder to the cache on the CreateAtoms /
// AtomsOverlapping hot paths. internal/rbtree stays as the differential
// oracle for this implementation (see intervalmap_oracle_test.go and
// FuzzIntervalMapFlat).
type arenaTree struct {
	nodes    []treeNode
	root     int32
	freeNode int32 // head of the free-slot list, threaded through left
	size     int
}

// treeNode is one arena slot. It contains no pointers so the backing
// slice is invisible to the garbage collector.
//
//deltanet:pointerfree
type treeNode struct {
	key                 uint64
	left, right, parent int32
	val                 AtomID
	color               uint8
}

const nilNode int32 = -1

const (
	red   uint8 = 0
	black uint8 = 1
)

func newArenaTree() arenaTree {
	return arenaTree{root: nilNode, freeNode: nilNode}
}

// newNode takes a slot from the free list or extends the arena. Fresh
// nodes are red, per the usual insertion scheme.
func (t *arenaTree) newNode(key uint64, val AtomID, parent int32) int32 {
	var i int32
	if t.freeNode != nilNode {
		i = t.freeNode
		t.freeNode = t.nodes[i].left
	} else {
		i = int32(len(t.nodes))
		t.nodes = append(t.nodes, treeNode{})
	}
	t.nodes[i] = treeNode{key: key, val: val, left: nilNode, right: nilNode, parent: parent, color: red}
	return i
}

func (t *arenaTree) freeSlot(i int32) {
	t.nodes[i] = treeNode{left: t.freeNode, right: nilNode, parent: nilNode}
	t.freeNode = i
}

func (t *arenaTree) len() int { return t.size }

func (t *arenaTree) find(key uint64) int32 {
	n := t.root
	for n != nilNode {
		nd := &t.nodes[n]
		switch {
		case key < nd.key:
			n = nd.left
		case key > nd.key:
			n = nd.right
		default:
			return n
		}
	}
	return nilNode
}

func (t *arenaTree) get(key uint64) (AtomID, bool) {
	if n := t.find(key); n != nilNode {
		return t.nodes[n].val, true
	}
	return 0, false
}

func (t *arenaTree) has(key uint64) bool { return t.find(key) != nilNode }

// insert stores val under key, replacing the value if the key exists.
// It reports whether a new node was created.
func (t *arenaTree) insert(key uint64, val AtomID) bool {
	parent := nilNode
	n := t.root
	for n != nilNode {
		parent = n
		nd := &t.nodes[n]
		switch {
		case key < nd.key:
			n = nd.left
		case key > nd.key:
			n = nd.right
		default:
			nd.val = val
			return false
		}
	}
	i := t.newNode(key, val, parent)
	switch {
	case parent == nilNode:
		t.root = i
	case key < t.nodes[parent].key:
		t.nodes[parent].left = i
	default:
		t.nodes[parent].right = i
	}
	t.size++
	t.insertFixup(i)
	return true
}

func (t *arenaTree) insertFixup(n int32) {
	for {
		p := t.nodes[n].parent
		if p == nilNode || t.nodes[p].color != red {
			break
		}
		g := t.nodes[p].parent // grandparent exists: the root is black
		if p == t.nodes[g].left {
			u := t.nodes[g].right
			if u != nilNode && t.nodes[u].color == red {
				t.nodes[p].color = black
				t.nodes[u].color = black
				t.nodes[g].color = red
				n = g
				continue
			}
			if n == t.nodes[p].right {
				n = p
				t.rotateLeft(n)
				p = t.nodes[n].parent
			}
			t.nodes[p].color = black
			t.nodes[g].color = red
			t.rotateRight(g)
		} else {
			u := t.nodes[g].left
			if u != nilNode && t.nodes[u].color == red {
				t.nodes[p].color = black
				t.nodes[u].color = black
				t.nodes[g].color = red
				n = g
				continue
			}
			if n == t.nodes[p].left {
				n = p
				t.rotateRight(n)
				p = t.nodes[n].parent
			}
			t.nodes[p].color = black
			t.nodes[g].color = red
			t.rotateLeft(g)
		}
	}
	t.nodes[t.root].color = black
}

func (t *arenaTree) rotateLeft(x int32) {
	y := t.nodes[x].right
	yl := t.nodes[y].left
	t.nodes[x].right = yl
	if yl != nilNode {
		t.nodes[yl].parent = x
	}
	p := t.nodes[x].parent
	t.nodes[y].parent = p
	switch {
	case p == nilNode:
		t.root = y
	case x == t.nodes[p].left:
		t.nodes[p].left = y
	default:
		t.nodes[p].right = y
	}
	t.nodes[y].left = x
	t.nodes[x].parent = y
}

func (t *arenaTree) rotateRight(x int32) {
	y := t.nodes[x].left
	yr := t.nodes[y].right
	t.nodes[x].left = yr
	if yr != nilNode {
		t.nodes[yr].parent = x
	}
	p := t.nodes[x].parent
	t.nodes[y].parent = p
	switch {
	case p == nilNode:
		t.root = y
	case x == t.nodes[p].right:
		t.nodes[p].right = y
	default:
		t.nodes[p].left = y
	}
	t.nodes[y].right = x
	t.nodes[x].parent = y
}

// delete removes key and reports whether it was present. The freed slot
// goes on the free list.
func (t *arenaTree) delete(key uint64) bool {
	n := t.find(key)
	if n == nilNode {
		return false
	}
	t.deleteNode(n)
	return true
}

// deleteNode removes z using the classic CLRS scheme, index-addressed.
func (t *arenaTree) deleteNode(z int32) {
	t.size--
	y := z
	yOrig := t.nodes[y].color
	var x, xParent int32
	switch {
	case t.nodes[z].left == nilNode:
		x = t.nodes[z].right
		xParent = t.nodes[z].parent
		t.transplant(z, x)
	case t.nodes[z].right == nilNode:
		x = t.nodes[z].left
		xParent = t.nodes[z].parent
		t.transplant(z, x)
	default:
		y = t.minFrom(t.nodes[z].right)
		yOrig = t.nodes[y].color
		x = t.nodes[y].right
		if t.nodes[y].parent == z {
			xParent = y
		} else {
			xParent = t.nodes[y].parent
			t.transplant(y, x)
			zr := t.nodes[z].right
			t.nodes[y].right = zr
			t.nodes[zr].parent = y
		}
		t.transplant(z, y)
		zl := t.nodes[z].left
		t.nodes[y].left = zl
		t.nodes[zl].parent = y
		t.nodes[y].color = t.nodes[z].color
	}
	if yOrig == black {
		t.deleteFixup(x, xParent)
	}
	t.freeSlot(z)
}

func (t *arenaTree) transplant(u, v int32) {
	p := t.nodes[u].parent
	switch {
	case p == nilNode:
		t.root = v
	case u == t.nodes[p].left:
		t.nodes[p].left = v
	default:
		t.nodes[p].right = v
	}
	if v != nilNode {
		t.nodes[v].parent = p
	}
}

func (t *arenaTree) isBlack(n int32) bool { return n == nilNode || t.nodes[n].color == black }

func (t *arenaTree) deleteFixup(x, parent int32) {
	for x != t.root && t.isBlack(x) {
		if parent == nilNode {
			break
		}
		if x == t.nodes[parent].left {
			w := t.nodes[parent].right
			if t.nodes[w].color == red {
				t.nodes[w].color = black
				t.nodes[parent].color = red
				t.rotateLeft(parent)
				w = t.nodes[parent].right
			}
			if t.isBlack(t.nodes[w].left) && t.isBlack(t.nodes[w].right) {
				t.nodes[w].color = red
				x = parent
				parent = t.nodes[x].parent
				continue
			}
			if t.isBlack(t.nodes[w].right) {
				t.nodes[t.nodes[w].left].color = black
				t.nodes[w].color = red
				t.rotateRight(w)
				w = t.nodes[parent].right
			}
			t.nodes[w].color = t.nodes[parent].color
			t.nodes[parent].color = black
			t.nodes[t.nodes[w].right].color = black
			t.rotateLeft(parent)
			x = t.root
			parent = nilNode
		} else {
			w := t.nodes[parent].left
			if t.nodes[w].color == red {
				t.nodes[w].color = black
				t.nodes[parent].color = red
				t.rotateRight(parent)
				w = t.nodes[parent].left
			}
			if t.isBlack(t.nodes[w].right) && t.isBlack(t.nodes[w].left) {
				t.nodes[w].color = red
				x = parent
				parent = t.nodes[x].parent
				continue
			}
			if t.isBlack(t.nodes[w].left) {
				t.nodes[t.nodes[w].right].color = black
				t.nodes[w].color = red
				t.rotateLeft(w)
				w = t.nodes[parent].left
			}
			t.nodes[w].color = t.nodes[parent].color
			t.nodes[parent].color = black
			t.nodes[t.nodes[w].left].color = black
			t.rotateRight(parent)
			x = t.root
			parent = nilNode
		}
	}
	if x != nilNode {
		t.nodes[x].color = black
	}
}

func (t *arenaTree) minFrom(n int32) int32 {
	for t.nodes[n].left != nilNode {
		n = t.nodes[n].left
	}
	return n
}

// next returns the in-order successor of n, or nilNode.
func (t *arenaTree) next(n int32) int32 {
	if r := t.nodes[n].right; r != nilNode {
		return t.minFrom(r)
	}
	p := t.nodes[n].parent
	for p != nilNode && n == t.nodes[p].right {
		n = p
		p = t.nodes[p].parent
	}
	return p
}

// floor returns the node with the largest key <= key, or nilNode.
func (t *arenaTree) floor(key uint64) int32 {
	best := nilNode
	n := t.root
	for n != nilNode {
		nd := &t.nodes[n]
		switch {
		case key < nd.key:
			n = nd.left
		case key > nd.key:
			best = n
			n = nd.right
		default:
			return n
		}
	}
	return best
}

// ceil returns the node with the smallest key >= key, or nilNode.
func (t *arenaTree) ceil(key uint64) int32 {
	best := nilNode
	n := t.root
	for n != nilNode {
		nd := &t.nodes[n]
		switch {
		case key < nd.key:
			best = n
			n = nd.left
		case key > nd.key:
			n = nd.right
		default:
			return n
		}
	}
	return best
}

// lower returns the node with the largest key strictly < key, or nilNode.
func (t *arenaTree) lower(key uint64) int32 {
	best := nilNode
	n := t.root
	for n != nilNode {
		nd := &t.nodes[n]
		if key > nd.key {
			best = n
			n = nd.right
		} else {
			n = nd.left
		}
	}
	return best
}

// ascend calls fn for each node in key order until fn returns false.
func (t *arenaTree) ascend(fn func(k uint64, v AtomID) bool) {
	n := t.root
	if n == nilNode {
		return
	}
	for n = t.minFrom(n); n != nilNode; n = t.next(n) {
		if !fn(t.nodes[n].key, t.nodes[n].val) {
			return
		}
	}
}

// ascendRange calls fn for each node with lo <= key < hi, in key order,
// until fn returns false.
func (t *arenaTree) ascendRange(lo, hi uint64, fn func(k uint64, v AtomID) bool) {
	for n := t.ceil(lo); n != nilNode && t.nodes[n].key < hi; n = t.next(n) {
		if !fn(t.nodes[n].key, t.nodes[n].val) {
			return
		}
	}
}

// checkInvariants verifies the red-black properties, key ordering, and
// arena bookkeeping, returning a description of the first violation found
// (empty string when valid). Test/tooling only.
func (t *arenaTree) checkInvariants() string {
	if t.root == nilNode {
		if t.size != 0 {
			return "empty tree with nonzero size"
		}
		return ""
	}
	if t.nodes[t.root].color != black {
		return "root is not black"
	}
	if t.nodes[t.root].parent != nilNode {
		return "root has a parent"
	}
	count := 0
	msg := ""
	var walk func(n int32) int // returns black height
	walk = func(n int32) int {
		if n == nilNode {
			return 1
		}
		count++
		nd := t.nodes[n]
		if nd.color == red && (!t.isBlack(nd.left) || !t.isBlack(nd.right)) {
			msg = "red node with red child"
		}
		if nd.left != nilNode {
			if t.nodes[nd.left].parent != n {
				msg = "broken parent index (left)"
			}
			if t.nodes[nd.left].key >= nd.key {
				msg = "left child key not less than parent"
			}
		}
		if nd.right != nilNode {
			if t.nodes[nd.right].parent != n {
				msg = "broken parent index (right)"
			}
			if t.nodes[nd.right].key <= nd.key {
				msg = "right child key not greater than parent"
			}
		}
		lh := walk(nd.left)
		rh := walk(nd.right)
		if lh != rh {
			msg = "unequal black heights"
		}
		h := lh
		if nd.color == black {
			h++
		}
		return h
	}
	walk(t.root)
	if msg != "" {
		return msg
	}
	if count != t.size {
		return "size does not match node count"
	}
	freeCount := 0
	for i := t.freeNode; i != nilNode; i = t.nodes[i].left {
		freeCount++
		if freeCount > len(t.nodes) {
			return "free list cycle"
		}
	}
	if count+freeCount != len(t.nodes) {
		return "arena slots unaccounted for (leak)"
	}
	return ""
}
