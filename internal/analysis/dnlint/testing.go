package dnlint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches the expectation arguments of a `// want` comment:
// a sequence of double-quoted or backquoted regular expressions.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// RunTest applies one analyzer to an analysistest-style fixture package
// and compares its diagnostics (after //deltanet:nolint filtering, so
// fixtures can exercise suppression too) against `// want` comments:
//
//	p := &T{} // want `regexp matching the message`
//
// A diagnostic with no matching want on its line, and a want with no
// matching diagnostic, both fail the test. pkgDir is relative to the
// test's working directory, e.g. "testdata/src/a".
func RunTest(t *testing.T, pkgDir string, a *Analyzer) {
	t.Helper()
	pkgs, err := Load("", "./"+filepath.ToSlash(pkgDir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgDir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: loaded %d packages, want 1", pkgDir, len(pkgs))
	}
	pkg := pkgs[0]
	diags, err := runPackage(pkg, []*Analyzer{a}, knownNames([]*Analyzer{a}))
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgDir, err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := posKey{filepath.Base(d.Position.Filename), d.Position.Line}
		matched := false
		for i, w := range wants[key] {
			if w.used {
				continue
			}
			if w.re.MatchString(d.Message) {
				wants[key][i].used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Position, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

func collectWants(t *testing.T, pkg *LoadedPackage) map[posKey][]want {
	t.Helper()
	wants := make(map[posKey][]want)
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey{filepath.Base(pos.Filename), pos.Line}
				for _, m := range wantRe.FindAllString(rest, -1) {
					pat, err := unquoteWant(m)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, m, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], want{re: re})
				}
			}
		}
	}
	return wants
}

func unquoteWant(m string) (string, error) {
	if strings.HasPrefix(m, "`") {
		return strings.Trim(m, "`"), nil
	}
	s, err := strconv.Unquote(m)
	if err != nil {
		return "", fmt.Errorf("unquote: %w", err)
	}
	return s, nil
}
