// Command dnserve runs the Delta-net checker as a TCP service (the
// sidecar deployment of the paper's Figure 7): controllers stream rule
// updates as protocol lines and receive per-update verification verdicts.
//
// Usage:
//
//	dnserve [-addr host:port] [-gc] [-trace file] [-batch n]
//	        [-burst-deltas n] [-burst-age d]
//
// With -trace, the topology and insertions of the trace are preloaded
// before serving; -batch n applies the preload as atomic batches of n
// rules through the parallel batch pipeline instead of one rule at a
// time. -burst-deltas/-burst-age preconfigure the monitor's coalescing
// burst mode (equivalent to the protocol's burst command; -burst-age also
// starts the background flusher). See internal/server for the protocol
// (including the B, W, burst, and flush commands).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"deltanet/internal/core"
	"deltanet/internal/monitor"
	"deltanet/internal/netgraph"
	"deltanet/internal/server"
	"deltanet/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6633", "listen address")
	gc := flag.Bool("gc", false, "enable atom garbage collection")
	traceFile := flag.String("trace", "", "preload this trace's topology and insertions")
	batch := flag.Int("batch", 1, "preload batch size (>1 uses the parallel batch pipeline)")
	burstDeltas := flag.Int("burst-deltas", 0, "coalesce this many deltas per monitor burst (>=2 enables)")
	burstAge := flag.Duration("burst-age", 0, "flush a pending monitor burst at this age (>0 enables)")
	flag.Parse()
	if *batch < 1 {
		fatal(fmt.Errorf("-batch must be >= 1, got %d", *batch))
	}
	if *burstDeltas < 0 || *burstAge < 0 {
		fatal(fmt.Errorf("-burst-deltas and -burst-age must be non-negative"))
	}

	s := server.New(core.Options{GC: *gc})
	if *burstDeltas >= 2 || *burstAge > 0 {
		s.SetBurst(monitor.BurstConfig{MaxDeltas: *burstDeltas, MaxAge: *burstAge})
	}
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		// Rebuild the topology into the server's graph so protocol ids
		// match the trace's.
		for v := netgraph.NodeID(0); int(v) < tr.Graph.NumNodes(); v++ {
			s.Graph().AddNode(tr.Graph.NodeName(v))
		}
		for _, l := range tr.Graph.Links() {
			s.Graph().AddLink(l.Src, l.Dst)
		}
		var d core.Delta
		if *batch > 1 {
			ops := make([]core.BatchOp, 0, *batch)
			flush := func() {
				if len(ops) == 0 {
					return
				}
				if err := s.Network().ApplyBatch(ops, &d, 0); err != nil {
					fatal(err)
				}
				ops = ops[:0]
			}
			for _, op := range tr.Ops {
				if !op.Insert {
					continue
				}
				ops = append(ops, core.InsertOp(op.Rule))
				if len(ops) == *batch {
					flush()
				}
			}
			flush()
		} else {
			for _, op := range tr.Ops {
				if !op.Insert {
					continue
				}
				if err := trace.Apply(s.Network(), op, &d); err != nil {
					fatal(err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "preloaded %s: %d rules, %d atoms\n",
			tr.Name, s.Network().NumRules(), s.Network().NumAtoms())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dnserve listening on %s\n", l.Addr())
	if err := s.Serve(l); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
