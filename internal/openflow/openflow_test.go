package openflow

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"deltanet/internal/core"
	"deltanet/internal/datasets"
	"deltanet/internal/netgraph"
	"deltanet/internal/trace"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	m := FlowMod{
		Command:  CmdAdd,
		Priority: 1234,
		Cookie:   0xDEADBEEFCAFE,
		Switch:   42,
		OutLink:  7,
		MatchLo:  100,
		MatchHi:  1 << 32,
	}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
	// Drop link sentinel survives.
	m.OutLink = -1
	got, err = Unmarshal(m.Marshal())
	if err != nil || got.OutLink != -1 {
		t.Fatalf("drop round trip: %+v, %v", got, err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	m := FlowMod{Command: CmdAdd, MatchLo: 0, MatchHi: 10}
	buf := m.Marshal()

	if _, err := Unmarshal(buf[:10]); err != ErrShort {
		t.Fatalf("short: %v", err)
	}
	bad := append([]byte(nil), buf...)
	bad[0] = 99
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	bad = append([]byte(nil), buf...)
	bad[1] = 7
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad command accepted")
	}
	empty := FlowMod{Command: CmdAdd, MatchLo: 10, MatchHi: 10}
	if _, err := Unmarshal(empty.Marshal()); err == nil {
		t.Fatal("empty match accepted")
	}
	// Deletes carry no match; an empty interval is fine there.
	del := FlowMod{Command: CmdDelete, Cookie: 5}
	if _, err := Unmarshal(del.Marshal()); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary valid FlowMods round-trip bit-exactly.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(prio uint16, cookie uint64, sw uint32, link int32, lo uint32, size uint16) bool {
		m := FlowMod{
			Command:  CmdAdd,
			Priority: prio,
			Cookie:   cookie,
			Switch:   sw,
			OutLink:  link,
			MatchLo:  uint64(lo),
			MatchHi:  uint64(lo) + uint64(size) + 1,
		}
		if m.OutLink < -1 {
			m.OutLink = -1
		}
		got, err := Unmarshal(m.Marshal())
		return err == nil && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamReaderWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want []FlowMod
	for i := 0; i < 100; i++ {
		m := FlowMod{Command: CmdAdd, Cookie: uint64(i), MatchLo: uint64(i), MatchHi: uint64(i + 1)}
		if i%3 == 0 {
			m = FlowMod{Command: CmdDelete, Cookie: uint64(i)}
		}
		if err := w.Write(&m); err != nil {
			t.Fatal(err)
		}
		want = append(want, m)
	}
	r := NewReader(&buf)
	for i := range want {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("msg %d: %+v != %+v", i, got, want[i])
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	// Truncated stream.
	half := bytes.NewReader(want[0].Marshal()[:MessageSize/2])
	if _, err := NewReader(half).Read(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated: %v", err)
	}
}

func TestOpConversion(t *testing.T) {
	ins := trace.Op{Insert: true, Rule: core.Rule{
		ID: 9, Source: 3, Link: netgraph.NoLink,
		Match: ivl(5, 500), Priority: 77,
	}}
	m := FromOp(ins)
	if m.Command != CmdAdd || m.OutLink != -1 {
		t.Fatalf("FromOp: %+v", m)
	}
	back := ToOp(m)
	if !back.Insert || back.Rule != ins.Rule {
		t.Fatalf("ToOp: %+v", back)
	}
	del := trace.Op{Rule: core.Rule{ID: 4}}
	if got := ToOp(FromOp(del)); got.Insert || got.Rule.ID != 4 {
		t.Fatalf("delete conversion: %+v", got)
	}
}

// TestBinaryTraceReplay encodes a whole dataset in wire format, decodes
// it, and verifies the replayed behaviour matches the original trace.
func TestBinaryTraceReplay(t *testing.T) {
	tr, err := datasets.Build("4switch", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeOps(&buf, tr.Ops); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(tr.Ops)*MessageSize {
		t.Fatalf("encoded %d bytes for %d ops", buf.Len(), len(tr.Ops))
	}
	ops, err := DecodeOps(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != len(tr.Ops) {
		t.Fatalf("ops %d != %d", len(ops), len(tr.Ops))
	}
	a := core.NewNetwork(tr.Graph, core.Options{})
	b := core.NewNetwork(tr.Graph.Clone(), core.Options{})
	var d core.Delta
	for i := range tr.Ops {
		if err := trace.Apply(a, tr.Ops[i], &d); err != nil {
			t.Fatal(err)
		}
		if err := trace.Apply(b, ops[i], &d); err != nil {
			t.Fatal(err)
		}
	}
	if a.BehaviourDigest() != b.BehaviourDigest() {
		t.Fatal("binary round trip changed behaviour")
	}
}

func ivl(lo, hi uint64) (iv struct{ Lo, Hi uint64 }) {
	iv.Lo, iv.Hi = lo, hi
	return
}
