package veriflow

import (
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// WhatIfResult summarizes a link-failure "what if" query (paper §4.3.2).
type WhatIfResult struct {
	AffectedECs int    // equivalence classes whose traffic used the link
	GraphsBuilt int    // forwarding graphs constructed to represent them
	Loops       []Loop // loops found when checking those graphs
}

// WhatIfLinkFailure answers the paper's exemplar query — "what is the fate
// of packets that are using a link that fails?" — the Veriflow way: it
// identifies every equivalence class whose traffic traverses the link and
// constructs a forwarding graph for each (§4.3.2: "Veriflow has to
// construct forwarding graphs for all packet equivalence classes that are
// affected by a link failure"). This is the operation for which the paper
// reports orders-of-magnitude gaps versus Delta-net, because the EC count
// of a busy link is typically a hundredfold that of a single rule update.
//
// checkLoops additionally traverses each constructed graph (the "+Loops"
// comparison is done on the Delta-net side in Table 4; for Veriflow-RI the
// graph construction itself dominates).
func (e *Engine) WhatIfLinkFailure(link netgraph.LinkID, checkLoops bool) WhatIfResult {
	var res WhatIfResult
	seen := map[ipnet.Interval]bool{}
	src := e.graph.Link(link).Src
	for _, r := range e.rules {
		if r.Link != link {
			continue
		}
		// The ECs within this rule's range; of those, the ones the
		// rule actually wins at the source traverse the failed link.
		for _, ec := range e.AffectedECs(r.Prefix) {
			if seen[ec] {
				continue
			}
			seen[ec] = true
			fg := e.ForwardingGraph(ec)
			if chosen, ok := fg[src]; !ok || chosen != link {
				continue // shadowed by a higher-priority rule
			}
			res.AffectedECs++
			res.GraphsBuilt++
			if checkLoops {
				if loop, ok := e.FindLoop(fg); ok {
					res.Loops = append(res.Loops, Loop{EC: ec, Nodes: loop})
				}
			}
		}
	}
	return res
}

// MemoryBytes estimates the engine's heap footprint: trie nodes plus rule
// records. Veriflow-RI's space is linear in the number of rules (§4.3.1),
// which Appendix D contrasts with Delta-net's richer bookkeeping.
func (e *Engine) MemoryBytes() int64 {
	var nodes, ruleSlots int64
	var walk func(t *trieNode)
	walk = func(t *trieNode) {
		if t == nil {
			return
		}
		nodes++
		ruleSlots += int64(cap(t.rules))
		walk(t.children[0])
		walk(t.children[1])
	}
	walk(e.root)
	const trieNodeSize = 40 // two pointers + slice header
	const ruleSize = 56
	return nodes*trieNodeSize + ruleSlots*8 + int64(len(e.rules))*(ruleSize+8)
}
