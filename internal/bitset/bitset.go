// Package bitset implements the dynamic bitsets that Delta-net uses for
// edge labels (paper §4.1: "We implement edge labels as customized dynamic
// bitsets, stored as aligned, dynamically allocated, contiguous memory").
//
// A Set holds atom identifiers, which are dense small integers, so a packed
// word array gives constant-time membership, cheap unions/intersections for
// Algorithm 3, and a memory footprint proportional to the highest atom id.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a growable bitset. The zero value is an empty set ready to use.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity preallocated for values < n.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice returns a set containing exactly the given values.
func FromSlice(vals []int) *Set {
	s := &Set{}
	for _, v := range vals {
		s.Add(v)
	}
	return s
}

func (s *Set) grow(word int) {
	if word < len(s.words) {
		return
	}
	n := len(s.words)*2 + 1
	if n <= word {
		n = word + 1
	}
	w := make([]uint64, n)
	copy(w, s.words)
	s.words = w
}

// Add inserts v into the set. v must be non-negative.
func (s *Set) Add(v int) {
	w := v / wordBits
	s.grow(w)
	s.words[w] |= 1 << (uint(v) % wordBits)
}

// Remove deletes v from the set. Removing an absent value is a no-op.
func (s *Set) Remove(v int) {
	w := v / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(v) % wordBits)
	}
}

// Contains reports whether v is in the set.
func (s *Set) Contains(v int) bool {
	w := v / wordBits
	return w < len(s.words) && s.words[w]&(1<<(uint(v)%wordBits)) != 0
}

// Len returns the number of elements (population count).
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w}
}

// Copy overwrites s with the contents of o.
func (s *Set) Copy(o *Set) {
	if cap(s.words) < len(o.words) {
		s.words = make([]uint64, len(o.words))
	} else {
		s.words = s.words[:len(o.words)]
	}
	copy(s.words, o.words)
}

// UnionWith adds every element of o to s (s |= o).
func (s *Set) UnionWith(o *Set) {
	if len(o.words) > len(s.words) {
		s.grow(len(o.words) - 1)
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in o (s &= o).
func (s *Set) IntersectWith(o *Set) {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &= o.words[i]
	}
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// DifferenceWith removes every element of o from s (s &^= o).
func (s *Set) DifferenceWith(o *Set) {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= o.words[i]
	}
}

// Union returns a new set s ∪ o.
func Union(s, o *Set) *Set {
	r := s.Clone()
	r.UnionWith(o)
	return r
}

// Intersect returns a new set s ∩ o.
func Intersect(s, o *Set) *Set {
	r := s.Clone()
	r.IntersectWith(o)
	return r
}

// Difference returns a new set s − o.
func Difference(s, o *Set) *Set {
	r := s.Clone()
	r.DifferenceWith(o)
	return r
}

// OrAnd sets s |= (a & b) and reports whether s changed. This is the inner
// step of Algorithm 3 (label[i,j] ∪= label[i,k] ∩ label[k,j]) fused into a
// single pass so the all-pairs computation allocates nothing per step.
func (s *Set) OrAnd(a, b *Set) bool {
	n := len(a.words)
	if len(b.words) < n {
		n = len(b.words)
	}
	if n > len(s.words) {
		s.grow(n - 1)
	}
	changed := false
	for i := 0; i < n; i++ {
		v := a.words[i] & b.words[i]
		if v&^s.words[i] != 0 {
			changed = true
			s.words[i] |= v
		}
	}
	return changed
}

// AndOf overwrites s with a ∩ b, reusing s's capacity — the allocation-free
// form of Intersect for hot paths that keep a scratch set (the reachability
// fixpoint's per-hop contribution, the monitor's dirty marking).
func (s *Set) AndOf(a, b *Set) {
	n := len(a.words)
	if len(b.words) < n {
		n = len(b.words)
	}
	if cap(s.words) < n {
		s.words = make([]uint64, n)
	} else {
		s.words = s.words[:n]
	}
	for i := 0; i < n; i++ {
		s.words[i] = a.words[i] & b.words[i]
	}
}

// NextSet returns the smallest element ≥ v, or -1 if no such element
// exists — the resumable iteration primitive (NextSet(0) is Min).
func (s *Set) NextSet(v int) int {
	if v < 0 {
		v = 0
	}
	w := v / wordBits
	if w >= len(s.words) {
		return -1
	}
	// Mask off the bits below v in the first word.
	if cur := s.words[w] &^ ((1 << (uint(v) % wordBits)) - 1); cur != 0 {
		return w*wordBits + bits.TrailingZeros64(cur)
	}
	for i := w + 1; i < len(s.words); i++ {
		if s.words[i] != 0 {
			return i*wordBits + bits.TrailingZeros64(s.words[i])
		}
	}
	return -1
}

// Intersects reports whether s and o share at least one element, without
// allocating.
func (s *Set) Intersects(o *Set) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o contain the same elements.
func (s *Set) Equal(o *Set) bool {
	a, b := s.words, o.words
	if len(a) < len(b) {
		a, b = b, a
	}
	for i := range b {
		if a[i] != b[i] {
			return false
		}
	}
	for i := len(b); i < len(a); i++ {
		if a[i] != 0 {
			return false
		}
	}
	return true
}

// IsSubset reports whether every element of s is in o.
func (s *Set) IsSubset(o *Set) bool {
	for i, w := range s.words {
		var ow uint64
		if i < len(o.words) {
			ow = o.words[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn with each element in ascending order until fn returns
// false.
func (s *Set) ForEach(fn func(v int) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(i*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Slice returns the elements in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(v int) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest element, or -1 if the set is empty.
func (s *Set) Max() int {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// WordBytes returns the heap footprint of the backing array in bytes,
// used by the memory-accounting experiments (paper Appendix D).
func (s *Set) WordBytes() int { return cap(s.words) * 8 }

// String renders the set as "{a, b, c}" for debugging and test failure
// messages.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(v int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", v)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
