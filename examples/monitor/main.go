// Monitor demo: standing invariants re-checked incrementally per delta.
//
// A small fabric routes traffic from an edge switch through a firewall to
// a server. We register three standing invariants — the server stays
// reachable, all flows traverse the firewall, and the fabric stays
// loop-free — then stream rule updates and watch the monitor flag only
// the transitions, re-evaluating only the invariants each delta could
// affect.
//
// Run with: go run ./examples/monitor
package main

import (
	"fmt"
	"log"

	"deltanet"
)

func main() {
	c := deltanet.New()
	edge := c.AddSwitch("edge")
	fw := c.AddSwitch("firewall")
	srv := c.AddSwitch("server")
	backdoor := c.AddSwitch("backdoor")

	edgeFw := c.AddLink(edge, fw)
	fwSrv := c.AddLink(fw, srv)
	edgeBd := c.AddLink(edge, backdoor)
	bdSrv := c.AddLink(backdoor, srv)

	// Standing invariants: registered once, kept current forever after.
	m := c.Monitor()
	reachID, st := m.Register(deltanet.WatchReachable(edge, srv))
	fmt.Printf("registered: server reachable from edge      -> %s\n", st)
	wpID, st := m.Register(deltanet.WatchWaypoint(edge, srv, fw))
	fmt.Printf("registered: all edge->server flows via fw   -> %s\n", st)
	loopID, st := m.Register(deltanet.WatchLoopFree())
	fmt.Printf("registered: loop freedom                    -> %s\n", st)

	apply := func(what string, rep deltanet.Report, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", what)
		if len(rep.Events) == 0 {
			fmt.Println("  (no verdict transitions)")
		}
		for _, ev := range rep.Events {
			fmt.Printf("  !! %s %s -- %s\n", ev.Kind, ev.Spec, ev.Detail)
		}
	}

	// Bring up the sanctioned path: edge -> firewall -> server.
	rep, err := c.InsertPrefixRule(1, edge, edgeFw, "10.0.0.0/8", 10)
	apply("insert edge->firewall route for 10/8", rep, err)
	rep, err = c.InsertPrefixRule(2, fw, fwSrv, "10.0.0.0/8", 10)
	apply("insert firewall->server route for 10/8 (path complete)", rep, err)

	// A misconfiguration bypasses the firewall for one /16.
	rep, err = c.InsertPrefixRule(3, edge, edgeBd, "10.7.0.0/16", 20)
	apply("insert higher-priority edge->backdoor route for 10.7/16", rep, err)
	rep, err = c.InsertPrefixRule(4, backdoor, bdSrv, "10.7.0.0/16", 10)
	apply("insert backdoor->server route (firewall bypassed!)", rep, err)

	// Roll the bypass back.
	rep, err = c.RemoveRule(4)
	apply("remove backdoor->server route", rep, err)

	// Current cached verdicts, no recomputation.
	fmt.Println("\nfinal verdicts:")
	for _, id := range []deltanet.InvariantID{reachID, wpID, loopID} {
		st, detail, _ := m.Status(id)
		fmt.Printf("  invariant %d: %-8s (%s)\n", id, st, detail)
	}
	stats := m.Stats()
	fmt.Printf("\nmonitor stats: %d registered, %d evaluations, %d skipped, %d events\n",
		stats.Registered, stats.Evaluations, stats.Skips, stats.Events)
}
