package server

// This file is the server's construction API: New takes functional
// options, mirroring the top-level deltanet.Option idiom, in place of
// the post-construction setters (SetBurst / SetSlowUpdate /
// EnableMetrics and the monitor's SetBacklog) that used to be sprinkled
// between New and Serve. Options are collected first and wired in a
// fixed order — engine, backlog, slow-update log, journal, replica,
// burst, metrics last — so option order never matters and the metric
// surface sees the final configuration (the replica lag gauges only
// exist when WithReplicaOf ran).

import (
	"io"
	"time"

	"deltanet/internal/core"
	"deltanet/internal/journal"
	"deltanet/internal/metrics"
	"deltanet/internal/monitor"
)

// Option configures a Server at construction.
type Option func(*options)

type options struct {
	engine    core.Options
	burst     monitor.BurstConfig
	backlog   int
	slow      time.Duration
	slowLog   io.Writer
	jrnl      *journal.Journal
	replicaOf string
	ingCap    int
	reg       *metrics.Registry
}

// WithEngine sets the data-plane engine options (atom GC, match space).
func WithEngine(opts core.Options) Option {
	return func(o *options) { o.engine = opts }
}

// WithBurst preconfigures coalescing burst mode on the monitor
// (equivalent to the protocol's burst command before any client speaks;
// a MaxAge > 0 also starts the background flusher). The protocol's
// burst command can still reconfigure it at runtime.
func WithBurst(cfg monitor.BurstConfig) Option {
	return func(o *options) { o.burst = cfg }
}

// WithBacklog sets the monitor's event-replay backlog capacity (the
// "events/watch since <seq>" window); without it the monitor default
// applies.
func WithBacklog(n int) Option {
	return func(o *options) { o.backlog = n }
}

// WithSlowUpdate logs updates whose traced pipeline stages sum past
// threshold to w (nil w counts without logging; threshold <= 0
// disables).
func WithSlowUpdate(threshold time.Duration, w io.Writer) Option {
	return func(o *options) { o.slow = threshold; o.slowLog = w }
}

// WithJournal makes the server append every applied mutation — topology
// ops, rule updates, whole batches — to j, each record stamped with the
// monitor's post-apply update sequence number. The journal is the
// replication substrate: the checkpoint and "journal since <offset>"
// protocol commands serve it to replicas, and a checkpoint + journal
// suffix is a complete local recovery story. The server does not close
// j; the caller owns its lifecycle (and rotation, see Journal.Rotate).
func WithJournal(j *journal.Journal) Option {
	return func(o *options) { o.jrnl = j }
}

// WithReplicaOf boots the server as a read replica of the primary at
// addr: Serve additionally starts a loop that fetches the primary's
// checkpoint, streams its journal tail, and applies the updates into
// this server's own data plane and monitor. Mutating protocol commands
// (node, link, I, R, B, burst) are refused; reach/whatif/stats/W/watch
// serve locally from the replicated state. See replica.go.
func WithReplicaOf(addr string) Option {
	return func(o *options) { o.replicaOf = addr }
}

// WithIngestRing sets the binary-ingest ring capacity (rounded up to a
// power of two; the default is generous for sustained feeds). The ring
// is the ingestion path's backpressure boundary: when it fills, binary
// connections get a "busy" line and block until the coalescer drains.
func WithIngestRing(capacity int) Option {
	return func(o *options) { o.ingCap = capacity }
}

// WithMetrics registers the server's full metric surface with reg (the
// admin endpoint renders reg at /metrics). Applied after every other
// option so replica lag gauges and journal counters reflect the final
// configuration.
func WithMetrics(reg *metrics.Registry) Option {
	return func(o *options) { o.reg = reg }
}
