package journal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func open(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := Open(path, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// drain reads every record after `from`, re-anchoring the reader until
// it has caught up with the journal's current end.
func drain(t *testing.T, j *Journal, from uint64) []Record {
	t.Helper()
	var out []Record
	cursor := from
	for cursor < j.End() {
		r, err := j.ReadFrom(cursor)
		if err != nil {
			t.Fatal(err)
		}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rec)
		}
		cursor = r.Cursor()
		r.Close()
	}
	return out
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := open(t, path)
	defer j.Close()

	payloads := []string{"node a", "link 0 1", "I 1 0 0 0 100 1", "B 2\nI 2 0 0 0 50 2\nR 1"}
	var ends []uint64
	for i, p := range payloads {
		end, err := j.Append(uint64(i+1), p)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, end)
	}
	recs := drain(t, j, 0)
	if len(recs) != len(payloads) {
		t.Fatalf("read %d records, want %d", len(recs), len(payloads))
	}
	for i, rec := range recs {
		if string(rec.Payload) != payloads[i] {
			t.Errorf("record %d payload = %q, want %q", i, rec.Payload, payloads[i])
		}
		if rec.Seq != uint64(i+1) {
			t.Errorf("record %d seq = %d, want %d", i, rec.Seq, i+1)
		}
		if rec.End != ends[i] {
			t.Errorf("record %d end = %d, want %d", i, rec.End, ends[i])
		}
		if rec.Stamp == 0 {
			t.Errorf("record %d has no stamp", i)
		}
	}

	// Resume from the middle: exactly the suffix comes back.
	tail := drain(t, j, ends[1])
	if len(tail) != 2 || string(tail[0].Payload) != payloads[2] {
		t.Fatalf("suffix after %d = %v", ends[1], tail)
	}
}

// TestReopenContinues: offsets and contents survive a close/reopen, and
// appends continue where the previous incarnation stopped.
func TestReopenContinues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := open(t, path)
	end1, _ := j.Append(1, "I 1 0 0 0 100 1")
	j.Close()

	j2 := open(t, path)
	defer j2.Close()
	if j2.End() != end1 {
		t.Fatalf("reopened end = %d, want %d", j2.End(), end1)
	}
	if j2.Dropped() != 0 {
		t.Fatalf("clean reopen dropped %d bytes", j2.Dropped())
	}
	j2.Append(2, "R 1")
	recs := drain(t, j2, 0)
	if len(recs) != 2 || string(recs[1].Payload) != "R 1" {
		t.Fatalf("after reopen: %v", recs)
	}
}

// TestTornTailDropped: a record half-written at crash time (truncated
// mid-payload) is detected on reopen and dropped; the intact prefix
// stays readable and new appends land after it.
func TestTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := open(t, path)
	goodEnd, _ := j.Append(1, "I 1 0 0 0 100 1")
	j.Append(2, "I 2 0 0 200 300 1")
	j.Close()

	// Tear the final record: cut the file 5 bytes short.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	j2 := open(t, path)
	defer j2.Close()
	if j2.Dropped() == 0 {
		t.Fatal("torn tail not reported")
	}
	if j2.End() != goodEnd {
		t.Fatalf("recovered end = %d, want %d (end of last intact record)", j2.End(), goodEnd)
	}
	recs := drain(t, j2, 0)
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("recovered records: %v", recs)
	}
	// The journal keeps working after recovery.
	if _, err := j2.Append(3, "R 1"); err != nil {
		t.Fatal(err)
	}
	if got := drain(t, j2, 0); len(got) != 2 || got[1].Seq != 3 {
		t.Fatalf("after post-recovery append: %v", got)
	}
}

// TestCorruptTailDropped: a bit flip in the final record's payload fails
// the CRC and the record is dropped on reopen, like a torn write.
func TestCorruptTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := open(t, path)
	goodEnd, _ := j.Append(1, "I 1 0 0 0 100 1")
	j.Append(2, "I 2 0 0 200 300 1")
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xff // inside the final record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := open(t, path)
	defer j2.Close()
	if j2.End() != goodEnd {
		t.Fatalf("recovered end = %d, want %d", j2.End(), goodEnd)
	}
	if recs := drain(t, j2, 0); len(recs) != 1 {
		t.Fatalf("recovered records: %v", recs)
	}
}

// TestRotateKeepsOffsets: rotation discards the prefix but the logical
// offsets of surviving and future records are unchanged; a reader
// behind the new base gets ErrTruncated (the re-anchor signal).
func TestRotateKeepsOffsets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := open(t, path)
	defer j.Close()
	end1, _ := j.Append(1, "I 1 0 0 0 100 1")
	end2, _ := j.Append(2, "I 2 0 0 200 300 1")

	if err := j.Rotate(end1); err != nil {
		t.Fatal(err)
	}
	if j.Base() != end1 || j.End() != end2 {
		t.Fatalf("after rotate: base=%d end=%d, want %d/%d", j.Base(), j.End(), end1, end2)
	}
	// The survivor is still addressable at its old offset.
	recs := drain(t, j, end1)
	if len(recs) != 1 || recs[0].Seq != 2 || recs[0].End != end2 {
		t.Fatalf("post-rotate records: %v", recs)
	}
	// A cursor from before the rotation must re-anchor.
	if _, err := j.ReadFrom(0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadFrom(0) after rotate = %v, want ErrTruncated", err)
	}
	// Appends continue the same logical offset space.
	end3, err := j.Append(3, "R 1")
	if err != nil {
		t.Fatal(err)
	}
	if end3 <= end2 {
		t.Fatalf("offsets regressed after rotate: %d <= %d", end3, end2)
	}
	// And the rotated file survives a reopen with the same bounds.
	j.Close()
	j2 := open(t, path)
	defer j2.Close()
	if j2.Base() != end1 || j2.End() != end3 {
		t.Fatalf("reopened rotated journal: base=%d end=%d, want %d/%d", j2.Base(), j2.End(), end1, end3)
	}
}

// TestConcurrentAppendAndRead: a reader following the journal while a
// writer appends sees every record exactly once, in order.
func TestConcurrentAppendAndRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := open(t, path)
	defer j.Close()

	const total = 500
	done := make(chan error, 1)
	go func() {
		for i := 1; i <= total; i++ {
			if _, err := j.Append(uint64(i), "I 1 0 0 0 100 1"); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	var seen uint64
	cursor := uint64(0)
	writerDone := false
	for !writerDone || cursor < j.End() {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			writerDone = true
		default:
		}
		if cursor == j.End() {
			continue
		}
		r, err := j.ReadFrom(cursor)
		if err != nil {
			t.Fatal(err)
		}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if rec.Seq != seen+1 {
				t.Fatalf("out-of-order: seq %d after %d", rec.Seq, seen)
			}
			seen = rec.Seq
		}
		cursor = r.Cursor()
		r.Close()
	}
	if seen != total {
		t.Fatalf("reader saw %d records, want %d", seen, total)
	}
}
