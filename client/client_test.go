package client_test

import (
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deltanet/client"
	"deltanet/internal/metrics"
	"deltanet/internal/server"
)

// startServer runs a dnserve protocol server for the duration of the
// test and returns its address.
func startServer(t *testing.T, opts ...server.Option) (*server.Server, string) {
	t.Helper()
	s := server.New(opts...)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	t.Cleanup(func() {
		if err := s.Close(); err != nil && !strings.Contains(err.Error(), "use of closed") {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return s, l.Addr().String()
}

// buildTopology installs the two-node topology and one rule every test
// here queries against.
func buildTopology(t *testing.T, c *client.Client) {
	t.Helper()
	for _, req := range []string{"node a", "node b", "link 0 1", "I 1 0 0 0 1000 10"} {
		if _, err := c.Do(req); err != nil {
			t.Fatalf("%s: %v", req, err)
		}
	}
}

func TestDoAndTypedHelpers(t *testing.T) {
	_, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buildTopology(t, c)

	atoms, err := c.Reach("a", "b")
	if err != nil || atoms != 1 {
		t.Fatalf("Reach = %d, %v; want 1, nil", atoms, err)
	}
	atoms, edges, err := c.WhatIf("a", "b")
	if err != nil || atoms != 1 || edges < 1 {
		t.Fatalf("WhatIf = %d, %d, %v", atoms, edges, err)
	}
	la, le, err := c.WhatIfLink(0)
	if err != nil || la != atoms || le != edges {
		t.Fatalf("WhatIfLink(0) = %d, %d, %v; want same as WhatIf", la, le, err)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"rules", "atoms", "links", "nodes", "upd"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("Stats missing %q: %v", key, stats)
		}
	}
	if stats["rules"] != "1" {
		t.Errorf("stats rules = %q, want 1", stats["rules"])
	}
	if upd, err := c.StatUint("upd"); err != nil || upd != 1 {
		t.Errorf("StatUint(upd) = %d, %v; want 1, nil", upd, err)
	}
	if _, err := c.StatUint("nosuchkey"); err == nil {
		t.Error("StatUint of a missing key did not error")
	}

	// Protocol refusals surface as *ProtocolError carrying both sides.
	resp, err := c.Do("definitely-not-a-command")
	perr, ok := err.(*client.ProtocolError)
	if !ok {
		t.Fatalf("Do(bogus) err = %v, want *ProtocolError", err)
	}
	if !strings.HasPrefix(perr.Resp, "err") || perr.Resp != resp {
		t.Errorf("ProtocolError = %+v, resp %q", perr, resp)
	}
}

// TestWatcherFailover: a watcher over a two-address list streams from
// the first server, survives its death, fails over to the second with
// its since-cursor, and keeps streaming — no transitions double-counted
// or missed as long as the second server's stream covers the cursor.
func TestWatcherFailover(t *testing.T) {
	s1, addr1 := startServer(t)
	_, addr2 := startServer(t)

	// Drive both servers to identical event histories, as a primary and
	// its replica would be (here by applying the same updates to both).
	for _, addr := range []string{addr1, addr2} {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		buildTopology(t, c)
		if _, err := c.Do("W reach a b"); err != nil {
			t.Fatal(err)
		}
		// Transition to violated: event seq=1 on both streams.
		if _, err := c.Do("R 1"); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}

	var notices []string
	w := client.NewWatcher([]string{addr1, addr2}, "reach a b")
	w.Notify = func(msg string) { notices = append(notices, msg) }
	defer w.Close()

	// First session (addr1): status snapshot, then the seq=1 event via
	// the replay-free live path is already in the past — a fresh watch
	// anchors on the snapshot. Read the snapshot line.
	line, err := w.Next()
	if err != nil || !strings.HasPrefix(line, "status ") {
		t.Fatalf("first stream line = %q, %v; want status snapshot", line, err)
	}
	// Produce a live event on server 1 and observe its seq.
	c1, err := client.Dial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Do("I 1 0 0 0 1000 10"); err != nil { // back to holds: seq=2
		t.Fatal(err)
	}
	c1.Close()
	line, err = w.Next()
	if err != nil {
		t.Fatal(err)
	}
	seq, ok := client.EventSeq(line)
	if !ok || seq != 2 {
		t.Fatalf("live event = %q (seq %d), want seq=2", line, seq)
	}
	if w.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", w.LastSeq())
	}

	// Kill server 1. The watcher must rotate to addr2 and resume with
	// "watch since 2". Server 2 saw only seq=1, so the resume lands in
	// a gap — the stream re-anchors explicitly, never silently.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	gotGap := false
	deadline := time.Now().Add(10 * time.Second)
	for !gotGap {
		if time.Now().After(deadline) {
			t.Fatalf("no gap/status after failover; notices: %v", notices)
		}
		line, err = w.Next()
		if err != nil {
			t.Fatalf("failover Next: %v (notices: %v)", err, notices)
		}
		if strings.HasPrefix(line, "gap ") || strings.HasPrefix(line, "status ") {
			gotGap = true
		}
	}
	// Live events flow from the survivor.
	c2, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Do("I 1 0 0 0 1000 10"); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	for {
		line, err = w.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := client.EventSeq(line); ok {
			break
		}
	}
	foundFailover := false
	for _, n := range notices {
		if strings.Contains(n, "reconnecting") || strings.Contains(n, "failing over") {
			foundFailover = true
		}
	}
	if !foundFailover {
		t.Errorf("no failover notice recorded: %v", notices)
	}
}

// TestWatcherRefusedSpecIsFatal: a spec the server rejects must not be
// retried into the whole failover budget.
func TestWatcherRefusedSpecIsFatal(t *testing.T) {
	_, addr := startServer(t)
	w := client.NewWatcher([]string{addr}, "bogus spec grammar")
	defer w.Close()
	start := time.Now()
	if _, err := w.Next(); err == nil {
		t.Fatal("refused spec did not error")
	} else if _, ok := err.(*client.ProtocolError); !ok {
		t.Fatalf("err = %v, want *ProtocolError", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("refused spec burned the retry budget instead of failing fast")
	}
}

func TestScrapeMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s, addr := startServer(t, server.WithMetrics(reg))
	ts := httptest.NewServer(s.AdminHandler(reg))
	defer ts.Close()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	buildTopology(t, c)
	c.Close()

	e, err := client.ScrapeMetrics(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if e.Families == 0 || e.Samples == 0 {
		t.Fatalf("empty exposition: %+v", e)
	}
	if v, err := e.Value("dn_rules"); err != nil || v != 1 {
		t.Errorf("dn_rules = %g, %v; want 1", v, err)
	}
	if _, err := e.Value("dn_no_such_metric"); err == nil {
		t.Error("Value of a missing metric did not error")
	}
	// Bare host:port expands to http://host:port/metrics.
	if e2, err := client.ScrapeMetrics(strings.TrimPrefix(ts.URL, "http://")); err != nil {
		t.Errorf("bare host:port scrape: %v", err)
	} else if !strings.HasSuffix(e2.URL, "/metrics") {
		t.Errorf("bare target URL = %q, want /metrics suffix", e2.URL)
	}
}
