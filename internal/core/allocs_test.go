package core

import (
	"testing"

	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// TestSteadyChurnZeroAllocs pins the flat data plane's core promise:
// once warmed, an insert/remove churn cycle allocates nothing. The rule
// arena recycles slots, the owner cell directories and slabs retain
// capacity across atom death, the interval map's arena re-threads freed
// tree nodes, and the caller-provided Delta reuses its backing arrays —
// so the only steady-state cost is index arithmetic over memory that
// already exists.
func TestSteadyChurnZeroAllocs(t *testing.T) {
	g := netgraph.New()
	s1, s2, s3 := g.AddNode("s1"), g.AddNode("s2"), g.AddNode("s3")
	l12 := g.AddLink(s1, s2)
	l23 := g.AddLink(s2, s3)
	n := NewNetwork(g, Options{GC: true})

	// Standing rules so churn happens against populated owner tables.
	if _, err := n.InsertRule(Rule{ID: 1, Source: s1, Link: l12,
		Match: ipnet.Interval{Lo: 0, Hi: 1 << 20}, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.InsertRule(Rule{ID: 2, Source: s2, Link: l23,
		Match: ipnet.Interval{Lo: 0, Hi: 1 << 20}, Priority: 1}); err != nil {
		t.Fatal(err)
	}

	// The churning rule splits atoms on insert and (with GC) merges them
	// back on remove, exercising boundary alloc/release, owner split
	// copies, and label updates every cycle.
	churn := Rule{ID: 99, Source: s1, Link: l12,
		Match: ipnet.Interval{Lo: 1000, Hi: 5000}, Priority: 7}
	var d Delta
	cycle := func() {
		if err := n.InsertRuleInto(churn, &d); err != nil {
			t.Fatal(err)
		}
		if err := n.RemoveRuleInto(churn.ID, &d); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ { // warm every free list and retained buffer
		cycle()
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("steady-state churn cycle allocates %.1f objects/op, want 0", allocs)
	}
}
