package core

// Property-based tests (testing/quick) on the engine's central invariants,
// complementing the seeded randomized differential tests in brute_test.go:
// quick generates the shapes, the engine must hold its invariants for all
// of them.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"deltanet/internal/netgraph"
)

// opSpec is a quick-generatable rule operation.
type opSpec struct {
	Insert   bool
	Lo       uint16 // small space provokes overlap
	Size     uint16
	Node     uint8
	Prio     int16
	LivePick uint16 // which live rule a removal targets
}

// Generate lets quick build op sequences with a bias toward insertion.
func (opSpec) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(opSpec{
		Insert:   r.Intn(100) < 65,
		Lo:       uint16(r.Intn(1 << 12)),
		Size:     uint16(1 + r.Intn(1<<10)),
		Node:     uint8(r.Intn(4)),
		Prio:     int16(r.Intn(64)),
		LivePick: uint16(r.Intn(1 << 16)),
	})
}

// applySpecs drives an engine with generated operations and returns it.
func applySpecs(t *testing.T, specs []opSpec, gc bool) (*Network, bool) {
	g := netgraph.New()
	var nodes []netgraph.NodeID
	for i := 0; i < 4; i++ {
		nodes = append(nodes, g.AddNode(string(rune('a'+i))))
	}
	var links []netgraph.LinkID
	for i := range nodes {
		links = append(links, g.AddLink(nodes[i], nodes[(i+1)%len(nodes)]))
	}
	n := NewNetwork(g, Options{GC: gc})
	var live []RuleID
	nextID := RuleID(1)
	var d Delta
	for _, s := range specs {
		if s.Insert || len(live) == 0 {
			src := nodes[int(s.Node)%len(nodes)]
			r := Rule{ID: nextID, Source: src, Link: links[int(s.Node)%len(links)],
				Match:    iv(uint64(s.Lo), uint64(s.Lo)+uint64(s.Size)),
				Priority: Priority(s.Prio)}
			// Link must originate at source: links[i] starts at nodes[i].
			nextID++
			if err := n.InsertRuleInto(r, &d); err != nil {
				t.Logf("insert error: %v", err)
				return n, false
			}
			if len(d.NewAtoms) > 2 {
				t.Logf("delta cap violated: %d", len(d.NewAtoms))
				return n, false
			}
			live = append(live, r.ID)
		} else {
			k := int(s.LivePick) % len(live)
			id := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := n.RemoveRuleInto(id, &d); err != nil {
				t.Logf("remove error: %v", err)
				return n, false
			}
		}
	}
	return n, true
}

// TestQuickInvariantsHold: for arbitrary op sequences, the engine
// invariants hold afterwards (owner invariant, label/owner consistency,
// partition integrity), with and without GC.
func TestQuickInvariantsHold(t *testing.T) {
	for _, gc := range []bool{false, true} {
		gc := gc
		f := func(specs []opSpec) bool {
			n, ok := applySpecs(t, specs, gc)
			if !ok {
				return false
			}
			return n.CheckInvariants() == ""
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("gc=%v: %v", gc, err)
		}
	}
}

// TestQuickGCNeverChangesBehaviour: the same generated sequence applied
// with and without GC yields identical forwarding behaviour.
func TestQuickGCNeverChangesBehaviour(t *testing.T) {
	f := func(specs []opSpec) bool {
		a, ok := applySpecs(t, specs, false)
		if !ok {
			return false
		}
		b, ok := applySpecs(t, specs, true)
		if !ok {
			return false
		}
		return BehaviourEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSnapshotRoundTrip: restoring a snapshot of any generated data
// plane reproduces its behaviour digest.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(specs []opSpec) bool {
		n, ok := applySpecs(t, specs, false)
		if !ok {
			return false
		}
		m := NewNetwork(n.Graph(), Options{})
		if err := m.Restore(n.Snapshot()); err != nil {
			return false
		}
		return m.BehaviourDigest() == n.BehaviourDigest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRemovalIsInverse: inserting any generated batch on top of a
// base data plane and then removing it restores the base behaviour.
func TestQuickRemovalIsInverse(t *testing.T) {
	f := func(base, extra []opSpec) bool {
		// Build base from inserts only.
		for i := range base {
			base[i].Insert = true
		}
		n, ok := applySpecs(t, base, false)
		if !ok {
			return false
		}
		before := n.BehaviourDigest()
		// Apply extras as pure inserts with fresh high ids, then remove.
		g := n.Graph()
		var added []RuleID
		id := RuleID(1 << 20)
		var d Delta
		for _, s := range extra {
			src := netgraph.NodeID(int(s.Node) % 4)
			link := g.Out(src)[0]
			r := Rule{ID: id, Source: src, Link: link,
				Match:    iv(uint64(s.Lo), uint64(s.Lo)+uint64(s.Size)),
				Priority: Priority(s.Prio)}
			if err := n.InsertRuleInto(r, &d); err != nil {
				return false
			}
			added = append(added, id)
			id++
		}
		for _, rid := range added {
			if err := n.RemoveRuleInto(rid, &d); err != nil {
				return false
			}
		}
		return n.BehaviourDigest() == before && n.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
