// Quickstart: the paper's Table 1 / §3 worked example as a runnable
// program.
//
// A single switch holds two rules: a high-priority drop rule for
// 0.0.0.10/31 and a low-priority forward rule for 0.0.0.0/28. Delta-net
// segments the rules into atoms and maintains, per link, exactly the set
// of packets that flow on it. We then insert the medium-priority rule rM
// from §3.2.1 and watch the atom [0:10) split.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"deltanet"
)

func main() {
	c := deltanet.New()
	s := c.AddSwitch("s")
	peer := c.AddSwitch("peer")
	uplink := c.AddLink(s, peer)

	// rH: drop packets to 0.0.0.10/31 (= addresses [10:12)).
	if _, err := c.InsertPrefixRule(1, s, deltanet.NoLink, "0.0.0.10/31", 30); err != nil {
		log.Fatal(err)
	}
	// rL: forward packets to 0.0.0.0/28 (= addresses [0:16)).
	if _, err := c.InsertPrefixRule(2, s, uplink, "0.0.0.0/28", 10); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("after rH and rL: %d rules, %d atoms\n", c.NumRules(), c.NumAtoms())
	showFlows(c, s, peer)

	// rM from §3.2.1: 0.0.0.8/30 (= [8:12)) at medium priority. Its
	// insertion splits the atom [0:10) into [0:8) and [8:10).
	rep, err := c.InsertPrefixRule(3, s, uplink, "0.0.0.8/30", 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninserting rM split %d atom(s); now %d atoms\n",
		len(rep.Delta.NewAtoms), c.NumAtoms())
	showFlows(c, s, peer)

	// The persistent flow API: what can reach the peer right now?
	fmt.Println("\nranges reaching peer:")
	for _, iv := range c.ReachableRanges(s, peer) {
		fmt.Printf("  %v\n", iv)
	}
}

func showFlows(c *deltanet.Checker, s, peer deltanet.SwitchID) {
	fmt.Println("per-address forwarding at s:")
	for addr := uint64(0); addr < 18; addr++ {
		atom := c.AtomOf(addr)
		link := c.Network().ForwardLink(s, atom)
		verdict := "no rule (miss)"
		switch {
		case link == deltanet.NoLink:
		case c.Network().Graph().IsDropLink(link):
			verdict = "DROP (rH)"
		default:
			verdict = "forward to peer"
		}
		if addr == 0 || addr == 8 || addr == 10 || addr == 12 || addr == 16 {
			fmt.Printf("  addr %2d (atom %d): %s\n", addr, atom, verdict)
		}
	}
}
