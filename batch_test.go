package deltanet

// Tests for the public batch API: Checker.ApplyBatch must agree with
// sequential InsertRule/RemoveRule on atoms, labels, and loop verdicts,
// and the optional incremental black-hole check must fire on batches.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// buildTwinCheckers returns two checkers over identical 4-switch full-mesh
// topologies plus the switch and link ids (shared, since ids are assigned
// identically).
func buildTwinCheckers(opts ...Option) (batched, seq *Checker, switches []SwitchID, links []LinkID) {
	batched, seq = New(opts...), New(opts...)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("s%d", i)
		switches = append(switches, batched.AddSwitch(name))
		seq.AddSwitch(name)
	}
	for i := range switches {
		for j := range switches {
			if i != j {
				links = append(links, batched.AddLink(switches[i], switches[j]))
				seq.AddLink(switches[i], switches[j])
			}
		}
	}
	return batched, seq, switches, links
}

// loopKey canonicalizes a loop verdict set for comparison: the sorted
// multiset of atom intervals that loop.
func loopKeys(c *Checker, loops []Loop) []string {
	keys := make([]string, 0, len(loops))
	for _, l := range loops {
		if iv, ok := c.AtomRange(l.Atom); ok {
			keys = append(keys, fmt.Sprintf("%d:%d", iv.Lo, iv.Hi))
		}
	}
	sort.Strings(keys)
	return keys
}

// TestApplyBatchEquivalence: random batches through ApplyBatch versus the
// same ops sequentially — atoms, labels, and loop verdicts must agree.
func TestApplyBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	batched, seq, switches, links := buildTwinCheckers()

	var live []RuleID
	nextID := RuleID(1)
	for round := 0; round < 5; round++ {
		var ops []BatchOp
		for len(ops) < 64 {
			if len(live) > 0 && rng.Intn(100) < 30 {
				k := rng.Intn(len(live))
				ops = append(ops, RemoveOp(live[k]))
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			l := links[rng.Intn(len(links))]
			src := batched.Network().Graph().Link(l).Src
			lo := uint64(rng.Intn(1 << 16))
			ops = append(ops, InsertOp(Rule{
				ID: nextID, Source: src, Link: l,
				Match:    Interval{Lo: lo, Hi: lo + 1 + uint64(rng.Intn(1<<14))},
				Priority: Priority(rng.Intn(50)),
			}))
			live = append(live, nextID)
			nextID++
		}

		rep, err := batched.ApplyBatch(ops)
		if err != nil {
			t.Fatal(err)
		}
		var seqLoopy bool
		for _, op := range ops {
			if op.Insert {
				r, err := seq.InsertRule(op.Rule)
				if err != nil {
					t.Fatal(err)
				}
				seqLoopy = seqLoopy || len(r.Loops) > 0
			} else if _, err := seq.RemoveRule(op.Rule.ID); err != nil {
				t.Fatal(err)
			}
		}
		_ = seqLoopy // transient loops may close within the batch; final state is compared below

		if batched.NumAtoms() != seq.NumAtoms() || batched.NumRules() != seq.NumRules() {
			t.Fatalf("round %d: atoms %d/%d rules %d/%d", round,
				batched.NumAtoms(), seq.NumAtoms(), batched.NumRules(), seq.NumRules())
		}
		for _, l := range links {
			if !batched.LinkLabel(l).Equal(seq.LinkLabel(l)) {
				t.Fatalf("round %d: label of link %d differs", round, l)
			}
		}
		// Loop verdicts on the final state: the batch report's loops must
		// match a full scan, which must match the sequential engine's.
		bk := loopKeys(batched, batched.FindLoops())
		sk := loopKeys(seq, seq.FindLoops())
		if fmt.Sprint(bk) != fmt.Sprint(sk) {
			t.Fatalf("round %d: loop verdicts differ: batch %v, seq %v", round, bk, sk)
		}
		rk := loopKeys(batched, rep.Loops)
		for _, k := range rk {
			found := false
			for _, want := range bk {
				if k == want {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("round %d: reported loop %s not in full scan %v", round, k, bk)
			}
		}
		if msg := batched.Network().CheckInvariants(); msg != "" {
			t.Fatalf("round %d: %s", round, msg)
		}
		if len(switches) == 0 {
			t.Fatal("unreachable")
		}
	}
}

// TestApplyBatchReportsLoop: a batch that closes a forwarding cycle
// reports it exactly once over the merged delta.
func TestApplyBatchReportsLoop(t *testing.T) {
	c := New()
	a, b := c.AddSwitch("a"), c.AddSwitch("b")
	ab, ba := c.AddLink(a, b), c.AddLink(b, a)
	rep, err := c.ApplyBatch([]BatchOp{
		InsertOp(Rule{ID: 1, Source: a, Link: ab, Match: Interval{Lo: 0, Hi: 100}, Priority: 1}),
		InsertOp(Rule{ID: 2, Source: b, Link: ba, Match: Interval{Lo: 0, Hi: 100}, Priority: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) != 1 {
		t.Fatalf("loops = %+v", rep.Loops)
	}
	// A batch removing one leg breaks the loop; no loops reported.
	rep, err = c.ApplyBatch([]BatchOp{RemoveOp(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) != 0 {
		t.Fatalf("loops after removal = %+v", rep.Loops)
	}
}

// TestApplyBatchBlackHoles: with WithBlackHoleChecking, a batch delivering
// atoms to a ruleless node reports the hole; sinks are exempt.
func TestApplyBatchBlackHoles(t *testing.T) {
	c := New(WithBlackHoleChecking())
	a, b := c.AddSwitch("a"), c.AddSwitch("b")
	ab := c.AddLink(a, b)
	rep, err := c.ApplyBatch([]BatchOp{
		InsertOp(Rule{ID: 1, Source: a, Link: ab, Match: Interval{Lo: 0, Hi: 100}, Priority: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BlackHoles) != 1 || rep.BlackHoles[0].Node != b {
		t.Fatalf("black holes = %+v", rep.BlackHoles)
	}
	c.Sinks = map[SwitchID]bool{b: true}
	rep, err = c.ApplyBatch([]BatchOp{
		InsertOp(Rule{ID: 2, Source: a, Link: ab, Match: Interval{Lo: 200, Hi: 300}, Priority: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BlackHoles) != 0 {
		t.Fatalf("sink still reported: %+v", rep.BlackHoles)
	}
}

// TestApplyBatchAtomicity at the public layer: a bad op rejects the batch.
func TestApplyBatchAtomicity(t *testing.T) {
	c := New()
	a, b := c.AddSwitch("a"), c.AddSwitch("b")
	ab := c.AddLink(a, b)
	_, err := c.ApplyBatch([]BatchOp{
		InsertOp(Rule{ID: 1, Source: a, Link: ab, Match: Interval{Lo: 0, Hi: 100}, Priority: 1}),
		RemoveOp(999),
	})
	if err == nil {
		t.Fatal("batch with unknown removal accepted")
	}
	if c.NumRules() != 0 {
		t.Fatalf("partial application: %d rules", c.NumRules())
	}
}
