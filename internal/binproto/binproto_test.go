package binproto

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

func randomOps(rng *rand.Rand, n int) []core.BatchOp {
	ops := make([]core.BatchOp, n)
	for i := range ops {
		if rng.Intn(3) == 0 {
			ops[i] = core.RemoveOp(core.RuleID(rng.Int63()))
			continue
		}
		lo := rng.Uint64() >> 1
		ops[i] = core.InsertOp(core.Rule{
			ID:       core.RuleID(rng.Int63()),
			Source:   netgraph.NodeID(rng.Int31()),
			Link:     netgraph.LinkID(rng.Int31() - 1), // includes the -1 drop link
			Match:    ipnet.Interval{Lo: lo, Hi: lo + uint64(rng.Int63n(1<<32))},
			Priority: core.Priority(rng.Int31()),
		})
	}
	return ops
}

// TestRoundTrip encodes streams of ops and sync frames and decodes them
// back, op for op, across a range of frame sizes including empty frames.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf []byte
	var want [][]core.BatchOp
	for _, n := range []int{0, 1, 7, 256, 1000} {
		ops := randomOps(rng, n)
		want = append(want, ops)
		buf = AppendOps(buf, ops)
	}
	buf = AppendSync(buf, 424242)

	fr := NewReader(bytes.NewReader(buf))
	for i, ops := range want {
		f, err := fr.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Kind != KindOps {
			t.Fatalf("frame %d: kind %d, want ops", i, f.Kind)
		}
		if len(f.Ops) != len(ops) {
			t.Fatalf("frame %d: %d ops, want %d", i, len(f.Ops), len(ops))
		}
		for j := range ops {
			if !reflect.DeepEqual(f.Ops[j], ops[j]) {
				t.Fatalf("frame %d op %d: got %+v want %+v", i, j, f.Ops[j], ops[j])
			}
		}
	}
	f, err := fr.Read()
	if err != nil || f.Kind != KindSync || f.Token != 424242 {
		t.Fatalf("sync frame: %+v, %v", f, err)
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("after last frame: %v, want EOF", err)
	}
}

// TestTruncated checks that a frame cut at any byte boundary surfaces
// as an error (or a clean EOF only at the very start), never a panic or
// a silently short decode.
func TestTruncated(t *testing.T) {
	ops := randomOps(rand.New(rand.NewSource(2)), 5)
	full := AppendOps(nil, ops)
	for cut := 0; cut < len(full); cut++ {
		fr := NewReader(bytes.NewReader(full[:cut]))
		_, err := fr.Read()
		if err == nil {
			t.Fatalf("cut at %d of %d: decode succeeded", cut, len(full))
		}
	}
}

// TestRejects covers malformed payloads: bad lengths, kinds, tags,
// counts, trailing bytes, and values that would alias through the
// narrowing casts.
func TestRejects(t *testing.T) {
	frame := func(payload []byte) []byte {
		var b []byte
		b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
		return append(b, payload...)
	}
	cases := map[string][]byte{
		"zero length":     {0, 0, 0, 0},
		"oversize length": binary.LittleEndian.AppendUint32(nil, MaxFrame+1),
		"unknown kind":    frame([]byte{99}),
		"bad tag":         frame([]byte{KindOps, 1, 7}),
		"trailing bytes":  frame([]byte{KindOps, 0, 0xff}),
		"huge count":      frame(append([]byte{KindOps}, binary.AppendUvarint(nil, 1<<40)...)),
		"sync trailing":   frame([]byte{KindSync, 1, 2}),
		"link too big": frame(func() []byte {
			p := []byte{KindOps, 1, TagInsert}
			p = binary.AppendUvarint(p, 1)     // id
			p = binary.AppendUvarint(p, 0)     // src
			p = binary.AppendUvarint(p, 1<<40) // link+1, aliases int32
			p = binary.AppendUvarint(p, 0)     // lo
			p = binary.AppendUvarint(p, 1)     // span
			return binary.AppendUvarint(p, 0)  // prio
		}()),
		"interval overflow": frame(func() []byte {
			p := []byte{KindOps, 1, TagInsert}
			p = binary.AppendUvarint(p, 1)
			p = binary.AppendUvarint(p, 0)
			p = binary.AppendUvarint(p, 1)
			p = binary.AppendUvarint(p, 1<<63) // lo
			p = binary.AppendUvarint(p, 1<<63) // span; lo+span wraps
			return binary.AppendUvarint(p, 0)
		}()),
	}
	for name, raw := range cases {
		fr := NewReader(bytes.NewReader(raw))
		if _, err := fr.Read(); err == nil || err == io.EOF {
			t.Errorf("%s: want a decode error, got %v", name, err)
		}
	}
}

// BenchmarkDecodeOps pins the decode cost the connection goroutine pays
// per op — the work the binary path moves off the engine lock.
func BenchmarkDecodeOps(b *testing.B) {
	ops := randomOps(rand.New(rand.NewSource(3)), 256)
	raw := AppendOps(nil, ops)
	r := bytes.NewReader(raw)
	fr := NewReader(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		if _, err := fr.Read(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ops)), "ns/op-decoded")
}
