package deltanet

import (
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	c := New()
	s1 := c.AddSwitch("s1")
	s2 := c.AddSwitch("s2")
	s3 := c.AddSwitch("s3")
	l12 := c.AddLink(s1, s2)
	l23 := c.AddLink(s2, s3)

	rep, err := c.InsertPrefixRule(1, s1, l12, "10.0.0.0/8", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) != 0 || rep.Delta.Empty() {
		t.Fatalf("report %+v", rep)
	}
	if _, err := c.InsertPrefixRule(2, s2, l23, "10.0.0.0/8", 100); err != nil {
		t.Fatal(err)
	}
	if c.NumRules() != 2 || c.NumAtoms() < 2 {
		t.Fatalf("rules=%d atoms=%d", c.NumRules(), c.NumAtoms())
	}

	ranges := c.ReachableRanges(s1, s3)
	if len(ranges) != 1 {
		t.Fatalf("ranges=%v", ranges)
	}
	p, _ := ParsePrefix("10.0.0.0/8")
	if ranges[0] != p.Interval() {
		t.Fatalf("range %v want %v", ranges[0], p.Interval())
	}
	if c.ReachableAtoms(s3, s1).Len() != 0 {
		t.Fatal("reverse reachability")
	}
	if c.Switch("s2") != s2 || c.Switch("nope") != -1 {
		t.Fatal("Switch lookup")
	}
}

func TestLoopReporting(t *testing.T) {
	c := New()
	a, b := c.AddSwitch("a"), c.AddSwitch("b")
	ab, ba := c.AddLink(a, b), c.AddLink(b, a)
	if _, err := c.InsertPrefixRule(1, a, ab, "10.0.0.0/8", 1); err != nil {
		t.Fatal(err)
	}
	rep, err := c.InsertPrefixRule(2, b, ba, "10.0.0.0/8", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) == 0 {
		t.Fatal("loop not reported")
	}
	if len(c.FindLoops()) == 0 {
		t.Fatal("FindLoops misses it")
	}
	// Removing one side clears it.
	if _, err := c.RemoveRule(2); err != nil {
		t.Fatal(err)
	}
	if len(c.FindLoops()) != 0 {
		t.Fatal("loop survived removal")
	}
}

func TestWithoutLoopChecking(t *testing.T) {
	c := New(WithoutLoopChecking())
	a, b := c.AddSwitch("a"), c.AddSwitch("b")
	ab, ba := c.AddLink(a, b), c.AddLink(b, a)
	c.InsertPrefixRule(1, a, ab, "10.0.0.0/8", 1)
	rep, _ := c.InsertPrefixRule(2, b, ba, "10.0.0.0/8", 1)
	if len(rep.Loops) != 0 {
		t.Fatal("loops reported while disabled")
	}
	// Explicit scan still works.
	if len(c.FindLoops()) == 0 {
		t.Fatal("FindLoops should still find it")
	}
}

func TestWithAtomGC(t *testing.T) {
	c := New(WithAtomGC())
	a, b := c.AddSwitch("a"), c.AddSwitch("b")
	ab := c.AddLink(a, b)
	for i := 0; i < 50; i++ {
		if _, err := c.InsertPrefixRule(RuleID(i+1), a, ab, "10.0.0.0/24", Priority(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := c.RemoveRule(RuleID(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	if c.NumAtoms() != 1 {
		t.Fatalf("atoms=%d want 1 after GC", c.NumAtoms())
	}
}

func TestDropRulesAndWhatIf(t *testing.T) {
	c := New()
	a, b := c.AddSwitch("a"), c.AddSwitch("b")
	ab := c.AddLink(a, b)
	if _, err := c.InsertPrefixRule(1, a, ab, "0.0.0.0/4", 1); err != nil {
		t.Fatal(err)
	}
	// Higher-priority drop rule for a sub-range.
	if _, err := c.InsertPrefixRule(2, a, NoLink, "0.0.0.0/8", 9); err != nil {
		t.Fatal(err)
	}
	atomDropped := c.AtomOf(0)
	if c.LinkLabel(ab).Contains(int(atomDropped)) {
		t.Fatal("dropped range still labelled")
	}
	sub := c.WhatIfLinkFails(ab)
	if sub.Affected.Contains(int(atomDropped)) {
		t.Fatal("dropped atom counted as affected")
	}
	if sub.NumEdges() != 1 {
		t.Fatalf("subgraph edges=%d", sub.NumEdges())
	}
	if in, ok := c.AtomRange(atomDropped); !ok || in.Lo != 0 {
		t.Fatalf("AtomRange=%v,%v", in, ok)
	}
}

func TestAllPairsReachabilityFacade(t *testing.T) {
	c := New()
	a, b, d := c.AddSwitch("a"), c.AddSwitch("b"), c.AddSwitch("c")
	ab := c.AddLink(a, b)
	bd := c.AddLink(b, d)
	c.InsertPrefixRule(1, a, ab, "10.0.0.0/8", 1)
	c.InsertPrefixRule(2, b, bd, "10.0.0.0/8", 1)
	serial := c.AllPairsReachability(false)
	par := c.AllPairsReachability(true)
	if serial[a][d].Empty() {
		t.Fatal("a cannot reach c in all-pairs")
	}
	if !serial[a][d].Equal(par[a][d]) {
		t.Fatal("serial/parallel disagree")
	}
}

func TestBadInputs(t *testing.T) {
	c := New()
	a := c.AddSwitch("a")
	b := c.AddSwitch("b")
	ab := c.AddLink(a, b)
	if _, err := c.InsertPrefixRule(1, a, ab, "garbage", 1); err == nil {
		t.Fatal("bad prefix accepted")
	}
	if _, err := c.RemoveRule(42); err == nil {
		t.Fatal("unknown rule removal accepted")
	}
	if _, err := c.InsertPrefixRule(1, a, ab, "10.0.0.0/8", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InsertPrefixRule(1, a, ab, "10.0.0.0/8", 1); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if c.Network() == nil {
		t.Fatal("Network accessor")
	}
	if c.AddPort("a", 3) == c.AddPort("a", 4) {
		t.Fatal("ports collapsed")
	}
}
