// Package dnlint is deltanet's in-tree static-analysis driver: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// driver shape on top of the standard library's go/ast, go/types and
// go/importer.
//
// The repo's lint suite (internal/analysis/...) enforces invariants the
// compiler cannot see — pointer-free long-lived summaries, the lock-rank
// hierarchy, the guarded connection writer, and wire-protocol/doc/fuzz
// coherence. Those analyzers are written against the types in this
// package; cmd/dnlint is the multichecker binary and
// internal/analysis.TestDnlintClean is the in-repo gate.
//
// Why not x/tools? deltanet is deliberately zero-dependency (see go.mod),
// so the usual go/analysis + analysistest + `go vet -vettool` stack is
// unavailable. dnlint mirrors its essentials: an Analyzer runs over one
// type-checked package at a time (a Pass), reports Diagnostics, and is
// tested against analysistest-style fixtures with `// want "regexp"`
// comments (see RunTest). Packages are loaded via `go list -export`, so
// imports are resolved from the build cache's export data exactly as the
// compiler saw them.
//
// # Annotation grammar
//
// Analyzers are driven by //deltanet:* marker comments. A marker is a
// single //-comment line (no space after the slashes, like //go:build)
// inside the doc comment or trailing comment of the declaration it
// annotates:
//
//	//deltanet:pointerfree
//	    On a type declaration: the type must not contain pointers at any
//	    depth (no pointers, slices, maps, chans, funcs, interfaces or
//	    strings). Checked by the pointerfree analyzer.
//
//	//deltanet:lockrank <n>
//	    On a sync.Mutex or sync.RWMutex struct field: declares the
//	    field's rank in the package's lock hierarchy. Locks must be
//	    acquired in strictly increasing rank order. Checked by the
//	    lockorder analyzer.
//
//	//deltanet:connwriter
//	    On a type declaration: marks the package's guarded connection
//	    writer. Checked by the guardedwriter analyzer.
//
//	//deltanet:dispatch
//	    On the wire-command registry variable ([]string) and on the
//	    functions that dispatch on command strings. Checked by the
//	    wireproto analyzer.
//
//	//deltanet:nolint <analyzer>[,<analyzer>] <reason>
//	    Suppresses diagnostics from the named analyzers on the marker's
//	    line and on the line directly below it (so the marker works both
//	    trailing the offending line and standing on its own line above
//	    it). The reason is mandatory; a missing reason or an unknown
//	    analyzer name is itself reported (and cannot be suppressed).
package dnlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check. It is invoked once per loaded
// package via Run (or once per fixture package via RunTest).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //deltanet:nolint comments. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// Run applies the analyzer to one package. Findings go through
	// pass.Reportf; the error return is for operational failures only
	// (it aborts the whole run, it is not a finding).
	Run func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work, mirroring
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet
	Files []*ast.File // the package's compiled (non-test) files, with comments
	Pkg   *types.Package
	Info  *types.Info
	Dir   string // the package's directory on disk

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// Marker extracts the argument text of a //deltanet:<name> marker
// comment. The marker must start the comment ("//deltanet:lockrank 10"),
// and whatever follows the name is returned with surrounding space
// trimmed. ok reports whether c is a marker for name.
func Marker(c *ast.Comment, name string) (args string, ok bool) {
	text, found := strings.CutPrefix(c.Text, "//deltanet:")
	if !found {
		return "", false
	}
	rest, found := strings.CutPrefix(text, name)
	if !found {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // a longer marker name, e.g. "pointerfreeish"
	}
	return strings.TrimSpace(rest), true
}

// GroupMarker scans a comment group (a declaration's Doc or trailing
// Comment) for a //deltanet:<name> marker.
func GroupMarker(g *ast.CommentGroup, name string) (args string, ok bool) {
	if g == nil {
		return "", false
	}
	for _, c := range g.List {
		if args, ok := Marker(c, name); ok {
			return args, true
		}
	}
	return "", false
}

// FieldObj resolves a struct-field AST name to its types.Var.
func FieldObj(info *types.Info, name *ast.Ident) (*types.Var, bool) {
	v, ok := info.Defs[name].(*types.Var)
	return v, ok
}

// SelectedVar resolves the object an expression refers to, seeing
// through selections (x.f, pkg.V) and plain identifiers. It returns nil
// for anything that is not a *types.Var.
func SelectedVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.ParenExpr:
		return SelectedVar(info, e.X)
	}
	return nil
}

// NamedType reports whether t (after unaliasing) is the named type
// pkgPath.name, e.g. NamedType(t, "sync", "Mutex").
func NamedType(t types.Type, pkgPath, name string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
