package experiments

// ingest.go is the sustained-ingestion experiment behind `dnbench
// ingest`: the same BGP flap-churn workload pushed through dnserve's
// front ends, three arms on identical fresh servers.
//
//   - line/sync: the line protocol as a verifying controller actually
//     drives it — one I/R line per update, one blocking read of the
//     verdict response before the next update ships (the paper's
//     check-before-commit sidecar loop). Throughput is round-trip
//     bound: rate ≈ 1/RTT no matter how fast the engine is.
//   - line/batch: the line protocol's best case — B batches of `batch`
//     ops pipelined on one connection, one round trip per batch, text
//     parsed under the write lock. This arm gives up per-update
//     verdicts (the response covers the whole batch).
//   - binary: the binary batch protocol — packed frames decoded
//     off-lock on `conns` connections, coalesced through the ingest
//     ring, verdicts decoupled onto the events/watch stream with sync
//     frames as barriers. It keeps per-update verdict granularity
//     (every update's effect lands in the watch stream) without paying
//     a round trip for it.
//
// The acceptance gate for the ingestion work — binary >= 3x the line
// protocol's updates/sec with the binary arm at batch 256 — is scored
// against line/sync, the mode with the same verdict semantics the
// binary path provides. line/batch is reported alongside for honesty:
// once updates are blind-batched both front ends converge on the
// engine's ApplyBatch ceiling and the binary win shrinks to the
// parse/render/round-trip overhead it eliminates (~1.5x here).
//
// The workload is a verification workload, not a bare engine drag
// race: a gateway chain (ingress -> sw1 -> sw2 -> egress) carries one
// forwarding rule per BGP prefix on every hop, a battery of standing
// invariants (per-hop reachability plus loop freedom) is registered,
// and the timed phase flaps the ingress rules — withdraw plus
// re-announce of prefixes that already exist, the churn shape of
// replayed RIB updates. Every flush dirties the standing invariants,
// so the dominant cost is the per-flush monitor pass; what separates
// the arms is how much update stream each front end turns into one
// flush and how much framing work happens off the engine lock.

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deltanet/client"
	"deltanet/internal/bgp"
	"deltanet/internal/server"
)

const (
	// ingestWorkingSet is how many live prefixes the flap churn cycles
	// over (the pre-announced rule set).
	ingestWorkingSet = 2048
	// ingestSyncEvery bounds a binary connection's outstanding window:
	// a sync barrier every this many frames.
	ingestSyncEvery = 16
	// ingestMaxLine mirrors the server's response line limit.
	ingestMaxLine = 1 << 20
)

// IngestRow is one `dnbench ingest` result: all three arms' sustained
// rates on the same workload.
type IngestRow struct {
	Updates       int     // timed ops per arm
	Batch         int     // ops per B command / per binary frame
	Conns         int     // binary-arm connections (the line arms use 1)
	LineSyncRate  float64 // updates/sec, line protocol, verdict per update
	LineBatchRate float64 // updates/sec, line protocol, pipelined B batches
	BinRate       float64 // updates/sec, binary protocol
	RatioSync     float64 // BinRate / LineSyncRate — the acceptance-gate ratio
	RatioBatch    float64 // BinRate / LineBatchRate
	Busy          uint64  // backpressure notices binary clients absorbed
}

// IngestRemote is the result of replaying the binary arm against an
// already-running dnserve (`dnbench -addr ... ingest`), the smoke
// test's entry point.
type IngestRemote struct {
	Updates int
	Rate    float64 // sustained updates/sec
	Busy    uint64
	Applied uint64 // server's total applied count at the final barrier
}

// RunIngest measures the three front-end arms in-process: a fresh
// server per arm (identical topology and invariant battery), the same
// pre-announced working set, the same number of timed flap ops.
func RunIngest(updates, batch, conns int, seed int64) (IngestRow, error) {
	if updates <= 0 || batch <= 0 {
		return IngestRow{}, fmt.Errorf("ingest: updates and batch must be positive")
	}
	if conns < 1 {
		conns = 1
	}
	static, flap := ingestWorkingRules(ingestWorkingSet, seed)
	// The verdict-per-update arm is round-trip bound (tens of µs per
	// update on loopback); cap its timed ops so the experiment stays
	// interactive — rate is steady-state either way.
	syncUpdates := min(updates, 4*ingestWorkingSet)
	syncRate, err := runIngestLineArm(static, flap, syncUpdates, batch, true)
	if err != nil {
		return IngestRow{}, fmt.Errorf("ingest line/sync arm: %w", err)
	}
	batchRate, err := runIngestLineArm(static, flap, updates, batch, false)
	if err != nil {
		return IngestRow{}, fmt.Errorf("ingest line/batch arm: %w", err)
	}
	binRate, busy, _, err := runIngestBinaryArm("", static, flap, updates, batch, conns)
	if err != nil {
		return IngestRow{}, fmt.Errorf("ingest binary arm: %w", err)
	}
	row := IngestRow{Updates: updates, Batch: batch, Conns: conns,
		LineSyncRate: syncRate, LineBatchRate: batchRate, BinRate: binRate, Busy: busy}
	if syncRate > 0 {
		row.RatioSync = binRate / syncRate
	}
	if batchRate > 0 {
		row.RatioBatch = binRate / batchRate
	}
	return row, nil
}

// RunIngestRemote replays the binary arm against the dnserve at addr,
// creating the gateway topology and invariant there first (the target
// must be a fresh server).
func RunIngestRemote(addr string, updates, batch, conns int, seed int64) (IngestRemote, error) {
	if conns < 1 {
		conns = 1
	}
	static, flap := ingestWorkingRules(ingestWorkingSet, seed)
	rate, busy, applied, err := runIngestBinaryArm(addr, static, flap, updates, batch, conns)
	if err != nil {
		return IngestRemote{}, err
	}
	return IngestRemote{Updates: updates, Rate: rate, Busy: busy, Applied: applied}, nil
}

// ingestTopology is the gateway chain every arm runs on, and
// ingestInvariants the standing battery evaluated on every flush.
var (
	ingestTopology = []string{
		"node ingress", "node sw1", "node sw2", "node egress",
		"link 0 1", "link 1 2", "link 2 3",
	}
	ingestInvariants = []string{
		"W reach 0 3", "W reach 1 3", "W reach 2 3", "W loopfree",
	}
)

// ingestWorkingRules derives the working set from the BGP feed: per
// unique prefix, one rule on every hop of the chain (priority = prefix
// length, longest-match style). The interior-hop rules are static —
// installed once, untimed; the ingress rules (link 0) are what the
// timed phase flaps, the way RIB churn re-announces routes at the
// border while the fabric's interior stays put.
func ingestWorkingRules(n int, seed int64) (static, flap []client.Update) {
	feed := bgp.NewFeed(seed, 0.3)
	ps := feed.UniquePrefixes(n)
	for i, p := range ps {
		iv := p.Interval()
		flap = append(flap, client.Insert(int64(i+1), 0, 0, iv.Lo, iv.Hi, int32(p.Len)))
		static = append(static,
			client.Insert(int64(n+i+1), 1, 1, iv.Lo, iv.Hi, int32(p.Len)),
			client.Insert(int64(2*n+i+1), 2, 2, iv.Lo, iv.Hi, int32(p.Len)))
	}
	return static, flap
}

// ingestFlapStream builds n timed ops cycling over the working set:
// withdraw then re-announce, the churn shape of replayed RIB updates.
func ingestFlapStream(rules []client.Update, n int) []client.Update {
	out := make([]client.Update, 0, n)
	for j := 0; len(out) < n; j++ {
		r := rules[j%len(rules)]
		out = append(out, client.Remove(r.RuleID))
		if len(out) < n {
			out = append(out, r)
		}
	}
	return out
}

// startIngestServer boots an in-process server and, through ctrl
// (whose lifetime owns the registrations), creates the chain topology
// and registers the invariant battery.
func startIngestServer() (addr string, ctrl *client.Client, shutdown func(), err error) {
	s := server.New()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	done := make(chan struct{})
	go func() { defer close(done); s.Serve(l) }()
	stop := func() {
		s.Close()
		<-done
	}
	ctrl, err = client.Dial(l.Addr().String())
	if err != nil {
		stop()
		return "", nil, nil, err
	}
	for _, cmd := range append(append([]string{}, ingestTopology...), ingestInvariants...) {
		if _, err := ctrl.Do(cmd); err != nil {
			ctrl.Close()
			stop()
			return "", nil, nil, fmt.Errorf("setup %q: %w", cmd, err)
		}
	}
	return l.Addr().String(), ctrl, func() {
		ctrl.Close()
		stop()
	}, nil
}

// runIngestLineArm drives the workload through the line protocol on a
// single connection. With perUpdate false the timed phase sends B
// batches — one write of batch+1 lines, one blocking read of the batch
// response. With perUpdate true it sends one bare I/R line per update
// and reads its verdict response before the next — the synchronous
// check-before-commit loop a verifying controller runs, bound by the
// round trip rather than the engine. Setup phases always batch.
func runIngestLineArm(static, flap []client.Update, updates, batch int, perUpdate bool) (float64, error) {
	addr, _, shutdown, err := startIngestServer()
	if err != nil {
		return 0, err
	}
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 64<<10)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), ingestMaxLine)
	readOK := func(what string) error {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return err
			}
			return fmt.Errorf("connection closed awaiting %s response", what)
		}
		if resp := sc.Text(); !strings.HasPrefix(resp, "ok") {
			return fmt.Errorf("%s refused: %s", what, resp)
		}
		return nil
	}
	sendBatched := func(ops []client.Update) error {
		for i := 0; i < len(ops); i += batch {
			end := min(i+batch, len(ops))
			fmt.Fprintf(bw, "B %d\n", end-i)
			for _, u := range ops[i:end] {
				writeLineOp(bw, u)
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			if err := readOK("batch"); err != nil {
				return err
			}
		}
		return nil
	}
	sendPerUpdate := func(ops []client.Update) error {
		for _, u := range ops {
			writeLineOp(bw, u)
			if err := bw.Flush(); err != nil {
				return err
			}
			if err := readOK("update"); err != nil {
				return err
			}
		}
		return nil
	}
	if err := sendBatched(static); err != nil { // interior hops, untimed
		return 0, err
	}
	if err := sendBatched(flap); err != nil { // pre-announce the ingress rules, untimed
		return 0, err
	}
	stream := ingestFlapStream(flap, updates)
	send := sendBatched
	if perUpdate {
		send = sendPerUpdate
	}
	start := time.Now()
	if err := send(stream); err != nil {
		return 0, err
	}
	return float64(len(stream)) / time.Since(start).Seconds(), nil
}

func writeLineOp(bw *bufio.Writer, u client.Update) {
	if u.Insert {
		fmt.Fprintf(bw, "I %d %d %d %d %d %d\n", u.RuleID, u.Source, u.Link, u.Lo, u.Hi, u.Priority)
	} else {
		fmt.Fprintf(bw, "R %d\n", u.RuleID)
	}
}

// runIngestBinaryArm drives the workload through the binary batch
// protocol: conns connections each flapping a disjoint slice of the
// working set (so interleaving in the ring never reorders one rule's
// remove/insert pair), frames of batch ops, a sync barrier every
// ingestSyncEvery frames and one final barrier that ends the clock.
// With addr == "" an in-process server is booted; otherwise the target
// is a fresh remote dnserve and the topology is created over the wire.
func runIngestBinaryArm(addr string, static, flap []client.Update, updates, batch, conns int) (rate float64, busy uint64, applied uint64, err error) {
	var ctrl *client.Client
	if addr == "" {
		var shutdown func()
		addr, ctrl, shutdown, err = startIngestServer()
		if err != nil {
			return 0, 0, 0, err
		}
		defer shutdown()
	} else {
		ctrl, err = client.Dial(addr)
		if err != nil {
			return 0, 0, 0, err
		}
		defer ctrl.Close()
		for _, cmd := range append(append([]string{}, ingestTopology...), ingestInvariants...) {
			if _, err := ctrl.Do(cmd); err != nil {
				return 0, 0, 0, fmt.Errorf("remote setup %q: %w", cmd, err)
			}
		}
	}

	// Install the interior hops and pre-announce the ingress working
	// set on one connection, untimed.
	pre, err := client.Dial(addr)
	if err != nil {
		return 0, 0, 0, err
	}
	bc, err := pre.Binary()
	if err != nil {
		pre.Close()
		return 0, 0, 0, err
	}
	for _, set := range [][]client.Update{static, flap} {
		for i := 0; i < len(set); i += batch {
			if err := bc.Send(set[i:min(i+batch, len(set))]); err != nil {
				pre.Close()
				return 0, 0, 0, err
			}
		}
	}
	if _, err := bc.Sync(); err != nil {
		pre.Close()
		return 0, 0, 0, err
	}
	pre.Close()

	// Partition the working set and connect every client before the
	// clock starts.
	type arm struct {
		c      *client.Client
		bc     *client.BinaryConn
		stream []client.Update
	}
	arms := make([]arm, conns)
	per := updates / conns
	for i := range arms {
		lo, hi := i*len(flap)/conns, (i+1)*len(flap)/conns
		n := per
		if i == conns-1 {
			n = updates - per*(conns-1)
		}
		c, err := client.Dial(addr)
		if err != nil {
			return 0, 0, 0, err
		}
		defer c.Close()
		bcc, err := c.Binary()
		if err != nil {
			return 0, 0, 0, err
		}
		arms[i] = arm{c: c, bc: bcc, stream: ingestFlapStream(flap[lo:hi], n)}
	}

	var wg sync.WaitGroup
	var errMu sync.Mutex
	var armErr error
	fail := func(err error) {
		errMu.Lock()
		if armErr == nil {
			armErr = err
		}
		errMu.Unlock()
	}
	var busyTotal, appliedMax atomic.Uint64
	start := time.Now()
	for i := range arms {
		wg.Add(1)
		go func(a arm) {
			defer wg.Done()
			frames := 0
			for i := 0; i < len(a.stream); i += batch {
				if err := a.bc.Send(a.stream[i:min(i+batch, len(a.stream))]); err != nil {
					fail(err)
					return
				}
				if frames++; frames%ingestSyncEvery == 0 {
					if _, err := a.bc.Sync(); err != nil {
						fail(err)
						return
					}
				}
			}
			n, err := a.bc.Sync()
			if err != nil {
				fail(err)
				return
			}
			busyTotal.Add(a.bc.Busy())
			for {
				cur := appliedMax.Load()
				if n <= cur || appliedMax.CompareAndSwap(cur, n) {
					break
				}
			}
		}(arms[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if armErr != nil {
		return 0, 0, 0, armErr
	}
	return float64(updates) / elapsed.Seconds(), busyTotal.Load(), appliedMax.Load(), nil
}
