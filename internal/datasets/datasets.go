// Package datasets assembles the eight evaluation datasets of the paper's
// Table 2 from the substrate generators: synthetic wide-area datasets in
// the style of Zeng et al.'s Libra generation mechanism (Berkeley, INET,
// RF 1755/3257/6461 — §4.2.1), and SDN-IP controller traces (Airtel 1,
// Airtel 2, 4Switch — §4.2.2).
//
// The paper's datasets hold up to 250 million operations, built from real
// Route Views dumps on a 94 GB server; a Scale parameter shrinks every
// dataset proportionally so the whole suite runs on a laptop while
// preserving each dataset's structure (topology, prefix statistics,
// insert/remove mix). Scale 1.0 corresponds to the laptop-default sizes
// below, not to the paper's full sizes; the --scale flag of the harness
// multiplies them.
package datasets

import (
	"fmt"
	"math/rand"

	"deltanet/internal/bgp"
	"deltanet/internal/core"
	"deltanet/internal/netgraph"
	"deltanet/internal/routes"
	"deltanet/internal/sdnip"
	"deltanet/internal/topo"
	"deltanet/internal/trace"
)

// Names lists the dataset names in Table 2's order.
func Names() []string {
	return []string{"berkeley", "inet", "rf1755", "rf3257", "rf6461", "airtel1", "airtel2", "4switch"}
}

// spec holds a synthetic dataset's generation parameters at scale 1.0.
type spec struct {
	topology string
	prefixes int // prefixes drawn from the BGP feed
	seed     int64
}

var synthetic = map[string]spec{
	"berkeley": {topology: "berkeley", prefixes: 600, seed: 2301},
	"inet":     {topology: "inet", prefixes: 1500, seed: 3316},
	"rf1755":   {topology: "rf1755", prefixes: 900, seed: 1755},
	"rf3257":   {topology: "rf3257", prefixes: 1000, seed: 3257},
	"rf6461":   {topology: "rf6461", prefixes: 1000, seed: 6461},
}

// Build generates the named dataset at the given scale (1.0 = laptop
// default; the paper's sizes are roughly scale 1000 for the synthetic
// sets). The result is deterministic per (name, scale).
func Build(name string, scale float64) (*trace.Trace, error) {
	if scale <= 0 {
		scale = 1
	}
	if s, ok := synthetic[name]; ok {
		return buildSynthetic(name, s, scale)
	}
	switch name {
	case "airtel1":
		g, _ := topo.Build("airtel")
		ads := sdnip.RandomAdvertisements(borderSwitches(g), scaled(100, scale, 4), 9498)
		t := sdnip.Airtel1Trace(g, ads)
		return t, nil
	case "airtel2":
		g, _ := topo.Build("airtel")
		ads := sdnip.RandomAdvertisements(borderSwitches(g), scaled(100, scale, 4), 9499)
		// All pairs of ~27 bidirectional links is ~350 pairs; scale
		// caps the pair count.
		t := sdnip.Airtel2Trace(g, ads, scaled(36, scale, 1))
		return t, nil
	case "4switch":
		g, _ := topo.Build("4switch")
		t := sdnip.FourSwitchTrace(g, scaled(700, scale, 10), 14, 44)
		return t, nil
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q", name)
	}
}

func scaled(base int, scale float64, min int) int {
	n := int(float64(base) * scale)
	if n < min {
		n = min
	}
	return n
}

// buildSynthetic implements the §4.2.1 mechanism: prefixes from a BGP
// feed, shortest paths toward a random egress per prefix, rules inserted
// with random priorities, then removed in random order.
func buildSynthetic(name string, s spec, scale float64) (*trace.Trace, error) {
	g, err := topo.Build(s.topology)
	if err != nil {
		return nil, err
	}
	feed := bgp.NewFeed(s.seed, 0.3)
	comp := routes.NewCompiler(g, s.seed+1)
	comp.RandomPriority = true
	switches := topo.SwitchNodes(g)

	nPrefixes := scaled(s.prefixes, scale, 8)
	var rules []core.Rule
	for i := 0; i < nPrefixes; i++ {
		rules = append(rules, comp.RulesForPrefix(feed.Next(), switches)...)
	}

	ops := make([]trace.Op, 0, 2*len(rules))
	for _, r := range rules {
		ops = append(ops, trace.Op{Insert: true, Rule: r})
	}
	// Removal in random order (§4.2.1).
	rng := rand.New(rand.NewSource(s.seed + 2))
	perm := rng.Perm(len(rules))
	for _, i := range perm {
		ops = append(ops, trace.Op{Rule: core.Rule{ID: rules[i].ID}})
	}
	return &trace.Trace{Name: name, Graph: g, Ops: ops}, nil
}

// borderSwitches returns the switches that peer with external ASes. In the
// paper's Airtel setup each of the emulated switches connects to one
// external border router; we model that as every switch being a border.
func borderSwitches(g *netgraph.Graph) []netgraph.NodeID {
	var out []netgraph.NodeID
	for v := netgraph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if v != g.DropNode() {
			out = append(out, v)
		}
	}
	return out
}

// Info summarizes a dataset for Table 2.
type Info struct {
	Name       string
	Nodes      int
	Links      int
	Operations int
	Inserts    int
}

// Describe computes the Table 2 row for a built dataset.
func Describe(t *trace.Trace) Info {
	return Info{
		Name:       t.Name,
		Nodes:      t.Graph.NumNodes(),
		Links:      t.Graph.NumLinks(),
		Operations: len(t.Ops),
		Inserts:    t.NumInserts(),
	}
}
