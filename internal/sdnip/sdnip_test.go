package sdnip

import (
	"testing"

	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
	"deltanet/internal/topo"
	"deltanet/internal/trace"
)

func twoAds(g *netgraph.Graph) []Advertisement {
	return []Advertisement{
		{Prefix: ipnet.MustParsePrefix("10.0.0.0/16"), Egress: 0},
		{Prefix: ipnet.MustParsePrefix("20.0.0.0/24"), Egress: 2},
	}
}

func TestAdvertiseAllInstallsTrees(t *testing.T) {
	g := topo.Ring(4)
	c := NewController(g, twoAds(g))
	c.AdvertiseAll()
	ops := c.Ops()
	// Each advertisement installs a rule at every switch: the non-egress
	// switches forward toward the egress, and the egress hands off to
	// its external peer.
	if len(ops) != 2*4 {
		t.Fatalf("ops=%d want 8", len(ops))
	}
	n := core.NewNetwork(g, core.Options{})
	var d core.Delta
	for _, op := range ops {
		if err := trace.Apply(n, op, &d); err != nil {
			t.Fatal(err)
		}
	}
	// Longest-prefix priority.
	found := false
	n.Rules(func(r *core.Rule) bool {
		if r.Match == ipnet.MustParsePrefix("20.0.0.0/24").Interval() && r.Priority != 24 {
			t.Fatalf("priority %d want 24", r.Priority)
		}
		found = true
		return true
	})
	if !found {
		t.Fatal("no rules installed")
	}
}

func TestFailRecoverEmitsChurnAndStaysConsistent(t *testing.T) {
	g := topo.Ring(4)
	c := NewController(g, twoAds(g))
	c.AdvertiseAll()
	base := len(c.Ops())

	// Fail a link on the active tree of egress 0: nodes reroute.
	l := g.FindLink(1, 0)
	c.FailLink(l)
	afterFail := len(c.Ops())
	if afterFail == base {
		t.Fatal("failure produced no churn")
	}
	c.RecoverLink(l)
	if len(c.Ops()) == afterFail {
		t.Fatal("recovery produced no churn")
	}

	// Replaying the full stream must be valid engine input and end with
	// every node again reaching both egresses.
	n := core.NewNetwork(g, core.Options{})
	var d core.Delta
	for i, op := range c.Ops() {
		if err := trace.Apply(n, op, &d); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	// After recovery the forwarding from node 2 for 10/16 reaches node 0.
	addr := ipnet.MustParsePrefix("10.0.0.0/16").Interval().Lo
	v := netgraph.NodeID(2)
	for hops := 0; v != 0; hops++ {
		if hops > 4 {
			t.Fatal("no path to egress after recovery")
		}
		link := n.ForwardLink(v, n.AtomOf(addr))
		if link == netgraph.NoLink {
			t.Fatalf("node %d has no rule for 10/16", v)
		}
		v = g.Link(link).Dst
	}
}

func TestFailureDuringFailureReroutesAround(t *testing.T) {
	g := topo.Ring(4)
	c := NewController(g, []Advertisement{{Prefix: ipnet.MustParsePrefix("10.0.0.0/16"), Egress: 0}})
	c.AdvertiseAll()
	// Fail both links adjacent to node 0's neighbours in one direction:
	// node 2 still reaches 0 the other way.
	c.FailLink(g.FindLink(1, 0))
	c.FailLink(g.FindLink(2, 1))
	n := core.NewNetwork(g, core.Options{})
	var d core.Delta
	for _, op := range c.Ops() {
		if err := trace.Apply(n, op, &d); err != nil {
			t.Fatal(err)
		}
	}
	addr := ipnet.MustParsePrefix("10.0.0.0/16").Interval().Lo
	v := netgraph.NodeID(2)
	for hops := 0; v != 0; hops++ {
		if hops > 4 {
			t.Fatal("no detour path")
		}
		link := n.ForwardLink(v, n.AtomOf(addr))
		if link == netgraph.NoLink {
			t.Fatalf("node %d stranded", v)
		}
		if g.Link(link).Src == 2 && g.Link(link).Dst == 1 {
			t.Fatal("failed link still used")
		}
		v = g.Link(link).Dst
	}
}

func TestInterSwitchLinks(t *testing.T) {
	g := topo.Ring(4)
	links := InterSwitchLinks(g)
	if len(links) != 4 { // one per bidirectional pair
		t.Fatalf("links=%d want 4", len(links))
	}
	g.DropLink(0)
	if got := InterSwitchLinks(g); len(got) != 4 {
		t.Fatalf("with drop link: %d", len(got))
	}
}

func TestAirtel1Trace(t *testing.T) {
	g, _ := topo.Build("airtel")
	ads := RandomAdvertisements(InterSwitchLinksSources(g), 3, 1)
	tr := Airtel1Trace(g, ads)
	if tr.Name != "airtel1" || len(tr.Ops) == 0 {
		t.Fatalf("trace %q ops=%d", tr.Name, len(tr.Ops))
	}
	replayAll(t, tr, false)
}

// InterSwitchLinksSources is a helper for tests: the distinct switches.
func InterSwitchLinksSources(g *netgraph.Graph) []netgraph.NodeID {
	return switchesOf(g)
}

func TestAirtel2TracePairCap(t *testing.T) {
	g, _ := topo.Build("airtel")
	ads := RandomAdvertisements(switchesOf(g)[:4], 2, 2)
	tr := Airtel2Trace(g, ads, 3)
	if len(tr.Ops) == 0 {
		t.Fatal("no ops")
	}
	replayAll(t, tr, false)
	// Uncapped generates more churn than capped.
	trAll := Airtel2Trace(g, RandomAdvertisements(switchesOf(g)[:4], 2, 2), 0)
	if len(trAll.Ops) <= len(tr.Ops) {
		t.Fatalf("uncapped %d <= capped %d", len(trAll.Ops), len(tr.Ops))
	}
}

func TestFourSwitchTraceInsertOnly(t *testing.T) {
	g, _ := topo.Build("4switch")
	tr := FourSwitchTrace(g, 5, 3, 9)
	if len(tr.Ops) == 0 {
		t.Fatal("no ops")
	}
	for _, op := range tr.Ops {
		if !op.Insert {
			t.Fatal("4switch must be insert-only")
		}
	}
	// Insert-only traces are loop-free at every step under the
	// controller's egress-outward install order.
	replayAll(t, tr, true)
}

func TestRandomAdvertisementsDeterministic(t *testing.T) {
	g := topo.Ring(4)
	a := RandomAdvertisements(switchesOf(g), 10, 5)
	b := RandomAdvertisements(switchesOf(g), 10, 5)
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("len %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differs")
		}
	}
}

// replayAll replays a trace. With stepLoopFree, every intermediate state
// must be loop-free (holds for pure-announcement traces thanks to the
// controller's egress-outward install order); failure-churn traces may
// contain transient cross-prefix loops — the anomalies real-time checkers
// exist to flag — so for those only the converged final state is asserted
// loop-free.
func replayAll(t *testing.T, tr *trace.Trace, stepLoopFree bool) {
	t.Helper()
	n := core.NewNetwork(tr.Graph, core.Options{})
	var d core.Delta
	for i, op := range tr.Ops {
		if err := trace.Apply(n, op, &d); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if stepLoopFree {
			if loops := check.FindLoopsDelta(n, &d); len(loops) != 0 {
				t.Fatalf("op %d introduced a forwarding loop: %+v", i, loops[0])
			}
		}
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if loops := check.FindLoopsAll(n); len(loops) != 0 {
		t.Fatalf("final data plane has %d loop(s)", len(loops))
	}
}
