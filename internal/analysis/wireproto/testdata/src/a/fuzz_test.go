package a

// fuzzer stands in for *testing.F; wireproto only scans the string
// literals inside Fuzz* functions, it never runs them.
type fuzzer interface {
	Add(args ...any)
}

// FuzzDispatch seeds cover "get" here and "put" via the corpus file
// under testdata/fuzz/FuzzDispatch; "del" is covered by neither.
func FuzzDispatch(f fuzzer) {
	for _, seed := range []string{
		"get a\nget b\n",
	} {
		f.Add([]byte(seed))
	}
}
