// Package check implements the network-wide property checkers that run on
// Delta-net's edge-labelled graph: forwarding-loop detection per rule
// update (§4.3.1), single-source reachability, all-pairs reachability via
// Algorithm 3 (§3.3), black-hole detection, and isolation/waypoint queries
// in the style of the paper's design goal 3.
//
// All checkers operate purely through the engine's read API (Label,
// ForwardLink, Graph), so they apply equally to a full network or to the
// restriction induced by a delta-graph.
package check

import (
	"deltanet/internal/bitset"
	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
	"deltanet/internal/netgraph"
)

// Loop describes one forwarding loop: a packet in Atom injected at the
// head of the first link revisits a node. Nodes lists the cycle in
// traversal order, starting and ending at the repeated node.
type Loop struct {
	Atom  intervalmap.AtomID
	Nodes []netgraph.NodeID
}

// FindLoopsDelta checks whether a rule update introduced forwarding loops,
// the per-update invariant of §4.3.1. Only label additions can create a
// loop (removals only break paths), so the check walks forward from each
// added (link, atom) pair. Forwarding is deterministic per atom — each
// node has at most one owning rule per atom — so each walk is linear in
// path length, as in the paper's iterative depth-first traversal.
//
// The returned loops are deduplicated per atom.
func FindLoopsDelta(n *core.Network, d *core.Delta) []Loop {
	if d == nil || len(d.Added) == 0 {
		return nil
	}
	var loops []Loop
	seen := map[intervalmap.AtomID]bool{}
	for _, la := range d.Added {
		if seen[la.Atom] {
			continue
		}
		l := n.Graph().Link(la.Link)
		if loop, ok := traceLoop(n, l.Src, la.Atom); ok {
			loops = append(loops, loop)
			seen[la.Atom] = true
		}
	}
	return loops
}

// traceLoop follows atom's forwarding function from node start. Because
// each (node, atom) has at most one out-edge, the walk either terminates
// (delivery, drop, or rule miss) or revisits a node, which is a loop.
func traceLoop(n *core.Network, start netgraph.NodeID, atom intervalmap.AtomID) (Loop, bool) {
	g := n.Graph()
	visited := map[netgraph.NodeID]int{}
	var path []netgraph.NodeID
	v := start
	for {
		if at, ok := visited[v]; ok {
			return Loop{Atom: atom, Nodes: append(append([]netgraph.NodeID(nil), path[at:]...), v)}, true
		}
		visited[v] = len(path)
		path = append(path, v)
		next := n.ForwardLink(v, atom)
		if next == netgraph.NoLink || g.IsDropLink(next) {
			return Loop{}, false
		}
		v = g.Link(next).Dst
	}
}

// FindLoopsAll scans the entire data plane for forwarding loops across all
// atoms. It is the non-incremental check used to validate the incremental
// one and to audit consistent snapshots. Per atom the forwarding function
// is a functional graph (at most one out-edge per node), so one memoized
// pass over the nodes classifies every node as terminating or looping; the
// total cost is O(atoms × nodes). At most one loop is reported per atom
// per distinct cycle entry.
func FindLoopsAll(n *core.Network) []Loop {
	return findLoops(n, nil)
}

// FindLoopsAtoms is FindLoopsAll restricted to a candidate atom set: it
// returns every forwarding loop whose atom is in atoms, walking nothing
// else. It is the engine of the monitor's batch-aware LoopFree clearing:
// from a violated state, a loop can only persist on a previously looping
// atom or newly arise on an atom the delta added labels for (§4.3.1
// lifted to atom granularity), so re-walking that candidate set is a
// complete re-check while scanning a fraction of the atom space.
func FindLoopsAtoms(n *core.Network, atoms *bitset.Set) []Loop {
	if atoms == nil {
		return findLoops(n, nil)
	}
	return findLoops(n, atoms.Contains)
}

// findLoops runs the memoized per-atom functional-graph loop scan over
// every atom for which include returns true (nil = all atoms).
func findLoops(n *core.Network, include func(int) bool) []Loop {
	g := n.Graph()
	var loops []Loop
	const (
		unknown uint8 = iota
		safe
		looping
	)
	verdict := make([]uint8, g.NumNodes())
	var starts []netgraph.NodeID
	for atom := 0; atom < n.MaxAtomID(); atom++ {
		if include != nil && !include(atom) {
			continue
		}
		a := intervalmap.AtomID(atom)
		// Start points: sources of links carrying the atom.
		starts = starts[:0]
		for _, l := range g.Links() {
			if n.Label(l.ID).Contains(atom) {
				starts = append(starts, l.Src)
			}
		}
		if len(starts) == 0 {
			continue
		}
		for i := range verdict {
			verdict[i] = unknown
		}
		for _, start := range starts {
			if verdict[start] != unknown {
				continue
			}
			pos := map[netgraph.NodeID]int{}
			var path []netgraph.NodeID
			v := start
			result := safe
			for {
				if verdict[v] != unknown {
					result = verdict[v]
					break
				}
				if p, ok := pos[v]; ok {
					// Cycle: path[p:] revisits v.
					cycle := append(append([]netgraph.NodeID(nil), path[p:]...), v)
					loops = append(loops, Loop{Atom: a, Nodes: cycle})
					result = looping
					break
				}
				pos[v] = len(path)
				path = append(path, v)
				next := n.ForwardLink(v, a)
				if next == netgraph.NoLink || g.IsDropLink(next) {
					result = safe
					break
				}
				v = g.Link(next).Dst
			}
			for _, u := range path {
				verdict[u] = result
			}
		}
	}
	return loops
}
