// Command dnbench regenerates every table and figure of the paper's
// evaluation (§4) at laptop scale and prints paper-style rows.
//
// Usage:
//
//	dnbench [-scale f] [-queries n] [-batch n] [-conns n] [-addr host:port]
//	        table2|table3|figure8|table4|table5|appendixC|scaling|batch|ingest|all
//
// Scale 1.0 is the laptop default (see internal/datasets); pass a larger
// scale to approach the paper's sizes given enough time and memory. The
// batch experiment replays every dataset through the atomic batch update
// pipeline at batch size 1 and at -batch n, reporting the throughput win
// of merging per-atom work and checking once per batch, plus the
// per-flush update+check latency percentiles (p50/p99) for both arms —
// the tail latency batching trades against.
//
// The ingest experiment measures the server's front ends on the same
// BGP flap-churn workload: the line protocol in its verdict-per-update
// mode (one round trip per update, the synchronous check-before-commit
// loop) and in pipelined B batches, versus the binary batch protocol
// over -conns connections feeding the ingest ring. With -addr it
// instead replays the binary arm against an already-running dnserve
// (the CI ingest smoke test's entry point) and prints the sustained
// rate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"deltanet/internal/datasets"
	"deltanet/internal/experiments"
	"deltanet/internal/stats"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = laptop default)")
	queries := flag.Int("queries", 0, "max what-if queries per dataset for table4 (0 = all links)")
	batchSize := flag.Int("batch", 256, "batch size for the batch and ingest experiments")
	conns := flag.Int("conns", 4, "binary-protocol connections for the ingest experiment")
	addr := flag.String("addr", "", "run the ingest experiment's binary arm against this dnserve instead of in-process")
	flag.Parse()
	if *batchSize < 1 {
		fmt.Fprintf(os.Stderr, "-batch must be >= 1, got %d\n", *batchSize)
		os.Exit(2)
	}
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	run := func(name string, fn func() error) {
		if which != "all" && which != name {
			return
		}
		fmt.Printf("==== %s (scale %g) ====\n", name, *scale)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table2", func() error { return table2(*scale) })
	run("table3", func() error { return table3(*scale) })
	run("figure8", func() error { return figure8(*scale) })
	run("table4", func() error { return table4(*scale, *queries) })
	run("table5", func() error { return table5(*scale) })
	run("appendixC", func() error { return appendixC(*scale) })
	run("scaling", func() error { return scaling(*scale) })
	run("batch", func() error { return batch(*scale, *batchSize) })
	run("ingest", func() error { return ingest(*scale, *batchSize, *conns, *addr) })

	switch which {
	case "all", "table2", "table3", "figure8", "table4", "table5", "appendixC", "scaling", "batch", "ingest":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", which)
		os.Exit(2)
	}
}

func table2(scale float64) error {
	rows, err := experiments.RunTable2(scale)
	if err != nil {
		return err
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Dataset, strconv.Itoa(r.Nodes),
			strconv.Itoa(r.MaxLinks), strconv.Itoa(r.Operations)})
	}
	fmt.Print(experiments.FormatTable([]string{"Data set", "Nodes", "Max Links", "Operations"}, cells))
	return nil
}

func table3(scale float64) error {
	var cells [][]string
	for _, name := range datasets.Names() {
		row, err := experiments.RunTable3(name, scale)
		if err != nil {
			return err
		}
		cells = append(cells, []string{
			row.Dataset,
			strconv.Itoa(row.TotalAtoms),
			stats.FormatMicros(row.Median),
			stats.FormatMicros(row.Average),
			fmt.Sprintf("%.1f%%", row.PctBelow250),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"Data set", "Atoms", "Median", "Average", "< 250µs"}, cells))
	return nil
}

func figure8(scale float64) error {
	series, err := experiments.RunFigure8(scale)
	if err != nil {
		return err
	}
	for _, s := range series {
		fmt.Printf("# dataset: %s\n%s\n", s.Dataset, stats.FormatCDF(s.Points))
	}
	return nil
}

func table4(scale float64, queries int) error {
	var cells [][]string
	for _, name := range datasets.Names() {
		row, err := experiments.RunTable4(name, scale, queries)
		if err != nil {
			return err
		}
		cells = append(cells, []string{
			row.Dataset,
			strconv.Itoa(row.Rules),
			strconv.Itoa(row.Queries),
			fmt.Sprintf("%.2fms", ms(row.VeriflowAvg)),
			fmt.Sprintf("%.3fms", ms(row.DeltanetAvg)),
			fmt.Sprintf("%.3fms", ms(row.DeltanetLoops)),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"Data plane", "Rules", "Queries", "Veriflow-RI", "Delta-net", "+Loops"}, cells))
	return nil
}

func table5(scale float64) error {
	var cells [][]string
	for _, name := range datasets.Names() {
		row, err := experiments.RunTable5(name, scale)
		if err != nil {
			return err
		}
		cells = append(cells, []string{
			row.Dataset,
			fmt.Sprintf("%.2fMB", float64(row.VeriflowBytes)/1e6),
			fmt.Sprintf("%.2fMB", float64(row.DeltanetBytes)/1e6),
			fmt.Sprintf("%.1fx", row.Ratio),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"Data set", "Veriflow-RI", "Delta-net", "Ratio"}, cells))
	return nil
}

func appendixC(scale float64) error {
	res, err := experiments.RunAppendixC("rf1755", scale)
	if err != nil {
		return err
	}
	fmt.Printf("rf1755: max ECs affected by a single rule insertion (Veriflow-RI): %d\n", res.MaxECs)
	return nil
}

func scaling(scale float64) error {
	pts, err := experiments.RunScaling([]float64{scale * 0.25, scale * 0.5, scale, scale * 2})
	if err != nil {
		return err
	}
	var cells [][]string
	for _, p := range pts {
		cells = append(cells, []string{
			strconv.Itoa(p.Ops),
			strconv.Itoa(p.Atoms),
			p.TotalTime.Round(time.Millisecond).String(),
			stats.FormatMicros(p.PerOp),
		})
	}
	fmt.Print(experiments.FormatTable([]string{"Ops", "Atoms", "Total", "Per-op"}, cells))
	return nil
}

func batch(scale float64, size int) error {
	var cells [][]string
	for _, name := range datasets.Names() {
		seq, err := experiments.RunBatch(name, scale, 1)
		if err != nil {
			return err
		}
		bat, err := experiments.RunBatch(name, scale, size)
		if err != nil {
			return err
		}
		speedup := 0.0
		if seq.Throughput > 0 {
			speedup = bat.Throughput / seq.Throughput
		}
		cells = append(cells, []string{
			name,
			strconv.Itoa(seq.Ops),
			fmt.Sprintf("%.0f", seq.Throughput),
			fmt.Sprintf("%.0f", bat.Throughput),
			fmt.Sprintf("%.2fx", speedup),
			stats.FormatMicros(seq.P50),
			stats.FormatMicros(seq.P99),
			stats.FormatMicros(bat.P50),
			stats.FormatMicros(bat.P99),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"Data set", "Ops", "batch-1 ops/s", fmt.Sprintf("batch-%d ops/s", size), "Speedup",
			"b1 p50", "b1 p99", fmt.Sprintf("b%d p50", size), fmt.Sprintf("b%d p99", size)}, cells))
	return nil
}

func ingest(scale float64, batch, conns int, addr string) error {
	updates := int(65536 * scale)
	if updates < 8192 {
		updates = 8192
	}
	if addr != "" {
		res, err := experiments.RunIngestRemote(addr, updates, batch, conns, 1)
		if err != nil {
			return err
		}
		fmt.Printf("binary ingest against %s: %d updates over %d conns (batch %d): %.0f updates/s, busy=%d, applied=%d\n",
			addr, res.Updates, conns, batch, res.Rate, res.Busy, res.Applied)
		return nil
	}
	row, err := experiments.RunIngest(updates, batch, conns, 1)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTable(
		[]string{"Updates", "Batch", "Conns", "line/sync ups/s", "line/batch ups/s", "binary ups/s",
			"vs sync", "vs batch", "Busy"},
		[][]string{{
			strconv.Itoa(row.Updates), strconv.Itoa(row.Batch), strconv.Itoa(row.Conns),
			fmt.Sprintf("%.0f", row.LineSyncRate), fmt.Sprintf("%.0f", row.LineBatchRate),
			fmt.Sprintf("%.0f", row.BinRate),
			fmt.Sprintf("%.2fx", row.RatioSync), fmt.Sprintf("%.2fx", row.RatioBatch),
			strconv.FormatUint(row.Busy, 10),
		}}))
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
