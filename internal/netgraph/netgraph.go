// Package netgraph models the directed graph that a network topology
// induces (paper §3.2): nodes are switches (or, for composite match
// conditions such as input ports, per-port expansions of a switch, §4.1),
// and links are the directed edges along which rules forward packets.
//
// Delta-net's edge-labelled graph assigns atom sets to these links; the
// graph itself is a plain adjacency structure shared by the Delta-net
// engine, the Veriflow-RI baseline, the dataset generators and the SDN-IP
// simulator.
package netgraph

import (
	"fmt"
	"sync"
)

// NodeID identifies a node in the graph. Ids are dense and start at 0.
type NodeID int32

// LinkID identifies a directed link. Ids are dense and start at 0.
type LinkID int32

// None is the absent node/link sentinel.
const (
	NoNode NodeID = -1
	NoLink LinkID = -1
)

// Link is one directed edge from Src to Dst.
type Link struct {
	ID  LinkID
	Src NodeID
	Dst NodeID
}

// Graph is a growable directed multigraph. The zero value is an empty graph
// ready to use. Not safe for concurrent mutation, with one carve-out: the
// name table has its own lock, so NodeName and NodeByName may race an
// AddNode (the server's watch streamers render node names while another
// connection grows the topology).
type Graph struct {
	// nameMu guards names and byName only.
	//
	//deltanet:lockrank 10
	nameMu    sync.RWMutex
	names     []string
	byName    map[string]NodeID
	links     []Link
	out       [][]LinkID // outgoing links per node
	in        [][]LinkID // incoming links per node
	linkIndex map[[2]NodeID]LinkID

	dropNode  NodeID            // lazily created global sink for drop rules
	dropLinks map[NodeID]LinkID // per-source drop links
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		byName:    map[string]NodeID{},
		linkIndex: map[[2]NodeID]LinkID{},
		dropNode:  NoNode,
		dropLinks: map[NodeID]LinkID{},
	}
}

// AddNode creates a node with the given name and returns its id. If a node
// with the name already exists, its existing id is returned.
func (g *Graph) AddNode(name string) NodeID {
	g.nameMu.Lock()
	if id, ok := g.byName[name]; ok {
		g.nameMu.Unlock()
		return id
	}
	id := NodeID(len(g.names))
	g.names = append(g.names, name)
	g.byName[name] = id
	g.nameMu.Unlock()
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// NodeByName returns the id of the named node, or NoNode. Safe to call
// concurrently with AddNode.
func (g *Graph) NodeByName(name string) NodeID {
	g.nameMu.RLock()
	defer g.nameMu.RUnlock()
	if id, ok := g.byName[name]; ok {
		return id
	}
	return NoNode
}

// NodeName returns the node's name. Safe to call concurrently with
// AddNode.
func (g *Graph) NodeName(id NodeID) string {
	g.nameMu.RLock()
	defer g.nameMu.RUnlock()
	if int(id) < 0 || int(id) >= len(g.names) {
		return fmt.Sprintf("node#%d", id)
	}
	return g.names[id]
}

// NumNodes returns the number of nodes (including the drop sink once
// created).
func (g *Graph) NumNodes() int {
	g.nameMu.RLock()
	defer g.nameMu.RUnlock()
	return len(g.names)
}

// NumLinks returns the number of directed links (including drop links once
// created).
func (g *Graph) NumLinks() int { return len(g.links) }

// AddLink creates a directed link from src to dst and returns its id. If a
// link between the pair already exists it is reused (the data plane only
// needs one edge per ordered pair; rules forwarding the same way share it).
func (g *Graph) AddLink(src, dst NodeID) LinkID {
	key := [2]NodeID{src, dst}
	if id, ok := g.linkIndex[key]; ok {
		return id
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, Src: src, Dst: dst})
	g.out[src] = append(g.out[src], id)
	g.in[dst] = append(g.in[dst], id)
	g.linkIndex[key] = id
	return id
}

// FindLink returns the link from src to dst if one exists.
func (g *Graph) FindLink(src, dst NodeID) LinkID {
	if id, ok := g.linkIndex[[2]NodeID{src, dst}]; ok {
		return id
	}
	return NoLink
}

// Link returns the link record for id.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// Out returns the outgoing link ids of a node. The slice is owned by the
// graph; callers must not mutate it.
func (g *Graph) Out(n NodeID) []LinkID { return g.out[n] }

// In returns the incoming link ids of a node. The slice is owned by the
// graph; callers must not mutate it.
func (g *Graph) In(n NodeID) []LinkID { return g.in[n] }

// Links returns all links. The slice is owned by the graph.
func (g *Graph) Links() []Link { return g.links }

// DropLink returns the link from src into the global drop sink, creating
// the sink and the link on first use. Drop rules (e.g. the paper's rH in
// Table 1) forward along this link; the sink has no outgoing edges, so
// dropped traffic can never participate in a forwarding loop.
func (g *Graph) DropLink(src NodeID) LinkID {
	if id, ok := g.dropLinks[src]; ok {
		return id
	}
	if g.dropNode == NoNode {
		g.dropNode = g.AddNode("__drop__")
	}
	id := g.AddLink(src, g.dropNode)
	g.dropLinks[src] = id
	return id
}

// DropNode returns the global sink node id, or NoNode if no drop rule has
// been installed yet.
func (g *Graph) DropNode() NodeID { return g.dropNode }

// SetDropNode marks an existing node as the global drop sink and
// re-derives the per-source drop-link table from the current links. It
// is the restore path for graphs rebuilt from a serialized dump, where
// the sink and its links come back as plain node/link rows and the drop
// bookkeeping must be reattached for IsDropLink and the black-hole
// checks to keep treating them specially.
func (g *Graph) SetDropNode(id NodeID) {
	g.dropNode = id
	for _, l := range g.links {
		if l.Dst == id {
			g.dropLinks[l.Src] = l.ID
		}
	}
}

// IsDropLink reports whether the link leads into the drop sink.
func (g *Graph) IsDropLink(id LinkID) bool {
	return g.dropNode != NoNode && g.links[id].Dst == g.dropNode
}

// PortNode returns the id of the composite node "switch@port", creating it
// on demand. This implements §4.1's encoding of non-wildcard extra match
// fields: a switch with rules matching three input ports becomes three
// separate nodes in the edge-labelled graph.
func (g *Graph) PortNode(sw string, port int) NodeID {
	return g.AddNode(fmt.Sprintf("%s@%d", sw, port))
}

// Clone returns an independent copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	g.nameMu.RLock()
	c.names = append([]string(nil), g.names...)
	for name, id := range g.byName {
		c.byName[name] = id
	}
	g.nameMu.RUnlock()
	c.links = append([]Link(nil), g.links...)
	c.out = make([][]LinkID, len(g.out))
	for i := range g.out {
		c.out[i] = append([]LinkID(nil), g.out[i]...)
	}
	c.in = make([][]LinkID, len(g.in))
	for i := range g.in {
		c.in[i] = append([]LinkID(nil), g.in[i]...)
	}
	for k, v := range g.linkIndex {
		c.linkIndex[k] = v
	}
	c.dropNode = g.dropNode
	for k, v := range g.dropLinks {
		c.dropLinks[k] = v
	}
	return c
}
