package server

import (
	"io"
	"net"
	"testing"
	"time"
)

// FuzzDispatch drives a full protocol session — including the multi-line
// B command, the W invariant grammar, and watch streaming — with
// arbitrary bytes over an in-memory connection. The server must neither
// crash nor hang, whatever the client sends.
func FuzzDispatch(f *testing.F) {
	for _, seed := range []string{
		"node a\nlink 0 1\nI 1 0 0 0 100 1\nreach 0 1\nstats\n",
		"I 1 0 0 0 100 1\nR 1\nwhatif 0\n",
		"B 2\nI 1 0 0 0 100 1\nI 2 1 1 0 100 1\n",
		"B 1\nbogus\n",
		"B x\n",
		"B 99999999\n",
		"W reach 0 1\nW waypoint 0 1 2\nW loopfree\nwatch\nI 1 0 0 0 50 1\n",
		"W isolated 0,1 2\nunwatch 0\nunwatch 0\n",
		"watch\nwatch\nquit\n",
		"burst 2 0\nW reach 0 1\nI 1 0 0 0 100 1\nstats\nflush\nburst 0 0\n",
		"burst 3 1\nI 1 0 0 0 100 1\nflush\n",
		"burst\nburst 1\nburst x 0\nburst 0 x\nburst -1 -1\nflush extra\n",
		"W reach 0 2\nI 1 0 0 0 100 1\nevents since 0\nevents since 1\nwatch since 0\nR 1\n",
		"events\nevents since\nevents since x\nevents since -1\nevents since 18446744073709551615\n",
		"watch since\nwatch since x\nwatch since 5 extra\nwatch since 2\nwatch\n",
		"W blackholefree sinks=0,1\nW blackholefree sinks=1,0\nunwatch 0\n",
		"W reach 0 1\nunwatch 0\nunwatch 0\nquit\n",
		"trace on\nI 1 0 0 0 100 1\ntrace last 5\ntrace off\ntrace last 1\n",
		"trace\ntrace bogus\ntrace last\ntrace last x\ntrace last -1\ntrace on extra\n",
		"checkpoint\nI 1 0 0 0 100 1\ncheckpoint extra\n",
		"journal since 0\njournal\njournal since\njournal since x\njournal since 18446744073709551615\n",
		"dnbin 1\n",
		"dnbin\ndnbin 2\ndnbin 1 extra\nstats\n",
		"busy\nbusy depth=3\n",
		"\n\n  \n",
		"node\nlink\nI\nR\nreach\nwhatif\nstats extra\nW\nunwatch\n",
		"quit\nI 1 0 0 0 100 1\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return // keep iterations fast; huge inputs add no new paths
		}
		s := New()
		// Pre-provision a small topology so numeric ids in fuzz inputs can
		// resolve and exercise deeper paths.
		a := s.Graph().AddNode("a")
		b := s.Graph().AddNode("b")
		c := s.Graph().AddNode("c")
		s.Graph().AddLink(a, b)
		s.Graph().AddLink(b, c)
		s.Graph().AddLink(c, a)

		client, srv := net.Pipe()
		client.SetDeadline(time.Now().Add(5 * time.Second))
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.handle(srv)
		}()
		go io.Copy(io.Discard, client) // drain responses and events

		client.Write(data)
		client.Write([]byte("\nquit\n"))
		client.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("server session hung")
		}
		// A fuzzed burst command with an age can start the background
		// flusher; Close reaps it so iterations don't leak goroutines.
		s.Close()
	})
}
