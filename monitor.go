package deltanet

import "deltanet/internal/monitor"

// This file exposes the incremental invariant monitor: standing queries
// that are re-checked per delta rather than recomputed from scratch.
// Register invariants on Checker.Monitor(); every subsequent InsertRule,
// RemoveRule or ApplyBatch marks the invariants whose dependency sets
// intersect the update's changed labels as dirty, re-evaluates only
// those, and reports Violation/Cleared transitions in Report.Events and
// to subscribers.

type (
	// Monitor maintains standing invariants over the checker's network.
	Monitor = monitor.Monitor
	// Invariant is a standing property the monitor keeps checked; build
	// one with the Watch* constructors.
	Invariant = monitor.Spec
	// InvariantID identifies a registered invariant.
	InvariantID = monitor.ID
	// InvariantStatus is a cached verdict: InvariantHolds or
	// InvariantViolated.
	InvariantStatus = monitor.Status
	// MonitorEvent is one verdict transition (violation or clearing).
	MonitorEvent = monitor.Event
	// MonitorStats summarizes the monitor's incremental work.
	MonitorStats = monitor.Stats
	// MonitorSubscription delivers events to one consumer; see
	// Monitor.Subscribe.
	MonitorSubscription = monitor.Subscription
	// BurstConfig configures the monitor's coalescing burst mode; install
	// it with WithBurst (or Monitor.SetBurst at runtime) and flush
	// explicitly with Monitor.Flush.
	BurstConfig = monitor.BurstConfig
)

// Re-exported verdict and transition constants.
const (
	InvariantHolds    = monitor.Holds
	InvariantViolated = monitor.Violated
	MonitorViolation  = monitor.Violation
	MonitorCleared    = monitor.Cleared
)

// WatchReachable asserts that at least one packet can flow from one
// switch to another.
func WatchReachable(from, to SwitchID) Invariant {
	return monitor.Reachable{From: from, To: to}
}

// WatchWaypoint asserts that every packet flowing between two switches
// traverses the waypoint.
func WatchWaypoint(from, to, via SwitchID) Invariant {
	return monitor.Waypoint{From: from, To: to, Via: via}
}

// WatchIsolated asserts that no packet can flow from any switch in
// groupA to any switch in groupB.
func WatchIsolated(groupA, groupB []SwitchID) Invariant {
	return monitor.Isolated{GroupA: groupA, GroupB: groupB}
}

// WatchLoopFree asserts that the data plane contains no forwarding
// loops.
func WatchLoopFree() Invariant { return monitor.LoopFree{} }

// WatchBlackHoleFree asserts that no switch silently discards traffic it
// receives; sinks lists switches that legitimately terminate flows.
func WatchBlackHoleFree(sinks map[SwitchID]bool) Invariant {
	return monitor.BlackHoleFree{Sinks: sinks}
}

// FormatInvariant returns an invariant's canonical serialized form —
// the server wire grammar, extended with WatchBlackHoleFree's sink set
// — which ParseInvariant inverts. Use it to persist standing
// invariants; Checker.SnapshotInvariants serializes every registered
// one.
func FormatInvariant(inv Invariant) string { return monitor.FormatSpec(inv) }

// ParseInvariant parses the serialized invariant form produced by
// FormatInvariant (e.g. "reach 0 2", "waypoint 0 3 1",
// "isolated 0,1 4,5", "loopfree", "blackholefree sinks=2,5"). Switch
// ids are not validated against any topology; registering the result
// with a checker whose topology lacks them yields a trivially evaluated
// invariant, so validate ids first when parsing untrusted input.
func ParseInvariant(s string) (Invariant, error) { return monitor.ParseSpec(s) }

// SnapshotInvariants returns the serialized form of every registered
// standing invariant, in registration order — the monitor half of a
// durable snapshot, pairing with Snapshot's rules. It returns nil when
// no monitor was ever created.
func (c *Checker) SnapshotInvariants() []string {
	if c.monitor == nil {
		return nil
	}
	return c.monitor.SnapshotSpecs()
}

// RestoreInvariants parses and registers each serialized invariant
// (the SnapshotInvariants format), evaluating every one against the
// current data plane. Restoring after Restore(rules) therefore yields
// verdicts identical to a fresh full evaluation of the restored state.
// On a parse error, registration stops and the error is returned;
// already-registered invariants stay registered.
func (c *Checker) RestoreInvariants(specs []string) error {
	return c.Monitor().RestoreSpecs(specs)
}

// Monitor returns the checker's standing-invariant monitor, creating it
// on first use (with the checker's BatchWorkers as its evaluation
// fan-out, and any WithBurst configuration installed). Once any invariant
// is registered, every update's Report (and BatchReport) carries the
// verdict transitions it caused in Events — except while a burst is
// pending, when transitions surface at the flush instead.
func (c *Checker) Monitor() *Monitor {
	if c.monitor == nil {
		c.monitor = monitor.New(c.net, c.BatchWorkers)
		c.monitor.SetBurst(c.burst)
	}
	return c.monitor
}
