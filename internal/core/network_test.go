package core

import (
	"math/rand"
	"testing"

	"deltanet/internal/intervalmap"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

func iv(lo, hi uint64) ipnet.Interval { return ipnet.Interval{Lo: lo, Hi: hi} }

// TestPaperTable1 exercises the forwarding table of Table 1 (§3): a
// high-priority drop rule rH = 0.0.0.10/31 and a low-priority forward rule
// rL = 0.0.0.0/28 on one switch.
func TestPaperTable1(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	next := g.AddNode("next")
	fwd := g.AddLink(s, next)
	n := NewNetwork(g, Options{})

	dH, err := n.InsertRule(Rule{ID: 1, Source: s, Link: netgraph.NoLink,
		Match: ipnet.MustParsePrefix("0.0.0.10/31").Interval(), Priority: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(dH.Added) != 1 {
		t.Fatalf("rH delta: %+v", dH)
	}
	if _, err = n.InsertRule(Rule{ID: 2, Source: s, Link: fwd,
		Match: ipnet.MustParsePrefix("0.0.0.0/28").Interval(), Priority: 1}); err != nil {
		t.Fatal(err)
	}

	// Figure 5: rL's interval is three atoms α0=[0:10), α1=[10:12),
	// α2=[12:16); rH's is the single atom α1.
	if got := len(n.AtomsOverlapping(iv(0, 16))); got != 3 {
		t.Fatalf("rL atoms = %d, want 3", got)
	}
	if got := len(n.AtomsOverlapping(iv(10, 12))); got != 1 {
		t.Fatalf("rH atoms = %d, want 1", got)
	}

	// Packets in [10:12) are dropped (owned by rH); the rest of [0:16)
	// flows on fwd. This is ⟦interval(rL)⟧ − ⟦interval(rH)⟧.
	for addr := uint64(0); addr < 20; addr++ {
		atom := n.AtomOf(addr)
		link := n.ForwardLink(s, atom)
		switch {
		case addr >= 10 && addr < 12:
			if !g.IsDropLink(link) {
				t.Fatalf("addr %d should be dropped, got link %d", addr, link)
			}
		case addr < 16:
			if link != fwd {
				t.Fatalf("addr %d should forward, got link %d", addr, link)
			}
		default:
			if link != netgraph.NoLink {
				t.Fatalf("addr %d should miss, got link %d", addr, link)
			}
		}
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

// TestPaperFigure2 replays §2.1's running example: rules r1, r2, r3 with
// fully overlapping prefixes on switches s1, s2, s3, then a higher-priority
// r4 inserted at s1. The insertion must move the shared atoms from the
// s1→s2 edge to the new s1→s4 edge, leaving exactly one atom on s1→s2.
func TestPaperFigure2(t *testing.T) {
	g := netgraph.New()
	s1, s2, s3, s4 := g.AddNode("s1"), g.AddNode("s2"), g.AddNode("s3"), g.AddNode("s4")
	l12 := g.AddLink(s1, s2)
	l23 := g.AddLink(s2, s3)
	l34 := g.AddLink(s3, s4)
	l14 := g.AddLink(s1, s4)
	n := NewNetwork(g, Options{})

	// Overlapping intervals in the style of Figure 2's parallel lines:
	// r1 spans the widest range, r2 and r3 are nested within.
	must := func(r Rule) *Delta {
		d, err := n.InsertRule(r)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	must(Rule{ID: 1, Source: s1, Link: l12, Match: iv(0, 100), Priority: 1})
	must(Rule{ID: 2, Source: s2, Link: l23, Match: iv(20, 80), Priority: 1})
	must(Rule{ID: 3, Source: s3, Link: l34, Match: iv(40, 60), Priority: 1})

	atomsBefore := n.NumAtoms()
	labelBefore := n.Label(l12).Len()

	// r4 at s1, higher priority than r1, overlapping all three rules.
	d4 := must(Rule{ID: 4, Source: s1, Link: l14, Match: iv(20, 80), Priority: 9})

	// Inserting r4 creates no new boundary keys beyond 20 and 80, which
	// already exist — so no new atoms.
	if n.NumAtoms() != atomsBefore {
		t.Fatalf("atoms %d -> %d, expected unchanged", atomsBefore, n.NumAtoms())
	}
	// All atoms of [20:80) moved from l12 to l14.
	movedAtoms := len(n.AtomsOverlapping(iv(20, 80)))
	if len(d4.Added) != movedAtoms || len(d4.Removed) != movedAtoms {
		t.Fatalf("delta added=%d removed=%d want %d each", len(d4.Added), len(d4.Removed), movedAtoms)
	}
	for _, la := range d4.Added {
		if la.Link != l14 {
			t.Fatalf("added on wrong link: %+v", la)
		}
	}
	for _, la := range d4.Removed {
		if la.Link != l12 {
			t.Fatalf("removed from wrong link: %+v", la)
		}
	}
	if got := n.Label(l12).Len(); got != labelBefore-movedAtoms {
		t.Fatalf("l12 label %d want %d", got, labelBefore-movedAtoms)
	}
	if got := n.Label(l14).Len(); got != movedAtoms {
		t.Fatalf("l14 label %d want %d", got, movedAtoms)
	}
	// s2→s3 and s3→s4 untouched, as Figure 4b promises (only the
	// modified switch's rules are inspected).
	if n.Label(l23).Len() == 0 || n.Label(l34).Len() == 0 {
		t.Fatal("unrelated labels disturbed")
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

// TestPaperRMSplitOwnership continues §3.2.1's worked example: inserting
// medium-priority rM = [8:12) between rL and rH splits atom α0 and the new
// atom's ownership must follow priority order.
func TestPaperRMSplitOwnership(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	lH, lM, lL := g.AddLink(s, a), g.AddLink(s, b), g.AddLink(s, c)
	n := NewNetwork(g, Options{})

	ins := func(id RuleID, link netgraph.LinkID, lo, hi uint64, prio Priority) *Delta {
		d, err := n.InsertRule(Rule{ID: id, Source: s, Link: link, Match: iv(lo, hi), Priority: prio})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	ins(1, lH, 10, 12, 30)      // rH
	ins(2, lL, 0, 16, 10)       // rL
	dM := ins(3, lM, 8, 12, 20) // rM

	if len(dM.NewAtoms) != 1 {
		t.Fatalf("rM should split exactly one atom: %+v", dM.NewAtoms)
	}
	// After rM: [0:8)→rL, [8:10)→rM, [10:12)→rH, [12:16)→rL.
	cases := []struct {
		addr uint64
		link netgraph.LinkID
	}{{0, lL}, {7, lL}, {8, lM}, {9, lM}, {10, lH}, {11, lH}, {12, lL}, {15, lL}}
	for _, cse := range cases {
		if got := n.ForwardLink(s, n.AtomOf(cse.addr)); got != cse.link {
			t.Fatalf("addr %d forwards on %d want %d", cse.addr, got, cse.link)
		}
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	_ = c
}

func TestInsertErrors(t *testing.T) {
	g := netgraph.New()
	s1, s2 := g.AddNode("s1"), g.AddNode("s2")
	l21 := g.AddLink(s2, s1)
	l12 := g.AddLink(s1, s2)
	n := NewNetwork(g, Options{})

	if _, err := n.InsertRule(Rule{ID: 1, Source: s1, Link: l12, Match: iv(5, 5), Priority: 1}); err == nil {
		t.Fatal("empty match accepted")
	}
	if _, err := n.InsertRule(Rule{ID: 1, Source: s1, Link: l12, Match: iv(0, 1<<33), Priority: 1}); err == nil {
		t.Fatal("out-of-space match accepted")
	}
	if _, err := n.InsertRule(Rule{ID: 1, Source: s1, Link: l21, Match: iv(0, 10), Priority: 1}); err == nil {
		t.Fatal("foreign link accepted")
	}
	if _, err := n.InsertRule(Rule{ID: 1, Source: s1, Link: l12, Match: iv(0, 10), Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.InsertRule(Rule{ID: 1, Source: s1, Link: l12, Match: iv(20, 30), Priority: 1}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := n.RemoveRule(99); err == nil {
		t.Fatal("unknown removal accepted")
	}
}

func TestInsertRemoveInverse(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	ds := []netgraph.LinkID{}
	for i := 0; i < 3; i++ {
		ds = append(ds, g.AddLink(s, g.AddNode(string(rune('a'+i)))))
	}
	n := NewNetwork(g, Options{})
	if _, err := n.InsertRule(Rule{ID: 1, Source: s, Link: ds[0], Match: iv(0, 1000), Priority: 1}); err != nil {
		t.Fatal(err)
	}
	snapshot := n.Label(ds[0]).Clone()

	// Insert then remove an overlapping higher-priority rule.
	if _, err := n.InsertRule(Rule{ID: 2, Source: s, Link: ds[1], Match: iv(100, 900), Priority: 5}); err != nil {
		t.Fatal(err)
	}
	dRem, err := n.RemoveRule(2)
	if err != nil {
		t.Fatal(err)
	}
	if dRem.Empty() {
		t.Fatal("removal of owning rule must produce a delta")
	}
	// Every atom the removal takes off ds[1] returns to ds[0].
	if !n.Label(ds[1]).Empty() {
		t.Fatalf("ds[1] label not empty: %v", n.Label(ds[1]))
	}
	if !n.Label(ds[0]).IsSubset(snapshot) == false && !snapshot.IsSubset(n.Label(ds[0])) {
		t.Fatal("ds[0] label does not cover original")
	}
	// The address-level behaviour is fully restored.
	for addr := uint64(0); addr < 1100; addr += 17 {
		link := n.ForwardLink(s, n.AtomOf(addr))
		want := netgraph.NoLink
		if addr < 1000 {
			want = ds[0]
		}
		if link != want {
			t.Fatalf("addr %d link %d want %d", addr, link, want)
		}
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestPriorityTieBreakByID(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	la := g.AddLink(s, g.AddNode("a"))
	lb := g.AddLink(s, g.AddNode("b"))
	n := NewNetwork(g, Options{})
	n.InsertRule(Rule{ID: 1, Source: s, Link: la, Match: iv(0, 10), Priority: 5})
	n.InsertRule(Rule{ID: 2, Source: s, Link: lb, Match: iv(0, 10), Priority: 5})
	// Equal priority: larger rule id wins deterministically.
	if got := n.ForwardLink(s, n.AtomOf(3)); got != lb {
		t.Fatalf("tie-break: got %d want %d", got, lb)
	}
	n.RemoveRule(2)
	if got := n.ForwardLink(s, n.AtomOf(3)); got != la {
		t.Fatalf("after removal: got %d want %d", got, la)
	}
}

func TestGCMergesAtoms(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	l := g.AddLink(s, g.AddNode("d"))
	n := NewNetwork(g, Options{GC: true})

	rng := rand.New(rand.NewSource(2))
	var ids []RuleID
	for i := 0; i < 200; i++ {
		lo := uint64(rng.Intn(10000))
		r := Rule{ID: RuleID(i), Source: s, Link: l, Match: iv(lo, lo+1+uint64(rng.Intn(10000))), Priority: Priority(rng.Intn(100))}
		if _, err := n.InsertRule(r); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID)
	}
	if n.NumAtoms() < 100 {
		t.Fatalf("expected many atoms, got %d", n.NumAtoms())
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids {
		if _, err := n.RemoveRule(id); err != nil {
			t.Fatal(err)
		}
		if msg := n.CheckInvariants(); msg != "" {
			t.Fatalf("after removing %d: %s", id, msg)
		}
	}
	if n.NumAtoms() != 1 {
		t.Fatalf("atoms after removing all rules: %d, want 1", n.NumAtoms())
	}
	if n.Merges() == 0 {
		t.Fatal("GC never merged")
	}
	if !n.Label(l).Empty() {
		t.Fatalf("label not empty: %v", n.Label(l))
	}
	// Ids were recycled: MaxAtomID stays bounded by peak, and reuse works.
	if _, err := n.InsertRule(Rule{ID: 999, Source: s, Link: l, Match: iv(5, 10), Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestDeltaMergeAndAffectedAtoms(t *testing.T) {
	d1 := &Delta{Rule: 1, Op: OpInsert,
		Added:   []LinkAtom{{Link: 1, Atom: 3}, {Link: 1, Atom: 4}},
		Removed: []LinkAtom{{Link: 0, Atom: 3}}}
	d2 := &Delta{Rule: 2, Op: OpInsert,
		Added:    []LinkAtom{{Link: 2, Atom: 5}},
		NewAtoms: []intervalmap.SplitPair{{Old: 1, New: 5}}}
	d1.Merge(d2)
	if len(d1.Added) != 3 || len(d1.Removed) != 1 || len(d1.NewAtoms) != 1 {
		t.Fatalf("merge result: %+v", d1)
	}
	atoms := d1.AffectedAtoms()
	if len(atoms) != 3 { // 3, 4, 5
		t.Fatalf("affected atoms %v", atoms)
	}
	if (&Delta{}).Empty() != true || d1.Empty() {
		t.Fatal("Empty wrong")
	}
	if OpInsert.String() != "insert" || OpRemove.String() != "remove" {
		t.Fatal("Op String")
	}
}

func TestInsertRuleIntoReuse(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	l := g.AddLink(s, g.AddNode("d"))
	n := NewNetwork(g, Options{})
	var d Delta
	for i := 0; i < 10; i++ {
		if err := n.InsertRuleInto(Rule{ID: RuleID(i), Source: s, Link: l,
			Match: iv(uint64(i*10), uint64(i*10+10)), Priority: 1}, &d); err != nil {
			t.Fatal(err)
		}
		if d.Rule != RuleID(i) || d.Op != OpInsert {
			t.Fatalf("delta header %+v", d)
		}
	}
	for i := 0; i < 10; i++ {
		if err := n.RemoveRuleInto(RuleID(i), &d); err != nil {
			t.Fatal(err)
		}
		if d.Op != OpRemove {
			t.Fatal("delta op")
		}
	}
	if n.NumRules() != 0 {
		t.Fatal("rules remain")
	}
}

func TestRulesIterationAndAccessors(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	l := g.AddLink(s, g.AddNode("d"))
	n := NewNetwork(g, Options{})
	n.InsertRule(Rule{ID: 7, Source: s, Link: l, Match: iv(0, 10), Priority: 1})
	if r, ok := n.Rule(7); !ok || r.ID != 7 {
		t.Fatal("Rule accessor")
	}
	if _, ok := n.Rule(8); ok {
		t.Fatal("phantom rule")
	}
	count := 0
	n.Rules(func(r *Rule) bool { count++; return true })
	if count != 1 {
		t.Fatal("Rules iteration")
	}
	if n.Graph() != g || n.Space() != ipnet.IPv4 {
		t.Fatal("accessors")
	}
	if r, ok := n.OwnerRule(s, n.AtomOf(5)); !ok || r.ID != 7 {
		t.Fatal("OwnerRule")
	}
	if _, ok := n.OwnerRule(s, n.AtomOf(50)); ok {
		t.Fatal("OwnerRule phantom")
	}
	if n.ForwardLink(s, 9999) != netgraph.NoLink {
		t.Fatal("ForwardLink out-of-range atom")
	}
	if n.Label(999).Len() != 0 {
		t.Fatal("Label of unknown link")
	}
	if n.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes")
	}
	if _, ok := n.AtomInterval(0); !ok {
		t.Fatal("AtomInterval")
	}
}
