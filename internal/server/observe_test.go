package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"deltanet/internal/metrics"
)

// scrape fetches path from the admin test server and returns the body.
func scrape(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// metricValue extracts an unlabelled sample's value from an exposition.
func metricValue(t *testing.T, exp, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exp, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("%s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// TestAdminEndpointMidChurn is the observability e2e: while protocol
// clients churn rules, concurrent /metrics scrapes must always parse as
// valid Prometheus exposition, and the monotonic counters must never go
// backwards between scrapes.
func TestAdminEndpointMidChurn(t *testing.T) {
	reg := metrics.NewRegistry()
	s, addr, cleanup := startServer(t, WithMetrics(reg))
	defer cleanup()
	ts := httptest.NewServer(s.AdminHandler(reg))
	defer ts.Close()

	c := dial(t, addr)
	defer c.close()
	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "link 0 1")
	c.roundTrip(t, "link 1 0")
	c.roundTrip(t, "W reach 0 1")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		churn := dial(t, addr)
		defer churn.close()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			churn.roundTrip(t, fmt.Sprintf("I %d 0 0 %d %d 1", i, i*10, i*10+5))
			if i%3 == 0 {
				churn.roundTrip(t, fmt.Sprintf("R %d", i))
			}
		}
	}()

	var lastUpdates, lastCmds float64
	for i := 0; i < 20; i++ {
		code, body := scrape(t, ts, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("scrape %d: status %d", i, code)
		}
		if err := metrics.ValidateExposition(strings.NewReader(body)); err != nil {
			t.Fatalf("scrape %d invalid: %v\n%s", i, err, body)
		}
		upd := metricValue(t, body, "dn_monitor_updates_total")
		if upd < lastUpdates {
			t.Fatalf("scrape %d: dn_monitor_updates_total went backwards: %g < %g", i, upd, lastUpdates)
		}
		lastUpdates = upd
		var cmds float64
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, "dnserve_commands_total{") {
				f := strings.Fields(line)
				v, _ := strconv.ParseFloat(f[len(f)-1], 64)
				cmds += v
			}
		}
		if cmds < lastCmds {
			t.Fatalf("scrape %d: command count went backwards: %g < %g", i, cmds, lastCmds)
		}
		lastCmds = cmds
	}
	close(stop)
	wg.Wait()

	_, body := scrape(t, ts, "/metrics")
	// The full pipeline must be visible: every stage series, pre-created.
	for _, stage := range []string{stageParse, stageLock, stageApply, stageDirty, stageEval, stagePublish} {
		want := fmt.Sprintf("dnserve_update_stage_seconds_bucket{stage=%q", stage)
		if !strings.Contains(body, want) {
			t.Errorf("stage series %s missing from /metrics", stage)
		}
	}
	if metricValue(t, body, "dn_monitor_updates_total") == 0 {
		t.Error("no updates counted after churn")
	}
	if v := metricValue(t, body, "dnserve_connections_total"); v < 2 {
		t.Errorf("connections_total=%g, want >= 2", v)
	}
	if v := metricValue(t, body, "dnserve_read_bytes_total"); v == 0 {
		t.Error("read bytes not counted")
	}
	if v := metricValue(t, body, "dnserve_written_bytes_total"); v == 0 {
		t.Error("written bytes not counted")
	}
	count := metricValue(t, body, "dnserve_update_seconds_count")
	if count == 0 {
		t.Error("end-to-end update histogram empty after churn")
	}

	if code, body := scrape(t, ts, "/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Errorf("healthz: %d %q", code, body)
	}
	if code, body := scrape(t, ts, "/statusz"); code != http.StatusOK ||
		!strings.Contains(body, "engine:") || !strings.Contains(body, "trace:") {
		t.Errorf("statusz: %d %q", code, body)
	}
}

func TestHealthzAfterClose(t *testing.T) {
	reg := metrics.NewRegistry()
	s, _, cleanup := startServer(t, WithMetrics(reg))
	ts := httptest.NewServer(s.AdminHandler(reg))
	defer ts.Close()
	cleanup() // close the protocol server; admin handler stays up
	if code, _ := scrape(t, ts, "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close: %d, want 503", code)
	}
}

// TestStatsKeysDocumented keeps the README's "### `stats` keys" table
// and the emitted stats line in lockstep, both directions: every key
// the server emits must be documented, and every documented key must be
// emitted.
func TestStatsKeysDocumented(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	resp := c.roundTrip(t, "stats")
	if !strings.HasPrefix(resp, "ok stats ") {
		t.Fatalf("stats: %q", resp)
	}
	emitted := map[string]bool{}
	var emittedOrder []string
	for _, f := range strings.Fields(strings.TrimPrefix(resp, "ok stats ")) {
		k, _, ok := strings.Cut(f, "=")
		if !ok {
			t.Fatalf("stats field %q is not key=value", f)
		}
		emitted[k] = true
		emittedOrder = append(emittedOrder, k)
	}

	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	_, sect, found := strings.Cut(string(readme), "### `stats` keys")
	if !found {
		t.Fatal("README.md has no \"### `stats` keys\" section")
	}
	if i := strings.Index(sect, "\n#"); i >= 0 {
		sect = sect[:i]
	}
	rowRe := regexp.MustCompile("(?m)^\\| `([a-z]+)` \\|")
	documented := map[string]bool{}
	for _, m := range rowRe.FindAllStringSubmatch(sect, -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no key rows parsed from the README table")
	}
	for _, k := range emittedOrder {
		if !documented[k] {
			t.Errorf("stats emits %q but the README table does not document it", k)
		}
	}
	// Keys only a journaling primary (jrnl) or a replica (lag) emits;
	// this plain server legitimately omits them. Their emission is
	// covered by the replication tests.
	// ... and ring only once binary ingest has started (ingest tests
	// cover its emission).
	conditional := map[string]bool{"jrnl": true, "lag": true, "ring": true}
	for k := range documented {
		if !emitted[k] && !conditional[k] {
			t.Errorf("README documents stats key %q but the server does not emit it", k)
		}
	}
}

// TestTraceCommand drives the trace ring over the wire: records appear
// after updates, `last` truncates and orders oldest-first, `off` clears
// the ring, and malformed variants produce usage errors.
func TestTraceCommand(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "link 0 1")
	c.roundTrip(t, "W reach 0 1")

	if got := c.roundTrip(t, "trace on"); got != fmt.Sprintf("ok trace on cap=%d", traceRingCap) {
		t.Fatalf("trace on: %q", got)
	}
	c.roundTrip(t, "I 1 0 0 0 100 1")
	c.roundTrip(t, "I 2 0 0 200 300 1")
	c.roundTrip(t, "R 2")

	got := c.roundTrip(t, "trace last 2")
	if !strings.HasPrefix(got, "ok trace n=2") {
		t.Fatalf("trace last 2: %q", got)
	}
	lines := []string{}
	for c.r.Scan() {
		lines = append(lines, c.r.Text())
		if len(lines) == 2 {
			break
		}
	}
	if len(lines) != 2 {
		t.Fatalf("expected 2 trace lines, got %v", lines)
	}
	// Oldest first: the I then the R; both evaluated (one invariant).
	if !strings.Contains(lines[0], "verb=I") || !strings.Contains(lines[1], "verb=R") {
		t.Fatalf("trace lines wrong order or verb:\n%s\n%s", lines[0], lines[1])
	}
	for _, l := range lines {
		for _, key := range []string{"upd=", "coalesced=1", "eval=true", "dirtied=",
			"parse_ns=", "lock_ns=", "apply_ns=", "dirty_ns=", "eval_ns=", "publish_ns=", "total_ns="} {
			if !strings.Contains(l, key) {
				t.Errorf("trace line missing %q: %s", key, l)
			}
		}
	}
	// upd= of the R record is 3 (third engine update).
	if !strings.Contains(lines[1], "upd=3:3") {
		t.Errorf("R record seq: %s", lines[1])
	}

	if got := c.roundTrip(t, "trace off"); got != "ok trace off" {
		t.Fatalf("trace off: %q", got)
	}
	if got := c.roundTrip(t, "trace last 5"); got != "ok trace n=0" {
		t.Fatalf("ring should be cleared after off: %q", got)
	}
	c.roundTrip(t, "I 3 0 0 400 500 1")
	if got := c.roundTrip(t, "trace last 5"); got != "ok trace n=0" {
		t.Fatalf("tracing off must not retain records: %q", got)
	}

	for _, bad := range []string{"trace", "trace bogus", "trace last", "trace last x",
		"trace last 0", "trace on extra"} {
		if got := c.roundTrip(t, bad); !strings.HasPrefix(got, "err") {
			t.Errorf("%q: %q, want err", bad, got)
		}
	}
}

// syncBuf is a goroutine-safe writer for the slow-update log.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSlowUpdateLog(t *testing.T) {
	var log syncBuf
	s, addr, cleanup := startServer(t, WithSlowUpdate(time.Nanosecond, &log)) // every update is "slow"
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "link 0 1")
	c.roundTrip(t, "I 1 0 0 0 100 1")
	if out := log.String(); !strings.Contains(out, "slow update: trace upd=") {
		t.Fatalf("slow update not logged: %q", out)
	}
	if s.tr.slows() == 0 {
		t.Fatal("slow update not counted")
	}
}
