package monitor

import (
	"sync"
	"sync/atomic"

	"deltanet/internal/bitset"
	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
	"deltanet/internal/netgraph"
)

// indexShards is the number of link shards in the dependency index. Links
// are dense integers, so link % indexShards spreads a topology's links
// evenly; 16 shards keep lock contention negligible up to hundreds of
// concurrent registrations without bloating the per-monitor footprint.
const indexShards = 16

// depIndex is the monitor's sharded dependency index: for every link, the
// set of invariant slots whose last evaluation depended on it, refined —
// where the evaluation recorded one — by a per-slot atom-range sketch of
// which atoms on that link actually mattered. Dirty marking on an update
// is then one bitmap union per changed link (link granularity), or a
// per-slot sketch intersection against the delta's touched atom ranges
// (atom granularity): an invariant whose recorded ranges are disjoint
// from the delta's atoms on every shared link is skipped entirely, which
// is the paper's work-proportional-to-affected-atoms property carried
// through to standing invariants. The sharded, partitioned-state layout
// (NFork's lesson applied to the monitor) is what makes 10⁵ standing
// invariants affordable; the sketches stay shard-local, so the
// refinement adds no new cross-shard contention.
//
// Links born after an invariant's last evaluation must conservatively
// dirty it (a new out-link can extend reachability the old evaluation
// never saw). The index realizes that rule structurally: when it grows to
// cover new links, each new link's bitmap is seeded with every currently
// dep-tracked slot ("born dirty") and no sketch, and an invariant's next
// evaluation clears the seeds its fresh dependency set does not confirm.
// Symmetrically, atoms born after an invariant's evaluation (split-minted
// or GC-recycled ids) are conservative hits: every sketch carries the
// atom allocation stamp of its evaluation, and a delta whose newest
// touched atom is younger bypasses the sketch intersection.
//
// Locking: each shard has its own RWMutex; growth is serialized by growMu.
// Shard mutexes are leaves — nothing else is acquired under them — so
// callers may hold any of the monitor's other locks.
type depIndex struct {
	// growMu serializes growth.
	//
	//deltanet:lockrank 50
	growMu sync.Mutex
	upTo   atomic.Int64 // links [0, upTo) have bitmaps

	shards [indexShards]indexShard
}

type indexShard struct {
	//deltanet:lockrank 60
	mu sync.RWMutex
	// byLink[link/indexShards] is the slot bitmap of link; the shard owns
	// links ≡ its index (mod indexShards).
	byLink []*bitset.Set
	// sums[link/indexShards] refines the bitmap with per-slot atom-range
	// sketches; a slot present in the bitmap but absent here depends on
	// every atom of the link. Lazily allocated: links nobody sketches
	// (born-dirty seeds, whole-label dependencies) pay nothing.
	sums []map[int32]slotSketch
}

// slotSketch is one (link, slot) dependency refinement: the atoms on the
// link the slot's last evaluation depended on, plus that evaluation's
// atom allocation stamp (atoms born after it are conservative hits).
// Both fields are inlined pointer-free values: the sums maps are
// invisible to the garbage collector no matter how many sketches a
// loaded monitor retains.
//
//deltanet:pointerfree
type slotSketch struct {
	atomSeq int64
	sk      intervalmap.Sketch
}

// growTo extends the index to cover links [0, numLinks), seeding each new
// link's bitmap with seed (the dep-tracked slots at the time of growth —
// see the born-dirty rule above). Callers pass a snapshot of the
// monitor's depSlots taken under regMu.
func (ix *depIndex) growTo(numLinks int, seed *bitset.Set) {
	if int(ix.upTo.Load()) >= numLinks {
		return
	}
	ix.growMu.Lock()
	defer ix.growMu.Unlock()
	from := int(ix.upTo.Load())
	if from >= numLinks {
		return
	}
	for l := from; l < numLinks; l++ {
		sh := &ix.shards[l%indexShards]
		sh.mu.Lock()
		for len(sh.byLink) <= l/indexShards {
			sh.byLink = append(sh.byLink, nil)
		}
		sh.byLink[l/indexShards] = seed.Clone()
		sh.mu.Unlock()
	}
	ix.upTo.Store(int64(numLinks))
}

// collect unions into dirty the slot bitmaps of every changed link,
// ignoring the atom-range sketches — the link-granular path (the
// SetLinkGranular ablation, and the fallback when no delta ranges are
// available). Links ≥ upTo are ignored; callers growTo first, so none
// exist by the time a delta naming them is applied.
func (ix *depIndex) collect(changed, dirty *bitset.Set) {
	changed.ForEach(func(l int) bool {
		sh := &ix.shards[l%indexShards]
		sh.mu.RLock()
		if i := l / indexShards; i < len(sh.byLink) && sh.byLink[i] != nil {
			dirty.UnionWith(sh.byLink[i])
		}
		sh.mu.RUnlock()
		return true
	})
}

// collectGranular is collect at atom granularity: a slot in a changed
// link's bitmap is dirtied only when its sketch intersects the delta's
// touched atoms on that link (dr), when it has no sketch there, or when
// the delta touches an atom born after the sketch was recorded
// (dr.NewestBorn vs the sketch's stamp). Every slot considered — dirtied
// or not — is also accumulated into cand, so the caller can count
// range-based skips as cand minus dirty.
func (ix *depIndex) collectGranular(changed *bitset.Set, dr *core.DeltaRanges, dirty, cand *bitset.Set) {
	changed.ForEach(func(l int) bool {
		sh := &ix.shards[l%indexShards]
		sh.mu.RLock()
		i := l / indexShards
		if i >= len(sh.byLink) || sh.byLink[i] == nil {
			sh.mu.RUnlock()
			return true
		}
		bm := sh.byLink[i]
		cand.UnionWith(bm)
		var sums map[int32]slotSketch
		if i < len(sh.sums) {
			sums = sh.sums[i]
		}
		touched := dr.Ranges(netgraph.LinkID(l))
		if len(sums) == 0 || touched == nil {
			// No sketches on this link (or no range data for it): every
			// depending slot is dirty, as at link granularity.
			dirty.UnionWith(bm)
			sh.mu.RUnlock()
			return true
		}
		bm.ForEach(func(slot int) bool {
			if dirty.Contains(slot) {
				return true
			}
			sk, ok := sums[int32(slot)]
			if !ok || dr.NewestBorn > sk.atomSeq || sk.sk.Intersects(touched) {
				dirty.Add(slot)
			}
			return true
		})
		sh.mu.RUnlock()
		return true
	})
}

func (ix *depIndex) set(link, slot int, sketch slotSketch, sketched bool) {
	sh := &ix.shards[link%indexShards]
	sh.mu.Lock()
	i := link / indexShards
	if i < len(sh.byLink) && sh.byLink[i] != nil {
		sh.byLink[i].Add(slot)
		if sketched {
			for len(sh.sums) <= i {
				sh.sums = append(sh.sums, nil)
			}
			if sh.sums[i] == nil {
				sh.sums[i] = map[int32]slotSketch{}
			}
			sh.sums[i][int32(slot)] = sketch
		} else if i < len(sh.sums) && sh.sums[i] != nil {
			delete(sh.sums[i], int32(slot))
		}
	}
	sh.mu.Unlock()
}

func (ix *depIndex) clear(link, slot int) {
	sh := &ix.shards[link%indexShards]
	sh.mu.Lock()
	i := link / indexShards
	if i < len(sh.byLink) && sh.byLink[i] != nil {
		sh.byLink[i].Remove(slot)
	}
	if i < len(sh.sums) && sh.sums[i] != nil {
		delete(sh.sums[i], int32(slot))
	}
	sh.mu.Unlock()
}

// insert indexes a slot's freshly recorded dependency set (deps non-nil):
// one bit per dep link, refined by the evaluation's atom-range sketches
// where it recorded one (ranges may be nil or partial; missing links get
// bits without sketches, i.e. every atom relevant). Both deps iteration
// and ranges are ascending by link, so the refinement is a merge walk.
// atomSeq is the evaluation's atom allocation stamp.
func (ix *depIndex) insert(slot int, deps *bitset.Set, ranges check.DepRanges, atomSeq int64) {
	i := 0
	deps.ForEach(func(l int) bool {
		for i < len(ranges) && int(ranges[i].Link) < l {
			i++
		}
		if i < len(ranges) && int(ranges[i].Link) == l {
			ix.set(l, slot, slotSketch{atomSeq: atomSeq, sk: ranges[i].Sketch}, true)
			i++
		} else {
			ix.set(l, slot, slotSketch{}, false)
		}
		return true
	})
}

// update re-indexes a slot after a re-evaluation: oldDeps/oldUpTo/
// oldRanges/oldAtomSeq are the dependency set, link count, sketches, and
// atom stamp of the previous evaluation (the slot's bits live in oldDeps
// plus the born-dirty range [oldUpTo, upTo)); newDeps/newRanges/atomSeq
// describe the fresh one. A nil set means "not dep-tracked" on that
// side.
//
// The steady-state fast path: when the link set, the sketches, and the
// atom allocation counter are all unchanged since the previous
// evaluation, the index already holds exactly this state and no shard
// lock is touched. (With the allocation counter unchanged the stored
// stamps are equivalent; when it HAS advanced, sketches are rewritten
// even if value-equal, so their stamps move forward and atoms born
// before this evaluation stop tripping the conservative newest-born
// escape forever.)
func (ix *depIndex) update(slot int, oldDeps *bitset.Set, oldUpTo int, oldRanges check.DepRanges, oldAtomSeq int64,
	newDeps *bitset.Set, newRanges check.DepRanges, atomSeq int64) {
	upTo := int(ix.upTo.Load())
	if oldDeps != nil && newDeps != nil && oldUpTo >= upTo &&
		oldAtomSeq == atomSeq && oldDeps.Equal(newDeps) && depRangesEqual(oldRanges, newRanges) {
		return
	}
	in := func(s *bitset.Set, l int) bool { return s != nil && s.Contains(l) }
	// Clear stale bits: previous deps and born-dirty seeds the new
	// evaluation did not confirm.
	if oldDeps != nil {
		oldDeps.ForEach(func(l int) bool {
			if !in(newDeps, l) {
				ix.clear(l, slot)
			}
			return true
		})
		for l := oldUpTo; l < upTo; l++ {
			if !in(newDeps, l) {
				ix.clear(l, slot)
			}
		}
	}
	if newDeps != nil {
		ix.insert(slot, newDeps, newRanges, atomSeq)
	}
}

// depRangesEqual reports whether two summaries are identical (entries
// are pointer-free comparable values).
func depRangesEqual(a, b check.DepRanges) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// shardPops returns each shard's total bit population (the sum over the
// shard's link bitmaps of their set-bit counts) — the operator-facing
// load signal Stats exposes: a shard far above the rest points at a hot
// link whose bitmap dominates dirty-marking cost.
func (ix *depIndex) shardPops() []int {
	pops := make([]int, indexShards)
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.RLock()
		n := 0
		for _, bm := range sh.byLink {
			if bm != nil {
				n += bm.Len()
			}
		}
		sh.mu.RUnlock()
		pops[i] = n
	}
	return pops
}

// removeSlot erases every bit (and sketch) a slot may own: its recorded
// deps plus the born-dirty range. Must run before the slot number is
// reused.
func (ix *depIndex) removeSlot(slot int, deps *bitset.Set, depsUpTo int) {
	if deps != nil {
		deps.ForEach(func(l int) bool {
			ix.clear(l, slot)
			return true
		})
	}
	for l, upTo := depsUpTo, int(ix.upTo.Load()); l < upTo; l++ {
		ix.clear(l, slot)
	}
}

// linkDeps unions into dst the slot bitmap of one link (no sketch
// refinement — the caller wants "could any invariant care about this
// link", the coarse signal the ingest coalescer's adaptive flush
// trigger keys on). Links the index does not cover yet contribute
// nothing.
func (ix *depIndex) linkDeps(link int, dst *bitset.Set) {
	if link < 0 || int64(link) >= ix.upTo.Load() {
		return
	}
	sh := &ix.shards[link%indexShards]
	sh.mu.RLock()
	if i := link / indexShards; i < len(sh.byLink) && sh.byLink[i] != nil {
		dst.UnionWith(sh.byLink[i])
	}
	sh.mu.RUnlock()
}
