package monitor

// This file is the monitor's replication/replay surface: a read replica
// re-applies the primary's journaled updates through ApplyReplay so its
// verdicts, update counters, and event numbering track the primary's,
// and re-anchors on a fresh checkpoint with Reset when the journal
// suffix it needs has been rotated away.

import (
	"deltanet/internal/check"
	"deltanet/internal/core"
)

// ApplyReplay is ApplyWithLoops for journal replay: the update sequence
// number is dictated by the journal record (the primary's numbering)
// instead of locally incremented, so a replica's Stats().Updates and
// event update-ranges agree with the primary's. The counter only moves
// forward — replaying an already-applied record is a no-op advance.
//
// Replay ignores burst configuration and evaluates every record
// directly: burst coalescing on a replica would make its event stream
// diverge from a primary flushing on different boundaries. Any pending
// burst state (from a configuration change) is folded in first so no
// buffered delta is lost.
func (m *Monitor) ApplyReplay(d *core.Delta, loops []check.Loop, loopsKnown bool, seq uint64) []Event {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	if seq > m.updSeq {
		m.updSeq = seq
	}
	if d == nil || d.Empty() {
		return nil
	}
	if m.pendingCount > 0 {
		m.coalesceLocked(d)
		return m.flushLocked()
	}
	if m.regd.Load() == 0 {
		return nil
	}
	m.scratchChanged.Clear()
	changed := changedLinks(d, m.scratchChanged)
	tr := m.beginTraceLocked(m.updSeq, m.updSeq, 1, d, changed)
	cands, rangeSkipped := m.collectDirty(changed, d)
	m.traceDirtyLocked(tr, len(cands), rangeSkipped)
	events := m.evaluatePass(cands, &applyCtx{d: d, loops: loops, loopsKnown: loopsKnown, rescans: &m.loopRescans}, m.updSeq, m.updSeq, tr)
	m.finishTraceLocked(tr)
	return events
}

// ResumeUpdates advances the update sequence counter to n, so replayed
// journal records numbered after n apply with the primary's numbering.
// Like ResumeSeq it never rewinds: restoring a checkpoint older than
// what this monitor already applied is a no-op.
func (m *Monitor) ResumeUpdates(n uint64) {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	if n > m.updSeq {
		m.updSeq = n
	}
}

// Reset unregisters every invariant, drops buffered burst state and the
// event backlog, and rebinds the monitor to net — the re-anchor step
// when a replica's journal cursor falls behind a rotation and it must
// rebuild from a fresh checkpoint. Sequence counters are NOT rewound
// (the caller advances them with ResumeSeq/ResumeUpdates from the new
// checkpoint), and the backlog is cleared rather than carried over so a
// watcher resuming across the reset sees an explicit gap and re-anchors
// on a fresh snapshot instead of folding events from two incarnations.
//
// The caller must guarantee no concurrent Apply/Register/query is in
// flight (the server holds its writer lock across the whole re-anchor).
func (m *Monitor) Reset(net *core.Network) {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	for _, inv := range m.sortedByID() {
		for m.Unregister(inv.id) {
		}
	}
	m.resetPendingLocked()
	m.net = net
	m.eventMu.Lock()
	m.backlog = nil
	m.backlogHead, m.backlogLen = 0, 0
	m.eventMu.Unlock()
}
