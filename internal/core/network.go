package core

import (
	"errors"
	"fmt"

	"deltanet/internal/bitset"
	"deltanet/internal/intervalmap"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// Options configure a Network.
type Options struct {
	// Space is the match-field space; the zero value selects 32-bit IPv4.
	Space ipnet.Space

	// GC enables the atom garbage-collection extension sketched in
	// §3.2.2: when a rule removal leaves an interval boundary unused by
	// any live rule, the boundary is deleted from M, the two adjacent
	// atoms merge, and the freed atom id is recycled. This bounds atom
	// growth under long insert/remove churn at a small bookkeeping cost.
	GC bool
}

// Network is the Delta-net engine for one data plane. It is not safe for
// concurrent mutation; concurrent read-only queries are safe between
// mutations.
type Network struct {
	graph *netgraph.Graph
	space ipnet.Space
	gc    bool

	m      *intervalmap.Map
	labels []*bitset.Set  // indexed by LinkID
	owner  []ownerAtom    // indexed by AtomID; flat SoA tables, see owner.go
	store  ruleStore      // dense slot-indexed rule arena
	bounds map[uint64]int // boundary refcounts, only populated when gc

	atomBuf  []intervalmap.AtomID    // scratch for ⟦interval(r)⟧ expansions
	splitBuf []intervalmap.SplitPair // scratch for CREATE_ATOMS+ split pairs

	// Batch-pipeline scratch, retained across ApplyBatch calls (the
	// engine is single-writer, so one set per network suffices). See
	// batch.go for the phase each buffer serves.
	batchItems   []batchItem
	batchPending map[RuleID]int32
	batchPairs   []atomOp
	batchRuns    []int32
	batchResults []atomResult
	replayTmp    replayScratch

	// statistics
	splits int64 // total atom splits performed
	merges int64 // total atom merges performed (GC)
}

// NewNetwork returns an engine over the given topology graph. The graph may
// keep growing (new nodes/links) while the engine is in use; rules must
// reference nodes and links that exist at insertion time.
func NewNetwork(g *netgraph.Graph, opts Options) *Network {
	space := opts.Space
	if space.Bits == 0 {
		space = ipnet.IPv4
	}
	n := &Network{
		graph: g,
		space: space,
		gc:    opts.GC,
		m:     intervalmap.New(space),
		store: newRuleStore(),
	}
	if n.gc {
		n.bounds = map[uint64]int{}
	}
	// Atom 0 (the full space) exists from the start.
	n.owner = append(n.owner, ownerAtom{})
	return n
}

// Graph returns the topology graph the engine labels.
func (n *Network) Graph() *netgraph.Graph { return n.graph }

// Space returns the match-field space.
func (n *Network) Space() ipnet.Space { return n.space }

// NumRules returns the number of live rules.
func (n *Network) NumRules() int { return n.store.len() }

// NumAtoms returns the current number of atoms.
func (n *Network) NumAtoms() int { return n.m.NumAtoms() }

// MaxAtomID returns one past the largest atom id in use; bitsets returned
// by Label are meaningful for ids below this.
func (n *Network) MaxAtomID() int { return n.m.MaxID() }

// Splits returns the cumulative number of atom splits performed.
func (n *Network) Splits() int64 { return n.splits }

// AtomAllocSeq returns the engine's atom allocation counter: the number
// of atom allocations performed so far, recycled ids included. Callers
// caching per-atom conclusions (the monitor's dependency range sketches)
// record it at evaluation time and treat any atom with a newer BornSeq
// as unknown to the cache.
func (n *Network) AtomAllocSeq() int64 { return n.m.AllocSeq() }

// AtomBornSeq returns the allocation stamp of an atom id's most recent
// allocation (0 for ids never allocated); see AtomAllocSeq.
func (n *Network) AtomBornSeq(id intervalmap.AtomID) int64 { return n.m.BornSeq(id) }

// Merges returns the cumulative number of atom merges performed by GC.
func (n *Network) Merges() int64 { return n.merges }

// Rule returns the live rule with the given id. The pointer aims into
// the engine's dense rule arena: it is valid for reading until the next
// mutation and must not be retained across one.
func (n *Network) Rule(id RuleID) (*Rule, bool) {
	slot, ok := n.store.slotOf(id)
	if !ok {
		return nil, false
	}
	return &n.store.recs[slot], true
}

// Rules calls fn for every live rule until fn returns false. Iteration
// order is unspecified. The pointer passed to fn is only valid for the
// duration of the call (see Rule).
func (n *Network) Rules(fn func(r *Rule) bool) {
	for _, slot := range n.store.byID {
		if !fn(&n.store.recs[slot]) {
			return
		}
	}
}

// Label returns the atom set of a link: the packets (as atoms) that the
// data plane currently forwards along it. This is the constant-time,
// network-wide flow API of §3.3. The returned set is live and owned by the
// engine; callers must treat it as read-only and must not retain it across
// mutations. Links with no rules yet return an empty set.
func (n *Network) Label(link netgraph.LinkID) *bitset.Set {
	if int(link) < len(n.labels) && n.labels[link] != nil {
		return n.labels[link]
	}
	return emptySet
}

var emptySet = bitset.New(0)

func (n *Network) labelOf(link netgraph.LinkID) *bitset.Set {
	for int(link) >= len(n.labels) {
		n.labels = append(n.labels, nil)
	}
	if n.labels[link] == nil {
		n.labels[link] = bitset.New(64)
	}
	return n.labels[link]
}

// ownerAt returns the atom's owner table, growing the table directory as
// needed. The returned pointer is invalidated by a later ownerAt call
// that grows the directory — derive it fresh after any growth point.
func (n *Network) ownerAt(atom intervalmap.AtomID) *ownerAtom {
	for int(atom) >= len(n.owner) {
		n.owner = append(n.owner, ownerAtom{})
	}
	return &n.owner[atom]
}

// AtomInterval returns the half-closed interval currently denoted by an
// atom (linear in the number of atoms; for reporting and tests).
func (n *Network) AtomInterval(id intervalmap.AtomID) (ipnet.Interval, bool) {
	return n.m.IntervalOf(id)
}

// AtomOf returns the atom containing the given address.
func (n *Network) AtomOf(addr uint64) intervalmap.AtomID { return n.m.AtomOf(addr) }

// AtomsOverlapping returns the atoms intersecting iv without mutating the
// partition; for read-only queries.
func (n *Network) AtomsOverlapping(iv ipnet.Interval) []intervalmap.AtomID {
	return n.m.AtomsOverlapping(iv, nil)
}

// ForEachAtom iterates the current atom partition in address order.
func (n *Network) ForEachAtom(fn func(id intervalmap.AtomID, iv ipnet.Interval) bool) {
	n.m.ForEachAtom(fn)
}

// ForwardLink returns the link along which a packet in atom α is forwarded
// from node v — the link of the highest-priority rule owning α at v — or
// netgraph.NoLink if no rule at v matches. Forwarding is deterministic:
// there is at most one such link per (node, atom).
func (n *Network) ForwardLink(v netgraph.NodeID, atom intervalmap.AtomID) netgraph.LinkID {
	if int(atom) >= len(n.owner) {
		return netgraph.NoLink
	}
	slot := n.owner[atom].top(v)
	if slot == noSlot {
		return netgraph.NoLink
	}
	return n.store.recs[slot].Link
}

// OwnerRule returns the rule owning atom α at node v, if any. The
// pointer is only valid until the next mutation (see Rule).
func (n *Network) OwnerRule(v netgraph.NodeID, atom intervalmap.AtomID) (*Rule, bool) {
	if int(atom) >= len(n.owner) {
		return nil, false
	}
	slot := n.owner[atom].top(v)
	if slot == noSlot {
		return nil, false
	}
	return &n.store.recs[slot], true
}

// Errors returned by the mutation API.
var (
	ErrDuplicateRule = errors.New("core: rule id already present")
	ErrUnknownRule   = errors.New("core: no rule with that id")
	ErrEmptyMatch    = errors.New("core: rule match interval is empty")
	ErrOutOfSpace    = errors.New("core: rule match interval outside address space")
	ErrBadLink       = errors.New("core: rule link does not originate at rule source")
)

// InsertRule applies Algorithm 1: it creates any needed atoms (splitting at
// most two existing ones), copies owner state for split atoms, then
// reassigns ownership of every atom in ⟦interval(r)⟧ by priority, updating
// edge labels. It returns the delta-graph of the update.
//
// The amortized cost is O(A log M) where A = |⟦interval(r)⟧| and M is the
// maximum number of overlapping rules at the source node (Theorem 1).
func (n *Network) InsertRule(r Rule) (*Delta, error) {
	d := &Delta{}
	if err := n.insertRule(r, d); err != nil {
		return nil, err
	}
	return d, nil
}

// InsertRuleInto is InsertRule reusing a caller-provided Delta to avoid
// allocation on hot replay paths.
func (n *Network) InsertRuleInto(r Rule, d *Delta) error {
	return n.insertRule(r, d)
}

func (n *Network) insertRule(r Rule, d *Delta) error {
	d.reset(r.ID, OpInsert)
	if _, dup := n.store.slotOf(r.ID); dup {
		return fmt.Errorf("%w: %d", ErrDuplicateRule, r.ID)
	}
	if r.Match.Empty() {
		return ErrEmptyMatch
	}
	if !n.space.Contains(r.Match) {
		return fmt.Errorf("%w: %v", ErrOutOfSpace, r.Match)
	}
	if r.Link == netgraph.NoLink {
		r.Link = n.graph.DropLink(r.Source)
	} else if n.graph.Link(r.Link).Src != r.Source {
		return fmt.Errorf("%w: rule %d source %d link %d", ErrBadLink, r.ID, r.Source, r.Link)
	}
	slot := n.store.alloc(r)
	k := r.key()

	// Step 1: CREATE_ATOMS+ (Algorithm 1, line 2). |Δ| ≤ 2.
	n.splitBuf = n.m.CreateAtomsInto(r.Match, n.splitBuf[:0])
	split := n.splitBuf
	d.NewAtoms = append(d.NewAtoms, split...)
	n.splits += int64(len(split))

	// Step 2: atom splitting (lines 3–9). The new atom α′ inherits α's
	// owner state; every link that carried α also carries α′.
	for _, sp := range split {
		newOwner := n.ownerAt(sp.New) // may grow the directory: take first
		oldOwner := &n.owner[sp.Old]
		newOwner.cloneFrom(oldOwner)
		for i := range oldOwner.cells {
			c := oldOwner.cells[i]
			top := oldOwner.slab[c.off+c.n-1]
			n.labelOf(n.store.recs[top].Link).Add(int(sp.New))
		}
	}

	// Step 3: ownership reassignment over ⟦interval(r)⟧ (lines 10–23).
	n.atomBuf = n.m.Atoms(r.Match, n.atomBuf[:0])
	newLabel := n.labelOf(r.Link)
	for _, alpha := range n.atomBuf {
		oa := n.ownerAt(alpha)
		prev := oa.top(r.Source)
		if prev == noSlot || cmpPrioKey(n.store.keyOf(prev), k) < 0 {
			newLabel.Add(int(alpha))
			d.Added = append(d.Added, LinkAtom{Link: r.Link, Atom: alpha})
			if prev != noSlot {
				if prevLink := n.store.recs[prev].Link; prevLink != r.Link {
					n.labelOf(prevLink).Remove(int(alpha))
					d.Removed = append(d.Removed, LinkAtom{Link: prevLink, Atom: alpha})
				}
			}
		}
		oa.insert(&n.store, r.Source, slot, k)
	}

	if n.gc {
		n.bounds[r.Match.Lo]++
		n.bounds[r.Match.Hi]++
	}
	return nil
}

// RemoveRule applies Algorithm 2: for every atom of the rule's interval it
// removes the rule from the owner BST and, if the rule owned the atom,
// transfers ownership (and the edge label) to the next-highest-priority
// rule. It returns the delta-graph of the update.
func (n *Network) RemoveRule(id RuleID) (*Delta, error) {
	d := &Delta{}
	if err := n.removeRule(id, d); err != nil {
		return nil, err
	}
	return d, nil
}

// RemoveRuleInto is RemoveRule reusing a caller-provided Delta.
func (n *Network) RemoveRuleInto(id RuleID, d *Delta) error {
	return n.removeRule(id, d)
}

func (n *Network) removeRule(id RuleID, d *Delta) error {
	d.reset(id, OpRemove)
	slot, ok := n.store.slotOf(id)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownRule, id)
	}
	r := n.store.recs[slot] // value copy: survives the release below
	k := r.key()

	n.atomBuf = n.m.Atoms(r.Match, n.atomBuf[:0])
	ownLabel := n.labelOf(r.Link)
	for _, alpha := range n.atomBuf {
		oa := &n.owner[alpha]
		top := oa.top(r.Source)
		oa.remove(&n.store, r.Source, k)
		if top == slot {
			ownLabel.Remove(int(alpha))
			d.Removed = append(d.Removed, LinkAtom{Link: r.Link, Atom: alpha})
			if next := oa.top(r.Source); next != noSlot {
				nextLink := n.store.recs[next].Link
				n.labelOf(nextLink).Add(int(alpha))
				d.Added = append(d.Added, LinkAtom{Link: nextLink, Atom: alpha})
			}
		}
	}

	n.store.release(id)
	if n.gc {
		n.collectBound(r.Match.Lo)
		n.collectBound(r.Match.Hi)
	}
	return nil
}

// CheckInvariants validates the engine's internal invariants (§3.2): the
// owner invariant, label consistency with owners, and atom-partition
// integrity. It is O(atoms × nodes) and intended for tests. It returns ""
// when all invariants hold, else a description of the first violation.
func (n *Network) CheckInvariants() string {
	// Every live rule is in the owner table of every atom of its interval.
	for id, slot := range n.store.byID {
		r := n.store.recs[slot]
		if r.ID != id {
			return fmt.Sprintf("rule store slot %d holds id %d, index says %d", slot, r.ID, id)
		}
		for _, alpha := range n.m.Atoms(r.Match, nil) {
			if int(alpha) >= len(n.owner) {
				return fmt.Sprintf("atom %d of %v has no owner table", alpha, r)
			}
			if got := n.owner[alpha].get(&n.store, r.Source, r.key()); got != slot {
				return fmt.Sprintf("owner invariant broken for %v atom %d", r, alpha)
			}
		}
	}
	// Owner tables are structurally sound and hold only rules at their
	// own source node.
	for i := range n.owner {
		if msg := n.owner[i].checkInvariants(&n.store); msg != "" {
			return fmt.Sprintf("atom %d: %s", i, msg)
		}
		for _, c := range n.owner[i].cells {
			for _, slot := range n.owner[i].slab[c.off : c.off+c.n] {
				if n.store.recs[slot].Source != c.node {
					panic("owner cell holds foreign rule")
				}
			}
		}
	}
	// Labels match owners exactly: bit (link, α) is set iff the owner of
	// α at src(link) forwards along link.
	want := map[LinkAtom]bool{}
	total := 0
	n.m.ForEachAtom(func(alpha intervalmap.AtomID, _ ipnet.Interval) bool {
		if int(alpha) >= len(n.owner) {
			return true
		}
		oa := &n.owner[alpha]
		for i := range oa.cells {
			c := oa.cells[i]
			top := oa.slab[c.off+c.n-1]
			want[LinkAtom{Link: n.store.recs[top].Link, Atom: alpha}] = true
			total++
		}
		return true
	})
	got := 0
	for link := range n.labels {
		if n.labels[link] == nil {
			continue
		}
		ok := true
		n.labels[link].ForEach(func(a int) bool {
			if !want[LinkAtom{Link: netgraph.LinkID(link), Atom: intervalmap.AtomID(a)}] {
				ok = false
				return false
			}
			got++
			return true
		})
		if !ok {
			return fmt.Sprintf("label bit set on link %d without matching owner", link)
		}
	}
	if got != total {
		return fmt.Sprintf("label bits %d != owner-derived bits %d", got, total)
	}
	// Dead atoms (when GC enabled) hold no owner state.
	if n.gc {
		live := map[intervalmap.AtomID]bool{}
		n.m.ForEachAtom(func(id intervalmap.AtomID, _ ipnet.Interval) bool {
			live[id] = true
			return true
		})
		for id := range n.owner {
			if !n.owner[id].empty() && !live[intervalmap.AtomID(id)] {
				return fmt.Sprintf("dead atom %d still owns rules", id)
			}
		}
	}
	return ""
}

// MemoryBytes estimates the engine's heap footprint in bytes: label words,
// owner cell directories and slabs, the rule arena and the boundary map.
// It is the self-accounting used by the Appendix D memory experiment; the
// harness additionally reports runtime.MemStats deltas.
func (n *Network) MemoryBytes() int64 {
	var b int64
	for _, l := range n.labels {
		if l != nil {
			b += int64(l.WordBytes()) + 24
		}
	}
	const cellSize = 12 // node + off + n
	for i := range n.owner {
		oa := &n.owner[i]
		b += int64(cap(oa.cells))*cellSize + int64(cap(oa.slab))*4 + 48
	}
	b += int64(cap(n.store.recs))*48 + int64(cap(n.store.free))*4
	b += int64(len(n.store.byID)) * 24
	b += int64(n.m.NumAtoms()+1) * 32 // arena boundary-tree nodes
	if n.bounds != nil {
		b += int64(len(n.bounds)) * 24
	}
	return b
}
