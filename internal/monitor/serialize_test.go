package monitor

import (
	"strconv"
	"strings"
	"testing"

	"deltanet/internal/netgraph"
)

func TestParseSpecGrammar(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical FormatSpec form; "" = parse error expected
	}{
		{"reach 0 2", "reach 0 2"},
		{"  reach   0   2  ", "reach 0 2"},
		{"waypoint 0 3 1", "waypoint 0 3 1"},
		{"isolated 0,1 4,5", "isolated 0,1 4,5"},
		{"loopfree", "loopfree"},
		{"blackholefree", "blackholefree"},
		{"blackholefree sinks=2,5", "blackholefree sinks=2,5"},
		{"blackholefree sinks=5,2", "blackholefree sinks=2,5"}, // canonicalized
		{"", ""},
		{"reach", ""},
		{"reach 0", ""},
		{"reach 0 2 3", ""},
		{"reach a b", ""},
		{"reach -1 2", ""},
		{"waypoint 0 1", ""},
		{"isolated 0,x 1", ""},
		{"isolated 0 1 2", ""},
		{"loopfree 1", ""},
		{"blackholefree sinks=", ""},
		{"blackholefree sinks=a", ""},
		{"blackholefree 1 2", ""},
		{"bogus 0 1", ""},
	}
	for _, c := range cases {
		s, err := ParseSpec(c.in)
		if c.want == "" {
			if err == nil {
				t.Errorf("ParseSpec(%q) = %v, want error", c.in, s)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got := FormatSpec(s); got != c.want {
			t.Errorf("FormatSpec(ParseSpec(%q)) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSpecNodes(t *testing.T) {
	cases := []struct {
		spec Spec
		want []netgraph.NodeID
	}{
		{Reachable{From: 1, To: 2}, []netgraph.NodeID{1, 2}},
		{Waypoint{From: 1, To: 2, Via: 3}, []netgraph.NodeID{1, 2, 3}},
		{Isolated{GroupA: []netgraph.NodeID{1}, GroupB: []netgraph.NodeID{2, 3}}, []netgraph.NodeID{1, 2, 3}},
		{LoopFree{}, nil},
		{BlackHoleFree{}, nil},
		{BlackHoleFree{Sinks: map[netgraph.NodeID]bool{4: true, 5: false}}, []netgraph.NodeID{4}},
	}
	for _, c := range cases {
		got := SpecNodes(c.spec)
		seen := map[netgraph.NodeID]bool{}
		for _, n := range got {
			seen[n] = true
		}
		if len(got) != len(c.want) {
			t.Errorf("SpecNodes(%v) = %v, want %v", c.spec, got, c.want)
			continue
		}
		for _, n := range c.want {
			if !seen[n] {
				t.Errorf("SpecNodes(%v) = %v, missing %d", c.spec, got, n)
			}
		}
	}
}

// FuzzParseSpec: whatever the input, ParseSpec must not panic, and any
// accepted input must reach a fixed point in one round: parse → format
// → parse → format yields the same canonical string (the property the
// refcount dedup key and the state-file round trip both rely on).
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"reach 0 2",
		"waypoint 0 3 1",
		"isolated 0,1 4,5",
		"loopfree",
		"blackholefree",
		"blackholefree sinks=2,5",
		"blackholefree sinks=5,5,2",
		"reach 0 99999999999999999999",
		"isolated , ,",
		"  reach \t 1 2 ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return
		}
		canon := FormatSpec(s)
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, in, err)
		}
		if got := FormatSpec(s2); got != canon {
			t.Fatalf("not a fixed point: %q -> %q -> %q", in, canon, got)
		}
		if strings.TrimSpace(in) == "" {
			t.Fatalf("accepted blank input %q", in)
		}
	})
}

// FuzzParseSpecNamed extends FuzzParseSpec to the named grammar: against
// a fixed name table, any accepted input must (1) canonicalize to a
// ParseSpec fixed point exactly as in FuzzParseSpec, and (2) survive the
// named round trip — FormatSpecNamed renders every id through the table
// (or its decimal form when unnamed) and ParseSpecNamed must resolve
// that rendering back to the same canonical spec. This is the server's
// status/event echo property: an echoed named spec re-registers to the
// same invariant.
func FuzzParseSpecNamed(f *testing.F) {
	byName := map[string]netgraph.NodeID{
		"a": 0, "b": 1, "via": 2, "spine-1": 3, "edge.2": 4,
	}
	resolve := func(name string) (netgraph.NodeID, bool) {
		id, ok := byName[name]
		return id, ok
	}
	byID := map[netgraph.NodeID]string{}
	for n, id := range byName {
		byID[id] = n
	}
	name := func(id netgraph.NodeID) string {
		if n, ok := byID[id]; ok {
			return n
		}
		return strconv.Itoa(int(id))
	}
	for _, seed := range []string{
		"reach a b",
		"reach a 7",
		"reach 0 2",
		"waypoint a b via",
		"isolated a,spine-1 b,edge.2",
		"isolated 0,via 1",
		"loopfree",
		"blackholefree",
		"blackholefree sinks=via,a",
		"blackholefree sinks=b,b,9",
		"reach a nosuch",
		"reach -1 b",
		"waypoint a via",
		"  waypoint \t a b via ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpecNamed(in, resolve)
		if err != nil {
			return
		}
		canon := FormatSpec(s)
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, in, err)
		}
		if got := FormatSpec(s2); got != canon {
			t.Fatalf("not a fixed point: %q -> %q -> %q", in, canon, got)
		}
		named := FormatSpecNamed(s, name)
		s3, err := ParseSpecNamed(named, resolve)
		if err != nil {
			t.Fatalf("named form %q (from %q) does not re-parse: %v", named, in, err)
		}
		if got := FormatSpec(s3); got != canon {
			t.Fatalf("named round trip drifts: %q -> %q -> %q, want %q", in, named, got, canon)
		}
		if strings.TrimSpace(in) == "" {
			t.Fatalf("accepted blank input %q", in)
		}
	})
}
