// Command dnlint runs deltanet's custom static-analysis suite (see
// internal/analysis) over the requested packages and exits non-zero on
// any finding. It is the CI lint gate:
//
//	go run ./cmd/dnlint ./...
//
// With no arguments it checks ./... . dnlint is a standalone driver
// rather than a `go vet -vettool` unitchecker because the module is
// dependency-free: the vet plugin protocol lives in golang.org/x/tools,
// which deltanet deliberately does not import.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"deltanet/internal/analysis"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := dnlintRun(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnlint:", err)
		os.Exit(2)
	}
	for _, line := range diags {
		fmt.Println(line)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dnlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func dnlintRun(patterns []string) ([]string, error) {
	diags, err := analysis.Run(patterns)
	if err != nil {
		return nil, err
	}
	cwd, _ := os.Getwd()
	out := make([]string, 0, len(diags))
	for _, d := range diags {
		pos := d.Position
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && len(rel) < len(pos.Filename) {
				pos.Filename = rel
			}
		}
		out = append(out, fmt.Sprintf("%s: [%s] %s", pos, d.Analyzer, d.Message))
	}
	return out, nil
}
