#!/usr/bin/env bash
# Admin-endpoint smoke test: boot dnserve with the observability
# endpoint, drive a few protocol updates, then check that /healthz
# answers and /metrics serves a strictly parseable Prometheus exposition
# containing the per-stage pipeline histograms. `dnquery metrics` is the
# validator, so this also exercises the operator tooling end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:16633
ADMIN=127.0.0.1:16634

go build -o /tmp/dnserve-smoke ./cmd/dnserve
/tmp/dnserve-smoke -addr "$ADDR" -admin "$ADMIN" -slow-update 1ns &
SRV=$!
trap 'kill $SRV 2>/dev/null || true' EXIT

# Wait for both listeners.
for i in $(seq 1 50); do
  if curl -sf "http://$ADMIN/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
  if ! kill -0 $SRV 2>/dev/null; then echo "dnserve died" >&2; exit 1; fi
done

# Drive updates through the protocol port (bash /dev/tcp keeps the
# script dependency-free).
exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}"
printf 'node a\nnode b\nlink 0 1\nW reach 0 1\nI 1 0 0 0 100 1\nI 2 0 0 200 300 1\nR 2\nstats\nquit\n' >&3
timeout 10 cat <&3 || true
exec 3<&- 3>&-

health=$(curl -sf "http://$ADMIN/healthz")
[ "$health" = "ok" ] || { echo "healthz said: $health" >&2; exit 1; }

curl -sf "http://$ADMIN/statusz" | grep -q '^engine: rules=' \
  || { echo "statusz missing engine line" >&2; exit 1; }

# Strict exposition validation; fails (exit 1) on anything a scraper
# would choke on.
go run ./cmd/dnquery metrics "http://$ADMIN/metrics"

page=$(curl -sf "http://$ADMIN/metrics")
for want in \
  'dnserve_update_stage_seconds_bucket{stage="parse"' \
  'dnserve_update_stage_seconds_bucket{stage="evalfanout"' \
  dn_monitor_updates_total \
  dnserve_commands_total \
  dnserve_slow_updates_total; do
  grep -qF "$want" <<<"$page" || { echo "/metrics missing $want" >&2; exit 1; }
done
updates=$(grep '^dn_monitor_updates_total ' <<<"$page" | awk '{print $2}')
[ "${updates%.*}" -ge 3 ] || { echo "expected >=3 monitor updates, got $updates" >&2; exit 1; }

kill $SRV
wait $SRV 2>/dev/null || true
echo "admin smoke OK: $updates updates, exposition valid"
