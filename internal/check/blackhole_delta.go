package check

import (
	"sort"

	"deltanet/internal/bitset"
	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
	"deltanet/internal/netgraph"
)

// FindBlackHolesDelta is the incremental counterpart of FindBlackHoles: it
// reports the black holes a rule update (or an aggregated batch delta)
// introduced, examining only the (node, atom) pairs the delta can have
// affected instead of the whole data plane.
//
// A new black hole — an atom delivered to a node that neither forwards nor
// explicitly drops it — can appear in exactly two ways: an Added entry
// starts delivering the atom to the link's destination, or a Removed entry
// stops the link's source from handling an atom it still receives. Both
// endpoints are checked against the current labels; sinks (and the drop
// node) are exempt as in FindBlackHoles. Results are grouped per node in
// ascending node order.
func FindBlackHolesDelta(n *core.Network, d *core.Delta, sinks map[netgraph.NodeID]bool) []BlackHole {
	if d == nil || (len(d.Added) == 0 && len(d.Removed) == 0) {
		return nil
	}
	g := n.Graph()
	type cand struct {
		node netgraph.NodeID
		atom intervalmap.AtomID
	}
	seen := map[cand]bool{}
	holes := map[netgraph.NodeID]*bitset.Set{}
	consider := func(v netgraph.NodeID, atom intervalmap.AtomID) {
		c := cand{v, atom}
		if seen[c] {
			return
		}
		seen[c] = true
		if sinks[v] || (g.DropNode() != netgraph.NoNode && v == g.DropNode()) {
			return
		}
		arrives := false
		for _, lid := range g.In(v) {
			if n.Label(lid).Contains(int(atom)) {
				arrives = true
				break
			}
		}
		if !arrives {
			return
		}
		for _, lid := range g.Out(v) {
			if n.Label(lid).Contains(int(atom)) {
				return // forwarded or explicitly dropped
			}
		}
		if holes[v] == nil {
			holes[v] = bitset.New(int(atom) + 1)
		}
		holes[v].Add(int(atom))
	}
	for _, la := range d.Added {
		consider(g.Link(la.Link).Dst, la.Atom)
	}
	for _, la := range d.Removed {
		consider(g.Link(la.Link).Src, la.Atom)
	}
	if len(holes) == 0 {
		return nil
	}
	nodes := make([]netgraph.NodeID, 0, len(holes))
	for v := range holes {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	out := make([]BlackHole, 0, len(nodes))
	for _, v := range nodes {
		out = append(out, BlackHole{Node: v, Atoms: holes[v]})
	}
	return out
}
