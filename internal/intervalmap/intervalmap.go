// Package intervalmap implements M, Delta-net's ordered map from interval
// boundaries to atom identifiers (paper §3.1, Figure 6).
//
// M contains key/value pairs n ↦ αᵢ where n is a lower or upper bound of
// some rule's IP-prefix interval and αᵢ is an atom identifier. The pair
// n ↦ αᵢ (for n < MAX) means the atom αᵢ denotes the half-closed interval
// [n : n′) where n′ is the next greater key. M is initialized with
// MIN ↦ α₀ and MAX ↦ α∞, so the number of atoms equals len(M) − 1.
//
// Atom identifiers are dense ints handed out by a consecutively increasing
// counter (with an optional free-list for the garbage-collection extension),
// so callers can index slices and bitsets by atom id.
package intervalmap

import (
	"deltanet/internal/ipnet"
)

// AtomID identifies one atom: a half-closed interval in the current
// partition of the address space. Ids are dense and start at 0.
type AtomID int32

// Infinity is the sentinel value α∞ stored under the MAX key; it denotes no
// interval and never appears in interval expansions.
const Infinity AtomID = -1

// SplitPair records that an existing atom's interval was split: Old now
// denotes only the lower part and New denotes the upper part. Algorithm 1
// consumes these as its Δ set; |Δ| ≤ 2 per rule insertion.
type SplitPair struct {
	Old, New AtomID
}

// Map is the boundary map M. It is not safe for concurrent mutation.
//
// The backing store is an arena-backed red-black tree (see arena.go):
// index-addressed nodes in one contiguous pointer-free slice, so the
// boundary map costs the garbage collector nothing no matter how many
// bounds it holds. internal/rbtree remains only as the differential
// oracle this implementation is fuzzed against.
type Map struct {
	space ipnet.Space
	tree  arenaTree
	next  AtomID
	free  []AtomID // recycled ids when garbage collection is enabled

	// allocSeq counts atom allocations (fresh and recycled alike); born
	// stamps each live id with the allocSeq of its most recent allocation.
	// Consumers that cache per-atom conclusions (the monitor's dependency
	// range sketches) compare stamps to detect that an id now denotes a
	// different interval than when the conclusion was recorded — the
	// split/merge-stability anchor raw atom ids cannot provide.
	allocSeq int64
	born     []int64
}

// New returns a Map over the given space, pre-seeded with MIN ↦ α₀ and
// MAX ↦ α∞ as §3.1 prescribes.
func New(space ipnet.Space) *Map {
	m := &Map{space: space, tree: newArenaTree()}
	m.tree.insert(0, m.alloc())
	m.tree.insert(space.Max(), Infinity)
	return m
}

func (m *Map) alloc() AtomID {
	var id AtomID
	if n := len(m.free); n > 0 {
		id = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		id = m.next
		m.next++
	}
	m.allocSeq++
	for int(id) >= len(m.born) {
		m.born = append(m.born, 0)
	}
	m.born[id] = m.allocSeq
	return id
}

// AllocSeq returns the number of atom allocations performed so far (a
// recycled id counts again). It only moves forward, so a caller that
// records AllocSeq alongside per-atom state can later tell whether any
// atom it sees was (re-)allocated after the recording — see BornSeq.
func (m *Map) AllocSeq() int64 { return m.allocSeq }

// BornSeq returns the allocation stamp of the atom id's most recent
// allocation (0 for ids never allocated). An id with BornSeq greater
// than a recorded AllocSeq denotes an interval the recording never saw:
// either a split minted it afterwards, or garbage collection merged the
// original away and recycled the id.
func (m *Map) BornSeq(id AtomID) int64 {
	if int(id) < 0 || int(id) >= len(m.born) {
		return 0
	}
	return m.born[id]
}

// Space returns the address space the map partitions.
func (m *Map) Space() ipnet.Space { return m.space }

// NumAtoms returns the current number of atoms (len(M) − 1).
func (m *Map) NumAtoms() int { return m.tree.len() - 1 }

// MaxID returns one past the largest atom id ever allocated; slices indexed
// by AtomID need this capacity. With GC enabled this can exceed NumAtoms.
func (m *Map) MaxID() int { return int(m.next) }

// CreateAtoms ensures both bounds of iv are keys of M, splitting at most two
// existing atoms. It returns the split pairs (the paper's Δ from
// CREATE_ATOMS+); the caller must copy owner state from Old to New for each
// pair. The set of atoms that results is independent of insertion order,
// though the identifier values are not (§3.1).
func (m *Map) CreateAtoms(iv ipnet.Interval) []SplitPair {
	return m.CreateAtomsInto(iv, nil)
}

// CreateAtomsInto is CreateAtoms appending into dst — the allocation-free
// form for hot update paths that keep a reusable split buffer.
func (m *Map) CreateAtomsInto(iv ipnet.Interval, dst []SplitPair) []SplitPair {
	delta := dst
	for _, bound := range [2]uint64{iv.Lo, iv.Hi} {
		if m.tree.has(bound) {
			continue
		}
		prev := m.tree.lower(bound)
		// prev always exists: MIN=0 is a key and bound > 0 here
		// (bound == 0 would have hit the has check).
		old := m.tree.nodes[prev].val
		id := m.alloc()
		m.tree.insert(bound, id)
		delta = append(delta, SplitPair{Old: old, New: id})
	}
	return delta
}

// ReleaseBound removes the boundary key at bound, merging the atom that
// starts at bound into its predecessor. It returns the id of the removed
// atom so the caller can clear labels/owner state, and recycles the id.
// The bound must not be MIN or MAX and must currently be a key.
// This implements the garbage-collection mechanism the paper sketches but
// omits from Algorithm 2 (§3.2.2).
func (m *Map) ReleaseBound(bound uint64) (AtomID, bool) {
	if bound == 0 || bound == m.space.Max() {
		return 0, false
	}
	v, ok := m.tree.get(bound)
	if !ok {
		return 0, false
	}
	m.tree.delete(bound)
	m.free = append(m.free, v)
	return v, true
}

// Atoms appends to dst the atom ids whose intervals compose iv — the
// paper's ⟦interval(r)⟧ — assuming both bounds of iv are keys (call
// CreateAtoms first). Atoms are produced in ascending address order.
func (m *Map) Atoms(iv ipnet.Interval, dst []AtomID) []AtomID {
	m.tree.ascendRange(iv.Lo, iv.Hi, func(_ uint64, id AtomID) bool {
		dst = append(dst, id)
		return true
	})
	return dst
}

// AtomsOverlapping appends the atom ids whose intervals intersect iv, even
// when iv's bounds are not keys of M. Used by query paths that must not
// mutate the partition.
func (m *Map) AtomsOverlapping(iv ipnet.Interval, dst []AtomID) []AtomID {
	if iv.Empty() {
		return dst
	}
	if n := m.tree.floor(iv.Lo); n != nilNode && m.tree.nodes[n].val != Infinity && m.tree.nodes[n].key < iv.Lo {
		dst = append(dst, m.tree.nodes[n].val)
	}
	m.tree.ascendRange(iv.Lo, iv.Hi, func(k uint64, id AtomID) bool {
		if id != Infinity {
			dst = append(dst, id)
		}
		return true
	})
	return dst
}

// AtomOf returns the atom containing the address, which always exists.
func (m *Map) AtomOf(addr uint64) AtomID {
	return m.tree.nodes[m.tree.floor(addr)].val
}

// IntervalOf returns the half-closed interval currently denoted by the atom.
// It is a linear scan and intended for tests, tooling and reporting, not the
// hot path (the engine never needs the reverse mapping).
func (m *Map) IntervalOf(id AtomID) (ipnet.Interval, bool) {
	var out ipnet.Interval
	found := false
	var prevKey uint64
	var prevID AtomID = Infinity
	first := true
	m.tree.ascend(func(k uint64, v AtomID) bool {
		if !first && prevID == id {
			out = ipnet.Interval{Lo: prevKey, Hi: k}
			found = true
			return false
		}
		first = false
		prevKey, prevID = k, v
		return true
	})
	return out, found
}

// Bounds returns all boundary keys in ascending order (including MIN and
// MAX). Intended for tests and reporting.
func (m *Map) Bounds() []uint64 {
	out := make([]uint64, 0, m.tree.len())
	m.tree.ascend(func(k uint64, _ AtomID) bool {
		out = append(out, k)
		return true
	})
	return out
}

// ForEachAtom calls fn for every atom with its interval, in address order.
func (m *Map) ForEachAtom(fn func(id AtomID, iv ipnet.Interval) bool) {
	var prevKey uint64
	var prevID AtomID = Infinity
	first := true
	m.tree.ascend(func(k uint64, v AtomID) bool {
		if !first {
			if !fn(prevID, ipnet.Interval{Lo: prevKey, Hi: k}) {
				return false
			}
		}
		first = false
		prevKey, prevID = k, v
		return true
	})
}

// HasBound reports whether n is currently a boundary key.
func (m *Map) HasBound(n uint64) bool { return m.tree.has(n) }

// CheckInvariants verifies the backing tree's red-black properties, key
// ordering, and arena slot accounting, returning a description of the
// first violation (empty string when valid). Tests and tooling only.
func (m *Map) CheckInvariants() string { return m.tree.checkInvariants() }
