package server

// This file is the replica side of the replication substrate
// (WithReplicaOf): a loop that dials the primary, anchors on its
// checkpoint when needed, streams the journal tail, and applies every
// record into this server's own data plane and monitor — which then
// serves reach/whatif/stats/W/watch locally, with verdicts and event
// numbering that track the primary's (monitor.ApplyReplay).
//
// Consistency model: the replica is an eventually consistent snapshot
// of the primary. Applied journal records are whole updates, so every
// state a query sees existed on the primary; the event sequence is
// monotonic and shared with the primary, so a watcher that fails over
// carries its "watch since <seq>" cursor and sees either the missed
// suffix or an explicit gap + snapshot — never silent divergence. When
// the primary rotates its journal past the replica's cursor (replica
// down across a checkpoint), the replica re-anchors: fresh checkpoint,
// rebuilt data plane, resumed counters.

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"deltanet/internal/core"
	"deltanet/internal/netgraph"
)

const (
	// replicaDialTimeout bounds one connection attempt to the primary.
	replicaDialTimeout = 5 * time.Second
	// replicaBackoffMax caps the reconnect backoff.
	replicaBackoffMax = 3 * time.Second
)

// replicaLagBytes is the replica's byte lag: primary journal end (as of
// the last received frame) minus the offset applied through.
func (s *Server) replicaLagBytes() uint64 {
	end, cur := s.replEnd.Load(), s.replCursor.Load()
	if end <= cur {
		return 0
	}
	return end - cur
}

// replicaLagSeconds is the replica's time lag: 0 when caught up, else
// the age of the last applied record's stamp.
func (s *Server) replicaLagSeconds() float64 {
	if s.replicaLagBytes() == 0 {
		return 0
	}
	st := s.replStamp.Load()
	if st == 0 {
		return 0
	}
	lag := time.Since(time.Unix(0, st)).Seconds()
	if lag < 0 {
		return 0
	}
	return lag
}

// replicaLoop runs replication sessions against the primary until the
// server closes, reconnecting with capped backoff. Started by Serve.
func (s *Server) replicaLoop() {
	backoff := 100 * time.Millisecond
	for {
		select {
		case <-s.closed:
			return
		default:
		}
		err := s.replicaSession()
		select {
		case <-s.closed:
			return
		default:
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnserve: replica: %v (retrying in %v)\n", err, backoff)
		}
		select {
		case <-s.closed:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > replicaBackoffMax {
			backoff = replicaBackoffMax
		}
	}
}

// replicaSession runs one connection's worth of replication: anchor on
// a checkpoint when this replica has no state yet (or was told its
// cursor is truncated), then stream and apply the journal tail until
// the connection dies.
func (s *Server) replicaSession() error {
	conn, err := net.DialTimeout("tcp", s.replicaOf, replicaDialTimeout)
	if err != nil {
		return err
	}
	// Track the conn like an inbound one so Close unblocks the stream
	// read; track refuses when the server is already closing.
	if !s.track(conn) {
		conn.Close()
		return nil
	}
	defer func() {
		conn.Close()
		s.untrack(conn)
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), maxLine)

	s.mu.RLock()
	anchored := s.graph.NumNodes() > 0 || s.net.NumRules() > 0 || s.replCursor.Load() > 0
	s.mu.RUnlock()
	for {
		if !anchored {
			if err := s.replicaAnchor(conn, sc); err != nil {
				return err
			}
		}
		err := s.replicaStream(conn, sc)
		if err == errJournalTruncated {
			// The primary rotated past our cursor: re-anchor on a fresh
			// checkpoint over the same connection.
			s.replanchors.Add(1)
			anchored = false
			continue
		}
		return err
	}
}

// errJournalTruncated is replicaStream's signal that the primary
// refused the cursor and a checkpoint re-anchor is needed.
var errJournalTruncated = fmt.Errorf("journal truncated at primary")

// replicaAnchor fetches the primary's checkpoint and (re)builds the
// local data plane from it: fresh graph, network, and monitor state,
// with event/update counters resumed from the dump so numbering stays
// continuous with the primary.
func (s *Server) replicaAnchor(conn net.Conn, sc *bufio.Scanner) error {
	//deltanet:nolint guardedwriter outbound client conn to the primary, owned by this goroutine alone; the guard is for served conns shared with watch fan-out
	if _, err := fmt.Fprintln(conn, "checkpoint"); err != nil {
		return err
	}
	if !sc.Scan() {
		return scanFail(sc, "checkpoint response")
	}
	resp := strings.Fields(strings.TrimSpace(sc.Text()))
	if len(resp) != 4 || resp[0] != "ok" || resp[1] != "checkpoint" {
		return fmt.Errorf("bad checkpoint response %q", strings.Join(resp, " "))
	}
	n, err1 := strconv.Atoi(strings.TrimPrefix(resp[2], "n="))
	off, err2 := strconv.ParseUint(strings.TrimPrefix(resp[3], "offset="), 10, 64)
	if err1 != nil || err2 != nil || n < 1 {
		return fmt.Errorf("bad checkpoint response %q", strings.Join(resp, " "))
	}
	var dump strings.Builder
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			return scanFail(sc, "checkpoint dump")
		}
		dump.WriteString(sc.Text())
		dump.WriteByte('\n')
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resetReplicaLocked()
	if err := s.LoadState(strings.NewReader(dump.String())); err != nil {
		return err
	}
	s.replCursor.Store(off)
	if end := s.replEnd.Load(); end < off {
		s.replEnd.Store(off)
	}
	return nil
}

// resetReplicaLocked empties the data plane for a checkpoint re-anchor:
// fresh graph and network, monitor unbound from the old ones with its
// sequence counters intact (monitor.Reset). Caller holds the write
// lock, which excludes every query and dump for the duration.
func (s *Server) resetReplicaLocked() {
	g := netgraph.New()
	n := core.NewNetwork(g, s.engineOpts)
	s.graph = g
	s.net = n
	s.delta = core.Delta{}
	s.loadedJournal = 0
	s.mon.Reset(n)
}

// replicaStream requests the journal tail after the current cursor and
// applies frames until the connection dies (error returned) or the
// primary reports the cursor truncated (errJournalTruncated).
func (s *Server) replicaStream(conn net.Conn, sc *bufio.Scanner) error {
	cursor := s.replCursor.Load()
	//deltanet:nolint guardedwriter outbound client conn to the primary, owned by this goroutine alone; the guard is for served conns shared with watch fan-out
	if _, err := fmt.Fprintf(conn, "journal since %d\n", cursor); err != nil {
		return err
	}
	if !sc.Scan() {
		return scanFail(sc, "journal response")
	}
	resp := strings.TrimSpace(sc.Text())
	if strings.HasPrefix(resp, "err journal truncated") {
		return errJournalTruncated
	}
	if !strings.HasPrefix(resp, "ok journal ") {
		return fmt.Errorf("bad journal response %q", resp)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "err journal truncated") {
			// A rotation raced the file catch-up mid-stream.
			return errJournalTruncated
		}
		end, pend, seq, stamp, n, err := parseJournalFrame(line)
		if err != nil {
			return err
		}
		var payload strings.Builder
		for i := 0; i < n; i++ {
			if !sc.Scan() {
				return scanFail(sc, "journal frame payload")
			}
			if i > 0 {
				payload.WriteByte('\n')
			}
			payload.WriteString(strings.TrimSpace(sc.Text()))
		}
		s.mu.Lock()
		msg := s.applyJournalLocked(payload.String(), seq)
		s.mu.Unlock()
		if msg != "" {
			return fmt.Errorf("applying journal record at offset %d: %s", end, msg)
		}
		s.replCursor.Store(end)
		s.replEnd.Store(pend)
		s.replStamp.Store(stamp)
	}
	return scanFail(sc, "journal stream")
}

// parseJournalFrame parses one "r end=.. pend=.. seq=.. t=.. n=.."
// frame header.
func parseJournalFrame(line string) (end, pend, seq uint64, stamp int64, n int, err error) {
	fields := strings.Fields(line)
	if len(fields) != 6 || fields[0] != "r" {
		return 0, 0, 0, 0, 0, fmt.Errorf("bad journal frame %q", line)
	}
	bad := func() error { return fmt.Errorf("bad journal frame %q", line) }
	if end, err = parseKeyUint(fields[1], "end="); err != nil {
		return 0, 0, 0, 0, 0, bad()
	}
	if pend, err = parseKeyUint(fields[2], "pend="); err != nil {
		return 0, 0, 0, 0, 0, bad()
	}
	if seq, err = parseKeyUint(fields[3], "seq="); err != nil {
		return 0, 0, 0, 0, 0, bad()
	}
	st, err := parseKeyUint(fields[4], "t=")
	if err != nil {
		return 0, 0, 0, 0, 0, bad()
	}
	cnt, err := parseKeyUint(fields[5], "n=")
	if err != nil || cnt < 1 || cnt > maxBatch+1 {
		return 0, 0, 0, 0, 0, bad()
	}
	return end, pend, seq, int64(st), int(cnt), nil
}

func parseKeyUint(field, prefix string) (uint64, error) {
	v, ok := strings.CutPrefix(field, prefix)
	if !ok {
		return 0, fmt.Errorf("missing %s", prefix)
	}
	return strconv.ParseUint(v, 10, 64)
}

// scanFail turns a scanner stop into an error: the scanner's own error
// when it has one, a disconnect otherwise.
func scanFail(sc *bufio.Scanner, during string) error {
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading %s: %w", during, err)
	}
	return fmt.Errorf("primary closed the connection during %s", during)
}
