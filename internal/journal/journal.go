// Package journal is the append-only update journal underpinning the
// replication tier: the primary appends one record per applied mutation
// (a rule update, an atomic batch, or a topology change), and a read
// replica replays the records — a checkpoint plus the journal suffix
// after its offset is a complete recovery story, shrinking crash loss
// to zero between checkpoints (modulo the fsync policy).
//
// # On-disk format
//
// A journal file starts with a one-line header
//
//	dnjournal 1 <base>\n
//
// where base is the logical offset of the first record in this file.
// Logical offsets are monotonic across rotation: Rotate discards a
// prefix of records but the surviving records keep their offsets, so a
// replica's resume cursor stays meaningful for as long as the records
// it names are retained — and when they are not, ErrTruncated says so
// explicitly instead of silently replaying the wrong suffix.
//
// Each record is length-prefixed and checksummed:
//
//	u32  length   (covers seq + stamp + payload = 16 + len(payload))
//	u64  seq      (the engine update sequence after the mutation applied)
//	i64  stamp    (unix nanoseconds when the record's batch landed on
//	              disk; replica lag source — coarse by design)
//	...  payload  (the mutation, in the wire line grammar; batches are
//	              one record with embedded newlines, so replay is atomic)
//	u32  crc      (IEEE CRC-32 of seq + stamp + payload)
//
// A record's logical size is 4 + length + 4 bytes, and a record is
// addressed by its END offset (the cursor a consumer stores after
// applying it — "journal since <cursor>" then streams everything after).
//
// # Crash recovery
//
// Records reach the file in batch-sized sequential writes, so a crash
// can leave at most one torn record at the tail (a partial batch write
// is a run of intact records followed by the cut). Open scans the file
// and truncates back to
// the end of the last intact record (length plausible, payload present,
// CRC matching), reporting how many bytes were dropped; a torn tail is
// expected damage, not corruption, and the journal stays usable.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrTruncated reports a read below the journal's retained base: the
// requested records were discarded by rotation, and the caller must
// re-anchor on a fresh checkpoint instead of resuming.
var ErrTruncated = errors.New("journal: offset below retained base (re-anchor on a checkpoint)")

// SyncPolicy says when Append fsyncs the file.
type SyncPolicy int

const (
	// SyncNone never fsyncs: a machine crash can lose the OS-buffered
	// tail (a process crash loses nothing — the write has happened).
	SyncNone SyncPolicy = iota
	// SyncAlways fsyncs after every append: crash loss is zero at the
	// cost of one disk flush per mutation.
	SyncAlways
)

// ParseSyncPolicy parses a policy flag value ("none" or "always").
func ParseSyncPolicy(v string) (SyncPolicy, error) {
	switch v {
	case "none":
		return SyncNone, nil
	case "always":
		return SyncAlways, nil
	default:
		return 0, fmt.Errorf("journal: unknown sync policy %q (want none or always)", v)
	}
}

// maxRecord bounds one record's length field; anything larger is
// treated as a torn/corrupt tail. The server's batch body cap is 4MB,
// so 8MB leaves generous framing headroom.
const maxRecord = 8 << 20

const headerVersion = "dnjournal 1"

// recordOverhead is the non-payload bytes of a record on disk.
const recordOverhead = 4 + 8 + 8 + 4

// writerLinger is how many scheduler yields the writer polls for the
// next record before parking on the condition variable.
const writerLinger = 128

// Record is one journaled mutation.
type Record struct {
	// Seq is the engine update sequence number after the mutation
	// applied (unchanged by topology-only mutations).
	Seq uint64
	// Stamp is the append time in unix nanoseconds.
	Stamp int64
	// End is the record's end offset: the consumer's cursor after
	// applying it.
	End uint64
	// Payload is the mutation in the wire line grammar; a batch record
	// holds its whole body, newline-separated.
	Payload []byte
}

// pendingRec is one queued append awaiting the group-commit writer; the
// payload string is retained until the record lands (strings are
// immutable, so callers cannot tear it). The stamp is taken by the
// writer, once per batch — record stamps feed coarse lag measurement,
// not ordering, so batch granularity is plenty and the ingest path
// skips a clock read.
type pendingRec struct {
	seq     uint64
	payload string
}

// Journal is an append-only journal file. All methods are safe for
// concurrent use; appends are serialized internally.
//
// Physical writes are group-committed by a background writer goroutine:
// Append encodes the record, advances the logical end, and returns —
// the hot ingest path pays memory cost, not a write syscall per update.
// The writer drains everything pending in one write (and, under
// SyncAlways, one fsync that every waiting appender shares — group
// commit makes per-record durability cheaper under load, and SyncAlways
// appends block until their record is on disk). Under SyncNone a
// process crash can lose the not-yet-written tail, which is the same
// durability class as the OS-buffered page cache that policy already
// accepts; Open's torn-tail recovery handles both.
type Journal struct {
	// mu guards the writer file and the base/end/pending bookkeeping;
	// readers run on their own descriptors and never hold it past
	// ReadFrom's setup. cond (on mu) is broadcast whenever the flushed
	// frontier advances, the writer errors, or work arrives.
	mu     sync.Mutex
	cond   *sync.Cond
	path   string
	f      *os.File
	policy SyncPolicy
	base   uint64 // logical offset of the first retained record
	end    uint64 // logical offset past the last record (incl. pending)
	phys   uint64 // logical offset flushed to the file; end-len(pending)
	// pending holds records awaiting the writer, unencoded — framing and
	// checksumming happen on the writer goroutine, off the ingest path.
	// spare recycles the writer's last drained batch so steady appending
	// settles into two reused slices; encBuf is the writer-owned encode
	// buffer. Invariant: end == phys + on-disk bytes of pending + (bytes
	// of a write in flight).
	pending []pendingRec
	spare   []pendingRec
	encBuf  []byte
	// idle is true while the writer goroutine is parked on cond; an
	// appender pays a wakeup only then. While the writer lingers
	// (yield-polling between batches), appends are queue-and-go.
	idle    bool
	werr    error // sticky writer error; fails subsequent Appends
	closing bool
	done    chan struct{} // closed when the writer goroutine exits
	// dropped is the torn-tail bytes Open discarded (diagnostics).
	dropped int64
}

// Open opens (or creates) the journal at path, recovering from a torn
// tail by truncating back to the last intact record.
func Open(path string, policy SyncPolicy) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, f: f, policy: policy, done: make(chan struct{})}
	j.cond = sync.NewCond(&j.mu)
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	go j.writer()
	return j, nil
}

// writer is the group-commit goroutine: it drains pending in one write
// per wakeup (plus one shared fsync under SyncAlways) and advances the
// flushed frontier. A write error is sticky: recorded, broadcast, and
// terminal for the goroutine — appends already acknowledged under
// SyncNone are lost exactly as an OS-cache loss would be.
func (j *Journal) writer() {
	defer close(j.done)
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		// Linger before parking: during an update stream the next record
		// arrives within a few scheduler yields, and picking it up here
		// keeps the ingest path free of futex wakeups. Park (and require
		// a Broadcast) only after the linger budget finds nothing.
		spins := 0
		for len(j.pending) == 0 && !j.closing && j.werr == nil {
			if spins < writerLinger {
				spins++
				j.mu.Unlock()
				runtime.Gosched()
				j.mu.Lock()
				continue
			}
			j.idle = true
			j.cond.Wait()
			j.idle = false
			spins = 0
		}
		if j.werr != nil || (j.closing && len(j.pending) == 0) {
			return
		}
		recs := j.pending
		j.pending = j.spare[:0]
		j.spare = nil
		// Pending is fully drained, so the logical end is exactly what
		// this batch lands.
		target := j.end
		f := j.f
		j.mu.Unlock()
		stamp := time.Now().UnixNano()
		buf := j.encBuf[:0]
		for _, r := range recs {
			n := uint32(16 + len(r.payload))
			start := len(buf)
			buf = binary.BigEndian.AppendUint32(buf, n)
			buf = binary.BigEndian.AppendUint64(buf, r.seq)
			buf = binary.BigEndian.AppendUint64(buf, uint64(stamp))
			buf = append(buf, r.payload...)
			buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start+4:]))
		}
		j.encBuf = buf // writer-owned; kept for the next batch
		_, err := f.Write(buf)
		if err == nil && j.policy == SyncAlways {
			err = f.Sync()
		}
		j.mu.Lock()
		j.spare = recs[:0]
		if err != nil {
			j.werr = err
		} else {
			j.phys = target
		}
		j.cond.Broadcast()
	}
}

// recover reads the header (writing one into an empty file), scans the
// records, and truncates a torn tail.
func (j *Journal) recover() error {
	info, err := j.f.Stat()
	if err != nil {
		return err
	}
	if info.Size() == 0 {
		return j.writeHeader(0)
	}
	hdr, hdrLen, err := readHeader(j.f)
	if err != nil {
		return err
	}
	j.base = hdr
	// Scan records from the header to find the last intact end.
	pos := int64(hdrLen)
	logical := j.base
	buf := make([]byte, 0, 4096)
	for {
		var lenb [4]byte
		if _, err := j.f.ReadAt(lenb[:], pos); err != nil {
			break // clean EOF or a torn length prefix: stop here
		}
		n := binary.BigEndian.Uint32(lenb[:])
		if n < 16 || n > maxRecord {
			break // implausible length: torn or corrupt tail
		}
		if cap(buf) < int(n)+4 {
			buf = make([]byte, n+4)
		}
		body := buf[:n+4]
		if _, err := io.ReadFull(io.NewSectionReader(j.f, pos+4, int64(n)+4), body); err != nil {
			break // record body truncated
		}
		if crc32.ChecksumIEEE(body[:n]) != binary.BigEndian.Uint32(body[n:]) {
			break // checksum mismatch: torn (or corrupted) record
		}
		pos += int64(recordOverhead) + int64(n) - 16
		logical += uint64(recordOverhead) + uint64(n) - 16
	}
	if drop := info.Size() - pos; drop > 0 {
		if err := j.f.Truncate(pos); err != nil {
			return fmt.Errorf("journal: truncating torn tail: %w", err)
		}
		j.dropped = drop
	}
	if _, err := j.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	j.end, j.phys = logical, logical
	return nil
}

func (j *Journal) writeHeader(base uint64) error {
	if _, err := fmt.Fprintf(j.f, "%s %d\n", headerVersion, base); err != nil {
		return err
	}
	j.base, j.end, j.phys = base, base, base
	return nil
}

// readHeader parses the header line, returning the base offset and the
// header's byte length.
func readHeader(f *os.File) (base uint64, hdrLen int, err error) {
	buf := make([]byte, 64)
	n, err := f.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		return 0, 0, err
	}
	line, _, ok := strings.Cut(string(buf[:n]), "\n")
	if !ok || !strings.HasPrefix(line, headerVersion+" ") {
		return 0, 0, fmt.Errorf("journal: not a %q file", headerVersion)
	}
	base, err = strconv.ParseUint(strings.TrimPrefix(line, headerVersion+" "), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("journal: bad base offset in header: %v", err)
	}
	return base, len(line) + 1, nil
}

// Dropped returns the torn-tail bytes Open discarded during recovery.
func (j *Journal) Dropped() int64 { return j.dropped }

// Base returns the logical offset of the oldest retained record.
func (j *Journal) Base() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.base
}

// End returns the logical offset past the newest record — the cursor of
// a fully caught-up consumer.
func (j *Journal) End() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.end
}

// Append queues one record and returns its end offset. The record is
// handed to the group-commit writer, which lands each drained batch with
// a single write call — so a crash still tears at most one record-batch
// tail, which Open drops on restart. Under SyncNone Append returns as
// soon as the record is queued (its durability class is unchanged: the
// bytes were never fsynced anyway); under SyncAlways it blocks until the
// record is physically on disk, sharing the batch's one fsync with every
// other append that landed in it.
func (j *Journal) Append(seq uint64, payload string) (end uint64, err error) {
	if len(payload) > maxRecord-16 {
		return 0, fmt.Errorf("journal: record payload %d bytes exceeds %d", len(payload), maxRecord-16)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.werr != nil {
		return 0, j.werr
	}
	if j.closing {
		return 0, errors.New("journal: closed")
	}
	// A record's on-disk size is deterministic, so the logical end
	// advances immediately; framing waits for the writer.
	j.pending = append(j.pending, pendingRec{seq: seq, payload: payload})
	j.end += uint64(recordOverhead + len(payload))
	end = j.end
	if j.idle {
		j.cond.Broadcast()
	}
	if j.policy == SyncAlways {
		for j.phys < end && j.werr == nil {
			j.cond.Wait()
		}
		if j.werr != nil {
			return 0, j.werr
		}
	}
	return end, nil
}

// flushLocked waits until every queued record is physically in the file
// (or the writer has failed). Callers hold j.mu.
func (j *Journal) flushLocked() error {
	j.cond.Broadcast()
	for j.phys < j.end && j.werr == nil {
		j.cond.Wait()
	}
	return j.werr
}

// Rotate discards records before the `from` offset: the retained suffix
// is copied into a fresh file whose header base is from, which then
// atomically replaces the journal. Offsets keep their meaning — a
// consumer at or past from is unaffected; one behind it gets
// ErrTruncated from ReadFrom and must re-anchor on a checkpoint. Call
// it after a checkpoint at offset from, so the journal stays bounded by
// the checkpoint interval's churn.
func (j *Journal) Rotate(from uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Land every queued record first: the copy below must see the full
	// suffix, and the writer must be idle while descriptors swap.
	if err := j.flushLocked(); err != nil {
		return err
	}
	if from < j.base || from > j.end {
		return fmt.Errorf("journal: rotate offset %d outside retained range [%d, %d]", from, j.base, j.end)
	}
	tmp := j.path + ".rotate"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := fmt.Fprintf(nf, "%s %d\n", headerVersion, from); err != nil {
		return cleanup(err)
	}
	// Copy the surviving suffix byte-for-byte: record boundaries are
	// preserved because from is a record boundary offset (an Append
	// return value or Base/End).
	_, hdrLen, err := readHeader(j.f)
	if err != nil {
		return cleanup(err)
	}
	start := int64(hdrLen) + int64(from-j.base)
	if _, err := io.Copy(nf, io.NewSectionReader(j.f, start, int64(j.end-from))); err != nil {
		return cleanup(err)
	}
	if err := nf.Sync(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return cleanup(err)
	}
	// Readers holding the old descriptor keep a consistent view of the
	// old (now unlinked) file; new ReadFrom calls open the rotated one.
	j.f.Close()
	j.f, j.base = nf, from
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	return nil
}

// Close flushes queued records, stops the writer goroutine, and closes
// the journal file. It returns the writer's sticky error, if any.
func (j *Journal) Close() error {
	j.mu.Lock()
	if !j.closing {
		j.closing = true
		j.cond.Broadcast()
	}
	j.mu.Unlock()
	<-j.done // writer drains pending (or has failed) before exiting
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.werr
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Reader iterates the records of one journal snapshot, from a starting
// offset up to the end the journal had when the Reader was created.
// Records appended later need a fresh ReadFrom (compare cursor against
// End to know when to stop).
type Reader struct {
	f      *os.File
	pos    int64  // file position of the next record
	cursor uint64 // logical offset of the next record
	limit  uint64 // logical end at snapshot time
}

// ReadFrom returns a Reader over the records after the `from` offset.
// It fails with ErrTruncated (wrapped) when rotation has discarded the
// requested suffix — the caller's cursor predates the retained base.
// Records queued but not yet landed by the group-commit writer are
// flushed first, so the snapshot always covers the journal's logical
// end as of the call.
func (j *Journal) ReadFrom(from uint64) (*Reader, error) {
	j.mu.Lock()
	if from > j.end {
		end := j.end
		j.mu.Unlock()
		return nil, fmt.Errorf("journal: offset %d past end %d", from, end)
	}
	if err := j.flushLocked(); err != nil {
		j.mu.Unlock()
		return nil, err
	}
	base, end, path := j.base, j.phys, j.path
	j.mu.Unlock()
	if from < base {
		return nil, fmt.Errorf("%w: offset %d, base %d", ErrTruncated, from, base)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	// Re-validate against the descriptor actually opened: a concurrent
	// Rotate between the snapshot above and the Open lands us on the
	// rotated file, whose base may now exceed from.
	fbase, hdrLen, err := readHeader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if from < fbase {
		f.Close()
		return nil, fmt.Errorf("%w: offset %d, base %d", ErrTruncated, from, fbase)
	}
	return &Reader{f: f, pos: int64(hdrLen) + int64(from-fbase), cursor: from, limit: end}, nil
}

// Next returns the next record, or io.EOF at the snapshot's end.
func (r *Reader) Next() (Record, error) {
	if r.cursor >= r.limit {
		return Record{}, io.EOF
	}
	var lenb [4]byte
	if _, err := r.f.ReadAt(lenb[:], r.pos); err != nil {
		return Record{}, fmt.Errorf("journal: reading record length at %d: %w", r.cursor, err)
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n < 16 || n > maxRecord {
		return Record{}, fmt.Errorf("journal: implausible record length %d at offset %d", n, r.cursor)
	}
	body := make([]byte, n+4)
	if _, err := io.ReadFull(io.NewSectionReader(r.f, r.pos+4, int64(n)+4), body); err != nil {
		return Record{}, fmt.Errorf("journal: reading record at %d: %w", r.cursor, err)
	}
	if crc32.ChecksumIEEE(body[:n]) != binary.BigEndian.Uint32(body[n:]) {
		return Record{}, fmt.Errorf("journal: checksum mismatch at offset %d", r.cursor)
	}
	size := uint64(recordOverhead) + uint64(n) - 16
	r.pos += int64(size)
	r.cursor += size
	return Record{
		Seq:     binary.BigEndian.Uint64(body[0:8]),
		Stamp:   int64(binary.BigEndian.Uint64(body[8:16])),
		End:     r.cursor,
		Payload: body[16:n],
	}, nil
}

// Cursor returns the logical offset of the next record Next would
// return — after io.EOF, the caller's resume cursor.
func (r *Reader) Cursor() uint64 { return r.cursor }

// Close closes the reader's descriptor.
func (r *Reader) Close() error { return r.f.Close() }
