package server

import (
	"bytes"
	"strings"
	"testing"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/monitor"
)

// TestNameAddressing: node names are accepted anywhere reach/whatif/W
// take a numeric id, resolve to the same invariants (refcount dedup
// proves it), and unknown names are errors.
func TestNameAddressing(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	c.roundTrip(t, "node edge")
	c.roundTrip(t, "node fw")
	c.roundTrip(t, "node srv")
	c.roundTrip(t, "link 0 1")
	c.roundTrip(t, "link 1 2")
	c.roundTrip(t, "I 1 0 0 0 100 1")
	c.roundTrip(t, "I 2 1 1 0 100 1")

	if got := c.roundTrip(t, "reach edge srv"); got != "ok reach 1" {
		t.Fatalf("reach by name: %q", got)
	}
	if byID := c.roundTrip(t, "reach 0 2"); byID != c.roundTrip(t, "reach edge srv") {
		t.Fatalf("name and id resolution disagree")
	}
	// Mixed id/name arguments resolve too.
	if got := c.roundTrip(t, "reach 0 srv"); got != "ok reach 1" {
		t.Fatalf("mixed reach: %q", got)
	}
	if got := c.roundTrip(t, "reach nosuch srv"); !strings.HasPrefix(got, "err") {
		t.Fatalf("unknown name accepted: %q", got)
	}

	// whatif: numeric link id, or a node pair by id or name.
	want := c.roundTrip(t, "whatif 0")
	if got := c.roundTrip(t, "whatif edge fw"); got != want {
		t.Fatalf("whatif by names: %q, want %q", got, want)
	}
	if got := c.roundTrip(t, "whatif edge srv"); !strings.HasPrefix(got, "err no link") {
		t.Fatalf("whatif non-adjacent pair: %q", got)
	}

	// W specs: a named registration is THE SAME invariant as the numeric
	// one (same id via refcount dedup), for every spec position.
	byID := c.roundTrip(t, "W waypoint 0 2 1")
	byName := c.roundTrip(t, "W waypoint edge srv fw")
	if byID != byName || !strings.HasPrefix(byID, "ok watch 0 ") {
		t.Fatalf("waypoint dedup across addressing: %q vs %q", byID, byName)
	}
	if a, b := c.roundTrip(t, "W isolated 0,1 2"), c.roundTrip(t, "W isolated edge,fw srv"); a != b {
		t.Fatalf("isolated dedup across addressing: %q vs %q", a, b)
	}
	if a, b := c.roundTrip(t, "W blackholefree sinks=2"), c.roundTrip(t, "W blackholefree sinks=srv"); a != b {
		t.Fatalf("sink dedup across addressing: %q vs %q", a, b)
	}
	if got := c.roundTrip(t, "W reach edge nosuch"); !strings.HasPrefix(got, "err") {
		t.Fatalf("unknown name in spec accepted: %q", got)
	}

	// Status and event lines echo names, and the echoed spec parses back
	// (through the resolver) to the same invariant.
	w := dial(t, addr)
	defer w.close()
	if got := w.roundTrip(t, "watch"); got != "ok watching" {
		t.Fatalf("watch: %q", got)
	}
	if !w.r.Scan() || !strings.HasPrefix(w.r.Text(), "status 0 holds waypoint edge srv fw") {
		t.Fatalf("status line names: %q (%v)", w.r.Text(), w.r.Err())
	}
	f := strings.Fields(w.r.Text())
	echoed := strings.Join(f[3:7], " ") // "waypoint edge srv fw"
	if got := c.roundTrip(t, "W "+echoed); got != byID {
		t.Fatalf("echoed spec %q re-registers as %q, want %q", echoed, got, byID)
	}
}

// TestStateSeqContinuity: the state file carries the last published
// event sequence number, so a restored server resumes numbering where
// the previous incarnation stopped — a watcher's cursor keeps meaning
// the same stream position, and the post-restart gap covers only the
// genuinely missed window.
func TestStateSeqContinuity(t *testing.T) {
	s1 := New()
	a := s1.Graph().AddNode("a")
	b := s1.Graph().AddNode("b")
	cNode := s1.Graph().AddNode("c")
	l0 := s1.Graph().AddLink(a, b)
	l1 := s1.Graph().AddLink(b, cNode)
	var d core.Delta
	insert := func(s *Server, r core.Rule) {
		t.Helper()
		if err := s.Network().InsertRuleInto(r, &d); err != nil {
			t.Fatal(err)
		}
		s.Monitor().Apply(&d)
	}
	remove := func(s *Server, id core.RuleID) {
		t.Helper()
		if err := s.Network().RemoveRuleInto(id, &d); err != nil {
			t.Fatal(err)
		}
		s.Monitor().Apply(&d)
	}
	insert(s1, core.Rule{ID: 2, Source: b, Link: l1, Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	s1.Monitor().Register(monitor.Reachable{From: a, To: cNode})
	insert(s1, core.Rule{ID: 1, Source: a, Link: l0, Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1}) // seq 1: cleared
	remove(s1, 1)                                                                                         // seq 2: violation
	if got := s1.Monitor().LastSeq(); got != 2 {
		t.Fatalf("pre-save LastSeq = %d, want 2", got)
	}

	var buf bytes.Buffer
	if err := s1.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\nseq 2\n") {
		t.Fatalf("state file missing seq record:\n%s", buf.String())
	}

	s2 := New()
	if err := s2.LoadState(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if got := s2.Monitor().LastSeq(); got != 2 {
		t.Fatalf("restored LastSeq = %d, want 2", got)
	}
	// A watcher's cursor from before the restart is seamlessly current:
	// no gap, nothing to replay.
	if rep := s2.Monitor().EventsSince(2); rep.LostFrom != 0 || len(rep.Events) != 0 {
		t.Fatalf("cursor at restored head not seamless: %+v", rep)
	}
	// The next transition continues the numbering.
	insert(s2, core.Rule{ID: 1, Source: a, Link: s2.Graph().FindLink(a, b),
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	rep := s2.Monitor().EventsSince(2)
	if len(rep.Events) != 1 || rep.Events[0].Seq != 3 {
		t.Fatalf("post-restore event numbering: %+v", rep)
	}

	// Version-1 files (no seq record) still load, starting a fresh stream.
	v1 := strings.Replace(buf.String(), stateHeader, stateHeaderV1, 1)
	v1 = strings.Replace(v1, "seq 2\n", "", 1)
	s3 := New()
	if err := s3.LoadState(strings.NewReader(v1)); err != nil {
		t.Fatalf("v1 state refused: %v", err)
	}
	if got := s3.Monitor().LastSeq(); got != 0 {
		t.Fatalf("v1 restore invented a seq: %d", got)
	}
}
