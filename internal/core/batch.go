package core

// Batch updates: applying many rule insertions and removals as one atomic
// step. The paper observes (§6) that "the main loops over atoms in
// Algorithm 1 and 2 are highly parallelizable"; a batch makes that
// parallelism available on the update path itself. The batch is staged so
// that the only serial work is what must be serial:
//
//  1. validate every operation up front (all-or-nothing semantics);
//  2. create all atoms (CREATE_ATOMS+ for every insertion, |Δ| ≤ 2 each)
//     and clone owner state for split atoms — serial, since splits mutate
//     the shared boundary map M;
//  3. group the operations by atom over the now-final partition: each rule
//     expands to ⟦interval(r)⟧ exactly once, and k batch rules covering
//     the same atom produce one per-atom job instead of k full passes;
//  4. replay each atom's operations against its owner BSTs on a worker
//     pool — atoms are independent, so this fans out with no locking —
//     emitting the net label change per (source, atom);
//  5. apply the net label-bit changes and rule/GC bookkeeping serially.
//
// The resulting Delta is compacted: it records the net difference between
// the labels before and after the whole batch, so a bit that an early
// operation sets and a later operation clears does not appear at all, and
// one incremental loop/black-hole check over the merged delta replaces one
// check per rule. A batch is one atomic update; transient states between
// its operations are not observable and not checked.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"deltanet/internal/intervalmap"
	"deltanet/internal/netgraph"
)

// BatchOp is one element of a batch: a rule insertion (Insert true, Rule
// fully populated) or a removal (Insert false, only Rule.ID consulted).
// The layout deliberately mirrors trace.Op so replay tools convert
// trivially.
type BatchOp struct {
	Insert bool
	Rule   Rule
}

// InsertOp returns a BatchOp inserting r.
func InsertOp(r Rule) BatchOp { return BatchOp{Insert: true, Rule: r} }

// RemoveOp returns a BatchOp removing the rule with the given id.
func RemoveOp(id RuleID) BatchOp { return BatchOp{Rule: Rule{ID: id}} }

// batchItem is a validated operation: rule is fully resolved (for removals
// it points at the live rule being removed, so Match is authoritative).
type batchItem struct {
	insert bool
	rule   *Rule
}

// ApplyBatch applies ops in order as one atomic update, writing the net
// delta-graph of the whole batch into d. Validation runs before any engine
// state changes: on error the engine is untouched (except that drop links
// may have been lazily created for insertions naming NoLink) and d is
// reset but empty.
//
// The per-atom ownership work is deduplicated across the batch — k
// operations covering one atom become a single replay of that atom's owner
// BSTs — and fanned out over a worker pool (workers ≤ 0 selects
// GOMAXPROCS). The produced Delta has Op == OpBatch and compacted
// Added/Removed lists: only bits whose final value differs from their
// pre-batch value appear, in ascending atom order, so downstream
// incremental checks run once over the net change.
//
// With GC enabled, boundary collection is deferred to the end of the
// batch; the final forwarding behaviour matches the sequential execution,
// though atom identifiers may be assigned differently when a batch both
// removes and re-adds a boundary.
func (n *Network) ApplyBatch(ops []BatchOp, d *Delta, workers int) error {
	d.reset(0, OpBatch)
	if len(ops) == 0 {
		return nil
	}

	items, err := n.validateBatch(ops)
	if err != nil {
		return err
	}

	// Phase 2: create every atom the batch needs (serial; splits mutate M)
	// and clone owner state for split atoms exactly as Algorithm 1 does.
	for _, it := range items {
		if !it.insert {
			continue
		}
		split := n.m.CreateAtoms(it.rule.Match)
		d.NewAtoms = append(d.NewAtoms, split...)
		n.splits += int64(len(split))
		for _, sp := range split {
			oldOwner := n.owner[sp.Old]
			newOwner := n.ownerOf(sp.New)
			for source, bst := range oldOwner {
				newOwner[source] = bst.Clone()
				top := bst.Max().Value
				n.labelOf(top.Link).Add(int(sp.New))
			}
		}
	}

	// Phase 3: expand every operation over the final partition and group
	// by atom, preserving operation order within each atom's list. Each
	// interval is expanded once; overlapping rules share per-atom jobs.
	perAtom := map[intervalmap.AtomID][]int32{}
	maxAtom := intervalmap.AtomID(0)
	for i, it := range items {
		n.atomBuf = n.m.Atoms(it.rule.Match, n.atomBuf[:0])
		for _, alpha := range n.atomBuf {
			perAtom[alpha] = append(perAtom[alpha], int32(i))
			if alpha > maxAtom {
				maxAtom = alpha
			}
		}
	}
	// Pre-grow the owner slice so workers only ever write their own
	// element and never resize shared state.
	for int(maxAtom) >= len(n.owner) {
		n.owner = append(n.owner, nil)
	}

	atoms := make([]intervalmap.AtomID, 0, len(perAtom))
	for alpha := range perAtom {
		atoms = append(atoms, alpha)
	}
	sort.Slice(atoms, func(i, j int) bool { return atoms[i] < atoms[j] })

	// Phase 4: replay each atom's operations in parallel. Jobs write only
	// owner[α] for their own α and emit net label changes into their own
	// result slot, so the pool needs no locks.
	results := make([]atomResult, len(atoms))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(atoms) {
		workers = len(atoms)
	}
	if workers <= 1 {
		for i, alpha := range atoms {
			n.replayAtom(alpha, items, perAtom[alpha], &results[i])
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int, len(atoms))
		for i := range atoms {
			next <- i
		}
		close(next)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					n.replayAtom(atoms[i], items, perAtom[atoms[i]], &results[i])
				}
			}()
		}
		wg.Wait()
	}

	// Phase 5: apply the net label-bit changes (serial, deterministic:
	// ascending atom order) and per-rule bookkeeping in operation order.
	for i := range results {
		for _, la := range results[i].removed {
			n.labelOf(la.Link).Remove(int(la.Atom))
			d.Removed = append(d.Removed, la)
		}
		for _, la := range results[i].added {
			n.labelOf(la.Link).Add(int(la.Atom))
			d.Added = append(d.Added, la)
		}
	}
	// Boundary refcounts are updated in operation order, but collection
	// (deleting the bound from M and merging atoms) is deferred until all
	// operations are accounted for: a removal may zero a bound that a
	// later insertion in the same batch re-uses, and collecting eagerly
	// would merge away atoms the insertion's owner state was just laid
	// over.
	var deadBounds []uint64
	for _, it := range items {
		if it.insert {
			n.rules[it.rule.ID] = it.rule
			if n.gc {
				n.bounds[it.rule.Match.Lo]++
				n.bounds[it.rule.Match.Hi]++
			}
		} else {
			delete(n.rules, it.rule.ID)
			if n.gc {
				for _, b := range [2]uint64{it.rule.Match.Lo, it.rule.Match.Hi} {
					n.bounds[b]--
					if n.bounds[b] == 0 {
						deadBounds = append(deadBounds, b)
					}
				}
			}
		}
	}
	for _, b := range deadBounds {
		// Still zero (no later insertion revived it) and not already
		// collected via a duplicate candidate entry.
		if c, ok := n.bounds[b]; ok && c == 0 {
			delete(n.bounds, b)
			n.releaseBound(b)
		}
	}
	return nil
}

// validateBatch checks every operation against the engine state plus the
// batch's own earlier operations, resolving removals to their live rules
// and drop links for insertions. It mutates nothing but the graph's lazy
// drop links.
func (n *Network) validateBatch(ops []BatchOp) ([]batchItem, error) {
	items := make([]batchItem, 0, len(ops))
	// pending tracks ids touched by the batch: the rule while live, nil
	// after an intra-batch removal.
	pending := make(map[RuleID]*Rule, len(ops))
	for i, op := range ops {
		if op.Insert {
			r := op.Rule
			live, touched := pending[r.ID]
			if touched && live != nil {
				return nil, fmt.Errorf("%w: %d (op %d)", ErrDuplicateRule, r.ID, i)
			}
			if !touched {
				if _, dup := n.rules[r.ID]; dup {
					return nil, fmt.Errorf("%w: %d (op %d)", ErrDuplicateRule, r.ID, i)
				}
			}
			if r.Match.Empty() {
				return nil, fmt.Errorf("%w (op %d)", ErrEmptyMatch, i)
			}
			if !n.space.Contains(r.Match) {
				return nil, fmt.Errorf("%w: %v (op %d)", ErrOutOfSpace, r.Match, i)
			}
			if r.Link == netgraph.NoLink {
				r.Link = n.graph.DropLink(r.Source)
			} else if n.graph.Link(r.Link).Src != r.Source {
				return nil, fmt.Errorf("%w: rule %d source %d link %d (op %d)",
					ErrBadLink, r.ID, r.Source, r.Link, i)
			}
			rp := &r
			pending[r.ID] = rp
			items = append(items, batchItem{insert: true, rule: rp})
		} else {
			id := op.Rule.ID
			rp, touched := pending[id]
			if touched {
				if rp == nil {
					return nil, fmt.Errorf("%w: %d (op %d)", ErrUnknownRule, id, i)
				}
			} else {
				var ok bool
				rp, ok = n.rules[id]
				if !ok {
					return nil, fmt.Errorf("%w: %d (op %d)", ErrUnknownRule, id, i)
				}
			}
			pending[id] = nil
			items = append(items, batchItem{rule: rp})
		}
	}
	return items, nil
}

// atomResult is one per-atom job's net label changes.
type atomResult struct {
	added   []LinkAtom
	removed []LinkAtom
}

// replayAtom replays the batch operations covering atom alpha against its
// owner BSTs and records the net forwarding change per touched source: one
// Removed entry when the source's pre-batch out-link lost the atom, one
// Added entry when a new out-link gained it. Sources whose owning rule
// changed but whose out-link did not produce no entries — forwarding is
// unchanged, so no downstream check needs to look at them.
func (n *Network) replayAtom(alpha intervalmap.AtomID, items []batchItem, idxs []int32, res *atomResult) {
	ow := n.owner[alpha]
	if ow == nil {
		ow = map[netgraph.NodeID]*prioTree{}
		n.owner[alpha] = ow
	}
	// touched preserves first-touch order; prev is parallel to it. Batches
	// rarely touch more than a handful of sources per atom, so a linear
	// scan beats a map.
	var touched []netgraph.NodeID
	var prev []*Rule
	recordPrev := func(s netgraph.NodeID) {
		for _, t := range touched {
			if t == s {
				return
			}
		}
		var top *Rule
		if bst := ow[s]; bst != nil && !bst.Empty() {
			top = bst.Max().Value
		}
		touched = append(touched, s)
		prev = append(prev, top)
	}
	for _, i := range idxs {
		it := items[i]
		s := it.rule.Source
		recordPrev(s)
		if it.insert {
			bst := ow[s]
			if bst == nil {
				bst = newPrioTree()
				ow[s] = bst
			}
			bst.Insert(it.rule.key(), it.rule)
		} else if bst := ow[s]; bst != nil {
			bst.Delete(it.rule.key())
			if bst.Empty() {
				delete(ow, s)
			}
		}
	}
	for i, s := range touched {
		var after *Rule
		if bst := ow[s]; bst != nil && !bst.Empty() {
			after = bst.Max().Value
		}
		p := prev[i]
		switch {
		case p == nil && after == nil:
		case p == nil:
			res.added = append(res.added, LinkAtom{Link: after.Link, Atom: alpha})
		case after == nil:
			res.removed = append(res.removed, LinkAtom{Link: p.Link, Atom: alpha})
		case p.Link != after.Link:
			res.removed = append(res.removed, LinkAtom{Link: p.Link, Atom: alpha})
			res.added = append(res.added, LinkAtom{Link: after.Link, Atom: alpha})
		}
	}
}
