package monitor

import (
	"sync"
	"sync/atomic"

	"deltanet/internal/bitset"
)

// indexShards is the number of link shards in the dependency index. Links
// are dense integers, so link % indexShards spreads a topology's links
// evenly; 16 shards keep lock contention negligible up to hundreds of
// concurrent registrations without bloating the per-monitor footprint.
const indexShards = 16

// depIndex is the monitor's sharded dependency index: for every link, the
// set of invariant slots whose last evaluation depended on it. Dirty
// marking on an update is then one bitmap union per changed link instead
// of a scan over every registered invariant — the partitioned-state design
// (NFork's lesson applied to the monitor) that makes 10⁵ standing
// invariants affordable.
//
// Links born after an invariant's last evaluation must conservatively
// dirty it (a new out-link can extend reachability the old evaluation
// never saw). The index realizes that rule structurally: when it grows to
// cover new links, each new link's bitmap is seeded with every currently
// dep-tracked slot ("born dirty"), and an invariant's next evaluation
// clears the seeds its fresh dependency set does not confirm.
//
// Locking: each shard has its own RWMutex; growth is serialized by growMu.
// Shard mutexes are leaves — nothing else is acquired under them — so
// callers may hold any of the monitor's other locks.
type depIndex struct {
	growMu sync.Mutex   // serializes growth
	upTo   atomic.Int64 // links [0, upTo) have bitmaps

	shards [indexShards]indexShard
}

type indexShard struct {
	mu sync.RWMutex
	// byLink[link/indexShards] is the slot bitmap of link; the shard owns
	// links ≡ its index (mod indexShards).
	byLink []*bitset.Set
}

// growTo extends the index to cover links [0, numLinks), seeding each new
// link's bitmap with seed (the dep-tracked slots at the time of growth —
// see the born-dirty rule above). Callers pass a snapshot of the
// monitor's depSlots taken under regMu.
func (ix *depIndex) growTo(numLinks int, seed *bitset.Set) {
	if int(ix.upTo.Load()) >= numLinks {
		return
	}
	ix.growMu.Lock()
	defer ix.growMu.Unlock()
	from := int(ix.upTo.Load())
	if from >= numLinks {
		return
	}
	for l := from; l < numLinks; l++ {
		sh := &ix.shards[l%indexShards]
		sh.mu.Lock()
		for len(sh.byLink) <= l/indexShards {
			sh.byLink = append(sh.byLink, nil)
		}
		sh.byLink[l/indexShards] = seed.Clone()
		sh.mu.Unlock()
	}
	ix.upTo.Store(int64(numLinks))
}

// collect unions into dirty the slot bitmaps of every changed link. Links
// ≥ upTo are ignored; callers growTo first, so none exist by the time a
// delta naming them is applied.
func (ix *depIndex) collect(changed, dirty *bitset.Set) {
	changed.ForEach(func(l int) bool {
		sh := &ix.shards[l%indexShards]
		sh.mu.RLock()
		if i := l / indexShards; i < len(sh.byLink) && sh.byLink[i] != nil {
			dirty.UnionWith(sh.byLink[i])
		}
		sh.mu.RUnlock()
		return true
	})
}

func (ix *depIndex) set(link, slot int) {
	sh := &ix.shards[link%indexShards]
	sh.mu.Lock()
	if i := link / indexShards; i < len(sh.byLink) && sh.byLink[i] != nil {
		sh.byLink[i].Add(slot)
	}
	sh.mu.Unlock()
}

func (ix *depIndex) clear(link, slot int) {
	sh := &ix.shards[link%indexShards]
	sh.mu.Lock()
	if i := link / indexShards; i < len(sh.byLink) && sh.byLink[i] != nil {
		sh.byLink[i].Remove(slot)
	}
	sh.mu.Unlock()
}

// insert indexes a slot's freshly recorded dependency set (deps non-nil).
func (ix *depIndex) insert(slot int, deps *bitset.Set) {
	deps.ForEach(func(l int) bool {
		ix.set(l, slot)
		return true
	})
}

// update re-indexes a slot after a re-evaluation: oldDeps/oldUpTo are the
// dependency set and link count of the previous evaluation (the slot's
// bits live in oldDeps plus the born-dirty range [oldUpTo, upTo)), newDeps
// is the fresh set. A nil set means "not dep-tracked" on that side.
func (ix *depIndex) update(slot int, oldDeps *bitset.Set, oldUpTo int, newDeps *bitset.Set) {
	upTo := int(ix.upTo.Load())
	in := func(s *bitset.Set, l int) bool { return s != nil && s.Contains(l) }
	// Clear stale bits: previous deps and born-dirty seeds the new
	// evaluation did not confirm.
	if oldDeps != nil {
		oldDeps.ForEach(func(l int) bool {
			if !in(newDeps, l) {
				ix.clear(l, slot)
			}
			return true
		})
		for l := oldUpTo; l < upTo; l++ {
			if !in(newDeps, l) {
				ix.clear(l, slot)
			}
		}
	}
	// Set fresh bits; re-setting a surviving bit or seed is harmless.
	if newDeps != nil {
		newDeps.ForEach(func(l int) bool {
			if !in(oldDeps, l) {
				ix.set(l, slot)
			}
			return true
		})
	}
}

// shardPops returns each shard's total bit population (the sum over the
// shard's link bitmaps of their set-bit counts) — the operator-facing
// load signal Stats exposes: a shard far above the rest points at a hot
// link whose bitmap dominates dirty-marking cost.
func (ix *depIndex) shardPops() []int {
	pops := make([]int, indexShards)
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.RLock()
		n := 0
		for _, bm := range sh.byLink {
			if bm != nil {
				n += bm.Len()
			}
		}
		sh.mu.RUnlock()
		pops[i] = n
	}
	return pops
}

// removeSlot erases every bit a slot may own: its recorded deps plus the
// born-dirty range. Must run before the slot number is reused.
func (ix *depIndex) removeSlot(slot int, deps *bitset.Set, depsUpTo int) {
	if deps != nil {
		deps.ForEach(func(l int) bool {
			ix.clear(l, slot)
			return true
		})
	}
	for l, upTo := depsUpTo, int(ix.upTo.Load()); l < upTo; l++ {
		ix.clear(l, slot)
	}
}
