package topo

import (
	"testing"

	"deltanet/internal/netgraph"
)

func TestBuildKnownNames(t *testing.T) {
	want := map[string]int{ // node counts per Table 2's shape
		"berkeley": 23,
		"inet":     316,
		"rf1755":   87,
		"rf3257":   161,
		"rf6461":   138,
		"airtel":   16,
		"4switch":  4,
	}
	for _, name := range Names() {
		g, err := Build(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumNodes() != want[name] {
			t.Errorf("%s: nodes=%d want %d", name, g.NumNodes(), want[name])
		}
		if g.NumLinks() == 0 {
			t.Errorf("%s: no links", name)
		}
		checkBidirectional(t, name, g)
		checkConnected(t, name, g)
	}
	if _, err := Build("nonsense"); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func checkBidirectional(t *testing.T, name string, g *netgraph.Graph) {
	t.Helper()
	for _, l := range g.Links() {
		if g.FindLink(l.Dst, l.Src) == netgraph.NoLink {
			t.Fatalf("%s: link %d->%d has no reverse", name, l.Src, l.Dst)
		}
	}
}

func checkConnected(t *testing.T, name string, g *netgraph.Graph) {
	t.Helper()
	seen := make([]bool, g.NumNodes())
	stack := []netgraph.NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, lid := range g.Out(v) {
			w := g.Link(lid).Dst
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	if count != g.NumNodes() {
		t.Fatalf("%s: only %d/%d nodes reachable", name, count, g.NumNodes())
	}
}

func TestRing(t *testing.T) {
	g := Ring(4)
	if g.NumNodes() != 4 || g.NumLinks() != 8 {
		t.Fatalf("ring: %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	// Each node has exactly two out-links.
	for v := netgraph.NodeID(0); int(v) < 4; v++ {
		if len(g.Out(v)) != 2 {
			t.Fatalf("node %d out-degree %d", v, len(g.Out(v)))
		}
	}
}

func TestASGraphDeterministic(t *testing.T) {
	a := ASGraph(50, 3, 7)
	b := ASGraph(50, 3, 7)
	if a.NumNodes() != b.NumNodes() || a.NumLinks() != b.NumLinks() {
		t.Fatal("same seed differs")
	}
	for _, l := range a.Links() {
		bl := b.Link(l.ID)
		if bl.Src != l.Src || bl.Dst != l.Dst {
			t.Fatal("link sets differ for same seed")
		}
	}
	c := ASGraph(50, 3, 8)
	if c.NumLinks() == 0 {
		t.Fatal("empty graph")
	}
}

func TestASGraphDegreeSkew(t *testing.T) {
	g := ASGraph(200, 2, 3)
	maxDeg, minDeg := 0, 1<<30
	for v := netgraph.NodeID(0); int(v) < g.NumNodes(); v++ {
		d := len(g.Out(v))
		if d > maxDeg {
			maxDeg = d
		}
		if d < minDeg {
			minDeg = d
		}
	}
	// Preferential attachment produces hubs.
	if maxDeg < 4*minDeg {
		t.Fatalf("no degree skew: max=%d min=%d", maxDeg, minDeg)
	}
}

func TestASGraphSmall(t *testing.T) {
	g := ASGraph(2, 5, 1) // m > n-1: clique clamps
	if g.NumNodes() != 2 {
		t.Fatalf("nodes=%d", g.NumNodes())
	}
	g = ASGraph(5, 0, 1) // m < 1 clamps to 1
	if g.NumNodes() != 5 {
		t.Fatalf("nodes=%d", g.NumNodes())
	}
}

func TestCampusShape(t *testing.T) {
	g := Campus(3, 6, 14)
	if g.NumNodes() != 23 {
		t.Fatalf("nodes=%d", g.NumNodes())
	}
	// Access switches are dual-homed: out-degree 2.
	a := g.NodeByName("acc1")
	if len(g.Out(a)) != 2 {
		t.Fatalf("acc1 out-degree %d", len(g.Out(a)))
	}
}

func TestSwitchNodesExcludesDrop(t *testing.T) {
	g := Ring(3)
	all := SwitchNodes(g)
	if len(all) != 3 {
		t.Fatalf("switches=%d", len(all))
	}
	g.DropLink(all[0])
	if got := SwitchNodes(g); len(got) != 3 {
		t.Fatalf("with drop sink: switches=%d", len(got))
	}
}
