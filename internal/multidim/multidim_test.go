package multidim

import (
	"math/rand"
	"testing"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

func iv(lo, hi uint64) ipnet.Interval { return ipnet.Interval{Lo: lo, Hi: hi} }

// twoDim builds a 2-field network: 16-bit dstIP-like field × 8-bit
// port-like field, over a 3-node line.
func twoDim() (*Network, *netgraph.Graph, []netgraph.NodeID, []netgraph.LinkID) {
	g := netgraph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab := g.AddLink(a, b)
	ac := g.AddLink(a, c)
	bc := g.AddLink(b, c)
	n := NewNetwork(g, []ipnet.Space{{Bits: 16}, {Bits: 8}})
	return n, g, []netgraph.NodeID{a, b, c}, []netgraph.LinkID{ab, ac, bc}
}

func TestTwoFieldBasics(t *testing.T) {
	n, _, nodes, links := twoDim()
	// Rule 1: dst [0:1000) × port [0:50) -> ab.
	if err := n.InsertRule(Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: []ipnet.Interval{iv(0, 1000), iv(0, 50)}, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	// Rule 2 (higher prio): dst [500:2000) × port [25:75) -> ac.
	if err := n.InsertRule(Rule{ID: 2, Source: nodes[0], Link: links[1],
		Match: []ipnet.Interval{iv(500, 2000), iv(25, 75)}, Priority: 5}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dst, port uint64
		want      netgraph.LinkID
	}{
		{0, 0, links[0]},     // only rule 1
		{600, 30, links[1]},  // overlap: rule 2 wins
		{600, 10, links[0]},  // dst overlaps, port only rule 1
		{1500, 30, links[1]}, // only rule 2
		{1500, 80, netgraph.NoLink},
		{3000, 30, netgraph.NoLink},
	}
	for _, c := range cases {
		if got := n.ForwardLink(nodes[0], []uint64{c.dst, c.port}); got != c.want {
			t.Fatalf("(%d,%d): got link %d want %d", c.dst, c.port, got, c.want)
		}
	}
	if n.Dims() != 2 || n.NumRules() != 2 {
		t.Fatal("accessors")
	}
	apd := n.AtomsPerDim()
	if len(apd) != 2 || apd[0] < 3 || apd[1] < 3 {
		t.Fatalf("atoms per dim %v", apd)
	}
	if n.TupleCount() == 0 || n.LabelSize(links[0]) == 0 {
		t.Fatal("tuple state missing")
	}
}

func TestInsertErrorsAndRemove(t *testing.T) {
	n, _, nodes, links := twoDim()
	if err := n.InsertRule(Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: []ipnet.Interval{iv(0, 10)}, Priority: 1}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := n.InsertRule(Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: []ipnet.Interval{iv(0, 10), iv(0, 1<<20)}, Priority: 1}); err == nil {
		t.Fatal("out-of-space dimension accepted")
	}
	if err := n.InsertRule(Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: []ipnet.Interval{iv(0, 10), iv(0, 10)}, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.InsertRule(Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: []ipnet.Interval{iv(0, 10), iv(0, 10)}, Priority: 1}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := n.RemoveRule(9); err == nil {
		t.Fatal("unknown removal accepted")
	}
	if err := n.RemoveRule(1); err != nil {
		t.Fatal(err)
	}
	if n.NumRules() != 0 || n.TupleCount() != 0 {
		t.Fatalf("state left: rules=%d tuples=%d", n.NumRules(), n.TupleCount())
	}
}

func TestDropRule2D(t *testing.T) {
	n, g, nodes, links := twoDim()
	n.InsertRule(Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: []ipnet.Interval{iv(0, 100), iv(0, 100)}, Priority: 1})
	n.InsertRule(Rule{ID: 2, Source: nodes[0], Link: netgraph.NoLink,
		Match: []ipnet.Interval{iv(50, 60), iv(50, 60)}, Priority: 9})
	got := n.ForwardLink(nodes[0], []uint64{55, 55})
	if !g.IsDropLink(got) {
		t.Fatalf("expected drop link, got %d", got)
	}
	if n.ForwardLink(nodes[0], []uint64{55, 10}) != links[0] {
		t.Fatal("non-dropped coordinates misrouted")
	}
}

func TestOverlapDegree(t *testing.T) {
	n, _, nodes, links := twoDim()
	n.InsertRule(Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: []ipnet.Interval{iv(0, 100), iv(0, 100)}, Priority: 1})
	n.InsertRule(Rule{ID: 2, Source: nodes[0], Link: links[0],
		Match: []ipnet.Interval{iv(50, 150), iv(50, 150)}, Priority: 2})
	// Overlaps dim 0 but not dim 1: no full overlap.
	n.InsertRule(Rule{ID: 3, Source: nodes[0], Link: links[0],
		Match: []ipnet.Interval{iv(0, 100), iv(200, 250)}, Priority: 3})
	probe := Rule{ID: 99, Source: nodes[0],
		Match: []ipnet.Interval{iv(0, 60), iv(0, 60)}}
	if got := n.OverlapDegree(probe); got != 2 {
		t.Fatalf("OverlapDegree=%d want 2", got)
	}
}

// brute2d is the reference: linear scan over rules, per concrete value
// vector.
type brute2d struct{ rules map[core.RuleID]Rule }

func (b *brute2d) forward(v netgraph.NodeID, vals []uint64) netgraph.LinkID {
	var best *Rule
	for id := range b.rules {
		r := b.rules[id]
		if r.Source != v {
			continue
		}
		ok := true
		for d := range vals {
			if !r.Match[d].Contains(vals[d]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if best == nil || best.Priority < r.Priority ||
			(best.Priority == r.Priority && best.ID < r.ID) {
			cp := r
			best = &cp
		}
	}
	if best == nil {
		return netgraph.NoLink
	}
	return best.Link
}

func TestRandomized2DVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n, g, nodes, links := twoDim()
	b := &brute2d{rules: map[core.RuleID]Rule{}}
	live := []core.RuleID{}
	nextID := core.RuleID(1)
	for op := 0; op < 250; op++ {
		if len(live) == 0 || rng.Intn(100) < 60 {
			l := links[rng.Intn(len(links))]
			src := g.Link(l).Src
			lo0 := uint64(rng.Intn(1 << 14))
			lo1 := uint64(rng.Intn(200))
			r := Rule{ID: nextID, Source: src, Link: l,
				Match: []ipnet.Interval{
					iv(lo0, lo0+1+uint64(rng.Intn(1<<14))),
					iv(lo1, lo1+1+uint64(rng.Intn(55))),
				},
				Priority: core.Priority(rng.Intn(20))}
			nextID++
			if err := n.InsertRule(r); err != nil {
				t.Fatal(err)
			}
			rr := r
			if rr.Link == netgraph.NoLink {
				rr.Link = g.DropLink(src)
			}
			b.rules[r.ID] = rr
			live = append(live, r.ID)
		} else {
			k := rng.Intn(len(live))
			id := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := n.RemoveRule(id); err != nil {
				t.Fatal(err)
			}
			delete(b.rules, id)
		}
		if op%17 != 0 {
			continue
		}
		for probe := 0; probe < 60; probe++ {
			vals := []uint64{uint64(rng.Intn(1 << 16)), uint64(rng.Intn(256))}
			for _, v := range nodes {
				want := b.forward(v, vals)
				got := n.ForwardLink(v, vals)
				if got != want {
					t.Fatalf("op %d node %d vals %v: got %d want %d", op, v, vals, got, want)
				}
			}
		}
	}
}

// TestTupleGrowth demonstrates the naive approach's cross-product cost
// the paper warns about: atoms multiply across dimensions.
func TestTupleGrowth(t *testing.T) {
	n, _, nodes, links := twoDim()
	for i := 0; i < 10; i++ {
		if err := n.InsertRule(Rule{ID: core.RuleID(i + 1), Source: nodes[0], Link: links[0],
			Match: []ipnet.Interval{
				iv(uint64(i*100), uint64(i*100+150)), // overlapping in dim 0
				iv(uint64(i*10), uint64(i*10+15)),    // overlapping in dim 1
			},
			Priority: core.Priority(i)}); err != nil {
			t.Fatal(err)
		}
	}
	apd := n.AtomsPerDim()
	if n.TupleCount() <= apd[0] && n.TupleCount() <= apd[1] {
		t.Fatalf("expected cross-product growth: tuples=%d atoms=%v", n.TupleCount(), apd)
	}
}

func BenchmarkInsert2D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := netgraph.New()
	s := g.AddNode("s")
	l := g.AddLink(s, g.AddNode("d"))
	n := NewNetwork(g, []ipnet.Space{{Bits: 16}, {Bits: 8}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo0 := uint64(rng.Intn(1 << 14))
		lo1 := uint64(rng.Intn(200))
		if err := n.InsertRule(Rule{ID: core.RuleID(i + 1), Source: s, Link: l,
			Match: []ipnet.Interval{
				iv(lo0, lo0+1+uint64(rng.Intn(1<<10))),
				iv(lo1, lo1+1+uint64(rng.Intn(20))),
			},
			Priority: core.Priority(rng.Intn(100))}); err != nil {
			b.Fatal(err)
		}
	}
}
