// Command dnquery answers reachability and "what if" queries against a
// consistent data plane built from a dataset or trace file — the
// Datalog-style use cases of the paper's design goal 3 (§2.2, §4.3.2) —
// and tails standing-invariant events from a running dnserve.
//
// Usage:
//
//	dnquery [-scale f] [-trace file] <dataset> reach <nodeA> <nodeB>
//	dnquery [-scale f] [-trace file] <dataset> whatif <nodeA> <nodeB>
//	dnquery [-scale f] [-trace file] <dataset> loops
//	dnquery [-scale f] [-trace file] <dataset> allpairs
//	dnquery watch <addr> [<spec> ...]
//	dnquery metrics <url|host:port>
//
// Node arguments are node names from the topology (e.g. "s1", "delhi").
// With -trace, the dataset argument is ignored and the trace file is used.
//
// The watch subcommand connects to a dnserve instance, registers each
// spec as a standing invariant (the server's W grammar, e.g. "reach 0 2",
// "waypoint 0 3 1", "isolated 0,1 4,5", "loopfree", "blackholefree";
// node positions accept names as well as ids, and the server echoes
// names back in status and event lines),
// prints the server's status snapshot of every registered invariant, then
// streams verdict-transition events to stdout. With no specs it reports
// and follows the invariants other clients registered. The watch is
// durable: on disconnect it reconnects (bounded retries with backoff),
// re-registers its specs, and resumes with "watch since <seq>" from the
// last event sequence number it saw, so a dnserve restart — e.g. one
// bounced around a -state save/restore — costs no missed transitions as
// long as the server's event backlog still covers the gap (and an
// explicit gap line plus a fresh snapshot when it does not).
//
// The metrics subcommand fetches a dnserve admin endpoint's /metrics
// page (a bare host:port is expanded to http://host:port/metrics),
// strictly validates the Prometheus text exposition, and prints a
// per-family summary — the same validator the CI smoke test uses, so
// "dnquery metrics" passing means a scraper will parse the page.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/experiments"
	"deltanet/internal/intervalmap"
	"deltanet/internal/ipnet"
	"deltanet/internal/metrics"
	"deltanet/internal/netgraph"
	"deltanet/internal/trace"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	traceFile := flag.String("trace", "", "replay this trace file instead of generating a dataset")
	flag.Parse()
	args := flag.Args()
	if len(args) >= 2 && args[0] == "watch" {
		watch(args[1], args[2:])
		return
	}
	if len(args) == 2 && args[0] == "metrics" {
		scrapeMetrics(args[1])
		return
	}
	if len(args) < 2 {
		usage()
	}
	dataset, verb := args[0], args[1]

	var n *core.Network
	var g *netgraph.Graph
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			die(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			die(err)
		}
		n = core.NewNetwork(tr.Graph, core.Options{})
		var d core.Delta
		for _, op := range tr.Ops {
			if op.Insert {
				if err := trace.Apply(n, op, &d); err != nil {
					die(err)
				}
			}
		}
		g = tr.Graph
	} else {
		var err error
		var tr *trace.Trace
		n, tr, err = experiments.BuildConsistentDataPlane(dataset, *scale)
		if err != nil {
			die(err)
		}
		g = tr.Graph
	}

	switch verb {
	case "reach":
		if len(args) != 4 {
			usage()
		}
		a, b := node(g, args[2]), node(g, args[3])
		atoms := check.Reachable(n, a, b)
		fmt.Printf("%d atom(s) can flow %s -> %s:\n", atoms.Len(), args[2], args[3])
		printRanges(n, atoms)
	case "whatif":
		if len(args) != 4 {
			usage()
		}
		a, b := node(g, args[2]), node(g, args[3])
		l := g.FindLink(a, b)
		if l == netgraph.NoLink {
			die(fmt.Errorf("no link %s -> %s", args[2], args[3]))
		}
		sub := check.AffectedByLinkFailure(n, l)
		fmt.Printf("failing %s -> %s affects %d atom(s) across %d labelled edge(s)\n",
			args[2], args[3], sub.Affected.Len(), sub.NumEdges())
		loops := check.LoopsInSubgraph(n, sub)
		fmt.Printf("loops among affected flows: %d\n", len(loops))
	case "loops":
		loops := check.FindLoopsAll(n)
		fmt.Printf("%d forwarding loop(s) in the data plane\n", len(loops))
		for i, l := range loops {
			if i >= 10 {
				fmt.Printf("... and %d more\n", len(loops)-10)
				break
			}
			iv, _ := n.AtomInterval(l.Atom)
			fmt.Printf("  loop for %v through %d nodes\n", iv, len(l.Nodes)-1)
		}
	case "allpairs":
		r := check.AllPairsParallel(n, 0)
		pairs, nonEmpty := 0, 0
		for i := range r {
			for j := range r[i] {
				if i == j {
					continue
				}
				pairs++
				if !r[i][j].Empty() {
					nonEmpty++
				}
			}
		}
		fmt.Printf("all-pairs reachability: %d/%d ordered pairs connected\n", nonEmpty, pairs)
	default:
		usage()
	}
}

func printRanges(n *core.Network, atoms interface {
	Contains(int) bool
	Len() int
}) {
	count := 0
	n.ForEachAtom(func(id intervalmap.AtomID, iv ipnet.Interval) bool {
		if !atoms.Contains(int(id)) {
			return true
		}
		count++
		if count > 20 {
			return false
		}
		lo := ipnet.FormatAddr(iv.Lo)
		fmt.Printf("  %v  (%s ...)\n", iv, lo)
		return true
	})
	if count > 20 {
		fmt.Printf("  ... and %d more\n", atoms.Len()-20)
	}
}

// watchRetries is how many consecutive failed reconnect attempts watch
// tolerates before giving up (with backoff growing to watchBackoffMax,
// about half a minute of server downtime in total); a session that
// streams at least one line resets the counter.
const (
	watchRetries    = 10
	watchBackoffMax = 3 * time.Second
)

// watch registers the given invariant specs with a dnserve instance and
// tails the event stream to stdout. The session is durable: it records
// the seq=<n> cursor of every event line, and when the connection drops
// (server restart, network blip) it reconnects, re-registers the specs,
// and resumes with "watch since <lastSeq>" — the server replays the
// missed suffix, or sends an explicit gap line plus a fresh status
// snapshot when the event backlog has truncated it.
func watch(addr string, specs []string) {
	var lastSeq uint64
	for attempt := 0; ; attempt++ {
		// Resume only with a real cursor. A session that never saw an
		// event line leaves lastSeq at 0, and "watch since 0" would
		// replay the server's entire pre-connection backlog as if those
		// historical transitions were new; a plain "watch" re-anchors on
		// the status snapshot instead.
		streamed, err := watchSession(addr, specs, lastSeq > 0, &lastSeq)
		if streamed {
			attempt = 0
		}
		if err == nil {
			return // interrupted locally, not by the server
		}
		if attempt >= watchRetries {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "watch: %v; reconnecting (attempt %d/%d)\n", err, attempt+1, watchRetries)
		backoff := time.Duration(attempt+1) * 500 * time.Millisecond
		if backoff > watchBackoffMax {
			backoff = watchBackoffMax
		}
		time.Sleep(backoff)
	}
}

// watchSession runs one connection's worth of watching: register specs,
// enter (possibly resuming) watch mode, stream lines until the
// connection ends. It reports whether any stream line arrived and
// updates *lastSeq with the newest event sequence number seen.
func watchSession(addr string, specs []string, resume bool, lastSeq *uint64) (streamed bool, err error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	r := bufio.NewScanner(conn)
	for _, spec := range specs {
		if _, err := fmt.Fprintln(conn, "W "+spec); err != nil {
			return false, err
		}
		if !r.Scan() {
			return false, fmt.Errorf("connection closed registering %q", spec)
		}
		resp := r.Text()
		if strings.HasPrefix(resp, "err") {
			die(fmt.Errorf("register %q: %s", spec, resp)) // not retryable
		}
		fmt.Printf("%s  (%s)\n", resp, spec)
	}
	req := "watch"
	if resume {
		req = fmt.Sprintf("watch since %d", *lastSeq)
	}
	if _, err := fmt.Fprintln(conn, req); err != nil {
		return false, err
	}
	if !r.Scan() || r.Text() != "ok watching" {
		return false, fmt.Errorf("%s: %q", req, r.Text())
	}
	if resume {
		fmt.Printf("watching; resumed after seq %d:\n", *lastSeq)
	} else {
		fmt.Println("watching; streaming transition events:")
	}
	for r.Scan() {
		line := r.Text()
		fmt.Println(line)
		streamed = true
		// The newest event line IS the cursor — taken unconditionally,
		// not maxed, because a server restarted from a state file starts
		// a fresh stream at seq 1 and a stale high cursor would pin every
		// future resume to a gap.
		if seq, ok := eventSeq(line); ok {
			*lastSeq = seq
		}
	}
	if err := r.Err(); err != nil {
		return streamed, err
	}
	return streamed, fmt.Errorf("connection closed by server")
}

// scrapeMetrics fetches target's Prometheus exposition, validates it
// strictly, and prints a per-family summary. A target without a scheme
// is treated as host:port and expanded to http://host:port/metrics.
func scrapeMetrics(target string) {
	url := target
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(strings.TrimPrefix(url, "http://"), "/") {
		url += "/metrics"
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		die(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		die(fmt.Errorf("GET %s: %s", url, resp.Status))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		die(err)
	}
	if err := metrics.ValidateExposition(bytes.NewReader(body)); err != nil {
		die(fmt.Errorf("invalid exposition from %s: %v", url, err))
	}
	families, samples := 0, 0
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			families++
		case line == "" || strings.HasPrefix(line, "#"):
		default:
			samples++
		}
	}
	fmt.Printf("ok: %s valid exposition, %d families, %d samples\n", url, families, samples)
}

// eventSeq extracts the seq=<n> cursor from an event line.
func eventSeq(line string) (uint64, bool) {
	if !strings.HasPrefix(line, "event ") {
		return 0, false
	}
	for _, f := range strings.Fields(line) {
		if rest, ok := strings.CutPrefix(f, "seq="); ok {
			v, err := strconv.ParseUint(rest, 10, 64)
			return v, err == nil
		}
	}
	return 0, false
}

func node(g *netgraph.Graph, name string) netgraph.NodeID {
	id := g.NodeByName(name)
	if id == netgraph.NoNode {
		die(fmt.Errorf("unknown node %q", name))
	}
	return id
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dnquery [-scale f] [-trace file] <dataset> reach <nodeA> <nodeB>
  dnquery [-scale f] [-trace file] <dataset> whatif <nodeA> <nodeB>
  dnquery [-scale f] [-trace file] <dataset> loops
  dnquery [-scale f] [-trace file] <dataset> allpairs
  dnquery watch <addr> [<spec> ...]
  dnquery metrics <url|host:port>`)
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
