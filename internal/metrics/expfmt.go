package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateExposition parses r as Prometheus text exposition format and
// returns the first structural error, or nil. It is intentionally
// strict about the things a scraper would choke on: malformed names and
// labels, unparseable values, TYPE lines after samples of the same
// family, duplicate TYPE lines, histogram series without an `le` label,
// and non-cumulative `_bucket` sequences within a series. It is the
// check behind `dnquery metrics` and the CI admin-endpoint smoke.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := map[string]string{}    // family → declared TYPE
	sampled := map[string]bool{}    // family → has emitted samples
	lastCum := map[string]float64{} // histogram series (less le) → last cumulative bucket value
	families := 0
	samples := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			if kind == "TYPE" {
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if sampled[name] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, rest)
				}
				types[name] = rest
				families++
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		samples++
		fam := familyOf(name, types)
		sampled[fam] = true
		if types[fam] == "histogram" && strings.HasSuffix(name, "_bucket") {
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket %s missing le label", lineNo, name)
			}
			if le != "+Inf" {
				if _, err := strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("line %d: bad le value %q", lineNo, le)
				}
			}
			key := seriesKeyLessLE(name, labels)
			if prev, seen := lastCum[key]; seen && value < prev {
				return fmt.Errorf("line %d: %s not cumulative: %g after %g", lineNo, key, value, prev)
			}
			lastCum[key] = value
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if families == 0 || samples == 0 {
		return fmt.Errorf("no metric families parsed (%d families, %d samples)", families, samples)
	}
	return nil
}

// familyOf maps a sample name to its declared family, peeling histogram
// and summary suffixes.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, found := strings.CutSuffix(name, suf); found {
			if _, ok := types[base]; ok {
				return base
			}
		}
	}
	return name
}

// parseComment parses "# HELP name text" / "# TYPE name type" lines.
// Other comments are allowed and returned with kind "".
func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	switch {
	case strings.HasPrefix(body, "HELP "):
		fields := strings.SplitN(body[len("HELP "):], " ", 2)
		if !validName(fields[0]) {
			return "", "", "", fmt.Errorf("HELP with invalid metric name %q", fields[0])
		}
		if len(fields) == 2 {
			rest = fields[1]
		}
		return "HELP", fields[0], rest, nil
	case strings.HasPrefix(body, "TYPE "):
		fields := strings.Fields(body[len("TYPE "):])
		if len(fields) != 2 {
			return "", "", "", fmt.Errorf("malformed TYPE line %q", line)
		}
		if !validName(fields[0]) {
			return "", "", "", fmt.Errorf("TYPE with invalid metric name %q", fields[0])
		}
		return "TYPE", fields[0], fields[1], nil
	default:
		return "", "", "", nil
	}
}

// parseSample parses one sample line: name{labels} value [timestamp].
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name = line[:i]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels = map[string]string{}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		// Find the closing brace outside quoted label values.
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], labels); err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value [timestamp] after %q", name)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parseLabels parses `k1="v1",k2="v2"` into out.
func parseLabels(s string, out map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label pair missing '=' in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !validName(key) || strings.Contains(key, ":") {
			return fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return fmt.Errorf("label value for %q not quoted", key)
		}
		val := strings.Builder{}
		j := 1
		for ; j < len(s); j++ {
			if s[j] == '\\' {
				j++
				if j >= len(s) {
					return fmt.Errorf("dangling escape in label value for %q", key)
				}
				switch s[j] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in label value for %q", s[j], key)
				}
				continue
			}
			if s[j] == '"' {
				break
			}
			val.WriteByte(s[j])
		}
		if j >= len(s) {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		if _, dup := out[key]; dup {
			return fmt.Errorf("duplicate label %q", key)
		}
		out[key] = val.String()
		s = s[j+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}

// seriesKeyLessLE identifies a histogram bucket series ignoring the le
// label, for cumulativity checking.
func seriesKeyLessLE(name string, labels map[string]string) string {
	b := strings.Builder{}
	b.WriteString(name)
	// Deterministic small-map walk: at most a couple of labels.
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	// Insertion sort; tiny n.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		b.WriteString("{")
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(labels[k])
		b.WriteString("}")
	}
	return b.String()
}
