package pointerfree

import (
	"testing"

	"deltanet/internal/analysis/dnlint"
)

func TestFlagged(t *testing.T) {
	dnlint.RunTest(t, "testdata/src/a", Analyzer)
}

func TestClean(t *testing.T) {
	dnlint.RunTest(t, "testdata/src/clean", Analyzer)
}
