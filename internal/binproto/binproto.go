// Package binproto is the length-prefixed binary batch framing of the
// high-rate ingestion front end. A client upgrades a line-protocol
// connection with the "dnbin 1" handshake verb; from then on the
// client→server direction carries binary frames of packed rule
// operations while server→client replies stay text lines ("ok sync
// ...", "busy depth=...", "err frame ..."), so the server's guarded
// single-writer funnel is unchanged.
//
// Frame layout (all multi-byte integers little-endian or unsigned
// varint as noted):
//
//	u32 length   — payload byte count, ≤ MaxFrame
//	u8  kind     — KindOps or KindSync
//	payload body
//
// KindOps body: uvarint op count, then count packed ops. Each op opens
// with a u8 tag (TagInsert / TagRemove):
//
//	TagInsert: uvarint ruleID, uvarint srcNode, uvarint link+1
//	           (0 encodes the -1 drop link), uvarint lo,
//	           uvarint hi-lo, uvarint priority
//	TagRemove: uvarint ruleID
//
// KindSync body: uvarint token. A sync frame is a barrier: the server
// replies "ok sync <token> applied=<n>" once every op framed before it
// has been applied to the data plane, which is how a feeder bounds its
// outstanding window and how tests and benchmarks get a quiesce point.
//
// The varint packing is what makes the format fast, not clever: a
// typical insert is ~15 bytes against ~40 for its text line, and
// decoding is a handful of branch-predictable byte loads with no
// allocation, so parsing moves off the engine lock entirely (the
// server decodes frames on the connection goroutine and hands finished
// ops to the ingest ring).
package binproto

import (
	"encoding/binary"
	"fmt"
	"io"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// Version is the only handshake version this package speaks; the
// "dnbin 1" verb names it.
const Version = 1

// MaxFrame bounds one frame's payload so a bad length prefix cannot
// make the server buffer unbounded input (mirrors the line protocol's
// maxLine).
const MaxFrame = 1 << 20

// Frame kinds.
const (
	KindOps  = 1 // packed rule operations
	KindSync = 2 // barrier: reply when everything before it is applied
)

// Op tags inside a KindOps frame.
const (
	TagInsert = 0
	TagRemove = 1
)

// maxOpsPerFrame bounds the op count a frame may declare: a minimal
// remove is 2 bytes, so MaxFrame/2 is the most ops a well-formed
// payload can hold, and a count above it is rejected before any
// allocation sized by it.
const maxOpsPerFrame = MaxFrame / 2

// Bounds for the wire's narrowing casts: rule ids are int64, node/link
// ids and priorities int32 (links shifted by one for the -1 drop link).
const (
	maxInt63 = 1<<63 - 1
	maxInt31 = 1<<31 - 1
)

// AppendOps appends one KindOps frame carrying ops to dst and returns
// the extended slice. Ops must satisfy the wire's ranges: non-negative
// rule ids, sources, priorities, and links ≥ -1 (the caller owns
// semantic validation against a topology).
func AppendOps(dst []byte, ops []core.BatchOp) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, KindOps)
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for i := range ops {
		dst = appendOp(dst, &ops[i])
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// AppendSync appends one KindSync barrier frame carrying token.
func AppendSync(dst []byte, token uint64) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, KindSync)
	dst = binary.AppendUvarint(dst, token)
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

func appendOp(dst []byte, op *core.BatchOp) []byte {
	if !op.Insert {
		dst = append(dst, TagRemove)
		return binary.AppendUvarint(dst, uint64(op.Rule.ID))
	}
	dst = append(dst, TagInsert)
	dst = binary.AppendUvarint(dst, uint64(op.Rule.ID))
	dst = binary.AppendUvarint(dst, uint64(op.Rule.Source))
	dst = binary.AppendUvarint(dst, uint64(op.Rule.Link+1))
	dst = binary.AppendUvarint(dst, op.Rule.Match.Lo)
	dst = binary.AppendUvarint(dst, op.Rule.Match.Hi-op.Rule.Match.Lo)
	return binary.AppendUvarint(dst, uint64(op.Rule.Priority))
}

// Frame is one decoded client→server frame: either Ops (KindOps) or a
// sync barrier (KindSync, Token set).
type Frame struct {
	Kind  uint8
	Token uint64
	Ops   []core.BatchOp
}

// Reader decodes frames from a byte stream. It reuses its payload and
// op buffers across frames, so a returned Frame (and its Ops slice) is
// only valid until the next Read — the decode loop hands ops onward
// before reading again.
type Reader struct {
	r    io.Reader
	head [5]byte // length prefix + kind
	buf  []byte
	ops  []core.BatchOp
}

// NewReader returns a frame decoder over r. The server passes the
// connection's buffered reader so bytes buffered before the handshake
// upgrade are not lost.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Read decodes the next frame. io.EOF means a clean end of stream at a
// frame boundary; any other error (including io.ErrUnexpectedEOF for a
// truncated frame) means the stream is corrupt or dead.
func (fr *Reader) Read() (Frame, error) {
	if _, err := io.ReadFull(fr.r, fr.head[:4]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF // a clean close can land mid-prefix read on some transports
		}
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(fr.head[:4])
	if n < 1 || n > MaxFrame {
		return Frame{}, fmt.Errorf("frame length %d outside 1..%d", n, MaxFrame)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return fr.decodePayload(fr.buf)
}

func (fr *Reader) decodePayload(p []byte) (Frame, error) {
	kind, p := p[0], p[1:]
	switch kind {
	case KindSync:
		token, sz := binary.Uvarint(p)
		if sz <= 0 || sz != len(p) {
			return Frame{}, fmt.Errorf("malformed sync frame")
		}
		return Frame{Kind: KindSync, Token: token}, nil
	case KindOps:
		count, sz := binary.Uvarint(p)
		if sz <= 0 || count > maxOpsPerFrame {
			return Frame{}, fmt.Errorf("bad op count in frame")
		}
		p = p[sz:]
		fr.ops = fr.ops[:0]
		for i := uint64(0); i < count; i++ {
			op, rest, err := decodeOp(p)
			if err != nil {
				return Frame{}, fmt.Errorf("op %d: %v", i, err)
			}
			fr.ops = append(fr.ops, op)
			p = rest
		}
		if len(p) != 0 {
			return Frame{}, fmt.Errorf("%d trailing bytes after %d ops", len(p), count)
		}
		return Frame{Kind: KindOps, Ops: fr.ops}, nil
	default:
		return Frame{}, fmt.Errorf("unknown frame kind %d", kind)
	}
}

func decodeOp(p []byte) (core.BatchOp, []byte, error) {
	if len(p) == 0 {
		return core.BatchOp{}, nil, fmt.Errorf("missing tag")
	}
	tag, p := p[0], p[1:]
	switch tag {
	case TagRemove:
		id, sz := binary.Uvarint(p)
		if sz <= 0 || id > maxInt63 {
			return core.BatchOp{}, nil, fmt.Errorf("bad rule id")
		}
		return core.RemoveOp(core.RuleID(id)), p[sz:], nil
	case TagInsert:
		var v [6]uint64
		for i := range v {
			x, sz := binary.Uvarint(p)
			if sz <= 0 {
				return core.BatchOp{}, nil, fmt.Errorf("truncated insert field %d", i)
			}
			v[i] = x
			p = p[sz:]
		}
		// Range checks keep the narrowing casts below honest: a huge
		// varint must not alias into a valid id through truncation.
		if v[0] > maxInt63 || v[1] > maxInt31 || v[2] > maxInt31 || v[5] > maxInt31 {
			return core.BatchOp{}, nil, fmt.Errorf("insert field out of range")
		}
		lo, span := v[3], v[4]
		if lo+span < lo {
			return core.BatchOp{}, nil, fmt.Errorf("interval overflows")
		}
		return core.InsertOp(core.Rule{
			ID:       core.RuleID(v[0]),
			Source:   netgraph.NodeID(v[1]),
			Link:     netgraph.LinkID(int32(v[2]) - 1),
			Match:    ipnet.Interval{Lo: lo, Hi: lo + span},
			Priority: core.Priority(v[5]),
		}), p, nil
	default:
		return core.BatchOp{}, nil, fmt.Errorf("unknown op tag %d", tag)
	}
}
