package intervalmap

import (
	"math/rand"
	"testing"

	"deltanet/internal/ipnet"
)

func spaceForTest() ipnet.Space { return ipnet.IPv4 }

func ivForTest(lo, hi uint64) ipnet.Interval { return ipnet.Interval{Lo: lo, Hi: hi} }

func idsOf(rs *RangeSet) map[AtomID]bool {
	out := map[AtomID]bool{}
	for _, r := range rs.Ranges() {
		for id := r.Lo; id <= r.Hi; id++ {
			out[id] = true
		}
	}
	return out
}

func TestRangeSetAppendID(t *testing.T) {
	var rs RangeSet
	for _, id := range []AtomID{1, 2, 3, 3, 7, 8, 20} {
		rs.AppendID(id)
	}
	want := []Range{{1, 3}, {7, 8}, {20, 20}}
	got := rs.Ranges()
	if len(got) != len(want) {
		t.Fatalf("ranges %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranges %v, want %v", got, want)
		}
	}
	for _, id := range []AtomID{1, 2, 3, 7, 8, 20} {
		if !rs.Contains(id) {
			t.Fatalf("missing %d", id)
		}
	}
	for _, id := range []AtomID{0, 4, 6, 9, 19, 21} {
		if rs.Contains(id) {
			t.Fatalf("spurious %d", id)
		}
	}
}

func TestRangeSetCoarsenIsSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		var rs RangeSet
		prev := AtomID(0)
		for i := 0; i < 40; i++ {
			prev += AtomID(rng.Intn(20))
			rs.AppendID(prev)
		}
		before := idsOf(&rs)
		max := 1 + rng.Intn(10)
		rs.Coarsen(max)
		if rs.NumRanges() > max {
			t.Fatalf("coarsen left %d ranges, budget %d", rs.NumRanges(), max)
		}
		for id := range before {
			if !rs.Contains(id) {
				t.Fatalf("coarsen dropped id %d", id)
			}
		}
	}
}

func TestRangeSetIntersectsAndUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		var a, b RangeSet
		for i, prev := 0, AtomID(0); i < 10; i++ {
			prev += AtomID(1 + rng.Intn(12))
			a.AppendID(prev)
		}
		for i, prev := 0, AtomID(0); i < 10; i++ {
			prev += AtomID(1 + rng.Intn(12))
			b.AppendID(prev)
		}
		aIDs, bIDs := idsOf(&a), idsOf(&b)
		wantHit := false
		for id := range aIDs {
			if bIDs[id] {
				wantHit = true
				break
			}
		}
		if got := a.Intersects(&b); got != wantHit {
			t.Fatalf("Intersects(%v, %v) = %v, want %v", a.Ranges(), b.Ranges(), got, wantHit)
		}
		u := a.Clone()
		u.UnionWith(&b)
		for id := range aIDs {
			if !u.Contains(id) {
				t.Fatalf("union lost %d from a", id)
			}
		}
		for id := range bIDs {
			if !u.Contains(id) {
				t.Fatalf("union lost %d from b", id)
			}
		}
		// Sorted, non-overlapping, non-adjacent.
		rs := u.Ranges()
		for i := 1; i < len(rs); i++ {
			if rs[i].Lo <= rs[i-1].Hi+1 {
				t.Fatalf("union not normalized: %v", rs)
			}
		}
	}
}

func TestSketchRoundTrip(t *testing.T) {
	var rs RangeSet
	for _, id := range []AtomID{1, 5, 6, 100, 200, 201, 300, 400, 500, 600, 700, 800, 900} {
		rs.AppendID(id)
	}
	before := idsOf(&rs)
	var sk Sketch
	sk.SetFrom(&rs)
	if sk.NumRanges() > SketchRanges {
		t.Fatalf("sketch over budget: %d", sk.NumRanges())
	}
	for id := range before {
		if !sk.Contains(id) {
			t.Fatalf("sketch dropped %d", id)
		}
	}
	var probe RangeSet
	probe.AppendID(5)
	if !sk.Intersects(&probe) {
		t.Fatal("sketch misses a contained id")
	}
	var back RangeSet
	sk.ToRangeSet(&back)
	for id := range before {
		if !back.Contains(id) {
			t.Fatalf("round trip dropped %d", id)
		}
	}
}

func TestMapAllocSeqStamps(t *testing.T) {
	m := New(spaceForTest())
	seq0 := m.AllocSeq()
	split := m.CreateAtoms(ivForTest(100, 200))
	if len(split) == 0 {
		t.Fatal("expected a split")
	}
	if m.AllocSeq() <= seq0 {
		t.Fatal("AllocSeq did not advance on split")
	}
	for _, sp := range split {
		if m.BornSeq(sp.New) <= seq0 {
			t.Fatalf("new atom %d stamped %d, not after %d", sp.New, m.BornSeq(sp.New), seq0)
		}
	}
	// Recycling restamps: release a bound, re-create it, and the reused
	// id must carry a newer stamp than its previous life.
	id, ok := m.ReleaseBound(100)
	if !ok {
		t.Fatal("release failed")
	}
	was := m.BornSeq(id)
	split = m.CreateAtoms(ivForTest(100, 150))
	found := false
	for _, sp := range split {
		if sp.New == id {
			found = true
			if m.BornSeq(id) <= was {
				t.Fatalf("recycled atom %d kept stale stamp %d", id, m.BornSeq(id))
			}
		}
	}
	if !found {
		t.Fatalf("free list did not recycle id %d", id)
	}
}
