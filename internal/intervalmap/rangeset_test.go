package intervalmap

import (
	"math/rand"
	"testing"

	"deltanet/internal/ipnet"
)

func spaceForTest() ipnet.Space { return ipnet.IPv4 }

func ivForTest(lo, hi uint64) ipnet.Interval { return ipnet.Interval{Lo: lo, Hi: hi} }

func idsOf(rs *RangeSet) map[AtomID]bool {
	out := map[AtomID]bool{}
	for _, r := range rs.Ranges() {
		for id := r.Lo; id <= r.Hi; id++ {
			out[id] = true
		}
	}
	return out
}

func TestRangeSetAppendID(t *testing.T) {
	var rs RangeSet
	for _, id := range []AtomID{1, 2, 3, 3, 7, 8, 20} {
		rs.AppendID(id)
	}
	want := []Range{{1, 3}, {7, 8}, {20, 20}}
	got := rs.Ranges()
	if len(got) != len(want) {
		t.Fatalf("ranges %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranges %v, want %v", got, want)
		}
	}
	for _, id := range []AtomID{1, 2, 3, 7, 8, 20} {
		if !rs.Contains(id) {
			t.Fatalf("missing %d", id)
		}
	}
	for _, id := range []AtomID{0, 4, 6, 9, 19, 21} {
		if rs.Contains(id) {
			t.Fatalf("spurious %d", id)
		}
	}
}

func TestRangeSetCoarsenIsSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		var rs RangeSet
		prev := AtomID(0)
		for i := 0; i < 40; i++ {
			prev += AtomID(rng.Intn(20))
			rs.AppendID(prev)
		}
		before := idsOf(&rs)
		max := 1 + rng.Intn(10)
		rs.Coarsen(max)
		if rs.NumRanges() > max {
			t.Fatalf("coarsen left %d ranges, budget %d", rs.NumRanges(), max)
		}
		for id := range before {
			if !rs.Contains(id) {
				t.Fatalf("coarsen dropped id %d", id)
			}
		}
	}
}

func TestRangeSetIntersectsAndUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		var a, b RangeSet
		for i, prev := 0, AtomID(0); i < 10; i++ {
			prev += AtomID(1 + rng.Intn(12))
			a.AppendID(prev)
		}
		for i, prev := 0, AtomID(0); i < 10; i++ {
			prev += AtomID(1 + rng.Intn(12))
			b.AppendID(prev)
		}
		aIDs, bIDs := idsOf(&a), idsOf(&b)
		wantHit := false
		for id := range aIDs {
			if bIDs[id] {
				wantHit = true
				break
			}
		}
		if got := a.Intersects(&b); got != wantHit {
			t.Fatalf("Intersects(%v, %v) = %v, want %v", a.Ranges(), b.Ranges(), got, wantHit)
		}
		u := a.Clone()
		u.UnionWith(&b)
		for id := range aIDs {
			if !u.Contains(id) {
				t.Fatalf("union lost %d from a", id)
			}
		}
		for id := range bIDs {
			if !u.Contains(id) {
				t.Fatalf("union lost %d from b", id)
			}
		}
		// Sorted, non-overlapping, non-adjacent.
		rs := u.Ranges()
		for i := 1; i < len(rs); i++ {
			if rs[i].Lo <= rs[i-1].Hi+1 {
				t.Fatalf("union not normalized: %v", rs)
			}
		}
	}
}

func TestSketchRoundTrip(t *testing.T) {
	var rs RangeSet
	for _, id := range []AtomID{1, 5, 6, 100, 200, 201, 300, 400, 500, 600, 700, 800, 900} {
		rs.AppendID(id)
	}
	before := idsOf(&rs)
	var sk Sketch
	sk.SetFrom(&rs)
	if sk.NumRanges() > SketchRanges {
		t.Fatalf("sketch over budget: %d", sk.NumRanges())
	}
	for id := range before {
		if !sk.Contains(id) {
			t.Fatalf("sketch dropped %d", id)
		}
	}
	var probe RangeSet
	probe.AppendID(5)
	if !sk.Intersects(&probe) {
		t.Fatal("sketch misses a contained id")
	}
	var back RangeSet
	sk.ToRangeSet(&back)
	for id := range before {
		if !back.Contains(id) {
			t.Fatalf("round trip dropped %d", id)
		}
	}
}

// TestSketchExactFit: a set of exactly SketchRanges disjoint ranges is
// at the budget boundary — SetFrom must store it verbatim, with no
// coarsening-induced widening.
func TestSketchExactFit(t *testing.T) {
	var rs RangeSet
	want := make([]Range, 0, SketchRanges)
	for i := 0; i < SketchRanges; i++ {
		lo := AtomID(i * 10)
		rs.AppendRange(lo, lo+3)
		want = append(want, Range{Lo: lo, Hi: lo + 3})
	}
	var sk Sketch
	sk.SetFrom(&rs)
	if sk.NumRanges() != SketchRanges {
		t.Fatalf("exact-fit set coarsened: %d ranges, want %d", sk.NumRanges(), SketchRanges)
	}
	got := sk.Ranges()
	for i, r := range want {
		if got[i] != r {
			t.Fatalf("range %d = %v, want %v (exact fit must be verbatim)", i, got[i], r)
		}
	}
	// Gaps between the stored ranges must remain uncovered: no widening.
	for i := 0; i < SketchRanges-1; i++ {
		if sk.Contains(AtomID(i*10 + 5)) {
			t.Fatalf("exact-fit sketch covers gap id %d", i*10+5)
		}
	}
}

// TestSketchOverflowCoarsens: one range past the budget forces exactly
// one merge, and Coarsen must close the smallest gap — the two ranges
// separated by it fuse, every other range survives untouched, and the
// result is a superset of the input.
func TestSketchOverflowCoarsens(t *testing.T) {
	var rs RangeSet
	// SketchRanges+1 ranges with gaps 100, 100, ..., except one gap of 2
	// between ranges 3 and 4.
	lo := AtomID(0)
	var lows []AtomID
	for i := 0; i <= SketchRanges; i++ {
		rs.AppendRange(lo, lo+9)
		lows = append(lows, lo)
		if i == 3 {
			lo += 9 + 2 // the smallest gap: 11 - 9 = 2
		} else {
			lo += 110
		}
	}
	before := idsOf(&rs)
	var sk Sketch
	sk.SetFrom(&rs)
	if sk.NumRanges() != SketchRanges {
		t.Fatalf("overflow set has %d ranges, want %d", sk.NumRanges(), SketchRanges)
	}
	for id := range before {
		if !sk.Contains(id) {
			t.Fatalf("coarsening dropped %d (must be a superset)", id)
		}
	}
	// The fused range spans ranges 3 and 4 — and covers their tiny gap.
	if !sk.Contains(lows[3] + 10) {
		t.Fatal("smallest gap not closed by the merge")
	}
	// The large gaps stay open: coarsening must not fuse anything else.
	if sk.Contains(lows[0] + 50) {
		t.Fatal("coarsening closed a large gap; should merge the smallest only")
	}
}

// TestSketchEmpty: the empty set's sketch covers nothing and intersects
// nothing — the zero value and the SetFrom(empty) forms must agree.
func TestSketchEmpty(t *testing.T) {
	var empty RangeSet
	var sk Sketch
	sk.SetFrom(&empty)
	var zero Sketch
	for name, s := range map[string]*Sketch{"SetFrom(empty)": &sk, "zero value": &zero} {
		if s.NumRanges() != 0 {
			t.Fatalf("%s has %d ranges, want 0", name, s.NumRanges())
		}
		if s.Contains(0) || s.Contains(1<<30) {
			t.Fatalf("%s contains ids", name)
		}
		var probe RangeSet
		probe.AppendRange(0, 1<<30)
		if s.Intersects(&probe) {
			t.Fatalf("%s intersects a full-space probe", name)
		}
		var back RangeSet
		s.ToRangeSet(&back)
		if !back.Empty() {
			t.Fatalf("%s round-trips to a non-empty set", name)
		}
	}
}

func TestMapAllocSeqStamps(t *testing.T) {
	m := New(spaceForTest())
	seq0 := m.AllocSeq()
	split := m.CreateAtoms(ivForTest(100, 200))
	if len(split) == 0 {
		t.Fatal("expected a split")
	}
	if m.AllocSeq() <= seq0 {
		t.Fatal("AllocSeq did not advance on split")
	}
	for _, sp := range split {
		if m.BornSeq(sp.New) <= seq0 {
			t.Fatalf("new atom %d stamped %d, not after %d", sp.New, m.BornSeq(sp.New), seq0)
		}
	}
	// Recycling restamps: release a bound, re-create it, and the reused
	// id must carry a newer stamp than its previous life.
	id, ok := m.ReleaseBound(100)
	if !ok {
		t.Fatal("release failed")
	}
	was := m.BornSeq(id)
	split = m.CreateAtoms(ivForTest(100, 150))
	found := false
	for _, sp := range split {
		if sp.New == id {
			found = true
			if m.BornSeq(id) <= was {
				t.Fatalf("recycled atom %d kept stale stamp %d", id, m.BornSeq(id))
			}
		}
	}
	if !found {
		t.Fatalf("free list did not recycle id %d", id)
	}
}
