package check

import (
	"sync/atomic"
	"testing"
)

// TestRunSharded: every index is visited exactly once, worker ids are in
// range, and each worker's queue is contiguous and processed in order.
func TestRunSharded(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 16, 100} {
			visits := make([]int32, n)
			workerOf := make([]int32, n)
			RunSharded(workers, n, func(w, i int) {
				atomic.AddInt32(&visits[i], 1)
				atomic.StoreInt32(&workerOf[i], int32(w))
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
			// Contiguity: the worker id must be non-decreasing over the
			// index space (queues are contiguous slices of [0, n)).
			for i := 1; i < n; i++ {
				if workerOf[i] < workerOf[i-1] {
					t.Fatalf("workers=%d n=%d: worker ids not contiguous: %v", workers, n, workerOf)
				}
			}
		}
	}
}

// TestRunShardedSerialFallback: one job (or one worker) must run on the
// caller's goroutine as worker 0.
func TestRunShardedSerialFallback(t *testing.T) {
	var got []int
	RunSharded(8, 1, func(w, i int) { got = append(got, w, i) }) // no race: serial path
	if len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("serial fallback: %v", got)
	}
}
