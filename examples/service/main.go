// Service: Delta-net as a verification sidecar (the deployment of the
// paper's Figure 7) — a TCP server owns the data plane state and a
// client streams rule updates over the wire protocol via the public
// deltanet/client package, receiving a verdict for each, including a
// loop alarm the moment a misconfigured rule closes a cycle.
//
// Run with: go run ./examples/service
package main

import (
	"fmt"
	"log"
	"net"

	"deltanet/client"
	"deltanet/internal/server"
)

func main() {
	srv := server.New()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("verifier listening on %s\n\n", ln.Addr())

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	send := func(req string) string {
		resp, err := c.Do(req)
		if err != nil {
			if _, refused := err.(*client.ProtocolError); !refused {
				log.Fatalf("%q: %v", req, err)
			}
		}
		fmt.Printf("  > %-28s < %s\n", req, resp)
		return resp
	}

	fmt.Println("controller builds the topology:")
	send("node s1")
	send("node s2")
	send("link 0 1") // link 0: s1 -> s2
	send("link 1 0") // link 1: s2 -> s1

	fmt.Println("\ncontroller installs benign rules:")
	send("I 1 0 0 167772160 184549376 10") // 10.0.0.0/8 at s1 -> s2
	send("stats")
	send("reach 0 1")

	fmt.Println("\na buggy update bounces the prefix back — verifier raises the alarm inline:")
	resp := send("I 2 1 1 167772160 184549376 10")
	fmt.Printf("\nverdict line carries the looping range: %q\n", resp)

	fmt.Println("\noperator reverts; verifier confirms:")
	send("R 2")
	send("stats")

	atoms, err := c.Reach("s1", "s2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntyped helper agrees: %d atom(s) reach s1 -> s2\n", atoms)
}
