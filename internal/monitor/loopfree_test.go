package monitor

import (
	"fmt"
	"math/rand"
	"testing"

	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// twoPairs builds a <-> b and c <-> d: two independent places a
// forwarding loop can live.
func twoPairs() (*netgraph.Graph, []netgraph.NodeID, []netgraph.LinkID) {
	g := netgraph.New()
	var nodes []netgraph.NodeID
	for _, name := range []string{"a", "b", "c", "d"} {
		nodes = append(nodes, g.AddNode(name))
	}
	links := []netgraph.LinkID{
		g.AddLink(nodes[0], nodes[1]), // 0: a->b
		g.AddLink(nodes[1], nodes[0]), // 1: b->a
		g.AddLink(nodes[2], nodes[3]), // 2: c->d
		g.AddLink(nodes[3], nodes[2]), // 3: d->c
	}
	return g, nodes, links
}

// TestLoopFreeBatchAwareClearing walks LoopFree through two independent
// loops cleared one at a time. While violated, evaluation re-walks only
// the recorded looping atoms plus the delta's additions (satellite of
// the §4.3.1 loop argument lifted to atoms), so clearing the first loop
// must still see the second, and only clearing both flips the verdict.
func TestLoopFreeBatchAwareClearing(t *testing.T) {
	g, nodes, links := twoPairs()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)

	id, st := m.Register(LoopFree{})
	if st != Holds {
		t.Fatalf("empty plane: %v", st)
	}
	oracle := func(step string) {
		t.Helper()
		got, _, ok := m.Status(id)
		if !ok {
			t.Fatalf("%s: invariant vanished", step)
		}
		want := Holds
		if len(check.FindLoopsAll(n)) > 0 {
			want = Violated
		}
		if got != want {
			t.Fatalf("%s: monitor says %v, scratch says %v", step, got, want)
		}
	}

	r := func(id core.RuleID, src, link int, lo, hi uint64) core.Rule {
		return core.Rule{ID: id, Source: nodes[src], Link: links[link],
			Match: ipnet.Interval{Lo: lo, Hi: hi}, Priority: 1}
	}
	// Loop 1 on [0,100] through a<->b.
	mustInsert(t, n, m, r(1, 0, 0, 0, 100))
	if ev := mustInsert(t, n, m, r(2, 1, 1, 0, 100)); len(ev) != 1 || ev[0].Kind != Violation {
		t.Fatalf("loop 1 closed: events %v", ev)
	}
	oracle("loop 1")

	// Loop 2 on [200,300] through c<->d, inserted while already
	// violated: the batch-aware path must walk the new atoms too.
	mustInsert(t, n, m, r(3, 2, 2, 200, 300))
	if ev := mustInsert(t, n, m, r(4, 3, 3, 200, 300)); len(ev) != 0 {
		t.Fatalf("still violated, no transition expected: %v", ev)
	}
	oracle("loop 2 added")

	// Clearing loop 1 must NOT clear the verdict — loop 2 remains, and
	// the restricted re-walk has to find it among the recorded atoms.
	if ev := mustRemove(t, n, m, 2); len(ev) != 0 {
		t.Fatalf("loop 2 still present, got events %v", ev)
	}
	oracle("loop 1 cleared")

	// Clearing loop 2 flips to Holds.
	if ev := mustRemove(t, n, m, 4); len(ev) != 1 || ev[0].Kind != Cleared {
		t.Fatalf("both loops cleared: events %v", ev)
	}
	oracle("both cleared")

	if got := m.Stats().LoopRescanAtoms; got == 0 {
		t.Fatal("violated-state evaluations should have counted rescan atoms")
	}
}

// TestLoopFreeViolatedEquivalenceChurn cross-checks the batch-aware
// violated-state clearing against a from-scratch FindLoopsAll oracle
// after every update of a randomized insert/remove workload, with atom
// GC on so atom ids die and are born mid-violation (exercising the
// born-since-stamp rescan guard).
func TestLoopFreeViolatedEquivalenceChurn(t *testing.T) {
	for _, gc := range []bool{false, true} {
		t.Run(fmt.Sprintf("gc=%v", gc), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			g, nodes, links := twoPairs()
			n := core.NewNetwork(g, core.Options{GC: gc})
			m := New(n, 0)
			id, _ := m.Register(LoopFree{})

			var live []core.RuleID
			next := core.RuleID(1)
			for step := 0; step < 400; step++ {
				if len(live) > 0 && rng.Intn(3) == 0 {
					i := rng.Intn(len(live))
					idr := live[i]
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					mustRemove(t, n, m, idr)
				} else {
					lo := uint64(rng.Intn(1000)) * 10
					hi := lo + uint64(rng.Intn(200)) + 1
					li := rng.Intn(len(links))
					src := nodes[[]int{0, 1, 2, 3}[li]]
					mustInsert(t, n, m, core.Rule{ID: next, Source: src, Link: links[li],
						Match: ipnet.Interval{Lo: lo, Hi: hi}, Priority: core.Priority(rng.Intn(4) + 1)})
					live = append(live, next)
					next++
				}
				got, _, _ := m.Status(id)
				want := Holds
				if len(check.FindLoopsAll(n)) > 0 {
					want = Violated
				}
				if got != want {
					t.Fatalf("step %d: monitor %v, scratch %v", step, got, want)
				}
			}
			if m.Stats().LoopRescanAtoms == 0 {
				t.Fatal("churn never exercised the violated-state rescan")
			}
		})
	}
}

// TestApplyTraceSink checks the monitor-side pipeline trace: a sink
// installed with SetTraceSink sees one record per evaluation pass with
// the delta and fan-out sizes filled in, and uninstalling stops the
// flow.
func TestApplyTraceSink(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	m.Register(Reachable{From: nodes[0], To: nodes[1]})

	var got []ApplyTrace
	m.SetTraceSink(func(tr ApplyTrace) { got = append(got, tr) })

	mustInsert(t, n, m, core.Rule{ID: 1, Source: nodes[0], Link: links[0],
		Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	if len(got) != 1 {
		t.Fatalf("sink saw %d records, want 1", len(got))
	}
	tr := got[0]
	if tr.Coalesced != 1 || tr.FirstUpdate != tr.LastUpdate || tr.FirstUpdate != m.UpdateSeq() {
		t.Fatalf("record identity wrong: %+v (seq=%d)", tr, m.UpdateSeq())
	}
	if tr.Added == 0 || tr.Links == 0 {
		t.Fatalf("delta shape missing: %+v", tr)
	}
	if tr.Dirtied != 1 || tr.Evaluated != 1 {
		t.Fatalf("fan-out wrong: %+v", tr)
	}
	if tr.Events != 1 {
		t.Fatalf("transition not counted: %+v", tr)
	}
	if tr.DirtyNs < 0 || tr.EvalNs < 0 || tr.PublishNs < 0 {
		t.Fatalf("negative stage times: %+v", tr)
	}

	m.SetTraceSink(nil)
	mustRemove(t, n, m, 1)
	if len(got) != 1 {
		t.Fatalf("uninstalled sink still fired: %d records", len(got))
	}
}

// TestApplyTraceBurst checks that a coalesced burst flush produces one
// record spanning the buffered update range.
func TestApplyTraceBurst(t *testing.T) {
	g, nodes, links := line4()
	n := core.NewNetwork(g, core.Options{})
	m := New(n, 0)
	m.Register(Reachable{From: nodes[0], To: nodes[3]})
	m.SetBurst(BurstConfig{MaxDeltas: 3})

	var got []ApplyTrace
	m.SetTraceSink(func(tr ApplyTrace) { got = append(got, tr) })

	for i, link := range links {
		mustInsert(t, n, m, core.Rule{ID: core.RuleID(i + 1), Source: nodes[i], Link: link,
			Match: ipnet.Interval{Lo: 0, Hi: 100}, Priority: 1})
	}
	if len(got) != 1 {
		t.Fatalf("burst of 3 produced %d records, want 1 flush record", len(got))
	}
	tr := got[0]
	if tr.Coalesced != 3 {
		t.Fatalf("coalesced=%d, want 3", tr.Coalesced)
	}
	if tr.LastUpdate-tr.FirstUpdate != 2 {
		t.Fatalf("update range %d:%d, want a span of 3", tr.FirstUpdate, tr.LastUpdate)
	}
}
