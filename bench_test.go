package deltanet

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§4), plus ablations for the design choices DESIGN.md
// calls out. Run everything with:
//
//	go test -bench=. -benchmem
//
// Benchmarks use the laptop-default dataset scale (internal/datasets);
// cmd/dnbench runs the same experiments with configurable scale and prints
// paper-style rows (recorded in EXPERIMENTS.md).

import (
	"fmt"
	"testing"
	"time"

	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/datasets"
	"deltanet/internal/experiments"
	"deltanet/internal/intervalmap"
	"deltanet/internal/monitor"
	"deltanet/internal/trace"
)

// intervalmapAtom converts a bitset element to an atom id for ablation
// setup.
func intervalmapAtom(a int) intervalmap.AtomID { return intervalmap.AtomID(a) }

// benchScale keeps the full benchmark suite in the minutes range.
const benchScale = 0.25

// BenchmarkTable2_DatasetGeneration measures building all eight datasets
// (Table 2's rows) from their seeded generators.
func BenchmarkTable2_DatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatal("missing datasets")
		}
	}
}

// table3Datasets drives one benchmark per Table 3 column group.
var table3Datasets = datasets.Names()

// BenchmarkTable3 replays each dataset through Delta-net with per-update
// delta-graph loop checking — Table 3's protocol. The reported per-op
// metric is the paper's "combined time for processing a rule update and
// checking for forwarding loops".
func BenchmarkTable3(b *testing.B) {
	for _, name := range table3Datasets {
		name := name
		b.Run(name, func(b *testing.B) {
			tr, err := datasets.Build(name, benchScale)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			ops := 0
			for i := 0; i < b.N; i++ {
				n := core.NewNetwork(tr.Graph.Clone(), core.Options{})
				var d core.Delta
				for j := range tr.Ops {
					if err := trace.Apply(n, tr.Ops[j], &d); err != nil {
						b.Fatal(err)
					}
					check.FindLoopsDelta(n, &d)
				}
				ops += len(tr.Ops)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ops)/1e3, "µs/update")
		})
	}
}

// BenchmarkFigure8_CDF measures the full Figure 8 pipeline: replaying every
// dataset while collecting the per-op latency distribution and bucketing
// it into the CDF series.
func BenchmarkFigure8_CDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.RunFigure8(benchScale * 0.3)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 8 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkTable4_WhatIf measures the link-failure what-if query per
// engine, on the Airtel data plane (Table 4's protocol): Veriflow-RI
// builds a forwarding graph per affected EC; Delta-net restricts the
// edge-labelled graph to label[failedLink].
func BenchmarkTable4_WhatIf(b *testing.B) {
	for _, name := range []string{"airtel1", "4switch", "rf1755"} {
		row, err := experiments.RunTable4(name, benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/veriflow-ri", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunTable4(name, benchScale, 4)
				if err != nil {
					b.Fatal(err)
				}
				_ = r
			}
			b.ReportMetric(float64(row.VeriflowAvg.Microseconds()), "µs/query(full)")
		})
		b.Run(name+"/delta-net", func(b *testing.B) {
			n, tr, err := experiments.BuildConsistentDataPlane(name, benchScale)
			if err != nil {
				b.Fatal(err)
			}
			links := experiments.LinksOf(tr)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l := links[i%len(links)]
				check.AffectedByLinkFailure(n, l)
			}
		})
		b.Run(name+"/delta-net+loops", func(b *testing.B) {
			n, tr, err := experiments.BuildConsistentDataPlane(name, benchScale)
			if err != nil {
				b.Fatal(err)
			}
			links := experiments.LinksOf(tr)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l := links[i%len(links)]
				sub := check.AffectedByLinkFailure(n, l)
				check.LoopsInSubgraph(n, sub)
			}
		})
	}
}

// BenchmarkTable5_Memory measures data plane construction in both engines
// and reports their self-accounted footprints (Appendix D's comparison).
func BenchmarkTable5_Memory(b *testing.B) {
	var last experiments.Table5Row
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunTable5("rf1755", benchScale)
		if err != nil {
			b.Fatal(err)
		}
		last = row
	}
	b.ReportMetric(float64(last.DeltanetBytes)/1e6, "deltanet-MB")
	b.ReportMetric(float64(last.VeriflowBytes)/1e6, "veriflow-MB")
	b.ReportMetric(last.Ratio, "ratio")
}

// BenchmarkAppendixC_MaxECs measures Veriflow-RI's EC fan-out tracking
// during a full insertion replay.
func BenchmarkAppendixC_MaxECs(b *testing.B) {
	var maxECs int
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAppendixC("rf1755", benchScale)
		if err != nil {
			b.Fatal(err)
		}
		maxECs = res.MaxECs
	}
	b.ReportMetric(float64(maxECs), "max-ECs")
}

// BenchmarkScaling_InsertRemove supports Theorem 1 empirically: per-op
// time across growing workloads (quasi-linear means the metric stays
// near-flat while ops grow 8×).
func BenchmarkScaling_InsertRemove(b *testing.B) {
	for _, s := range []float64{benchScale / 4, benchScale / 2, benchScale, benchScale * 2} {
		s := s
		b.Run(fmt.Sprintf("scale-%g", s), func(b *testing.B) {
			var perOp time.Duration
			for i := 0; i < b.N; i++ {
				row, err := experiments.RunTable3("rf1755", s)
				if err != nil {
					b.Fatal(err)
				}
				perOp = row.Average
			}
			b.ReportMetric(float64(perOp.Nanoseconds())/1e3, "µs/update")
		})
	}
}

// --- Batch pipeline ------------------------------------------------------

// batchBenchRules generates a dense overlapping workload on a small mesh:
// the shape (many rules sharing atoms at few nodes) where deduplicating
// per-atom ownership work across a batch pays off.
func batchBenchRules(c *Checker, count int) []Rule {
	var switches []SwitchID
	var links []LinkID
	for i := 0; i < 6; i++ {
		switches = append(switches, c.AddSwitch(fmt.Sprintf("s%d", i)))
	}
	for i := range switches {
		for j := range switches {
			if i != j {
				links = append(links, c.AddLink(switches[i], switches[j]))
			}
		}
	}
	rules := make([]Rule, count)
	for i := range rules {
		l := links[(i*7)%len(links)]
		lo := uint64((i * 137) % (1 << 16))
		rules[i] = Rule{
			ID:       RuleID(i + 1),
			Source:   c.Network().Graph().Link(l).Src,
			Link:     l,
			Match:    Interval{Lo: lo, Hi: lo + 1 + uint64((i*61)%(1<<14))},
			Priority: Priority(i % 64),
		}
	}
	return rules
}

// BenchmarkInsertBatch compares the batch update pipeline at batch sizes
// 1, 16, and 256: the same rule stream with per-batch incremental loop
// checking. The rules/sec metric is the headline batching win — larger
// batches amortize the loop check over the merged delta and fan per-atom
// ownership work out over the worker pool.
func BenchmarkInsertBatch(b *testing.B) {
	const totalRules = 2048
	for _, size := range []int{1, 16, 256} {
		size := size
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			proto := New()
			rules := batchBenchRules(proto, totalRules)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := New()
				batchBenchRules(c, 0) // same topology, no rules
				b.StartTimer()
				ops := make([]BatchOp, 0, size)
				for _, r := range rules {
					ops = append(ops, InsertOp(r))
					if len(ops) == size {
						if _, err := c.ApplyBatch(ops); err != nil {
							b.Fatal(err)
						}
						ops = ops[:0]
					}
				}
				if len(ops) > 0 {
					if _, err := c.ApplyBatch(ops); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.N*totalRules)/b.Elapsed().Seconds(), "rules/sec")
		})
	}
}

// BenchmarkChurnBatch is BenchmarkInsertBatch's removal-heavy sibling:
// each batch inserts a window of rules and removes the previous window,
// the steady-state shape of a controller churning its tables.
func BenchmarkChurnBatch(b *testing.B) {
	const window = 512
	for _, size := range []int{1, 16, 256} {
		size := size
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			c := New()
			rules := batchBenchRules(c, window*2)
			apply := func(ops []BatchOp) {
				for start := 0; start < len(ops); start += size {
					end := start + size
					if end > len(ops) {
						end = len(ops)
					}
					if _, err := c.ApplyBatch(ops[start:end]); err != nil {
						b.Fatal(err)
					}
				}
			}
			var warm []BatchOp
			for _, r := range rules[:window] {
				warm = append(warm, InsertOp(r))
			}
			apply(warm)
			prev, next := rules[:window], rules[window:]
			b.ResetTimer()
			ops := 0
			for i := 0; i < b.N; i++ {
				churn := make([]BatchOp, 0, 2*window)
				for j := range next {
					next[j].ID = RuleID(int64(i+2)*int64(window*2)) + RuleID(j)
					churn = append(churn, InsertOp(next[j]), RemoveOp(prev[j].ID))
				}
				apply(churn)
				prev, next = next, prev
				ops += 2 * window
			}
			b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "ops/sec")
		})
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblation_AtomGC compares replay cost with and without the atom
// garbage collector on a removal-heavy dataset (rf1755 removes every
// rule): GC pays bookkeeping per op to bound atom growth.
func BenchmarkAblation_AtomGC(b *testing.B) {
	tr, err := datasets.Build("rf1755", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	for _, gc := range []bool{false, true} {
		gc := gc
		name := "off"
		if gc {
			name = "on"
		}
		b.Run("gc-"+name, func(b *testing.B) {
			var atoms int
			for i := 0; i < b.N; i++ {
				n := core.NewNetwork(tr.Graph.Clone(), core.Options{GC: gc})
				var d core.Delta
				for j := range tr.Ops {
					if err := trace.Apply(n, tr.Ops[j], &d); err != nil {
						b.Fatal(err)
					}
				}
				atoms = n.NumAtoms()
			}
			b.ReportMetric(float64(atoms), "final-atoms")
		})
	}
}

// BenchmarkAblation_DeltaLoopCheck isolates the per-update loop check's
// cost: replay with and without FindLoopsDelta.
func BenchmarkAblation_DeltaLoopCheck(b *testing.B) {
	tr, err := datasets.Build("airtel1", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, withCheck bool) {
		for i := 0; i < b.N; i++ {
			n := core.NewNetwork(tr.Graph.Clone(), core.Options{})
			var d core.Delta
			for j := range tr.Ops {
				if err := trace.Apply(n, tr.Ops[j], &d); err != nil {
					b.Fatal(err)
				}
				if withCheck {
					check.FindLoopsDelta(n, &d)
				}
			}
		}
	}
	b.Run("update-only", func(b *testing.B) { run(b, false) })
	b.Run("update+loopcheck", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblation_AllPairsParallel compares Algorithm 3 serial versus
// parallel (the paper's §6 parallelization) on the campus data plane.
func BenchmarkAblation_AllPairsParallel(b *testing.B) {
	n, _, err := experiments.BuildConsistentDataPlane("berkeley", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			check.AllPairs(n)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			check.AllPairsParallel(n, 0)
		}
	})
}

// BenchmarkAblation_ParallelDeltaCheck compares the serial per-update
// loop check against the goroutine-parallel variant on a bulk delta (a
// link-failure-sized label change touching many atoms): §6's
// parallelizable atom loops, measured.
func BenchmarkAblation_ParallelDeltaCheck(b *testing.B) {
	n, tr, err := experiments.BuildConsistentDataPlane("airtel1", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	// Synthesize a bulk delta: every (link, atom) pair of the busiest
	// link's label as Added entries.
	links := experiments.LinksOf(tr)
	var bulk core.Delta
	for _, l := range links {
		n.Label(l).ForEach(func(a int) bool {
			bulk.Added = append(bulk.Added, core.LinkAtom{Link: l, Atom: intervalmapAtom(a)})
			return len(bulk.Added) < 4096
		})
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			check.FindLoopsDelta(n, &bulk)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			check.FindLoopsDeltaParallel(n, &bulk, 0)
		}
	})
}

// BenchmarkAblation_OwnerCopy quantifies the owner-copy cost of atom
// splitting (Algorithm 1 lines 3–9), the term that makes the worst case
// O(RK): each measured insertion splits an atom whose owner table already
// holds K overlapping rules, so the engine deep-copies a K-entry tree.
// GC mode keeps the structure steady between iterations (the paired
// removal merges the split back), isolating the copy cost per update.
func BenchmarkAblation_OwnerCopy(b *testing.B) {
	for _, k := range []int{16, 256, 4096} {
		k := k
		b.Run(fmt.Sprintf("owners-%d", k), func(b *testing.B) {
			c := New(WithoutLoopChecking(), WithAtomGC())
			s := c.AddSwitch("s")
			l := c.AddLink(s, c.AddSwitch("d"))
			// K nested rules share the centre point; any split of the
			// centre atom copies a K-rule owner tree.
			const centre = uint64(1 << 24)
			for i := 0; i < k; i++ {
				w := uint64(1000 + i)
				if _, err := c.InsertRule(Rule{ID: RuleID(i + 1), Source: s, Link: l,
					Match: Interval{Lo: centre - w, Hi: centre + w}, Priority: Priority(i)}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := RuleID(1<<31) + RuleID(i)
				if _, err := c.InsertRule(Rule{ID: id, Source: s, Link: l,
					Match: Interval{Lo: centre - 1, Hi: centre + 1}, Priority: 9999}); err != nil {
					b.Fatal(err)
				}
				if _, err := c.RemoveRule(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Invariant monitor ----------------------------------------------------

// monitorBenchChainLen is the segment length of the benchmark topology:
// many disjoint forwarding chains of this many switches, each hop holding
// one full-coverage rule. Disjoint segments keep every re-evaluation's
// fixpoint segment-local — the production shape (a large fabric where any
// one query touches a small region) where dirty MARKING, not evaluation,
// dominates, which is exactly the cost the sharded index attacks.
const monitorBenchChainLen = 16

// monitorBenchChecker builds n switches as disjoint chains of
// monitorBenchChainLen, plus a parallel "detour" link at the head of the
// first chain that churn toggles traffic onto and off. Only invariants
// whose last evaluation touched the head's out-links can be affected,
// which is the shape the dependency index exploits.
func monitorBenchChecker(n int) (*Checker, []SwitchID, LinkID) {
	c := New(WithoutLoopChecking())
	sw := make([]SwitchID, n)
	for i := range sw {
		sw[i] = c.AddSwitch(fmt.Sprintf("s%d", i))
	}
	var links []LinkID
	var srcs []SwitchID
	for i := 0; i+1 < n; i++ {
		if (i+1)%monitorBenchChainLen != 0 { // chain-internal hop
			links = append(links, c.AddLink(sw[i], sw[i+1]))
			srcs = append(srcs, sw[i])
		}
	}
	alt := c.AddLink(sw[0], sw[1])
	for i, l := range links {
		if _, err := c.InsertRule(Rule{ID: RuleID(i + 1), Source: srcs[i], Link: l,
			Match: Interval{Lo: 0, Hi: 1 << 20}, Priority: 1}); err != nil {
			panic(err)
		}
	}
	return c, sw, alt
}

// monitorBenchSpecs enumerates reachability pairs diagonal by diagonal
// ((i, i+1) for all i, then (i, i+2), ...) so sources spread evenly over
// the chain instead of clustering at the head.
func monitorBenchSpecs(sw []SwitchID, numInv int) []Invariant {
	specs := make([]Invariant, 0, numInv)
	for d := 1; len(specs) < numInv && d < len(sw); d++ {
		for i := 0; i+d < len(sw) && len(specs) < numInv; i++ {
			specs = append(specs, WatchReachable(sw[i], sw[i+d]))
		}
	}
	return specs
}

// monitorChurn toggles a high-priority detour for one /20-sized slice at
// the head of the chain: each update moves those atoms between the chain
// link and the detour link, producing a two-link delta.
func monitorChurn(b *testing.B, c *Checker, src SwitchID, alt LinkID, i int) {
	b.Helper()
	if i%2 == 0 {
		if _, err := c.InsertRule(Rule{ID: 1 << 20, Source: src, Link: alt,
			Match: Interval{Lo: 0, Hi: 4096}, Priority: 99}); err != nil {
			b.Fatal(err)
		}
	} else if _, err := c.RemoveRule(1 << 20); err != nil {
		b.Fatal(err)
	}
}

// monitorChurnNodes picks the topology size for an invariant count: the
// spec enumeration needs ~numInv distinct (i, j>i) pairs, i.e. n(n-1)/2 ≥
// numInv.
func monitorChurnNodes(numInv int) int {
	if numInv <= 2016 {
		return 64 // the historical benchmark size
	}
	return 512 // 130,816 pairs: enough for 10⁵ invariants
}

// BenchmarkMonitorChurn is the incremental-monitor headline: per-update
// cost of keeping 10²..10⁵ standing reachability invariants current under
// churn. Six arms:
//
//   - sharded: the dependency index at its default atom granularity —
//     dirty marking intersects each changed link's per-invariant
//     atom-range sketches with the delta's touched atoms;
//   - sharded-instrumented: sharded with a trace sink installed, pricing
//     the per-update pipeline tracing (stage timestamps are only taken
//     when a sink is set);
//   - link-granular: the same index ignoring the sketches (SetLinkGranular)
//     — any delta on a dep link re-evaluates, the pre-atom baseline;
//   - flat-scan: the pre-sharding baseline, an O(registered) scan calling
//     every invariant's dirty test per update;
//   - burst-16: the sharded index plus coalescing burst mode flushing
//     every 16 deltas — the throughput shape for heavy churn;
//   - recheck-all: re-running every registered query from scratch per
//     update (capped at 10³, where it is already ~3 orders off).
//
// This churn moves atoms every dirty invariant's verdict actually uses,
// so sharded and link-granular should be nearly identical here (the
// refinement must not cost anything when it cannot help); the
// range-disjoint case where it wins is BenchmarkMonitorChurnLocality.
// evals/update shows how many invariants each update actually
// re-evaluated; updates/sec is the headline.
func BenchmarkMonitorChurn(b *testing.B) {
	for _, numInv := range []int{100, 1000, 10_000, 100_000} {
		numInv := numInv
		nodes := monitorChurnNodes(numInv)
		run := func(name string, cfg func(m *monitor.Monitor)) {
			b.Run(fmt.Sprintf("invariants-%d/%s", numInv, name), func(b *testing.B) {
				c, sw, alt := monitorBenchChecker(nodes)
				m := c.Monitor()
				cfg(m)
				for _, s := range monitorBenchSpecs(sw, numInv) {
					m.Register(s)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					monitorChurn(b, c, sw[0], alt, i)
				}
				m.Flush() // drain a trailing partial burst
				b.StopTimer()
				st := m.Stats()
				b.ReportMetric(float64(st.Evaluations)/float64(b.N), "evals/update")
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/sec")
			})
		}
		run("sharded", func(m *monitor.Monitor) {})
		// sharded plus an installed (trivial) trace sink: the monitor
		// takes stage timestamps only when a sink is set, so this arm
		// prices the observability layer against plain sharded.
		run("sharded-instrumented", func(m *monitor.Monitor) {
			m.SetTraceSink(func(monitor.ApplyTrace) {})
		})
		run("link-granular", func(m *monitor.Monitor) { m.SetLinkGranular(true) })
		run("flat-scan", func(m *monitor.Monitor) { m.SetFlatScan(true) })
		run("burst-16", func(m *monitor.Monitor) { m.SetBurst(monitor.BurstConfig{MaxDeltas: 16}) })
		if numInv <= 1000 {
			b.Run(fmt.Sprintf("invariants-%d/recheck-all", numInv), func(b *testing.B) {
				c, sw, alt := monitorBenchChecker(nodes)
				m := monitor.New(c.Network(), 0)
				for _, s := range monitorBenchSpecs(sw, numInv) {
					m.Register(s)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					monitorChurn(b, c, sw[0], alt, i)
					m.RecheckAll()
				}
				b.StopTimer()
				b.ReportMetric(float64(numInv), "evals/update")
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/sec")
			})
		}
	}
}

// localityBench is the prefix-locality fabric BenchmarkMonitorChurnLocality
// churns: numInv leaf pairs exchanging disjoint /20-sized address slices
// through one shared trunk link A -> B, with B distributing to the
// destination leaves through a binary tree (so every invariant's
// dependency set stays ~2·log₂(numInv) links) and a dead-end detour
// A -> C that churn steers one slice onto. Every invariant depends on the
// trunk; each depends on a different slice of its atoms.
type localityBench struct {
	c        *Checker
	src, dst []SwitchID
	a        SwitchID
	trunk    LinkID // A -> B (the tree root)
	detour   LinkID // A -> C (dead end)
	width    uint64
}

func buildLocalityBench(numInv int) *localityBench {
	const width = 1 << 12
	c := New(WithoutLoopChecking())
	lb := &localityBench{c: c, width: width}
	lb.a = c.AddSwitch("A")
	insert := func(id int, sw SwitchID, l LinkID, lo, hi uint64, prio int) {
		if _, err := c.InsertRule(Rule{ID: RuleID(id), Source: sw, Link: l,
			Match: Interval{Lo: lo, Hi: hi}, Priority: Priority(prio)}); err != nil {
			panic(err)
		}
	}
	// Destination leaves first (rule ids 1..numInv for the src rules come
	// later; tree rules get ids past 2*numInv).
	lb.dst = make([]SwitchID, numInv)
	for i := range lb.dst {
		lb.dst[i] = c.AddSwitch(fmt.Sprintf("d%d", i))
	}
	nextRule := 2*numInv + 1
	// build returns the node distributing slices [lo, hi) to their leaves.
	var build func(lo, hi int) SwitchID
	build = func(lo, hi int) SwitchID {
		if hi-lo == 1 {
			return lb.dst[lo]
		}
		mid := (lo + hi) / 2
		node := c.AddSwitch(fmt.Sprintf("t%d-%d", lo, hi))
		left, right := build(lo, mid), build(mid, hi)
		insert(nextRule, node, c.AddLink(node, left), uint64(lo)*width, uint64(mid)*width, 1)
		nextRule++
		insert(nextRule, node, c.AddLink(node, right), uint64(mid)*width, uint64(hi)*width, 1)
		nextRule++
		return node
	}
	root := build(0, numInv)
	lb.trunk = c.AddLink(lb.a, root)
	lb.detour = c.AddLink(lb.a, c.AddSwitch("C"))
	insert(nextRule, lb.a, lb.trunk, 0, uint64(numInv)*width, 1)
	// Source leaves: each injects only its own slice into A.
	lb.src = make([]SwitchID, numInv)
	for i := range lb.src {
		lb.src[i] = c.AddSwitch(fmt.Sprintf("s%d", i))
		insert(i+1, lb.src[i], c.AddLink(lb.src[i], lb.a),
			uint64(i)*width, uint64(i+1)*width, 1)
	}
	return lb
}

// churn toggles a high-priority detour rule for leaf j's slice on the
// shared trunk node: every update's delta touches the trunk (a dep link
// of every invariant) but only one slice's atoms.
func (lb *localityBench) churn(b *testing.B, i int) {
	b.Helper()
	j := (i / 2) % len(lb.src)
	id := RuleID(1 << 20)
	if i%2 == 0 {
		if _, err := lb.c.InsertRule(Rule{ID: id, Source: lb.a, Link: lb.detour,
			Match:    Interval{Lo: uint64(j) * lb.width, Hi: uint64(j+1) * lb.width},
			Priority: 99}); err != nil {
			b.Fatal(err)
		}
	} else if _, err := lb.c.RemoveRule(id); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMonitorChurnLocality measures the tentpole of atom-granular
// dependency tracking: churn whose deltas all hit a link every invariant
// depends on, but each delta moving only one invariant's atoms — the
// case the paper's atoms insight says should be nearly free. At link
// granularity every update re-evaluates all numInv invariants; at atom
// granularity it re-evaluates ~1, with the rest skipped by range-sketch
// intersection (rskips/update).
//
// The link-granular arm runs at 10⁴ only: at 10⁵ it needs two million
// fixpoint evaluations for twenty updates (under 0.6 updates/sec at 10⁴
// already, an order slower again at 10⁵) and blows the default test
// timeout — being unrunnable there is precisely the measurement. The
// recorded gap: 10⁴ atom ≈950 updates/sec vs link ≈0.57; 10⁵ atom ≈49
// updates/sec at 1 eval/update with 99999 invariants range-skipped.
func BenchmarkMonitorChurnLocality(b *testing.B) {
	for _, numInv := range []int{10_000, 100_000} {
		numInv := numInv
		run := func(name string, cfg func(m *monitor.Monitor)) {
			b.Run(fmt.Sprintf("invariants-%d/%s", numInv, name), func(b *testing.B) {
				lb := buildLocalityBench(numInv)
				m := lb.c.Monitor()
				cfg(m)
				for i := range lb.src {
					m.Register(WatchReachable(lb.src[i], lb.dst[i]))
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					lb.churn(b, i)
				}
				b.StopTimer()
				st := m.Stats()
				b.ReportMetric(float64(st.Evaluations)/float64(b.N), "evals/update")
				b.ReportMetric(float64(st.RangeSkips)/float64(b.N), "rskips/update")
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/sec")
			})
		}
		run("atom-granular", func(m *monitor.Monitor) {})
		if numInv <= 10_000 {
			run("link-granular", func(m *monitor.Monitor) { m.SetLinkGranular(true) })
		}
	}
}
