package core

import (
	"deltanet/internal/intervalmap"
	"deltanet/internal/netgraph"
)

// Op distinguishes rule insertions from removals in a Delta.
type Op uint8

const (
	// OpInsert records a rule insertion (Algorithm 1).
	OpInsert Op = iota
	// OpRemove records a rule removal (Algorithm 2).
	OpRemove
	// OpBatch records an atomic batch of insertions and removals applied
	// by Network.ApplyBatch; the Delta holds the batch's net label change
	// and Rule is meaningless (zero).
	OpBatch
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpRemove:
		return "remove"
	default:
		return "batch"
	}
}

// LinkAtom is one edge-label change: atom Atom was added to or removed from
// label[Link].
type LinkAtom struct {
	Link netgraph.LinkID
	Atom intervalmap.AtomID
}

// Delta is the delta-graph of §3.3: the by-product of Algorithm 1 or 2
// restricted to the atoms whose owner changed. Added lists label bits that
// were set because the new owner forwards along that link; Removed lists
// bits cleared because a previous owner lost the atom.
//
// Property checkers consume Deltas to verify invariants incrementally: a
// new forwarding loop can only appear through an Added entry, and a new
// black hole only through a Removed entry. Multiple rule updates may be
// aggregated into one delta-graph via Merge.
type Delta struct {
	Rule RuleID
	Op   Op

	// NewAtoms records atom splits performed by CREATE_ATOMS+ during an
	// insertion (at most two). Splits alone change no forwarding
	// behaviour — the new atom inherits the old atom's flows — so they
	// appear here for observability, not as label changes.
	NewAtoms []intervalmap.SplitPair

	// Added and Removed are the ownership-driven label changes, in the
	// order the algorithm applied them.
	Added   []LinkAtom
	Removed []LinkAtom
}

// Empty reports whether the update changed no forwarding behaviour.
func (d *Delta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// AffectedAtoms returns the distinct atoms whose forwarding changed.
func (d *Delta) AffectedAtoms() []intervalmap.AtomID {
	seen := map[intervalmap.AtomID]bool{}
	var out []intervalmap.AtomID
	for _, la := range d.Added {
		if !seen[la.Atom] {
			seen[la.Atom] = true
			out = append(out, la.Atom)
		}
	}
	for _, la := range d.Removed {
		if !seen[la.Atom] {
			seen[la.Atom] = true
			out = append(out, la.Atom)
		}
	}
	return out
}

// Merge appends o's changes into d, producing an aggregated delta-graph
// (§3.3: "multiple rule updates may be aggregated into a delta-graph").
// The per-entry order is preserved; Rule/Op keep d's original values.
func (d *Delta) Merge(o *Delta) {
	d.NewAtoms = append(d.NewAtoms, o.NewAtoms...)
	d.Added = append(d.Added, o.Added...)
	d.Removed = append(d.Removed, o.Removed...)
}

// reset clears the delta for reuse, retaining capacity.
func (d *Delta) reset(rule RuleID, op Op) {
	d.Rule = rule
	d.Op = op
	d.NewAtoms = d.NewAtoms[:0]
	d.Added = d.Added[:0]
	d.Removed = d.Removed[:0]
}
