// Package check implements the network-wide property checkers that run on
// Delta-net's edge-labelled graph: forwarding-loop detection per rule
// update (§4.3.1), single-source reachability, all-pairs reachability via
// Algorithm 3 (§3.3), black-hole detection, and isolation/waypoint queries
// in the style of the paper's design goal 3.
//
// All checkers operate purely through the engine's read API (Label,
// ForwardLink, Graph), so they apply equally to a full network or to the
// restriction induced by a delta-graph.
package check

import (
	"deltanet/internal/bitset"
	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
	"deltanet/internal/netgraph"
)

// Loop describes one forwarding loop: a packet in Atom injected at the
// head of the first link revisits a node. Nodes lists the cycle in
// traversal order, starting and ending at the repeated node.
type Loop struct {
	Atom  intervalmap.AtomID
	Nodes []netgraph.NodeID
}

// FindLoopsDelta checks whether a rule update introduced forwarding loops,
// the per-update invariant of §4.3.1. Only label additions can create a
// loop (removals only break paths), so the check walks forward from each
// added (link, atom) pair. Forwarding is deterministic per atom — each
// node has at most one owning rule per atom — so each walk is linear in
// path length, as in the paper's iterative depth-first traversal.
//
// The returned loops are deduplicated per atom.
func FindLoopsDelta(n *core.Network, d *core.Delta) []Loop {
	sc := GetScratch()
	defer PutScratch(sc)
	return FindLoopsDeltaScratch(n, d, sc)
}

// FindLoopsDeltaScratch is FindLoopsDelta over caller-owned scratch —
// the monitor threads its per-worker Scratch through here so steady-state
// churn checks allocate nothing (beyond any loops found).
func FindLoopsDeltaScratch(n *core.Network, d *core.Delta, sc *Scratch) []Loop {
	if d == nil || len(d.Added) == 0 {
		return nil
	}
	var loops []Loop
	sc.beginAtoms(n.MaxAtomID())
	for _, la := range d.Added {
		if sc.atomGen[la.Atom] == sc.atomEpoch {
			continue // already reported a loop for this atom
		}
		l := n.Graph().Link(la.Link)
		if loop, ok := traceLoop(n, l.Src, la.Atom, sc); ok {
			loops = append(loops, loop)
			sc.markAtom(la.Atom)
		}
	}
	return loops
}

// traceLoop follows atom's forwarding function from node start. Because
// each (node, atom) has at most one out-edge, the walk either terminates
// (delivery, drop, or rule miss) or revisits a node, which is a loop.
// Walk state lives in sc's epoch-stamped position arrays; only a found
// loop's node list is allocated.
func traceLoop(n *core.Network, start netgraph.NodeID, atom intervalmap.AtomID, sc *Scratch) (Loop, bool) {
	g := n.Graph()
	sc.growNodes(g.NumNodes())
	sc.beginWalk()
	v := start
	for {
		if sc.posGen[v] == sc.walkGen {
			at := sc.pos[v]
			return Loop{Atom: atom, Nodes: append(append([]netgraph.NodeID(nil), sc.path[at:]...), v)}, true
		}
		sc.posGen[v] = sc.walkGen
		sc.pos[v] = int32(len(sc.path))
		sc.path = append(sc.path, v)
		next := n.ForwardLink(v, atom)
		if next == netgraph.NoLink || g.IsDropLink(next) {
			return Loop{}, false
		}
		v = g.Link(next).Dst
	}
}

// FindLoopsAll scans the entire data plane for forwarding loops across all
// atoms. It is the non-incremental check used to validate the incremental
// one and to audit consistent snapshots. Per atom the forwarding function
// is a functional graph (at most one out-edge per node), so one memoized
// pass over the nodes classifies every node as terminating or looping; the
// total cost is O(atoms × nodes). At most one loop is reported per atom
// per distinct cycle entry.
func FindLoopsAll(n *core.Network) []Loop {
	sc := GetScratch()
	defer PutScratch(sc)
	return findLoops(n, nil, sc)
}

// FindLoopsAllScratch is FindLoopsAll over caller-owned scratch.
func FindLoopsAllScratch(n *core.Network, sc *Scratch) []Loop {
	return findLoops(n, nil, sc)
}

// FindLoopsAtoms is FindLoopsAll restricted to a candidate atom set: it
// returns every forwarding loop whose atom is in atoms, walking nothing
// else. It is the engine of the monitor's batch-aware LoopFree clearing:
// from a violated state, a loop can only persist on a previously looping
// atom or newly arise on an atom the delta added labels for (§4.3.1
// lifted to atom granularity), so re-walking that candidate set is a
// complete re-check while scanning a fraction of the atom space.
func FindLoopsAtoms(n *core.Network, atoms *bitset.Set) []Loop {
	sc := GetScratch()
	defer PutScratch(sc)
	return FindLoopsAtomsScratch(n, atoms, sc)
}

// FindLoopsAtomsScratch is FindLoopsAtoms over caller-owned scratch.
func FindLoopsAtomsScratch(n *core.Network, atoms *bitset.Set, sc *Scratch) []Loop {
	if atoms == nil {
		return findLoops(n, nil, sc)
	}
	return findLoops(n, atoms.Contains, sc)
}

// Node classifications of the memoized loop scan. loopUnknown must be
// zero: Scratch.verdictAt returns it for unstamped entries.
const (
	loopUnknown uint8 = iota
	loopSafe
	loopLooping
)

// findLoops runs the memoized per-atom functional-graph loop scan over
// every atom for which include returns true (nil = all atoms). Per-atom
// state (node verdicts, walk positions) lives in sc's epoch-stamped
// arrays, so moving to the next atom is a counter bump instead of the
// former O(NumNodes) verdict rewrite.
func findLoops(n *core.Network, include func(int) bool, sc *Scratch) []Loop {
	g := n.Graph()
	sc.growNodes(g.NumNodes())
	var loops []Loop
	for atom := 0; atom < n.MaxAtomID(); atom++ {
		if include != nil && !include(atom) {
			continue
		}
		a := intervalmap.AtomID(atom)
		// Start points: sources of links carrying the atom.
		sc.starts = sc.starts[:0]
		for _, l := range g.Links() {
			if n.Label(l.ID).Contains(atom) {
				sc.starts = append(sc.starts, l.Src)
			}
		}
		if len(sc.starts) == 0 {
			continue
		}
		sc.beginVerdicts()
		// One walk epoch serves the whole atom: every node stamped with a
		// position also receives a verdict when its walk ends, and the
		// verdict check precedes the position check, so stale positions
		// from an earlier start's walk are never consulted.
		sc.beginWalk()
		for _, start := range sc.starts {
			if sc.verdictAt(start) != loopUnknown {
				continue
			}
			sc.path = sc.path[:0]
			v := start
			result := loopSafe
			for {
				if verdict := sc.verdictAt(v); verdict != loopUnknown {
					result = verdict
					break
				}
				if sc.posGen[v] == sc.walkGen {
					// Cycle: path[p:] revisits v.
					p := sc.pos[v]
					cycle := append(append([]netgraph.NodeID(nil), sc.path[p:]...), v)
					loops = append(loops, Loop{Atom: a, Nodes: cycle})
					result = loopLooping
					break
				}
				sc.posGen[v] = sc.walkGen
				sc.pos[v] = int32(len(sc.path))
				sc.path = append(sc.path, v)
				next := n.ForwardLink(v, a)
				if next == netgraph.NoLink || g.IsDropLink(next) {
					result = loopSafe
					break
				}
				v = g.Link(next).Dst
			}
			for _, u := range sc.path {
				sc.setVerdict(u, result)
			}
		}
	}
	return loops
}
