// Package ingest provides the bounded multi-producer single-consumer
// ring that decouples connection goroutines (decoding binary frames,
// replaying feeds) from the engine's serial apply path. Producers are
// the many ingestion sources; the single consumer is the server's
// coalescer, which drains runs of operations into core.ApplyBatch
// calls.
//
// The ring is a fixed-size Vyukov-style sequence-stamped buffer: the
// uncontended fast path of both Push and Pop is a handful of atomic
// operations with no lock, and slots hand values across with
// acquire/release ordering on their sequence stamps. Capacity is the
// backpressure boundary — when the ring is full, TryPush fails and the
// caller decides what the protocol says (the server emits a "busy"
// frame, then blocks in Push), so memory stays bounded no matter how
// fast feeds arrive. Blocking Push/Pop spin briefly and then park on a
// condition variable; the waiter flags are checked on the fast path
// with one atomic load, so an uncontended ring never touches the lock.
package ingest

import (
	"runtime"
	"sync"
	"sync/atomic"

	"deltanet/internal/core"
)

// Entry is one queued operation: a decoded rule op plus the producer's
// connection tag (0 for in-process feeds; used only for diagnostics).
type Entry struct {
	Op   core.BatchOp
	Conn uint32
}

type slot struct {
	seq atomic.Uint64
	e   Entry
}

// Ring is the bounded MPSC queue. Producers call TryPush/Push from any
// goroutine; Pop/TryPop must be called from a single consumer
// goroutine. Close wakes every blocked producer and the consumer.
type Ring struct {
	mask  uint64
	slots []slot

	// enq is the producers' ticket counter; deq is owned by the single
	// consumer (atomic only so Depth can read it from other goroutines).
	enq atomic.Uint64
	deq atomic.Uint64

	closed atomic.Bool

	// popWait / pushWaiters are the park flags the fast paths check; mu
	// and the conds only see contended traffic. mu is package-local and
	// leaf: nothing is acquired while holding it.
	//
	//deltanet:lockrank 10
	mu          sync.Mutex
	notEmpty    *sync.Cond
	notFull     *sync.Cond
	popWait     atomic.Bool
	pushWaiters atomic.Int32
}

// spinBudget is how many TryPush/TryPop attempts the blocking paths
// make (yielding between attempts) before parking on the lock.
const spinBudget = 64

// New returns a ring with the given capacity rounded up to a power of
// two (minimum 2).
func New(capacity int) *Ring {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	r := &Ring{mask: n - 1, slots: make([]slot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	r.notEmpty = sync.NewCond(&r.mu)
	r.notFull = sync.NewCond(&r.mu)
	return r
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Depth returns the approximate number of queued entries (a gauge, not
// a synchronization primitive).
func (r *Ring) Depth() int {
	d := int64(r.enq.Load()) - int64(r.deq.Load())
	if d < 0 {
		d = 0
	}
	return int(d)
}

// Pushed returns the total number of entries ever enqueued — the global
// ticket a sync barrier compares against the consumer's applied count.
func (r *Ring) Pushed() uint64 { return r.enq.Load() }

// tryPush is the lock-free enqueue core; it performs no waiter
// signaling so callers already holding mu can use it too.
func (r *Ring) tryPush(e Entry) bool {
	if r.closed.Load() {
		return false
	}
	pos := r.enq.Load()
	for {
		s := &r.slots[pos&r.mask]
		switch seq := s.seq.Load(); {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.e = e
				s.seq.Store(pos + 1) // release: publishes s.e to the consumer
				return true
			}
			pos = r.enq.Load()
		case seq < pos:
			return false // the slot one lap back is still occupied: full
		default:
			pos = r.enq.Load() // another producer won this slot; reload
		}
	}
}

// TryPush enqueues e without blocking; it fails when the ring is full
// or closed.
func (r *Ring) TryPush(e Entry) bool {
	if !r.tryPush(e) {
		return false
	}
	if r.popWait.Load() {
		r.mu.Lock()
		r.notEmpty.Signal()
		r.mu.Unlock()
	}
	return true
}

// Push enqueues e, blocking while the ring is full. It reports false
// when the ring was closed before the entry could be enqueued.
func (r *Ring) Push(e Entry) bool {
	for i := 0; i < spinBudget; i++ {
		if r.TryPush(e) {
			return true
		}
		if r.closed.Load() {
			return false
		}
		runtime.Gosched()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// The waiter count is raised before the retry and stays raised
	// across the Wait, so a consumer that pops at any point after our
	// failed attempt is guaranteed to see it and broadcast (the Dekker
	// handshake mirrored in Pop). The retry uses the core tryPush — mu
	// is held, so the consumer-side signal path must not be re-entered.
	r.pushWaiters.Add(1)
	defer r.pushWaiters.Add(-1)
	for {
		if r.tryPush(e) {
			r.notEmpty.Signal() // mu already held; wake a parked consumer
			return true
		}
		if r.closed.Load() {
			return false
		}
		r.notFull.Wait()
	}
}

// tryPop is the dequeue core; no waiter signaling (see tryPush).
func (r *Ring) tryPop() (Entry, bool) {
	pos := r.deq.Load()
	s := &r.slots[pos&r.mask]
	if s.seq.Load() != pos+1 {
		return Entry{}, false // empty (or the producer has not published yet)
	}
	e := s.e
	s.e = Entry{}
	s.seq.Store(pos + uint64(len(r.slots))) // release the slot for the next lap
	r.deq.Store(pos + 1)
	return e, true
}

// TryPop dequeues the next entry without blocking. Single consumer
// only.
func (r *Ring) TryPop() (Entry, bool) {
	e, ok := r.tryPop()
	if ok && r.pushWaiters.Load() > 0 {
		r.mu.Lock()
		r.notFull.Broadcast()
		r.mu.Unlock()
	}
	return e, ok
}

// Pop dequeues the next entry, blocking while the ring is empty. It
// reports false only when the ring is closed and fully drained — the
// consumer's termination condition. Single consumer only.
func (r *Ring) Pop() (Entry, bool) {
	for i := 0; i < spinBudget; i++ {
		if e, ok := r.TryPop(); ok {
			return e, true
		}
		if r.closed.Load() {
			// Closed: one final drain attempt below decides emptiness.
			break
		}
		runtime.Gosched()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// popWait stays raised across the Wait so a producer publishing at
	// any point after the failed attempt below sees it and signals.
	r.popWait.Store(true)
	defer r.popWait.Store(false)
	for {
		e, ok := r.tryPop()
		if ok {
			if r.pushWaiters.Load() > 0 {
				r.notFull.Broadcast() // mu already held
			}
			return e, true
		}
		if r.closed.Load() {
			return Entry{}, false
		}
		r.notEmpty.Wait()
	}
}

// Close marks the ring closed and wakes every blocked producer and the
// consumer. Entries already queued remain poppable (Pop drains them
// before reporting closure).
func (r *Ring) Close() {
	r.closed.Store(true)
	r.mu.Lock()
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
	r.mu.Unlock()
}
