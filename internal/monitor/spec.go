package monitor

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"deltanet/internal/bitset"
	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
	"deltanet/internal/netgraph"
)

// Spec is a standing invariant the monitor keeps continuously checked.
// A Spec is pure description — all cached verdict and dependency state
// lives in the monitor — so the same Spec value may be registered with
// several monitors.
//
// The String form doubles as the server wire syntax for the W command
// ("reach 0 2", "waypoint 0 3 1", "isolated 0,1 4,5", "loopfree",
// "blackholefree").
type Spec interface {
	fmt.Stringer

	// dirty reports whether the delta could change the invariant's
	// verdict, given the bookkeeping from its last evaluation. changed is
	// the set of links with label changes in d (never empty).
	dirty(st *state, d *core.Delta, changed *bitset.Set) bool

	// eval (re-)evaluates the invariant against the live network and
	// refreshes st's dependency bookkeeping. ctx carries the triggering
	// delta plus any results the caller already computed from it; nil
	// means a full evaluation (registration, RecheckAll). eval runs
	// concurrently with evals of OTHER invariants, so it must only read
	// the network and write its own st. sc is the caller's query
	// scratch — one per evaluation worker, so its epoch-stamped state is
	// single-goroutine within a call — and anything read off it must be
	// consumed before eval returns.
	eval(n *core.Network, ctx *applyCtx, st *state, sc *check.Scratch) verdict
}

// specKey is the canonical identity registrations are refcounted by:
// the FormatSpec serialization, which is the wire String form plus
// BlackHoleFree's sink set — sinks are not part of the wire syntax but
// do change the invariant's meaning, so two registrations with
// different sinks must not be conflated.
func specKey(s Spec) string { return FormatSpec(s) }

// applyCtx is one Apply call's context: the delta and, optionally, the
// per-update loop check's result so a LoopFree invariant need not repeat
// it (the Checker and server both run that check anyway).
type applyCtx struct {
	d          *core.Delta
	loops      []check.Loop
	loopsKnown bool // loops is authoritative for d (it may be empty)

	// rescans, when non-nil, accumulates the atoms re-walked by
	// LoopFree's violated-state candidate re-scan (the monitor's
	// loopRescans counter, exported as Stats.LoopRescanAtoms).
	rescans *atomic.Uint64
}

// verdict is one evaluation's outcome.
type verdict struct {
	violated bool
	detail   string
}

// state is the monitor's cached bookkeeping for one registered invariant:
// the verdict of the last evaluation plus whatever that evaluation needs
// to decide, next delta, whether it must run again.
type state struct {
	status Status
	detail string

	// deps holds the links the last evaluation examined; nil means the
	// invariant depends on everything (LoopFree, BlackHoleFree). A delta
	// touching no dep link cannot flip the verdict (see check.fixpoint's
	// deps documentation for the argument).
	deps *bitset.Set

	// ranges refines deps to atom granularity: per dep link, the coarse
	// sketch of atom ids whose label changes there could alter the
	// verdict (check.ReachSummary). A dep link without a sketch is
	// tracked at link granularity (every atom relevant). Sketches are
	// only trustworthy for atoms that existed at evaluation time —
	// atomSeq anchors that.
	ranges check.DepRanges

	// atomSeq is the engine's atom allocation counter when ranges was
	// recorded. A delta touching an atom born after it (split-minted or
	// GC-recycled id) bypasses the sketch intersection and dirties the
	// invariant conservatively.
	atomSeq int64

	// linksAtEval is the topology's link count when deps was recorded.
	// Links added later are out-links of some node, so a change on one is
	// conservatively treated as a dependency hit.
	linksAtEval int

	// bhNodes caches BlackHoleFree's currently violating nodes so a delta
	// only re-examines nodes incident to changed links plus these.
	bhNodes *bitset.Set

	// loopAtoms caches LoopFree's looping atoms while violated, and
	// loopAtomSeq the atom allocation stamp when they were recorded. A
	// violated-state re-evaluation walks only these atoms, the delta's
	// added-label atoms, and atoms born since the stamp — the batch-aware
	// clearing path — instead of the whole atom space. nil while the
	// invariant holds (or before its first violated evaluation).
	loopAtoms   *bitset.Set
	loopAtomSeq int64
}

// depsHit is the shared dirtiness test for dependency-tracked invariants.
func depsHit(st *state, changed *bitset.Set) bool {
	if st.deps == nil {
		return true
	}
	if changed.Max() >= st.linksAtEval {
		return true // link born after the last evaluation
	}
	return st.deps.Intersects(changed)
}

// Reachable asserts that at least one packet can flow from From to To.
type Reachable struct {
	From, To netgraph.NodeID
}

func (r Reachable) String() string { return fmt.Sprintf("reach %d %d", r.From, r.To) }

func (r Reachable) dirty(st *state, _ *core.Delta, changed *bitset.Set) bool {
	return depsHit(st, changed)
}

func (r Reachable) eval(n *core.Network, _ *applyCtx, st *state, sc *check.Scratch) verdict {
	deps := bitset.New(n.Graph().NumLinks())
	reach, ranges := check.ReachSummary(n, r.From, netgraph.NoNode, deps, sc)
	st.deps = deps
	st.ranges = ranges
	st.atomSeq = n.AtomAllocSeq()
	atoms := reach[r.To]
	if atoms == nil || atoms.Empty() {
		return verdict{violated: true, detail: "no packets can flow"}
	}
	return verdict{detail: fmt.Sprintf("%d atom(s) can flow", atoms.Len())}
}

// Waypoint asserts that every packet flowing from From to To traverses
// Via.
type Waypoint struct {
	From, To, Via netgraph.NodeID
}

func (w Waypoint) String() string { return fmt.Sprintf("waypoint %d %d %d", w.From, w.To, w.Via) }

func (w Waypoint) dirty(st *state, _ *core.Delta, changed *bitset.Set) bool {
	return depsHit(st, changed)
}

func (w Waypoint) eval(n *core.Network, _ *applyCtx, st *state, sc *check.Scratch) verdict {
	deps := bitset.New(n.Graph().NumLinks())
	reach, ranges := check.ReachSummary(n, w.From, w.Via, deps, sc)
	st.deps = deps
	st.ranges = ranges
	st.atomSeq = n.AtomAllocSeq()
	bypass := reach[w.To]
	if bypass != nil && !bypass.Empty() {
		return verdict{violated: true, detail: fmt.Sprintf("%d atom(s) bypass the waypoint", bypass.Len())}
	}
	return verdict{detail: "all flows traverse the waypoint"}
}

// Isolated asserts that no packet can flow from any node in GroupA to any
// node in GroupB.
type Isolated struct {
	GroupA, GroupB []netgraph.NodeID
}

func (i Isolated) String() string {
	return "isolated " + joinNodes(i.GroupA) + " " + joinNodes(i.GroupB)
}

func joinNodes(nodes []netgraph.NodeID) string {
	parts := make([]string, len(nodes))
	for i, v := range nodes {
		parts[i] = strconv.Itoa(int(v))
	}
	return strings.Join(parts, ",")
}

func (i Isolated) dirty(st *state, _ *core.Delta, changed *bitset.Set) bool {
	return depsHit(st, changed)
}

// eval runs one single-source fixpoint per GroupA node and stops at the
// first leaking pair. On violation deps holds (at least) every link of the
// witness pair's fixpoint, which suffices: the verdict can only flip back
// to isolated if that pair's reachability changes, and any such change
// touches a recorded link. On success deps covers every pair. The atom
// sketches merge across sources (a shared link keeps the union of the
// atoms relevant to each source's fixpoint).
func (i Isolated) eval(n *core.Network, _ *applyCtx, st *state, sc *check.Scratch) verdict {
	total := bitset.New(n.Graph().NumLinks())
	st.deps = total
	st.ranges = nil
	st.atomSeq = n.AtomAllocSeq()
	srcDeps := bitset.New(n.Graph().NumLinks()) // per-source deps, reused
	for _, a := range i.GroupA {
		srcDeps.Clear()
		reach, ranges := check.ReachSummary(n, a, netgraph.NoNode, srcDeps, sc)
		st.ranges = check.MergeDepRanges(st.ranges, total, ranges, srcDeps)
		total.UnionWith(srcDeps)
		for _, b := range i.GroupB {
			if int(b) < len(reach) && reach[b] != nil && !reach[b].Empty() {
				return verdict{
					violated: true,
					detail:   fmt.Sprintf("%d atom(s) leak %d -> %d", reach[b].Len(), a, b),
				}
			}
		}
	}
	return verdict{detail: "groups are isolated"}
}

// LoopFree asserts that the data plane contains no forwarding loops.
type LoopFree struct{}

func (LoopFree) String() string { return "loopfree" }

// dirty: while loop-free, only label additions can close a cycle
// (removals only break paths), so removal-only deltas are skipped. While
// violated, any change may clear or keep the loop.
func (LoopFree) dirty(st *state, d *core.Delta, _ *bitset.Set) bool {
	if st.status == Violated {
		return true
	}
	return len(d.Added) > 0
}

// eval: from a loop-free state any new loop must involve a net-added
// (link, atom) label — the §4.3.1 argument, applied to the merged delta —
// so walking forward from the delta's additions is a complete check (and
// when the caller already ran it, its result is reused rather than
// recomputed).
//
// From a violated state the full scan used to run on every update; now
// the candidate-set trick mirrors BlackHoleFree: a loop after the delta
// either survived from the previous evaluation (its atom is in the
// recorded loopAtoms), was newly closed by an added label (its atom is
// touched by d.Added), or lives on an atom id that did not exist when
// loopAtoms was recorded (split-minted or GC-recycled — caught by the
// allocation stamp, the same anchor the dependency sketches use). Only
// that candidate set is re-walked. Evaluations with no delta context
// (registration, RecheckAll, restored state) still run the full scan,
// which also (re)establishes the base case of the induction.
func (LoopFree) eval(n *core.Network, ctx *applyCtx, st *state, sc *check.Scratch) verdict {
	st.deps = nil // dirtiness is decided structurally, not by link set
	st.ranges = nil
	var loops []check.Loop
	switch {
	case ctx != nil && st.status == Holds && ctx.loopsKnown:
		loops = ctx.loops
	case ctx != nil && st.status == Holds:
		loops = check.FindLoopsDeltaAutoScratch(n, ctx.d, 0, sc)
	case ctx != nil && ctx.d != nil && st.status == Violated && st.loopAtoms != nil:
		cand := loopFreeCandidates(n, ctx.d, st)
		if ctx.rescans != nil {
			ctx.rescans.Add(uint64(cand.Len()))
		}
		loops = check.FindLoopsAtomsScratch(n, cand, sc)
	default:
		loops = check.FindLoopsAllScratch(n, sc)
	}
	if len(loops) > 0 {
		if st.loopAtoms == nil {
			st.loopAtoms = bitset.New(n.MaxAtomID())
		} else {
			st.loopAtoms.Clear()
		}
		for _, l := range loops {
			st.loopAtoms.Add(int(l.Atom))
		}
		st.loopAtomSeq = n.AtomAllocSeq()
		iv, _ := n.AtomInterval(loops[0].Atom)
		return verdict{
			violated: true,
			detail:   fmt.Sprintf("%d looping atom(s), e.g. %v through %d node(s)", len(loops), iv, len(loops[0].Nodes)-1),
		}
	}
	st.loopAtoms = nil
	return verdict{detail: "no forwarding loops"}
}

// loopFreeCandidates builds the violated-state re-scan set: previously
// looping atoms, atoms with added labels in the delta, and atoms born
// after the recorded allocation stamp.
func loopFreeCandidates(n *core.Network, d *core.Delta, st *state) *bitset.Set {
	cand := st.loopAtoms.Clone()
	for _, la := range d.Added {
		cand.Add(int(la.Atom))
	}
	if n.AtomAllocSeq() > st.loopAtomSeq {
		for id := 0; id < n.MaxAtomID(); id++ {
			if n.AtomBornSeq(intervalmap.AtomID(id)) > st.loopAtomSeq {
				cand.Add(id)
			}
		}
	}
	return cand
}

// BlackHoleFree asserts that no node silently discards traffic it
// receives: every delivered atom is forwarded or explicitly dropped.
// Sinks lists nodes that legitimately terminate flows (nil = none).
type BlackHoleFree struct {
	Sinks map[netgraph.NodeID]bool
}

func (BlackHoleFree) String() string { return "blackholefree" }

// dirty: any label change can create or clear a hole at the changed
// link's endpoints, so every delta re-evaluates — but eval only touches
// those endpoints plus previously violating nodes.
func (BlackHoleFree) dirty(*state, *core.Delta, *bitset.Set) bool { return true }

func (b BlackHoleFree) eval(n *core.Network, ctx *applyCtx, st *state, _ *check.Scratch) verdict {
	g := n.Graph()
	st.deps = nil
	st.ranges = nil
	if ctx == nil || st.bhNodes == nil {
		// Full scan; cache the violating node set for incremental mode.
		st.bhNodes = bitset.New(g.NumNodes())
		for _, h := range check.FindBlackHoles(n, b.Sinks) {
			st.bhNodes.Add(int(h.Node))
		}
		return b.verdictFrom(st)
	}
	// A node's black-hole set reads only its in- and out-link labels, so
	// only nodes incident to a changed link can change status; previously
	// violating nodes are rechecked so clears are seen.
	candidates := st.bhNodes.Clone()
	for _, la := range ctx.d.Added {
		l := g.Link(la.Link)
		candidates.Add(int(l.Src))
		candidates.Add(int(l.Dst))
	}
	for _, la := range ctx.d.Removed {
		l := g.Link(la.Link)
		candidates.Add(int(l.Src))
		candidates.Add(int(l.Dst))
	}
	candidates.ForEach(func(v int) bool {
		node := netgraph.NodeID(v)
		if b.Sinks[node] || (g.DropNode() != netgraph.NoNode && node == g.DropNode()) {
			return true
		}
		if check.BlackHoleAtoms(n, node).Empty() {
			st.bhNodes.Remove(v)
		} else {
			st.bhNodes.Add(v)
		}
		return true
	})
	return b.verdictFrom(st)
}

func (BlackHoleFree) verdictFrom(st *state) verdict {
	if n := st.bhNodes.Len(); n > 0 {
		return verdict{violated: true, detail: fmt.Sprintf("%d node(s) black-hole traffic, first node %d", n, st.bhNodes.Min())}
	}
	return verdict{detail: "no black holes"}
}
