package check

import (
	"deltanet/internal/bitset"
	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
	"deltanet/internal/netgraph"
)

// Reachable computes the set of atoms (packets) that can flow from node
// from to node to along some forwarding path — the paper's design goal 1:
// "efficiently find all packets that can reach a node B from A" in one
// query rather than one SAT call per witness.
//
// It runs a monotone worklist fixpoint: reach[v] is the set of atoms that
// can arrive at v starting from from; an atom propagates over link v→w iff
// it is in reach[v] ∩ label[v→w]. Injection at from is unrestricted (all
// atoms), so reach[from] is conceptually the full space; the returned set
// is reach[to] restricted to atoms that exist on some link.
func Reachable(n *core.Network, from, to netgraph.NodeID) *bitset.Set {
	g := n.Graph()
	reach := make([]*bitset.Set, g.NumNodes())
	inQueue := make([]bool, g.NumNodes())
	queue := []netgraph.NodeID{from}
	inQueue[from] = true

	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		for _, lid := range g.Out(v) {
			label := n.Label(lid)
			if label.Empty() {
				continue
			}
			l := g.Link(lid)
			var contribution *bitset.Set
			if v == from {
				// Everything the first hop admits.
				contribution = label
			} else {
				contribution = bitset.Intersect(reach[v], label)
				if contribution.Empty() {
					continue
				}
			}
			w := l.Dst
			if reach[w] == nil {
				reach[w] = bitset.New(n.MaxAtomID())
			}
			before := reach[w].Len()
			reach[w].UnionWith(contribution)
			if reach[w].Len() != before && !inQueue[w] && w != from {
				queue = append(queue, w)
				inQueue[w] = true
			}
		}
	}
	if reach[to] == nil {
		return bitset.New(0)
	}
	return reach[to]
}

// AffectedByLinkFailure answers the paper's exemplar "what if" query
// (§4.3.2): what is the fate of packets that are using a link that fails?
// For Delta-net the affected packets are available in constant time as
// label[link]; the subgraph of all flows involving those packets is the
// restriction of the edge-labelled graph to edges whose label intersects
// it. The returned Subgraph represents, via one labelled graph, all
// forwarding graphs Veriflow would have to construct per affected
// equivalence class.
func AffectedByLinkFailure(n *core.Network, link netgraph.LinkID) *Subgraph {
	affected := n.Label(link)
	sub := &Subgraph{Affected: affected.Clone()}
	if affected.Empty() {
		return sub
	}
	g := n.Graph()
	for _, l := range g.Links() {
		lbl := n.Label(l.ID)
		if lbl.Intersects(affected) {
			sub.Links = append(sub.Links, l.ID)
			sub.Labels = append(sub.Labels, bitset.Intersect(lbl, affected))
		}
	}
	return sub
}

// Subgraph is the restriction of the edge-labelled graph to a set of
// atoms: the compact representation of "all flows of packets through the
// network that would be affected" by an event (§4.3.2).
type Subgraph struct {
	Affected *bitset.Set // the atoms of interest
	Links    []netgraph.LinkID
	Labels   []*bitset.Set // parallel to Links: label ∩ Affected
}

// NumEdges returns the number of labelled edges in the subgraph.
func (s *Subgraph) NumEdges() int { return len(s.Links) }

// LoopsInSubgraph runs per-atom loop detection restricted to the affected
// atoms of a subgraph (the "+Loops" column of Table 4).
func LoopsInSubgraph(n *core.Network, sub *Subgraph) []Loop {
	var loops []Loop
	g := n.Graph()
	sub.Affected.ForEach(func(atom int) bool {
		a := intervalmap.AtomID(atom)
		// Walk from the source of each subgraph edge carrying the atom.
		for i, lid := range sub.Links {
			if !sub.Labels[i].Contains(atom) {
				continue
			}
			if loop, ok := traceLoop(n, g.Link(lid).Src, a); ok {
				loops = append(loops, loop)
				return true // one loop per atom suffices
			}
		}
		return true
	})
	return loops
}

// BlackHole describes packets that arrive at a node with no matching rule:
// the node receives atoms on some in-link whose forwarding function is
// undefined there (distinct from an explicit drop, which is intentional).
type BlackHole struct {
	Node  netgraph.NodeID
	Atoms *bitset.Set
}

// FindBlackHoles reports, for every node, the atoms that some in-link
// delivers but that no rule at the node matches. Edge nodes that are
// legitimate traffic sinks can be excluded via the sinks set (nil means no
// exclusions).
func FindBlackHoles(n *core.Network, sinks map[netgraph.NodeID]bool) []BlackHole {
	g := n.Graph()
	var out []BlackHole
	for v := netgraph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if sinks[v] || (g.DropNode() != netgraph.NoNode && v == g.DropNode()) {
			continue
		}
		incoming := bitset.New(0)
		for _, lid := range g.In(v) {
			incoming.UnionWith(n.Label(lid))
		}
		if incoming.Empty() {
			continue
		}
		// Subtract everything v forwards or drops.
		for _, lid := range g.Out(v) {
			incoming.DifferenceWith(n.Label(lid))
		}
		if !incoming.Empty() {
			out = append(out, BlackHole{Node: v, Atoms: incoming})
		}
	}
	return out
}

// Isolated verifies a traffic-isolation property (§3.3: "traffic isolation
// properties"): no packet in the given atom set can flow from any node in
// groupA to any node in groupB. It returns the first violating atom set
// found (nil when isolated).
func Isolated(n *core.Network, groupA, groupB []netgraph.NodeID, atoms *bitset.Set) *bitset.Set {
	inB := map[netgraph.NodeID]bool{}
	for _, b := range groupB {
		inB[b] = true
	}
	for _, a := range groupA {
		for _, b := range groupB {
			r := Reachable(n, a, b)
			if atoms != nil {
				r.IntersectWith(atoms)
			}
			if !r.Empty() {
				return r
			}
		}
	}
	return nil
}

// Waypoint verifies that every packet flowing from from to to traverses
// the waypoint node: removing the waypoint's out-links from consideration,
// nothing must remain reachable. It returns the atoms that bypass the
// waypoint (empty when the property holds).
func Waypoint(n *core.Network, from, to, waypoint netgraph.NodeID) *bitset.Set {
	g := n.Graph()
	// Fixpoint identical to Reachable but refusing to traverse waypoint.
	reach := make([]*bitset.Set, g.NumNodes())
	inQueue := make([]bool, g.NumNodes())
	queue := []netgraph.NodeID{from}
	inQueue[from] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		if v == waypoint {
			continue // flows must not pass through
		}
		for _, lid := range g.Out(v) {
			label := n.Label(lid)
			if label.Empty() {
				continue
			}
			var contribution *bitset.Set
			if v == from {
				contribution = label
			} else {
				contribution = bitset.Intersect(reach[v], label)
				if contribution.Empty() {
					continue
				}
			}
			w := g.Link(lid).Dst
			if reach[w] == nil {
				reach[w] = bitset.New(n.MaxAtomID())
			}
			before := reach[w].Len()
			reach[w].UnionWith(contribution)
			if reach[w].Len() != before && !inQueue[w] && w != from {
				queue = append(queue, w)
				inQueue[w] = true
			}
		}
	}
	if reach[to] == nil {
		return bitset.New(0)
	}
	return reach[to]
}
