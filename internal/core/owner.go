package core

// Flat owner storage. The paper's owner[α][source] is a balanced BST of
// rules per (atom, source); transcribing that literally cost one Go map
// per atom plus one heap-allocated tree node per (atom, source, rule) —
// pointer-chasing on every ownership reassignment and a large
// GC-scannable object graph. This file replaces it with struct-of-arrays
// storage:
//
//   - ruleStore: every live rule lives in one dense slot-indexed []Rule
//     arena (pointer-free records), with a LIFO free list so steady-state
//     churn recycles slots instead of allocating;
//   - ownerAtom: one atom's whole owner table — a sorted cell directory
//     (one pointer-free ownerCell per source node) plus a single packed
//     []int32 slab of rule slots, priority-sorted per cell, the cell's
//     maximum (= the paper's bst.Max()) being its last slab entry.
//
// Ownership operations become binary searches plus int32 memmoves over
// contiguous memory. Slabs and cell directories retain capacity across
// delete/insert cycles and atom death (GC merge), so a steady-state
// insert/remove workload performs no allocation at all in the owner
// structures. Batch replay keeps its lock-freedom: phase 4 workers touch
// only their own atom's ownerAtom, which shares storage with no other
// atom.

import (
	"sort"

	"deltanet/internal/netgraph"
)

// noSlot marks "no rule" in prev/top comparisons.
const noSlot int32 = -1

// ruleStore is the dense arena of live rules. Slots are recycled LIFO;
// byID maps rule ids to slots. recs is contiguous and pointer-free, so
// the garbage collector never scans rule storage, and key comparisons
// during owner-list searches index a flat array instead of chasing a
// heap pointer per rule.
type ruleStore struct {
	recs []Rule
	free []int32
	byID map[RuleID]int32
}

func newRuleStore() ruleStore {
	return ruleStore{byID: map[RuleID]int32{}}
}

// alloc stores r and returns its slot. Pointers into recs obtained
// before an alloc are invalidated by growth; callers must re-derive.
func (s *ruleStore) alloc(r Rule) int32 {
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
		s.recs[slot] = r
	} else {
		slot = int32(len(s.recs))
		s.recs = append(s.recs, r)
	}
	s.byID[r.ID] = slot
	return slot
}

// release frees the slot holding rule id.
func (s *ruleStore) release(id RuleID) {
	slot, ok := s.byID[id]
	if !ok {
		return
	}
	delete(s.byID, id)
	s.recs[slot] = Rule{}
	s.free = append(s.free, slot)
}

// releaseSlot frees a specific slot. The id→slot index entry is only
// removed when it still names this slot — a batch that removes a rule
// and re-inserts its id has already repointed the index at the new slot.
func (s *ruleStore) releaseSlot(id RuleID, slot int32) {
	if cur, ok := s.byID[id]; ok && cur == slot {
		delete(s.byID, id)
	}
	s.recs[slot] = Rule{}
	s.free = append(s.free, slot)
}

func (s *ruleStore) slotOf(id RuleID) (int32, bool) {
	slot, ok := s.byID[id]
	return slot, ok
}

func (s *ruleStore) keyOf(slot int32) prioKey { return s.recs[slot].key() }

func (s *ruleStore) len() int { return len(s.byID) }

// ownerCell is one (atom, source) entry in an atom's cell directory: the
// cell's rule slots occupy slab[off : off+n], sorted by priority key
// ascending (the owner — bst.Max() in the paper — is the last entry).
//
//deltanet:pointerfree
type ownerCell struct {
	node netgraph.NodeID
	off  int32
	n    int32
}

// ownerAtom is one atom's owner table. cells is sorted by node for
// binary search; the cells' slab windows are contiguous, ascending, and
// exactly cover slab. Both backing arrays hold no pointers, and both
// retain capacity across mutations and atom death, so churn over a
// warmed atom allocates nothing.
type ownerAtom struct {
	cells []ownerCell
	slab  []int32
}

// findCell returns the index of node's cell, or (insertion point, false).
func (oa *ownerAtom) findCell(node netgraph.NodeID) (int, bool) {
	lo, hi := 0, len(oa.cells)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if oa.cells[mid].node < node {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(oa.cells) && oa.cells[lo].node == node
}

// top returns the owning rule's slot at node (the highest-priority
// entry), or noSlot.
func (oa *ownerAtom) top(node netgraph.NodeID) int32 {
	i, ok := oa.findCell(node)
	if !ok {
		return noSlot
	}
	c := &oa.cells[i]
	return oa.slab[c.off+c.n-1]
}

// empty reports whether the atom has no owner state at all.
func (oa *ownerAtom) empty() bool { return len(oa.cells) == 0 }

// reset drops all owner state, retaining capacity for reuse (atom ids
// are recycled by GC; the storage is, too).
func (oa *ownerAtom) reset() {
	oa.cells = oa.cells[:0]
	oa.slab = oa.slab[:0]
}

// cloneFrom makes oa an independent copy of src (the owner[α′] ← owner[α]
// split copy of Algorithm 1, line 4), reusing oa's retained capacity.
func (oa *ownerAtom) cloneFrom(src *ownerAtom) {
	oa.cells = append(oa.cells[:0], src.cells...)
	oa.slab = append(oa.slab[:0], src.slab...)
}

// insert adds rule slot (with key k) to node's cell, keeping the cell's
// window priority-sorted. Duplicate keys must not occur (rule ids are
// unique among live rules).
func (oa *ownerAtom) insert(s *ruleStore, node netgraph.NodeID, slot int32, k prioKey) {
	ci, ok := oa.findCell(node)
	if !ok {
		off := int32(len(oa.slab))
		if ci < len(oa.cells) {
			off = oa.cells[ci].off
		}
		oa.cells = append(oa.cells, ownerCell{})
		copy(oa.cells[ci+1:], oa.cells[ci:])
		oa.cells[ci] = ownerCell{node: node, off: off, n: 0}
	}
	c := &oa.cells[ci]
	// Binary search for the insertion point within the cell's window.
	lo, hi := int(c.off), int(c.off+c.n)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmpPrioKey(s.keyOf(oa.slab[mid]), k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	oa.slab = append(oa.slab, 0)
	copy(oa.slab[lo+1:], oa.slab[lo:])
	oa.slab[lo] = slot
	c.n++
	for i := ci + 1; i < len(oa.cells); i++ {
		oa.cells[i].off++
	}
}

// remove deletes the entry with key k from node's cell, returning the
// removed rule slot (noSlot if absent). Empty cells leave the directory.
func (oa *ownerAtom) remove(s *ruleStore, node netgraph.NodeID, k prioKey) int32 {
	ci, ok := oa.findCell(node)
	if !ok {
		return noSlot
	}
	c := &oa.cells[ci]
	lo, hi := int(c.off), int(c.off+c.n)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmpPrioKey(s.keyOf(oa.slab[mid]), k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= int(c.off+c.n) || cmpPrioKey(s.keyOf(oa.slab[lo]), k) != 0 {
		return noSlot
	}
	slot := oa.slab[lo]
	copy(oa.slab[lo:], oa.slab[lo+1:])
	oa.slab = oa.slab[:len(oa.slab)-1]
	c.n--
	for i := ci + 1; i < len(oa.cells); i++ {
		oa.cells[i].off--
	}
	if c.n == 0 {
		copy(oa.cells[ci:], oa.cells[ci+1:])
		oa.cells = oa.cells[:len(oa.cells)-1]
	}
	return slot
}

// get returns the slot stored under (node, k), or noSlot.
func (oa *ownerAtom) get(s *ruleStore, node netgraph.NodeID, k prioKey) int32 {
	ci, ok := oa.findCell(node)
	if !ok {
		return noSlot
	}
	c := &oa.cells[ci]
	for _, slot := range oa.slab[c.off : c.off+c.n] {
		if cmpPrioKey(s.keyOf(slot), k) == 0 {
			return slot
		}
	}
	return noSlot
}

// checkInvariants validates the cell directory and slab layout: sorted
// unique cells, contiguous ascending windows exactly covering the slab,
// and priority-sorted windows. Tests only.
func (oa *ownerAtom) checkInvariants(s *ruleStore) string {
	want := int32(0)
	for i := range oa.cells {
		c := oa.cells[i]
		if i > 0 && oa.cells[i-1].node >= c.node {
			return "owner cells out of order"
		}
		if c.off != want {
			return "owner cell windows not contiguous"
		}
		if c.n <= 0 {
			return "empty owner cell retained"
		}
		want += c.n
		if !sort.SliceIsSorted(oa.slab[c.off:c.off+c.n], func(a, b int) bool {
			return cmpPrioKey(s.keyOf(oa.slab[int(c.off)+a]), s.keyOf(oa.slab[int(c.off)+b])) < 0
		}) {
			return "owner cell window not priority-sorted"
		}
	}
	if int(want) != len(oa.slab) {
		return "owner slab length mismatch"
	}
	return ""
}
