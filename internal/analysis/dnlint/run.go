package dnlint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Run loads the packages matched by patterns (resolved relative to dir,
// or the current directory when dir is empty) and applies every analyzer
// to every package. Diagnostics suppressed by a well-formed
// //deltanet:nolint marker are dropped; malformed nolint markers are
// themselves diagnostics (analyzer name "nolint") and cannot be
// suppressed. The result is sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	known := knownNames(analyzers)
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runPackage(pkg, analyzers, known)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

func knownNames(analyzers []*Analyzer) map[string]bool {
	known := map[string]bool{"all": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

func runPackage(pkg *LoadedPackage, analyzers []*Analyzer, known map[string]bool) ([]Diagnostic, error) {
	sup, diags := scanNolint(pkg, known)
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Dir:      pkg.Dir,
			diags:    &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
		}
		for _, d := range raw {
			if !sup.suppressed(d) {
				diags = append(diags, d)
			}
		}
	}
	return diags, nil
}

// suppressions maps file -> line -> analyzer names suppressed there.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppressed(d Diagnostic) bool {
	lines := s[d.Position.Filename]
	if lines == nil {
		return false
	}
	// A nolint marker covers its own line, or the line below when the
	// marker stands alone on its line.
	for _, line := range []int{d.Position.Line, d.Position.Line - 1} {
		if names := lines[line]; names != nil && (names[d.Analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// scanNolint collects //deltanet:nolint markers across the package and
// validates them: the analyzer list must name known analyzers and the
// trailing reason is mandatory. Malformed markers become diagnostics.
func scanNolint(pkg *LoadedPackage, known map[string]bool) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var diags []Diagnostic
	bad := func(c *ast.Comment, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Position: pkg.Fset.Position(c.Pos()),
			Analyzer: "nolint",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				args, ok := Marker(c, "nolint")
				if !ok {
					continue
				}
				names, reason, _ := strings.Cut(args, " ")
				if names == "" {
					bad(c, "nolint needs an analyzer list: //deltanet:nolint <analyzer>[,<analyzer>] <reason>")
					continue
				}
				if strings.TrimSpace(reason) == "" {
					bad(c, "nolint needs a reason: //deltanet:nolint %s <reason>", names)
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				set := map[string]bool{}
				ok = true
				for _, name := range strings.Split(names, ",") {
					if !known[name] {
						bad(c, "nolint names unknown analyzer %q", name)
						ok = false
						break
					}
					set[name] = true
				}
				if !ok {
					continue
				}
				lines := sup[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					sup[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = set
				} else {
					for n := range set {
						lines[pos.Line][n] = true
					}
				}
			}
		}
	}
	return sup, diags
}
