package monitor

// This file is the monitor's event backlog: a bounded ring of the most
// recently published events, keyed by their monotonically increasing
// Event.Seq. A subscriber that disconnected (or fell behind and had
// channel events dropped) asks EventsSince(lastSeenSeq) for the suffix
// it missed; when churn has pushed that suffix off the ring, the reply
// says exactly which sequence range is gone, so the caller knows its
// cached verdict state is stale and can re-anchor on a fresh snapshot
// (Invariants) instead of silently diverging.

// DefaultBacklog is the event-backlog capacity a new monitor retains
// for replay; SetBacklog adjusts it.
const DefaultBacklog = 1024

// SetBacklog resizes the event backlog to retain the last n published
// events (n ≤ 0 disables retention: every EventsSince for a missed
// suffix then reports a gap). The newest min(n, retained) events
// survive a resize.
func (m *Monitor) SetBacklog(n int) {
	m.eventMu.Lock()
	defer m.eventMu.Unlock()
	if n < 0 {
		n = 0
	}
	old := make([]Event, 0, m.backlogLen)
	for i := 0; i < m.backlogLen; i++ {
		old = append(old, m.backlog[(m.backlogHead+i)%len(m.backlog)])
	}
	if keep := len(old) - n; keep > 0 {
		old = old[keep:]
	}
	m.backlogCap = n
	m.backlogHead = 0
	m.backlogLen = len(old)
	if n == 0 {
		m.backlog = nil
		return
	}
	m.backlog = make([]Event, n)
	copy(m.backlog, old)
}

// Backlog returns the backlog capacity.
func (m *Monitor) Backlog() int {
	m.eventMu.Lock()
	defer m.eventMu.Unlock()
	return m.backlogCap
}

// backlogAppendLocked retains one published event. Caller holds
// eventMu.
func (m *Monitor) backlogAppendLocked(ev Event) {
	if m.backlogCap <= 0 {
		return
	}
	if len(m.backlog) != m.backlogCap {
		// Lazily allocated so monitors nobody replays from pay nothing.
		m.backlog = make([]Event, m.backlogCap)
		m.backlogHead, m.backlogLen = 0, 0
	}
	if m.backlogLen < m.backlogCap {
		m.backlog[(m.backlogHead+m.backlogLen)%m.backlogCap] = ev
		m.backlogLen++
		return
	}
	m.backlog[m.backlogHead] = ev
	m.backlogHead = (m.backlogHead + 1) % m.backlogCap
}

// Replay is EventsSince's answer: the retained suffix plus an explicit
// account of what could not be replayed.
type Replay struct {
	// Events are the retained events with Seq > the requested cursor, in
	// sequence order.
	Events []Event
	// LostFrom/LostTo, when LostFrom > 0, is the inclusive range of
	// sequence numbers the backlog cannot replay: either churn pushed
	// them off the ring, or the cursor is ahead of the stream entirely
	// (a previous monitor incarnation's cursor, e.g. a watcher resuming
	// against a server restarted from a state file — whose verdict
	// stream restarts at 1). Either way the caller's cached verdict
	// state is stale and must re-anchor on a fresh Invariants snapshot.
	LostFrom, LostTo uint64
	// Head is the newest published sequence number at replay time: the
	// resume cursor for a caller that consumes this replay (plus the
	// snapshot, when loss forced a re-anchor).
	Head uint64
}

// EventsSince answers "what did I miss after seq": the retained suffix
// of the event backlog, with truncation (or a cursor from another
// incarnation) reported explicitly rather than as silence. See Replay.
func (m *Monitor) EventsSince(seq uint64) Replay {
	m.eventMu.Lock()
	defer m.eventMu.Unlock()
	r := Replay{Head: m.seq}
	if seq > m.seq {
		// Cursor ahead of the stream: nothing the caller saw exists here.
		r.LostFrom, r.LostTo = m.seq+1, seq
		return r
	}
	if m.seq == seq {
		return r
	}
	if m.backlogLen == 0 {
		r.LostFrom, r.LostTo = seq+1, m.seq
		return r
	}
	if oldest := m.backlog[m.backlogHead].Seq; oldest > seq+1 {
		r.LostFrom, r.LostTo = seq+1, oldest-1
	}
	for i := 0; i < m.backlogLen; i++ {
		ev := m.backlog[(m.backlogHead+i)%m.backlogCap]
		if ev.Seq > seq {
			r.Events = append(r.Events, ev)
		}
	}
	return r
}

// LastSeq returns the sequence number of the most recently published
// event (0 before any event).
func (m *Monitor) LastSeq() uint64 {
	m.eventMu.Lock()
	defer m.eventMu.Unlock()
	return m.seq
}

// ResumeSeq advances the event sequence counter to seq, so the next
// published event is numbered seq+1. It is the cross-restart continuity
// hook: a monitor restored from a state file that recorded the previous
// incarnation's LastSeq resumes numbering where that incarnation
// stopped, and a watcher resuming with an old cursor sees a gap covering
// only the genuinely missed window instead of a whole foreign stream.
// Rewinding is refused (the counter must stay monotonic for cursors to
// mean anything), so calling it on a monitor that already published past
// seq is a no-op.
func (m *Monitor) ResumeSeq(seq uint64) {
	m.eventMu.Lock()
	defer m.eventMu.Unlock()
	if seq > m.seq {
		m.seq = seq
	}
}

// SnapshotSpecs returns the canonical serialized form (FormatSpec) of
// every registered invariant, in registration order — the durable half
// of a monitor snapshot. Each distinct spec appears once regardless of
// its refcount; re-registering the lines with RestoreSpecs (or
// ParseSpec + Register) on a monitor over an equivalent network
// reproduces the same standing queries with freshly evaluated verdicts.
func (m *Monitor) SnapshotSpecs() []string {
	invs := m.sortedByID()
	out := make([]string, 0, len(invs))
	for _, inv := range invs {
		inv.mu.Lock()
		if !inv.dead {
			out = append(out, inv.key) // specKey == FormatSpec
		}
		inv.mu.Unlock()
	}
	return out
}

// RestoreSpecs parses and registers each serialized spec (the
// SnapshotSpecs format), evaluating every invariant against the live
// network. On a parse error nothing further is registered and the
// error is returned; already-registered specs stay registered.
func (m *Monitor) RestoreSpecs(specs []string) error {
	for _, line := range specs {
		s, err := ParseSpec(line)
		if err != nil {
			return err
		}
		m.Register(s)
	}
	return nil
}
