package client

// This file is the client half of the binary batch protocol
// (internal/binproto): Binary upgrades a line connection with the
// "dnbin 1" handshake, Send frames packed updates, and Sync is the
// applied-barrier round trip. The server's replies stay text lines, so
// errors and backpressure ("busy depth=<n>") surface through the same
// scanner the line protocol uses.

import (
	"fmt"
	"strings"

	"deltanet/internal/binproto"
	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// Update is one rule operation for the binary batch path — the wire's
// view of an insert or removal, kept free of engine types so the public
// client surface stays self-contained.
type Update struct {
	Insert   bool
	RuleID   int64
	Source   int32  // insert only: source node id
	Link     int32  // insert only: forwarding link id, -1 = drop
	Lo, Hi   uint64 // insert only: matched address interval
	Priority int32  // insert only
}

// Insert builds an insert update.
func Insert(ruleID int64, source, link int32, lo, hi uint64, prio int32) Update {
	return Update{Insert: true, RuleID: ruleID, Source: source, Link: link,
		Lo: lo, Hi: hi, Priority: prio}
}

// Remove builds a removal update.
func Remove(ruleID int64) Update { return Update{RuleID: ruleID} }

func (u Update) op() core.BatchOp {
	if !u.Insert {
		return core.RemoveOp(core.RuleID(u.RuleID))
	}
	return core.InsertOp(core.Rule{
		ID:       core.RuleID(u.RuleID),
		Source:   netgraph.NodeID(u.Source),
		Link:     netgraph.LinkID(u.Link),
		Match:    ipnet.Interval{Lo: u.Lo, Hi: u.Hi},
		Priority: core.Priority(u.Priority),
	})
}

// BinaryConn is a connection upgraded to the binary batch protocol.
// Send frames updates without waiting for acknowledgement; Sync is the
// barrier that bounds the outstanding window. After the upgrade the
// underlying Client belongs to the binary session — do not interleave
// Do calls.
type BinaryConn struct {
	c     *Client
	buf   []byte
	ops   []core.BatchOp
	token uint64
	busy  uint64
}

// Binary upgrades the connection with the "dnbin 1" handshake.
func (c *Client) Binary() (*BinaryConn, error) {
	resp, err := c.Do(fmt.Sprintf("dnbin %d", binproto.Version))
	if err != nil {
		return nil, err
	}
	if resp != fmt.Sprintf("ok dnbin %d", binproto.Version) {
		return nil, fmt.Errorf("dnserve: bad dnbin handshake response %q", resp)
	}
	return &BinaryConn{c: c}, nil
}

// Send frames updates and writes them without waiting for a reply —
// the pipelining that makes the binary path fast. Frame-level errors
// (a bad id the server's validation rejects) surface on the next Sync.
func (b *BinaryConn) Send(updates []Update) error {
	b.ops = b.ops[:0]
	for _, u := range updates {
		b.ops = append(b.ops, u.op())
	}
	b.buf = binproto.AppendOps(b.buf[:0], b.ops)
	b.c.mu.Lock()
	defer b.c.mu.Unlock()
	_, err := b.c.conn.Write(b.buf)
	return err
}

// Sync sends a barrier frame and blocks until the server confirms that
// every update framed before it has been applied, returning the
// server's total applied count. Backpressure notices ("busy") and
// frame rejections ("err ...") queued on the connection are consumed
// here: busy lines are counted (see Busy), the first err line is
// returned as a *ProtocolError.
func (b *BinaryConn) Sync() (applied uint64, err error) {
	b.c.mu.Lock()
	defer b.c.mu.Unlock()
	b.token++
	b.buf = binproto.AppendSync(b.buf[:0], b.token)
	if _, err := b.c.conn.Write(b.buf); err != nil {
		return 0, err
	}
	want := fmt.Sprintf("ok sync %d ", b.token)
	for {
		line, err := b.c.readLineLocked("sync")
		if err != nil {
			return 0, err
		}
		switch {
		case strings.HasPrefix(line, "busy"):
			b.busy++
		case strings.HasPrefix(line, want):
			if _, err := fmt.Sscanf(line[len(want):], "applied=%d", &applied); err != nil {
				return 0, fmt.Errorf("dnserve: bad sync response %q", line)
			}
			return applied, nil
		case strings.HasPrefix(line, "err"):
			return 0, &ProtocolError{Req: "sync", Resp: line}
		default:
			return 0, fmt.Errorf("dnserve: unexpected line %q awaiting sync", line)
		}
	}
}

// Busy reports how many backpressure notices the server has sent this
// session (each marks a moment the ingest ring was full).
func (b *BinaryConn) Busy() uint64 { return b.busy }
