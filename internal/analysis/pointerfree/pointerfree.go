// Package pointerfree verifies //deltanet:pointerfree annotations: an
// annotated type must not contain a pointer at any depth.
//
// Rationale: deltanet keeps millions of long-lived per-(invariant, link)
// summaries inline in slices and maps (intervalmap.Sketch, the monitor's
// slotSketch). If such a value grows a pointer — including a slice, map,
// string, interface or function field — every element becomes a GC scan
// target and a mark-phase root; PR 5 measured a 3× GC-time regression
// from exactly that before the pointer-bearing field was caught by
// benchmarking. The annotation makes the property machine-checked: the
// regression class is unrepresentable while the gate is green.
package pointerfree

import (
	"fmt"
	"go/ast"
	"go/types"

	"deltanet/internal/analysis/dnlint"
)

// Analyzer flags //deltanet:pointerfree types that contain pointers.
var Analyzer = &dnlint.Analyzer{
	Name: "pointerfree",
	Doc:  "check that //deltanet:pointerfree types contain no pointers at any depth",
	Run:  run,
}

func run(pass *dnlint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				// The marker may sit in the GenDecl doc (the common
				// single-spec form) or on the TypeSpec itself.
				_, marked := dnlint.GroupMarker(ts.Doc, "pointerfree")
				if !marked && len(gd.Specs) == 1 {
					_, marked = dnlint.GroupMarker(gd.Doc, "pointerfree")
				}
				if !marked {
					continue
				}
				obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				if path := pointerPath(obj.Type(), ts.Name.Name, make(map[types.Type]bool)); path != "" {
					pass.Reportf(ts.Pos(), "type %s is marked //deltanet:pointerfree but contains a pointer: %s", ts.Name.Name, path)
				}
			}
		}
	}
	return nil
}

// typeStr renders a type with package-name qualification (a.Pair, not
// the full import path).
func typeStr(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// pointerPath returns a human-readable path to the first pointer-bearing
// component of t ("Sketch.r: []Range is a slice"), or "" if t is
// pointer-free. seen breaks cycles through named types (a cycle can only
// occur behind a pointer, which reports before recursing, but the guard
// keeps the walk total regardless).
func pointerPath(t types.Type, path string, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Basic:
		switch t.Kind() {
		case types.String, types.UntypedString:
			return fmt.Sprintf("%s: string holds a data pointer", path)
		case types.UnsafePointer:
			return fmt.Sprintf("%s: unsafe.Pointer", path)
		case types.Uintptr:
			// A uintptr is scalar to the GC; allowed.
			return ""
		}
		return ""
	case *types.Pointer:
		return fmt.Sprintf("%s: %s is a pointer", path, typeStr(t))
	case *types.Slice:
		return fmt.Sprintf("%s: %s is a slice (data pointer)", path, typeStr(t))
	case *types.Map:
		return fmt.Sprintf("%s: %s is a map (header pointer)", path, typeStr(t))
	case *types.Chan:
		return fmt.Sprintf("%s: %s is a channel (pointer)", path, typeStr(t))
	case *types.Signature:
		return fmt.Sprintf("%s: %s is a function value (pointer)", path, typeStr(t))
	case *types.Interface:
		return fmt.Sprintf("%s: %s is an interface (pointer pair)", path, typeStr(t))
	case *types.TypeParam:
		return fmt.Sprintf("%s: type parameter %s may be instantiated with a pointer", path, typeStr(t))
	case *types.Array:
		return pointerPath(t.Elem(), path+"[_]", seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if msg := pointerPath(f.Type(), path+"."+f.Name(), seen); msg != "" {
				return msg
			}
		}
		return ""
	case *types.Named:
		return pointerPath(t.Underlying(), path, seen)
	case *types.Alias:
		return pointerPath(types.Unalias(t), path, seen)
	}
	return fmt.Sprintf("%s: unhandled type %s (treat as pointer-bearing)", path, typeStr(t))
}
