package ipnet

import (
	"testing"
	"testing/quick"
)

func TestPaperTable1Intervals(t *testing.T) {
	// rH: 0.0.0.10/31 = [10:12), rL: 0.0.0.0/28 = [0:16)  (paper §3, Table 1)
	rH := MustParsePrefix("0.0.0.10/31")
	if iv := rH.Interval(); iv != (Interval{10, 12}) {
		t.Fatalf("rH interval = %v, want [10:12)", iv)
	}
	rL := MustParsePrefix("0.0.0.0/28")
	if iv := rL.Interval(); iv != (Interval{0, 16}) {
		t.Fatalf("rL interval = %v, want [0:16)", iv)
	}
	// rM: 0.0.0.8/30 = [8:12)  (paper §3.2.1)
	rM := MustParsePrefix("0.0.0.8/30")
	if iv := rM.Interval(); iv != (Interval{8, 12}) {
		t.Fatalf("rM interval = %v, want [8:12)", iv)
	}
}

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in   string
		addr uint64
		len  int
		ok   bool
	}{
		{"0.0.0.0/0", 0, 0, true},
		{"255.255.255.255/32", 0xffffffff, 32, true},
		{"10.0.0.0/8", 10 << 24, 8, true},
		{"192.168.1.0/24", 192<<24 | 168<<16 | 1<<8, 24, true},
		{"1.2.3.4", 1<<24 | 2<<16 | 3<<8 | 4, 32, true},
		{"1.2.3.255/24", 1<<24 | 2<<16 | 3<<8, 24, true}, // host bits masked
		{"1.2.3/24", 0, 0, false},
		{"1.2.3.4/33", 0, 0, false},
		{"1.2.3.4/-1", 0, 0, false},
		{"1.2.3.x/8", 0, 0, false},
		{"256.0.0.0/8", 0, 0, false},
		{"1.2.3.4/x", 0, 0, false},
	}
	for _, c := range cases {
		p, err := ParsePrefix(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParsePrefix(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && (p.Addr != c.addr || p.Len != c.len) {
			t.Errorf("ParsePrefix(%q) = %d/%d, want %d/%d", c.in, p.Addr, p.Len, c.addr, c.len)
		}
	}
}

func TestPrefixString(t *testing.T) {
	for _, s := range []string{"0.0.0.0/0", "10.1.2.0/24", "255.255.255.255/32"} {
		if got := MustParsePrefix(s).String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParsePrefix did not panic")
		}
	}()
	MustParsePrefix("not-a-prefix")
}

func TestIntervalOps(t *testing.T) {
	a := Interval{10, 20}
	b := Interval{15, 30}
	c := Interval{20, 25}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("overlap false negative")
	}
	if a.Overlaps(c) {
		t.Fatal("touching intervals must not overlap (half-closed)")
	}
	if got := a.Intersect(b); got != (Interval{15, 20}) {
		t.Fatalf("Intersect=%v", got)
	}
	if got := a.Intersect(c); !got.Empty() {
		t.Fatalf("Intersect of disjoint = %v", got)
	}
	if !a.Contains(10) || a.Contains(20) || !a.Contains(19) {
		t.Fatal("Contains boundary semantics wrong")
	}
	if a.Size() != 10 {
		t.Fatalf("Size=%d", a.Size())
	}
	if (Interval{5, 5}).Size() != 0 || !(Interval{5, 5}).Empty() {
		t.Fatal("empty interval")
	}
	if !(Interval{12, 18}).CoveredBy(a) || (Interval{12, 21}).CoveredBy(a) {
		t.Fatal("CoveredBy wrong")
	}
	if (Interval{10, 20}).String() != "[10:20)" {
		t.Fatal("Interval String")
	}
}

func TestSpace(t *testing.T) {
	if IPv4.Max() != 1<<32 {
		t.Fatalf("IPv4 max = %d", IPv4.Max())
	}
	if !IPv4.Contains(Interval{0, 1 << 32}) {
		t.Fatal("full space not contained")
	}
	if IPv4.Contains(Interval{0, 1<<32 + 1}) {
		t.Fatal("over-wide interval contained")
	}
	if IPv4.Contains(Interval{5, 5}) {
		t.Fatal("empty interval contained")
	}
	s8 := Space{Bits: 8}
	if s8.Max() != 256 {
		t.Fatalf("8-bit max = %d", s8.Max())
	}
}

func TestNewPrefixMasksHostBits(t *testing.T) {
	p := NewPrefix(0xdeadbeef, 16)
	if p.Addr != 0xdead0000 {
		t.Fatalf("Addr=%x", p.Addr)
	}
	if p.Interval() != (Interval{0xdead0000, 0xdeae0000}) {
		t.Fatalf("Interval=%v", p.Interval())
	}
	// Length clamping.
	if NewPrefix(0, -5).Len != 0 || NewPrefix(0, 99).Len != 32 {
		t.Fatal("length clamping")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	p8 := MustParsePrefix("10.0.0.0/8")
	p16 := MustParsePrefix("10.1.0.0/16")
	q16 := MustParsePrefix("11.1.0.0/16")
	if !p8.Overlaps(p16) || !p16.Overlaps(p8) {
		t.Fatal("nested prefixes must overlap")
	}
	if p8.Overlaps(q16) {
		t.Fatal("disjoint prefixes must not overlap")
	}
}

func TestIntervalToPrefixesPaperExample(t *testing.T) {
	// Paper §5: atom [0:10) "can only be represented by the union of at
	// least two IP prefixes".
	ps := IntervalToPrefixes(IPv4, Interval{0, 10})
	if len(ps) < 2 {
		t.Fatalf("[0:10) decomposed into %d prefixes, want >= 2: %v", len(ps), ps)
	}
	checkCover(t, Interval{0, 10}, ps)
}

func TestIntervalToPrefixesExact(t *testing.T) {
	// A single aligned block stays a single prefix.
	ps := IntervalToPrefixes(IPv4, Interval{16, 32})
	if len(ps) != 1 || ps[0].Len != 28 || ps[0].Addr != 16 {
		t.Fatalf("aligned block: %v", ps)
	}
	// Full space is one /0.
	ps = IntervalToPrefixes(IPv4, Interval{0, 1 << 32})
	if len(ps) != 1 || ps[0].Len != 0 {
		t.Fatalf("full space: %v", ps)
	}
	// Empty interval yields nothing.
	if ps := IntervalToPrefixes(IPv4, Interval{5, 5}); len(ps) != 0 {
		t.Fatalf("empty: %v", ps)
	}
}

func checkCover(t *testing.T, iv Interval, ps []Prefix) {
	t.Helper()
	pos := iv.Lo
	for _, p := range ps {
		piv := p.Interval()
		if piv.Lo != pos {
			t.Fatalf("gap or overlap at %d: %v", pos, ps)
		}
		pos = piv.Hi
	}
	if pos != iv.Hi {
		t.Fatalf("cover ends at %d, want %d", pos, iv.Hi)
	}
}

// Property: decomposition exactly tiles the interval, for random intervals.
func TestPropertyIntervalToPrefixesTiles(t *testing.T) {
	f := func(a, b uint32) bool {
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		iv := Interval{lo, hi}
		ps := IntervalToPrefixes(IPv4, iv)
		pos := lo
		for _, p := range ps {
			piv := p.Interval()
			if piv.Lo != pos {
				return false
			}
			pos = piv.Hi
		}
		return pos == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: prefix parse/format round-trips and Interval size is 2^(32-len).
func TestPropertyPrefixInterval(t *testing.T) {
	f := func(addr uint32, l uint8) bool {
		length := int(l % 33)
		p := NewPrefix(uint64(addr), length)
		iv := p.Interval()
		if iv.Size() != 1<<uint(32-length) {
			return false
		}
		q, err := ParsePrefix(p.String())
		return err == nil && q == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixFromInterval(t *testing.T) {
	for _, s := range []string{"0.0.0.0/0", "10.0.0.0/8", "1.2.3.4/32", "128.0.0.0/1"} {
		p := MustParsePrefix(s)
		got, ok := PrefixFromInterval(IPv4, p.Interval())
		if !ok || got != p {
			t.Errorf("round trip %v -> %v, %v", p, got, ok)
		}
	}
	bad := []Interval{
		{0, 10},        // size not a power of two
		{8, 24},        // misaligned
		{5, 5},         // empty
		{0, 1<<32 + 2}, // out of space
	}
	for _, iv := range bad {
		if _, ok := PrefixFromInterval(IPv4, iv); ok {
			t.Errorf("accepted %v", iv)
		}
	}
}

// Property: every prefix's interval round-trips.
func TestPropertyPrefixFromIntervalRoundTrip(t *testing.T) {
	f := func(addr uint32, l uint8) bool {
		p := NewPrefix(uint64(addr), int(l%33))
		got, ok := PrefixFromInterval(IPv4, p.Interval())
		return ok && got == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatAddr(t *testing.T) {
	if got := FormatAddr(192<<24 | 168<<16 | 5); got != "192.168.0.5" {
		t.Fatalf("FormatAddr=%q", got)
	}
}

func TestNonIPv4SpaceString(t *testing.T) {
	p := NewPrefixIn(Space{Bits: 8}, 0x80, 1)
	if got := p.String(); got != "128/1" {
		t.Fatalf("String=%q", got)
	}
	if p.Interval() != (Interval{128, 256}) {
		t.Fatalf("Interval=%v", p.Interval())
	}
}
