package core

import (
	"math/rand"
	"testing"

	"deltanet/internal/netgraph"
)

func buildRandomNetwork(t *testing.T, seed int64, ops int) (*Network, *netgraph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, _, links := buildRandomTopology(rng, 5)
	n := NewNetwork(g, Options{})
	for i := 0; i < ops; i++ {
		l := links[rng.Intn(len(links))]
		lo := uint64(rng.Intn(10000))
		r := Rule{ID: RuleID(i + 1), Source: g.Link(l).Src, Link: l,
			Match: iv(lo, lo+1+uint64(rng.Intn(10000))), Priority: Priority(rng.Intn(40))}
		if _, err := n.InsertRule(r); err != nil {
			t.Fatal(err)
		}
	}
	return n, g
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	n, g := buildRandomNetwork(t, 31, 120)
	snap := n.Snapshot()
	if len(snap) != n.NumRules() {
		t.Fatalf("snapshot %d rules, engine %d", len(snap), n.NumRules())
	}
	// Ordered by id.
	for i := 1; i < len(snap); i++ {
		if snap[i-1].ID >= snap[i].ID {
			t.Fatal("snapshot not sorted")
		}
	}
	restored := NewNetwork(g, Options{})
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !BehaviourEqual(n, restored) {
		t.Fatal("restored behaviour differs")
	}
	if n.BehaviourDigest() != restored.BehaviourDigest() {
		t.Fatal("digests differ")
	}
	// Restore into non-empty engine with clashing ids fails.
	if err := restored.Restore(snap); err == nil {
		t.Fatal("double restore accepted")
	}
}

func TestBehaviourDigestOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, _, links := buildRandomTopology(rng, 4)
	rules := make([]Rule, 50)
	for i := range rules {
		l := links[rng.Intn(len(links))]
		lo := uint64(rng.Intn(4000))
		rules[i] = Rule{ID: RuleID(i + 1), Source: g.Link(l).Src, Link: l,
			Match: iv(lo, lo+1+uint64(rng.Intn(4000))), Priority: Priority(rng.Intn(30))}
	}
	digests := map[uint64]bool{}
	for trial := 0; trial < 4; trial++ {
		n := NewNetwork(g, Options{})
		for _, j := range rng.Perm(len(rules)) {
			if _, err := n.InsertRule(rules[j]); err != nil {
				t.Fatal(err)
			}
		}
		digests[n.BehaviourDigest()] = true
	}
	if len(digests) != 1 {
		t.Fatalf("insertion order changed digest: %d distinct", len(digests))
	}
}

func TestBehaviourDigestSensitive(t *testing.T) {
	n, g := buildRandomNetwork(t, 8, 40)
	before := n.BehaviourDigest()
	// A new owning rule must change the digest.
	l := g.Out(0)[0]
	if _, err := n.InsertRule(Rule{ID: 9999, Source: g.Link(l).Src, Link: l,
		Match: iv(0, 1<<30), Priority: 9999}); err != nil {
		t.Fatal(err)
	}
	if n.BehaviourDigest() == before {
		t.Fatal("digest blind to behaviour change")
	}
	// Removing it restores the digest.
	if _, err := n.RemoveRule(9999); err != nil {
		t.Fatal(err)
	}
	if n.BehaviourDigest() != before {
		t.Fatal("digest not restored after inverse update")
	}
}

func TestLinkFlowsMergesAdjacent(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	l := g.AddLink(s, g.AddNode("d"))
	n := NewNetwork(g, Options{})
	// Two adjacent rules on the same link: flows merge into one range.
	n.InsertRule(Rule{ID: 1, Source: s, Link: l, Match: iv(0, 100), Priority: 1})
	n.InsertRule(Rule{ID: 2, Source: s, Link: l, Match: iv(100, 200), Priority: 1})
	flows := n.LinkFlows(l)
	if len(flows) != 1 || flows[0] != iv(0, 200) {
		t.Fatalf("flows=%v", flows)
	}
	// A gap splits them.
	n.InsertRule(Rule{ID: 3, Source: s, Link: netgraph.NoLink, Match: iv(50, 60), Priority: 9})
	flows = n.LinkFlows(l)
	if len(flows) != 2 {
		t.Fatalf("flows after drop=%v", flows)
	}
	// Empty link.
	if got := n.LinkFlows(999); len(got) != 0 {
		t.Fatalf("unknown link flows=%v", got)
	}
}

func TestBehaviourEqualDetectsDifference(t *testing.T) {
	a, g := buildRandomNetwork(t, 3, 30)
	b := NewNetwork(g, Options{})
	if err := b.Restore(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !BehaviourEqual(a, b) {
		t.Fatal("identical networks differ")
	}
	l := g.Out(1)[0]
	b.InsertRule(Rule{ID: 5555, Source: g.Link(l).Src, Link: l,
		Match: iv(0, 1<<31), Priority: 12345})
	if BehaviourEqual(a, b) {
		t.Fatal("different networks equal")
	}
}
