// Package clean is the guardedwriter analyzer's clean fixture: a
// client-style package with no guarded writer, where direct conn writes
// are fine as long as every error is consumed, plus a disciplined
// guarded-writer package shape.
package clean

import (
	"bufio"
	"fmt"
	"net"
)

// send is the client pattern: no //deltanet:connwriter type in the
// package, so direct writes are allowed — the errors are consumed.
func send(c net.Conn, s string) error {
	_, err := fmt.Fprintln(c, s)
	return err
}

func sendAll(c net.Conn, lines []string) error {
	bw := bufio.NewWriter(c)
	for _, l := range lines {
		if _, err := fmt.Fprintln(bw, l); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// read-side helpers never trip the write checks.
func read(c net.Conn) (string, error) {
	sc := bufio.NewScanner(c)
	if !sc.Scan() {
		return "", sc.Err()
	}
	return sc.Text(), nil
}
