// Loopdetect: real-time detection of a forwarding loop the moment the rule
// that closes it is installed (the paper's per-update invariant, §4.3.1).
//
// We build the four-switch network of Figure 2, install benign rules, and
// then inject a misconfigured high-priority rule that bounces part of the
// address space back — Delta-net flags the exact update and the exact
// address range that loops, with no false alarms for the rest.
//
// Run with: go run ./examples/loopdetect
package main

import (
	"fmt"
	"log"

	"deltanet"
)

func main() {
	c := deltanet.New()
	s1 := c.AddSwitch("s1")
	s2 := c.AddSwitch("s2")
	s3 := c.AddSwitch("s3")
	s4 := c.AddSwitch("s4")
	l12 := c.AddLink(s1, s2)
	l23 := c.AddLink(s2, s3)
	l34 := c.AddLink(s3, s4)
	l21 := c.AddLink(s2, s1) // the link the bad rule will use

	// Benign chain: 10.0.0.0/8 flows s1 -> s2 -> s3 -> s4.
	mustOK(c, deltanet.Rule{ID: 1, Source: s1, Link: l12, Match: pfx(c, "10.0.0.0/8"), Priority: 10})
	mustOK(c, deltanet.Rule{ID: 2, Source: s2, Link: l23, Match: pfx(c, "10.0.0.0/8"), Priority: 10})
	mustOK(c, deltanet.Rule{ID: 3, Source: s3, Link: l34, Match: pfx(c, "10.0.0.0/8"), Priority: 10})
	fmt.Println("installed benign chain s1->s2->s3->s4 for 10.0.0.0/8: no alarms")

	// Misconfiguration: someone "fixes" a customer issue by bouncing
	// 10.20.0.0/16 from s2 back to s1 at high priority.
	rep, err := c.InsertRule(deltanet.Rule{ID: 4, Source: s2, Link: l21,
		Match: pfx(c, "10.20.0.0/16"), Priority: 99})
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Loops) == 0 {
		log.Fatal("BUG: loop not detected")
	}
	fmt.Printf("\nALARM: rule 4 introduced %d forwarding loop(s):\n", len(rep.Loops))
	for _, l := range rep.Loops {
		iv, _ := c.AtomRange(l.Atom)
		fmt.Printf("  packets in %v loop through %d nodes:", iv, len(l.Nodes)-1)
		for _, v := range l.Nodes {
			fmt.Printf(" %s", c.Network().Graph().NodeName(v))
		}
		fmt.Println()
	}

	// Only the /16 loops; the rest of the /8 still flows cleanly.
	fmt.Println("\nunaffected traffic still verified loop-free:")
	fmt.Printf("  ranges reaching s4: %v\n", c.ReachableRanges(s1, s4))

	// The operator reverts the bad rule; Delta-net confirms the loop is
	// gone in the same update.
	if _, err := c.RemoveRule(4); err != nil {
		log.Fatal(err)
	}
	if loops := c.FindLoops(); len(loops) != 0 {
		log.Fatal("BUG: loop survived revert")
	}
	fmt.Println("\nreverted rule 4: data plane loop-free again")
}

func pfx(c *deltanet.Checker, s string) deltanet.Interval {
	p, err := deltanet.ParsePrefix(s)
	if err != nil {
		log.Fatal(err)
	}
	return p.Interval()
}

func mustOK(c *deltanet.Checker, r deltanet.Rule) {
	rep, err := c.InsertRule(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Loops) > 0 {
		log.Fatalf("unexpected loop from %v", r)
	}
}
