// Package deltanet is a real-time data plane checker: an implementation of
// "Delta-net: Real-time Network Verification Using Atoms" (Horn,
// Kheradmand, Prasad; NSDI 2017).
//
// Delta-net incrementally maintains a single edge-labelled graph
// representing the flows of ALL packets in the entire network. Edge labels
// are sets of atoms — mutually disjoint address ranges induced by the IP
// prefixes of the installed rules — maintained so that every Boolean
// combination of rules is expressible and every forwarding table is
// checkable without false alarms. Rule insertions and removals are
// processed in amortized quasi-linear time (the paper's Theorem 1), tens
// of microseconds in practice, and each update yields a delta-graph from
// which invariants such as loop freedom are checked incrementally.
//
// # Batch updates
//
// Updates may also be applied in atomic batches via ApplyBatch: the whole
// slice of insertions and removals is validated up front (all-or-nothing),
// the per-atom ownership work is deduplicated across the batch and fanned
// out over a worker pool (the paper's §6 parallelization applied to the
// update path), and one merged, compacted delta-graph is produced, so a
// single incremental loop check — and optionally an incremental black-hole
// check — replaces one check per rule:
//
//	ops := []deltanet.BatchOp{
//		deltanet.InsertOp(deltanet.Rule{...}),
//		deltanet.RemoveOp(17),
//	}
//	rep, err := c.ApplyBatch(ops)
//	if err != nil { ... }          // nothing was applied
//	if len(rep.Loops) > 0 { ... }  // loops in the post-batch state
//
// A batch is one atomic step: transient states between its operations are
// not observable and not checked, and its Delta records only the net label
// changes.
//
// # Quickstart
//
//	c := deltanet.New()
//	s1 := c.AddSwitch("s1")
//	s2 := c.AddSwitch("s2")
//	link := c.AddLink(s1, s2)
//
//	report, err := c.InsertPrefixRule(1, s1, link, "10.0.0.0/8", 100)
//	if err != nil { ... }
//	if len(report.Loops) > 0 { /* raise alarm */ }
//
//	// Network-wide flow queries, any time:
//	atoms := c.ReachableAtoms(s1, s2)
//
// The package re-exports the underlying engine types for advanced use;
// internal/core documents the algorithms themselves.
package deltanet

import (
	"fmt"
	"time"

	"deltanet/internal/bitset"
	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// Re-exported core types, for callers that need the full engine API.
type (
	// Rule is an IP-prefix forwarding rule.
	Rule = core.Rule
	// RuleID identifies a rule; caller-chosen, unique among live rules.
	RuleID = core.RuleID
	// Priority orders rules in a table; higher wins.
	Priority = core.Priority
	// Delta is the delta-graph produced by one rule update.
	Delta = core.Delta
	// SwitchID identifies a switch (a node of the topology graph).
	SwitchID = netgraph.NodeID
	// LinkID identifies a directed link.
	LinkID = netgraph.LinkID
	// AtomID identifies one atom (a disjoint address range).
	AtomID = intervalmap.AtomID
	// Interval is a half-closed address interval [Lo:Hi).
	Interval = ipnet.Interval
	// Prefix is a CIDR prefix.
	Prefix = ipnet.Prefix
	// AtomSet is a set of atoms (a dynamic bitset).
	AtomSet = bitset.Set
	// Loop is a forwarding loop found by a check.
	Loop = check.Loop
	// BatchOp is one element of an atomic batch update (BlackHole is
	// re-exported in queries.go).
	BatchOp = core.BatchOp
)

// InsertOp returns a BatchOp inserting r.
func InsertOp(r Rule) BatchOp { return core.InsertOp(r) }

// RemoveOp returns a BatchOp removing the rule with the given id.
func RemoveOp(id RuleID) BatchOp { return core.RemoveOp(id) }

// NoLink marks a drop rule (packets matching it are discarded).
const NoLink = netgraph.NoLink

// ParsePrefix parses an IPv4 CIDR prefix such as "10.0.0.0/8".
func ParsePrefix(s string) (Prefix, error) { return ipnet.ParsePrefix(s) }

// Checker is the high-level API: a topology, the Delta-net engine over it,
// and per-update invariant checking. It is not safe for concurrent
// mutation.
type Checker struct {
	graph *netgraph.Graph
	net   *core.Network

	// CheckLoops controls whether updates are checked for forwarding
	// loops as they are applied (on by default in New).
	CheckLoops bool

	// CheckBlackHoles controls whether ApplyBatch additionally runs the
	// incremental black-hole check over the batch's merged delta (off by
	// default; see WithBlackHoleChecking). Sinks lists nodes exempt from
	// it — legitimate traffic sinks such as edge hosts.
	CheckBlackHoles bool
	Sinks           map[SwitchID]bool

	// BatchWorkers bounds the worker pool ApplyBatch fans per-atom work
	// out over; ≤ 0 selects GOMAXPROCS.
	BatchWorkers int

	// burst is the monitor burst configuration installed at Monitor()
	// creation (see WithBurst); the zero value disables coalescing.
	burst BurstConfig

	// monitor is the standing-invariant monitor, created lazily by
	// Monitor() (see monitor.go); nil until first use.
	monitor *Monitor

	delta core.Delta
}

// Option configures a Checker.
type Option func(*options)

type options struct {
	gc         bool
	checkLoops bool
	blackHoles bool
	burst      BurstConfig
}

// WithAtomGC enables atom garbage collection: under insert/remove churn,
// boundaries no longer used by any rule are reclaimed and atom ids
// recycled (the extension sketched in the paper's §3.2.2).
func WithAtomGC() Option { return func(o *options) { o.gc = true } }

// WithoutLoopChecking disables the per-update forwarding-loop check;
// updates then only maintain flow state (and Report.Loops is always
// empty). Checks can still be run explicitly via FindLoops.
func WithoutLoopChecking() Option { return func(o *options) { o.checkLoops = false } }

// WithBlackHoleChecking enables the incremental black-hole check on batch
// updates: ApplyBatch reports in BatchReport.BlackHoles the atoms newly
// delivered to nodes that neither forward nor drop them.
func WithBlackHoleChecking() Option { return func(o *options) { o.blackHoles = true } }

// WithBurst enables the monitor's coalescing burst mode: under churn,
// consecutive update deltas are merged and each dirty standing invariant
// is re-evaluated once per burst rather than once per update. A burst
// flushes after maxDeltas coalesced updates (≥ 2 to enable the count
// trigger) or when an update finds the burst maxAge old (> 0 to enable;
// checked inside monitor calls — see Monitor.Flush for an explicit
// flush). While a burst is pending, Report.Events stays empty and cached
// verdicts lag the data plane by at most the burst window; the flush's
// events carry the coalesced update range.
func WithBurst(maxDeltas int, maxAge time.Duration) Option {
	return func(o *options) { o.burst = BurstConfig{MaxDeltas: maxDeltas, MaxAge: maxAge} }
}

// New returns an empty Checker with per-update loop checking enabled.
func New(opts ...Option) *Checker {
	o := options{checkLoops: true}
	for _, opt := range opts {
		opt(&o)
	}
	g := netgraph.New()
	return &Checker{
		graph:           g,
		net:             core.NewNetwork(g, core.Options{GC: o.gc}),
		CheckLoops:      o.checkLoops,
		CheckBlackHoles: o.blackHoles,
		burst:           o.burst,
	}
}

// AddSwitch adds (or looks up) a switch by name.
func (c *Checker) AddSwitch(name string) SwitchID { return c.graph.AddNode(name) }

// AddPort adds (or looks up) the composite node "switch@port", the §4.1
// encoding for rules that additionally match an input port.
func (c *Checker) AddPort(sw string, port int) SwitchID { return c.graph.PortNode(sw, port) }

// AddLink adds (or looks up) a directed link between two switches.
func (c *Checker) AddLink(src, dst SwitchID) LinkID { return c.graph.AddLink(src, dst) }

// Switch returns the id of a named switch, or -1 if absent.
func (c *Checker) Switch(name string) SwitchID { return c.graph.NodeByName(name) }

// Report is the result of one checked rule update.
type Report struct {
	// Delta is the update's delta-graph (label changes by atom).
	Delta *Delta
	// Loops lists forwarding loops introduced by the update (empty
	// unless the update was an insertion that closed a cycle).
	Loops []Loop
	// Events lists the standing-invariant verdict transitions the update
	// caused (always empty until Monitor() has registrations).
	Events []MonitorEvent
}

// InsertRule applies a rule insertion (Algorithm 1) and checks it.
func (c *Checker) InsertRule(r Rule) (Report, error) {
	if err := c.net.InsertRuleInto(r, &c.delta); err != nil {
		return Report{}, err
	}
	return c.report(), nil
}

// InsertPrefixRule inserts a rule matching a CIDR prefix string. A
// negative link (NoLink) drops matching packets.
func (c *Checker) InsertPrefixRule(id RuleID, sw SwitchID, link LinkID, cidr string, prio Priority) (Report, error) {
	p, err := ipnet.ParsePrefix(cidr)
	if err != nil {
		return Report{}, fmt.Errorf("deltanet: %w", err)
	}
	return c.InsertRule(Rule{ID: id, Source: sw, Link: link, Match: p.Interval(), Priority: prio})
}

// RemoveRule applies a rule removal (Algorithm 2) and checks it.
func (c *Checker) RemoveRule(id RuleID) (Report, error) {
	if err := c.net.RemoveRuleInto(id, &c.delta); err != nil {
		return Report{}, err
	}
	return c.report(), nil
}

func (c *Checker) report() Report {
	rep := Report{Delta: &c.delta}
	if c.CheckLoops {
		rep.Loops = check.FindLoopsDelta(c.net, &c.delta)
	}
	if c.monitor != nil {
		// The loop check just ran (when enabled); a LoopFree invariant
		// reuses its result instead of re-walking the delta.
		rep.Events = c.monitor.ApplyWithLoops(&c.delta, rep.Loops, c.CheckLoops)
	}
	return rep
}

// BatchReport is the result of one atomic batch update.
type BatchReport struct {
	// Delta is the batch's merged, compacted delta-graph: the net label
	// changes between the pre- and post-batch states.
	Delta *Delta
	// Loops lists forwarding loops present after the batch that involve a
	// net-added label bit (empty when CheckLoops is off).
	Loops []Loop
	// BlackHoles lists nodes newly receiving atoms they neither forward
	// nor drop (populated only when CheckBlackHoles is on).
	BlackHoles []BlackHole
	// Events lists the standing-invariant verdict transitions the batch
	// caused (always empty until Monitor() has registrations).
	Events []MonitorEvent
}

// ApplyBatch applies ops in order as one atomic update and checks the
// merged delta-graph once. Validation happens before any state changes: on
// error nothing was applied. See the package documentation's "Batch
// updates" section for semantics.
func (c *Checker) ApplyBatch(ops []BatchOp) (BatchReport, error) {
	if err := c.net.ApplyBatch(ops, &c.delta, c.BatchWorkers); err != nil {
		return BatchReport{}, err
	}
	rep := BatchReport{Delta: &c.delta}
	if c.CheckLoops {
		rep.Loops = check.FindLoopsDeltaAuto(c.net, &c.delta, c.BatchWorkers)
	}
	if c.CheckBlackHoles {
		rep.BlackHoles = check.FindBlackHolesDelta(c.net, &c.delta, c.Sinks)
	}
	if c.monitor != nil {
		rep.Events = c.monitor.ApplyWithLoops(&c.delta, rep.Loops, c.CheckLoops)
	}
	return rep, nil
}

// Network exposes the underlying engine for advanced queries.
func (c *Checker) Network() *core.Network { return c.net }

// NumRules returns the number of live rules.
func (c *Checker) NumRules() int { return c.net.NumRules() }

// NumAtoms returns the current number of atoms.
func (c *Checker) NumAtoms() int { return c.net.NumAtoms() }

// LinkLabel returns the atoms currently flowing on a link — the
// constant-time network-wide flow API of §3.3. Read-only.
func (c *Checker) LinkLabel(l LinkID) *AtomSet { return c.net.Label(l) }

// AtomRange returns the address interval an atom currently denotes.
func (c *Checker) AtomRange(a AtomID) (Interval, bool) { return c.net.AtomInterval(a) }

// AtomOf returns the atom containing an address.
func (c *Checker) AtomOf(addr uint64) AtomID { return c.net.AtomOf(addr) }

// FindLoops scans the whole data plane for forwarding loops.
func (c *Checker) FindLoops() []Loop { return check.FindLoopsAll(c.net) }

// ReachableAtoms returns the set of atoms that can flow from one switch to
// another along some forwarding path.
func (c *Checker) ReachableAtoms(from, to SwitchID) *AtomSet {
	return check.Reachable(c.net, from, to)
}

// ReachableRanges returns the address intervals (merged where adjacent)
// that can flow from one switch to another: the human-readable form of
// ReachableAtoms.
func (c *Checker) ReachableRanges(from, to SwitchID) []Interval {
	atoms := check.Reachable(c.net, from, to)
	var out []Interval
	c.net.ForEachAtom(func(id AtomID, iv Interval) bool {
		if !atoms.Contains(int(id)) {
			return true
		}
		if n := len(out); n > 0 && out[n-1].Hi == iv.Lo {
			out[n-1].Hi = iv.Hi // merge adjacent
		} else {
			out = append(out, iv)
		}
		return true
	})
	return out
}

// WhatIfLinkFails returns the flows affected by a hypothetical failure of
// the link: the affected atom set and the restriction of the edge-labelled
// graph to it (§4.3.2's exemplar query).
func (c *Checker) WhatIfLinkFails(l LinkID) *check.Subgraph {
	return check.AffectedByLinkFailure(c.net, l)
}

// AllPairsReachability computes, for every ordered pair of switches, the
// atoms that can flow between them (Algorithm 3). parallel fans the
// computation out over CPUs.
func (c *Checker) AllPairsReachability(parallel bool) [][]*AtomSet {
	if parallel {
		return check.AllPairsParallel(c.net, 0)
	}
	return check.AllPairs(c.net)
}
