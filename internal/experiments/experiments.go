// Package experiments implements the paper's evaluation harness (§4): one
// runner per table and figure, shared by the dnbench command and the
// repository's testing.B benchmarks. Each runner reproduces the
// measurement protocol the paper describes; EXPERIMENTS.md records
// paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/datasets"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
	"deltanet/internal/sdnip"
	"deltanet/internal/stats"
	"deltanet/internal/trace"
	"deltanet/internal/veriflow"
)

// Table2Row is one dataset-summary row (paper Table 2).
type Table2Row struct {
	Dataset    string
	Nodes      int
	MaxLinks   int
	Operations int
}

// RunTable2 builds every dataset at the given scale and summarizes it.
func RunTable2(scale float64) ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range datasets.Names() {
		tr, err := datasets.Build(name, scale)
		if err != nil {
			return nil, err
		}
		info := datasets.Describe(tr)
		rows = append(rows, Table2Row{
			Dataset:    name,
			Nodes:      info.Nodes,
			MaxLinks:   info.Links,
			Operations: info.Operations,
		})
	}
	return rows, nil
}

// Table3Row is one per-dataset rule-update measurement row (paper Table 3).
type Table3Row struct {
	Dataset     string
	TotalAtoms  int
	Median      time.Duration
	Average     time.Duration
	PctBelow250 float64
	Latencies   *stats.Latencies // retained for Figure 8's CDF
}

// RunTable3 replays a dataset through Delta-net, timing each operation's
// processing (Algorithm 1/2) plus the delta-graph forwarding-loop check —
// the combined time the paper reports in Table 3 and Figure 8.
func RunTable3(name string, scale float64) (Table3Row, error) {
	tr, err := datasets.Build(name, scale)
	if err != nil {
		return Table3Row{}, err
	}
	n := core.NewNetwork(tr.Graph, core.Options{})
	lat := stats.NewLatencies(len(tr.Ops))
	var d core.Delta
	for i, op := range tr.Ops {
		t0 := time.Now()
		if err := trace.Apply(n, op, &d); err != nil {
			return Table3Row{}, fmt.Errorf("%s op %d: %w", name, i, err)
		}
		check.FindLoopsDelta(n, &d)
		lat.Add(time.Since(t0))
	}
	return Table3Row{
		Dataset:     name,
		TotalAtoms:  n.NumAtoms(),
		Median:      lat.Median(),
		Average:     lat.Mean(),
		PctBelow250: lat.FractionBelow(250*time.Microsecond) * 100,
		Latencies:   lat,
	}, nil
}

// RunTable3Veriflow replays a dataset through Veriflow-RI with its full
// per-update pipeline (EC computation, forwarding-graph construction, loop
// traversal), for the §4.3.1 speedup comparison. Datasets whose rules are
// not single prefixes are rejected (all shipped datasets are
// prefix-based).
func RunTable3Veriflow(name string, scale float64) (Table3Row, error) {
	tr, err := datasets.Build(name, scale)
	if err != nil {
		return Table3Row{}, err
	}
	e := veriflow.NewEngine(tr.Graph)
	lat := stats.NewLatencies(len(tr.Ops))
	for i, op := range tr.Ops {
		t0 := time.Now()
		if op.Insert {
			p, ok := ipnet.PrefixFromInterval(ipnet.IPv4, op.Rule.Match)
			if !ok {
				return Table3Row{}, fmt.Errorf("%s op %d: non-prefix rule", name, i)
			}
			_, err = e.InsertRule(veriflow.Rule{ID: op.Rule.ID, Source: op.Rule.Source,
				Link: op.Rule.Link, Prefix: p, Priority: op.Rule.Priority})
		} else {
			_, err = e.RemoveRule(op.Rule.ID)
		}
		if err != nil {
			return Table3Row{}, fmt.Errorf("%s op %d: %w", name, i, err)
		}
		lat.Add(time.Since(t0))
	}
	return Table3Row{
		Dataset:     name + " (veriflow-ri)",
		Median:      lat.Median(),
		Average:     lat.Mean(),
		PctBelow250: lat.FractionBelow(250*time.Microsecond) * 100,
		Latencies:   lat,
	}, nil
}

// Figure8Series is one dataset's CDF of combined per-op times.
type Figure8Series struct {
	Dataset string
	Points  []stats.CDFPoint
}

// RunFigure8 produces the CDF series of Figure 8 for all datasets.
func RunFigure8(scale float64) ([]Figure8Series, error) {
	var out []Figure8Series
	for _, name := range datasets.Names() {
		row, err := RunTable3(name, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure8Series{Dataset: name, Points: row.Latencies.CDF(5, 4)})
	}
	return out, nil
}

// Table4Row is one what-if link-failure measurement row (paper Table 4).
type Table4Row struct {
	Dataset        string
	Rules          int
	Queries        int
	VeriflowAvg    time.Duration // Veriflow-RI per-query average
	DeltanetAvg    time.Duration // Delta-net affected-subgraph average
	DeltanetLoops  time.Duration // Delta-net + per-atom loop check average
	VeriflowGraphs int           // total forwarding graphs Veriflow built
}

// RunTable4 builds a consistent data plane from a dataset's insertions
// (§4.3.2) and answers, for every inter-switch link, the query "which
// packets and parts of the network are affected if this link fails?" three
// ways: Veriflow-RI (forwarding graph per affected EC), Delta-net
// (label-restricted subgraph), and Delta-net plus loop checking.
// maxQueries > 0 samples the first k links.
func RunTable4(name string, scale float64, maxQueries int) (Table4Row, error) {
	tr, err := datasets.Build(name, scale)
	if err != nil {
		return Table4Row{}, err
	}
	n := core.NewNetwork(tr.Graph, core.Options{})
	vf := veriflow.NewEngine(tr.Graph)
	var d core.Delta
	seen := map[core.RuleID]bool{}
	for _, op := range tr.Ops {
		if !op.Insert || seen[op.Rule.ID] {
			continue
		}
		// Consistent data plane: apply inserts only; datasets that
		// remove every rule would otherwise end empty (§4.3.2 builds
		// the data plane "from all the rule insertions").
		seen[op.Rule.ID] = true
		if err := trace.Apply(n, op, &d); err != nil {
			return Table4Row{}, err
		}
		p, ok := ipnet.PrefixFromInterval(ipnet.IPv4, op.Rule.Match)
		if !ok {
			return Table4Row{}, fmt.Errorf("non-prefix rule in %s", name)
		}
		if err := vf.LoadRule(veriflow.Rule{ID: op.Rule.ID, Source: op.Rule.Source,
			Link: op.Rule.Link, Prefix: p, Priority: op.Rule.Priority}); err != nil {
			return Table4Row{}, err
		}
	}

	links := sdnip.InterSwitchLinks(tr.Graph)
	if maxQueries > 0 && len(links) > maxQueries {
		links = links[:maxQueries]
	}
	row := Table4Row{Dataset: name, Rules: n.NumRules(), Queries: len(links)}
	var vfTotal, dnTotal, dnLoopTotal time.Duration
	for _, l := range links {
		t0 := time.Now()
		res := vf.WhatIfLinkFailure(l, false)
		vfTotal += time.Since(t0)
		row.VeriflowGraphs += res.GraphsBuilt

		t0 = time.Now()
		sub := check.AffectedByLinkFailure(n, l)
		dnTotal += time.Since(t0)

		t0 = time.Now()
		sub2 := check.AffectedByLinkFailure(n, l)
		check.LoopsInSubgraph(n, sub2)
		dnLoopTotal += time.Since(t0)
		_ = sub
	}
	q := time.Duration(len(links))
	if q == 0 {
		q = 1
	}
	row.VeriflowAvg = vfTotal / q
	row.DeltanetAvg = dnTotal / q
	row.DeltanetLoops = dnLoopTotal / q
	return row, nil
}

// Table5Row is one memory-usage row (paper Appendix D, Table 5).
type Table5Row struct {
	Dataset       string
	VeriflowBytes int64
	DeltanetBytes int64
	Ratio         float64
}

// RunTable5 builds a consistent data plane in both engines and reports
// their self-accounted footprints (heap-probe deltas are noisy at laptop
// scale; self-accounting reproduces the paper's relative comparison).
func RunTable5(name string, scale float64) (Table5Row, error) {
	tr, err := datasets.Build(name, scale)
	if err != nil {
		return Table5Row{}, err
	}
	n := core.NewNetwork(tr.Graph, core.Options{})
	vf := veriflow.NewEngine(tr.Graph)
	var d core.Delta
	seen := map[core.RuleID]bool{}
	for _, op := range tr.Ops {
		if !op.Insert || seen[op.Rule.ID] {
			continue
		}
		seen[op.Rule.ID] = true
		if err := trace.Apply(n, op, &d); err != nil {
			return Table5Row{}, err
		}
		p, _ := ipnet.PrefixFromInterval(ipnet.IPv4, op.Rule.Match)
		if err := vf.LoadRule(veriflow.Rule{ID: op.Rule.ID, Source: op.Rule.Source,
			Link: op.Rule.Link, Prefix: p, Priority: op.Rule.Priority}); err != nil {
			return Table5Row{}, err
		}
	}
	row := Table5Row{
		Dataset:       name,
		VeriflowBytes: vf.MemoryBytes(),
		DeltanetBytes: n.MemoryBytes(),
	}
	if row.VeriflowBytes > 0 {
		row.Ratio = float64(row.DeltanetBytes) / float64(row.VeriflowBytes)
	}
	return row, nil
}

// AppendixCResult reports the maximum EC fan-out of a single rule update
// in Veriflow-RI (paper Appendix C).
type AppendixCResult struct {
	Dataset string
	MaxECs  int
}

// RunAppendixC replays a dataset's insertions through Veriflow-RI and
// reports the largest number of equivalence classes any single insertion
// affected.
func RunAppendixC(name string, scale float64) (AppendixCResult, error) {
	tr, err := datasets.Build(name, scale)
	if err != nil {
		return AppendixCResult{}, err
	}
	vf := veriflow.NewEngine(tr.Graph)
	for _, op := range tr.Ops {
		if !op.Insert {
			continue
		}
		p, ok := ipnet.PrefixFromInterval(ipnet.IPv4, op.Rule.Match)
		if !ok {
			return AppendixCResult{}, fmt.Errorf("non-prefix rule in %s", name)
		}
		if _, err := vf.InsertRule(veriflow.Rule{ID: op.Rule.ID, Source: op.Rule.Source,
			Link: op.Rule.Link, Prefix: p, Priority: op.Rule.Priority}); err != nil {
			return AppendixCResult{}, err
		}
	}
	return AppendixCResult{Dataset: name, MaxECs: vf.MaxAffectedECs}, nil
}

// ScalingPoint is one sample of the Theorem 1 scaling sweep.
type ScalingPoint struct {
	Ops        int
	Atoms      int
	TotalTime  time.Duration
	PerOp      time.Duration
	PerOpAtoms float64 // ns per (op × log-ish factor); reported raw for the table
}

// RunScaling measures per-op cost as the rule count grows, on the rf1755
// dataset at increasing scales — empirical support for the amortized
// quasi-linear bound (Theorem 1): per-op time should grow far slower than
// the op count.
func RunScaling(scales []float64) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, s := range scales {
		row, err := RunTable3("rf1755", s)
		if err != nil {
			return nil, err
		}
		n := row.Latencies.Len()
		var total time.Duration
		total = row.Average * time.Duration(n)
		out = append(out, ScalingPoint{
			Ops:       n,
			Atoms:     row.TotalAtoms,
			TotalTime: total,
			PerOp:     row.Average,
		})
	}
	return out, nil
}

// BatchRow is one measurement of the batch update pipeline: a full
// dataset replay at a given batch size, checked once per batch over the
// merged delta-graph.
type BatchRow struct {
	Dataset    string
	BatchSize  int
	Ops        int
	Atoms      int
	TotalTime  time.Duration
	Throughput float64          // ops per second
	P50        time.Duration    // median per-flush update+check latency
	P99        time.Duration    // 99th-percentile per-flush latency
	Latencies  *stats.Latencies // per-flush samples (one per applied batch)
}

// RunBatch replays a dataset through Network.ApplyBatch in atomic batches
// of the given size (1 = one rule per batch), running the incremental
// loop check once per batch. It measures the combined update+check time,
// the batched counterpart of Table 3's protocol; comparing rows at sizes
// 1 and N exposes the batching win. Each flush is also timed
// individually, so the row carries the per-update latency distribution
// (p50/p99) alongside throughput — the tail is what batching trades
// against.
func RunBatch(name string, scale float64, batchSize int) (BatchRow, error) {
	if batchSize < 1 {
		return BatchRow{}, fmt.Errorf("batch size must be >= 1, got %d", batchSize)
	}
	tr, err := datasets.Build(name, scale)
	if err != nil {
		return BatchRow{}, err
	}
	n := core.NewNetwork(tr.Graph.Clone(), core.Options{})
	var d core.Delta
	ops := make([]core.BatchOp, 0, batchSize)
	lat := stats.NewLatencies(len(tr.Ops)/batchSize + 1)
	start := time.Now()
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		t0 := time.Now()
		if err := n.ApplyBatch(ops, &d, 0); err != nil {
			return err
		}
		check.FindLoopsDeltaAuto(n, &d, 0)
		lat.Add(time.Since(t0))
		ops = ops[:0]
		return nil
	}
	for i := range tr.Ops {
		ops = append(ops, core.BatchOp{Insert: tr.Ops[i].Insert, Rule: tr.Ops[i].Rule})
		if len(ops) == batchSize {
			if err := flush(); err != nil {
				return BatchRow{}, fmt.Errorf("%s op %d: %w", name, i, err)
			}
		}
	}
	if err := flush(); err != nil {
		return BatchRow{}, fmt.Errorf("%s final batch: %w", name, err)
	}
	total := time.Since(start)
	row := BatchRow{
		Dataset:   name,
		BatchSize: batchSize,
		Ops:       len(tr.Ops),
		Atoms:     n.NumAtoms(),
		TotalTime: total,
		P50:       lat.Median(),
		P99:       lat.Percentile(99),
		Latencies: lat,
	}
	if total > 0 {
		row.Throughput = float64(len(tr.Ops)) / total.Seconds()
	}
	return row, nil
}

// FormatTable renders rows of cells as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// BuildConsistentDataPlane loads a dataset's insertions into a fresh
// engine (exported for the dnquery tool and examples).
func BuildConsistentDataPlane(name string, scale float64) (*core.Network, *trace.Trace, error) {
	tr, err := datasets.Build(name, scale)
	if err != nil {
		return nil, nil, err
	}
	n := core.NewNetwork(tr.Graph, core.Options{})
	var d core.Delta
	seen := map[core.RuleID]bool{}
	for _, op := range tr.Ops {
		if !op.Insert || seen[op.Rule.ID] {
			continue
		}
		seen[op.Rule.ID] = true
		if err := trace.Apply(n, op, &d); err != nil {
			return nil, nil, err
		}
	}
	return n, tr, nil
}

// LinksOf exposes the failure-candidate links of a built trace (one per
// bidirectional pair).
func LinksOf(tr *trace.Trace) []netgraph.LinkID { return sdnip.InterSwitchLinks(tr.Graph) }
