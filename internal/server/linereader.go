package server

import (
	"bufio"
	"io"
)

// lineReader is the connection's line tokenizer. It replaces
// bufio.Scanner with the same Scan/Text/Err surface for one reason the
// Scanner cannot provide: its underlying *bufio.Reader (br) stays
// reachable, so when a "dnbin" handshake upgrades the connection to the
// binary protocol, any bytes the client pipelined behind the handshake
// line are already sitting in br and flow straight into the frame
// decoder instead of being lost inside a Scanner's private buffer.
//
// Semantics match the Scanner configuration it replaced: lines are
// '\n'-delimited, a final unterminated line is returned, a line longer
// than maxLine fails the scan with bufio.ErrTooLong, and Err is nil
// after a clean EOF.
type lineReader struct {
	br  *bufio.Reader
	buf []byte // current line, valid until the next Scan
	err error
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{br: bufio.NewReaderSize(r, 4096)}
}

// Scan advances to the next line, reporting false at end of stream or on
// error (distinguish via Err).
func (lr *lineReader) Scan() bool {
	if lr.err != nil {
		return false
	}
	lr.buf = lr.buf[:0]
	for {
		frag, err := lr.br.ReadSlice('\n')
		lr.buf = append(lr.buf, frag...)
		if len(lr.buf) > maxLine {
			lr.err = bufio.ErrTooLong
			return false
		}
		switch err {
		case nil:
			lr.buf = lr.buf[:len(lr.buf)-1] // drop the '\n'
			return true
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			return len(lr.buf) > 0 // final unterminated line, then clean end
		default:
			lr.err = err
			return false
		}
	}
}

// Text returns the current line (without its terminator).
func (lr *lineReader) Text() string { return string(lr.buf) }

// Err returns the first non-EOF error encountered, mirroring
// bufio.Scanner.Err.
func (lr *lineReader) Err() error { return lr.err }
