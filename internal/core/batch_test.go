package core

// Tests for the batch update pipeline: ApplyBatch of N operations must be
// indistinguishable — same atom partition, same labels, same forwarding —
// from N sequential InsertRule/RemoveRule calls, with all-or-nothing
// failure semantics. The randomized workloads reuse the brute-force
// single-packet oracle from brute_test.go.

import (
	"errors"
	"math/rand"
	"testing"

	"deltanet/internal/intervalmap"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// compareNetworks asserts that two non-GC engines over the same topology
// are in identical states: atom partition (including ids), per-link
// labels, and per-(node, atom) forwarding.
func compareNetworks(t *testing.T, got, want *Network) {
	t.Helper()
	if got.NumAtoms() != want.NumAtoms() {
		t.Fatalf("atoms: got %d, want %d", got.NumAtoms(), want.NumAtoms())
	}
	type atomIv struct {
		id intervalmap.AtomID
		iv ipnet.Interval
	}
	var gotAtoms, wantAtoms []atomIv
	got.ForEachAtom(func(id intervalmap.AtomID, iv ipnet.Interval) bool {
		gotAtoms = append(gotAtoms, atomIv{id, iv})
		return true
	})
	want.ForEachAtom(func(id intervalmap.AtomID, iv ipnet.Interval) bool {
		wantAtoms = append(wantAtoms, atomIv{id, iv})
		return true
	})
	for i := range wantAtoms {
		if gotAtoms[i] != wantAtoms[i] {
			t.Fatalf("atom %d: got %v, want %v", i, gotAtoms[i], wantAtoms[i])
		}
	}
	g := want.Graph()
	for l := 0; l < g.NumLinks(); l++ {
		if !got.Label(netgraph.LinkID(l)).Equal(want.Label(netgraph.LinkID(l))) {
			t.Fatalf("label of link %d differs: got %v, want %v",
				l, got.Label(netgraph.LinkID(l)).Slice(), want.Label(netgraph.LinkID(l)).Slice())
		}
	}
	for _, a := range wantAtoms {
		for v := netgraph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if gl, wl := got.ForwardLink(v, a.id), want.ForwardLink(v, a.id); gl != wl {
				t.Fatalf("forward(node %d, atom %d): got %d, want %d", v, a.id, gl, wl)
			}
		}
	}
}

// randomBatchOps generates a mixed insert/remove workload. live is
// mutated to track rules alive after all ops execute.
func randomBatchOps(rng *rand.Rand, g *netgraph.Graph, nodes []netgraph.NodeID,
	live *[]RuleID, nextID *RuleID, count int) []BatchOp {
	const addrSpace = 1 << 16
	ops := make([]BatchOp, 0, count)
	for len(ops) < count {
		if len(*live) > 0 && rng.Intn(100) < 35 {
			k := rng.Intn(len(*live))
			id := (*live)[k]
			(*live)[k] = (*live)[len(*live)-1]
			*live = (*live)[:len(*live)-1]
			ops = append(ops, RemoveOp(id))
			continue
		}
		src := nodes[rng.Intn(len(nodes))]
		var link netgraph.LinkID = netgraph.NoLink
		if rng.Intn(10) > 0 {
			outs := g.Out(src)
			link = outs[rng.Intn(len(outs))]
			if g.IsDropLink(link) {
				link = netgraph.NoLink
			}
		}
		lo := uint64(rng.Intn(addrSpace))
		ops = append(ops, InsertOp(Rule{
			ID: *nextID, Source: src, Link: link,
			Match:    iv(lo, lo+1+uint64(rng.Intn(addrSpace/4))),
			Priority: Priority(rng.Intn(50)),
		}))
		*live = append(*live, *nextID)
		*nextID++
	}
	return ops
}

// runBatchEquivalence drives the same random workload through ApplyBatch
// (batch size k, worker count w) and through sequential Insert/Remove on a
// twin engine, comparing states and the brute oracle after every batch.
func runBatchEquivalence(t *testing.T, seed int64, batchSize, workers int) {
	rng := rand.New(rand.NewSource(seed))
	g, nodes, _ := buildRandomTopology(rng, 5)
	batched := NewNetwork(g, Options{})
	seq := NewNetwork(g, Options{})
	oracle := newBrute()

	var live []RuleID
	nextID := RuleID(1)
	var d, scratch Delta
	for round := 0; round < 6; round++ {
		ops := randomBatchOps(rng, g, nodes, &live, &nextID, batchSize)
		if err := batched.ApplyBatch(ops, &d, workers); err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			if op.Insert {
				if err := seq.InsertRuleInto(op.Rule, &scratch); err != nil {
					t.Fatal(err)
				}
				rr := op.Rule
				if rr.Link == netgraph.NoLink {
					rr.Link = g.DropLink(rr.Source)
				}
				oracle.insert(rr)
			} else {
				if err := seq.RemoveRuleInto(op.Rule.ID, &scratch); err != nil {
					t.Fatal(err)
				}
				oracle.remove(op.Rule.ID)
			}
		}
		compareNetworks(t, batched, seq)
		checkAgainstBrute(t, batched, oracle, nodes)
		if msg := batched.CheckInvariants(); msg != "" {
			t.Fatalf("round %d: %s", round, msg)
		}
	}
}

func TestBatchEquivalentToSequential(t *testing.T) {
	for _, tc := range []struct {
		name           string
		seed           int64
		batch, workers int
	}{
		{"batch1-serial", 11, 1, 1},
		{"batch16-serial", 12, 16, 1},
		{"batch16-parallel", 13, 16, 0},
		{"batch64-parallel", 14, 64, 0},
		{"batch256-parallel", 15, 256, 4},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			runBatchEquivalence(t, tc.seed, tc.batch, tc.workers)
		})
	}
}

// TestBatchGCBehaviour: with GC enabled atom ids may be assigned
// differently than sequential execution, but forwarding behaviour and
// invariants must still match the brute oracle.
func TestBatchGCBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g, nodes, _ := buildRandomTopology(rng, 5)
	n := NewNetwork(g, Options{GC: true})
	oracle := newBrute()

	var live []RuleID
	nextID := RuleID(1)
	var d Delta
	for round := 0; round < 8; round++ {
		ops := randomBatchOps(rng, g, nodes, &live, &nextID, 48)
		if err := n.ApplyBatch(ops, &d, 0); err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			if op.Insert {
				rr := op.Rule
				if rr.Link == netgraph.NoLink {
					rr.Link = g.DropLink(rr.Source)
				}
				oracle.insert(rr)
			} else {
				oracle.remove(op.Rule.ID)
			}
		}
		checkAgainstBrute(t, n, oracle, nodes)
		if msg := n.CheckInvariants(); msg != "" {
			t.Fatalf("round %d: %s", round, msg)
		}
	}
	if n.Merges() == 0 {
		t.Fatal("workload performed no GC merges; test is vacuous")
	}
}

// TestBatchGCRemoveThenReinsert (regression): with GC enabled, a batch
// that removes a rule and then inserts another re-using the same interval
// boundaries must not merge away the atoms under the new rule — boundary
// collection is deferred past the whole batch's refcount accounting.
func TestBatchGCRemoveThenReinsert(t *testing.T) {
	g := netgraph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	l := g.AddLink(a, b)
	n := NewNetwork(g, Options{GC: true})
	if _, err := n.InsertRule(Rule{ID: 1, Source: a, Link: l, Match: iv(100, 200), Priority: 1}); err != nil {
		t.Fatal(err)
	}
	var d Delta
	err := n.ApplyBatch([]BatchOp{
		RemoveOp(1),
		InsertOp(Rule{ID: 2, Source: a, Link: l, Match: iv(100, 200), Priority: 1}),
	}, &d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.ForwardLink(a, n.AtomOf(150)); got != l {
		t.Fatalf("ForwardLink = %d, want %d: rule 2's atoms were merged away", got, l)
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}

	// Remove → insert → remove of the same boundary within one batch: the
	// bound dies twice as a candidate but must be collected exactly once.
	err = n.ApplyBatch([]BatchOp{
		RemoveOp(2),
		InsertOp(Rule{ID: 3, Source: a, Link: l, Match: iv(100, 200), Priority: 1}),
		RemoveOp(3),
	}, &d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumRules() != 0 {
		t.Fatalf("rules = %d, want 0", n.NumRules())
	}
	if n.ForwardLink(a, n.AtomOf(150)) != netgraph.NoLink {
		t.Fatal("removed rule still forwards")
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

// TestBatchIntraBatchInsertRemove: a rule inserted and removed within one
// batch leaves no trace in ownership and no net delta entries, but its
// splits remain (no GC).
func TestBatchIntraBatchInsertRemove(t *testing.T) {
	g := netgraph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	l := g.AddLink(a, b)
	n := NewNetwork(g, Options{})
	var d Delta
	ops := []BatchOp{
		InsertOp(Rule{ID: 1, Source: a, Link: l, Match: iv(100, 200), Priority: 5}),
		RemoveOp(1),
	}
	if err := n.ApplyBatch(ops, &d, 0); err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("net delta not empty: +%v -%v", d.Added, d.Removed)
	}
	if len(d.NewAtoms) != 2 {
		t.Fatalf("NewAtoms = %d, want 2", len(d.NewAtoms))
	}
	if n.NumRules() != 0 {
		t.Fatalf("rules = %d, want 0", n.NumRules())
	}
	if !n.Label(l).Empty() {
		t.Fatalf("label not empty: %v", n.Label(l).Slice())
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

// TestBatchCompaction: an insertion shadowed within the same batch by a
// higher-priority rule on another link contributes nothing to the net
// delta for the shared atom.
func TestBatchCompaction(t *testing.T) {
	g := netgraph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	lb := g.AddLink(a, b)
	lc := g.AddLink(a, c)
	n := NewNetwork(g, Options{})
	var d Delta
	ops := []BatchOp{
		InsertOp(Rule{ID: 1, Source: a, Link: lb, Match: iv(0, 100), Priority: 1}),
		InsertOp(Rule{ID: 2, Source: a, Link: lc, Match: iv(0, 100), Priority: 9}),
	}
	if err := n.ApplyBatch(ops, &d, 0); err != nil {
		t.Fatal(err)
	}
	for _, la := range d.Added {
		if la.Link == lb {
			t.Fatalf("shadowed rule leaked into net delta: %+v", d.Added)
		}
	}
	if n.Label(lb).Len() != 0 || n.Label(lc).Len() == 0 {
		t.Fatalf("labels wrong: lb=%v lc=%v", n.Label(lb).Slice(), n.Label(lc).Slice())
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

// TestBatchAtomicFailure: any invalid operation rejects the whole batch
// and leaves the engine untouched.
func TestBatchAtomicFailure(t *testing.T) {
	g := netgraph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	l := g.AddLink(a, b)
	n := NewNetwork(g, Options{})
	if _, err := n.InsertRule(Rule{ID: 1, Source: a, Link: l, Match: iv(0, 50), Priority: 1}); err != nil {
		t.Fatal(err)
	}
	atomsBefore := n.NumAtoms()

	var d Delta
	cases := map[string][]BatchOp{
		"duplicate of live rule": {
			InsertOp(Rule{ID: 2, Source: a, Link: l, Match: iv(60, 70), Priority: 1}),
			InsertOp(Rule{ID: 1, Source: a, Link: l, Match: iv(80, 90), Priority: 1}),
		},
		"duplicate within batch": {
			InsertOp(Rule{ID: 3, Source: a, Link: l, Match: iv(60, 70), Priority: 1}),
			InsertOp(Rule{ID: 3, Source: a, Link: l, Match: iv(80, 90), Priority: 1}),
		},
		"unknown removal": {
			InsertOp(Rule{ID: 4, Source: a, Link: l, Match: iv(60, 70), Priority: 1}),
			RemoveOp(99),
		},
		"double removal within batch": {
			RemoveOp(1),
			RemoveOp(1),
		},
		"empty match": {
			InsertOp(Rule{ID: 5, Source: a, Link: l, Match: iv(60, 60), Priority: 1}),
		},
		"bad link": {
			InsertOp(Rule{ID: 6, Source: b, Link: l, Match: iv(60, 70), Priority: 1}),
		},
	}
	for name, ops := range cases {
		if err := n.ApplyBatch(ops, &d, 0); err == nil {
			t.Fatalf("%s: no error", name)
		}
		if n.NumRules() != 1 || n.NumAtoms() != atomsBefore {
			t.Fatalf("%s: engine mutated: rules=%d atoms=%d", name, n.NumRules(), n.NumAtoms())
		}
		if msg := n.CheckInvariants(); msg != "" {
			t.Fatalf("%s: %s", name, msg)
		}
	}

	// Error classification survives the batch wrapping.
	err := n.ApplyBatch([]BatchOp{RemoveOp(42)}, &d, 0)
	if !errors.Is(err, ErrUnknownRule) {
		t.Fatalf("want ErrUnknownRule, got %v", err)
	}
}

// TestBatchEmpty: an empty batch resets the delta and changes nothing.
func TestBatchEmpty(t *testing.T) {
	g := netgraph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	l := g.AddLink(a, b)
	n := NewNetwork(g, Options{})
	var d Delta
	if _, err := n.InsertRule(Rule{ID: 1, Source: a, Link: l, Match: iv(0, 50), Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.ApplyBatch(nil, &d, 0); err != nil {
		t.Fatal(err)
	}
	if !d.Empty() || len(d.NewAtoms) != 0 || d.Op != OpBatch {
		t.Fatalf("empty batch produced %+v", d)
	}
}

func BenchmarkApplyBatchDense(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, _, links := buildRandomTopology(rng, 8)
	n := NewNetwork(g, Options{})
	var d Delta
	const size = 256
	ops := make([]BatchOp, 0, size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops = ops[:0]
		for j := 0; j < size; j++ {
			l := links[rng.Intn(len(links))]
			lo := uint64(rng.Intn(1 << 24))
			ops = append(ops, InsertOp(Rule{
				ID: RuleID(i*size+j) + 1, Source: g.Link(l).Src, Link: l,
				Match: iv(lo, lo+1+uint64(rng.Intn(1<<20))), Priority: Priority(rng.Intn(1000)),
			}))
		}
		if err := n.ApplyBatch(ops, &d, 0); err != nil {
			b.Fatal(err)
		}
	}
}
