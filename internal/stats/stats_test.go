package stats

import (
	"strings"
	"testing"
	"time"
)

func us(n int) time.Duration { return time.Duration(n) * time.Microsecond }

// memSink pins MemDelta's test allocation in the heap so the forced GC
// inside HeapInUse cannot collect it before the second probe.
var memSink []byte

func TestPercentilesAndMedian(t *testing.T) {
	l := NewLatencies(10)
	for i := 1; i <= 100; i++ {
		l.Add(us(i))
	}
	if got := l.Median(); got != us(50) {
		t.Fatalf("median=%v", got)
	}
	if got := l.Percentile(99); got != us(99) {
		t.Fatalf("p99=%v", got)
	}
	if got := l.Percentile(1); got != us(1) {
		t.Fatalf("p1=%v", got)
	}
	if got := l.Max(); got != us(100) {
		t.Fatalf("max=%v", got)
	}
	if l.Len() != 100 {
		t.Fatalf("len=%d", l.Len())
	}
}

func TestEmptyCollector(t *testing.T) {
	l := NewLatencies(0)
	if l.Median() != 0 || l.Mean() != 0 || l.Max() != 0 {
		t.Fatal("empty stats not zero")
	}
	if l.FractionBelow(us(1)) != 0 {
		t.Fatal("empty fraction")
	}
	if l.CDF(3, 2) != nil {
		t.Fatal("empty CDF")
	}
}

func TestMean(t *testing.T) {
	l := NewLatencies(0)
	l.Add(us(10))
	l.Add(us(20))
	l.Add(us(30))
	if got := l.Mean(); got != us(20) {
		t.Fatalf("mean=%v", got)
	}
}

func TestFractionBelow(t *testing.T) {
	l := NewLatencies(0)
	for i := 0; i < 100; i++ {
		l.Add(us(i * 10)) // 0..990
	}
	if got := l.FractionBelow(us(250)); got != 0.25 {
		t.Fatalf("fraction=%v", got)
	}
	if got := l.FractionBelow(us(10000)); got != 1.0 {
		t.Fatalf("fraction=%v", got)
	}
	// Adding after sorting re-sorts correctly.
	l.Add(us(1))
	if got := l.FractionBelow(us(2)); got <= 0 {
		t.Fatalf("fraction after add=%v", got)
	}
}

func TestCDFMonotonic(t *testing.T) {
	l := NewLatencies(0)
	for i := 1; i <= 1000; i++ {
		l.Add(us(i))
	}
	pts := l.CDF(5, 4)
	if len(pts) != 21 {
		t.Fatalf("points=%d", len(pts))
	}
	prev := -1.0
	for _, p := range pts {
		if p.Fraction < prev {
			t.Fatal("CDF not monotonic")
		}
		prev = p.Fraction
	}
	if pts[len(pts)-1].Fraction != 1.0 {
		t.Fatalf("final fraction=%v", pts[len(pts)-1].Fraction)
	}
	s := FormatCDF(pts)
	if !strings.HasPrefix(s, "# microseconds cdf\n") || len(strings.Split(s, "\n")) < 21 {
		t.Fatalf("FormatCDF output: %q", s[:40])
	}
}

func TestMemDelta(t *testing.T) {
	d := MemDelta(func() {
		memSink = make([]byte, 8<<20)
		for i := range memSink {
			memSink[i] = byte(i)
		}
	})
	memSink = nil
	if d < 4<<20 {
		t.Fatalf("MemDelta=%d, want >= 4MiB", d)
	}
	if HeapInUse() == 0 {
		t.Fatal("HeapInUse zero")
	}
}

func TestTimerAndFormat(t *testing.T) {
	tm := StartTimer()
	time.Sleep(time.Millisecond)
	if tm.Elapsed() < time.Millisecond {
		t.Fatal("timer too fast")
	}
	if got := FormatMicros(1500 * time.Nanosecond); got != "1.5µs" {
		t.Fatalf("FormatMicros=%q", got)
	}
}
