// Package server exposes the Delta-net checker as a network service: an
// SDN controller (or a replay tool) streams rule updates over TCP and
// receives the verification verdict for each — the deployment mode
// sketched in the paper's Figure 7, where Delta-net sits beside the
// controller and "checks the resulting data plane" for every insertion
// and removal.
//
// The protocol is line-oriented UTF-8, one request per line, one response
// line per request, in order:
//
//	node <name>                          -> ok node <id>
//	link <srcID> <dstID>                 -> ok link <id>
//	I <ruleID> <srcID> <linkID|-1> <lo> <hi> <prio>
//	                                     -> ok atoms=<n> loops=<k> [loop <lo>:<hi> ...]
//	R <ruleID>                           -> ok atoms=<n> loops=0
//	reach <srcID> <dstID>                -> ok reach <count>
//	whatif <linkID>                      -> ok whatif atoms=<n> edges=<m>
//	stats                                -> ok stats rules=<r> atoms=<a> links=<l>
//	quit                                 -> connection closed
//
// Errors are reported as "err <message>" and do not close the connection.
// The engine is a single shared data plane; concurrent connections are
// serialized per request, preserving the order guarantees a data plane
// checker needs.
package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// Server is a verification service over one shared data plane.
type Server struct {
	mu    sync.Mutex
	graph *netgraph.Graph
	net   *core.Network
	delta core.Delta

	wg       sync.WaitGroup
	listener net.Listener
	closed   chan struct{}
}

// New returns a server over a fresh empty data plane.
func New(opts core.Options) *Server {
	g := netgraph.New()
	return &Server{
		graph:  g,
		net:    core.NewNetwork(g, opts),
		closed: make(chan struct{}),
	}
}

// Network exposes the underlying engine (for preloading a snapshot before
// serving).
func (s *Server) Network() *core.Network { return s.net }

// Graph exposes the topology (for preloading before serving).
func (s *Server) Graph() *netgraph.Graph { return s.graph }

// Serve accepts connections on l until Close is called. It blocks; run it
// in a goroutine when the caller needs to continue.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil // clean shutdown
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	close(s.closed)
	s.mu.Lock()
	l := s.listener
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), 1<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" {
			w.Flush()
			return
		}
		resp := s.dispatch(line)
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch executes one request under the engine lock.
func (s *Server) dispatch(line string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	fields := strings.Fields(line)
	switch fields[0] {
	case "node":
		if len(fields) != 2 {
			return "err usage: node <name>"
		}
		id := s.graph.AddNode(fields[1])
		return fmt.Sprintf("ok node %d", id)
	case "link":
		src, dst, err := twoInts(fields)
		if err != nil {
			return "err usage: link <srcID> <dstID>"
		}
		if !s.validNode(src) || !s.validNode(dst) {
			return "err unknown node id"
		}
		id := s.graph.AddLink(netgraph.NodeID(src), netgraph.NodeID(dst))
		return fmt.Sprintf("ok link %d", id)
	case "I":
		if len(fields) != 7 {
			return "err usage: I <ruleID> <srcID> <linkID|-1> <lo> <hi> <prio>"
		}
		var nums [6]int64
		for i := range nums {
			v, err := strconv.ParseInt(fields[i+1], 10, 64)
			if err != nil {
				return "err bad number: " + fields[i+1]
			}
			nums[i] = v
		}
		if !s.validNode(int(nums[1])) {
			return "err unknown node id"
		}
		if nums[2] != -1 && (nums[2] < 0 || int(nums[2]) >= s.graph.NumLinks()) {
			return "err unknown link id"
		}
		r := core.Rule{
			ID:       core.RuleID(nums[0]),
			Source:   netgraph.NodeID(nums[1]),
			Link:     netgraph.LinkID(nums[2]),
			Match:    ipnet.Interval{Lo: uint64(nums[3]), Hi: uint64(nums[4])},
			Priority: core.Priority(nums[5]),
		}
		if err := s.net.InsertRuleInto(r, &s.delta); err != nil {
			return "err " + err.Error()
		}
		loops := check.FindLoopsDelta(s.net, &s.delta)
		return s.updateResponse(loops)
	case "R":
		if len(fields) != 2 {
			return "err usage: R <ruleID>"
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return "err bad rule id"
		}
		if err := s.net.RemoveRuleInto(core.RuleID(id), &s.delta); err != nil {
			return "err " + err.Error()
		}
		return s.updateResponse(nil)
	case "reach":
		a, b, err := twoInts(fields)
		if err != nil || !s.validNode(a) || !s.validNode(b) {
			return "err usage: reach <srcID> <dstID>"
		}
		r := check.Reachable(s.net, netgraph.NodeID(a), netgraph.NodeID(b))
		return fmt.Sprintf("ok reach %d", r.Len())
	case "whatif":
		if len(fields) != 2 {
			return "err usage: whatif <linkID>"
		}
		l, err := strconv.Atoi(fields[1])
		if err != nil || l < 0 || l >= s.graph.NumLinks() {
			return "err unknown link id"
		}
		sub := check.AffectedByLinkFailure(s.net, netgraph.LinkID(l))
		return fmt.Sprintf("ok whatif atoms=%d edges=%d", sub.Affected.Len(), sub.NumEdges())
	case "stats":
		return fmt.Sprintf("ok stats rules=%d atoms=%d links=%d",
			s.net.NumRules(), s.net.NumAtoms(), s.graph.NumLinks())
	default:
		return "err unknown command " + fields[0]
	}
}

func (s *Server) updateResponse(loops []check.Loop) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ok atoms=%d loops=%d", s.net.NumAtoms(), len(loops))
	for _, l := range loops {
		if iv, ok := s.net.AtomInterval(l.Atom); ok {
			fmt.Fprintf(&b, " loop %d:%d", iv.Lo, iv.Hi)
		}
	}
	return b.String()
}

func (s *Server) validNode(id int) bool { return id >= 0 && id < s.graph.NumNodes() }

func twoInts(fields []string) (int, int, error) {
	if len(fields) != 3 {
		return 0, 0, fmt.Errorf("arity")
	}
	a, err1 := strconv.Atoi(fields[1])
	b, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad int")
	}
	return a, b, nil
}
