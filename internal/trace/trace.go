// Package trace defines the replayable operation traces the paper's
// datasets are distributed as (§4.2: "we organize our data sets as text
// files in which each line denotes an operation: an insertion or removal
// of a rule. So all operations can be easily replayed").
//
// A trace bundles the topology with the operation stream so a file is
// self-contained. The text format is line-oriented:
//
//	# comments and blank lines ignored
//	deltanet-trace v1
//	node <id> <name>
//	link <id> <srcNodeID> <dstNodeID>
//	I <ruleID> <sourceNodeID> <linkID|-1> <lo> <hi> <priority>
//	R <ruleID>
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// Op is one replayable operation.
type Op struct {
	Insert bool
	Rule   core.Rule // fully populated for inserts; only ID for removals
}

// Trace is a topology plus an operation stream.
type Trace struct {
	Name  string
	Graph *netgraph.Graph
	Ops   []Op
}

// NumInserts returns the number of insert operations.
func (t *Trace) NumInserts() int {
	n := 0
	for _, op := range t.Ops {
		if op.Insert {
			n++
		}
	}
	return n
}

// Write serializes the trace to w in the v1 text format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "# %s\n", t.Name)
	fmt.Fprintln(bw, "deltanet-trace v1")
	g := t.Graph
	for v := netgraph.NodeID(0); int(v) < g.NumNodes(); v++ {
		fmt.Fprintf(bw, "node %d %s\n", v, g.NodeName(v))
	}
	for _, l := range g.Links() {
		fmt.Fprintf(bw, "link %d %d %d\n", l.ID, l.Src, l.Dst)
	}
	for _, op := range t.Ops {
		if op.Insert {
			r := op.Rule
			fmt.Fprintf(bw, "I %d %d %d %d %d %d\n", r.ID, r.Source, r.Link, r.Match.Lo, r.Match.Hi, r.Priority)
		} else {
			fmt.Fprintf(bw, "R %d\n", op.Rule.ID)
		}
	}
	return bw.Flush()
}

// Read parses a trace in the v1 text format.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{Graph: netgraph.New()}
	sawHeader := false
	lineNo := 0
	// Node/link ids must come out dense and in order; we validate that
	// the ids the graph assigns match the file's.
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if t.Name == "" {
				t.Name = strings.TrimSpace(line[1:])
			}
			continue
		}
		if !sawHeader {
			if line != "deltanet-trace v1" {
				return nil, fmt.Errorf("trace: line %d: missing header, got %q", lineNo, line)
			}
			sawHeader = true
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: bad node line", lineNo)
			}
			want, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			got := t.Graph.AddNode(fields[2])
			if int(got) != want {
				return nil, fmt.Errorf("trace: line %d: node id %d assigned %d (file not dense/ordered)", lineNo, want, got)
			}
		case "link":
			if len(fields) != 4 {
				return nil, fmt.Errorf("trace: line %d: bad link line", lineNo)
			}
			want, err1 := strconv.Atoi(fields[1])
			src, err2 := strconv.Atoi(fields[2])
			dst, err3 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("trace: line %d: bad link ids", lineNo)
			}
			got := t.Graph.AddLink(netgraph.NodeID(src), netgraph.NodeID(dst))
			if int(got) != want {
				return nil, fmt.Errorf("trace: line %d: link id %d assigned %d", lineNo, want, got)
			}
		case "I":
			if len(fields) != 7 {
				return nil, fmt.Errorf("trace: line %d: bad insert line", lineNo)
			}
			var nums [6]int64
			for i := 0; i < 6; i++ {
				v, err := strconv.ParseInt(fields[i+1], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
				}
				nums[i] = v
			}
			t.Ops = append(t.Ops, Op{Insert: true, Rule: core.Rule{
				ID:       core.RuleID(nums[0]),
				Source:   netgraph.NodeID(nums[1]),
				Link:     netgraph.LinkID(nums[2]),
				Match:    ipnet.Interval{Lo: uint64(nums[3]), Hi: uint64(nums[4])},
				Priority: core.Priority(nums[5]),
			}})
		case "R":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: bad remove line", lineNo)
			}
			id, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			t.Ops = append(t.Ops, Op{Rule: core.Rule{ID: core.RuleID(id)}})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("trace: empty input")
	}
	return t, nil
}

// Apply replays one operation into the engine, returning its delta.
func Apply(n *core.Network, op Op, d *core.Delta) error {
	if op.Insert {
		return n.InsertRuleInto(op.Rule, d)
	}
	return n.RemoveRuleInto(op.Rule.ID, d)
}
