// Package server exposes the Delta-net checker as a network service: an
// SDN controller (or a replay tool) streams rule updates over TCP and
// receives the verification verdict for each — the deployment mode
// sketched in the paper's Figure 7, where Delta-net sits beside the
// controller and "checks the resulting data plane" for every insertion
// and removal.
//
// The protocol is line-oriented UTF-8, one request per line, one response
// line per request, in order:
//
//	node <name>                          -> ok node <id>
//	link <srcID> <dstID>                 -> ok link <id>
//	I <ruleID> <srcID> <linkID|-1> <lo> <hi> <prio>
//	                                     -> ok atoms=<n> loops=<k> [loop <lo>:<hi> ...]
//	R <ruleID>                           -> ok atoms=<n> loops=0
//	B <n>                                -> (multi-line, see below)
//	reach <src> <dst>                    -> ok reach <count>
//	whatif <linkID>                      -> ok whatif atoms=<n> edges=<m>
//	whatif <src> <dst>                   -> ok whatif atoms=<n> edges=<m>
//	W <spec>                             -> ok watch <id> <holds|violated>
//	unwatch <id>                         -> ok unwatch <id>
//	watch                                -> ok watching (streaming; see below)
//	watch since <seq>                    -> ok watching (replay + streaming; see below)
//	events since <seq>                   -> ok events n=<k> (k replay lines follow; see below)
//	burst <maxDeltas> <maxAgeMs>         -> ok burst deltas=<n> age=<ms>
//	flush                                -> ok flush events=<k> pending=0
//	stats                                -> ok stats rules=<r> atoms=<a> links=<l> nodes=<v> watch=<w> pending=<p> rskip=<n> ix=<s0,...,s15>
//	quit                                 -> connection closed
//
// Wherever reach, whatif, or a W spec takes a node, it accepts either
// the numeric id or the node's name (as registered with the node
// command); numeric parsing wins, so name nodes non-numerically. Status
// and event lines echo node names back, so watch output survives
// topology renumbering — and the echoed spec re-registers to the same
// invariant. The stats line's rskip counts invariants skipped by
// atom-granular dependency tracking: updates that touched a dep link
// but only atoms the invariant's verdict never examined (ix is the
// dependency index's per-shard bit population).
//
// B introduces an atomic batch: the client sends "B <n>" followed by
// exactly n lines, each an I or R line as above, and receives one response
// for the whole batch:
//
//	B <n>
//	I ... / R ...   (n lines)
//	-> ok batch n=<n> atoms=<a> loops=<k> [loop <lo>:<hi> ...]
//
// The batch is validated before it is applied — on "err ..." none of its
// operations took effect — and is checked once over its merged delta-graph
// (see core.ApplyBatch), so a heavy update stream pays one loop check per
// batch rather than one per rule.
//
// W registers a standing invariant with the shared incremental monitor
// (internal/monitor): after every mutation, only the invariants whose
// dependency sets intersect the update's delta are re-checked. The spec
// grammar is:
//
//	W reach <srcID> <dstID>
//	W waypoint <srcID> <dstID> <viaID>
//	W isolated <id,id,...> <id,id,...>
//	W loopfree
//	W blackholefree
//
// Invariants are shared across connections: any client may register or
// observe them. Registrations are refcounted by spec — W for a spec
// another client already watches returns the same id — and every
// registration a connection made and has not unwatched is automatically
// released when the connection closes, so a flapping client that
// re-registers on every reconnect cannot grow the monitor without bound.
// unwatch releases only a reference the calling connection holds:
// releasing another connection's (or a preload's) reference would
// over-release the refcount once that owner's own teardown runs.
// Invariants registered programmatically (Server.Monitor, e.g. dnserve
// preloads) hold their own reference and survive all disconnects.
//
// burst configures coalescing burst mode on the shared monitor (see
// monitor.BurstConfig): with maxDeltas ≥ 2 or maxAgeMs > 0, mutations
// only merge their delta-graphs into a pending burst, and dirty
// invariants are re-evaluated once per burst — when maxDeltas deltas have
// coalesced, when a mutation finds the burst maxAgeMs old, or on an
// explicit flush. While bursting, a mutation's response reports the
// engine result (atoms, loops) as usual; invariant events simply arrive
// at the next flush, stamped with the coalesced update range. When
// maxAgeMs > 0 the server also flushes on a background ticker, bounding
// event latency even when updates stop mid-burst. "burst 0 0" disables
// coalescing (followed by an automatic flush of any pending burst).
//
// watch switches the connection into streaming mode: the "ok watching"
// response is followed by one snapshot line per registered invariant,
//
//	status <id> <holds|violated> <spec> -- <detail>
//
// (taken after the subscription is live, so a transition racing the
// subscription is never silently missed), and from then on verdict
// transitions caused by any connection's mutations are pushed
// asynchronously as lines of the form
//
//	event <id> <violation|cleared> <spec> upd=<first>:<last> seq=<n> -- <detail>
//
// where upd delimits the update sequence range whose (possibly coalesced,
// see burst) delta produced the transition and seq is the event's own
// monotonic sequence number (the client's resume cursor),
//
// interleaved between (never inside) regular response lines; the
// connection keeps accepting requests. A slow streaming consumer never
// stalls verification: events overflowing the subscription buffer are
// dropped, not queued unboundedly.
//
// The monitor retains a bounded backlog of recent events (monitor
// DefaultBacklog), making watch sessions durable across disconnects:
//
//   - "events since <seq>" replays the retained events with sequence
//     numbers after seq. The "ok events n=<k>" response is followed by
//     exactly k lines: a "gap <from>:<to>" line first when churn has
//     pushed part of the requested suffix off the backlog (naming the
//     lost sequence range), then one event line per retained event.
//   - "watch since <seq>" is resumable watch: after "ok watching" the
//     missed events replay as normal event lines, then live streaming
//     takes over with no seam (an event is replayed or streamed, never
//     neither). When the backlog has truncated the suffix, a
//     "gap <from>:<to>" line plus a full status snapshot re-anchor the
//     client instead, since its cached verdict state is unrecoverably
//     stale.
//
// Errors are reported as "err <message>" and do not close the connection,
// with two exceptions, both written as a final error line before the close:
// a bad batch header ("B" with a missing, unparseable, or out-of-range
// size), because the server cannot delimit the body the client committed
// to sending and any resync guess could execute body lines as individual
// commands; and a scanner error (a line over the 1MB limit, or any read
// error), because the scanner cannot resync past the bad input.
// The engine is a single shared data plane; mutations (node, link, I, R,
// B) are serialized under a write lock, preserving the order guarantees a
// data plane checker needs, while read-only requests (reach, whatif,
// stats, W, unwatch, flush, burst, events) run concurrently under a read
// lock (the monitor has its own internal locks for registration
// bookkeeping, events, and burst state).
package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/journal"
	"deltanet/internal/monitor"
	"deltanet/internal/netgraph"
)

// Server is a verification service over one shared data plane.
//
// Lock order (enforced by the lockorder analyzer via the ranks below):
// mu → connMu → flushMu → connWriter.mu.
type Server struct {
	// mu is write-held for mutations, read-held for queries.
	//
	//deltanet:lockrank 10
	mu    sync.RWMutex
	graph *netgraph.Graph
	net   *core.Network
	delta core.Delta
	mon   *monitor.Monitor

	// engineOpts is the engine configuration New built the network with,
	// kept so a replica re-anchor (replica.go) rebuilds an identically
	// configured one. Set once in New, then read-only.
	engineOpts core.Options

	wg        sync.WaitGroup
	listener  net.Listener
	closeOnce sync.Once
	closed    chan struct{}

	// connMu guards conns.
	//
	//deltanet:lockrank 20
	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// jsubMu guards the journal stream subscriber set (journal.go).
	//
	//deltanet:lockrank 15
	jsubMu sync.Mutex
	jsubs  map[chan journal.Record]struct{}

	// flushMu guards the background burst flusher's lifecycle; flushStop
	// is non-nil while a flusher goroutine runs.
	//
	//deltanet:lockrank 30
	flushMu   sync.Mutex
	flushStop chan struct{}

	// jrnl, when non-nil, receives every applied mutation (options.go:
	// WithJournal). Set before Serve, then read-only; appends happen
	// under the write lock. jrnlErrs counts failed appends (the update
	// itself is already applied and acknowledged; durability, not
	// correctness, is what degrades).
	jrnl     *journal.Journal
	jrnlErrs atomic.Uint64

	// loadedJournal is the journal offset a LoadState-restored dump was
	// current through (state.go); LoadedJournalOffset exposes it so the
	// caller knows where to resume journal replay. Written only by
	// LoadState (before Serve) and the replica re-anchor path (under the
	// write lock).
	loadedJournal uint64

	// replicaOf, when non-empty, is the primary address this server
	// replicates from (options.go: WithReplicaOf); replica.go holds the
	// loop and the lag state below. Set before Serve, then read-only.
	replicaOf   string
	replCursor  atomic.Uint64 // journal offset applied through
	replEnd     atomic.Uint64 // primary journal end, as of the last frame
	replStamp   atomic.Int64  // unixnano stamp of the last applied record
	replanchors atomic.Uint64 // checkpoint re-anchors (journal truncations)

	// staged carries the in-flight mutation's server-side stage timings
	// for the monitor trace sink (pipeline.go). Guarded by mu: written
	// only under the write lock and cleared before it is released.
	staged stageInfo

	// tr is the per-update pipeline trace ring behind the `trace`
	// command (pipeline.go); it has its own mutex.
	tr tracer

	// ing is the binary-protocol ingest state (ingest.go): the MPSC
	// ring between connection decoders and the coalescer goroutine,
	// started lazily by the first dnbin handshake or feed push.
	ing ingestState

	// met holds the hot-path metric handles once EnableMetrics has run
	// (nil before; metrics.go). Set before Serve, then read-only.
	met *serverMetrics

	// Transport counters, exported via EnableMetrics and /statusz.
	connsTotal atomic.Uint64
	bytesIn    atomic.Uint64
	bytesOut   atomic.Uint64
	scanErrs   atomic.Uint64

	started time.Time
}

// New returns a server over a fresh empty data plane, configured by
// functional options (options.go).
func New(opts ...Option) *Server {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	g := netgraph.New()
	n := core.NewNetwork(g, o.engine)
	s := &Server{
		graph:      g,
		net:        n,
		mon:        monitor.New(n, 0),
		engineOpts: o.engine,
		closed:     make(chan struct{}),
		conns:      map[net.Conn]struct{}{},
		jsubs:      map[chan journal.Record]struct{}{},
		started:    time.Now(),
	}
	// Every delta-driven evaluation pass reports its stage times back to
	// the server, merging with the staged engine-side stages (pipeline.go).
	s.mon.SetTraceSink(s.onApplyTrace)
	if o.backlog != 0 {
		s.mon.SetBacklog(o.backlog)
	}
	if o.slow > 0 {
		s.setSlowUpdate(o.slow, o.slowLog)
	}
	s.jrnl = o.jrnl
	s.replicaOf = o.replicaOf
	s.ing.capacity = o.ingCap
	if s.replicaOf == "" && (o.burst.MaxDeltas >= 2 || o.burst.MaxAge > 0) {
		// Replicas force burst off: coalescing on a replica would flush on
		// different boundaries than the primary and the event streams
		// would diverge.
		s.setBurst(o.burst)
	}
	if o.reg != nil {
		s.enableMetrics(o.reg)
	}
	return s
}

// Monitor exposes the shared standing-invariant monitor (for preloading
// invariants before serving).
func (s *Server) Monitor() *monitor.Monitor { return s.mon }

// setBurst configures coalescing burst mode on the shared monitor (the
// zero config disables it and flushes any pending burst), and manages the
// background flusher that bounds event latency when cfg.MaxAge > 0. It is
// what the protocol's burst command calls; WithBurst applies it at
// construction. The caller must guarantee the data plane is stable for
// the disable path's flush: hold at least the read lock (the protocol
// path does), or call before serving starts.
func (s *Server) setBurst(cfg monitor.BurstConfig) {
	s.mon.SetBurst(cfg)
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	if s.flushStop != nil {
		close(s.flushStop)
		s.flushStop = nil
	}
	if cfg.MaxAge <= 0 {
		if cfg.MaxDeltas < 2 {
			// Bursting is off: evaluate whatever was buffered under the
			// old config so no events are stranded.
			s.mon.Flush()
		}
		return
	}
	select {
	case <-s.closed:
		return // raced Close; don't start a flusher that nothing stops
	default:
	}
	stop := make(chan struct{})
	s.flushStop = stop
	interval := cfg.MaxAge / 2
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-s.closed:
				return
			case <-t.C:
				// The read lock keeps the data plane stable while the
				// flush evaluates.
				s.mu.RLock()
				if s.mon.Pending() > 0 {
					s.mon.Flush()
				}
				s.mu.RUnlock()
			}
		}
	}()
}

// Network exposes the underlying engine (for preloading a snapshot before
// serving).
func (s *Server) Network() *core.Network { return s.net }

// Graph exposes the topology (for preloading before serving).
func (s *Server) Graph() *netgraph.Graph { return s.graph }

// Serve accepts connections on l until Close is called. It blocks; run it
// in a goroutine when the caller needs to continue.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	// Close may have run before the listener was stored; it then had
	// nothing to close, so close here rather than block in Accept forever.
	select {
	case <-s.closed:
		l.Close()
		return nil
	default:
	}
	if s.replicaOf != "" {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.replicaLoop()
		}()
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil // clean shutdown
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if !s.track(conn) {
				conn.Close() // raced Close; shut the accepted conn down
				return
			}
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

// track registers a live connection so Close can unblock it; it reports
// false when the server is already closing.
func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	delete(s.conns, conn)
}

// Close stops accepting, closes live connections (a watcher idling in a
// read would otherwise hold shutdown hostage), and waits for in-flight
// handlers to finish. It is idempotent: second and later calls wait like
// the first and return nil.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		s.mu.Lock()
		l := s.listener
		s.mu.Unlock()
		if l != nil {
			err = l.Close()
		}
		s.connMu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.connMu.Unlock()
	})
	s.wg.Wait()
	return err
}

// maxLine bounds one protocol line; a longer line is a scanner error
// reported to the client as "err line too long" before the connection
// closes.
const maxLine = 1 << 20

// connWriter is the single funnel for writes to a client connection.
// Once a connection enters watch mode a streamer goroutine shares it
// with the request loop; mu keeps whole lines atomic, and the returned
// error is how a dead client is detected (the guardedwriter analyzer
// enforces that every caller checks it and that no write bypasses this
// type).
//
//deltanet:connwriter
type connWriter struct {
	//deltanet:lockrank 40
	mu sync.Mutex
	w  *bufio.Writer
	// sent accumulates bytes written (the server's bytes-out counter).
	sent *atomic.Uint64
}

func newConnWriter(conn net.Conn, sent *atomic.Uint64) *connWriter {
	return &connWriter{w: bufio.NewWriter(conn), sent: sent}
}

// writeLine writes one protocol line and flushes it. A non-nil error
// means the client is unreachable and the connection should close.
func (cw *connWriter) writeLine(line string) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if _, err := fmt.Fprintln(cw.w, line); err != nil {
		return err
	}
	if cw.sent != nil {
		cw.sent.Add(uint64(len(line)) + 1)
	}
	return cw.w.Flush()
}

// countingReader counts bytes handed to the protocol scanner (the
// server's bytes-in counter).
type countingReader struct {
	conn net.Conn
	n    *atomic.Uint64
}

func (r countingReader) Read(p []byte) (int, error) {
	n, err := r.conn.Read(p)
	if n > 0 {
		r.n.Add(uint64(n))
	}
	return n, err
}

//deltanet:dispatch
func (s *Server) handle(conn net.Conn) {
	s.connsTotal.Add(1)
	sc := newLineReader(countingReader{conn: conn, n: &s.bytesIn})
	cw := newConnWriter(conn, &s.bytesOut)

	// owned counts the references this connection holds on each watched
	// invariant (W increments, unwatch of an owned id decrements); the
	// teardown below releases the leftovers so a disconnecting client
	// cannot leak registrations.
	owned := map[monitor.ID]int{}

	var sub *monitor.Subscription
	var streamWG sync.WaitGroup
	defer func() {
		// Close before waiting: a streamer can be blocked mid-write on a
		// client that stopped reading, and only the close unblocks it.
		conn.Close()
		if sub != nil {
			sub.Cancel() // closes the channel; the streamer drains and exits
			streamWG.Wait()
		}
		for id, n := range owned {
			for ; n > 0; n-- {
				s.mon.Unregister(id)
			}
		}
	}()

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" {
			s.countVerb("quit")
			return
		}
		var resp string
		fatal := false
		switch fields := strings.Fields(line); {
		case fields[0] == "B":
			s.countVerb("B")
			resp, fatal = s.readAndApplyBatch(fields, sc)
		case fields[0] == "dnbin":
			s.countVerb("dnbin")
			// Binary upgrade: on success the rest of the connection is
			// length-prefixed frames (ingest.go); a refusal keeps the
			// line loop going.
			if resp = s.serveBinary(fields, sc, cw); resp == "" {
				return
			}
		case fields[0] == "journal":
			s.countVerb("journal")
			// Streaming mode: on success the connection is dedicated to the
			// journal tail until it closes (the replica speaks no further
			// commands on it); an error response keeps the line loop going.
			if resp = s.streamJournal(fields, cw); resp == "" {
				return
			}
		case fields[0] == "watch":
			s.countVerb("watch")
			var err error
			if resp, err = s.startWatch(fields, cw, &sub, &streamWG); err != nil {
				return // client unwritable mid-handshake
			}
			if resp == "" {
				continue // streaming started; everything already written
			}
		default:
			resp = s.dispatch(line, owned)
		}
		if err := cw.writeLine(resp); err != nil || fatal {
			return
		}
	}
	// A scanner error is NOT a client disconnect: the connection may
	// still be writable (an over-long line, most commonly), so tell the
	// client what happened instead of vanishing. The scanner cannot
	// resync past the bad input, so the connection closes either way.
	// A failed write here means the client is already gone; the close
	// below is the only remaining remedy either way.
	if err := sc.Err(); err != nil {
		s.scanErrs.Add(1)
		var werr error
		if err == bufio.ErrTooLong {
			werr = cw.writeLine(fmt.Sprintf("err line too long (max %d bytes; closing connection)", maxLine))
		} else {
			werr = cw.writeLine("err read error: " + err.Error() + " (closing connection)")
		}
		_ = werr // client unreachable; connection closes regardless
	}
}

// startWatch enters streaming mode for a "watch" or "watch since <seq>"
// request. It returns ("", nil) when streaming started (the handshake
// lines were written and the streamer goroutine owns live events), a
// non-empty response when the request was refused, and a non-nil error
// when the client stopped reading mid-handshake.
//
// For a resume (since), the catch-up phase replays the backlog suffix
// after seq; when the backlog has truncated it, an explicit
// "gap <from>:<to>" line names the lost range and a full status
// snapshot re-anchors the client before live events flow. The live
// streamer filters events at or below the last replayed sequence
// number: the subscription is live from before the backlog is read, so
// the window between the two would otherwise be delivered twice.
func (s *Server) startWatch(fields []string, cw *connWriter,
	subp **monitor.Subscription, streamWG *sync.WaitGroup) (resp string, err error) {
	resume := len(fields) == 3 && fields[1] == "since"
	var since uint64
	if resume {
		v, perr := strconv.ParseUint(fields[2], 10, 64)
		if perr != nil {
			return "err usage: watch [since <seq>]", nil
		}
		since = v
	} else if len(fields) != 1 {
		return "err usage: watch [since <seq>]", nil
	}
	if *subp != nil {
		return "err already watching", nil
	}
	sub := s.mon.Subscribe(eventBuffer)
	*subp = sub
	// Acknowledge before the first event can be written.
	if err := cw.writeLine("ok watching"); err != nil {
		return "", err
	}
	lastSeen := since
	snapshot := !resume
	if resume {
		rep := s.mon.EventsSince(since)
		// After the catch-up phase the client is current through
		// rep.Head: every earlier event was replayed, folded into the
		// re-anchor snapshot, or named lost. (On a gap, rep.Head also
		// undoes a cursor from a previous server incarnation, which
		// must not suppress the fresh stream's lower sequence numbers.)
		lastSeen = rep.Head
		if rep.LostFrom > 0 {
			// The backlog cannot replay the client's suffix: name the
			// lost range and re-anchor with a fresh snapshot rather than
			// replay a stream with a hole in it (any retained events are
			// already folded into the snapshot).
			if err := cw.writeLine(fmt.Sprintf("gap %d:%d", rep.LostFrom, rep.LostTo)); err != nil {
				return "", err
			}
			snapshot = true
		} else {
			for _, ev := range rep.Events {
				if err := cw.writeLine(s.formatEvent(ev)); err != nil {
					return "", err
				}
			}
		}
	}
	if snapshot {
		// Snapshot taken AFTER subscribing: a transition racing the
		// subscription shows up as an event, a status line, or both —
		// never as silence — so the client's view starts authoritative.
		for _, info := range s.mon.Invariants() {
			if err := cw.writeLine(fmt.Sprintf("status %d %s %s -- %s",
				info.ID, info.Status, s.formatSpec(info.Spec), info.Detail)); err != nil {
				return "", err
			}
		}
	}
	streamWG.Add(1)
	go func(c <-chan monitor.Event, after uint64) {
		defer streamWG.Done()
		for ev := range c {
			if ev.Seq <= after {
				continue // already delivered by the catch-up replay
			}
			if cw.writeLine(s.formatEvent(ev)) != nil {
				return
			}
		}
	}(sub.C, lastSeen)
	return "", nil
}

// eventBuffer is a watch subscription's channel capacity; events beyond
// it are dropped rather than stalling mutations (the monitor counts
// drops).
const eventBuffer = 256

// formatEvent renders one transition, including the (inclusive) range of
// update sequence numbers whose coalesced delta produced it — upd=N:N for
// a single update, upd=N:M for a flushed burst — and the event's own
// sequence number, which a watcher records as its resume cursor for
// "watch since <seq>" / "events since <seq>" after a disconnect.
func (s *Server) formatEvent(ev monitor.Event) string {
	return fmt.Sprintf("event %d %s %s upd=%d:%d seq=%d -- %s",
		ev.ID, ev.Kind, s.formatSpec(ev.Spec), ev.FirstUpdate, ev.LastUpdate, ev.Seq, ev.Detail)
}

// formatSpec renders a spec for status and event lines: the canonical
// FormatSpec grammar (sink sets included, so the printed spec
// round-trips through the resolver-aware ParseSpecNamed to the
// invariant the line is actually about), with node ids replaced by
// their topology names — references that survive renumbering. NodeName
// is safe against a concurrent AddNode, so streamer goroutines may call
// this without holding the engine lock.
func (s *Server) formatSpec(spec monitor.Spec) string {
	return monitor.FormatSpecNamed(spec, s.graph.NodeName)
}

// maxBatch bounds a B request's line count, and maxBatchBytes its
// aggregate body size, so a bad client cannot make the server buffer
// unbounded input before the batch is parsed (a legitimate I line is
// under 80 bytes, so 4MB leaves generous headroom at maxBatch lines).
const (
	maxBatch      = 1 << 16
	maxBatchBytes = 4 << 20
)

// readAndApplyBatch consumes the n lines of a "B <n>" request from the
// connection, then applies them as one atomic batch under the write lock.
// The lines are collected before the lock is taken so a slow client cannot
// stall other connections mid-batch.
//
// A bad batch header (missing, unparseable, or out-of-range size) is fatal
// to the connection: the client has already committed to sending a body the
// server cannot delimit, so continuing would execute the body lines as
// individual commands. The error response is written, then the connection
// closes. Errors inside a fully-read body keep the connection open.
func (s *Server) readAndApplyBatch(fields []string, sc *lineReader) (resp string, fatal bool) {
	if len(fields) != 2 {
		return "err usage: B <n> (closing connection: batch body undelimited)", true
	}
	count, err := strconv.Atoi(fields[1])
	if err != nil || count < 1 || count > maxBatch {
		return fmt.Sprintf("err batch size must be 1..%d (closing connection: batch body undelimited)", maxBatch), true
	}
	lines := make([]string, 0, count)
	bytes := 0
	for len(lines) < count {
		if !sc.Scan() {
			// Distinguish a genuine disconnect from a scanner error: after
			// an over-long line (or any read error) the connection may
			// still be writable, and "truncated by disconnect" would send
			// the client hunting for a network problem that isn't there.
			if err := sc.Err(); err == bufio.ErrTooLong {
				s.scanErrs.Add(1)
				return fmt.Sprintf("err batch line too long (max %d bytes; closing connection)", maxLine), true
			} else if err != nil {
				s.scanErrs.Add(1)
				return "err batch aborted by read error: " + err.Error() + " (closing connection)", true
			}
			return "err batch truncated by disconnect", true
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if bytes += len(line); bytes > maxBatchBytes {
			return fmt.Sprintf("err batch body exceeds %d bytes (closing connection)", maxBatchBytes), true
		}
		lines = append(lines, line)
	}
	// The body is fully drained before the read-only check so its lines
	// are never executed as individual commands.
	if s.replicaOf != "" {
		return errReadOnly, false
	}

	t0 := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	lockNs := time.Since(t0).Nanoseconds()
	t0 = time.Now()
	ops := make([]core.BatchOp, 0, count)
	for i, line := range lines {
		op, errmsg := s.parseUpdateLine(line)
		if errmsg != "" {
			return fmt.Sprintf("err batch line %d: %s", i+1, errmsg), false
		}
		ops = append(ops, op)
	}
	parseNs := time.Since(t0).Nanoseconds()
	t0 = time.Now()
	if err := s.net.ApplyBatch(ops, &s.delta, 0); err != nil {
		return "err " + err.Error(), false
	}
	loops := check.FindLoopsDeltaAuto(s.net, &s.delta, 0)
	s.staged = stageInfo{valid: true, verb: verbBatch, parseNs: parseNs,
		lockNs: lockNs, applyNs: time.Since(t0).Nanoseconds()}
	s.mon.ApplyWithLoops(&s.delta, loops, true)
	s.finishUpdateLocked()
	// One journal record for the whole batch: replay re-applies it
	// atomically through the same ApplyBatch path.
	s.journalAppendLocked("B " + strconv.Itoa(count) + "\n" + strings.Join(lines, "\n"))
	var b strings.Builder
	fmt.Fprintf(&b, "ok batch n=%d atoms=%d loops=%d", count, s.net.NumAtoms(), len(loops))
	for _, l := range loops {
		if iv, ok := s.net.AtomInterval(l.Atom); ok {
			fmt.Fprintf(&b, " loop %d:%d", iv.Lo, iv.Hi)
		}
	}
	return b.String(), false
}

// nextField returns the next whitespace-delimited token of line
// starting at *i, advancing *i past it. Tokens are substrings of line,
// so scanning a whole update costs zero allocations — this is the
// batch ingest hot path, where strings.Fields' []string per line used
// to dominate the parse stage.
func nextField(line string, i *int) (string, bool) {
	for *i < len(line) && (line[*i] == ' ' || line[*i] == '\t' || line[*i] == '\r') {
		*i++
	}
	if *i >= len(line) {
		return "", false
	}
	start := *i
	for *i < len(line) && line[*i] != ' ' && line[*i] != '\t' && line[*i] != '\r' {
		*i++
	}
	return line[start:*i], true
}

// parseUpdateLine parses an I or R line into a batch operation,
// validating ids against the topology. The fields are scanned in place
// (no per-line allocation). Callers must hold at least the read lock.
func (s *Server) parseUpdateLine(line string) (core.BatchOp, string) {
	i := 0
	verb, _ := nextField(line, &i)
	switch verb {
	case "I":
		var nums [6]int64
		for k := range nums {
			f, ok := nextField(line, &i)
			if !ok {
				return core.BatchOp{}, "usage: I <ruleID> <srcID> <linkID|-1> <lo> <hi> <prio>"
			}
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return core.BatchOp{}, "bad number: " + f
			}
			nums[k] = v
		}
		if _, extra := nextField(line, &i); extra {
			return core.BatchOp{}, "usage: I <ruleID> <srcID> <linkID|-1> <lo> <hi> <prio>"
		}
		if !s.validNode(int(nums[1])) {
			return core.BatchOp{}, "unknown node id"
		}
		if nums[2] != -1 && (nums[2] < 0 || int(nums[2]) >= s.graph.NumLinks()) {
			return core.BatchOp{}, "unknown link id"
		}
		return core.InsertOp(core.Rule{
			ID:       core.RuleID(nums[0]),
			Source:   netgraph.NodeID(nums[1]),
			Link:     netgraph.LinkID(nums[2]),
			Match:    ipnet.Interval{Lo: uint64(nums[3]), Hi: uint64(nums[4])},
			Priority: core.Priority(nums[5]),
		}), ""
	case "R":
		f, ok := nextField(line, &i)
		if !ok {
			return core.BatchOp{}, "usage: R <ruleID>"
		}
		id, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return core.BatchOp{}, "bad rule id"
		}
		if _, extra := nextField(line, &i); extra {
			return core.BatchOp{}, "usage: R <ruleID>"
		}
		return core.RemoveOp(core.RuleID(id)), ""
	default:
		return core.BatchOp{}, "batch lines must be I or R, got " + verb
	}
}

// protocolCommands is the authoritative list of wire commands, sorted.
// The wireproto analyzer cross-checks it against the dispatch code
// below, the README protocol table, and the fuzz seed corpus, so a
// command cannot be added to one without the others.
//
//deltanet:dispatch
var protocolCommands = []string{
	"B", "I", "R", "W",
	"burst", "busy", "checkpoint", "dnbin", "events", "flush", "journal",
	"link", "node", "quit", "reach", "stats", "trace", "unwatch", "watch",
	"whatif",
}

// errReadOnly is the refusal every mutating command gets on a replica
// (node, link, I, R, B, and burst — coalescing would desync the event
// stream from the primary's).
const errReadOnly = "err read-only replica: mutations go to the primary"

// dispatch executes one request under the engine lock: read-only requests
// (including monitor registration and burst flushing, which only read the
// data plane) share the read lock, mutations take the write lock. owned
// is the calling connection's registration refcounts (see handle).
//
//deltanet:dispatch
func (s *Server) dispatch(line string, owned map[monitor.ID]int) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "err empty request"
	}
	s.countVerb(fields[0])
	// lockNs is the mutation-path lock wait, stage two of the update
	// pipeline trace (pipeline.go); reads are not traced.
	var lockNs int64
	switch fields[0] {
	case "node", "link", "I", "R", "burst":
		if s.replicaOf != "" {
			// Refused before any lock: a replica's write lock belongs to
			// the apply loop, and burst would desync it from the primary.
			return errReadOnly
		}
	}
	switch fields[0] {
	case "reach", "whatif", "stats", "W", "unwatch", "flush", "burst", "events", "trace", "checkpoint":
		s.mu.RLock()
		defer s.mu.RUnlock()
	default:
		t0 := time.Now()
		s.mu.Lock()
		lockNs = time.Since(t0).Nanoseconds()
		defer s.mu.Unlock()
	}
	switch fields[0] {
	case "node":
		if len(fields) != 2 {
			return "err usage: node <name>"
		}
		id := s.graph.AddNode(fields[1])
		s.journalAppendLocked(line)
		return fmt.Sprintf("ok node %d", id)
	case "link":
		src, dst, err := twoInts(fields)
		if err != nil {
			return "err usage: link <srcID> <dstID>"
		}
		if !s.validNode(src) || !s.validNode(dst) {
			return "err unknown node id"
		}
		id := s.graph.AddLink(netgraph.NodeID(src), netgraph.NodeID(dst))
		s.journalAppendLocked(line)
		return fmt.Sprintf("ok link %d", id)
	case "I":
		t0 := time.Now()
		op, errmsg := s.parseUpdateLine(line)
		parseNs := time.Since(t0).Nanoseconds()
		if errmsg != "" {
			return "err " + errmsg
		}
		t0 = time.Now()
		if err := s.net.InsertRuleInto(op.Rule, &s.delta); err != nil {
			return "err " + err.Error()
		}
		loops := check.FindLoopsDelta(s.net, &s.delta)
		s.staged = stageInfo{valid: true, verb: verbInsert, parseNs: parseNs,
			lockNs: lockNs, applyNs: time.Since(t0).Nanoseconds()}
		s.mon.ApplyWithLoops(&s.delta, loops, true)
		s.finishUpdateLocked()
		s.journalAppendLocked(line)
		return s.updateResponse(loops)
	case "R":
		t0 := time.Now()
		op, errmsg := s.parseUpdateLine(line)
		parseNs := time.Since(t0).Nanoseconds()
		if errmsg != "" {
			return "err " + errmsg
		}
		t0 = time.Now()
		if err := s.net.RemoveRuleInto(op.Rule.ID, &s.delta); err != nil {
			return "err " + err.Error()
		}
		s.staged = stageInfo{valid: true, verb: verbRemove, parseNs: parseNs,
			lockNs: lockNs, applyNs: time.Since(t0).Nanoseconds()}
		s.mon.Apply(&s.delta)
		s.finishUpdateLocked()
		s.journalAppendLocked(line)
		return s.updateResponse(nil)
	case "reach":
		if len(fields) != 3 {
			return "err usage: reach <src> <dst> (id or name)"
		}
		a, okA := s.resolveNode(fields[1])
		b, okB := s.resolveNode(fields[2])
		if !okA || !okB {
			return "err usage: reach <src> <dst> (id or name)"
		}
		r := check.Reachable(s.net, a, b)
		return fmt.Sprintf("ok reach %d", r.Len())
	case "whatif":
		var l netgraph.LinkID
		switch {
		case len(fields) == 2:
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 || v >= s.graph.NumLinks() {
				return "err unknown link id"
			}
			l = netgraph.LinkID(v)
		case len(fields) == 3:
			// Node-pair form, ids or names: the link between them.
			a, okA := s.resolveNode(fields[1])
			b, okB := s.resolveNode(fields[2])
			if !okA || !okB {
				return "err usage: whatif <linkID> | whatif <src> <dst>"
			}
			if l = s.graph.FindLink(a, b); l == netgraph.NoLink {
				return fmt.Sprintf("err no link %s -> %s", fields[1], fields[2])
			}
		default:
			return "err usage: whatif <linkID> | whatif <src> <dst>"
		}
		sub := check.AffectedByLinkFailure(s.net, l)
		return fmt.Sprintf("ok whatif atoms=%d edges=%d", sub.Affected.Len(), sub.NumEdges())
	case "W":
		spec, errmsg := s.parseSpec(fields[1:])
		if errmsg != "" {
			return "err " + errmsg
		}
		id, status := s.mon.Register(spec)
		owned[id]++
		return fmt.Sprintf("ok watch %d %s", id, status)
	case "unwatch":
		if len(fields) != 2 {
			return "err usage: unwatch <id>"
		}
		id64, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return "err bad watch id"
		}
		id := monitor.ID(id64)
		// Release only a reference this connection holds. Unwatching an
		// id owned by another connection (or a dnserve preload) would
		// over-release the refcount: the other owner's bookkeeping still
		// counts the reference, so its own unwatch or disconnect sweep
		// would release it a second time and tear down a live watch.
		if owned[id] == 0 {
			if _, _, live := s.mon.Status(id); !live {
				return "err unknown watch id"
			}
			return "err watch " + fields[1] + " not owned by this connection"
		}
		s.mon.Unregister(id)
		owned[id]--
		return "ok unwatch " + fields[1]
	case "burst":
		if len(fields) != 3 {
			return "err usage: burst <maxDeltas> <maxAgeMs>"
		}
		deltas, err1 := strconv.Atoi(fields[1])
		ageMs, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || deltas < 0 || ageMs < 0 {
			return "err burst arguments must be non-negative integers"
		}
		s.setBurst(monitor.BurstConfig{MaxDeltas: deltas, MaxAge: time.Duration(ageMs) * time.Millisecond})
		return fmt.Sprintf("ok burst deltas=%d age=%d", deltas, ageMs)
	case "flush":
		if len(fields) != 1 {
			return "err usage: flush"
		}
		events := s.mon.Flush()
		return fmt.Sprintf("ok flush events=%d pending=0", len(events))
	case "events":
		if len(fields) != 3 || fields[1] != "since" {
			return "err usage: events since <seq>"
		}
		seq, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return "err bad sequence number"
		}
		rep := s.mon.EventsSince(seq)
		n := len(rep.Events)
		if rep.LostFrom > 0 {
			n++
		}
		var b strings.Builder
		fmt.Fprintf(&b, "ok events n=%d", n)
		if rep.LostFrom > 0 {
			fmt.Fprintf(&b, "\ngap %d:%d", rep.LostFrom, rep.LostTo)
		}
		for _, ev := range rep.Events {
			b.WriteByte('\n')
			b.WriteString(s.formatEvent(ev))
		}
		return b.String()
	case "stats":
		st := s.mon.Stats()
		shards := make([]string, len(st.IndexShardBits))
		for i, p := range st.IndexShardBits {
			shards[i] = strconv.Itoa(p)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "ok stats rules=%d atoms=%d links=%d nodes=%d watch=%d pending=%d upd=%d rskip=%d ix=%s",
			s.net.NumRules(), s.net.NumAtoms(), s.graph.NumLinks(),
			s.graph.NumNodes(), st.Registered, st.Pending, st.Updates,
			st.RangeSkips, strings.Join(shards, ","))
		if s.jrnl != nil {
			fmt.Fprintf(&b, " jrnl=%d", s.jrnl.End())
		}
		if s.replicaOf != "" {
			fmt.Fprintf(&b, " lag=%d", s.replicaLagBytes())
		}
		if r := s.ing.ring.Load(); r != nil {
			fmt.Fprintf(&b, " ring=%d", r.Depth())
		}
		return b.String()
	case "checkpoint":
		return s.checkpointResponse()
	case "trace":
		return s.traceResponse(fields)
	default:
		return "err unknown command " + fields[0]
	}
}

// parseSpec parses the W command's invariant grammar — the serialized
// spec form shared with state files and the public API
// (monitor.ParseSpec), with node names accepted anywhere a numeric id
// is — and validates every node it names against the topology. Callers
// must hold at least the read lock.
func (s *Server) parseSpec(fields []string) (monitor.Spec, string) {
	const usage = "usage: W reach <a> <b> | W waypoint <a> <b> <via> | W isolated <a,...> <b,...> | W loopfree | W blackholefree [sinks=<a,...>] (nodes by id or name)"
	spec, err := monitor.ParseSpecNamed(strings.Join(fields, " "), s.lookupName)
	if err != nil {
		return nil, usage
	}
	for _, n := range monitor.SpecNodes(spec) {
		if !s.validNode(int(n)) {
			return nil, "unknown node id"
		}
	}
	return spec, ""
}

// lookupName is the monitor.NodeResolver over the server's topology.
func (s *Server) lookupName(name string) (netgraph.NodeID, bool) {
	id := s.graph.NodeByName(name)
	return id, id != netgraph.NoNode
}

// resolveNode resolves one protocol field to a node: a numeric id
// (validated against the topology) or a node name.
func (s *Server) resolveNode(f string) (netgraph.NodeID, bool) {
	if v, err := strconv.Atoi(f); err == nil {
		return netgraph.NodeID(v), s.validNode(v)
	}
	return s.lookupName(f)
}

func (s *Server) updateResponse(loops []check.Loop) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ok atoms=%d loops=%d", s.net.NumAtoms(), len(loops))
	for _, l := range loops {
		if iv, ok := s.net.AtomInterval(l.Atom); ok {
			fmt.Fprintf(&b, " loop %d:%d", iv.Lo, iv.Hi)
		}
	}
	return b.String()
}

func (s *Server) validNode(id int) bool { return id >= 0 && id < s.graph.NumNodes() }

func twoInts(fields []string) (int, int, error) {
	if len(fields) != 3 {
		return 0, 0, fmt.Errorf("arity")
	}
	a, err1 := strconv.Atoi(fields[1])
	b, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad int")
	}
	return a, b, nil
}
