// Package guardedwriter enforces the server's connection-write
// discipline: every write to a net.Conn must flow through the
// connection's mutex-guarded writer (the type annotated
// //deltanet:connwriter) and every write error must be checked.
//
// Rationale: a connection is shared by the request loop and the watch
// streamer goroutine, so raw writes interleave partial lines; and a
// dropped write error is how PR 4's silent-scanner-death bug hid — the
// server kept streaming events to a dead client because nothing looked
// at the error. The analyzer generalizes both fixes:
//
//   - In a package that declares a //deltanet:connwriter type, any write
//     (Write/WriteString/Flush/fmt.Fprint*/io.WriteString/io.Copy/...)
//     whose destination is conn-backed — typed as a net.Conn
//     implementation, or a bufio.Writer wrapped around one — is flagged
//     unless it happens inside the guarded writer's own methods.
//   - Everywhere (including inside the guarded writer, and in packages
//     with no guarded writer at all), a conn-backed write or a call to
//     an error-returning method of the guarded writer must not discard
//     the error (statement position, blank assignment, go/defer).
//
// Packages that do not import net, directly or transitively, are skipped.
package guardedwriter

import (
	"go/ast"
	"go/types"
	"strings"

	"deltanet/internal/analysis/dnlint"
)

// Analyzer enforces guarded, error-checked connection writes.
var Analyzer = &dnlint.Analyzer{
	Name: "guardedwriter",
	Doc:  "check that net.Conn writes flow through the //deltanet:connwriter type with errors checked",
	Run:  run,
}

// writeMethods are method names that transmit bytes when invoked on a
// conn-backed destination.
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Flush":       true,
	"ReadFrom":    true,
}

// writeFuncs maps qualified function names to the index of the
// destination argument.
var writeFuncs = map[string]int{
	"fmt.Fprint":     0,
	"fmt.Fprintf":    0,
	"fmt.Fprintln":   0,
	"io.WriteString": 0,
	"io.Copy":        0,
}

func run(pass *dnlint.Pass) error {
	conn := connInterface(pass.Pkg)
	if conn == nil {
		return nil // package does not touch the network
	}
	writers := connWriterTypes(pass)
	c := &checker{pass: pass, conn: conn, writers: writers}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

// connInterface finds the net.Conn interface in the package's transitive
// imports, or nil if net is not imported.
func connInterface(pkg *types.Package) *types.Interface {
	seen := make(map[*types.Package]bool)
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == "net" {
			if obj, ok := p.Scope().Lookup("Conn").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(pkg)
}

// connWriterTypes collects the package's //deltanet:connwriter types.
func connWriterTypes(pass *dnlint.Pass) map[*types.TypeName]bool {
	writers := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				_, marked := dnlint.GroupMarker(ts.Doc, "connwriter")
				if !marked && len(gd.Specs) == 1 {
					_, marked = dnlint.GroupMarker(gd.Doc, "connwriter")
				}
				if !marked {
					continue
				}
				if tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok {
					writers[tn] = true
				}
			}
		}
	}
	return writers
}

type checker struct {
	pass    *dnlint.Pass
	conn    *types.Interface
	writers map[*types.TypeName]bool

	// per function:
	inWriter   bool
	taint      map[*types.Var]bool    // bufio writers wrapped around a conn
	discard    map[*ast.CallExpr]bool // call result fully discarded
	errDiscard map[*ast.CallExpr]bool // call's error result assigned to _
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	c.inWriter = c.isWriterMethod(fd)
	c.taint = make(map[*types.Var]bool)
	c.discard = make(map[*ast.CallExpr]bool)
	c.errDiscard = make(map[*ast.CallExpr]bool)

	// First pass: how is each call's result consumed, and which local
	// bufio.Writers wrap a connection?
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := unparen(s.X).(*ast.CallExpr); ok {
				c.discard[call] = true
			}
		case *ast.GoStmt:
			c.discard[s.Call] = true
		case *ast.DeferStmt:
			c.discard[s.Call] = true
		case *ast.AssignStmt:
			c.recordAssign(s)
		}
		return true
	})

	// Second pass: classify every write-shaped call.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c.checkCall(call)
		return true
	})
}

func (c *checker) recordAssign(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 {
		if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			allBlank := true
			for _, l := range s.Lhs {
				if !isBlank(l) {
					allBlank = false
					break
				}
			}
			if allBlank {
				c.discard[call] = true
			} else if len(s.Lhs) > 1 && isBlank(s.Lhs[len(s.Lhs)-1]) && c.lastResultIsError(call) {
				c.errDiscard[call] = true
			}
		}
	}
	// Taint: w := bufio.NewWriter(conn) (also plain = assignment).
	for i, r := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		id, ok := s.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		call, ok := unparen(r).(*ast.CallExpr)
		if !ok || qualifiedName(c.pass, call.Fun) != "bufio.NewWriter" || len(call.Args) != 1 {
			continue
		}
		if c.connBacked(call.Args[0]) {
			if v, ok := c.pass.Info.Defs[id].(*types.Var); ok {
				c.taint[v] = true
			} else if v, ok := c.pass.Info.Uses[id].(*types.Var); ok {
				c.taint[v] = true
			}
		}
	}
}

func (c *checker) lastResultIsError(call *ast.CallExpr) bool {
	tv, ok := c.pass.Info.Types[call]
	if !ok {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok && tuple.Len() > 0 {
		return isErrorType(tuple.At(tuple.Len() - 1).Type())
	}
	return isErrorType(tv.Type)
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// A call to an error-returning method of the guarded writer: error
	// must be consumed, wherever the call is.
	if recv, name := c.writerMethodCall(call); recv != nil {
		if c.lastResultIsError(call) && (c.discard[call] || c.errDiscard[call]) {
			c.pass.Reportf(call.Pos(), "error from %s.%s is discarded; the guarded writer's error is how a dead client is detected", recv.Obj().Name(), name)
		}
		return
	}

	dest, what := c.writeDest(call)
	if dest == nil {
		return
	}
	if !c.connBacked(dest) {
		if !c.inWriter || !c.bufioOrConn(dest) {
			return
		}
		// Inside the guarded writer the wrapped stream's conn origin is
		// a field invariant the local taint pass cannot see; treat any
		// bufio.Writer/net.Conn write as a conn write.
	}
	if len(c.writers) > 0 && !c.inWriter {
		c.pass.Reportf(call.Pos(), "%s writes to a conn-backed destination, bypassing the guarded writer (%s)", what, c.writerNames())
		return
	}
	if c.discard[call] || c.errDiscard[call] {
		c.pass.Reportf(call.Pos(), "error from conn write %s is unchecked", what)
	}
}

// writerMethodCall reports whether call invokes a method on a value of a
// //deltanet:connwriter type, returning the receiver's named type.
func (c *checker) writerMethodCall(call *ast.CallExpr) (*types.Named, string) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	selection, ok := c.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil, ""
	}
	recv := selection.Recv()
	if p, ok := types.Unalias(recv).(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := types.Unalias(recv).(*types.Named)
	if !ok || !c.writers[named.Obj()] {
		return nil, ""
	}
	return named, sel.Sel.Name
}

// writeDest returns the destination expression of a write-shaped call,
// plus a printable description of the call.
func (c *checker) writeDest(call *ast.CallExpr) (ast.Expr, string) {
	if name := qualifiedName(c.pass, call.Fun); name != "" {
		if argIdx, ok := writeFuncs[name]; ok && len(call.Args) > argIdx {
			return call.Args[argIdx], name
		}
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !writeMethods[sel.Sel.Name] {
		return nil, ""
	}
	if _, ok := c.pass.Info.Selections[sel]; !ok {
		return nil, "" // package-qualified function, not a method
	}
	return sel.X, exprName(sel.X) + "." + sel.Sel.Name
}

// connBacked reports whether e is conn-backed: its static type
// implements net.Conn, or it is a local bufio.Writer tainted by wrapping
// a connection.
func (c *checker) connBacked(e ast.Expr) bool {
	if v := dnlint.SelectedVar(c.pass.Info, e); v != nil && c.taint[v] {
		return true
	}
	tv, ok := c.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if types.Implements(t, c.conn) {
		return true
	}
	if _, isPtr := types.Unalias(t).(*types.Pointer); !isPtr {
		if types.Implements(types.NewPointer(t), c.conn) {
			return true
		}
	}
	return false
}

// bufioOrConn reports whether e's type is *bufio.Writer or a net.Conn
// implementation (used only inside guarded-writer methods).
func (c *checker) bufioOrConn(e ast.Expr) bool {
	tv, ok := c.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := types.Unalias(tv.Type)
	if p, ok := t.(*types.Pointer); ok && dnlint.NamedType(p.Elem(), "bufio", "Writer") {
		return true
	}
	return types.Implements(t, c.conn)
}

func (c *checker) isWriterMethod(fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return false
	}
	fn, ok := c.pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && c.writers[named.Obj()]
}

func (c *checker) writerNames() string {
	names := make([]string, 0, len(c.writers))
	for tn := range c.writers {
		names = append(names, tn.Name())
	}
	if len(names) == 1 {
		return names[0]
	}
	return strings.Join(names, ", ")
}

// qualifiedName renders pkg.Func for a package-level function reference,
// or "" for anything else.
func qualifiedName(pass *dnlint.Pass, fun ast.Expr) string {
	sel, ok := unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isPkg := pass.Info.Uses[pkgID].(*types.PkgName); !isPkg {
		return ""
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// exprName renders a best-effort dotted name for an expression, for
// diagnostics only.
func exprName(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprName(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprName(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprName(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprName(e.X)
	}
	return "destination"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
