// Package clean is the lockorder analyzer's clean fixture: the shapes
// deltanet actually uses — nested increasing ranks, deferred unlocks,
// branch-unlock discipline, stripe loops, and callback closures that
// return while an outer frame holds a lock — must produce no
// diagnostics.
package clean

import "sync"

type registry struct {
	//deltanet:lockrank 10
	applyMu sync.Mutex

	//deltanet:lockrank 20
	regMu sync.RWMutex

	stripes [4]stripe

	//deltanet:lockrank 40
	eventMu sync.Mutex

	items []int
	seq   int
}

type stripe struct {
	//deltanet:lockrank 30
	mu sync.Mutex
	n  int
}

// apply nests the full hierarchy in declared order.
func (r *registry) apply(id int) {
	r.applyMu.Lock()
	defer r.applyMu.Unlock()
	r.regMu.RLock()
	n := len(r.items)
	r.regMu.RUnlock()
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		s.n += n
		s.mu.Unlock()
	}
	r.eventMu.Lock()
	r.seq++
	r.eventMu.Unlock()
}

// register unlocks on the early-exit branch before returning.
func (r *registry) register(v int) bool {
	r.regMu.Lock()
	if v < 0 {
		r.regMu.Unlock()
		return false
	}
	r.items = append(r.items, v)
	r.regMu.Unlock()
	return true
}

// forEach hands a callback a snapshot under the read lock; the callback
// literal returning early while regMu is held in the outer frame is
// fine — the literal did not acquire it.
func (r *registry) forEach(f func(int) bool) {
	r.regMu.RLock()
	defer r.regMu.RUnlock()
	for _, v := range r.items {
		stop := func() bool { return !f(v) }
		if stop() {
			return
		}
	}
}

// flusher runs in a goroutine with a fresh stack, so taking applyMu
// while the spawner holds eventMu is not an inversion.
func (r *registry) flusher(done chan struct{}) {
	r.eventMu.Lock()
	defer r.eventMu.Unlock()
	go func() {
		r.applyMu.Lock()
		r.seq++
		r.applyMu.Unlock()
		close(done)
	}()
}

// swap moves pointers, never lock values.
func (r *registry) swap(o *registry) *registry {
	if o != nil {
		return o
	}
	return r
}
