#!/usr/bin/env bash
# Replication smoke test: boot a journaling primary and two read
# replicas, drive churn through the primary, and gate on the replicas
# agreeing with the primary's verdicts with bounded (drained-to-zero)
# lag. One replica is killed mid-churn and restarted to exercise the
# reconnect/re-anchor path, and mutations against a replica must be
# refused.
set -euo pipefail
cd "$(dirname "$0")/.."

PRIMARY=127.0.0.1:16644
REPLICA1=127.0.0.1:16645
REPLICA2=127.0.0.1:16646
DIR=$(mktemp -d /tmp/dn-repl-smoke.XXXXXX)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/dnserve" ./cmd/dnserve

"$DIR/dnserve" -addr "$PRIMARY" -journal "$DIR/dn.j" &

# req <addr> <request...>: one request line over /dev/tcp, prints the
# first response line (protocol responses are one line for these verbs).
req() {
  local addr=$1; shift
  ( # subshell so a refused connect fails the call, and fds auto-close
    exec 3<>"/dev/tcp/${addr%:*}/${addr#*:}" || exit 1
    printf '%s\nquit\n' "$*" >&3
    timeout 10 head -n 1 <&3
  )
}

wait_up() { # wait_up <addr>
  for i in $(seq 1 50); do
    if req "$1" stats >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "server at $1 never came up" >&2; exit 1
}

stat_key() { # stat_key <addr> <key>  (prints the value, or nothing)
  req "$1" stats | tr ' ' '\n' | awk -F= -v k="$2" '$1==k {print $2}'
}

wait_caught_up() { # wait_caught_up <replica-addr>
  local want
  want=$(stat_key "$PRIMARY" upd)
  for i in $(seq 1 100); do
    local upd lag
    upd=$(stat_key "$1" upd || true)
    lag=$(stat_key "$1" lag || true)
    if [ "$upd" = "$want" ] && [ "${lag:-1}" = "0" ]; then return 0; fi
    sleep 0.2
  done
  echo "replica $1 never caught up (want upd=$want, got upd=${upd:-?} lag=${lag:-?})" >&2
  exit 1
}

agree() { # agree <request...>: primary and both replicas answer alike
  local want got
  want=$(req "$PRIMARY" "$@")
  for addr in "$REPLICA1" "$REPLICA2"; do
    got=$(req "$addr" "$@")
    if [ "$got" != "$want" ]; then
      echo "disagreement on '$*': primary '$want', $addr '$got'" >&2
      exit 1
    fi
  done
}

# verdicts_agree <spec...>: registering the invariant one-shot must
# yield the same holds/violated verdict everywhere. Unlike raw atom
# counts (which depend on split history and differ once a replica
# re-anchors on a canonical checkpoint), verdicts are semantic.
verdicts_agree() {
  local want got
  want=$(req "$PRIMARY" "W $*" | awk '{print $4}')
  [ -n "$want" ] || { echo "primary refused spec '$*'" >&2; exit 1; }
  for addr in "$REPLICA1" "$REPLICA2"; do
    got=$(req "$addr" "W $*" | awk '{print $4}')
    if [ "$got" != "$want" ]; then
      echo "verdict disagreement on '$*': primary '$want', $addr '$got'" >&2
      exit 1
    fi
  done
}

churn() { # churn <n>: n insert/remove pairs through the primary
  (
    exec 3<>"/dev/tcp/${PRIMARY%:*}/${PRIMARY#*:}" || exit 1
    for i in $(seq 1 "$1"); do
      printf 'I %d 0 0 %d %d 1\nR %d\n' $((100 + i % 50)) $((i * 10)) $((i * 10 + 5)) $((100 + i % 50))
    done >&3
    printf 'quit\n' >&3
    timeout 20 cat <&3 >/dev/null || true
  )
}

wait_up "$PRIMARY"
for cmd in 'node a' 'node b' 'node c' 'link 0 1' 'link 1 2' 'link 2 0' \
           'I 1 0 0 0 1000 10' 'I 2 1 1 0 500 10'; do
  resp=$(req "$PRIMARY" "$cmd")
  case $resp in ok*) ;; *) echo "primary refused '$cmd': $resp" >&2; exit 1;; esac
done

"$DIR/dnserve" -addr "$REPLICA1" -replica-of "$PRIMARY" &
"$DIR/dnserve" -addr "$REPLICA2" -replica-of "$PRIMARY" &
R2=$!
wait_up "$REPLICA1"; wait_up "$REPLICA2"

churn 100
wait_caught_up "$REPLICA1"; wait_caught_up "$REPLICA2"
# Journal-replayed replicas have byte-identical state: even
# representation-dependent answers (atom counts) must agree.
for q in 'reach a b' 'reach a c' 'reach b c' 'reach c a' 'whatif 0' 'whatif 1'; do
  agree $q
done
for spec in 'reach a b' 'reach a c' 'loopfree' 'blackholefree'; do
  verdicts_agree $spec
done

# A replica must refuse writes.
resp=$(req "$REPLICA1" 'I 9 0 0 0 10 1')
case $resp in
  'err read-only replica'*) ;;
  *) echo "replica accepted a mutation: $resp" >&2; exit 1;;
esac

# Kill replica 2 mid-churn, keep churning, restart it on the same
# address, and require it to catch back up and agree.
kill "$R2"; wait "$R2" 2>/dev/null || true
churn 100
"$DIR/dnserve" -addr "$REPLICA2" -replica-of "$PRIMARY" &
wait_up "$REPLICA2"
churn 50
wait_caught_up "$REPLICA1"; wait_caught_up "$REPLICA2"
# The restarted replica re-anchored on a fresh checkpoint, so only
# semantic agreement (verdicts) is required of it now.
for spec in 'reach a b' 'reach a c' 'reach b c' 'loopfree' 'blackholefree'; do
  verdicts_agree $spec
done

jrnl=$(stat_key "$PRIMARY" jrnl)
echo "replication smoke OK: journal end $jrnl bytes, replicas agree with lag=0"
