// Package monitor is Delta-net's incremental invariant monitor: callers
// register standing invariants (reachability, waypointing, isolation,
// loop freedom, black-hole freedom) and the monitor keeps each one's
// verdict current as rule updates stream through the engine.
//
// The whole point of Delta-net (paper §3.3) is that every rule update
// yields a delta-graph, so invariants should be re-checked from that
// delta rather than recomputed from scratch. The monitor realizes this
// for arbitrary standing queries with a sharded dependency index: each
// evaluation records the set of links it examined — refined by per-link
// atom-range sketches of which atoms on each link actually mattered —
// the index maps every link to the bitmap of invariants depending on it
// (with the sketches hanging off the same slots), and an update dirties
// exactly the invariants whose sketches intersect the delta's touched
// atoms on some changed link — work proportional to the atoms the change
// actually affects, not to how many invariants ever traversed the link
// (plus the structurally-global checks, which re-evaluate incrementally
// from the delta itself). Atoms born after an invariant's evaluation
// (split-minted or GC-recycled ids) conservatively dirty it, so the
// sketches stay sound under atom split/merge churn; SetLinkGranular
// restores pure link-level dirtiness as the ablation baseline.
// Re-evaluations fan out over per-worker queues (check.RunSharded), and
// verdict transitions are emitted as Violation/Cleared events to
// subscribers.
//
// Under heavy churn the monitor can additionally coalesce updates: with a
// burst configuration set (SetBurst), consecutive deltas are merged
// (core.Delta.Merge) and each dirty invariant is re-evaluated once per
// burst rather than once per update, trading event latency for
// throughput. See BurstConfig.
//
// Concurrency: all exported methods are safe to call from multiple
// goroutines, but the monitor only reads the network — the caller must
// guarantee the network is not mutated during a call (the Checker's
// single-writer discipline and the server's RWMutex both do).
// Registration and unregistration take striped and per-invariant locks
// only, so they do not stall a concurrent Apply's evaluation pass.
package monitor

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"deltanet/internal/bitset"
	"deltanet/internal/check"
	"deltanet/internal/core"
)

// ID identifies one registered invariant within a monitor. IDs are
// assigned in registration order and never reused.
type ID int64

// Status is an invariant's current verdict.
type Status uint8

const (
	// Holds means the invariant was satisfied at the last evaluation.
	Holds Status = iota
	// Violated means the invariant was falsified at the last evaluation.
	Violated
)

func (s Status) String() string {
	if s == Violated {
		return "violated"
	}
	return "holds"
}

// EventKind distinguishes the two verdict transitions.
type EventKind uint8

const (
	// Violation is the Holds -> Violated transition.
	Violation EventKind = iota
	// Cleared is the Violated -> Holds transition.
	Cleared
)

func (k EventKind) String() string {
	if k == Cleared {
		return "cleared"
	}
	return "violation"
}

// Event records one verdict transition. Seq increases monotonically
// across all events of a monitor, so subscribers can order and detect
// gaps. FirstUpdate and LastUpdate delimit the (inclusive) range of
// update sequence numbers whose coalesced delta produced the event: they
// are equal outside burst mode, and span the merged burst inside it.
type Event struct {
	Seq         uint64
	ID          ID
	Spec        Spec
	Kind        EventKind
	Detail      string
	FirstUpdate uint64
	LastUpdate  uint64
}

func (e Event) String() string {
	return fmt.Sprintf("event %d %s %s", e.ID, e.Kind, e.Spec)
}

// invariant pairs a registered spec with its cached monitor state.
type invariant struct {
	id   ID
	slot int // dense bitmap index; reused after final unregistration
	spec Spec
	key  string // canonical dedup key (specKey)

	// refs counts live registrations of this spec (guarded by m.regMu):
	// re-registering an identical spec returns the same invariant with
	// refs incremented, and only the final Unregister removes it.
	refs int

	// mu guards st and dead. Held during every evaluation of this
	// invariant, so Status and the dedup path in Register observe fully
	// evaluated state.
	//
	//deltanet:lockrank 20
	mu   sync.Mutex
	dead bool
	st   state
}

// Stats summarizes a monitor's work so far.
type Stats struct {
	// Registered is the current number of standing invariants (distinct;
	// refcounted re-registrations do not add).
	Registered int
	// Updates counts deltas consumed by Apply.
	Updates uint64
	// Evaluations counts invariant re-evaluations triggered by deltas
	// (registration-time and RecheckAll evaluations excluded).
	Evaluations uint64
	// Skips counts invariants left untouched by a delta because their
	// dependency set did not intersect the changed labels — the
	// incremental win.
	Skips uint64
	// RangeSkips counts the subset of skipped invariants that WOULD have
	// been dirtied at link granularity: their dependency set intersected
	// the changed links, but on every shared link the recorded atom-range
	// sketch was disjoint from the delta's touched atoms — the
	// atom-granular refinement's win over link-level tracking.
	RangeSkips uint64
	// Events counts verdict transitions emitted.
	Events uint64
	// Bursts counts evaluation passes that coalesced at least one delta,
	// and Coalesced the total deltas merged into them. Pending is the
	// number of deltas currently buffered awaiting a flush.
	Bursts    uint64
	Coalesced uint64
	Pending   int
	// LoopRescanAtoms counts atoms re-walked by LoopFree's batch-aware
	// clearing path: while violated, only previously looping atoms (plus
	// the delta's added-label atoms and any atoms born since) are
	// re-scanned instead of every atom in the network. Comparing this
	// against Updates × NumAtoms shows the saved work.
	LoopRescanAtoms uint64
	// IndexShardBits is the dependency index's per-shard bit population:
	// for each of the index's link shards, the total number of
	// (link, invariant-slot) dependency bits it holds. A shard whose
	// population dwarfs the others means one hot link's bitmap dominates
	// dirty-marking cost — the signal that the link is a candidate for
	// splitting by atom range.
	IndexShardBits []int
}

// regStripes is the number of registration stripes. ID lookups (Status,
// Unregister, Invariants) lock only their stripe, so queries from many
// connections do not serialize on one registration mutex.
const regStripes = 16

type regStripe struct {
	//deltanet:lockrank 40
	mu   sync.RWMutex
	invs map[ID]*invariant
}

// Monitor maintains standing invariants over one network.
//
// Lock ordering (outer first): applyMu → inv.mu → regMu → index locks →
// eventMu. Stripe mutexes are acquired under inv.mu or on their own,
// never the reverse; inv.mu is never acquired while holding regMu, a
// stripe mutex, or eventMu.
type Monitor struct {
	net     *core.Network
	workers int

	// applyMu serializes evaluation passes (Apply, Flush, RecheckAll) and
	// guards the burst state below it.
	//
	//deltanet:lockrank 10
	applyMu        sync.Mutex
	burst          BurstConfig
	updSeq         uint64
	pending        core.Delta
	pendingChanged *bitset.Set
	pendingCount   int
	pendingFirst   uint64 // update seq of the first coalesced delta
	pendingSince   time.Time

	// Per-pass scratch, reused across evaluation passes under applyMu so
	// steady-state churn allocates nothing for dirty marking (at 10⁵
	// slots a fresh dirty bitmap alone is ~12KB per update).
	scratchChanged *bitset.Set
	scratchDirty   *bitset.Set
	scratchCand    *bitset.Set
	scratchRanges  core.DeltaRanges
	scratchOuts    []evalOutcome

	// evalScratch holds one check.Scratch per evaluation worker, reused
	// across passes under applyMu: RunSharded gives each worker a stable
	// identity, so worker w always evaluates with evalScratch[w] and the
	// epoch-stamped arrays stay warm — and race-clean — across the
	// monitor's lifetime. (Registration-time evaluations run outside
	// applyMu and draw from the check package's pool instead.)
	evalScratch []*check.Scratch

	// regMu guards the structural registration state: the dedup map, the
	// slot table, and the slot classification bitmaps. It is never held
	// during an evaluation.
	//
	//deltanet:lockrank 30
	regMu       sync.RWMutex
	byKey       map[string]*invariant
	slots       []*invariant // slot -> invariant; nil = free
	freeSlots   *bitset.Set
	depSlots    *bitset.Set // slots whose last evaluation recorded a deps set
	globalSlots *bitset.Set // slots with structural (delta-driven) dirtiness

	stripes [regStripes]regStripe
	nextID  atomic.Int64
	regd    atomic.Int64 // current number of registered invariants

	index depIndex

	// flatScan, when set, bypasses the dependency index and marks dirty
	// invariants with the pre-sharding O(registered) scan — the ablation
	// baseline the benchmarks compare the index against.
	flatScan atomic.Bool

	// linkGranular, when set, ignores the per-link atom-range sketches
	// and dirties at link granularity (any delta on a dep link
	// re-evaluates) — the pre-atom-granularity behavior, kept as the
	// ablation baseline.
	linkGranular atomic.Bool

	// eventMu guards the sequence counter, the subscriber set, and the
	// event backlog ring (backlog.go).
	//
	//deltanet:lockrank 70
	eventMu     sync.Mutex
	seq         uint64
	subs        map[*Subscription]struct{}
	backlog     []Event
	backlogCap  int
	backlogHead int
	backlogLen  int

	evals, skips, rangeSkips, events, bursts, coalesced atomic.Uint64

	// loopRescans counts atoms re-walked by LoopFree's violated-state
	// candidate re-scan (spec.go) — the work the batch-aware clearing
	// path actually did, to compare against the full-scan alternative.
	loopRescans atomic.Uint64

	// traceSink, when non-nil, receives an ApplyTrace after each
	// delta-driven evaluation pass (trace.go). Guarded by applyMu.
	traceSink func(ApplyTrace)
}

// New returns a monitor over the network. workers bounds the evaluation
// fan-out; ≤ 0 selects GOMAXPROCS.
func New(net *core.Network, workers int) *Monitor {
	m := &Monitor{
		net:            net,
		workers:        workers,
		byKey:          map[string]*invariant{},
		freeSlots:      bitset.New(0),
		depSlots:       bitset.New(0),
		globalSlots:    bitset.New(0),
		pendingChanged: bitset.New(0),
		scratchChanged: bitset.New(0),
		scratchDirty:   bitset.New(0),
		scratchCand:    bitset.New(0),
		subs:           map[*Subscription]struct{}{},
		backlogCap:     DefaultBacklog,
	}
	for i := range m.stripes {
		m.stripes[i].invs = map[ID]*invariant{}
	}
	return m
}

func (m *Monitor) stripe(id ID) *regStripe { return &m.stripes[uint64(id)%regStripes] }

// SetFlatScan toggles the pre-sharding dirty-marking path (a full scan
// calling every invariant's dirty test) in place of the dependency
// index. It exists as the ablation baseline for benchmarks and
// equivalence tests; production callers should leave it off.
func (m *Monitor) SetFlatScan(on bool) { m.flatScan.Store(on) }

// SetLinkGranular toggles link-granular dirtiness: the dependency index
// is still used, but the per-link atom-range sketches are ignored, so
// any delta on a dep link re-evaluates the invariant even when it only
// moves atoms the verdict never looked at — the pre-atom-granularity
// behavior. It exists as the ablation baseline for benchmarks and
// equivalence tests; production callers should leave it off.
func (m *Monitor) SetLinkGranular(on bool) { m.linkGranular.Store(on) }

// Register adds a standing invariant, evaluates it immediately, and
// returns its id and initial status. Registration emits no event: events
// are transitions, and a fresh invariant has nothing to transition from.
//
// Registrations are refcounted by spec: registering a spec identical to a
// live one returns the existing id (and its current status) and adds a
// reference, so flapping clients re-registering the same watch cannot
// grow the monitor without bound. Each Register must be balanced by one
// Unregister.
func (m *Monitor) Register(s Spec) (ID, Status) {
	k := specKey(s)
	m.regMu.Lock()
	if inv := m.byKey[k]; inv != nil {
		inv.refs++
		m.regMu.Unlock()
		// Wait out a concurrent initial evaluation, then read the verdict.
		inv.mu.Lock()
		st := inv.st.status
		inv.mu.Unlock()
		return inv.id, st
	}
	inv := &invariant{
		id:   ID(m.nextID.Add(1) - 1),
		slot: m.allocSlotLocked(),
		spec: s,
		key:  k,
		refs: 1,
	}
	// Taking inv.mu under regMu inverts the documented order, but inv is
	// not yet published: no other goroutine can hold or wait on its mutex,
	// so the acquisition cannot contend, let alone deadlock.
	//deltanet:nolint lockorder inv is unpublished; the lock is uncontended by construction
	inv.mu.Lock()
	m.byKey[k] = inv
	m.slots[inv.slot] = inv
	m.regMu.Unlock()
	m.regd.Add(1)

	str := m.stripe(inv.id)
	str.mu.Lock()
	str.invs[inv.id] = inv
	str.mu.Unlock()

	// The expensive part — the initial evaluation — runs under inv.mu
	// only, so it stalls neither Apply's evaluation pass nor other
	// registrations.
	sc := check.GetScratch()
	v := inv.spec.eval(m.net, nil, &inv.st, sc)
	check.PutScratch(sc)
	inv.st.status = statusOf(v)
	inv.st.detail = v.detail
	numLinks := m.net.Graph().NumLinks()
	inv.st.linksAtEval = numLinks

	m.regMu.Lock()
	m.index.growTo(numLinks, m.depSlots)
	if inv.st.deps != nil {
		m.depSlots.Add(inv.slot)
	} else {
		m.globalSlots.Add(inv.slot)
	}
	m.regMu.Unlock()
	if inv.st.deps != nil {
		m.index.insert(inv.slot, inv.st.deps, inv.st.ranges, inv.st.atomSeq)
	}
	st := inv.st.status
	inv.mu.Unlock()
	return inv.id, st
}

// allocSlotLocked returns a free slot number. Caller holds regMu.
func (m *Monitor) allocSlotLocked() int {
	if s := m.freeSlots.NextSet(0); s >= 0 {
		m.freeSlots.Remove(s)
		return s
	}
	m.slots = append(m.slots, nil)
	return len(m.slots) - 1
}

// Unregister releases one reference to an invariant; the registration is
// removed when the last reference goes. It reports whether the id was
// registered.
func (m *Monitor) Unregister(id ID) bool {
	str := m.stripe(id)
	str.mu.RLock()
	inv := str.invs[id]
	str.mu.RUnlock()
	if inv == nil {
		return false
	}
	inv.mu.Lock()
	defer inv.mu.Unlock()
	m.regMu.Lock()
	if inv.dead {
		// Lost a race against the final Unregister of the same id.
		m.regMu.Unlock()
		return false
	}
	inv.refs--
	if inv.refs > 0 {
		m.regMu.Unlock()
		return true
	}
	inv.dead = true
	delete(m.byKey, inv.key)
	m.slots[inv.slot] = nil
	m.depSlots.Remove(inv.slot)
	m.globalSlots.Remove(inv.slot)
	// Erase the slot's index bits BEFORE freeSlots republishes the slot
	// number: a concurrent Register reusing it must not have its fresh
	// bits wiped by this removal. Safe against a concurrent evaluation
	// pass: evaluations hold inv.mu, so none is in flight on this
	// invariant, and later ones see dead and skip.
	m.index.removeSlot(inv.slot, inv.st.deps, inv.st.linksAtEval)
	m.freeSlots.Add(inv.slot)
	m.regMu.Unlock()
	m.regd.Add(-1)
	str.mu.Lock()
	delete(str.invs, id)
	str.mu.Unlock()
	return true
}

// Status returns an invariant's cached verdict and its human-readable
// detail. In burst mode the verdict is as of the last flush.
func (m *Monitor) Status(id ID) (Status, string, bool) {
	str := m.stripe(id)
	str.mu.RLock()
	inv := str.invs[id]
	str.mu.RUnlock()
	if inv == nil {
		return 0, "", false
	}
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if inv.dead {
		return 0, "", false
	}
	return inv.st.status, inv.st.detail, true
}

// InvariantInfo describes one registered invariant and its cached
// verdict.
type InvariantInfo struct {
	ID     ID
	Spec   Spec
	Status Status
	Detail string
}

// Invariants lists the registered invariants in registration order with
// their cached verdicts — the snapshot a fresh subscriber pairs with the
// event stream.
func (m *Monitor) Invariants() []InvariantInfo {
	invs := m.sortedByID()
	out := make([]InvariantInfo, 0, len(invs))
	for _, inv := range invs {
		inv.mu.Lock()
		if !inv.dead {
			out = append(out, InvariantInfo{ID: inv.id, Spec: inv.spec, Status: inv.st.status, Detail: inv.st.detail})
		}
		inv.mu.Unlock()
	}
	return out
}

// NumRegistered returns the current number of standing invariants.
func (m *Monitor) NumRegistered() int { return int(m.regd.Load()) }

// LinkDepsInto unions into dst the slots of invariants whose last
// evaluation depended on link. It is the coarse "would this op dirty an
// invariant someone else already dirtied" signal the ingest coalescer's
// adaptive flush trigger keys on; links the index does not cover yet
// contribute nothing.
func (m *Monitor) LinkDepsInto(link int, dst *bitset.Set) { m.index.linkDeps(link, dst) }

// sortedByID gathers every registered invariant from the stripes, sorted
// by id — which is registration order, since ids are assigned
// monotonically and never reused.
func (m *Monitor) sortedByID() []*invariant {
	var all []*invariant
	for i := range m.stripes {
		str := &m.stripes[i]
		str.mu.RLock()
		for _, inv := range str.invs {
			all = append(all, inv)
		}
		str.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	return all
}

// Stats returns the monitor's work counters.
func (m *Monitor) Stats() Stats {
	m.applyMu.Lock()
	upd, pending := m.updSeq, m.pendingCount
	m.applyMu.Unlock()
	return Stats{
		Registered:      m.NumRegistered(),
		Updates:         upd,
		Evaluations:     m.evals.Load(),
		Skips:           m.skips.Load(),
		RangeSkips:      m.rangeSkips.Load(),
		Events:          m.events.Load(),
		Bursts:          m.bursts.Load(),
		Coalesced:       m.coalesced.Load(),
		Pending:         pending,
		LoopRescanAtoms: m.loopRescans.Load(),
		IndexShardBits:  m.index.shardPops(),
	}
}

// Apply consumes one update's delta-graph: invariants whose dependency
// sets intersect the changed labels are re-evaluated (fanned out over the
// per-worker queues) and verdict transitions are returned in registration
// order and published to subscribers. Call it after every InsertRule,
// RemoveRule, or ApplyBatch, before the delta is reused.
//
// In burst mode (SetBurst) the delta is usually only merged into the
// pending burst and Apply returns nil; when the merge trips the flush
// trigger, the coalesced delta is evaluated and those events returned.
func (m *Monitor) Apply(d *core.Delta) []Event {
	return m.ApplyWithLoops(d, nil, false)
}

// ApplyWithLoops is Apply for callers that already ran the per-update
// delta loop check: when loopsKnown is true, loops is taken as that
// check's authoritative result for d (it may be empty) and a registered
// LoopFree invariant reuses it instead of re-walking the delta. In burst
// mode the hint is dropped — a per-update result is stale for a merged
// burst — and the flush re-derives loops from the coalesced delta.
func (m *Monitor) ApplyWithLoops(d *core.Delta, loops []check.Loop, loopsKnown bool) []Event {
	if d == nil || d.Empty() {
		return nil
	}
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	m.updSeq++
	if m.burst.enabled() {
		m.coalesceLocked(d)
		if !m.shouldFlushLocked() {
			return nil
		}
		return m.flushLocked()
	}
	if m.pendingCount > 0 {
		// Bursting was disabled with deltas still buffered and no Flush in
		// between: absorb them, or the incremental evaluations below would
		// run against a delta that excludes the buffered changes.
		m.coalesceLocked(d)
		return m.flushLocked()
	}
	if m.regd.Load() == 0 {
		return nil
	}
	m.scratchChanged.Clear()
	changed := changedLinks(d, m.scratchChanged)
	tr := m.beginTraceLocked(m.updSeq, m.updSeq, 1, d, changed)
	cands, rangeSkipped := m.collectDirty(changed, d)
	m.traceDirtyLocked(tr, len(cands), rangeSkipped)
	events := m.evaluatePass(cands, &applyCtx{d: d, loops: loops, loopsKnown: loopsKnown, rescans: &m.loopRescans}, m.updSeq, m.updSeq, tr)
	m.finishTraceLocked(tr)
	return events
}

// beginTraceLocked starts an ApplyTrace for a delta-driven pass, or
// returns nil when no sink is installed (the pass then takes no
// timestamps at all). Caller holds applyMu.
func (m *Monitor) beginTraceLocked(first, last uint64, coalesced int, d *core.Delta, changed *bitset.Set) *ApplyTrace {
	if m.traceSink == nil {
		return nil
	}
	tr := &ApplyTrace{
		FirstUpdate: first,
		LastUpdate:  last,
		Coalesced:   coalesced,
		Links:       changed.Len(),
		Added:       len(d.Added),
		Removed:     len(d.Removed),
	}
	tr.DirtyNs = time.Now().UnixNano()
	return tr
}

// traceDirtyLocked closes the dirty-marking stage: the stashed start
// timestamp in DirtyNs becomes the stage duration, and the eval stage
// clock starts. Caller holds applyMu.
func (m *Monitor) traceDirtyLocked(tr *ApplyTrace, dirtied, rangeSkipped int) {
	if tr == nil {
		return
	}
	now := time.Now().UnixNano()
	tr.DirtyNs = now - tr.DirtyNs
	tr.Dirtied = dirtied
	tr.RangeSkipped = rangeSkipped
	tr.EvalNs = now
}

// finishTraceLocked hands the completed trace to the sink. Caller holds
// applyMu.
func (m *Monitor) finishTraceLocked(tr *ApplyTrace) {
	if tr == nil {
		return
	}
	m.traceSink(*tr)
}

// changedLinks accumulates into dst (allocating if nil) the set of links
// with label changes in d.
func changedLinks(d *core.Delta, dst *bitset.Set) *bitset.Set {
	if dst == nil {
		dst = bitset.New(0)
	}
	for _, la := range d.Added {
		dst.Add(int(la.Link))
	}
	for _, la := range d.Removed {
		dst.Add(int(la.Link))
	}
	return dst
}

// collectDirty returns the invariants an update with the given changed
// links must re-evaluate, sorted by id (= registration order), plus the
// number of invariants the atom-range refinement spared on this pass.
// Caller holds applyMu.
func (m *Monitor) collectDirty(changed *bitset.Set, d *core.Delta) ([]*invariant, int) {
	if m.flatScan.Load() {
		return m.collectDirtyFlat(changed, d), 0
	}
	numLinks := m.net.Graph().NumLinks()
	if int(m.index.upTo.Load()) < numLinks {
		m.regMu.RLock()
		seed := m.depSlots.Clone()
		m.regMu.RUnlock()
		m.index.growTo(numLinks, seed)
	}

	// Reused across passes (caller holds applyMu); the index bitmaps are
	// already slot-capacity words, so the first union sizes it.
	m.scratchDirty.Clear()
	dirty := m.scratchDirty
	rangeSkipped := 0
	if m.linkGranular.Load() || d == nil {
		m.index.collect(changed, dirty)
	} else {
		// Atom granularity: a dep-tracked invariant is dirtied only when
		// the delta's touched atoms intersect its recorded sketch on some
		// shared link (index.collectGranular documents the conservative
		// escapes). The candidate set is what link granularity would have
		// dirtied; the difference is the refinement's skip count.
		m.scratchRanges.Build(m.net, d)
		m.scratchCand.Clear()
		m.index.collectGranular(changed, &m.scratchRanges, dirty, m.scratchCand)
		if skipped := m.scratchCand.Len() - dirty.Len(); skipped > 0 {
			m.rangeSkips.Add(uint64(skipped))
			rangeSkipped = skipped
		}
	}

	m.regMu.RLock()
	cands := make([]*invariant, 0, dirty.Len()+m.globalSlots.Len())
	dirty.ForEach(func(s int) bool {
		if inv := m.slots[s]; inv != nil {
			cands = append(cands, inv)
		}
		return true
	})
	var globals []*invariant
	m.globalSlots.ForEach(func(s int) bool {
		if inv := m.slots[s]; inv != nil {
			globals = append(globals, inv)
		}
		return true
	})
	m.regMu.RUnlock()

	// Global invariants decide dirtiness structurally from the delta.
	for _, inv := range globals {
		inv.mu.Lock()
		if !inv.dead && inv.spec.dirty(&inv.st, d, changed) {
			cands = append(cands, inv)
		}
		inv.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })
	return cands, rangeSkipped
}

// collectDirtyFlat is the pre-sharding baseline: every registered
// invariant's dirty test runs against the changed set. Filtering the
// already-sorted gather preserves registration order.
func (m *Monitor) collectDirtyFlat(changed *bitset.Set, d *core.Delta) []*invariant {
	var cands []*invariant
	for _, inv := range m.sortedByID() {
		inv.mu.Lock()
		if !inv.dead && inv.spec.dirty(&inv.st, d, changed) {
			cands = append(cands, inv)
		}
		inv.mu.Unlock()
	}
	return cands
}

// RecheckAll re-evaluates every registered invariant from scratch,
// ignoring dependency sets — the audit path, and the naive baseline the
// benchmarks compare Apply against. Transitions are returned and
// published exactly as for Apply. A pending burst is absorbed: the full
// re-evaluation covers everything the buffered deltas could have dirtied.
func (m *Monitor) RecheckAll() []Event {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	first := m.updSeq
	if m.pendingCount > 0 {
		first = m.pendingFirst
		m.bursts.Add(1)
		m.resetPendingLocked()
	}
	return m.evaluatePass(m.sortedByID(), nil, first, m.updSeq, nil)
}

// evalOutcome is one invariant's result within an evaluation pass; the
// backing slice is pass-scratch reused under applyMu.
type evalOutcome struct {
	evaluated bool
	was, now  Status
	detail    string
}

// evaluatePass re-evaluates cands (sorted by id) over per-worker queues,
// re-indexes their dependency sets, and emits verdict transitions stamped
// with the update range [updFirst, updLast]. tr, when non-nil, receives
// the pass's skip/eval/event counts and the eval/publish stage times.
// Caller holds applyMu.
func (m *Monitor) evaluatePass(cands []*invariant, ctx *applyCtx, updFirst, updLast uint64, tr *ApplyTrace) []Event {
	live := int(m.regd.Load())
	if len(cands) < live {
		m.skips.Add(uint64(live - len(cands)))
		if tr != nil {
			tr.Skipped = live - len(cands)
		}
	}
	if len(cands) == 0 {
		if tr != nil {
			tr.EvalNs = 0
		}
		return nil
	}
	numLinks := m.net.Graph().NumLinks()
	if cap(m.scratchOuts) < len(cands) {
		m.scratchOuts = make([]evalOutcome, len(cands))
	}
	outs := m.scratchOuts[:len(cands)]
	for i := range outs {
		outs[i] = evalOutcome{}
	}
	// Resolve the worker count the same way RunSharded will, so every
	// worker index maps to a dedicated, warmed scratch.
	nw := m.workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > len(cands) {
		nw = len(cands)
	}
	for len(m.evalScratch) < nw {
		m.evalScratch = append(m.evalScratch, check.NewScratch())
	}
	var evaluated atomic.Uint64
	check.RunSharded(nw, len(cands), func(w, i int) {
		inv := cands[i]
		inv.mu.Lock()
		defer inv.mu.Unlock()
		if inv.dead {
			return
		}
		oldDeps, oldUpTo := inv.st.deps, inv.st.linksAtEval
		oldRanges, oldAtomSeq := inv.st.ranges, inv.st.atomSeq
		was := inv.st.status
		v := inv.spec.eval(m.net, ctx, &inv.st, m.evalScratch[w])
		inv.st.status = statusOf(v)
		inv.st.detail = v.detail
		inv.st.linksAtEval = numLinks
		// Re-index under inv.mu so a racing Unregister cannot interleave
		// its bit erasure with ours.
		m.index.update(inv.slot, oldDeps, oldUpTo, oldRanges, oldAtomSeq,
			inv.st.deps, inv.st.ranges, inv.st.atomSeq)
		outs[i] = evalOutcome{evaluated: true, was: was, now: inv.st.status, detail: v.detail}
		evaluated.Add(1)
	})
	if ctx != nil {
		m.evals.Add(evaluated.Load())
	}
	if tr != nil {
		now := time.Now().UnixNano()
		tr.EvalNs = now - tr.EvalNs
		tr.Evaluated = int(evaluated.Load())
		tr.PublishNs = now
	}

	var events []Event
	m.eventMu.Lock()
	for i, inv := range cands {
		o := outs[i]
		if !o.evaluated || o.now == o.was {
			continue
		}
		kind := Cleared
		if o.now == Violated {
			kind = Violation
		}
		m.seq++
		events = append(events, Event{
			Seq:         m.seq,
			ID:          inv.id,
			Spec:        inv.spec,
			Kind:        kind,
			Detail:      o.detail,
			FirstUpdate: updFirst,
			LastUpdate:  updLast,
		})
	}
	m.publishLocked(events)
	m.eventMu.Unlock()
	if tr != nil {
		tr.PublishNs = time.Now().UnixNano() - tr.PublishNs
		tr.Events = len(events)
	}
	return events
}

func statusOf(v verdict) Status {
	if v.violated {
		return Violated
	}
	return Holds
}

// Subscription delivers a monitor's events to one consumer. Receive from
// C; when the sender outpaces the consumer, events are dropped rather
// than blocking the update path, and Dropped counts them.
type Subscription struct {
	// C carries the events. It is closed by Cancel.
	C <-chan Event

	m       *Monitor
	ch      chan Event
	dropped atomic.Uint64
}

// Subscribe registers an event consumer with the given channel buffer
// (≤ 0 selects a default of 64).
func (m *Monitor) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 64
	}
	s := &Subscription{m: m, ch: make(chan Event, buf)}
	s.C = s.ch
	m.eventMu.Lock()
	m.subs[s] = struct{}{}
	m.eventMu.Unlock()
	return s
}

// Cancel removes the subscription and closes C. It is idempotent.
func (s *Subscription) Cancel() {
	s.m.eventMu.Lock()
	defer s.m.eventMu.Unlock()
	if _, ok := s.m.subs[s]; ok {
		delete(s.m.subs, s)
		close(s.ch)
	}
}

// Dropped returns the number of events lost to a full buffer.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// publishLocked fans events out to subscribers without blocking — the
// update path must never wait on a slow consumer — and retains each
// event in the backlog ring so droppers and reconnectors can replay the
// suffix they missed (EventsSince). Caller holds eventMu, which also
// serializes against Cancel's close.
func (m *Monitor) publishLocked(events []Event) {
	m.events.Add(uint64(len(events)))
	for _, ev := range events {
		m.backlogAppendLocked(ev)
		for sub := range m.subs {
			select {
			case sub.ch <- ev:
			default:
				sub.dropped.Add(1)
			}
		}
	}
}
