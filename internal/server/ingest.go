package server

// This file is the high-rate ingestion front end: the binary batch
// protocol (internal/binproto) feeding a bounded lock-free MPSC ring
// (internal/ingest) drained by a single coalescer goroutine.
//
// The line protocol pays for its simplicity on the hot path: every
// update is text parsed inside the write lock, and every B batch is a
// full request-response round trip. The binary path restructures all
// three costs. A connection upgrades with "dnbin 1" and then streams
// length-prefixed frames of packed ops; the connection goroutine
// decodes and topology-validates them OUTSIDE the engine lock and
// pushes finished core.BatchOps into the ring, so many connections
// decode in parallel while the engine applies. The coalescer pops runs
// of ops and applies them as one ApplyBatch — one loop check, one
// journal record, one monitor pass per run instead of per op — sizing
// runs adaptively: when the next op's dirty-invariant footprint
// (monitor.LinkDepsInto) is disjoint from the batch's accumulated
// footprint, the batch flushes early so each evaluation fan-out stays
// tight instead of dirtying the union of two unrelated regions.
//
// Backpressure is explicit and memory stays bounded: the ring has fixed
// capacity, a connection that finds it full tells its client once per
// frame with a "busy depth=<n>" line and then blocks in Push, and sync
// frames give clients a quiesce point ("ok sync <token> applied=<n>"
// once everything framed before the sync has been applied).

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deltanet/internal/binproto"
	"deltanet/internal/bitset"
	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/ingest"
	"deltanet/internal/netgraph"
)

const (
	// defaultIngestRing is the ring capacity when WithIngestRing is not
	// given: deep enough to ride out an apply pause at high rates, small
	// enough that worst-case buffered memory stays a few hundred KB.
	defaultIngestRing = 4096

	// maxIngestBatch bounds one coalesced ApplyBatch so a firehose
	// cannot grow unbounded batches (and their journal records).
	// Measured on the BGP flap workload, throughput is flat past this
	// point — ApplyBatch's per-atom dedup has already saturated.
	maxIngestBatch = 1024
)

// ingestState is the Server's binary-ingest half: the ring between
// connection decoders and the coalescer, the applied-count barrier sync
// frames wait on, and the counters the stats line and metrics export.
type ingestState struct {
	capacity int // WithIngestRing; 0 means defaultIngestRing

	once sync.Once
	ring atomic.Pointer[ingest.Ring] // non-nil once started (atomic: scraped concurrently)

	// mu guards applied/exited for the sync-frame barrier. It is a
	// leaf: nothing is acquired while holding it, and it is never held
	// across a ring operation or an engine apply.
	//
	//deltanet:lockrank 25
	mu      sync.Mutex
	cond    *sync.Cond
	applied uint64 // ring entries the coalescer has consumed and applied (or rejected)
	exited  bool   // coalescer gone; barriers must stop waiting

	connSeq  atomic.Uint32 // binary connection tags (ring diagnostics)
	frames   atomic.Uint64 // binary frames decoded
	ops      atomic.Uint64 // ops accepted into the ring
	busy     atomic.Uint64 // busy lines written (ring-full events)
	batches  atomic.Uint64 // coalesced applies
	adaptive atomic.Uint64 // batches cut early by the disjoint-deps trigger
	rejected atomic.Uint64 // ops dropped by per-op fallback (bad ids, duplicates)
}

// startIngest lazily starts the ring and its coalescer on the first
// binary handshake or feed push, so servers that never see binary
// ingest never pay for the goroutine.
func (s *Server) startIngest() {
	st := &s.ing
	st.once.Do(func() {
		capacity := st.capacity
		if capacity <= 0 {
			capacity = defaultIngestRing
		}
		r := ingest.New(capacity)
		st.cond = sync.NewCond(&st.mu)
		st.ring.Store(r)
		s.wg.Add(2)
		go func() {
			// Closing the ring is what terminates the coalescer: queued
			// entries drain, then Pop reports closure. Producers racing
			// shutdown get Push=false and their connections are being
			// torn down anyway (their clients hold no sync ack for the
			// lost tail).
			defer s.wg.Done()
			<-s.closed
			r.Close()
		}()
		go func() {
			defer s.wg.Done()
			s.coalesce(r)
		}()
	})
}

// serveBinary owns a connection after its "dnbin" handshake line. A
// non-empty return is a refusal response and the line loop continues; ""
// means the connection was consumed by the binary loop (or died).
func (s *Server) serveBinary(fields []string, lr *lineReader, cw *connWriter) string {
	if len(fields) != 2 || fields[1] != strconv.Itoa(binproto.Version) {
		return fmt.Sprintf("err usage: dnbin %d", binproto.Version)
	}
	if s.replicaOf != "" {
		return errReadOnly
	}
	s.startIngest()
	st := &s.ing
	ring := st.ring.Load()
	if err := cw.writeLine(fmt.Sprintf("ok dnbin %d", binproto.Version)); err != nil {
		return ""
	}
	connID := st.connSeq.Add(1)
	// The frame decoder reads the lineReader's underlying buffered
	// reader, so frames the client pipelined behind the handshake line
	// are already waiting for it.
	fr := binproto.NewReader(lr.br)
	for {
		frame, err := fr.Read()
		if err != nil {
			if err != io.EOF {
				s.scanErrs.Add(1)
				werr := cw.writeLine("err binary stream: " + err.Error() + " (closing connection)")
				_ = werr // stream is unrecoverable either way; the close is the remedy
			}
			return ""
		}
		st.frames.Add(1)
		if frame.Kind == binproto.KindSync {
			// The global push ticket covers everything this connection
			// framed before the sync (its own pushes are all ≤ it).
			ticket := ring.Pushed()
			if err := cw.writeLine(fmt.Sprintf("ok sync %d applied=%d", frame.Token, s.waitApplied(ticket))); err != nil {
				return ""
			}
			continue
		}
		if msg := s.validateOps(frame.Ops); msg != "" {
			// Drop the whole frame: enqueueing a valid prefix would
			// desync the client's idea of what a later sync covers.
			if err := cw.writeLine("err " + msg); err != nil {
				return ""
			}
			continue
		}
		warned := false
		for i := range frame.Ops {
			e := ingest.Entry{Op: frame.Ops[i], Conn: connID}
			if !warned {
				if ring.TryPush(e) {
					continue
				}
				// Ring full. Tell the client once per frame, then block:
				// the explicit busy line plus the bounded ring is the
				// backpressure story — nothing buffers beyond capacity.
				warned = true
				st.busy.Add(1)
				if err := cw.writeLine(fmt.Sprintf("busy depth=%d", ring.Depth())); err != nil {
					return ""
				}
			}
			if !ring.Push(e) {
				return "" // ring closed: server shutting down
			}
		}
		st.ops.Add(uint64(len(frame.Ops)))
	}
}

// validateOps checks every op's topology references under one read lock
// — the only engine-lock touch a frame costs before apply. "" admits
// the frame. Removals pass here (they name rules, not topology); a bad
// rule id surfaces at apply and is dropped by the per-op fallback.
func (s *Server) validateOps(ops []core.BatchOp) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := range ops {
		op := &ops[i]
		if !op.Insert {
			continue
		}
		if !s.validNode(int(op.Rule.Source)) {
			return fmt.Sprintf("frame op %d: unknown node id", i)
		}
		if op.Rule.Link != -1 && int(op.Rule.Link) >= s.graph.NumLinks() {
			return fmt.Sprintf("frame op %d: unknown link id", i)
		}
	}
	return ""
}

// waitApplied blocks until the coalescer has consumed at least ticket
// ring entries (or exited), returning the applied count.
func (s *Server) waitApplied(ticket uint64) uint64 {
	st := &s.ing
	st.mu.Lock()
	defer st.mu.Unlock()
	for st.applied < ticket && !st.exited {
		st.cond.Wait()
	}
	return st.applied
}

// IngestOps queues decoded ops through the same ring path the binary
// protocol uses — the in-process entrance for dnserve's -feed replay
// sources and for benchmarks. Ops are topology-validated first (the
// whole slice is refused on the first bad reference); the call blocks
// under backpressure exactly like a connection and reports false when
// the slice was refused or the server is closing.
func (s *Server) IngestOps(ops []core.BatchOp) bool {
	if s.replicaOf != "" {
		return false
	}
	if msg := s.validateOps(ops); msg != "" {
		return false
	}
	s.startIngest()
	st := &s.ing
	ring := st.ring.Load()
	for i := range ops {
		if !ring.Push(ingest.Entry{Op: ops[i]}) {
			return false
		}
	}
	st.ops.Add(uint64(len(ops)))
	return true
}

// IngestBarrier blocks until every op queued before the call has been
// applied — a feed's quiesce point — returning the total applied count.
func (s *Server) IngestBarrier() uint64 {
	s.startIngest()
	return s.waitApplied(s.ing.ring.Load().Pushed())
}

// coalesce is the ring's single consumer: it blocks for the next op,
// drains whatever else is immediately available into one batch (up to
// maxIngestBatch, or less when the adaptive trigger fires), and applies
// the batch in one engine pass. It exits when the ring is closed and
// drained.
func (s *Server) coalesce(ring *ingest.Ring) {
	st := &s.ing
	defer func() {
		st.mu.Lock()
		st.exited = true
		st.cond.Broadcast()
		st.mu.Unlock()
	}()
	batch := make([]core.BatchOp, 0, maxIngestBatch)
	var batchDeps, opDeps bitset.Set
	var pending ingest.Entry
	havePending := false
	for {
		var e ingest.Entry
		if havePending {
			e, havePending = pending, false
		} else {
			var ok bool
			if e, ok = ring.Pop(); !ok {
				return
			}
		}
		batch = batch[:0]
		batchDeps.Clear()
		batch = append(batch, e.Op)
		s.splitBatchBefore(&e.Op, &batchDeps, &opDeps) // seeds the footprint; a 1-op batch never splits
		// Feed replay hammers one link for long runs; once a link's deps
		// are folded into batchDeps, later ops on the same link cannot
		// split and need no recomputation.
		lastLink := coalesceLinkOf(&e.Op)
		for len(batch) < maxIngestBatch {
			next, ok := ring.TryPop()
			if !ok {
				break
			}
			if l := coalesceLinkOf(&next.Op); l >= 0 && l == lastLink {
				batch = append(batch, next.Op)
				continue
			} else if s.splitBatchBefore(&next.Op, &batchDeps, &opDeps) {
				// Disjoint dirty-invariant footprints: flush what we
				// have and let next start the following batch.
				pending, havePending = next, true
				st.adaptive.Add(1)
				break
			} else if l >= 0 {
				// Footprint-free ops (l < 0) ride along without
				// disturbing the memo, so R/I flap pairs on one link
				// still skip the recomputation.
				lastLink = l
			}
			batch = append(batch, next.Op)
		}
		s.applyCoalesced(batch)
		st.mu.Lock()
		st.applied += uint64(len(batch))
		st.cond.Broadcast()
		st.mu.Unlock()
	}
}

// coalesceLinkOf is the coalescer's same-link memo key: the link of an
// insert that could carry a dirty-invariant footprint, or -1 for
// footprint-neutral ops (removals, drop-link inserts), which never
// match the memo.
func coalesceLinkOf(op *core.BatchOp) netgraph.LinkID {
	if !op.Insert || op.Rule.Link < 0 {
		return -1
	}
	return op.Rule.Link
}

// splitBatchBefore is the adaptive flush trigger: it reports whether the
// batch should flush before op joins it, and otherwise folds op's
// dirty-invariant footprint (the invariants whose dependency sets cover
// its link) into batchDeps. Ops with no footprint — removals (their
// link is unknown without a rule lookup), drop-link inserts, anything
// when no invariants are registered — are neutral: they ride along and
// never force a flush.
func (s *Server) splitBatchBefore(op *core.BatchOp, batchDeps, opDeps *bitset.Set) bool {
	if !op.Insert || op.Rule.Link < 0 || s.mon.NumRegistered() == 0 {
		return false
	}
	opDeps.Clear()
	s.mon.LinkDepsInto(int(op.Rule.Link), opDeps)
	if opDeps.Empty() {
		return false
	}
	if !batchDeps.Empty() && !batchDeps.Intersects(opDeps) {
		return true
	}
	batchDeps.UnionWith(opDeps)
	return false
}

// applyCoalesced applies one coalesced batch under the write lock,
// mirroring readAndApplyBatch's pipeline: one ApplyBatch, one loop
// check, one monitor pass, one journal record. ApplyBatch is
// all-or-nothing, but a coalesced batch interleaves independent
// producers — one client's duplicate id must not void its neighbors'
// work — so a refused batch falls back to per-op application, dropping
// only the offending ops.
func (s *Server) applyCoalesced(ops []core.BatchOp) {
	s.ing.batches.Add(1)
	t0 := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	lockNs := time.Since(t0).Nanoseconds()
	t0 = time.Now()
	if err := s.net.ApplyBatch(ops, &s.delta, 0); err == nil {
		loops := check.FindLoopsDeltaAuto(s.net, &s.delta, 0)
		s.staged = stageInfo{valid: true, verb: verbBatch,
			lockNs: lockNs, applyNs: time.Since(t0).Nanoseconds()}
		s.mon.ApplyWithLoops(&s.delta, loops, true)
		s.finishUpdateLocked()
		if s.jrnl != nil { // skip rendering entirely on the journal-less hot path
			var b strings.Builder
			fmt.Fprintf(&b, "B %d", len(ops))
			for i := range ops {
				b.WriteByte('\n')
				appendOpLine(&b, &ops[i])
			}
			s.journalAppendLocked(b.String())
		}
		return
	}
	for i := range ops {
		op := &ops[i]
		t0 = time.Now()
		var loops []check.Loop
		loopsKnown := false
		if op.Insert {
			if err := s.net.InsertRuleInto(op.Rule, &s.delta); err != nil {
				s.ing.rejected.Add(1)
				continue
			}
			loops = check.FindLoopsDelta(s.net, &s.delta)
			loopsKnown = true
			s.staged = stageInfo{valid: true, verb: verbInsert, applyNs: time.Since(t0).Nanoseconds()}
		} else {
			if err := s.net.RemoveRuleInto(op.Rule.ID, &s.delta); err != nil {
				s.ing.rejected.Add(1)
				continue
			}
			s.staged = stageInfo{valid: true, verb: verbRemove, applyNs: time.Since(t0).Nanoseconds()}
		}
		s.mon.ApplyWithLoops(&s.delta, loops, loopsKnown)
		s.finishUpdateLocked()
		if s.jrnl != nil {
			var b strings.Builder
			appendOpLine(&b, op)
			s.journalAppendLocked(b.String())
		}
	}
}

// appendOpLine renders op as the line-protocol text the journal (and
// its replicas) replay through parseUpdateLine.
func appendOpLine(b *strings.Builder, op *core.BatchOp) {
	if op.Insert {
		fmt.Fprintf(b, "I %d %d %d %d %d %d", op.Rule.ID, op.Rule.Source,
			op.Rule.Link, op.Rule.Match.Lo, op.Rule.Match.Hi, op.Rule.Priority)
	} else {
		fmt.Fprintf(b, "R %d", op.Rule.ID)
	}
}
