// Whatif: the paper's §4.3.2 exemplar query — "what is the fate of packets
// that are using a link that fails?" — answered on a realistic WAN data
// plane built by the SDN-IP controller simulation.
//
// Because Delta-net maintains the flows of all packets persistently, the
// affected traffic of a hypothetical failure is read off the failed link's
// label in constant time, and the full blast radius (every edge carrying
// any affected packet) is one pass over the edge labels — no per-class
// forwarding graph construction.
//
// Run with: go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/netgraph"
	"deltanet/internal/sdnip"
	"deltanet/internal/topo"
	"deltanet/internal/trace"
)

func main() {
	// Build the Airtel-like WAN and let the SDN-IP controller converge
	// with 40 advertised prefixes per border switch.
	g, err := topo.Build("airtel")
	if err != nil {
		log.Fatal(err)
	}
	borders := sdnip.Switches(g)
	ads := sdnip.RandomAdvertisements(borders, 40, 12)
	ctrl := sdnip.NewController(g, ads)
	ctrl.AdvertiseAll()

	n := core.NewNetwork(g, core.Options{})
	var d core.Delta
	for _, op := range ctrl.Ops() {
		if err := trace.Apply(n, op, &d); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("data plane: %d rules, %d atoms over %d nodes\n",
		n.NumRules(), n.NumAtoms(), g.NumNodes())

	// Rank all inter-switch links by the traffic they carry and probe
	// the three busiest.
	links := sdnip.InterSwitchLinks(g)
	fmt.Printf("\nwhat-if analysis over %d candidate links:\n", len(links))
	probed := 0
	for _, l := range links {
		affected := n.Label(l)
		if affected.Empty() {
			continue
		}
		sub := check.AffectedByLinkFailure(n, l)
		loops := check.LoopsInSubgraph(n, sub)
		lk := g.Link(l)
		fmt.Printf("  %s -> %s: %d packet class(es) affected across %d edge(s), %d loop(s)\n",
			g.NodeName(lk.Src), g.NodeName(lk.Dst),
			sub.Affected.Len(), sub.NumEdges(), len(loops))
		probed++
		if probed >= 3 {
			break
		}
	}

	// Black-hole audit of the same data plane: external peers are
	// legitimate sinks.
	sinks := map[netgraph.NodeID]bool{}
	for v := netgraph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if sdnip.IsExternal(g, v) {
			sinks[v] = true
		}
	}
	holes := check.FindBlackHoles(n, sinks)
	fmt.Printf("\nblack-hole audit: %d node(s) silently discard traffic\n", len(holes))
}
