// Package a is the lockorder analyzer's flagged fixture. M mirrors the
// monitor's lock lattice in miniature; each function demonstrates one
// violation class, including the seeded regression from the acceptance
// criteria: two lock acquisitions swapped against their declared ranks.
package a

import "sync"

// M carries a three-level lock hierarchy.
type M struct {
	// low is the outermost lock, like the monitor's applyMu.
	//
	//deltanet:lockrank 10
	low sync.Mutex

	//deltanet:lockrank 20
	mid sync.RWMutex

	//deltanet:lockrank 30
	high sync.Mutex

	n int
}

// ok is the disciplined shape: strictly increasing ranks, all released.
func (m *M) ok() {
	m.low.Lock()
	defer m.low.Unlock()
	m.mid.Lock()
	m.n++
	m.mid.Unlock()
}

// swapped inverts the declared order — the seeded regression.
func (m *M) swapped() {
	m.high.Lock()
	m.low.Lock() // want `acquires M\.low \(lockrank 10\) while M\.high \(lockrank 30\) is held`
	m.n++
	m.low.Unlock()
	m.high.Unlock()
}

// reentrant takes the same rank twice; equal ranks are unordered peers.
func (m *M) reentrant() {
	m.mid.RLock()
	m.mid.RLock() // want `acquires M\.mid \(lockrank 20\) while M\.mid \(lockrank 20\) is held`
	m.mid.RUnlock()
	m.mid.RUnlock()
}

// lockMid gives viaCall a summary to trip over.
func (m *M) lockMid() {
	m.mid.Lock()
	m.n++
	m.mid.Unlock()
}

// viaCall violates the order one call away: the callee's transitive
// summary includes mid (20), which is below the held high (30).
func (m *M) viaCall() {
	m.high.Lock()
	defer m.high.Unlock()
	m.lockMid() // want `call to lockMid acquires M\.mid \(lockrank 20\) while M\.high \(lockrank 30\) is held`
}

// leaks returns with a lock held and no deferred unlock.
func (m *M) leaks() int {
	m.low.Lock()
	return m.n // want `returns with M\.low \(lockrank 10\) held without a deferred unlock`
}

// leaksAtEnd falls off the end of the body still holding a lock.
func (m *M) leaksAtEnd() {
	m.mid.Lock()
	m.n++
} // want `returns with M\.mid \(lockrank 20\) held without a deferred unlock`

// branches is clean: every path unlocks before leaving.
func (m *M) branches(c bool) {
	m.low.Lock()
	if c {
		m.low.Unlock()
		return
	}
	m.low.Unlock()
}

// branchLeak leaks on one branch only.
func (m *M) branchLeak(c bool) int {
	m.low.Lock()
	if c {
		return m.n // want `returns with M\.low \(lockrank 10\) held`
	}
	m.low.Unlock()
	return 0
}

// goroutines do not inherit the creator's held set: the spawned body
// acquiring a lower rank is fine, it runs on its own stack.
func (m *M) goClean(done chan struct{}) {
	m.high.Lock()
	defer m.high.Unlock()
	go func() {
		m.low.Lock()
		m.n++
		m.low.Unlock()
		close(done)
	}()
}

// closureReturns is clean: the inner literal returns while the outer
// frame holds low, but the literal itself acquired nothing.
func (m *M) closureReturns(fs []func() bool) {
	m.low.Lock()
	defer m.low.Unlock()
	for _, f := range fs {
		g := func() bool { return f() }
		if g() {
			m.n++
		}
	}
}

// byValue passes the lock-bearing struct by value.
func byValue(m M) int { // want `parameter of byValue passes M \(contains a sync\.Mutex\) by value`
	return m.n
}

// copies dereferences the receiver into a by-value copy.
func (m *M) copies() int {
	n := *m // want `assignment copies M \(contains a sync\.Mutex\) by value`
	return n.n
}

// NotAMutex carries the annotation on a non-mutex field.
type NotAMutex struct {
	//deltanet:lockrank 40
	counter int // want `//deltanet:lockrank on counter, which is not a sync\.Mutex or sync\.RWMutex`
}

// suppressed demonstrates an annotated escape hatch: the violation is
// real but justified, like monitor.Register locking an unpublished
// invariant.
func (m *M) suppressed() {
	m.high.Lock()
	m.low.Lock() //deltanet:nolint lockorder fixture: proves suppression with a reason works
	m.n++
	m.low.Unlock()
	m.high.Unlock()
}
