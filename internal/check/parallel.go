package check

import (
	"runtime"
	"sync"
	"sync/atomic"

	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
)

// parallelDeltaThreshold is the number of Added entries above which the
// goroutine-parallel delta loop check beats the serial one; below it the
// fan-out overhead dominates. Shared by every call site that wants the
// size-based choice (FindLoopsDeltaAuto).
const parallelDeltaThreshold = 64

// RunParallel invokes fn(i) for every i in [0, n) over a bounded worker
// pool — the paper's §6 parallelization pattern, shared by the delta loop
// check and the invariant monitor. workers ≤ 0 selects GOMAXPROCS; when
// the pool would not pay for itself (one worker or one job) the calls run
// serially on the caller's goroutine. fn must be safe to call concurrently
// for distinct indices.
func RunParallel(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunSharded invokes fn(worker, i) for every i in [0, n), partitioning the
// index space into contiguous per-worker queues: worker w owns one slice of
// [0, n) and processes it in order. Unlike RunParallel's dynamic work
// stealing, the static queues give each worker a stable identity and a
// cache-friendly contiguous range, so callers can keep per-worker scratch
// (evaluation queues, result buffers) without any locking — the sharding
// hook the invariant monitor fans its dirty-set evaluations out over.
// workers ≤ 0 selects GOMAXPROCS; one worker or one job runs serially on
// the caller's goroutine as worker 0.
func RunSharded(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		// Queue w is [w*n/workers, (w+1)*n/workers): contiguous, and the
		// sizes differ by at most one.
		lo, hi := w*n/workers, (w+1)*n/workers
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(w, i)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// FindLoopsDeltaAuto picks the serial or parallel delta loop check by
// delta size: merged batch deltas with many label additions fan out over
// the worker pool, while the common 1–2 atom delta stays serial.
func FindLoopsDeltaAuto(n *core.Network, d *core.Delta, workers int) []Loop {
	if d == nil || len(d.Added) < parallelDeltaThreshold {
		return FindLoopsDelta(n, d)
	}
	return FindLoopsDeltaParallel(n, d, workers)
}

// FindLoopsDeltaAutoScratch is FindLoopsDeltaAuto with caller-owned
// scratch for the serial path (the steady-state case). The parallel path
// fans out over goroutines, which need one scratch each, so it draws from
// the package pool instead of sc.
func FindLoopsDeltaAutoScratch(n *core.Network, d *core.Delta, workers int, sc *Scratch) []Loop {
	if d == nil || len(d.Added) < parallelDeltaThreshold {
		return FindLoopsDeltaScratch(n, d, sc)
	}
	return FindLoopsDeltaParallel(n, d, workers)
}

// FindLoopsDeltaParallel is FindLoopsDelta with the per-atom walks fanned
// out over goroutines — the paper's §6 observation that "the main loops
// over atoms in Algorithm 1 and 2 are highly parallelizable" applies to
// the delta check too, since each atom's walk only reads engine state.
// It pays off when a delta touches many atoms (bulk updates, link
// failures); for the common 1–2 atom delta the serial version is faster.
// workers ≤ 0 selects GOMAXPROCS.
func FindLoopsDeltaParallel(n *core.Network, d *core.Delta, workers int) []Loop {
	if d == nil || len(d.Added) == 0 {
		return nil
	}
	// Deduplicate atoms first; one walk per affected atom.
	seen := map[intervalmap.AtomID]core.LinkAtom{}
	for _, la := range d.Added {
		if _, ok := seen[la.Atom]; !ok {
			seen[la.Atom] = la
		}
	}
	jobs := make([]core.LinkAtom, 0, len(seen))
	for _, la := range seen {
		jobs = append(jobs, la)
	}
	var (
		mu    sync.Mutex
		loops []Loop
	)
	g := n.Graph()
	RunParallel(workers, len(jobs), func(i int) {
		la := jobs[i]
		l := g.Link(la.Link)
		sc := GetScratch()
		defer PutScratch(sc)
		if loop, ok := traceLoop(n, l.Src, la.Atom, sc); ok {
			mu.Lock()
			loops = append(loops, loop)
			mu.Unlock()
		}
	})
	return loops
}
