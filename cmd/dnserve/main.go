// Command dnserve runs the Delta-net checker as a TCP service (the
// sidecar deployment of the paper's Figure 7): controllers stream rule
// updates as protocol lines and receive per-update verification verdicts.
//
// Usage:
//
//	dnserve [-addr host:port] [-gc] [-trace file] [-batch n]
//	        [-burst-deltas n] [-burst-age d] [-state file]
//	        [-checkpoint <interval|Nu>] [-admin host:port]
//	        [-slow-update d] [-journal file] [-journal-sync none|always]
//	        [-replica-of host:port] [-feed spec]
//
// With -trace, the topology and insertions of the trace are preloaded
// before serving; -batch n applies the preload as atomic batches of n
// rules through the parallel batch pipeline instead of one rule at a
// time. -burst-deltas/-burst-age preconfigure the monitor's coalescing
// burst mode (equivalent to the protocol's burst command; -burst-age also
// starts the background flusher). See internal/server for the protocol
// (including the B, W, watch since, events since, burst, and flush
// commands).
//
// -state makes the service durable across restarts: if the file exists
// it is loaded before serving (topology, rules, standing invariants —
// all re-evaluated, see server.LoadState — and the event-stream cursor,
// so event numbering continues across the restart), and on shutdown
// (SIGINT/SIGTERM, which also drains live connections) the current
// state is saved back atomically. A watcher that reconnects after the
// restart resumes with "watch since <seq>" against the same invariant
// set.
//
// -checkpoint additionally saves the state file in the background while
// serving, so a crash loses at most one checkpoint window instead of
// everything since boot. The value is either a duration ("30s", "5m")
// for time-triggered saves, or an update count with a "u" suffix
// ("1000u") to checkpoint after that many rule updates. Every save goes
// through the same atomic temp-file-and-rename path as the shutdown
// save, so a crash mid-checkpoint never corrupts the previous good
// state.
//
// -admin serves the observability endpoint on a second address:
// /metrics (Prometheus text exposition), /healthz, /statusz, and
// net/http/pprof under /debug/pprof/. -slow-update logs any update
// whose traced pipeline stages sum past the given duration to stderr
// (see the protocol's trace command for the on-demand ring). See the
// README's Observability section.
//
// -journal appends every applied update to a length-prefixed journal
// file (CRC-framed; a torn final record from a crash is dropped on
// reopen). On boot, records after the -state file's journal cursor are
// replayed, so a crash loses nothing between checkpoints; each
// successful checkpoint rotates the journal at the checkpointed offset,
// bounding its size. -journal-sync always fsyncs each append (durable
// to the crash, slower); the default none leaves flushing to the OS.
// The journal is also the replication feed: replicas stream it with
// the protocol's "journal since <offset>" command.
//
// -feed replays a live update stream through the binary ingest ring
// after boot: "bgp:<updates>[:<seed>]" synthesizes RIB-style churn on a
// minimal gateway topology, "sdnip:<name>[:<scale>]" replays an SDN-IP
// controller trace (airtel1, airtel2, 4switch) with its own topology,
// and "openflow:<file>" replays a recorded op stream against the
// topology loaded with -trace/-state. The sustained updates/sec rate is
// logged when the replay drains. See the README's Ingestion section.
//
// -replica-of boots a read replica: it fetches the primary's
// checkpoint, streams its journal tail, applies every update into its
// own engine and monitor, and serves reach/whatif/stats/W/watch
// locally (mutations are refused). A replica that falls behind a
// journal rotation re-anchors on a fresh checkpoint automatically.
// Incompatible with -trace, -state, -checkpoint, -journal, and the
// -burst flags (the primary's burst policy does not replicate). See
// the README's Replication section.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"deltanet/internal/core"
	"deltanet/internal/journal"
	"deltanet/internal/metrics"
	"deltanet/internal/monitor"
	"deltanet/internal/netgraph"
	"deltanet/internal/server"
	"deltanet/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6633", "listen address")
	gc := flag.Bool("gc", false, "enable atom garbage collection")
	traceFile := flag.String("trace", "", "preload this trace's topology and insertions")
	batch := flag.Int("batch", 1, "preload batch size (>1 uses the parallel batch pipeline)")
	burstDeltas := flag.Int("burst-deltas", 0, "coalesce this many deltas per monitor burst (>=2 enables)")
	burstAge := flag.Duration("burst-age", 0, "flush a pending monitor burst at this age (>0 enables)")
	stateFile := flag.String("state", "", "durable state file: loaded before serving if it exists, saved on shutdown")
	checkpoint := flag.String("checkpoint", "", "background state saves while serving: a duration (e.g. 30s) or an update count (e.g. 1000u); requires -state")
	adminAddr := flag.String("admin", "", "serve /metrics, /healthz, /statusz, and /debug/pprof on this address")
	slowUpdate := flag.Duration("slow-update", 0, "log updates whose traced pipeline stages exceed this duration (0 disables)")
	journalFile := flag.String("journal", "", "append every applied update to this journal file (recovery + replication feed)")
	journalSync := flag.String("journal-sync", "none", "journal fsync policy: none (OS-buffered) or always (fsync per append)")
	replicaOf := flag.String("replica-of", "", "run as a read replica of the primary at this address (refuses mutations)")
	feedSpec := flag.String("feed", "", "replay a live update feed through the ingest ring after boot: "+feedUsage)
	flag.Parse()
	if *batch < 1 {
		fatal(fmt.Errorf("-batch must be >= 1, got %d", *batch))
	}
	if *burstDeltas < 0 || *burstAge < 0 {
		fatal(fmt.Errorf("-burst-deltas and -burst-age must be non-negative"))
	}
	ckptEvery, ckptUpdates, err := parseCheckpoint(*checkpoint)
	if err != nil {
		fatal(err)
	}
	if *checkpoint != "" && *stateFile == "" {
		fatal(fmt.Errorf("-checkpoint requires -state"))
	}
	if *replicaOf != "" {
		for flagName, set := range map[string]bool{
			"-trace": *traceFile != "", "-state": *stateFile != "",
			"-checkpoint": *checkpoint != "", "-journal": *journalFile != "",
			"-burst-deltas": *burstDeltas != 0, "-burst-age": *burstAge != 0,
			"-feed": *feedSpec != "",
		} {
			if set {
				fatal(fmt.Errorf("-replica-of is incompatible with %s: the replica's state, journal cursor, and burst policy come from the primary", flagName))
			}
		}
	}
	syncPolicy, err := journal.ParseSyncPolicy(*journalSync)
	if err != nil {
		fatal(err)
	}
	var feed *feedSource
	if *feedSpec != "" {
		if feed, err = buildFeed(*feedSpec); err != nil {
			fatal(err)
		}
	}

	opts := []server.Option{server.WithEngine(core.Options{GC: *gc})}
	if *burstDeltas >= 2 || *burstAge > 0 {
		opts = append(opts, server.WithBurst(monitor.BurstConfig{MaxDeltas: *burstDeltas, MaxAge: *burstAge}))
	}
	if *slowUpdate > 0 {
		opts = append(opts, server.WithSlowUpdate(*slowUpdate, os.Stderr))
	}
	if *replicaOf != "" {
		opts = append(opts, server.WithReplicaOf(*replicaOf))
	}
	var jrnl *journal.Journal
	if *journalFile != "" {
		jrnl, err = journal.Open(*journalFile, syncPolicy)
		if err != nil {
			fatal(err)
		}
		defer jrnl.Close()
		if d := jrnl.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "journal %s: dropped %d bytes of torn tail from a previous crash\n", *journalFile, d)
		}
		opts = append(opts, server.WithJournal(jrnl))
	}
	// The admin endpoint gets its own listener so operational traffic
	// (scrapes, pprof) never competes with the protocol port. The
	// registry is wired at construction so the first scrape sees the
	// full surface.
	var reg *metrics.Registry
	if *adminAddr != "" {
		reg = metrics.NewRegistry()
		opts = append(opts, server.WithMetrics(reg))
	}

	s := server.New(opts...)
	haveState := false
	if *stateFile != "" {
		if f, err := os.Open(*stateFile); err == nil {
			if *traceFile != "" {
				fatal(fmt.Errorf("-state file %s exists; refusing to also preload -trace (delete one)", *stateFile))
			}
			err := s.LoadState(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			haveState = true
			fmt.Fprintf(os.Stderr, "restored %s: %d rules, %d atoms, %d invariant(s)\n",
				*stateFile, s.Network().NumRules(), s.Network().NumAtoms(), s.Monitor().NumRegistered())
		} else if !os.IsNotExist(err) {
			fatal(err)
		}
	}
	if jrnl != nil {
		// Crash recovery: replay the journal suffix after the offset the
		// state file was current through (the whole journal when there was
		// no state file), so the boot state is the full pre-crash state,
		// not just the last checkpoint.
		applied, err := s.ReplayJournal(jrnl)
		if err != nil {
			fatal(err)
		}
		if applied > 0 {
			fmt.Fprintf(os.Stderr, "replayed %d journal record(s): %d rules, %d atoms\n",
				applied, s.Network().NumRules(), s.Network().NumAtoms())
		}
	}
	if *traceFile != "" && !haveState {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		// Rebuild the topology into the server's graph so protocol ids
		// match the trace's.
		for v := netgraph.NodeID(0); int(v) < tr.Graph.NumNodes(); v++ {
			s.Graph().AddNode(tr.Graph.NodeName(v))
		}
		for _, l := range tr.Graph.Links() {
			s.Graph().AddLink(l.Src, l.Dst)
		}
		var d core.Delta
		if *batch > 1 {
			ops := make([]core.BatchOp, 0, *batch)
			flush := func() {
				if len(ops) == 0 {
					return
				}
				if err := s.Network().ApplyBatch(ops, &d, 0); err != nil {
					fatal(err)
				}
				ops = ops[:0]
			}
			for _, op := range tr.Ops {
				if !op.Insert {
					continue
				}
				ops = append(ops, core.InsertOp(op.Rule))
				if len(ops) == *batch {
					flush()
				}
			}
			flush()
		} else {
			for _, op := range tr.Ops {
				if !op.Insert {
					continue
				}
				if err := trace.Apply(s.Network(), op, &d); err != nil {
					fatal(err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "preloaded %s: %d rules, %d atoms\n",
			tr.Name, s.Network().NumRules(), s.Network().NumAtoms())
	}

	if feed != nil {
		if err := installFeedTopology(s, feed); err != nil {
			fatal(err)
		}
	}

	var adminSrv *http.Server
	if *adminAddr != "" {
		al, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fatal(err)
		}
		adminSrv = &http.Server{Handler: s.AdminHandler(reg)}
		go func() {
			if err := adminSrv.Serve(al); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "dnserve: admin endpoint: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "dnserve admin endpoint on http://%s/\n", al.Addr())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// SIGINT/SIGTERM shut the server down cleanly (Serve returns nil once
	// live connections are drained), and the state file is saved after —
	// the data plane is quiescent by then. The registered watch set is
	// captured at signal time: Close's connection drain releases every
	// client-held registration, and the saved state must include them.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	specCh := make(chan []string, 1)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "dnserve: shutting down")
		specCh <- s.Monitor().SnapshotSpecs()
		s.Close()
	}()
	// Background checkpointer: periodic saves through the same atomic
	// rename path as the shutdown save, so a crash between checkpoints
	// loses at most one window. Joined before the final save so the two
	// writers never interleave on the temp file.
	var ckptWG sync.WaitGroup
	ckptStop := make(chan struct{})
	if ckptEvery > 0 || ckptUpdates > 0 {
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			runCheckpointer(s, *stateFile, jrnl, ckptEvery, ckptUpdates, ckptStop)
		}()
	}

	fmt.Fprintf(os.Stderr, "dnserve listening on %s\n", l.Addr())
	if feed != nil {
		// Start the ring while the server is certainly live (the empty
		// barrier returns immediately), so the replay goroutine's lazy
		// start can never race a shutdown's final teardown.
		s.IngestBarrier()
		fmt.Fprintf(os.Stderr, "dnserve: replaying feed %s (%d ops)\n", feed.name, len(feed.ops))
		go replayFeed(s, feed)
	}
	if err := s.Serve(l); err != nil {
		fatal(err)
	}
	close(ckptStop)
	ckptWG.Wait()
	if adminSrv != nil {
		adminSrv.Close()
	}
	if *stateFile != "" {
		var specs []string
		select {
		case specs = <-specCh:
		default: // Serve ended without a signal; the monitor is settled
			specs = s.Monitor().SnapshotSpecs()
		}
		if err := saveState(s, *stateFile, specs, jrnl); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved %s: %d rules, %d invariant(s)\n",
			*stateFile, s.Network().NumRules(), len(specs))
	}
}

// parseCheckpoint parses the -checkpoint value: "" (disabled), a
// duration ("30s"), or an update count with a "u" suffix ("1000u").
func parseCheckpoint(v string) (every time.Duration, updates uint64, err error) {
	if v == "" {
		return 0, 0, nil
	}
	if n, ok := strings.CutSuffix(v, "u"); ok {
		updates, err = strconv.ParseUint(n, 10, 64)
		if err != nil || updates == 0 {
			return 0, 0, fmt.Errorf("-checkpoint %q: update count must be a positive integer with a 'u' suffix", v)
		}
		return 0, updates, nil
	}
	every, err = time.ParseDuration(v)
	if err != nil || every <= 0 {
		return 0, 0, fmt.Errorf("-checkpoint %q: want a positive duration (e.g. 30s) or an update count (e.g. 1000u)", v)
	}
	return every, 0, nil
}

// checkpointPoll is how often the update-count checkpointer samples the
// monitor's update counter.
const checkpointPoll = time.Second

// runCheckpointer saves the server state to path whenever the trigger
// fires: every `every` when time-driven, or whenever `updates` more
// rule updates have been applied since the last save (sampled every
// checkpointPoll) when count-driven. An idle server checkpoints once
// and then skips ticks until the update counter moves again (a
// topology-only mutation between checkpoints is covered by the
// shutdown save). Save errors are logged, not fatal — a full disk
// should not take the verifier down.
func runCheckpointer(s *server.Server, path string, jrnl *journal.Journal, every time.Duration, updates uint64, stop <-chan struct{}) {
	interval := every
	if updates > 0 {
		interval = checkpointPoll
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	var lastSaved uint64
	saved := false
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		cur := s.Monitor().Stats().Updates
		if updates > 0 {
			if cur-lastSaved < updates {
				continue
			}
		} else if saved && cur == lastSaved {
			continue // nothing changed since the last checkpoint
		}
		lastSaved, saved = cur, true
		if err := saveState(s, path, s.Monitor().SnapshotSpecs(), jrnl); err != nil {
			fmt.Fprintf(os.Stderr, "dnserve: checkpoint failed: %v\n", err)
		}
	}
}

// saveState writes the server state to path atomically: dump to a
// sibling temp file, then rename over the target, so a crash mid-write
// cannot destroy the previous good state. With a journal, a successful
// save also rotates it at the checkpointed offset — everything the new
// checkpoint covers is discarded, bounding journal growth, while the
// suffix replicas may still need stays addressable at the same logical
// offsets (a replica behind the rotation re-anchors on a checkpoint).
func saveState(s *server.Server, path string, specs []string, jrnl *journal.Journal) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	offset, err := s.CheckpointTo(f, specs)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if jrnl != nil {
		if err := jrnl.Rotate(offset); err != nil {
			// The checkpoint is good; an unrotated journal only costs disk.
			fmt.Fprintf(os.Stderr, "dnserve: journal rotation failed: %v\n", err)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
