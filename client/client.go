// Package client is the Go client for the dnserve wire protocol: a
// line-oriented TCP connection to a running Delta-net verification
// service (primary or read replica), with typed helpers for the common
// queries, a durable event watcher with multi-address failover
// (Watcher), and a strict Prometheus scrape of the admin endpoint
// (ScrapeMetrics).
//
// The protocol itself — one request line, one response line, except for
// the streaming commands — is documented in the README's Wire protocol
// section. Everything the typed helpers do not cover is reachable
// through Do (one round trip) and ReadLine (stream reads after a
// command such as "watch" puts the connection in streaming mode).
//
//	c, err := client.Dial("127.0.0.1:6633")
//	...
//	atoms, err := c.Reach("s1", "s4")
package client

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxLine mirrors the server's line limit: responses (a trace dump, a
// checkpoint rule line) can be long, but never unbounded.
const maxLine = 1 << 20

// DialTimeout bounds how long Dial waits for the TCP connect.
const DialTimeout = 5 * time.Second

// A ProtocolError is a response line beginning "err": the server
// understood the connection but refused the request (unknown command,
// bad arguments, a mutation sent to a read replica, ...).
type ProtocolError struct {
	Req  string // the request line that was refused
	Resp string // the full "err ..." response line
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("dnserve: %s (request %q)", e.Resp, e.Req)
}

// Client is one protocol connection. Methods are safe for concurrent
// use; each Do is one atomic request/response round trip. A Client that
// entered streaming mode (Watch on the server side of a `watch`,
// `journal since`, ...) belongs to the stream: use ReadLine and do not
// interleave Do calls.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	sc   *bufio.Scanner
}

// Dial connects to a dnserve instance at addr (host:port).
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (a net.Pipe end in tests,
// a dialed conn with custom options) as a protocol client.
func NewClient(conn net.Conn) *Client {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), maxLine)
	return &Client{conn: conn, sc: sc}
}

// Close tears down the connection. The polite form is Quit.
func (c *Client) Close() error { return c.conn.Close() }

// Quit sends the protocol's quit and closes the connection.
func (c *Client) Quit() error {
	c.mu.Lock()
	_, werr := fmt.Fprintln(c.conn, "quit")
	c.mu.Unlock()
	if cerr := c.conn.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// Do sends one request line and returns the one response line. A
// response beginning "err" is returned as a *ProtocolError (with the
// raw line in Resp); transport failures are returned as-is.
func (c *Client) Do(req string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.doLocked(req)
}

func (c *Client) doLocked(req string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, req); err != nil {
		return "", err
	}
	resp, err := c.readLineLocked(req)
	if err != nil {
		return "", err
	}
	if strings.HasPrefix(resp, "err") {
		return resp, &ProtocolError{Req: req, Resp: resp}
	}
	return resp, nil
}

// ReadLine returns the next line the server sends — the stream reads
// after a command put the connection in streaming mode.
func (c *Client) ReadLine() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readLineLocked("stream")
}

func (c *Client) readLineLocked(what string) (string, error) {
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("dnserve: connection closed awaiting response to %q", what)
	}
	return c.sc.Text(), nil
}

// Reach asks how many atoms (disjoint address ranges) can flow from src
// to dst. Nodes are named by id or by name, as everywhere in the
// protocol.
func (c *Client) Reach(src, dst string) (atoms int, err error) {
	resp, err := c.Do(fmt.Sprintf("reach %s %s", src, dst))
	if err != nil {
		return 0, err
	}
	if _, err := fmt.Sscanf(resp, "ok reach %d", &atoms); err != nil {
		return 0, fmt.Errorf("dnserve: bad reach response %q", resp)
	}
	return atoms, nil
}

// WhatIf reports the impact of failing the link src->dst: how many
// atoms and labelled edges the failure subgraph touches.
func (c *Client) WhatIf(src, dst string) (atoms, edges int, err error) {
	return c.whatIf(fmt.Sprintf("whatif %s %s", src, dst))
}

// WhatIfLink is WhatIf addressed by link id instead of endpoints.
func (c *Client) WhatIfLink(link int) (atoms, edges int, err error) {
	return c.whatIf(fmt.Sprintf("whatif %d", link))
}

func (c *Client) whatIf(req string) (atoms, edges int, err error) {
	resp, err := c.Do(req)
	if err != nil {
		return 0, 0, err
	}
	if _, err := fmt.Sscanf(resp, "ok whatif atoms=%d edges=%d", &atoms, &edges); err != nil {
		return 0, 0, fmt.Errorf("dnserve: bad whatif response %q", resp)
	}
	return atoms, edges, nil
}

// Stats returns the server's stats line as a key->value map (the keys
// are documented in the README's stats table; a journaling primary
// adds jrnl, a replica adds lag).
func (c *Client) Stats() (map[string]string, error) {
	resp, err := c.Do("stats")
	if err != nil {
		return nil, err
	}
	rest, ok := strings.CutPrefix(resp, "ok stats ")
	if !ok {
		return nil, fmt.Errorf("dnserve: bad stats response %q", resp)
	}
	stats := make(map[string]string)
	for _, f := range strings.Fields(rest) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("dnserve: bad stats field %q in %q", f, resp)
		}
		stats[k] = v
	}
	return stats, nil
}

// StatUint reads one numeric stats key, erroring if absent — the
// convenience for lag/upd polling loops.
func (c *Client) StatUint(key string) (uint64, error) {
	stats, err := c.Stats()
	if err != nil {
		return 0, err
	}
	v, ok := stats[key]
	if !ok {
		return 0, fmt.Errorf("dnserve: stats has no %q key", key)
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("dnserve: stats key %s=%q is not a number", key, v)
	}
	return n, nil
}
