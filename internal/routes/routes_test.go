package routes

import (
	"testing"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
	"deltanet/internal/topo"
)

func TestShortestPathTreeRing(t *testing.T) {
	g := topo.Ring(4)
	root := netgraph.NodeID(0)
	next := ShortestPathTree(g, root, nil)
	if next[root] != netgraph.NoLink {
		t.Fatal("root should have no next hop")
	}
	// Every other node reaches the root, and hop counts are minimal
	// (ring of 4: at most 2 hops).
	for v := netgraph.NodeID(1); int(v) < 4; v++ {
		hops := 0
		u := v
		for u != root {
			l := next[u]
			if l == netgraph.NoLink {
				t.Fatalf("node %d cannot reach root", v)
			}
			if g.Link(l).Src != u {
				t.Fatalf("tree link %d does not originate at %d", l, u)
			}
			u = g.Link(l).Dst
			hops++
			if hops > 4 {
				t.Fatalf("node %d: path too long", v)
			}
		}
		if hops > 2 {
			t.Fatalf("node %d: %d hops, want <= 2", v, hops)
		}
	}
}

func TestShortestPathTreeBlocked(t *testing.T) {
	g := topo.Ring(4)
	root := netgraph.NodeID(0)
	// Block 1->0 (and conceptually its use): node 1 must go the long
	// way around.
	l10 := g.FindLink(1, 0)
	next := ShortestPathTree(g, root, map[netgraph.LinkID]bool{l10: true})
	hops := 0
	u := netgraph.NodeID(1)
	for u != root {
		l := next[u]
		if l == l10 {
			t.Fatal("blocked link used")
		}
		u = g.Link(l).Dst
		hops++
	}
	if hops != 3 {
		t.Fatalf("detour hops=%d want 3", hops)
	}
}

func TestShortestPathTreeDisconnected(t *testing.T) {
	g := netgraph.New()
	a := g.AddNode("a")
	b := g.AddNode("b") // isolated
	next := ShortestPathTree(g, a, nil)
	if next[b] != netgraph.NoLink {
		t.Fatal("isolated node got a next hop")
	}
}

func TestRulesForPrefix(t *testing.T) {
	g := topo.Ring(4)
	c := NewCompiler(g, 1)
	p := ipnet.MustParsePrefix("10.0.0.0/16")
	rules := c.RulesForPrefixAt(p, 0, nil)
	if len(rules) != 3 { // every node except the egress
		t.Fatalf("rules=%d want 3", len(rules))
	}
	seenIDs := map[core.RuleID]bool{}
	for _, r := range rules {
		if r.Match != p.Interval() {
			t.Fatalf("rule match %v", r.Match)
		}
		if r.Priority != core.Priority(p.Len) {
			t.Fatalf("longest-prefix priority: %d", r.Priority)
		}
		if g.Link(r.Link).Src != r.Source {
			t.Fatal("rule link does not originate at source")
		}
		if seenIDs[r.ID] {
			t.Fatal("duplicate rule id")
		}
		seenIDs[r.ID] = true
	}
	if c.NextID() != core.RuleID(len(rules))+1 {
		t.Fatalf("NextID=%d", c.NextID())
	}
}

func TestRandomPriority(t *testing.T) {
	g := topo.Ring(4)
	c := NewCompiler(g, 2)
	c.RandomPriority = true
	p := ipnet.MustParsePrefix("10.0.0.0/16")
	rules := c.RulesForPrefixAt(p, 0, nil)
	distinct := map[core.Priority]bool{}
	for _, r := range rules {
		distinct[r.Priority] = true
	}
	if len(distinct) < 2 {
		t.Fatal("random priorities look constant")
	}
}

func TestCompiledRulesLoadIntoEngine(t *testing.T) {
	g, err := topo.Build("berkeley")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(g, 3)
	n := core.NewNetwork(g, core.Options{})
	switches := topo.SwitchNodes(g)
	for i := 0; i < 20; i++ {
		p := ipnet.NewPrefix(uint64(10+i)<<24, 12)
		for _, r := range c.RulesForPrefix(p, switches) {
			if _, err := n.InsertRule(r); err != nil {
				t.Fatalf("rule %v: %v", r, err)
			}
		}
	}
	if msg := n.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if n.NumRules() == 0 {
		t.Fatal("nothing compiled")
	}
}
