package intervalmap

// The rbtree-backed boundary map that shipped before the arena rewrite,
// kept verbatim as a differential oracle. Differential tests and
// FuzzIntervalMapFlat drive identical operation sequences against this
// and the arena-backed Map and require bit-identical observable state:
// atoms, split pairs, bounds, allocation stamps, and free-list recycling
// order. internal/rbtree exists only to back this oracle now.

import (
	"deltanet/internal/ipnet"
	"deltanet/internal/rbtree"
)

type oracleMap struct {
	space    ipnet.Space
	tree     *rbtree.Tree[uint64, AtomID]
	next     AtomID
	free     []AtomID
	allocSeq int64
	born     []int64
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func newOracle(space ipnet.Space) *oracleMap {
	m := &oracleMap{space: space, tree: rbtree.New[uint64, AtomID](cmpU64)}
	m.tree.Insert(0, m.alloc())
	m.tree.Insert(space.Max(), Infinity)
	return m
}

func (m *oracleMap) alloc() AtomID {
	var id AtomID
	if n := len(m.free); n > 0 {
		id = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		id = m.next
		m.next++
	}
	m.allocSeq++
	for int(id) >= len(m.born) {
		m.born = append(m.born, 0)
	}
	m.born[id] = m.allocSeq
	return id
}

func (m *oracleMap) AllocSeq() int64 { return m.allocSeq }

func (m *oracleMap) BornSeq(id AtomID) int64 {
	if int(id) < 0 || int(id) >= len(m.born) {
		return 0
	}
	return m.born[id]
}

func (m *oracleMap) NumAtoms() int { return m.tree.Len() - 1 }
func (m *oracleMap) MaxID() int    { return int(m.next) }

func (m *oracleMap) CreateAtoms(iv ipnet.Interval) []SplitPair {
	var delta []SplitPair
	for _, bound := range [2]uint64{iv.Lo, iv.Hi} {
		if m.tree.Has(bound) {
			continue
		}
		old := m.tree.Lower(bound).Value
		id := m.alloc()
		m.tree.Insert(bound, id)
		delta = append(delta, SplitPair{Old: old, New: id})
	}
	return delta
}

func (m *oracleMap) ReleaseBound(bound uint64) (AtomID, bool) {
	if bound == 0 || bound == m.space.Max() {
		return 0, false
	}
	v, ok := m.tree.Get(bound)
	if !ok {
		return 0, false
	}
	m.tree.Delete(bound)
	m.free = append(m.free, v)
	return v, true
}

func (m *oracleMap) AtomOf(addr uint64) AtomID { return m.tree.Floor(addr).Value }

func (m *oracleMap) Bounds() []uint64 { return m.tree.Keys() }

func (m *oracleMap) Values() []AtomID { return m.tree.Values() }
