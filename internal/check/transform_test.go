package check

import (
	"testing"
	"testing/quick"

	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
	"deltanet/internal/netgraph"
)

func TestRewriteApply(t *testing.T) {
	rw := Rewrite{From: iv(100, 200), To: iv(500, 600)}
	if !rw.Valid() {
		t.Fatal("valid rewrite rejected")
	}
	cases := []struct{ in, out uint64 }{
		{100, 500}, {150, 550}, {199, 599}, // inside: shifted
		{99, 99}, {200, 200}, {0, 0}, // outside: unchanged
	}
	for _, c := range cases {
		if got := rw.Apply(c.in); got != c.out {
			t.Errorf("Apply(%d)=%d want %d", c.in, got, c.out)
		}
	}
	if (Rewrite{From: iv(0, 10), To: iv(0, 20)}).Valid() {
		t.Fatal("size-mismatched rewrite accepted")
	}
	if (Rewrite{From: iv(5, 5), To: iv(5, 5)}).Valid() {
		t.Fatal("empty rewrite accepted")
	}
}

func TestRewriteApplyInterval(t *testing.T) {
	rw := Rewrite{From: iv(100, 200), To: iv(500, 600)}
	// Straddling both edges: three pieces.
	pieces := rw.ApplyInterval(iv(50, 250))
	if len(pieces) != 3 {
		t.Fatalf("pieces=%v", pieces)
	}
	wantTotal := uint64(0)
	for _, p := range pieces {
		wantTotal += p.Size()
	}
	if wantTotal != 200 {
		t.Fatalf("size not preserved: %d", wantTotal)
	}
	// Fully inside.
	pieces = rw.ApplyInterval(iv(120, 130))
	if len(pieces) != 1 || pieces[0] != iv(520, 530) {
		t.Fatalf("inside: %v", pieces)
	}
	// Fully outside.
	pieces = rw.ApplyInterval(iv(300, 400))
	if len(pieces) != 1 || pieces[0] != iv(300, 400) {
		t.Fatalf("outside: %v", pieces)
	}
}

// Property: ApplyInterval pieces are exactly {Apply(a) : a in iv}.
func TestPropertyApplyIntervalPointwise(t *testing.T) {
	rw := Rewrite{From: iv(1000, 2000), To: iv(9000, 10000)}
	f := func(a, b uint16) bool {
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		hi += 2500 // ensure straddling cases occur
		pieces := rw.ApplyInterval(iv(lo, hi))
		covered := map[uint64]bool{}
		var total uint64
		for _, p := range pieces {
			total += p.Size()
			for x := p.Lo; x < p.Hi && x < p.Lo+50; x++ {
				covered[x] = true
			}
		}
		if total != hi-lo {
			return false
		}
		// Spot-check pointwise membership.
		for x := lo; x < hi && x < lo+50; x++ {
			y := rw.Apply(x)
			in := false
			for _, p := range pieces {
				if p.Contains(y) {
					in = true
				}
			}
			if !in {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReachableWithTransforms(t *testing.T) {
	// a -(rewrites [0:100) to [1000:1100))-> b -> c where b only
	// forwards [1000:1100). Without the rewrite nothing reaches c.
	g := netgraph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab := g.AddLink(a, b)
	bc := g.AddLink(b, c)
	n := core.NewNetwork(g, core.Options{})
	mustInsert(t, n, core.Rule{ID: 1, Source: a, Link: ab, Match: iv(0, 100), Priority: 1})
	mustInsert(t, n, core.Rule{ID: 2, Source: b, Link: bc, Match: iv(1000, 1100), Priority: 1})

	// Without transforms: dead end at b.
	tf := NewTransforms()
	if got := ReachableWithTransforms(n, tf, a, c); !got.Empty() {
		t.Fatalf("untransformed traffic reached c: %v", got)
	}
	// Identity with plain Reachable.
	if !ReachableWithTransforms(n, tf, a, b).Equal(Reachable(n, a, b)) {
		t.Fatal("no-transform fixpoint differs from Reachable")
	}

	// With the NAT rewrite on ab the traffic continues.
	if err := tf.Set(ab, Rewrite{From: iv(0, 100), To: iv(1000, 1100)}); err != nil {
		t.Fatal(err)
	}
	got := ReachableWithTransforms(n, tf, a, c)
	if got.Empty() {
		t.Fatal("rewritten traffic did not reach c")
	}
	got.ForEach(func(atom int) bool {
		in, _ := n.AtomInterval(intervalmap.AtomID(atom))
		if !in.Overlaps(iv(1000, 1100)) {
			t.Fatalf("arrival atom %v outside the rewritten range", in)
		}
		return true
	})
	// Invalid rewrites rejected.
	if err := tf.Set(bc, Rewrite{From: iv(0, 10), To: iv(0, 5)}); err == nil {
		t.Fatal("invalid rewrite accepted")
	}
	if _, ok := tf.Get(bc); ok {
		t.Fatal("invalid rewrite stored")
	}
}

func TestMinimalECs(t *testing.T) {
	g := netgraph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	ab := g.AddLink(a, b)
	n := core.NewNetwork(g, core.Options{})
	// Two adjacent rules on the SAME link: their atoms behave
	// identically network-wide, so the minimal partition merges them.
	mustInsert(t, n, core.Rule{ID: 1, Source: a, Link: ab, Match: iv(0, 100), Priority: 1})
	mustInsert(t, n, core.Rule{ID: 2, Source: a, Link: ab, Match: iv(100, 200), Priority: 1})

	if n.NumAtoms() < 3 {
		t.Fatalf("atoms=%d", n.NumAtoms())
	}
	classes := MinimalECs(n)
	// Expect: one class {[0:100),[100:200)} on ab, one unused class for
	// the rest of the space.
	if len(classes) != 2 {
		t.Fatalf("classes=%d: %+v", len(classes), classes)
	}
	if len(classes[0].Atoms) != 2 {
		t.Fatalf("carried class has %d atoms", len(classes[0].Atoms))
	}
	if r := CompressionRatio(n); r <= 1 {
		t.Fatalf("ratio=%v, atoms should exceed minimal classes", r)
	}
}

func TestMinimalECsDistinguishesBehaviour(t *testing.T) {
	g := netgraph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab := g.AddLink(a, b)
	ac := g.AddLink(a, c)
	n := core.NewNetwork(g, core.Options{})
	mustInsert(t, n, core.Rule{ID: 1, Source: a, Link: ab, Match: iv(0, 100), Priority: 1})
	mustInsert(t, n, core.Rule{ID: 2, Source: a, Link: ac, Match: iv(100, 200), Priority: 1})
	classes := MinimalECs(n)
	// Three classes: ab-traffic, ac-traffic, unused.
	if len(classes) != 3 {
		t.Fatalf("classes=%d", len(classes))
	}
	// Behaviour signatures must differ.
	if len(classes[0].Links) == len(classes[1].Links) && len(classes[0].Links) > 0 &&
		classes[0].Links[0] == classes[1].Links[0] {
		t.Fatal("distinct behaviours merged")
	}
}

func TestMinimalECsEmptyNetwork(t *testing.T) {
	g := netgraph.New()
	g.AddNode("a")
	n := core.NewNetwork(g, core.Options{})
	classes := MinimalECs(n)
	if len(classes) != 1 || len(classes[0].Atoms) != 1 {
		t.Fatalf("empty network classes: %+v", classes)
	}
	if CompressionRatio(n) != 1 {
		t.Fatal("ratio of empty network")
	}
}
