package check

// Failure-combination analysis — the paper's concluding direction: "Our
// work therefore opens up interesting new research directions, including
// testing scenarios under different combinations of failures, which have
// been shown to be effective for distributed systems" (§6).
//
// Because Delta-net keeps every packet's flows in the edge labels, the
// impact of failing a SET of links is computable without touching the
// engine: the affected packets are the union of the failed links' labels,
// and connectivity loss is evaluated by re-running the reachability
// fixpoint with those links masked out.

import (
	"deltanet/internal/bitset"
	"deltanet/internal/core"
	"deltanet/internal/netgraph"
)

// FailureImpact summarizes one failure combination.
type FailureImpact struct {
	Failed   []netgraph.LinkID
	Affected *bitset.Set // atoms whose current path uses a failed link
	// Stranded are the atoms that, from the probe source, could reach
	// the probe destination before the failure but cannot after it
	// (empty when the network reroutes everything or no probe given).
	Stranded *bitset.Set
}

// ReachableAvoiding is Reachable with a set of links masked out: the
// data plane is evaluated as if the rules on those links vanished and no
// rerouting happened — the instant after the failure, before the
// controller reacts.
func ReachableAvoiding(n *core.Network, from, to netgraph.NodeID, failed map[netgraph.LinkID]bool) *bitset.Set {
	sc := GetScratch()
	defer PutScratch(sc)
	return cloneAt(fixpoint{avoid: netgraph.NoNode, failed: failed}.run(n, from, sc), to)
}

// AnalyzeFailure computes the impact of failing a combination of links.
// If probeFrom/probeTo are valid nodes, Stranded reports the traffic that
// loses from→to connectivity.
func AnalyzeFailure(n *core.Network, failed []netgraph.LinkID, probeFrom, probeTo netgraph.NodeID) FailureImpact {
	affected := bitset.New(n.MaxAtomID())
	mask := map[netgraph.LinkID]bool{}
	for _, l := range failed {
		affected.UnionWith(n.Label(l))
		mask[l] = true
	}
	imp := FailureImpact{Failed: failed, Affected: affected, Stranded: bitset.New(0)}
	if probeFrom != netgraph.NoNode && probeTo != netgraph.NoNode {
		before := Reachable(n, probeFrom, probeTo)
		after := ReachableAvoiding(n, probeFrom, probeTo, mask)
		imp.Stranded = bitset.Difference(before, after)
	}
	return imp
}

// SweepDoubleFailures evaluates every pair from the candidate links and
// returns the pairs ranked by affected-traffic size (largest first),
// capped at topK (0 = all). This is the pre-deployment "which two
// simultaneous failures hurt most" question; on Delta-net it needs only
// label unions, no per-class graph construction.
func SweepDoubleFailures(n *core.Network, candidates []netgraph.LinkID, probeFrom, probeTo netgraph.NodeID, topK int) []FailureImpact {
	var out []FailureImpact
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			imp := AnalyzeFailure(n, []netgraph.LinkID{candidates[i], candidates[j]}, probeFrom, probeTo)
			out = append(out, imp)
		}
	}
	// Selection sort of the top-K by affected size (K is small; the
	// candidate set dominates cost anyway).
	for i := 0; i < len(out); i++ {
		maxAt := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Affected.Len() > out[maxAt].Affected.Len() {
				maxAt = j
			}
		}
		out[i], out[maxAt] = out[maxAt], out[i]
		if topK > 0 && i+1 >= topK {
			out = out[:i+1]
			break
		}
	}
	return out
}
