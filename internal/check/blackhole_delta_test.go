package check

import (
	"testing"

	"deltanet/internal/core"
	"deltanet/internal/netgraph"
)

// TestFindBlackHolesDeltaMatchesFull drives a small update sequence and
// asserts that the incremental check over each update's delta reports
// exactly the black holes the full scan attributes to the touched nodes.
func TestFindBlackHolesDeltaMatchesFull(t *testing.T) {
	g := netgraph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab := g.AddLink(a, b)
	bc := g.AddLink(b, c)
	n := core.NewNetwork(g, core.Options{})
	sinks := map[netgraph.NodeID]bool{c: true}

	// a forwards [0:100) to b; b has no rules: the Added entries deliver
	// atoms to b, which the incremental check must flag.
	d := mustInsert(t, n, core.Rule{ID: 1, Source: a, Link: ab, Match: iv(0, 100), Priority: 1})
	holes := FindBlackHolesDelta(n, d, sinks)
	if len(holes) != 1 || holes[0].Node != b {
		t.Fatalf("after insert at a: %+v", holes)
	}
	if !holes[0].Atoms.Contains(int(n.AtomOf(50))) {
		t.Fatalf("hole atoms wrong: %v", holes[0].Atoms)
	}

	// b forwards [0:100) on: the hole closes; no new holes (c is a sink).
	d = mustInsert(t, n, core.Rule{ID: 2, Source: b, Link: bc, Match: iv(0, 100), Priority: 1})
	if holes := FindBlackHolesDelta(n, d, sinks); len(holes) != 0 {
		t.Fatalf("after covering rule: %+v", holes)
	}

	// Removing b's rule re-opens the hole: the Removed entries name b as
	// the node that stopped handling still-arriving atoms.
	d, err := n.RemoveRule(2)
	if err != nil {
		t.Fatal(err)
	}
	holes = FindBlackHolesDelta(n, d, sinks)
	if len(holes) != 1 || holes[0].Node != b {
		t.Fatalf("after removal: %+v", holes)
	}

	// Full-scan agreement at the end state.
	full := FindBlackHoles(n, sinks)
	if len(full) != 1 || full[0].Node != b || !full[0].Atoms.Equal(holes[0].Atoms) {
		t.Fatalf("incremental %+v, full %+v", holes, full)
	}
}

// TestFindBlackHolesDeltaBatch: one merged batch delta yields one check
// whose result matches the full scan, and an explicit drop is not a hole.
func TestFindBlackHolesDeltaBatch(t *testing.T) {
	g := netgraph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab := g.AddLink(a, b)
	bc := g.AddLink(b, c)
	n := core.NewNetwork(g, core.Options{})
	sinks := map[netgraph.NodeID]bool{c: true}

	var d core.Delta
	err := n.ApplyBatch([]core.BatchOp{
		core.InsertOp(core.Rule{ID: 1, Source: a, Link: ab, Match: iv(0, 100), Priority: 1}),
		core.InsertOp(core.Rule{ID: 2, Source: b, Link: bc, Match: iv(0, 50), Priority: 1}),
		core.InsertOp(core.Rule{ID: 3, Source: b, Link: netgraph.NoLink, Match: iv(50, 80), Priority: 1}),
	}, &d, 0)
	if err != nil {
		t.Fatal(err)
	}
	holes := FindBlackHolesDelta(n, &d, sinks)
	// [80:100) arrives at b unhandled; [50:80) is explicitly dropped.
	if len(holes) != 1 || holes[0].Node != b {
		t.Fatalf("batch holes: %+v", holes)
	}
	if !holes[0].Atoms.Contains(int(n.AtomOf(90))) || holes[0].Atoms.Contains(int(n.AtomOf(60))) {
		t.Fatalf("batch hole atoms wrong: %v", holes[0].Atoms)
	}
	full := FindBlackHoles(n, sinks)
	if len(full) != 1 || !full[0].Atoms.Equal(holes[0].Atoms) {
		t.Fatalf("incremental %+v, full %+v", holes, full)
	}
	if FindBlackHolesDelta(n, &core.Delta{}, sinks) != nil {
		t.Fatal("empty delta must report nothing")
	}
}
