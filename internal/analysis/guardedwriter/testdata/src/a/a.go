// Package a is the guardedwriter analyzer's flagged fixture: a package
// that declares a guarded writer and then routes around it, or discards
// write errors, in every way the server's history has seen.
package a

import (
	"bufio"
	"fmt"
	"io"
	"net"
)

// writer is the guarded per-connection writer.
//
//deltanet:connwriter
type writer struct {
	w *bufio.Writer
}

func newWriter(c net.Conn) *writer {
	return &writer{w: bufio.NewWriter(c)}
}

// line is the disciplined path: errors checked, flush error returned.
func (wr *writer) line(s string) error {
	if _, err := fmt.Fprintln(wr.w, s); err != nil {
		return err
	}
	return wr.w.Flush()
}

// sloppy discards write errors inside the guarded writer itself.
func (wr *writer) sloppy(s string) {
	fmt.Fprintln(wr.w, s) // want `error from conn write fmt\.Fprintln is unchecked`
	wr.w.Flush()          // want `error from conn write wr\.w\.Flush is unchecked`
}

// direct writes to the connection without going through the writer.
func direct(c net.Conn) {
	fmt.Fprintf(c, "hi\n")                          // want `fmt\.Fprintf writes to a conn-backed destination, bypassing the guarded writer \(writer\)`
	if _, err := c.Write([]byte("x")); err != nil { // want `c\.Write writes to a conn-backed destination`
		_ = err
	}
}

// wrapped launders the connection through a fresh bufio.Writer; the
// taint tracking still sees a conn-backed destination.
func wrapped(c net.Conn) {
	bw := bufio.NewWriter(c)
	bw.WriteString("x")     // want `bw\.WriteString writes to a conn-backed destination`
	io.WriteString(bw, "y") // want `io\.WriteString writes to a conn-backed destination`
	bw.Flush()              // want `bw\.Flush writes to a conn-backed destination`
}

// callers must consume the guarded writer's error.
func callers(wr *writer) {
	wr.line("dropped")     // want `error from writer\.line is discarded`
	_ = wr.line("blanked") // want `error from writer\.line is discarded`
	if err := wr.line("checked"); err != nil {
		_ = err
	}
}

// deferred write errors are still discarded errors.
func deferred(c net.Conn) {
	defer c.Write([]byte("bye")) // want `c\.Write writes to a conn-backed destination`
	_ = c
}

// notConn writes to a plain buffer; nothing conn-backed, nothing flagged.
func notConn(w io.Writer) {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "fine")
	bw.Flush()
}
