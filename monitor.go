package deltanet

import "deltanet/internal/monitor"

// This file exposes the incremental invariant monitor: standing queries
// that are re-checked per delta rather than recomputed from scratch.
// Register invariants on Checker.Monitor(); every subsequent InsertRule,
// RemoveRule or ApplyBatch marks the invariants whose dependency sets
// intersect the update's changed labels as dirty, re-evaluates only
// those, and reports Violation/Cleared transitions in Report.Events and
// to subscribers.

type (
	// Monitor maintains standing invariants over the checker's network.
	Monitor = monitor.Monitor
	// Invariant is a standing property the monitor keeps checked; build
	// one with the Watch* constructors.
	Invariant = monitor.Spec
	// InvariantID identifies a registered invariant.
	InvariantID = monitor.ID
	// InvariantStatus is a cached verdict: InvariantHolds or
	// InvariantViolated.
	InvariantStatus = monitor.Status
	// MonitorEvent is one verdict transition (violation or clearing).
	MonitorEvent = monitor.Event
	// MonitorStats summarizes the monitor's incremental work.
	MonitorStats = monitor.Stats
	// MonitorSubscription delivers events to one consumer; see
	// Monitor.Subscribe.
	MonitorSubscription = monitor.Subscription
	// BurstConfig configures the monitor's coalescing burst mode; install
	// it with WithBurst (or Monitor.SetBurst at runtime) and flush
	// explicitly with Monitor.Flush.
	BurstConfig = monitor.BurstConfig
)

// Re-exported verdict and transition constants.
const (
	InvariantHolds    = monitor.Holds
	InvariantViolated = monitor.Violated
	MonitorViolation  = monitor.Violation
	MonitorCleared    = monitor.Cleared
)

// WatchReachable asserts that at least one packet can flow from one
// switch to another.
func WatchReachable(from, to SwitchID) Invariant {
	return monitor.Reachable{From: from, To: to}
}

// WatchWaypoint asserts that every packet flowing between two switches
// traverses the waypoint.
func WatchWaypoint(from, to, via SwitchID) Invariant {
	return monitor.Waypoint{From: from, To: to, Via: via}
}

// WatchIsolated asserts that no packet can flow from any switch in
// groupA to any switch in groupB.
func WatchIsolated(groupA, groupB []SwitchID) Invariant {
	return monitor.Isolated{GroupA: groupA, GroupB: groupB}
}

// WatchLoopFree asserts that the data plane contains no forwarding
// loops.
func WatchLoopFree() Invariant { return monitor.LoopFree{} }

// WatchBlackHoleFree asserts that no switch silently discards traffic it
// receives; sinks lists switches that legitimately terminate flows.
func WatchBlackHoleFree(sinks map[SwitchID]bool) Invariant {
	return monitor.BlackHoleFree{Sinks: sinks}
}

// Monitor returns the checker's standing-invariant monitor, creating it
// on first use (with the checker's BatchWorkers as its evaluation
// fan-out, and any WithBurst configuration installed). Once any invariant
// is registered, every update's Report (and BatchReport) carries the
// verdict transitions it caused in Events — except while a burst is
// pending, when transitions surface at the flush instead.
func (c *Checker) Monitor() *Monitor {
	if c.monitor == nil {
		c.monitor = monitor.New(c.net, c.BatchWorkers)
		c.monitor.SetBurst(c.burst)
	}
	return c.monitor
}
