package intervalmap

import (
	"math/rand"
	"testing"

	"deltanet/internal/ipnet"
)

func BenchmarkCreateAtoms(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := New(ipnet.IPv4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(rng.Intn(1 << 28))
		m.CreateAtoms(ipnet.Interval{Lo: lo, Hi: lo + 1 + uint64(rng.Intn(1<<20))})
	}
}

func BenchmarkAtomsExpansion(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := New(ipnet.IPv4)
	ivs := make([]ipnet.Interval, 10000)
	for i := range ivs {
		lo := uint64(rng.Intn(1 << 28))
		ivs[i] = ipnet.Interval{Lo: lo, Hi: lo + 1 + uint64(rng.Intn(1<<20))}
		m.CreateAtoms(ivs[i])
	}
	buf := make([]AtomID, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.Atoms(ivs[i%len(ivs)], buf[:0])
	}
}

func BenchmarkAtomOf(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := New(ipnet.IPv4)
	for i := 0; i < 50000; i++ {
		lo := uint64(rng.Intn(1 << 28))
		m.CreateAtoms(ipnet.Interval{Lo: lo, Hi: lo + 1 + uint64(rng.Intn(1<<16))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AtomOf(uint64(i) & (1<<28 - 1))
	}
}

func BenchmarkSplitAndRelease(b *testing.B) {
	m := New(ipnet.IPv4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bound := uint64(i&0xFFFF)*64 + 32
		m.CreateAtoms(ipnet.Interval{Lo: bound, Hi: bound + 16})
		m.ReleaseBound(bound)
		m.ReleaseBound(bound + 16)
	}
}
