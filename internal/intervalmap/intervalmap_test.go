package intervalmap

import (
	"math/rand"
	"testing"

	"deltanet/internal/ipnet"
)

func iv(lo, hi uint64) ipnet.Interval { return ipnet.Interval{Lo: lo, Hi: hi} }

func TestInitialState(t *testing.T) {
	m := New(ipnet.IPv4)
	if m.NumAtoms() != 1 {
		t.Fatalf("NumAtoms=%d want 1", m.NumAtoms())
	}
	if m.MaxID() != 1 {
		t.Fatalf("MaxID=%d want 1", m.MaxID())
	}
	// The single atom covers the whole space.
	full, ok := m.IntervalOf(0)
	if !ok || full != iv(0, 1<<32) {
		t.Fatalf("atom 0 = %v, %v", full, ok)
	}
	if m.AtomOf(0) != 0 || m.AtomOf(1<<32-1) != 0 {
		t.Fatal("AtomOf initial space")
	}
}

// TestPaperFigure5And6 reproduces §3.1: inserting rH=[10:12) then rL=[0:16)
// yields atoms α0=[0:10), α1=[10:12), α2=[12:16), α3=[16:MAX) — four atoms,
// five keys (Figure 6 without the later rM split).
func TestPaperFigure5And6(t *testing.T) {
	m := New(ipnet.IPv4)
	d1 := m.CreateAtoms(iv(10, 12)) // rH
	if len(d1) != 2 {
		t.Fatalf("rH delta len=%d want 2", len(d1))
	}
	d2 := m.CreateAtoms(iv(0, 16)) // rL: lower bound 0 already exists
	if len(d2) != 1 {
		t.Fatalf("rL delta len=%d want 1", len(d2))
	}
	if m.NumAtoms() != 4 {
		t.Fatalf("NumAtoms=%d want 4", m.NumAtoms())
	}
	// Check the partition intervals.
	wantBounds := []uint64{0, 10, 12, 16, 1 << 32}
	bounds := m.Bounds()
	if len(bounds) != len(wantBounds) {
		t.Fatalf("bounds=%v", bounds)
	}
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] {
			t.Fatalf("bounds=%v want %v", bounds, wantBounds)
		}
	}
	// ⟦interval(rH)⟧ is a single atom; ⟦interval(rL)⟧ is three atoms.
	if got := m.Atoms(iv(10, 12), nil); len(got) != 1 {
		t.Fatalf("rH atoms=%v", got)
	}
	if got := m.Atoms(iv(0, 16), nil); len(got) != 3 {
		t.Fatalf("rL atoms=%v", got)
	}
}

// TestPaperRMSplit continues the worked example (§3.2.1): inserting
// rM=[8:12) into the Figure 6 tree splits [0:10) and returns exactly the
// delta-pair α0 ↦ α4.
func TestPaperRMSplit(t *testing.T) {
	m := New(ipnet.IPv4)
	m.CreateAtoms(iv(10, 12))
	m.CreateAtoms(iv(0, 16))
	alpha0 := m.AtomOf(0)
	delta := m.CreateAtoms(iv(8, 12))
	if len(delta) != 1 {
		t.Fatalf("delta=%v want 1 pair", delta)
	}
	if delta[0].Old != alpha0 {
		t.Fatalf("split old=%d want α0=%d", delta[0].Old, alpha0)
	}
	// α0 now denotes [0:8), the new atom denotes [8:10).
	if got, _ := m.IntervalOf(alpha0); got != iv(0, 8) {
		t.Fatalf("α0 interval=%v", got)
	}
	if got, _ := m.IntervalOf(delta[0].New); got != iv(8, 10) {
		t.Fatalf("new atom interval=%v", got)
	}
	// rM's interval is two atoms: [8:10) and [10:12).
	if got := m.Atoms(iv(8, 12), nil); len(got) != 2 {
		t.Fatalf("rM atoms=%v", got)
	}
}

func TestCreateAtomsIdempotent(t *testing.T) {
	m := New(ipnet.IPv4)
	m.CreateAtoms(iv(100, 200))
	if d := m.CreateAtoms(iv(100, 200)); len(d) != 0 {
		t.Fatalf("repeat CreateAtoms delta=%v", d)
	}
	if m.NumAtoms() != 3 {
		t.Fatalf("NumAtoms=%d", m.NumAtoms())
	}
}

func TestSameLowerBoundDifferentLength(t *testing.T) {
	// §3.1: "IP prefixes such as 1.2.0.0/16 and 1.2.0.0/24 ... together
	// yield only three and not four atoms."
	m := New(ipnet.IPv4)
	p16 := ipnet.MustParsePrefix("1.2.0.0/16").Interval()
	p24 := ipnet.MustParsePrefix("1.2.0.0/24").Interval()
	m.CreateAtoms(p16)
	m.CreateAtoms(p24)
	if m.NumAtoms() != 4 { // [0:lo), [lo:lo+2^8...), ... plus trailing
		// keys: 0, 1.2.0.0, 1.2.1.0, 1.3.0.0, MAX -> 4 atoms
		t.Fatalf("NumAtoms=%d want 4", m.NumAtoms())
	}
}

func TestAtomOf(t *testing.T) {
	m := New(ipnet.IPv4)
	m.CreateAtoms(iv(10, 20))
	a := m.AtomOf(5)
	b := m.AtomOf(10)
	c := m.AtomOf(19)
	d := m.AtomOf(20)
	if a == b || b != c || c == d {
		t.Fatalf("AtomOf boundaries: %d %d %d %d", a, b, c, d)
	}
}

func TestAtomsOverlapping(t *testing.T) {
	m := New(ipnet.IPv4)
	m.CreateAtoms(iv(10, 20))
	m.CreateAtoms(iv(30, 40))
	// Query with non-key bounds straddling several atoms.
	got := m.AtomsOverlapping(iv(15, 35), nil)
	// Atoms: [10:20), [20:30), [30:40) — all three overlap [15:35).
	if len(got) != 3 {
		t.Fatalf("overlapping atoms=%v", got)
	}
	if got := m.AtomsOverlapping(iv(5, 5), nil); len(got) != 0 {
		t.Fatalf("empty query returned %v", got)
	}
	// A query inside a single atom returns exactly it.
	got = m.AtomsOverlapping(iv(21, 22), nil)
	if len(got) != 1 {
		t.Fatalf("single-atom query=%v", got)
	}
	// Query starting exactly at a key must not duplicate the atom.
	got = m.AtomsOverlapping(iv(10, 12), nil)
	if len(got) != 1 {
		t.Fatalf("key-aligned query=%v", got)
	}
	// Query reaching MAX must not include Infinity.
	got = m.AtomsOverlapping(iv(50, 1<<32), nil)
	for _, id := range got {
		if id == Infinity {
			t.Fatal("Infinity leaked into overlap query")
		}
	}
}

func TestReleaseBound(t *testing.T) {
	m := New(ipnet.IPv4)
	m.CreateAtoms(iv(10, 20))
	nAtoms := m.NumAtoms()
	id, ok := m.ReleaseBound(10)
	if !ok {
		t.Fatal("ReleaseBound(10) failed")
	}
	if m.NumAtoms() != nAtoms-1 {
		t.Fatalf("NumAtoms=%d", m.NumAtoms())
	}
	// The released id is recycled by the next allocation.
	d := m.CreateAtoms(iv(100, 200))
	found := false
	for _, p := range d {
		if p.New == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("released id %d not recycled in %v", id, d)
	}
	// MIN/MAX and non-keys cannot be released.
	if _, ok := m.ReleaseBound(0); ok {
		t.Fatal("released MIN")
	}
	if _, ok := m.ReleaseBound(1 << 32); ok {
		t.Fatal("released MAX")
	}
	if _, ok := m.ReleaseBound(12345); ok {
		t.Fatal("released non-key")
	}
}

func TestForEachAtomPartition(t *testing.T) {
	m := New(ipnet.IPv4)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		lo := uint64(rng.Intn(1 << 20))
		hi := lo + 1 + uint64(rng.Intn(1<<20))
		m.CreateAtoms(iv(lo, hi))
	}
	// The atoms tile [0, MAX) exactly, with distinct ids.
	var pos uint64
	seen := map[AtomID]bool{}
	count := 0
	m.ForEachAtom(func(id AtomID, in ipnet.Interval) bool {
		if in.Lo != pos {
			t.Fatalf("gap at %d", pos)
		}
		if in.Empty() {
			t.Fatalf("empty atom %d", id)
		}
		if seen[id] {
			t.Fatalf("duplicate atom id %d", id)
		}
		seen[id] = true
		pos = in.Hi
		count++
		return true
	})
	if pos != 1<<32 {
		t.Fatalf("partition ends at %d", pos)
	}
	if count != m.NumAtoms() {
		t.Fatalf("ForEachAtom count=%d NumAtoms=%d", count, m.NumAtoms())
	}
}

// TestOrderIndependence checks §3.1's invariant: "the set of generated atoms
// at the end is invariant under the order in which CREATE_ATOMS is called."
func TestOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ivs := make([]ipnet.Interval, 50)
	for i := range ivs {
		lo := uint64(rng.Intn(1000))
		ivs[i] = iv(lo, lo+1+uint64(rng.Intn(1000)))
	}
	build := func(order []int) []uint64 {
		m := New(ipnet.IPv4)
		for _, j := range order {
			m.CreateAtoms(ivs[j])
		}
		return m.Bounds()
	}
	base := build(rng.Perm(len(ivs)))
	for trial := 0; trial < 5; trial++ {
		got := build(rng.Perm(len(ivs)))
		if len(got) != len(base) {
			t.Fatalf("bound count differs: %d vs %d", len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("bounds differ at %d", i)
			}
		}
	}
}

func TestAtomsAscendingOrder(t *testing.T) {
	m := New(ipnet.IPv4)
	m.CreateAtoms(iv(0, 1000))
	m.CreateAtoms(iv(100, 900))
	m.CreateAtoms(iv(200, 800))
	ids := m.Atoms(iv(0, 1000), nil)
	if len(ids) != 5 {
		t.Fatalf("atoms=%v", ids)
	}
	var pos uint64
	for _, id := range ids {
		in, ok := m.IntervalOf(id)
		if !ok {
			t.Fatalf("no interval for %d", id)
		}
		if in.Lo < pos {
			t.Fatal("atoms not in ascending order")
		}
		pos = in.Hi
	}
}

func TestDeltaCap(t *testing.T) {
	// |Δ| ≤ 2 always (§3.2.1).
	m := New(ipnet.IPv4)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		lo := uint64(rng.Intn(1 << 16))
		d := m.CreateAtoms(iv(lo, lo+1+uint64(rng.Intn(1<<16))))
		if len(d) > 2 {
			t.Fatalf("delta len=%d", len(d))
		}
	}
}

func TestHasBound(t *testing.T) {
	m := New(ipnet.IPv4)
	m.CreateAtoms(iv(7, 9))
	if !m.HasBound(7) || !m.HasBound(9) || m.HasBound(8) {
		t.Fatal("HasBound wrong")
	}
	if !m.HasBound(0) || !m.HasBound(1<<32) {
		t.Fatal("MIN/MAX should be bounds")
	}
}

func TestIntervalOfUnknown(t *testing.T) {
	m := New(ipnet.IPv4)
	if _, ok := m.IntervalOf(99); ok {
		t.Fatal("IntervalOf unknown id succeeded")
	}
	if _, ok := m.IntervalOf(Infinity); ok {
		t.Fatal("IntervalOf Infinity succeeded")
	}
}
