package monitor

// ApplyTrace is the monitor-side record of one delta-driven evaluation
// pass: which update range it covered, how big the coalesced delta was,
// and where its nanoseconds went (dirty-marking, evaluation fan-out,
// event publish). The server merges it with its own stage timings
// (parse, lock wait, engine apply) into the per-update trace ring behind
// the `trace` protocol command and the pipeline-stage histograms.
//
// It is passed by value and must stay free of pointers at any depth so
// retaining rings of traces adds no GC scan work.
//
//deltanet:pointerfree
type ApplyTrace struct {
	// FirstUpdate and LastUpdate delimit the inclusive update-seq range
	// whose (possibly coalesced) delta drove this pass; equal outside
	// burst mode.
	FirstUpdate uint64
	LastUpdate  uint64
	// Coalesced is the number of deltas merged into the pass (1 outside
	// burst mode).
	Coalesced int
	// Links is the number of links with label changes; Added and Removed
	// are the delta's label-change counts.
	Links   int
	Added   int
	Removed int
	// Dirtied is how many invariants the pass re-evaluated as
	// candidates; Evaluated how many actually ran (dead ones drop out);
	// Skipped and RangeSkipped count invariants the dependency index and
	// the atom-range refinement spared, respectively.
	Dirtied      int
	Evaluated    int
	Skipped      int
	RangeSkipped int
	// Events is the number of verdict transitions the pass emitted.
	Events int
	// Per-stage wall time in nanoseconds: dirty-marking (index walk +
	// structural dirty tests), evaluation fan-out (RunSharded +
	// re-indexing), and event build + publish under eventMu.
	DirtyNs   int64
	EvalNs    int64
	PublishNs int64
}

// SetTraceSink installs fn to receive an ApplyTrace after every
// delta-driven evaluation pass (Apply/ApplyWithLoops outside burst mode,
// and burst flushes; RecheckAll is an audit, not an update, and is not
// traced). fn runs synchronously under the apply lock, so it must be
// fast and must not call back into the monitor; nil uninstalls. With no
// sink installed the monitor takes no timestamps — tracing costs nothing
// when off.
func (m *Monitor) SetTraceSink(fn func(ApplyTrace)) {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	m.traceSink = fn
}

// UpdateSeq returns the engine update sequence number of the most
// recently consumed delta (0 before any).
func (m *Monitor) UpdateSeq() uint64 {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	return m.updSeq
}

// NumSubscribers returns the current number of event subscriptions.
func (m *Monitor) NumSubscribers() int {
	m.eventMu.Lock()
	defer m.eventMu.Unlock()
	return len(m.subs)
}

// BacklogLen returns the number of events currently retained in the
// replay backlog ring (≤ Backlog()).
func (m *Monitor) BacklogLen() int {
	m.eventMu.Lock()
	defer m.eventMu.Unlock()
	return m.backlogLen
}
