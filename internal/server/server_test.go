package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
)

// startServer returns a running server, its address, and a cleanup func.
func startServer(t *testing.T) (*Server, string, func()) {
	t.Helper()
	s := New(core.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	cleanup := func() {
		if err := s.Close(); err != nil && !strings.Contains(err.Error(), "use of closed") {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	return s, l.Addr().String(), cleanup
}

// client is a tiny synchronous protocol client for tests.
type client struct {
	conn net.Conn
	r    *bufio.Scanner
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &client{conn: conn, r: bufio.NewScanner(conn)}
}

func (c *client) roundTrip(t *testing.T, req string) string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, req); err != nil {
		t.Fatal(err)
	}
	if !c.r.Scan() {
		t.Fatalf("no response to %q: %v", req, c.r.Err())
	}
	return c.r.Text()
}

func (c *client) close() { c.conn.Close() }

func TestProtocolSession(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()

	if got := c.roundTrip(t, "node s1"); got != "ok node 0" {
		t.Fatalf("node: %q", got)
	}
	if got := c.roundTrip(t, "node s2"); got != "ok node 1" {
		t.Fatalf("node: %q", got)
	}
	if got := c.roundTrip(t, "link 0 1"); got != "ok link 0" {
		t.Fatalf("link: %q", got)
	}
	if got := c.roundTrip(t, "I 1 0 0 0 1000 10"); !strings.HasPrefix(got, "ok atoms=") {
		t.Fatalf("insert: %q", got)
	}
	if got := c.roundTrip(t, "stats"); got != "ok stats rules=1 atoms=2 links=1" {
		t.Fatalf("stats: %q", got)
	}
	if got := c.roundTrip(t, "reach 0 1"); got != "ok reach 1" {
		t.Fatalf("reach: %q", got)
	}
	if got := c.roundTrip(t, "whatif 0"); !strings.HasPrefix(got, "ok whatif atoms=1") {
		t.Fatalf("whatif: %q", got)
	}
	if got := c.roundTrip(t, "R 1"); !strings.HasPrefix(got, "ok atoms=") {
		t.Fatalf("remove: %q", got)
	}
	if got := c.roundTrip(t, "stats"); got != "ok stats rules=0 atoms=2 links=1" {
		t.Fatalf("stats after remove: %q", got)
	}
}

func TestLoopReportedOverWire(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "link 0 1") // link 0: a->b
	c.roundTrip(t, "link 1 0") // link 1: b->a
	if got := c.roundTrip(t, "I 1 0 0 0 100 1"); !strings.Contains(got, "loops=0") {
		t.Fatalf("first insert: %q", got)
	}
	got := c.roundTrip(t, "I 2 1 1 0 100 1")
	if !strings.Contains(got, "loops=1") || !strings.Contains(got, "loop 0:100") {
		t.Fatalf("loop not reported: %q", got)
	}
}

func TestProtocolErrors(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	cases := []string{
		"bogus",
		"node",
		"link 0 1",       // nodes don't exist yet
		"I 1 9 0 0 10 1", // unknown node
		"I 1",            // arity
		"I x 0 0 0 10 1", // non-numeric
		"R",              // arity
		"R x",            // non-numeric
		"R 42",           // unknown rule
		"reach 0",        // arity
		"whatif 99",      // unknown link
	}
	for _, req := range cases {
		if got := c.roundTrip(t, req); !strings.HasPrefix(got, "err") {
			t.Fatalf("%q -> %q, want err", req, got)
		}
	}
	// The connection survives all errors.
	if got := c.roundTrip(t, "stats"); !strings.HasPrefix(got, "ok stats") {
		t.Fatalf("stats after errors: %q", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()

	// Topology set up by one client.
	setup := dial(t, addr)
	setup.roundTrip(t, "node hub")
	for i := 1; i <= 4; i++ {
		setup.roundTrip(t, fmt.Sprintf("node n%d", i))
		setup.roundTrip(t, fmt.Sprintf("link 0 %d", i))
	}
	setup.close()

	// Several clients insert disjoint rule ranges concurrently.
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dial(t, addr)
			defer c.close()
			for i := 0; i < 50; i++ {
				id := w*1000 + i
				lo := uint64(w)<<24 | uint64(i)<<8
				req := fmt.Sprintf("I %d 0 %d %d %d %d", id, w, lo, lo+256, i)
				if _, err := fmt.Fprintln(c.conn, req); err != nil {
					errs <- err.Error()
					return
				}
				if !c.r.Scan() {
					errs <- "no response"
					return
				}
				if resp := c.r.Text(); !strings.HasPrefix(resp, "ok") {
					errs <- resp
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	final := dial(t, addr)
	defer final.close()
	got := final.roundTrip(t, "stats")
	if !strings.Contains(got, "rules=200") {
		t.Fatalf("final stats: %q", got)
	}
}

// sendBatch writes a "B <n>" request with the given lines and returns the
// single response line.
func (c *client) sendBatch(t *testing.T, lines []string) string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "B %d\n%s\n", len(lines), strings.Join(lines, "\n")); err != nil {
		t.Fatal(err)
	}
	if !c.r.Scan() {
		t.Fatalf("no batch response: %v", c.r.Err())
	}
	return c.r.Text()
}

func TestBatchCommand(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()

	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "link 0 1") // link 0: a->b
	c.roundTrip(t, "link 1 0") // link 1: b->a

	// A batch that closes a loop reports it once, on one line.
	got := c.sendBatch(t, []string{
		"I 1 0 0 0 100 1",
		"I 2 1 1 0 100 1",
	})
	if !strings.HasPrefix(got, "ok batch n=2") || !strings.Contains(got, "loops=1") ||
		!strings.Contains(got, "loop 0:100") {
		t.Fatalf("batch response: %q", got)
	}
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "rules=2") {
		t.Fatalf("stats after batch: %q", got)
	}

	// Mixed insert/remove batch, including an intra-batch insert+remove.
	got = c.sendBatch(t, []string{
		"R 2",
		"I 3 0 0 200 300 1",
		"R 3",
	})
	if !strings.HasPrefix(got, "ok batch n=3") || !strings.Contains(got, "loops=0") {
		t.Fatalf("mixed batch response: %q", got)
	}
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "rules=1") {
		t.Fatalf("stats after mixed batch: %q", got)
	}
}

func TestBatchAtomicityOverWire(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "link 0 1")

	// Second line removes an unknown rule: nothing must be applied.
	got := c.sendBatch(t, []string{"I 1 0 0 0 100 1", "R 99"})
	if !strings.HasPrefix(got, "err") {
		t.Fatalf("bad batch accepted: %q", got)
	}
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "rules=0") {
		t.Fatalf("batch partially applied: %q", got)
	}

	// Parse errors name the offending line and also apply nothing.
	got = c.sendBatch(t, []string{"I 1 0 0 0 100 1", "bogus line here"})
	if !strings.HasPrefix(got, "err batch line 2") {
		t.Fatalf("parse error: %q", got)
	}
	if got := c.sendBatch(t, []string{"I 1 9 0 0 100 1"}); !strings.HasPrefix(got, "err batch line 1") {
		t.Fatalf("unknown node in batch: %q", got)
	}
	// A bad batch header leaves the body undelimited, so the server must
	// answer err and close the connection rather than risk executing body
	// lines as individual commands.
	for _, req := range []string{"B", "B 0", "B -3", "B x", "B 9999999"} {
		bad := dial(t, addr)
		if got := bad.roundTrip(t, req); !strings.HasPrefix(got, "err") {
			t.Fatalf("%q -> %q, want err", req, got)
		}
		// Anything sent after the bad header must not execute: the
		// connection is closed, not resynced.
		fmt.Fprintln(bad.conn, "I 7 0 0 0 100 1")
		if bad.r.Scan() {
			t.Fatalf("%q: connection stayed open: %q", req, bad.r.Text())
		}
		bad.close()
	}
	// The original connection (which never sent a bad header) still works,
	// and the stray I line above was never applied.
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "rules=0") {
		t.Fatalf("stats after errors: %q", got)
	}
}

// TestBatchBodySizeCap: a batch body larger than the aggregate byte cap is
// rejected and the connection closed, bounding what one client can make
// the server buffer.
func TestBatchBodySizeCap(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()

	fmt.Fprintln(c.conn, "B 10")
	junk := strings.Repeat("x", 512<<10)
	for i := 0; i < 9; i++ {
		if _, err := fmt.Fprintln(c.conn, junk); err != nil {
			break // server may already have hung up; the response check below decides
		}
	}
	if !c.r.Scan() {
		t.Fatalf("no response: %v", c.r.Err())
	}
	if got := c.r.Text(); !strings.Contains(got, "exceeds") {
		t.Fatalf("oversized body: %q", got)
	}
	if c.r.Scan() {
		t.Fatalf("connection stayed open: %q", c.r.Text())
	}
}

// TestCloseIdempotent: a second Close must not panic and must return nil
// (regression: it used to re-close the shutdown channel).
func TestCloseIdempotent(t *testing.T) {
	s := New(core.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	if err := s.Close(); err != nil && !strings.Contains(err.Error(), "use of closed") {
		t.Fatalf("first close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestConcurrentReaders: read-only requests from many connections proceed
// while mutations interleave; run under -race this also exercises the
// RWMutex split.
func TestConcurrentReaders(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	setup := dial(t, addr)
	setup.roundTrip(t, "node a")
	setup.roundTrip(t, "node b")
	setup.roundTrip(t, "link 0 1")
	setup.roundTrip(t, "I 1 0 0 0 1000 1")
	setup.close()

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dial(t, addr)
			defer c.close()
			for i := 0; i < 100; i++ {
				for _, req := range []string{"stats", "reach 0 1", "whatif 0"} {
					if _, err := fmt.Fprintln(c.conn, req); err != nil {
						errs <- err.Error()
						return
					}
					if !c.r.Scan() || !strings.HasPrefix(c.r.Text(), "ok") {
						errs <- "read request failed: " + c.r.Text()
						return
					}
				}
			}
		}()
	}
	writer := dial(t, addr)
	defer writer.close()
	for i := 2; i < 40; i++ {
		lo := uint64(i) * 100
		req := fmt.Sprintf("I %d 0 0 %d %d 1", i, lo, lo+50)
		if got := writer.roundTrip(t, req); !strings.HasPrefix(got, "ok") {
			t.Fatalf("writer: %q", got)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestQuitClosesConnection(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	fmt.Fprintln(c.conn, "quit")
	if c.r.Scan() {
		t.Fatalf("got response after quit: %q", c.r.Text())
	}
}

func TestPreloadedServer(t *testing.T) {
	s := New(core.Options{})
	a := s.Graph().AddNode("a")
	b := s.Graph().AddNode("b")
	l := s.Graph().AddLink(a, b)
	if err := s.Network().Restore([]core.Rule{{
		ID: 1, Source: a, Link: l,
		Match: ipnet.Interval{Lo: 0, Hi: 500}, Priority: 1,
	}}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()
	c := dial(t, ln.Addr().String())
	defer c.close()
	if got := c.roundTrip(t, "stats"); !strings.Contains(got, "rules=1") {
		t.Fatalf("preload missing: %q", got)
	}
}
