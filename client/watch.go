package client

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Watcher durability knobs: how many consecutive failed sessions are
// tolerated before Next gives up (backoff growing to watchBackoffMax —
// about half a minute of total downtime across a failover sweep), and
// how a session that streams at least one line resets the counter.
const (
	watchRetries    = 10
	watchBackoffMax = 3 * time.Second
)

// ErrWatcherClosed is returned by Next after Close.
var ErrWatcherClosed = fmt.Errorf("client: watcher closed")

// A Watcher is a durable standing-invariant event subscription: it
// registers the given specs, streams the server's status snapshot and
// verdict-transition events, and survives server restarts. When the
// connection drops it reconnects — rotating through every address in
// the list, so a replica set is one failover domain — re-registers its
// specs, and resumes with "watch since <seq>" from the last event
// sequence number it saw; the server replays the missed suffix, or
// sends an explicit gap line plus a fresh snapshot when its backlog no
// longer covers the gap.
//
// Event numbering is continuous across a primary's checkpoint/restart
// and identical on every replica (replicas replay the primary's
// journal), which is what makes the cursor meaningful across a
// failover: seq 41 names the same transition on every address in the
// list.
type Watcher struct {
	// Notify, when non-nil, receives session lifecycle messages:
	// registration responses, resume banners, reconnect notices. They
	// are human-readable, one line, not part of the event stream.
	Notify func(msg string)

	addrs []string
	specs []string

	mu       sync.Mutex
	c        *Client // nil between sessions
	closed   bool
	lastSeq  uint64
	streamed bool // current session delivered at least one line
	attempt  int  // consecutive failed sessions
	next     int  // address rotation cursor
}

// NewWatcher prepares a watcher over the given addresses (tried in
// order, rotating on failure) and invariant specs (the server's W
// grammar; empty means follow the invariants other clients registered).
// No connection is made until the first Next call.
func NewWatcher(addrs []string, specs ...string) *Watcher {
	return &Watcher{addrs: addrs, specs: specs}
}

// LastSeq returns the newest event sequence number seen — the cursor a
// resumed session continues from.
func (w *Watcher) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// Close ends the watch; a blocked Next returns ErrWatcherClosed.
func (w *Watcher) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	if w.c != nil {
		w.c.Close()
		w.c = nil
	}
	return nil
}

// Next blocks for the next stream line — status, event, or gap — and
// returns it. It connects lazily, reconnects with failover and resume
// on transport errors, and returns a terminal error only when every
// address has kept failing past the retry budget, a spec is refused by
// the server (not retryable), or the watcher is closed.
func (w *Watcher) Next() (string, error) {
	for {
		c, err := w.session()
		if err != nil {
			return "", err
		}
		if c == nil {
			continue // this attempt failed; session() counted it
		}
		line, err := c.ReadLine()
		if err == nil {
			w.mu.Lock()
			w.streamed = true
			if seq, ok := EventSeq(line); ok {
				// The newest event line IS the cursor — taken
				// unconditionally, not maxed, because a server restarted
				// from a state file starts a fresh stream at seq 1 and a
				// stale high cursor would pin every future resume to a gap.
				w.lastSeq = seq
			}
			w.mu.Unlock()
			return line, nil
		}
		if w.dropSession(err) {
			return "", ErrWatcherClosed
		}
	}
}

// session returns the live connection, establishing one if needed:
// rotate to the next address, register specs, enter watch mode (with a
// since-cursor when one exists). Dial or handshake failures count
// against the retry budget with backoff; a refused spec is fatal.
func (w *Watcher) session() (*Client, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrWatcherClosed
	}
	if w.c != nil {
		c := w.c
		w.mu.Unlock()
		return c, nil
	}
	if w.attempt >= watchRetries {
		w.mu.Unlock()
		return nil, fmt.Errorf("client: watch gave up after %d failed sessions across %s",
			watchRetries, strings.Join(w.addrs, ","))
	}
	if w.attempt > 0 {
		backoff := time.Duration(w.attempt) * 500 * time.Millisecond
		if backoff > watchBackoffMax {
			backoff = watchBackoffMax
		}
		w.mu.Unlock()
		time.Sleep(backoff)
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return nil, ErrWatcherClosed
		}
	}
	addr := w.addrs[w.next%len(w.addrs)]
	w.next++
	resume, since := w.lastSeq > 0, w.lastSeq
	w.mu.Unlock()

	c, err := w.handshake(addr, resume, since)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		if c != nil {
			c.Close()
		}
		return nil, ErrWatcherClosed
	}
	if err != nil {
		if _, fatal := err.(*ProtocolError); fatal {
			return nil, err // the server refused a spec; retrying cannot help
		}
		w.attempt++
		w.notify(fmt.Sprintf("watch: %s: %v; failing over (attempt %d/%d)",
			addr, err, w.attempt, watchRetries))
		return nil, nil // caller loops back into session()
	}
	w.c, w.streamed = c, false
	return c, nil
}

// handshake runs one session's setup on a fresh connection.
func (w *Watcher) handshake(addr string, resume bool, since uint64) (*Client, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	for _, spec := range w.specs {
		resp, err := c.Do("W " + spec)
		if err != nil {
			c.Close()
			return nil, err
		}
		w.notify(fmt.Sprintf("%s  (%s)", resp, spec))
	}
	req := "watch"
	if resume {
		// Resume only with a real cursor: "watch since 0" would replay
		// the server's entire pre-connection backlog as if those
		// historical transitions were new; a plain watch re-anchors on
		// the status snapshot instead.
		req = fmt.Sprintf("watch since %d", since)
	}
	resp, err := c.Do(req)
	if err != nil {
		c.Close()
		return nil, err
	}
	if resp != "ok watching" {
		c.Close()
		return nil, fmt.Errorf("client: %s: %q", req, resp)
	}
	if resume {
		w.notify(fmt.Sprintf("watching %s; resumed after seq %d", addr, since))
	} else {
		w.notify(fmt.Sprintf("watching %s; streaming transition events", addr))
	}
	return c, nil
}

// dropSession discards the connection after a stream error, resetting
// the retry budget when the dead session had streamed (the failure is
// fresh, not a repeat). Reports whether the watcher is closed.
func (w *Watcher) dropSession(err error) (closed bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.c != nil {
		w.c.Close()
		w.c = nil
	}
	if w.closed {
		return true
	}
	if w.streamed {
		w.attempt = 0
	}
	w.attempt++
	w.notify(fmt.Sprintf("watch: %v; reconnecting (attempt %d/%d)", err, w.attempt, watchRetries))
	return false
}

func (w *Watcher) notify(msg string) {
	if w.Notify != nil {
		w.Notify(msg)
	}
}

// EventSeq extracts the seq=<n> cursor from an event line; ok is false
// for status, gap, and anything else.
func EventSeq(line string) (seq uint64, ok bool) {
	if !strings.HasPrefix(line, "event ") {
		return 0, false
	}
	for _, f := range strings.Fields(line) {
		if rest, found := strings.CutPrefix(f, "seq="); found {
			v, err := strconv.ParseUint(rest, 10, 64)
			return v, err == nil
		}
	}
	return 0, false
}
