#!/usr/bin/env bash
# Ingestion smoke test: boot dnserve with the observability endpoint,
# replay a sustained BGP flap workload over the binary batch protocol
# (dnbench's remote ingest arm), and gate on a sustained updates/sec
# floor plus the ingest ring draining back to depth 0. A second server
# exercises the -feed replay path end to end: dnserve feeds itself the
# synthetic BGP churn through the same ring and must report every op
# applied.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:16655
ADMIN=127.0.0.1:16656
FEED_ADDR=127.0.0.1:16657
FEED_ADMIN=127.0.0.1:16658
# Sustained-rate floor (updates/s) for the binary replay. Local runs
# sustain >1M; the floor only has to catch a front end that has fallen
# off a cliff on a slow shared runner.
FLOOR=${INGEST_FLOOR:-50000}
DIR=$(mktemp -d /tmp/dn-ingest-smoke.XXXXXX)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/dnserve" ./cmd/dnserve
go build -o "$DIR/dnbench" ./cmd/dnbench

req() { # req <addr> <request...>: one request line over /dev/tcp
  local addr=$1; shift
  (
    exec 3<>"/dev/tcp/${addr%:*}/${addr#*:}" || exit 1
    printf '%s\nquit\n' "$*" >&3
    timeout 10 head -n 1 <&3
  )
}

wait_up() { # wait_up <addr>
  for i in $(seq 1 50); do
    if req "$1" stats >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "server at $1 never came up" >&2; exit 1
}

metric() { # metric <admin-addr> <name>: current value from /metrics
  curl -sf "http://$1/metrics" | awk -v m="$2" '$1==m {print $2}'
}

"$DIR/dnserve" -addr "$ADDR" -admin "$ADMIN" &
wait_up "$ADDR"

# Binary replay: dnbench creates the gateway topology and invariant
# battery remotely, streams the flap churn over 4 binary connections,
# and prints the sustained rate.
out=$("$DIR/dnbench" -addr "$ADDR" -scale 0.5 -conns 4 ingest)
echo "$out"
rate=$(grep -o '[0-9]*\.\?[0-9]* updates/s' <<<"$out" | awk '{print int($1)}')
[ -n "$rate" ] || { echo "could not parse a rate from dnbench output" >&2; exit 1; }
[ "$rate" -ge "$FLOOR" ] || { echo "sustained rate $rate updates/s below floor $FLOOR" >&2; exit 1; }

# The ring must have drained: dnbench's final sync barrier already
# waited for the applied count, so depth 0 is immediate, not eventual.
depth=$(metric "$ADMIN" dn_ingest_ring_depth)
[ "${depth%.*}" = "0" ] || { echo "ingest ring depth $depth after drain, want 0" >&2; exit 1; }
ops=$(metric "$ADMIN" dn_ingest_ops_total)
batches=$(metric "$ADMIN" dn_ingest_batches_total)
[ "${ops%.*}" -ge 32768 ] || { echo "only $ops ops through the ring" >&2; exit 1; }
[ "${batches%.*}" -ge 1 ] || { echo "no coalesced batches applied" >&2; exit 1; }

# Feed replay: the server generates and ingests its own BGP churn via
# -feed; the stream must clear the ring. 20000 BGP updates yield at
# least the ~12k announce inserts (withdrawals of never-announced
# prefixes emit nothing), so 10000 is a safe op floor.
"$DIR/dnserve" -addr "$FEED_ADDR" -admin "$FEED_ADMIN" -feed bgp:20000:7 &
wait_up "$FEED_ADDR"
fdepth=1 fops=0
for i in $(seq 1 100); do
  fdepth=$(metric "$FEED_ADMIN" dn_ingest_ring_depth || echo 1)
  fops=$(metric "$FEED_ADMIN" dn_ingest_ops_total || echo 0)
  fdepth=${fdepth:-1} fops=${fops:-0}
  if [ "${fdepth%.*}" = "0" ] && [ "${fops%.*}" -ge 10000 ]; then break; fi
  sleep 0.2
done
[ "${fops%.*}" -ge 10000 ] || { echo "feed replay pushed only $fops ops" >&2; exit 1; }
[ "${fdepth%.*}" = "0" ] || { echo "feed ring depth $fdepth never drained" >&2; exit 1; }

echo "ingest smoke OK: $rate updates/s sustained (floor $FLOOR), ring drained, feed replayed $fops ops"
