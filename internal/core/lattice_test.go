package core

// Appendix A of the paper illustrates that atoms induce a Boolean lattice:
// every Boolean combination of rule intervals is expressible as a union of
// atoms (Figure 9's Hasse diagram over the atoms of Figure 5). These tests
// verify the lattice structure computationally: closure of the
// atom-expressible sets under join (∪), meet (∩) and complement, and that
// every rule's interval is exactly representable — the property that makes
// checking "all Boolean combinations of IP prefix forwarding rules"
// possible without false alarms (§1, §3.1).

import (
	"math/rand"
	"testing"

	"deltanet/internal/bitset"
	"deltanet/internal/intervalmap"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// TestPaperFigure9Lattice reproduces Appendix A: with the atoms of
// Figure 5 (α0=[0:10), α1=[10:12), α2=[12:16) over a 4-bit space plus the
// implicit remainder), the sets expressible as atom unions form a Boolean
// lattice with ⊤ = the union of all, ⊥ = ∅.
func TestPaperFigure9Lattice(t *testing.T) {
	g := netgraph.New()
	s := g.AddNode("s")
	l := g.AddLink(s, g.AddNode("d"))
	n := NewNetwork(g, Options{})
	// Table 1's rules over the [0:16) sub-space.
	n.InsertRule(Rule{ID: 1, Source: s, Link: l, Match: iv(10, 12), Priority: 2}) // rH
	n.InsertRule(Rule{ID: 2, Source: s, Link: l, Match: iv(0, 16), Priority: 1})  // rL

	// The three atoms of Figure 5.
	alpha0 := n.AtomOf(0)
	alpha1 := n.AtomOf(10)
	alpha2 := n.AtomOf(12)
	if alpha0 == alpha1 || alpha1 == alpha2 || alpha0 == alpha2 {
		t.Fatal("atoms not distinct")
	}

	// Figure 9's middle layer: {[0:12)}, {[0:10),[12:16)}, {[10:16)}.
	set := func(ids ...intAtom) *bitset.Set {
		b := bitset.New(8)
		for _, id := range ids {
			b.Add(int(id))
		}
		return b
	}
	top := set(alpha0, alpha1, alpha2)
	m1 := set(alpha0, alpha1) // [0:12)
	m2 := set(alpha0, alpha2) // [0:10) ∪ [12:16)
	m3 := set(alpha1, alpha2) // [10:16)

	// Complement within ⊤: each middle element's complement is an atom.
	for _, c := range []struct {
		m    *bitset.Set
		want intAtom
	}{{m1, alpha2}, {m2, alpha1}, {m3, alpha0}} {
		comp := bitset.Difference(top, c.m)
		if comp.Len() != 1 || !comp.Contains(int(c.want)) {
			t.Fatalf("complement of %v = %v, want atom %d", c.m, comp, c.want)
		}
	}
	// Join of any two middle elements is ⊤; meet is a single atom.
	if !bitset.Union(m1, m2).Equal(top) || !bitset.Union(m2, m3).Equal(top) {
		t.Fatal("join of middle elements should be top")
	}
	if bitset.Intersect(m1, m3).Len() != 1 {
		t.Fatal("meet of m1 and m3 should be one atom")
	}
	// Rule intervals are exactly expressible: ⟦rH⟧ = {α1}, ⟦rL⟧ = top.
	rh := bitset.FromSlice(atomInts(n.AtomsOverlapping(iv(10, 12))))
	rl := bitset.FromSlice(atomInts(n.AtomsOverlapping(iv(0, 16))))
	if rh.Len() != 1 || !rh.Contains(int(alpha1)) {
		t.Fatalf("⟦rH⟧=%v", rh)
	}
	if !rl.Equal(top) {
		t.Fatalf("⟦rL⟧=%v", rl)
	}
	// ⟦rL⟧ − ⟦rH⟧ (the packets rL actually matches, §3.1's example).
	eff := bitset.Difference(rl, rh)
	if !eff.Equal(m2) {
		t.Fatalf("rL − rH = %v, want %v", eff, m2)
	}
}

type intAtom = intervalmap.AtomID

func atomInts(ids []intAtom) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// TestLatticeClosureProperty: for random rule sets, every Boolean
// combination of rule intervals is exactly a union of atoms — no
// combination ever cuts through an atom. (This is the precision guarantee
// that rules out false alarms.)
func TestLatticeClosureProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	g := netgraph.New()
	s := g.AddNode("s")
	l := g.AddLink(s, g.AddNode("d"))
	n := NewNetwork(g, Options{})
	var rules []Rule
	for i := 0; i < 40; i++ {
		lo := uint64(rng.Intn(5000))
		r := Rule{ID: RuleID(i + 1), Source: s, Link: l,
			Match: iv(lo, lo+1+uint64(rng.Intn(5000))), Priority: Priority(i)}
		rules = append(rules, r)
		if _, err := n.InsertRule(r); err != nil {
			t.Fatal(err)
		}
	}
	// Random Boolean combinations evaluated pointwise must be constant
	// within every atom.
	for trial := 0; trial < 50; trial++ {
		a := rules[rng.Intn(len(rules))].Match
		b := rules[rng.Intn(len(rules))].Match
		c := rules[rng.Intn(len(rules))].Match
		f := func(x uint64) bool {
			// (a ∧ ¬b) ∨ c — an arbitrary combination.
			return (a.Contains(x) && !b.Contains(x)) || c.Contains(x)
		}
		n.ForEachAtom(func(_ intAtom, in ipnet.Interval) bool {
			v0 := f(in.Lo)
			// Probe several points inside the atom.
			for k := 0; k < 4; k++ {
				x := in.Lo + uint64(rng.Int63n(int64(in.Size())))
				if f(x) != v0 {
					t.Fatalf("combination not constant on atom %v", in)
				}
			}
			return true
		})
	}
}
