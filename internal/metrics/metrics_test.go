package metrics

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.String()
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops.")
	g := r.Gauge("test_depth", "Depth.")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	out := render(t, r)
	for _, want := range []string{
		"# HELP test_ops_total Ops.\n",
		"# TYPE test_ops_total counter\n",
		"test_ops_total 5\n",
		"# TYPE test_depth gauge\n",
		"test_depth 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 5 || g.Value() != 5 {
		t.Errorf("Value: counter=%d gauge=%d", c.Value(), g.Value())
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("ValidateExposition: %v", err)
	}
}

func TestFuncMetricsReadAtScrapeTime(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.CounterFunc("test_fn_total", "Fn.", func() float64 { return v })
	r.GaugeFuncVec("test_shard", "Shards.", "shard", func() []VecSample {
		return []VecSample{{Label: "0", Value: v}, {Label: "1", Value: v + 1}}
	})
	if !strings.Contains(render(t, r), "test_fn_total 1\n") {
		t.Fatal("first scrape should read 1")
	}
	v = 9
	out := render(t, r)
	if !strings.Contains(out, "test_fn_total 9\n") {
		t.Fatal("second scrape should read the updated value")
	}
	if !strings.Contains(out, "test_shard{shard=\"1\"} 10\n") {
		t.Fatalf("vec sample missing:\n%s", out)
	}
}

func TestCounterVecSortedAndCached(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_cmds_total", "Cmds.", "verb")
	v.With("watch").Add(2)
	v.With("insert").Inc()
	if v.With("watch") != v.With("watch") {
		t.Fatal("With must return the same counter for the same label")
	}
	out := render(t, r)
	i, w := strings.Index(out, `verb="insert"`), strings.Index(out, `verb="watch"`)
	if i < 0 || w < 0 || i > w {
		t.Fatalf("vec samples missing or unsorted:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup", "x")
	mustPanic(t, "duplicate name", func() { r.Gauge("test_dup", "y") })
	mustPanic(t, "invalid name", func() { r.Counter("9starts_with_digit", "z") })
	mustPanic(t, "invalid char", func() { r.Counter("has-dash", "z") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

// TestHistogramBucketBoundaries pins the bucket layout: zero lands in
// the first bucket, an observation exactly on a bound le-includes into
// that bound's bucket, one past it spills to the next, anything past
// the last finite bound goes to +Inf only, and negatives clamp to zero.
func TestHistogramBucketBoundaries(t *testing.T) {
	top := bucketBoundNs(NumBuckets - 1)
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{-5, 0},               // clamps to zero
		{1000, 0},             // exactly the first bound
		{1001, 1},             // one past it
		{bucketBoundNs(7), 7}, // exact interior edge
		{bucketBoundNs(7) + 1, 8},
		{top, NumBuckets - 1}, // exactly the last finite bound
		{top + 1, NumBuckets}, // overflow → +Inf bucket
		{1 << 62, NumBuckets},
	}
	for _, c := range cases {
		var h Histogram
		h.ObserveNs(c.ns)
		for i := 0; i <= NumBuckets; i++ {
			want := uint64(0)
			if i == c.want {
				want = 1
			}
			if got := h.c.buckets[i].Load(); got != want {
				t.Errorf("ObserveNs(%d): bucket[%d]=%d, want %d", c.ns, i, got, want)
			}
		}
	}
	var h Histogram
	h.ObserveNs(-100)
	if h.SumNs() != 0 || h.Count() != 1 {
		t.Errorf("negative observe: sum=%d count=%d", h.SumNs(), h.Count())
	}
	h.Observe(3 * time.Millisecond)
	if h.SumNs() != int64(3*time.Millisecond) || h.Count() != 2 {
		t.Errorf("after Observe: sum=%d count=%d", h.SumNs(), h.Count())
	}
}

func TestHistogramRenderCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "Latency.")
	h.ObserveNs(500)     // bucket 0
	h.ObserveNs(2000)    // bucket 1
	h.ObserveNs(1 << 61) // +Inf
	out := render(t, r)
	for _, want := range []string{
		"test_lat_seconds_bucket{le=\"1e-06\"} 1\n",
		"test_lat_seconds_bucket{le=\"2e-06\"} 2\n",
		"test_lat_seconds_bucket{le=\"+Inf\"} 3\n",
		"test_lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("ValidateExposition: %v", err)
	}
}

func TestHistogramVecRoundTrip(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_stage_seconds", "Stages.", "stage")
	v.With("parse").ObserveNs(1500)
	v.With("apply").ObserveNs(900)
	out := render(t, r)
	if !strings.Contains(out, `test_stage_seconds_bucket{stage="apply",le="1e-06"} 1`) {
		t.Fatalf("labelled bucket missing:\n%s", out)
	}
	if !strings.Contains(out, `test_stage_seconds_sum{stage="parse"}`) {
		t.Fatalf("labelled sum missing:\n%s", out)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("ValidateExposition: %v", err)
	}
}

// TestConcurrentObserveAndRender hammers registration, observation, and
// rendering from many goroutines; under -race this is the package's
// thread-safety proof, and every render must stay a valid exposition.
func TestConcurrentObserveAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "C.")
	cv := r.CounterVec("test_conc_cmds_total", "CV.", "verb")
	hv := r.HistogramVec("test_conc_stage_seconds", "HV.", "stage")
	h := r.Histogram("test_conc_seconds", "H.")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				cv.With(fmt.Sprintf("verb%d", i%3)).Inc()
				hv.With(fmt.Sprintf("stage%d", i%3)).ObserveNs(int64(i%100) * 1000)
				h.ObserveNs(int64(i % 1e6))
			}
		}(g)
	}
	// Concurrent registration of new families while scraping.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			r.GaugeFunc(fmt.Sprintf("test_conc_reg_%d", i), "R.", func() float64 { return 1 })
		}
	}()
	for i := 0; i < 25; i++ {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("render %d invalid under concurrency: %v\n%s", i, err, buf.String())
		}
	}
	close(stop)
	wg.Wait()
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "no metric families"},
		{"comments only", "# TYPE a counter\n", "no metric families"},
		{"bad type", "# TYPE a flavor\na 1\n", "unknown metric type"},
		{"dup type", "# TYPE a counter\n# TYPE a counter\na 1\n", "duplicate TYPE"},
		{"type after samples", "# TYPE a counter\na 1\n# TYPE a gauge\n", "duplicate TYPE"},
		{"late type", "b 1\n# TYPE b counter\n", "after its samples"},
		{"bad name", "# TYPE a counter\n1bad 2\n", "invalid metric name"},
		{"bad value", "# TYPE a counter\na xyz\n", "bad sample value"},
		{"unterminated labels", "# TYPE a counter\na{x=\"1\" 2\n", "unterminated label"},
		{"unquoted label", "# TYPE a counter\na{x=1} 2\n", "not quoted"},
		{"dup label", `# TYPE a counter` + "\n" + `a{x="1",x="2"} 3` + "\n", "duplicate label"},
		{"bucket no le", "# TYPE h histogram\nh_bucket{stage=\"p\"} 1\n", "missing le"},
		{"bad le", "# TYPE h histogram\nh_bucket{le=\"wat\"} 1\n", "bad le value"},
		{"non-cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n", "not cumulative"},
	}
	for _, c := range cases {
		err := ValidateExposition(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.wantErr)
		}
	}
	ok := "# HELP a Help text.\n# TYPE a counter\na{x=\"v\"} 1 1700000000\n# TYPE h histogram\n" +
		"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.5\nh_count 2\n"
	if err := ValidateExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
	// Distinct label sets are distinct cumulative series.
	twoSeries := "# TYPE h histogram\nh_bucket{stage=\"a\",le=\"1\"} 9\nh_bucket{stage=\"a\",le=\"+Inf\"} 9\n" +
		"h_bucket{stage=\"b\",le=\"1\"} 2\nh_bucket{stage=\"b\",le=\"+Inf\"} 2\n"
	if err := ValidateExposition(strings.NewReader(twoSeries)); err != nil {
		t.Errorf("per-series cumulativity check leaked across series: %v", err)
	}
}
