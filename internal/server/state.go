package server

// This file is the server's state save/load: the durable half of the
// deployment mode. A dnserve restarted from a state file comes back with
// the same topology (ids preserved, so protocol references survive the
// restart), the same rules, and every standing invariant re-registered
// and re-evaluated against the restored data plane — clients reconnect,
// resume their watches, and see verdicts identical to a server that
// never died.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/monitor"
	"deltanet/internal/netgraph"
)

// stateHeader is the first line of a version-3 state file. The format is
// line-oriented and human-readable, in this order:
//
//	deltanet-state 3
//	node <name>                              (one per node, in id order)
//	link <srcID> <dstID>                     (one per link, in id order)
//	drop <nodeID>                            (optional: the drop sink)
//	rule <id> <srcID> <linkID> <lo> <hi> <prio>
//	seq <lastEventSeq>                       (optional: event-stream cursor)
//	upd <updateSeq>                          (optional: update counter)
//	journal <offset>                         (optional: journal cursor)
//	spec <serialized invariant>              (monitor.FormatSpec form)
//
// Nodes and links are dumped positionally so every id a client or a spec
// references means the same thing after a restore; the drop line
// reattaches the drop-sink bookkeeping that AddNode/AddLink replay alone
// cannot recover (the sink's special treatment in loop and black-hole
// checks would otherwise be lost). The seq line carries the last
// published event sequence number across the restart, so the restored
// monitor resumes numbering where the previous incarnation stopped and
// a watcher's "watch since <seq>" cursor keeps meaning the same point
// in the stream — the gap it is shown covers only the genuinely missed
// window, not a whole foreign stream. The v3 additions serve the
// journal/replication substrate: upd carries the monitor's update
// sequence counter (so replayed journal records keep the primary's
// numbering), and journal is the logical journal offset the dump is
// current through — the exact cursor to resume "journal since" from, or
// to replay a local journal suffix after a crash. Version-1 and -2
// files load unchanged.
const (
	stateHeader   = "deltanet-state 3"
	stateHeaderV2 = "deltanet-state 2"
	stateHeaderV1 = "deltanet-state 1"
)

// SaveState writes the server's durable state — topology, rules, the
// event-stream cursor, and the currently registered invariant specs —
// to w in the version-2 format. It takes the read lock, so it may run concurrently with
// serving (mutations block for the duration of the dump).
//
// On the shutdown path, capture the spec list with
// Monitor().SnapshotSpecs() BEFORE Close and pass it to
// SaveStateWithSpecs: Close's connection drain sweeps every
// client-held registration, so a post-Close SaveState would persist
// only preloaded invariants and forget the live watch set.
func (s *Server) SaveState(w io.Writer) error {
	return s.SaveStateWithSpecs(w, s.mon.SnapshotSpecs())
}

// SaveStateWithSpecs is SaveState with an explicit invariant list (the
// SnapshotSpecs format), for callers that captured the watch set at a
// different moment than the dump — see SaveState.
func (s *Server) SaveStateWithSpecs(w io.Writer, specs []string) error {
	_, err := s.CheckpointTo(w, specs)
	return err
}

// CheckpointTo is SaveStateWithSpecs returning the journal offset the
// dump is current through (0 without a journal): the cursor a journal
// rotation anchors to (Journal.Rotate keeps everything after it), and
// the dump's own journal record. Offset and dump are captured under one
// read-lock acquisition, so no update can land between them.
func (s *Server) CheckpointTo(w io.Writer, specs []string) (journalOffset uint64, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.saveStateLocked(w, specs)
}

// saveStateLocked writes the state dump. Caller holds s.mu in some mode
// (mutations are excluded for the duration, so the journal offset, the
// monitor counters, and the engine contents are one consistent cut).
func (s *Server) saveStateLocked(w io.Writer, specs []string) (journalOffset uint64, err error) {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, stateHeader)
	for v := 0; v < s.graph.NumNodes(); v++ {
		fmt.Fprintf(bw, "node %s\n", s.graph.NodeName(netgraph.NodeID(v)))
	}
	for _, l := range s.graph.Links() {
		fmt.Fprintf(bw, "link %d %d\n", l.Src, l.Dst)
	}
	if d := s.graph.DropNode(); d != netgraph.NoNode {
		fmt.Fprintf(bw, "drop %d\n", d)
	}
	for _, r := range s.net.Snapshot() {
		fmt.Fprintf(bw, "rule %d %d %d %d %d %d\n",
			r.ID, r.Source, r.Link, r.Match.Lo, r.Match.Hi, r.Priority)
	}
	if seq := s.mon.LastSeq(); seq > 0 {
		fmt.Fprintf(bw, "seq %d\n", seq)
	}
	if upd := s.mon.UpdateSeq(); upd > 0 {
		fmt.Fprintf(bw, "upd %d\n", upd)
	}
	if s.jrnl != nil {
		journalOffset = s.jrnl.End()
		fmt.Fprintf(bw, "journal %d\n", journalOffset)
	} else if s.replicaOf != "" {
		// A replica's dump carries its applied-through cursor, so a
		// replica restarted from its own state file resumes the stream
		// where it stopped.
		journalOffset = s.replCursor.Load()
		fmt.Fprintf(bw, "journal %d\n", journalOffset)
	}
	for _, spec := range specs {
		fmt.Fprintf(bw, "spec %s\n", spec)
	}
	return journalOffset, bw.Flush()
}

// LoadState restores a state dump (version 1 or 2) into an empty server:
// topology first (ids assigned in file order, reproducing the saved
// ids), then rules (replayed through the engine, so atom state is
// rebuilt exactly as a fresh insertion history would), then invariant
// specs (each registered and immediately evaluated against the restored
// data plane); a seq record resumes event numbering where the saved
// incarnation stopped. Call it before Serve.
func (s *Server) LoadState(r io.Reader) error {
	if s.graph.NumNodes() != 0 || s.net.NumRules() != 0 {
		return fmt.Errorf("server: LoadState requires an empty server")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 4096), 1<<20)
	if !sc.Scan() {
		return fmt.Errorf("server: not a %q file", stateHeader)
	}
	if h := strings.TrimSpace(sc.Text()); h != stateHeader && h != stateHeaderV2 && h != stateHeaderV1 {
		return fmt.Errorf("server: not a %q file", stateHeader)
	}
	var rules []core.Rule
	var specs []monitor.Spec
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(msg string) error {
			return fmt.Errorf("server: state line %d: %s: %q", lineNo, msg, line)
		}
		switch fields[0] {
		case "node":
			if len(fields) != 2 {
				return bad("usage: node <name>")
			}
			if int(s.graph.AddNode(fields[1])) != s.graph.NumNodes()-1 {
				return bad("duplicate node name")
			}
		case "link":
			src, dst, err := twoInts(fields)
			if err != nil || !s.validNode(src) || !s.validNode(dst) {
				return bad("bad link endpoints")
			}
			if int(s.graph.AddLink(netgraph.NodeID(src), netgraph.NodeID(dst))) != s.graph.NumLinks()-1 {
				return bad("duplicate link")
			}
		case "drop":
			if len(fields) != 2 {
				return bad("usage: drop <nodeID>")
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || !s.validNode(id) {
				return bad("bad drop node id")
			}
			s.graph.SetDropNode(netgraph.NodeID(id))
		case "rule":
			if len(fields) != 7 {
				return bad("usage: rule <id> <srcID> <linkID> <lo> <hi> <prio>")
			}
			var nums [6]int64
			for i := range nums {
				v, err := strconv.ParseInt(fields[i+1], 10, 64)
				if err != nil {
					return bad("bad number")
				}
				nums[i] = v
			}
			if !s.validNode(int(nums[1])) {
				return bad("unknown node id")
			}
			if nums[2] != -1 && (nums[2] < 0 || int(nums[2]) >= s.graph.NumLinks()) {
				return bad("unknown link id")
			}
			rules = append(rules, core.Rule{
				ID:       core.RuleID(nums[0]),
				Source:   netgraph.NodeID(nums[1]),
				Link:     netgraph.LinkID(nums[2]),
				Match:    ipnet.Interval{Lo: uint64(nums[3]), Hi: uint64(nums[4])},
				Priority: core.Priority(nums[5]),
			})
		case "seq":
			if len(fields) != 2 {
				return bad("usage: seq <lastEventSeq>")
			}
			seq, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return bad("bad sequence number")
			}
			s.mon.ResumeSeq(seq)
		case "upd":
			if len(fields) != 2 {
				return bad("usage: upd <updateSeq>")
			}
			upd, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return bad("bad update counter")
			}
			s.mon.ResumeUpdates(upd)
		case "journal":
			if len(fields) != 2 {
				return bad("usage: journal <offset>")
			}
			off, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return bad("bad journal offset")
			}
			s.loadedJournal = off
		case "spec":
			spec, err := monitor.ParseSpec(strings.TrimSpace(strings.TrimPrefix(line, "spec")))
			if err != nil {
				return bad(err.Error())
			}
			for _, n := range monitor.SpecNodes(spec) {
				if !s.validNode(int(n)) {
					return bad("spec names an unknown node id")
				}
			}
			specs = append(specs, spec)
		default:
			return bad("unknown state record")
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("server: reading state: %w", err)
	}
	if err := s.net.Restore(rules); err != nil {
		return fmt.Errorf("server: restoring rules: %w", err)
	}
	// Specs last: each registration evaluates against the fully restored
	// data plane, so the re-registered invariants' verdicts match a fresh
	// full evaluation by construction.
	for _, spec := range specs {
		s.mon.Register(spec)
	}
	return nil
}
