package monitor

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"deltanet/internal/netgraph"
)

// This file is the monitor's wire/durable serialization of invariant
// specs. Every Spec's String() form is already the server's W grammar;
// FormatSpec extends it with the one piece String() cannot carry —
// BlackHoleFree's sink set — and ParseSpec inverts FormatSpec, so
// registered invariants can round-trip through a state file or a
// re-registration after reconnect.
//
// The grammar (one spec per line, fields space-separated):
//
//	reach <from> <to>
//	waypoint <from> <to> <via>
//	isolated <id,id,...> <id,id,...>
//	loopfree
//	blackholefree [sinks=<id,id,...>]
//
// FormatSpec output is canonical: sinks are sorted and deduplicated, so
// two specs are semantically identical iff their FormatSpec strings are
// equal — which is exactly the property the monitor's refcount dedup key
// needs, so specKey is FormatSpec.
//
// Node positions are numeric ids in the canonical grammar;
// ParseSpecNamed additionally resolves names through a caller-supplied
// lookup, and FormatSpecNamed renders the human-facing named form the
// server echoes in status and event lines.

// FormatSpec returns the canonical serialized form of a spec: the wire
// String() form, extended with BlackHoleFree's sink set. The result
// parses back with ParseSpec to a semantically identical spec.
func FormatSpec(s Spec) string {
	b, ok := s.(BlackHoleFree)
	if !ok || len(b.Sinks) == 0 {
		return s.String()
	}
	sinks := make([]int, 0, len(b.Sinks))
	for n, on := range b.Sinks {
		if on {
			sinks = append(sinks, int(n))
		}
	}
	if len(sinks) == 0 {
		return b.String()
	}
	sort.Ints(sinks)
	parts := make([]string, len(sinks))
	for i, n := range sinks {
		parts[i] = strconv.Itoa(n)
	}
	return b.String() + " sinks=" + strings.Join(parts, ",")
}

// NodeResolver maps a node name to its id for ParseSpecNamed. It is
// consulted only for fields that do not parse as a numeric id.
type NodeResolver func(name string) (netgraph.NodeID, bool)

// ParseSpec parses the serialized form produced by FormatSpec (a
// superset of the wire W grammar: it additionally accepts
// "blackholefree sinks=<id,...>"). Node ids are not validated against
// any topology — the caller registers the spec with a monitor over a
// concrete network and must validate ids there (SpecNodes enumerates
// them).
func ParseSpec(line string) (Spec, error) { return ParseSpecNamed(line, nil) }

// ParseSpecNamed is ParseSpec accepting node names anywhere a numeric id
// is accepted: a field that does not parse as a non-negative integer is
// handed to resolve (nil restricts the grammar to numeric ids). Numeric
// parsing wins, so a node literally named "3" is only addressable by
// name while no id 3 is ever valid — name your nodes non-numerically.
func ParseSpecNamed(line string, resolve NodeResolver) (Spec, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil, fmt.Errorf("monitor: empty spec")
	}
	switch fields[0] {
	case "reach":
		if len(fields) != 3 {
			return nil, fmt.Errorf("monitor: usage: reach <from> <to>")
		}
		a, errA := parseNode(fields[1], resolve)
		b, errB := parseNode(fields[2], resolve)
		if errA != nil || errB != nil {
			return nil, fmt.Errorf("monitor: bad node in %q", line)
		}
		return Reachable{From: a, To: b}, nil
	case "waypoint":
		if len(fields) != 4 {
			return nil, fmt.Errorf("monitor: usage: waypoint <from> <to> <via>")
		}
		a, errA := parseNode(fields[1], resolve)
		b, errB := parseNode(fields[2], resolve)
		v, errV := parseNode(fields[3], resolve)
		if errA != nil || errB != nil || errV != nil {
			return nil, fmt.Errorf("monitor: bad node in %q", line)
		}
		return Waypoint{From: a, To: b, Via: v}, nil
	case "isolated":
		if len(fields) != 3 {
			return nil, fmt.Errorf("monitor: usage: isolated <id,...> <id,...>")
		}
		ga, errA := parseGroup(fields[1], resolve)
		gb, errB := parseGroup(fields[2], resolve)
		if errA != nil || errB != nil {
			return nil, fmt.Errorf("monitor: bad node in %q", line)
		}
		return Isolated{GroupA: ga, GroupB: gb}, nil
	case "loopfree":
		if len(fields) != 1 {
			return nil, fmt.Errorf("monitor: loopfree takes no arguments")
		}
		return LoopFree{}, nil
	case "blackholefree":
		switch {
		case len(fields) == 1:
			return BlackHoleFree{}, nil
		case len(fields) == 2 && strings.HasPrefix(fields[1], "sinks="):
			ids, err := parseGroup(strings.TrimPrefix(fields[1], "sinks="), resolve)
			if err != nil {
				return nil, fmt.Errorf("monitor: bad sink in %q", line)
			}
			sinks := make(map[netgraph.NodeID]bool, len(ids))
			for _, id := range ids {
				sinks[id] = true
			}
			return BlackHoleFree{Sinks: sinks}, nil
		default:
			return nil, fmt.Errorf("monitor: usage: blackholefree [sinks=<id,...>]")
		}
	default:
		return nil, fmt.Errorf("monitor: unknown spec kind %q", fields[0])
	}
}

// FormatSpecNamed renders a spec in the FormatSpec grammar with node ids
// replaced by their names via name — the human-facing form the server
// echoes in status and event lines, which survives topology renumbering
// and parses back through ParseSpecNamed. Sink sets keep FormatSpec's
// canonical id order.
func FormatSpecNamed(s Spec, name func(netgraph.NodeID) string) string {
	switch v := s.(type) {
	case Reachable:
		return fmt.Sprintf("reach %s %s", name(v.From), name(v.To))
	case Waypoint:
		return fmt.Sprintf("waypoint %s %s %s", name(v.From), name(v.To), name(v.Via))
	case Isolated:
		return "isolated " + joinNames(v.GroupA, name) + " " + joinNames(v.GroupB, name)
	case BlackHoleFree:
		sinks := make([]int, 0, len(v.Sinks))
		for n, on := range v.Sinks {
			if on {
				sinks = append(sinks, int(n))
			}
		}
		if len(sinks) == 0 {
			return "blackholefree"
		}
		sort.Ints(sinks)
		parts := make([]string, len(sinks))
		for i, n := range sinks {
			parts[i] = name(netgraph.NodeID(n))
		}
		return "blackholefree sinks=" + strings.Join(parts, ",")
	default:
		return FormatSpec(s)
	}
}

func joinNames(nodes []netgraph.NodeID, name func(netgraph.NodeID) string) string {
	parts := make([]string, len(nodes))
	for i, v := range nodes {
		parts[i] = name(v)
	}
	return strings.Join(parts, ",")
}

// SpecNodes returns every node id a spec references (in unspecified
// order), so callers can validate a parsed spec against a topology
// before registering it.
func SpecNodes(s Spec) []netgraph.NodeID {
	switch v := s.(type) {
	case Reachable:
		return []netgraph.NodeID{v.From, v.To}
	case Waypoint:
		return []netgraph.NodeID{v.From, v.To, v.Via}
	case Isolated:
		out := make([]netgraph.NodeID, 0, len(v.GroupA)+len(v.GroupB))
		out = append(out, v.GroupA...)
		return append(out, v.GroupB...)
	case BlackHoleFree:
		out := make([]netgraph.NodeID, 0, len(v.Sinks))
		for n, on := range v.Sinks {
			if on {
				out = append(out, n)
			}
		}
		return out
	default:
		return nil
	}
}

func parseNode(f string, resolve NodeResolver) (netgraph.NodeID, error) {
	// NodeID is int32: parse at that width so an oversized id is an
	// error instead of silently truncating to a different node.
	v, err := strconv.ParseInt(f, 10, 32)
	if err == nil && v >= 0 {
		return netgraph.NodeID(v), nil
	}
	if resolve != nil {
		if id, ok := resolve(f); ok {
			return id, nil
		}
	}
	return 0, fmt.Errorf("bad node %q", f)
}

func parseGroup(f string, resolve NodeResolver) ([]netgraph.NodeID, error) {
	parts := strings.Split(f, ",")
	out := make([]netgraph.NodeID, 0, len(parts))
	for _, p := range parts {
		v, err := parseNode(p, resolve)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
