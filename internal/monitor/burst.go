package monitor

import (
	"time"

	"deltanet/internal/core"
)

// BurstConfig configures coalescing burst mode: under churn the monitor
// merges consecutive deltas (core.Delta.Merge) and re-evaluates each
// dirty invariant once per burst instead of once per update, trading
// event latency for throughput.
//
// A burst is flushed — its coalesced delta evaluated and the resulting
// events published — when either trigger fires:
//
//   - MaxDeltas ≥ 2: the burst has coalesced that many deltas, checked as
//     each one arrives;
//   - MaxAge > 0: an Apply (or an explicit Flush, e.g. from a periodic
//     ticker) finds the oldest pending delta at least that old.
//
// The age trigger is evaluated inside monitor calls only — the monitor
// never reads the network from a background goroutine, preserving the
// caller's network-stability contract — so callers wanting a hard latency
// bound should call Flush on a timer of their own (the server's burst
// knob does exactly this).
//
// The zero value disables bursting: every Apply evaluates immediately.
type BurstConfig struct {
	MaxDeltas int
	MaxAge    time.Duration
}

func (c BurstConfig) enabled() bool { return c.MaxDeltas >= 2 || c.MaxAge > 0 }

// SetBurst installs a burst configuration (the zero value disables
// bursting). Disabling or tightening the configuration does not evaluate
// an already pending burst immediately: call Flush for that, or let the
// next Apply absorb it (after a disable, Apply merges any leftover
// buffered deltas into its own evaluation rather than ignore them).
func (m *Monitor) SetBurst(cfg BurstConfig) {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	m.burst = cfg
}

// Burst returns the current burst configuration.
func (m *Monitor) Burst() BurstConfig {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	return m.burst
}

// Pending returns the number of deltas coalesced into the currently
// pending burst (0 when none, or when bursting is disabled).
func (m *Monitor) Pending() int {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	return m.pendingCount
}

// Flush evaluates the pending burst immediately, returning (and
// publishing) the verdict transitions it causes. It is a no-op returning
// nil when nothing is pending. Like Apply, Flush reads the network: the
// caller must guarantee the network is not mutated during the call.
func (m *Monitor) Flush() []Event {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	return m.flushLocked()
}

// coalesceLocked merges one update's delta into the pending burst.
// Caller holds applyMu.
func (m *Monitor) coalesceLocked(d *core.Delta) {
	if m.pendingCount == 0 {
		m.pendingFirst = m.updSeq
		m.pendingSince = time.Now()
	}
	m.pending.Merge(d)
	changedLinks(d, m.pendingChanged)
	m.pendingCount++
	m.coalesced.Add(1)
}

// shouldFlushLocked reports whether a flush trigger has fired. Caller
// holds applyMu.
func (m *Monitor) shouldFlushLocked() bool {
	if m.pendingCount == 0 {
		return false
	}
	if m.burst.MaxDeltas >= 2 && m.pendingCount >= m.burst.MaxDeltas {
		return true
	}
	return m.burst.MaxAge > 0 && time.Since(m.pendingSince) >= m.burst.MaxAge
}

// flushLocked evaluates the coalesced pending delta. Caller holds
// applyMu.
func (m *Monitor) flushLocked() []Event {
	if m.pendingCount == 0 {
		return nil
	}
	first, last := m.pendingFirst, m.updSeq
	m.bursts.Add(1)
	var events []Event
	if m.regd.Load() > 0 {
		// Loop hints from the individual updates are stale for the merged
		// window; a LoopFree invariant re-derives loops from the coalesced
		// delta (loopsKnown=false), which is complete by the §4.3.1
		// argument applied to the merged delta, as in the batch pipeline.
		tr := m.beginTraceLocked(first, last, m.pendingCount, &m.pending, m.pendingChanged)
		cands, rangeSkipped := m.collectDirty(m.pendingChanged, &m.pending)
		m.traceDirtyLocked(tr, len(cands), rangeSkipped)
		events = m.evaluatePass(cands, &applyCtx{d: &m.pending, rescans: &m.loopRescans}, first, last, tr)
		m.finishTraceLocked(tr)
	}
	m.resetPendingLocked()
	return events
}

// resetPendingLocked clears the burst buffer, retaining capacity. Caller
// holds applyMu.
func (m *Monitor) resetPendingLocked() {
	m.pending.NewAtoms = m.pending.NewAtoms[:0]
	m.pending.Added = m.pending.Added[:0]
	m.pending.Removed = m.pending.Removed[:0]
	m.pendingChanged.Clear()
	m.pendingCount = 0
}
