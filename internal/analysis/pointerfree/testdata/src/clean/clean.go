// Package clean is the pointerfree analyzer's clean fixture: annotated
// types that genuinely contain no pointers, including the shapes
// deltanet uses in production (fixed-size range arrays, nested scalar
// structs), must produce no diagnostics.
package clean

// Pair mirrors intervalmap.Range.
//
//deltanet:pointerfree
type Pair struct {
	Lo, Hi int32
}

// Sketch mirrors intervalmap.Sketch: a count plus an inline fixed-size
// array of ranges.
//
//deltanet:pointerfree
type Sketch struct {
	n uint8
	r [8]Pair
}

// Slot mirrors the monitor's slotSketch: a sequence number plus an
// embedded sketch.
//
//deltanet:pointerfree
type Slot struct {
	atomSeq int64
	sk      Sketch
}

// Scalars covers the remaining pointer-free kinds: all integer widths,
// floats, complex, bool, uintptr, and arrays thereof.
//
//deltanet:pointerfree
type Scalars struct {
	a bool
	b int8
	c uint64
	d float64
	e complex128
	f uintptr
	g [3][2]byte
}

// NotAnnotated may contain whatever it likes.
type NotAnnotated struct {
	s []string
	m map[string]*Pair
}
