// Package bgp synthesizes the Route-Views-style IP prefix feeds the
// paper's datasets are generated from (§4.2.1: "we gather IP prefixes from
// over half a million real-world BGP updates collected by the Route Views
// project"). The real dumps are external data, so — per the reproduction's
// substitution rule — we generate prefix sets whose statistics match what
// drives Delta-net's complexity: the prefix-length distribution of the
// global routing table (dominated by /24 and /16, a spread of /8–/23) and
// a controllable degree of nesting/overlap between prefixes.
//
// All generation is deterministic per seed.
package bgp

import (
	"math/rand"

	"deltanet/internal/ipnet"
)

// lengthWeights approximates the global BGP table's prefix-length mix:
// /24 dominates (~55%), /16 and /22–/23 are common, short prefixes rare.
var lengthWeights = []struct {
	length int
	weight int
}{
	{8, 1}, {9, 1}, {10, 1}, {11, 2}, {12, 2}, {13, 3}, {14, 4}, {15, 4},
	{16, 12}, {17, 4}, {18, 5}, {19, 7}, {20, 8}, {21, 8}, {22, 12},
	{23, 10}, {24, 55},
}

var totalWeight = func() int {
	t := 0
	for _, lw := range lengthWeights {
		t += lw.weight
	}
	return t
}()

// Feed generates synthetic BGP-announced prefixes.
type Feed struct {
	rng     *rand.Rand
	nesting float64 // probability a new prefix nests inside a prior one
	emitted []ipnet.Prefix
}

// NewFeed returns a deterministic feed. nesting in [0,1] controls how
// often a generated prefix is a sub-prefix of an earlier one (real tables
// contain substantial nesting, which is what produces atom splits and
// overlapping-rule pressure); 0.3 is a realistic default.
func NewFeed(seed int64, nesting float64) *Feed {
	if nesting < 0 {
		nesting = 0
	}
	if nesting > 1 {
		nesting = 1
	}
	return &Feed{rng: rand.New(rand.NewSource(seed)), nesting: nesting}
}

func (f *Feed) sampleLength() int {
	w := f.rng.Intn(totalWeight)
	for _, lw := range lengthWeights {
		w -= lw.weight
		if w < 0 {
			return lw.length
		}
	}
	return 24
}

// Next returns the next prefix in the feed.
func (f *Feed) Next() ipnet.Prefix {
	var p ipnet.Prefix
	if len(f.emitted) > 0 && f.rng.Float64() < f.nesting {
		// Nest inside a previously emitted prefix: pick a parent and
		// extend its length.
		parent := f.emitted[f.rng.Intn(len(f.emitted))]
		if parent.Len < 24 {
			extra := 1 + f.rng.Intn(24-parent.Len)
			sub := parent.Addr | (uint64(f.rng.Intn(1<<uint(extra))) << uint(32-parent.Len-extra))
			p = ipnet.NewPrefix(sub, parent.Len+extra)
		}
	}
	if p.Bits == 0 { // not nested: fresh prefix in unicast space
		length := f.sampleLength()
		// Spread addresses over 1.0.0.0 – 223.255.255.255.
		addr := uint64(1+f.rng.Intn(223))<<24 | uint64(f.rng.Intn(1<<24))
		p = ipnet.NewPrefix(addr, length)
	}
	f.emitted = append(f.emitted, p)
	return p
}

// Prefixes returns n prefixes from the feed. Duplicates are possible, as
// in real BGP tables where multiple peers announce the same prefix.
func (f *Feed) Prefixes(n int) []ipnet.Prefix {
	out := make([]ipnet.Prefix, n)
	for i := range out {
		out[i] = f.Next()
	}
	return out
}

// UniquePrefixes returns exactly n distinct prefixes.
func (f *Feed) UniquePrefixes(n int) []ipnet.Prefix {
	seen := map[ipnet.Prefix]bool{}
	out := make([]ipnet.Prefix, 0, n)
	for len(out) < n {
		p := f.Next()
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// UpdateKind is the type of one BGP update.
type UpdateKind uint8

const (
	// Announce introduces or re-announces a prefix.
	Announce UpdateKind = iota
	// Withdraw retracts a previously announced prefix.
	Withdraw
)

// Update is one simulated BGP update.
type Update struct {
	Kind   UpdateKind
	Prefix ipnet.Prefix
}

// Updates generates a stream of n updates over a working set of prefixes:
// announcements of new prefixes interleaved with withdrawals and
// re-announcements of live ones, mimicking replayed BGP churn.
func (f *Feed) Updates(n int) []Update {
	var live []ipnet.Prefix
	out := make([]Update, 0, n)
	for len(out) < n {
		if len(live) == 0 || f.rng.Intn(100) < 60 {
			p := f.Next()
			live = append(live, p)
			out = append(out, Update{Kind: Announce, Prefix: p})
		} else {
			i := f.rng.Intn(len(live))
			p := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			out = append(out, Update{Kind: Withdraw, Prefix: p})
		}
	}
	return out
}
