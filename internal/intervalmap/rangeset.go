package intervalmap

import "sort"

// RangeSet is a sorted set of inclusive atom-id ranges — the coarse
// "interval sketch" the incremental monitor uses to summarize which atoms
// an evaluation's verdict depended on, per link. Sketches trade precision
// for stability and size: coarsening merges nearby ranges, which can only
// add false positives (an extra re-evaluation), never false negatives, so
// a sketch is always a safe over-approximation of the exact atom set it
// was built from.
//
// Atom ids are unstable under split/merge churn (splits mint new ids, GC
// recycles freed ones), so id sketches alone cannot be trusted across
// time; the monitor pairs every sketch with the Map's allocation sequence
// (AllocSeq) and treats any atom born after the sketch was recorded as a
// conservative hit (see BornSeq).
type RangeSet struct {
	r []Range
}

// Range is an inclusive range [Lo, Hi] of atom ids.
//
//deltanet:pointerfree
type Range struct {
	Lo, Hi AtomID
}

// Reset empties the set, retaining capacity.
func (s *RangeSet) Reset() { s.r = s.r[:0] }

// Empty reports whether the set covers no ids.
func (s *RangeSet) Empty() bool { return len(s.r) == 0 }

// NumRanges returns the number of ranges in the sketch.
func (s *RangeSet) NumRanges() int { return len(s.r) }

// Ranges returns the backing ranges in ascending order. Callers must not
// mutate the slice.
func (s *RangeSet) Ranges() []Range { return s.r }

// AppendID adds one id to the set. Ids must be appended in non-decreasing
// order (the natural order of a bitset iteration); adjacent and duplicate
// ids extend the last range instead of starting a new one.
func (s *RangeSet) AppendID(id AtomID) {
	if n := len(s.r); n > 0 {
		last := &s.r[n-1]
		if id <= last.Hi {
			return
		}
		if id == last.Hi+1 {
			last.Hi = id
			return
		}
	}
	s.r = append(s.r, Range{Lo: id, Hi: id})
}

// AppendRange adds an inclusive range. Ranges must be appended in
// ascending order of Lo; overlapping or adjacent ranges are merged.
func (s *RangeSet) AppendRange(lo, hi AtomID) {
	if hi < lo {
		return
	}
	if n := len(s.r); n > 0 {
		last := &s.r[n-1]
		if lo <= last.Hi+1 {
			if hi > last.Hi {
				last.Hi = hi
			}
			return
		}
	}
	s.r = append(s.r, Range{Lo: lo, Hi: hi})
}

// Contains reports whether the set covers id.
func (s *RangeSet) Contains(id AtomID) bool {
	lo, hi := 0, len(s.r)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case id < s.r[mid].Lo:
			hi = mid
		case id > s.r[mid].Hi:
			lo = mid + 1
		default:
			return true
		}
	}
	return false
}

// Intersects reports whether the two sets share at least one id, by a
// linear merge over the sorted ranges.
func (s *RangeSet) Intersects(o *RangeSet) bool {
	i, j := 0, 0
	for i < len(s.r) && j < len(o.r) {
		a, b := s.r[i], o.r[j]
		if a.Hi < b.Lo {
			i++
		} else if b.Hi < a.Lo {
			j++
		} else {
			return true
		}
	}
	return false
}

// UnionWith merges o into s (both stay sorted and non-overlapping).
func (s *RangeSet) UnionWith(o *RangeSet) {
	if o.Empty() {
		return
	}
	merged := make([]Range, 0, len(s.r)+len(o.r))
	i, j := 0, 0
	appendMerged := func(r Range) {
		if n := len(merged); n > 0 && r.Lo <= merged[n-1].Hi+1 {
			if r.Hi > merged[n-1].Hi {
				merged[n-1].Hi = r.Hi
			}
			return
		}
		merged = append(merged, r)
	}
	for i < len(s.r) || j < len(o.r) {
		switch {
		case j >= len(o.r) || (i < len(s.r) && s.r[i].Lo <= o.r[j].Lo):
			appendMerged(s.r[i])
			i++
		default:
			appendMerged(o.r[j])
			j++
		}
	}
	s.r = merged
}

// Clone returns an independent copy.
func (s *RangeSet) Clone() *RangeSet {
	return &RangeSet{r: append([]Range(nil), s.r...)}
}

// Coarsen merges ranges until at most max remain, closing the smallest
// id gaps first so the sketch stays as tight as its budget allows. The
// result covers a superset of the original ids (never fewer), which is
// the conservative direction for dirtiness summaries.
func (s *RangeSet) Coarsen(max int) {
	if max < 1 {
		max = 1
	}
	if len(s.r) <= max {
		return
	}
	// Pick the gap size below which adjacent ranges merge: the k-th
	// smallest of the len-1 gaps, where k = len-max merges are needed.
	// Ties at the threshold may merge a few extra gaps, ending below max
	// ranges — coarser is safe.
	gaps := make([]AtomID, 0, len(s.r)-1)
	for i := 1; i < len(s.r); i++ {
		gaps = append(gaps, s.r[i].Lo-s.r[i-1].Hi)
	}
	sort.Slice(gaps, func(a, b int) bool { return gaps[a] < gaps[b] })
	threshold := gaps[len(s.r)-max-1]
	out := s.r[:1]
	for i := 1; i < len(s.r); i++ {
		if s.r[i].Lo-out[len(out)-1].Hi <= threshold {
			out[len(out)-1].Hi = s.r[i].Hi
			continue
		}
		out = append(out, s.r[i])
	}
	s.r = out
}

// CoversAll reports whether the set covers every id in [0, n) — the
// signal that a sketch is no more selective than "everything matters"
// and is not worth storing.
func (s *RangeSet) CoversAll(n int) bool {
	return len(s.r) == 1 && s.r[0].Lo == 0 && int(s.r[0].Hi) >= n-1
}

// SketchRanges is the fixed range budget of a Sketch.
const SketchRanges = 8

// Sketch is the bounded, pointer-free form of a RangeSet: at most
// SketchRanges inclusive ranges inlined into a fixed array. This is the
// representation long-lived summaries are stored in — a monitor holding
// 10⁵ invariants retains hundreds of thousands of sketches, and inlined
// no-pointer values keep that entire footprint invisible to the garbage
// collector (maps with pointer-free keys and values are never scanned),
// where a *RangeSet per summary made every GC cycle walk them all. The
// pointerfree analyzer (internal/analysis) keeps the property from
// regressing.
//
//deltanet:pointerfree
type Sketch struct {
	n uint8
	r [SketchRanges]Range
}

// SetFrom coarsens rs to the sketch budget (mutating rs) and stores it.
func (s *Sketch) SetFrom(rs *RangeSet) {
	rs.Coarsen(SketchRanges)
	s.n = uint8(len(rs.r))
	copy(s.r[:], rs.r)
}

// NumRanges returns the number of ranges in the sketch.
func (s *Sketch) NumRanges() int { return int(s.n) }

// Ranges returns the sketch's ranges in ascending order.
func (s *Sketch) Ranges() []Range { return s.r[:s.n] }

// Contains reports whether the sketch covers id.
func (s *Sketch) Contains(id AtomID) bool {
	for _, r := range s.r[:s.n] {
		if id >= r.Lo && id <= r.Hi {
			return true
		}
	}
	return false
}

// Intersects reports whether the sketch and a range set share an id.
func (s *Sketch) Intersects(o *RangeSet) bool {
	i, j := 0, 0
	for i < int(s.n) && j < len(o.r) {
		a, b := s.r[i], o.r[j]
		if a.Hi < b.Lo {
			i++
		} else if b.Hi < a.Lo {
			j++
		} else {
			return true
		}
	}
	return false
}

// ToRangeSet appends the sketch's ranges into dst (resetting it first).
func (s *Sketch) ToRangeSet(dst *RangeSet) {
	dst.Reset()
	for _, r := range s.r[:s.n] {
		dst.AppendRange(r.Lo, r.Hi)
	}
}
