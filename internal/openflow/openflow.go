// Package openflow implements a compact OpenFlow-inspired binary wire
// format for flow-table modifications. The paper's experimental setup
// drives Delta-net from OpenFlow rule install/remove messages emitted by
// ONOS toward Open vSwitch (§4.2.2, Figure 7); this package provides the
// equivalent wire layer for this reproduction: a fixed-size FlowMod
// record with marshal/unmarshal, stream framing over io.Reader/Writer,
// and converters to and from the engine's operations.
//
// The format is deliberately minimal (single match field, as Veriflow-RI
// and the paper's datasets are single-field), versioned for forward
// compatibility, and fixed-size so a stream needs no length prefixes:
//
//	offset  size  field
//	0       1     version (currently 1)
//	1       1     command (0 = add, 1 = delete)
//	2       2     priority, big endian
//	4       8     rule id (cookie), big endian
//	12      4     switch node id, big endian
//	16      4     out link id, big endian (0xFFFFFFFF = drop)
//	20      8     match lower bound, big endian
//	28      8     match upper bound (exclusive), big endian
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
	"deltanet/internal/trace"
)

// Version is the current wire version.
const Version = 1

// MessageSize is the fixed encoded size of one FlowMod.
const MessageSize = 36

// Command distinguishes flow additions from deletions.
type Command uint8

const (
	// CmdAdd installs a flow rule.
	CmdAdd Command = 0
	// CmdDelete removes a flow rule by cookie.
	CmdDelete Command = 1
)

// dropLinkWire encodes "no out link" (a drop rule) on the wire.
const dropLinkWire = 0xFFFFFFFF

// FlowMod is one flow-table modification.
type FlowMod struct {
	Command  Command
	Priority uint16
	Cookie   uint64 // rule id
	Switch   uint32
	OutLink  int32 // -1 = drop
	MatchLo  uint64
	MatchHi  uint64
}

// Errors returned by the codec.
var (
	ErrShort    = errors.New("openflow: buffer shorter than message size")
	ErrVersion  = errors.New("openflow: unsupported version")
	ErrCommand  = errors.New("openflow: unknown command")
	ErrBadMatch = errors.New("openflow: match upper bound not greater than lower")
)

// Marshal encodes the FlowMod into a fresh MessageSize-byte slice.
func (m *FlowMod) Marshal() []byte {
	buf := make([]byte, MessageSize)
	m.MarshalTo(buf)
	return buf
}

// MarshalTo encodes into buf, which must hold MessageSize bytes.
func (m *FlowMod) MarshalTo(buf []byte) {
	_ = buf[MessageSize-1]
	buf[0] = Version
	buf[1] = byte(m.Command)
	binary.BigEndian.PutUint16(buf[2:], m.Priority)
	binary.BigEndian.PutUint64(buf[4:], m.Cookie)
	binary.BigEndian.PutUint32(buf[12:], m.Switch)
	if m.OutLink < 0 {
		binary.BigEndian.PutUint32(buf[16:], dropLinkWire)
	} else {
		binary.BigEndian.PutUint32(buf[16:], uint32(m.OutLink))
	}
	binary.BigEndian.PutUint64(buf[20:], m.MatchLo)
	binary.BigEndian.PutUint64(buf[28:], m.MatchHi)
}

// Unmarshal decodes one FlowMod from buf.
func Unmarshal(buf []byte) (FlowMod, error) {
	if len(buf) < MessageSize {
		return FlowMod{}, ErrShort
	}
	if buf[0] != Version {
		return FlowMod{}, fmt.Errorf("%w: %d", ErrVersion, buf[0])
	}
	cmd := Command(buf[1])
	if cmd != CmdAdd && cmd != CmdDelete {
		return FlowMod{}, fmt.Errorf("%w: %d", ErrCommand, buf[1])
	}
	m := FlowMod{
		Command:  cmd,
		Priority: binary.BigEndian.Uint16(buf[2:]),
		Cookie:   binary.BigEndian.Uint64(buf[4:]),
		Switch:   binary.BigEndian.Uint32(buf[12:]),
		MatchLo:  binary.BigEndian.Uint64(buf[20:]),
		MatchHi:  binary.BigEndian.Uint64(buf[28:]),
	}
	if raw := binary.BigEndian.Uint32(buf[16:]); raw == dropLinkWire {
		m.OutLink = -1
	} else {
		m.OutLink = int32(raw)
	}
	if m.Command == CmdAdd && m.MatchHi <= m.MatchLo {
		return FlowMod{}, ErrBadMatch
	}
	return m, nil
}

// Writer streams FlowMods onto an io.Writer.
type Writer struct {
	w   io.Writer
	buf [MessageSize]byte
}

// NewWriter returns a stream encoder.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write encodes one message.
func (sw *Writer) Write(m *FlowMod) error {
	m.MarshalTo(sw.buf[:])
	_, err := sw.w.Write(sw.buf[:])
	return err
}

// Reader decodes a stream of FlowMods from an io.Reader.
type Reader struct {
	r   io.Reader
	buf [MessageSize]byte
}

// NewReader returns a stream decoder.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Read decodes the next message; io.EOF signals a clean end of stream and
// io.ErrUnexpectedEOF a truncated record.
func (sr *Reader) Read() (FlowMod, error) {
	if _, err := io.ReadFull(sr.r, sr.buf[:]); err != nil {
		return FlowMod{}, err
	}
	return Unmarshal(sr.buf[:])
}

// FromOp converts an engine operation to a FlowMod.
func FromOp(op trace.Op) FlowMod {
	if !op.Insert {
		return FlowMod{Command: CmdDelete, Cookie: uint64(op.Rule.ID)}
	}
	return FlowMod{
		Command:  CmdAdd,
		Priority: uint16(op.Rule.Priority),
		Cookie:   uint64(op.Rule.ID),
		Switch:   uint32(op.Rule.Source),
		OutLink:  int32(op.Rule.Link),
		MatchLo:  op.Rule.Match.Lo,
		MatchHi:  op.Rule.Match.Hi,
	}
}

// ToOp converts a FlowMod to an engine operation.
func ToOp(m FlowMod) trace.Op {
	if m.Command == CmdDelete {
		return trace.Op{Rule: core.Rule{ID: core.RuleID(m.Cookie)}}
	}
	return trace.Op{Insert: true, Rule: core.Rule{
		ID:       core.RuleID(m.Cookie),
		Source:   netgraph.NodeID(m.Switch),
		Link:     netgraph.LinkID(m.OutLink),
		Match:    ipnet.Interval{Lo: m.MatchLo, Hi: m.MatchHi},
		Priority: core.Priority(m.Priority),
	}}
}

// EncodeOps writes a whole operation stream in wire format.
func EncodeOps(w io.Writer, ops []trace.Op) error {
	sw := NewWriter(w)
	for i := range ops {
		m := FromOp(ops[i])
		if err := sw.Write(&m); err != nil {
			return err
		}
	}
	return nil
}

// DecodeOps reads a whole operation stream until EOF.
func DecodeOps(r io.Reader) ([]trace.Op, error) {
	sr := NewReader(r)
	var ops []trace.Op
	for {
		m, err := sr.Read()
		if err == io.EOF {
			return ops, nil
		}
		if err != nil {
			return nil, err
		}
		ops = append(ops, ToOp(m))
	}
}
