package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intCmp(a, b int) int { return a - b }

func newIntTree() *Tree[int, int] { return New[int, int](intCmp) }

func TestEmptyTree(t *testing.T) {
	tr := newIntTree()
	if !tr.Empty() || tr.Len() != 0 {
		t.Fatalf("new tree not empty: len=%d", tr.Len())
	}
	if tr.Min() != nil || tr.Max() != nil {
		t.Fatal("Min/Max on empty tree should be nil")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty tree returned true")
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
}

func TestInsertGet(t *testing.T) {
	tr := newIntTree()
	for i := 0; i < 100; i++ {
		if !tr.Insert(i, i*10) {
			t.Fatalf("Insert(%d) reported existing", i)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len=%d want 100", tr.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := tr.Get(i)
		if !ok || v != i*10 {
			t.Fatalf("Get(%d)=%d,%v want %d,true", i, v, ok, i*10)
		}
	}
	if _, ok := tr.Get(100); ok {
		t.Fatal("Get(100) should be absent")
	}
}

func TestInsertReplace(t *testing.T) {
	tr := newIntTree()
	tr.Insert(5, 1)
	if tr.Insert(5, 2) {
		t.Fatal("second Insert of same key reported new")
	}
	if v, _ := tr.Get(5); v != 2 {
		t.Fatalf("value not replaced: %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len=%d want 1", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := newIntTree()
	const n = 500
	for i := 0; i < n; i++ {
		tr.Insert(i, i)
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) reported absent", i)
		}
		if msg := tr.CheckInvariants(); msg != "" {
			t.Fatalf("after Delete(%d): %s", i, msg)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len=%d want %d", tr.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d)=%v want %v", i, ok, want)
		}
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := newIntTree()
	tr.Insert(1, 1)
	if tr.Delete(2) {
		t.Fatal("Delete of absent key returned true")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len changed on absent delete: %d", tr.Len())
	}
}

func TestMinMax(t *testing.T) {
	tr := newIntTree()
	perm := rand.New(rand.NewSource(1)).Perm(1000)
	for _, v := range perm {
		tr.Insert(v, v)
	}
	if tr.Min().Key != 0 {
		t.Fatalf("Min=%d", tr.Min().Key)
	}
	if tr.Max().Key != 999 {
		t.Fatalf("Max=%d", tr.Max().Key)
	}
	tr.Delete(0)
	tr.Delete(999)
	if tr.Min().Key != 1 || tr.Max().Key != 998 {
		t.Fatalf("Min/Max after delete: %d/%d", tr.Min().Key, tr.Max().Key)
	}
}

func TestFloorCeil(t *testing.T) {
	tr := newIntTree()
	for _, v := range []int{10, 20, 30, 40} {
		tr.Insert(v, v)
	}
	cases := []struct {
		q            int
		floor, ceil  int
		fNil, cNil   bool
		lower, upper int // strictly lower / higher
		lNil, uNil   bool
	}{
		{5, 0, 10, true, false, 0, 10, true, false},
		{10, 10, 10, false, false, 0, 20, true, false},
		{15, 10, 20, false, false, 10, 20, false, false},
		{40, 40, 40, false, false, 30, 0, false, true},
		{45, 40, 0, false, true, 40, 0, false, true},
	}
	for _, c := range cases {
		if n := tr.Floor(c.q); (n == nil) != c.fNil || (n != nil && n.Key != c.floor) {
			t.Errorf("Floor(%d) = %v", c.q, n)
		}
		if n := tr.Ceil(c.q); (n == nil) != c.cNil || (n != nil && n.Key != c.ceil) {
			t.Errorf("Ceil(%d) = %v", c.q, n)
		}
		if n := tr.Lower(c.q); (n == nil) != c.lNil || (n != nil && n.Key != c.lower) {
			t.Errorf("Lower(%d) = %v", c.q, n)
		}
		if n := tr.Higher(c.q); (n == nil) != c.uNil || (n != nil && n.Key != c.upper) {
			t.Errorf("Higher(%d) = %v", c.q, n)
		}
	}
}

func TestIterationOrder(t *testing.T) {
	tr := newIntTree()
	perm := rand.New(rand.NewSource(7)).Perm(300)
	for _, v := range perm {
		tr.Insert(v, v)
	}
	keys := tr.Keys()
	if !sort.IntsAreSorted(keys) {
		t.Fatal("Keys not sorted")
	}
	if len(keys) != 300 {
		t.Fatalf("len(keys)=%d", len(keys))
	}
	// Descend yields the reverse.
	var desc []int
	tr.Descend(func(k, _ int) bool { desc = append(desc, k); return true })
	for i := range desc {
		if desc[i] != keys[len(keys)-1-i] {
			t.Fatalf("Descend order mismatch at %d", i)
		}
	}
}

func TestAscendRange(t *testing.T) {
	tr := newIntTree()
	for i := 0; i < 100; i += 10 {
		tr.Insert(i, i)
	}
	var got []int
	tr.AscendRange(25, 75, func(k, _ int) bool { got = append(got, k); return true })
	want := []int{30, 40, 50, 60, 70}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// Inclusive lower bound.
	got = got[:0]
	tr.AscendRange(30, 31, func(k, _ int) bool { got = append(got, k); return true })
	if len(got) != 1 || got[0] != 30 {
		t.Fatalf("inclusive lower bound: got %v", got)
	}
	// Early stop.
	count := 0
	tr.AscendRange(0, 100, func(_, _ int) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop: count=%d", count)
	}
}

func TestNextPrev(t *testing.T) {
	tr := newIntTree()
	for i := 0; i < 50; i++ {
		tr.Insert(i*2, i)
	}
	n := tr.Min()
	prev := -1
	for n != nil {
		if n.Key <= prev {
			t.Fatalf("Next out of order: %d after %d", n.Key, prev)
		}
		prev = n.Key
		n = n.Next()
	}
	n = tr.Max()
	next := 1000
	for n != nil {
		if n.Key >= next {
			t.Fatalf("Prev out of order: %d before %d", n.Key, next)
		}
		next = n.Key
		n = n.Prev()
	}
}

func TestClone(t *testing.T) {
	tr := newIntTree()
	for i := 0; i < 200; i++ {
		tr.Insert(i, i)
	}
	cp := tr.Clone()
	if cp.Len() != tr.Len() {
		t.Fatalf("clone len %d want %d", cp.Len(), tr.Len())
	}
	if msg := cp.CheckInvariants(); msg != "" {
		t.Fatalf("clone invariants: %s", msg)
	}
	// Divergence: mutating one must not affect the other.
	cp.Delete(100)
	cp.Insert(1000, 1)
	if !tr.Has(100) || tr.Has(1000) {
		t.Fatal("clone mutation leaked into original")
	}
	tr.Delete(50)
	if !cp.Has(50) {
		t.Fatal("original mutation leaked into clone")
	}
}

func TestCloneEmpty(t *testing.T) {
	tr := newIntTree()
	cp := tr.Clone()
	if !cp.Empty() {
		t.Fatal("clone of empty tree not empty")
	}
	cp.Insert(1, 1)
	if tr.Len() != 0 {
		t.Fatal("insert into clone affected original")
	}
}

func TestClear(t *testing.T) {
	tr := newIntTree()
	for i := 0; i < 10; i++ {
		tr.Insert(i, i)
	}
	tr.Clear()
	if !tr.Empty() || tr.Min() != nil {
		t.Fatal("Clear did not empty tree")
	}
	tr.Insert(5, 5) // reusable after Clear
	if tr.Len() != 1 {
		t.Fatal("tree unusable after Clear")
	}
}

// TestRandomizedAgainstMap drives the tree with a long random op sequence and
// cross-checks every observable against a reference map, validating red-black
// invariants as it goes.
func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := newIntTree()
	ref := map[int]int{}
	const ops = 20000
	for i := 0; i < ops; i++ {
		k := rng.Intn(2000)
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Int()
			tr.Insert(k, v)
			ref[k] = v
		case 2:
			gotDel := tr.Delete(k)
			_, had := ref[k]
			if gotDel != had {
				t.Fatalf("op %d: Delete(%d)=%v, ref had=%v", i, k, gotDel, had)
			}
			delete(ref, k)
		}
		if i%997 == 0 {
			if msg := tr.CheckInvariants(); msg != "" {
				t.Fatalf("op %d: %s", i, msg)
			}
			if tr.Len() != len(ref) {
				t.Fatalf("op %d: size %d want %d", i, tr.Len(), len(ref))
			}
		}
	}
	// Final deep comparison.
	if tr.Len() != len(ref) {
		t.Fatalf("final size %d want %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d)=%d,%v want %d,true", k, got, ok, v)
		}
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("final invariants: %s", msg)
	}
}

// Property: for any set of keys, in-order traversal equals the sorted
// deduplicated input.
func TestPropertySortedIteration(t *testing.T) {
	f := func(keys []int16) bool {
		tr := newIntTree()
		seen := map[int]bool{}
		for _, k := range keys {
			tr.Insert(int(k), 0)
			seen[int(k)] = true
		}
		want := make([]int, 0, len(seen))
		for k := range seen {
			want = append(want, k)
		}
		sort.Ints(want)
		got := tr.Keys()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return tr.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: inserting then deleting a disjoint batch restores Len and
// invariants.
func TestPropertyInsertDeleteInverse(t *testing.T) {
	f := func(base, extra []uint8) bool {
		tr := newIntTree()
		for _, k := range base {
			tr.Insert(int(k), 1)
		}
		lenBefore := tr.Len()
		added := []int{}
		for _, k := range extra {
			key := int(k) + 1000 // disjoint from base
			if tr.Insert(key, 2) {
				added = append(added, key)
			}
		}
		for _, k := range added {
			if !tr.Delete(k) {
				return false
			}
		}
		return tr.Len() == lenBefore && tr.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Floor/Ceil agree with a linear scan of the sorted key set.
func TestPropertyFloorCeil(t *testing.T) {
	f := func(keys []int16, queries []int16) bool {
		tr := newIntTree()
		for _, k := range keys {
			tr.Insert(int(k), 0)
		}
		sorted := tr.Keys()
		for _, q := range queries {
			qi := int(q)
			var wantFloor, wantCeil *int
			for i := range sorted {
				k := sorted[i]
				if k <= qi {
					wantFloor = &sorted[i]
				}
				if k >= qi && wantCeil == nil {
					wantCeil = &sorted[i]
				}
			}
			gotF := tr.Floor(qi)
			if (gotF == nil) != (wantFloor == nil) {
				return false
			}
			if gotF != nil && gotF.Key != *wantFloor {
				return false
			}
			gotC := tr.Ceil(qi)
			if (gotC == nil) != (wantCeil == nil) {
				return false
			}
			if gotC != nil && gotC.Key != *wantCeil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValues(t *testing.T) {
	tr := newIntTree()
	tr.Insert(3, 30)
	tr.Insert(1, 10)
	tr.Insert(2, 20)
	vals := tr.Values()
	want := []int{10, 20, 30}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Values=%v", vals)
		}
	}
}

func TestDescendingInsertions(t *testing.T) {
	tr := newIntTree()
	for i := 1000; i > 0; i-- {
		tr.Insert(i, i)
		if i%101 == 0 {
			if msg := tr.CheckInvariants(); msg != "" {
				t.Fatalf("at %d: %s", i, msg)
			}
		}
	}
	if tr.Min().Key != 1 || tr.Max().Key != 1000 {
		t.Fatal("min/max wrong after descending inserts")
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]int, b.N)
	for i := range keys {
		keys[i] = rng.Int()
	}
	tr := newIntTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i], i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := newIntTree()
	for i := 0; i < 100000; i++ {
		tr.Insert(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(i % 100000)
	}
}

func BenchmarkClone1000(b *testing.B) {
	tr := newIntTree()
	for i := 0; i < 1000; i++ {
		tr.Insert(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Clone()
	}
}
