package veriflow

import (
	"math/rand"
	"testing"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

func pfx(s string) ipnet.Prefix { return ipnet.MustParsePrefix(s) }

func ring(n int) (*netgraph.Graph, []netgraph.NodeID, []netgraph.LinkID) {
	g := netgraph.New()
	nodes := make([]netgraph.NodeID, n)
	for i := range nodes {
		nodes[i] = g.AddNode(string(rune('a' + i)))
	}
	links := make([]netgraph.LinkID, n)
	for i := range nodes {
		links[i] = g.AddLink(nodes[i], nodes[(i+1)%n])
	}
	return g, nodes, links
}

func TestInsertRemoveBasics(t *testing.T) {
	g, nodes, links := ring(2)
	e := NewEngine(g)
	res, err := e.InsertRule(Rule{ID: 1, Source: nodes[0], Link: links[0], Prefix: pfx("10.0.0.0/8"), Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.AffectedECs != 1 {
		t.Fatalf("ECs=%d want 1", res.AffectedECs)
	}
	if e.NumRules() != 1 {
		t.Fatal("NumRules")
	}
	if _, err := e.InsertRule(Rule{ID: 1, Source: nodes[0], Link: links[0], Prefix: pfx("10.0.0.0/8"), Priority: 1}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := e.RemoveRule(99); err == nil {
		t.Fatal("phantom removal accepted")
	}
	if _, err := e.RemoveRule(1); err != nil {
		t.Fatal(err)
	}
	if e.NumRules() != 0 {
		t.Fatal("rule not removed")
	}
	if e.Graph() != g {
		t.Fatal("Graph accessor")
	}
}

func TestAffectedECsSlicing(t *testing.T) {
	g, nodes, links := ring(2)
	e := NewEngine(g)
	// /8 over two nested /16s at different offsets slices into 5 ECs.
	e.InsertRule(Rule{ID: 1, Source: nodes[0], Link: links[0], Prefix: pfx("10.1.0.0/16"), Priority: 2})
	e.InsertRule(Rule{ID: 2, Source: nodes[0], Link: links[0], Prefix: pfx("10.200.0.0/16"), Priority: 3})
	ecs := e.AffectedECs(pfx("10.0.0.0/8"))
	if len(ecs) != 5 {
		t.Fatalf("ECs=%d want 5: %v", len(ecs), ecs)
	}
	// ECs tile the /8 exactly.
	iv := pfx("10.0.0.0/8").Interval()
	pos := iv.Lo
	for _, ec := range ecs {
		if ec.Lo != pos {
			t.Fatalf("gap at %d", pos)
		}
		pos = ec.Hi
	}
	if pos != iv.Hi {
		t.Fatalf("tiling ends at %d", pos)
	}
	// A containing shorter prefix also counts as overlapping but adds no
	// interior bounds.
	e.InsertRule(Rule{ID: 3, Source: nodes[1], Link: links[1], Prefix: pfx("0.0.0.0/0"), Priority: 1})
	if got := e.AffectedECs(pfx("10.0.0.0/8")); len(got) != 5 {
		t.Fatalf("with /0: ECs=%d want 5", len(got))
	}
}

func TestForwardingGraphPriority(t *testing.T) {
	g, nodes, links := ring(3)
	e := NewEngine(g)
	e.InsertRule(Rule{ID: 1, Source: nodes[0], Link: links[0], Prefix: pfx("10.0.0.0/8"), Priority: 1})
	e.InsertRule(Rule{ID: 2, Source: nodes[0], Link: netgraph.NoLink, Prefix: pfx("10.0.0.0/16"), Priority: 5})
	// Inside the /16 the drop rule wins: no edge.
	fg := e.ForwardingGraph(pfx("10.0.0.0/16").Interval())
	if _, ok := fg[nodes[0]]; ok {
		t.Fatalf("drop rule should remove edge: %v", fg)
	}
	// Outside it the /8 forwards.
	fg = e.ForwardingGraph(ipnet.Interval{Lo: pfx("10.1.0.0/16").Interval().Lo, Hi: pfx("10.1.0.0/16").Interval().Hi})
	if fg[nodes[0]] != links[0] {
		t.Fatalf("fg=%v", fg)
	}
}

func TestLoopDetection(t *testing.T) {
	g, nodes, links := ring(3)
	e := NewEngine(g)
	e.InsertRule(Rule{ID: 1, Source: nodes[0], Link: links[0], Prefix: pfx("10.0.0.0/8"), Priority: 1})
	e.InsertRule(Rule{ID: 2, Source: nodes[1], Link: links[1], Prefix: pfx("10.0.0.0/8"), Priority: 1})
	res, err := e.InsertRule(Rule{ID: 3, Source: nodes[2], Link: links[2], Prefix: pfx("10.0.0.0/8"), Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loops) == 0 {
		t.Fatal("ring loop missed")
	}
	// Removing one rule breaks it; the removal's own verification sees
	// no loops.
	res, _ = e.RemoveRule(2)
	if len(res.Loops) != 0 {
		t.Fatalf("loop after removal: %+v", res.Loops)
	}
}

func TestWhatIfLinkFailure(t *testing.T) {
	g, nodes, links := ring(3)
	e := NewEngine(g)
	// Two rules on links[0] with nested prefixes, one shadowing rule.
	e.InsertRule(Rule{ID: 1, Source: nodes[0], Link: links[0], Prefix: pfx("10.0.0.0/8"), Priority: 1})
	e.InsertRule(Rule{ID: 2, Source: nodes[0], Link: links[0], Prefix: pfx("10.5.0.0/16"), Priority: 2})
	// A drop rule shadows part of the /8 so those ECs do not use the link.
	e.InsertRule(Rule{ID: 3, Source: nodes[0], Link: netgraph.NoLink, Prefix: pfx("10.9.0.0/16"), Priority: 9})

	res := e.WhatIfLinkFailure(links[0], false)
	if res.AffectedECs == 0 {
		t.Fatal("no affected ECs")
	}
	// The shadowed /16 must not be counted.
	// ECs for rule 1: sliced at 10.5/16 and 10.9/16 bounds -> 5 ECs, of
	// which 10.9/16's is shadowed -> rule1 contributes 4 (one of which,
	// 10.5/16, is owned by rule 2 on the same link). Rule 2 contributes
	// its own EC (already seen). Total distinct = 4.
	if res.AffectedECs != 4 {
		t.Fatalf("AffectedECs=%d want 4", res.AffectedECs)
	}
	// An unused link is free to fail.
	if r := e.WhatIfLinkFailure(links[2], true); r.AffectedECs != 0 {
		t.Fatalf("idle link ECs=%d", r.AffectedECs)
	}
}

func TestMaxAffectedECsTracking(t *testing.T) {
	g, nodes, links := ring(2)
	e := NewEngine(g)
	for i := 0; i < 10; i++ {
		e.InsertRule(Rule{ID: core.RuleID(i + 1), Source: nodes[0], Link: links[0],
			Prefix: ipnet.NewPrefix(uint64(i)<<24, 8), Priority: 1})
	}
	before := e.MaxAffectedECs
	// A /0 overlaps all ten: at least 10 ECs.
	e.InsertRule(Rule{ID: 100, Source: nodes[1], Link: links[1], Prefix: pfx("0.0.0.0/0"), Priority: 1})
	if e.MaxAffectedECs <= before || e.MaxAffectedECs < 10 {
		t.Fatalf("MaxAffectedECs=%d", e.MaxAffectedECs)
	}
}

func TestLoadRuleEquivalentToInsert(t *testing.T) {
	g, nodes, links := ring(3)
	a := NewEngine(g)
	b := NewEngine(g)
	rules := []Rule{
		{ID: 1, Source: nodes[0], Link: links[0], Prefix: pfx("10.0.0.0/8"), Priority: 1},
		{ID: 2, Source: nodes[0], Link: links[0], Prefix: pfx("10.5.0.0/16"), Priority: 2},
		{ID: 3, Source: nodes[1], Link: links[1], Prefix: pfx("10.0.0.0/8"), Priority: 1},
	}
	for _, r := range rules {
		if _, err := a.InsertRule(r); err != nil {
			t.Fatal(err)
		}
		if err := b.LoadRule(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.LoadRule(rules[0]); err == nil {
		t.Fatal("LoadRule duplicate accepted")
	}
	// Same forwarding graphs and what-if results afterwards.
	for _, ec := range a.AffectedECs(pfx("10.0.0.0/8")) {
		fa := a.ForwardingGraph(ec)
		fb := b.ForwardingGraph(ec)
		if len(fa) != len(fb) {
			t.Fatalf("fg size differs for %v", ec)
		}
		for v, l := range fa {
			if fb[v] != l {
				t.Fatalf("fg differs at node %d for %v", v, ec)
			}
		}
	}
	ra := a.WhatIfLinkFailure(links[0], false)
	rb := b.WhatIfLinkFailure(links[0], false)
	if ra.AffectedECs != rb.AffectedECs {
		t.Fatalf("what-if differs: %d vs %d", ra.AffectedECs, rb.AffectedECs)
	}
	// LoadRule skips verification, so EC fan-out is not tracked.
	if b.MaxAffectedECs != 0 {
		t.Fatalf("LoadRule tracked ECs: %d", b.MaxAffectedECs)
	}
}

func TestMemoryBytes(t *testing.T) {
	g, nodes, links := ring(2)
	e := NewEngine(g)
	m0 := e.MemoryBytes()
	for i := 0; i < 100; i++ {
		e.InsertRule(Rule{ID: core.RuleID(i + 1), Source: nodes[0], Link: links[0],
			Prefix: ipnet.NewPrefix(uint64(i)<<20, 12), Priority: 1})
	}
	if e.MemoryBytes() <= m0 {
		t.Fatal("memory accounting not increasing")
	}
}

// TestDifferentialVsDeltaNet runs the same randomized workload through both
// engines and compares per-device forwarding decisions at sampled
// addresses, plus loop verdicts (DESIGN.md invariant 6).
func TestDifferentialVsDeltaNet(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := netgraph.New()
	var nodes []netgraph.NodeID
	for i := 0; i < 5; i++ {
		nodes = append(nodes, g.AddNode(string(rune('a'+i))))
	}
	var links []netgraph.LinkID
	for i := range nodes {
		for j := range nodes {
			if i != j {
				links = append(links, g.AddLink(nodes[i], nodes[j]))
			}
		}
	}
	dn := core.NewNetwork(g, core.Options{})
	vf := NewEngine(g)

	var live []core.RuleID
	nextID := core.RuleID(1)
	for op := 0; op < 300; op++ {
		if len(live) == 0 || rng.Intn(100) < 65 {
			l := links[rng.Intn(len(links))]
			src := g.Link(l).Src
			length := 4 + rng.Intn(12) // short prefixes: heavy overlap
			addr := uint64(rng.Intn(1<<16)) << 16
			p := ipnet.NewPrefix(addr, length)
			prio := core.Priority(rng.Intn(30))
			id := nextID
			nextID++
			link := l
			if rng.Intn(10) == 0 {
				link = netgraph.NoLink
			}
			if _, err := dn.InsertRule(core.Rule{ID: id, Source: src, Link: link, Match: p.Interval(), Priority: prio}); err != nil {
				t.Fatal(err)
			}
			if _, err := vf.InsertRule(Rule{ID: id, Source: src, Link: link, Prefix: p, Priority: prio}); err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		} else {
			k := rng.Intn(len(live))
			id := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if _, err := dn.RemoveRule(id); err != nil {
				t.Fatal(err)
			}
			if _, err := vf.RemoveRule(id); err != nil {
				t.Fatal(err)
			}
		}
		if op%29 != 0 {
			continue
		}
		// Sample addresses; compare forwarding at every node.
		for s := 0; s < 40; s++ {
			addr := uint64(rng.Intn(1 << 32))
			ec := ipnet.Interval{Lo: addr, Hi: addr + 1}
			fg := vf.ForwardingGraph(ec)
			atom := dn.AtomOf(addr)
			for _, v := range nodes {
				want, ok := fg[v]
				got := dn.ForwardLink(v, atom)
				if !ok {
					// Veriflow has no edge: either no rule or a
					// drop rule won.
					if got != netgraph.NoLink && !g.IsDropLink(got) {
						t.Fatalf("op %d addr %d node %d: delta-net %d, veriflow none", op, addr, v, got)
					}
				} else if got != want {
					t.Fatalf("op %d addr %d node %d: delta-net %d, veriflow %d", op, addr, v, got, want)
				}
			}
		}
	}
}
