package binproto

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzBinaryFrame throws arbitrary bytes at the frame decoder: it must
// never panic, never allocate proportionally to a lying length prefix
// beyond MaxFrame, and every frame it does accept must re-encode and
// re-decode to the same value (so the accepted language round-trips).
func FuzzBinaryFrame(f *testing.F) {
	// Well-formed seeds: empty ops frame, a small mixed frame, a large
	// frame, a sync barrier, and two frames back to back.
	rng := rand.New(rand.NewSource(7))
	f.Add(AppendOps(nil, nil))
	f.Add(AppendOps(nil, randomOps(rng, 3)))
	f.Add(AppendOps(nil, randomOps(rng, 300)))
	f.Add(AppendSync(nil, 12345))
	f.Add(AppendSync(AppendOps(nil, randomOps(rng, 5)), 1))
	// Malformed seeds: truncations, bad kinds and tags, huge counts.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 99})
	f.Add([]byte{3, 0, 0, 0, KindOps, 1, 7})
	f.Add([]byte{255, 255, 255, 255})
	f.Add(AppendOps(nil, randomOps(rng, 2))[:9])

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewReader(bytes.NewReader(data))
		for {
			frame, err := fr.Read()
			if err != nil {
				if err != io.EOF && err == nil {
					t.Fatal("unreachable")
				}
				return
			}
			// Round-trip what was accepted: encode the decoded frame and
			// decode it again; the two frames must agree.
			var re []byte
			if frame.Kind == KindSync {
				re = AppendSync(nil, frame.Token)
			} else {
				re = AppendOps(nil, frame.Ops)
			}
			ops := append([]byte(nil), re...)
			again, err := NewReader(bytes.NewReader(ops)).Read()
			if err != nil {
				t.Fatalf("re-decode of accepted frame failed: %v", err)
			}
			if again.Kind != frame.Kind || again.Token != frame.Token ||
				len(again.Ops) != len(frame.Ops) {
				t.Fatalf("round trip diverged: %+v vs %+v", frame, again)
			}
			for i := range frame.Ops {
				if !reflect.DeepEqual(again.Ops[i], frame.Ops[i]) {
					t.Fatalf("round trip diverged at op %d: %+v vs %+v", i, frame.Ops[i], again.Ops[i])
				}
			}
		}
	})
}
