package bgp

import (
	"testing"

	"deltanet/internal/ipnet"
)

func TestFeedDeterministic(t *testing.T) {
	a := NewFeed(1, 0.3).Prefixes(100)
	b := NewFeed(1, 0.3).Prefixes(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prefix %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := NewFeed(2, 0.3).Prefixes(100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds identical")
	}
}

func TestFeedLengthDistribution(t *testing.T) {
	ps := NewFeed(3, 0).Prefixes(5000)
	counts := map[int]int{}
	for _, p := range ps {
		if p.Len < 8 || p.Len > 24 {
			t.Fatalf("prefix length %d out of BGP range", p.Len)
		}
		counts[p.Len]++
	}
	// /24 dominates; /16 is a clear secondary mode.
	if counts[24] < counts[16] || counts[16] < counts[8] {
		t.Fatalf("length distribution shape wrong: /24=%d /16=%d /8=%d",
			counts[24], counts[16], counts[8])
	}
	if float64(counts[24])/float64(len(ps)) < 0.3 {
		t.Fatalf("/24 share too small: %d/%d", counts[24], len(ps))
	}
}

func TestFeedNesting(t *testing.T) {
	ps := NewFeed(4, 0.8).Prefixes(2000)
	nested := 0
	for i, p := range ps {
		for j := 0; j < i; j++ {
			q := ps[j]
			if q.Len < p.Len && p.Interval().CoveredBy(q.Interval()) {
				nested++
				break
			}
		}
	}
	if nested < 200 {
		t.Fatalf("high-nesting feed produced only %d nested prefixes", nested)
	}
	// Zero nesting: overlap still possible by chance but much rarer.
	ps0 := NewFeed(4, 0).Prefixes(2000)
	nested0 := 0
	for i, p := range ps0 {
		for j := 0; j < i; j++ {
			q := ps0[j]
			if q.Len < p.Len && p.Interval().CoveredBy(q.Interval()) {
				nested0++
				break
			}
		}
	}
	if nested0 >= nested {
		t.Fatalf("nesting knob ineffective: %d vs %d", nested0, nested)
	}
	// Clamping.
	if NewFeed(1, -5) == nil || NewFeed(1, 5) == nil {
		t.Fatal("clamped feeds nil")
	}
}

func TestUniquePrefixes(t *testing.T) {
	ps := NewFeed(5, 0.5).UniquePrefixes(500)
	if len(ps) != 500 {
		t.Fatalf("len=%d", len(ps))
	}
	seen := map[ipnet.Prefix]bool{}
	for _, p := range ps {
		if seen[p] {
			t.Fatalf("duplicate %v", p)
		}
		seen[p] = true
	}
}

func TestPrefixesInUnicastSpace(t *testing.T) {
	for _, p := range NewFeed(6, 0.3).Prefixes(1000) {
		iv := p.Interval()
		if iv.Hi > 224<<24 { // below multicast space
			t.Fatalf("prefix %v reaches into multicast space", p)
		}
		if iv.Lo < 1<<24 {
			t.Fatalf("prefix %v in 0.0.0.0/8", p)
		}
	}
}

func TestUpdates(t *testing.T) {
	ups := NewFeed(7, 0.3).Updates(1000)
	if len(ups) != 1000 {
		t.Fatalf("len=%d", len(ups))
	}
	live := map[ipnet.Prefix]int{}
	for _, u := range ups {
		switch u.Kind {
		case Announce:
			live[u.Prefix]++
		case Withdraw:
			if live[u.Prefix] == 0 {
				t.Fatal("withdraw of non-announced prefix")
			}
			live[u.Prefix]--
		}
	}
	// Mixed stream: both kinds present.
	hasW := false
	for _, u := range ups {
		if u.Kind == Withdraw {
			hasW = true
		}
	}
	if !hasW {
		t.Fatal("no withdrawals generated")
	}
}
