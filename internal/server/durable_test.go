package server

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/monitor"
	"deltanet/internal/netgraph"
)

// TestUnwatchNotOwnedRegression: a connection must not be able to
// release a reference held by another connection or a preload. Before
// the fix, A's unwatch of an id it never registered released B's (or
// the preload's) reference while B's own bookkeeping still counted it,
// so B's disconnect sweep over-released the refcount and tore down the
// invariant for everyone.
func TestUnwatchNotOwnedRegression(t *testing.T) {
	s, addr, cleanup := startServer(t)
	defer cleanup()

	ctl := dial(t, addr)
	defer ctl.close()
	ctl.roundTrip(t, "node a")
	ctl.roundTrip(t, "node b")
	ctl.roundTrip(t, "link 0 1")

	// A dnserve-style preload holding its own reference.
	preID, _ := s.Monitor().Register(monitor.Reachable{From: 0, To: 1})

	connA := dial(t, addr)
	defer connA.close()
	connB := dial(t, addr)
	defer connB.close()

	// B watches the same spec (same id, refcount 2) plus a sentinel of
	// its own, whose teardown marks B's disconnect sweep as finished.
	if got := connB.roundTrip(t, "W reach 0 1"); got != fmt.Sprintf("ok watch %d violated", preID) {
		t.Fatalf("B register: %q", got)
	}
	connB.roundTrip(t, "W reach 1 0")

	// A, which owns nothing, must not be able to release either
	// reference. (The old code released it here: the preloaded invariant
	// died immediately, and with B registered, A's release plus B's
	// sweep double-released the refcount.)
	if got := connA.roundTrip(t, fmt.Sprintf("unwatch %d", preID)); !strings.Contains(got, "not owned") {
		t.Fatalf("A unwatch of unowned id: %q, want ownership refusal", got)
	}
	// Unknown ids still report as unknown, not as ownership errors.
	if got := connA.roundTrip(t, "unwatch 9999"); got != "err unknown watch id" {
		t.Fatalf("A unwatch of unknown id: %q", got)
	}

	// B disconnects; its sweep must release exactly its own references
	// (the sentinel's death signals the sweep ran).
	connB.close()
	waitFor(t, func() bool { return s.Monitor().NumRegistered() <= 1 })

	// The preloaded invariant survived with exactly its own reference:
	// alive now, gone after the one legitimate release.
	if _, _, ok := s.Monitor().Status(preID); !ok {
		t.Fatalf("preloaded invariant %d was torn down by a foreign unwatch", preID)
	}
	if !s.Monitor().Unregister(preID) {
		t.Fatalf("final preload release failed")
	}
	if _, _, ok := s.Monitor().Status(preID); ok {
		t.Fatalf("invariant alive after final release: refcount over-counted")
	}
}

// TestScannerErrorReported: a line over the scanner limit must produce
// an explicit error line before the connection closes — not a silent
// vanishing act.
func TestScannerErrorReported(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()

	c.roundTrip(t, "node a")
	if _, err := c.conn.Write(append(bytes.Repeat([]byte{'x'}, maxLine+2), '\n')); err != nil {
		t.Fatal(err)
	}
	if !c.r.Scan() {
		t.Fatalf("no error line before close: %v", c.r.Err())
	}
	if got := c.r.Text(); !strings.HasPrefix(got, "err line too long") {
		t.Fatalf("scanner error line: %q", got)
	}
	if c.r.Scan() {
		t.Fatalf("connection stayed open after scanner error: %q", c.r.Text())
	}
}

// TestBatchScannerErrorDistinguished: a scanner error inside a batch
// body is reported as such, not mislabelled a client disconnect.
func TestBatchScannerErrorDistinguished(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	c := dial(t, addr)
	defer c.close()
	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "link 0 1")

	if _, err := fmt.Fprintf(c.conn, "B 2\nI 1 0 0 0 100 1\n%s\n",
		bytes.Repeat([]byte{'y'}, maxLine+2)); err != nil {
		t.Fatal(err)
	}
	if !c.r.Scan() {
		t.Fatalf("no error line: %v", c.r.Err())
	}
	if got := c.r.Text(); !strings.HasPrefix(got, "err batch line too long") {
		t.Fatalf("batch scanner error: %q", got)
	}
}

// eventsTopo builds a->b->c with a watched reach 0 2 and returns a
// control client. Toggling rule 1 with toggleRule then flips the
// verdict once per call.
func eventsTopo(t *testing.T, addr string) *client {
	t.Helper()
	c := dial(t, addr)
	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "node c")
	c.roundTrip(t, "link 0 1")
	c.roundTrip(t, "link 1 2")
	c.roundTrip(t, "W reach 0 2")
	c.roundTrip(t, "I 2 1 1 0 100 1") // second hop, no transition yet
	return c
}

func toggleRule(t *testing.T, c *client, i int) {
	t.Helper()
	var got string
	if i%2 == 0 {
		got = c.roundTrip(t, "I 1 0 0 0 100 1")
	} else {
		got = c.roundTrip(t, "R 1")
	}
	if !strings.HasPrefix(got, "ok") {
		t.Fatalf("toggle %d: %q", i, got)
	}
}

// TestEventsSinceProtocol: the pull-replay command returns exactly the
// missed suffix, and an explicit gap line once the backlog truncates.
func TestEventsSinceProtocol(t *testing.T) {
	s, addr, cleanup := startServer(t)
	defer cleanup()
	c := eventsTopo(t, addr)
	defer c.close()
	toggleRule(t, c, 0) // seq 1: cleared
	toggleRule(t, c, 1) // seq 2: violation

	if got := c.roundTrip(t, "events since 0"); got != "ok events n=2" {
		t.Fatalf("events since 0: %q", got)
	}
	for i, want := range []string{"event 0 cleared reach a c upd=", "event 0 violation reach a c upd="} {
		if !c.r.Scan() || !strings.HasPrefix(c.r.Text(), want) {
			t.Fatalf("replay line %d: %q (%v)", i, c.r.Text(), c.r.Err())
		}
		if !strings.Contains(c.r.Text(), fmt.Sprintf("seq=%d", i+1)) {
			t.Fatalf("replay line %d missing seq: %q", i, c.r.Text())
		}
	}
	if got := c.roundTrip(t, "events since 2"); got != "ok events n=0" {
		t.Fatalf("events since head: %q", got)
	}
	// A cursor ahead of the stream — a previous server incarnation's —
	// is an explicit gap, not a silent "caught up".
	if got := c.roundTrip(t, "events since 99"); got != "ok events n=1" {
		t.Fatalf("events since foreign seq: %q", got)
	}
	if !c.r.Scan() || c.r.Text() != "gap 3:99" {
		t.Fatalf("foreign-cursor gap line: %q (%v)", c.r.Text(), c.r.Err())
	}
	if got := c.roundTrip(t, "events since x"); got != "err bad sequence number" {
		t.Fatalf("events since junk: %q", got)
	}
	if got := c.roundTrip(t, "events"); !strings.HasPrefix(got, "err usage") {
		t.Fatalf("events bare: %q", got)
	}

	// Shrink the backlog so seq 1 falls off: the gap must be explicit.
	s.Monitor().SetBacklog(1)
	if got := c.roundTrip(t, "events since 0"); got != "ok events n=2" {
		t.Fatalf("events since 0 after truncation: %q", got)
	}
	if !c.r.Scan() || c.r.Text() != "gap 1:1" {
		t.Fatalf("gap line: %q (%v)", c.r.Text(), c.r.Err())
	}
	if !c.r.Scan() || !strings.Contains(c.r.Text(), "seq=2") {
		t.Fatalf("post-gap replay: %q (%v)", c.r.Text(), c.r.Err())
	}
}

// eventSeq extracts the seq=<n> attribute from an event line.
func eventSeq(t *testing.T, line string) uint64 {
	t.Helper()
	for _, f := range strings.Fields(line) {
		if rest, ok := strings.CutPrefix(f, "seq="); ok {
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("bad seq in %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no seq in %q", line)
	return 0
}

// TestWatchSinceReconnect: a watcher that disconnects mid-churn and
// resumes with "watch since <seq>" sees every transition exactly once —
// the replayed suffix and the live stream meet with no hole and no
// duplicate — so its folded verdict history equals an uninterrupted
// watcher's. Run with -race: the churn is concurrent with the
// disconnect/reconnect.
func TestWatchSinceReconnect(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()
	ctl := eventsTopo(t, addr)
	defer ctl.close()
	// Sentinel pair on its own island: its event marks end-of-churn.
	ctl.roundTrip(t, "node x")
	ctl.roundTrip(t, "node y")
	ctl.roundTrip(t, "link 3 4")
	ctl.roundTrip(t, "W reach 3 4")

	const toggles = 40
	churnDone := make(chan error, 1)
	go func() {
		m := dial(t, addr)
		defer m.close()
		for i := 0; i < toggles; i++ {
			var req string
			if i%2 == 0 {
				req = "I 1 0 0 0 100 1"
			} else {
				req = "R 1"
			}
			if _, err := fmt.Fprintln(m.conn, req); err != nil {
				churnDone <- err
				return
			}
			if !m.r.Scan() || !strings.HasPrefix(m.r.Text(), "ok") {
				churnDone <- fmt.Errorf("toggle %d: %q", i, m.r.Text())
				return
			}
		}
		if _, err := fmt.Fprintln(m.conn, "I 900 3 2 0 100 1"); err != nil {
			churnDone <- err
			return
		}
		if !m.r.Scan() || !strings.HasPrefix(m.r.Text(), "ok") {
			churnDone <- fmt.Errorf("sentinel: %q", m.r.Text())
			return
		}
		churnDone <- nil
	}()

	// Session 1: watch from the start, bail out after a few events.
	w := dial(t, addr)
	if got := w.roundTrip(t, "watch"); got != "ok watching" {
		t.Fatalf("watch: %q", got)
	}
	var lastSeq uint64
	seen := map[uint64]string{}
	firstSession := 0
	for firstSession < 5 {
		if !w.r.Scan() {
			t.Fatalf("session 1 ended early: %v", w.r.Err())
		}
		line := w.r.Text()
		if !strings.HasPrefix(line, "event ") {
			continue // status snapshot
		}
		seq := eventSeq(t, line)
		if _, dup := seen[seq]; dup {
			t.Fatalf("duplicate seq %d in session 1: %q", seq, line)
		}
		seen[seq] = line
		if seq > lastSeq {
			lastSeq = seq
		}
		firstSession++
	}
	w.close() // abrupt disconnect mid-churn

	// Session 2: resume from the recorded cursor; churn is still going.
	w2 := dial(t, addr)
	defer w2.close()
	if got := w2.roundTrip(t, fmt.Sprintf("watch since %d", lastSeq)); got != "ok watching" {
		t.Fatalf("watch since: %q", got)
	}
	for {
		if !w2.r.Scan() {
			t.Fatalf("session 2 ended early: %v", w2.r.Err())
		}
		line := w2.r.Text()
		if strings.HasPrefix(line, "gap ") {
			t.Fatalf("unexpected gap (backlog big enough): %q", line)
		}
		if strings.HasPrefix(line, "status ") {
			t.Fatalf("unexpected snapshot on seamless resume: %q", line)
		}
		if !strings.HasPrefix(line, "event ") {
			continue
		}
		seq := eventSeq(t, line)
		if _, dup := seen[seq]; dup {
			t.Fatalf("seq %d delivered twice across sessions: %q", seq, line)
		}
		seen[seq] = line
		if seq > lastSeq {
			lastSeq = seq
		}
		if strings.HasPrefix(line, "event 1 cleared reach x y") {
			break // sentinel: churn over, all prior events delivered
		}
	}
	if err := <-churnDone; err != nil {
		t.Fatal(err)
	}

	// The two sessions together saw a contiguous, duplicate-free stream
	// from the watcher's anchor to the sentinel — the same fold an
	// uninterrupted watcher makes. (Events published before session 1's
	// subscription are covered by its status snapshot, not the stream,
	// so the anchor is the first event seq seen, not necessarily 1.)
	firstSeq := lastSeq
	for seq := range seen {
		if seq < firstSeq {
			firstSeq = seq
		}
	}
	if int(lastSeq-firstSeq+1) != len(seen) {
		t.Fatalf("saw %d events, want %d (holes in the stream)", len(seen), lastSeq-firstSeq+1)
	}
	for seq := firstSeq; seq <= lastSeq; seq++ {
		if _, ok := seen[seq]; !ok {
			t.Fatalf("seq %d missing from the folded stream", seq)
		}
	}
	// Folding the per-invariant stream gives the live verdict: the last
	// toggle (toggles even => R) leaves reach 0 2 violated.
	var last string
	for seq := firstSeq; seq <= lastSeq; seq++ {
		if strings.HasPrefix(seen[seq], "event 0 ") {
			last = seen[seq]
		}
	}
	if !strings.HasPrefix(last, "event 0 violation") {
		t.Fatalf("folded verdict: %q, want violation", last)
	}
	if got := ctl.roundTrip(t, "W reach 0 2"); !strings.HasSuffix(got, "violated") {
		t.Fatalf("live verdict: %q", got)
	}
}

// TestWatchSinceGapReanchors: when the backlog no longer covers the
// resume cursor, the server says so explicitly and re-anchors the
// client with a fresh status snapshot before streaming.
func TestWatchSinceGapReanchors(t *testing.T) {
	s, addr, cleanup := startServer(t)
	defer cleanup()
	c := eventsTopo(t, addr)
	defer c.close()
	s.Monitor().SetBacklog(1)
	for i := 0; i < 4; i++ {
		toggleRule(t, c, i) // seqs 1..4; backlog retains only 4
	}

	w := dial(t, addr)
	defer w.close()
	if got := w.roundTrip(t, "watch since 1"); got != "ok watching" {
		t.Fatalf("watch since: %q", got)
	}
	if !w.r.Scan() || w.r.Text() != "gap 2:3" {
		t.Fatalf("gap line: %q (%v)", w.r.Text(), w.r.Err())
	}
	if !w.r.Scan() || !strings.HasPrefix(w.r.Text(), "status 0 violated reach a c") {
		t.Fatalf("re-anchor snapshot: %q (%v)", w.r.Text(), w.r.Err())
	}
	// Live streaming resumes after the snapshot.
	toggleRule(t, c, 0) // seq 5: cleared
	if !w.r.Scan() || !strings.Contains(w.r.Text(), "seq=5") {
		t.Fatalf("live event after re-anchor: %q (%v)", w.r.Text(), w.r.Err())
	}

	// A cursor ahead of the stream — a watcher resuming against a
	// restarted server whose stream started over — re-anchors the same
	// way, and crucially the stale high cursor must not suppress the
	// fresh stream's low sequence numbers.
	w2 := dial(t, addr)
	defer w2.close()
	if got := w2.roundTrip(t, "watch since 99"); got != "ok watching" {
		t.Fatalf("watch since foreign: %q", got)
	}
	if !w2.r.Scan() || w2.r.Text() != "gap 6:99" {
		t.Fatalf("foreign gap line: %q (%v)", w2.r.Text(), w2.r.Err())
	}
	if !w2.r.Scan() || !strings.HasPrefix(w2.r.Text(), "status 0 holds reach a c") {
		t.Fatalf("foreign re-anchor snapshot: %q (%v)", w2.r.Text(), w2.r.Err())
	}
	toggleRule(t, c, 1) // seq 6: violation, far below the stale cursor
	if !w2.r.Scan() || !strings.Contains(w2.r.Text(), "seq=6") {
		t.Fatalf("live event after foreign re-anchor: %q (%v)", w2.r.Text(), w2.r.Err())
	}
}

// TestWatchLinesCarrySinkSet: status and event lines must render specs
// in their canonical FormatSpec form. Spec.String() omits
// BlackHoleFree's sink set, which made a sinked and a sink-less
// blackholefree watch indistinguishable on the wire — and the printed
// spec no longer parsed back (ParseSpec) to the invariant it named.
func TestWatchLinesCarrySinkSet(t *testing.T) {
	_, addr, cleanup := startServer(t)
	defer cleanup()

	c := dial(t, addr)
	defer c.close()
	c.roundTrip(t, "node a")
	c.roundTrip(t, "node b")
	c.roundTrip(t, "node c")
	c.roundTrip(t, "link 0 1")
	c.roundTrip(t, "link 1 2")
	// Two distinct invariants that String() renders identically.
	if got := c.roundTrip(t, "W blackholefree"); got != "ok watch 0 holds" {
		t.Fatalf("register plain: %q", got)
	}
	if got := c.roundTrip(t, "W blackholefree sinks=1"); got != "ok watch 1 holds" {
		t.Fatalf("register sinked: %q", got)
	}

	w := dial(t, addr)
	defer w.close()
	if got := w.roundTrip(t, "watch"); got != "ok watching" {
		t.Fatalf("watch: %q", got)
	}
	for i, want := range []string{"status 0 holds blackholefree --", "status 1 holds blackholefree sinks=b --"} {
		if !w.r.Scan() || !strings.HasPrefix(w.r.Text(), want) {
			t.Fatalf("status line %d: %q want prefix %q (%v)", i, w.r.Text(), want, w.r.Err())
		}
	}

	// Packets now end at node 1: a black hole for the plain invariant, a
	// sink for the other.
	c.roundTrip(t, "I 1 0 0 0 100 1")
	if !w.r.Scan() || !strings.HasPrefix(w.r.Text(), "event 0 violation blackholefree upd=") {
		t.Fatalf("plain violation: %q (%v)", w.r.Text(), w.r.Err())
	}
	// Packets now end at node 2 instead: the sinked invariant violates
	// too, and its event line must name the sink set.
	c.roundTrip(t, "I 2 1 1 0 100 1")
	if !w.r.Scan() || !strings.HasPrefix(w.r.Text(), "event 1 violation blackholefree sinks=b upd=") {
		t.Fatalf("sinked violation: %q (%v)", w.r.Text(), w.r.Err())
	}
}

// TestStateRoundTrip is the kill/restart oracle: a server saved with
// topology, rules (including a drop rule), and standing invariants and
// restored into a fresh process must forward identically, keep its ids,
// and re-register every invariant with the verdict a from-scratch
// evaluation gives (which is what registration at save time computed).
func TestStateRoundTrip(t *testing.T) {
	s1 := New()
	a := s1.Graph().AddNode("a")
	b := s1.Graph().AddNode("b")
	c := s1.Graph().AddNode("c")
	l0 := s1.Graph().AddLink(a, b)
	l1 := s1.Graph().AddLink(b, c)
	var d core.Delta
	for _, r := range []core.Rule{
		{ID: 1, Source: a, Link: l0, Match: ipnet.Interval{Lo: 0, Hi: 1000}, Priority: 5},
		{ID: 2, Source: b, Link: l1, Match: ipnet.Interval{Lo: 0, Hi: 500}, Priority: 5},
		{ID: 3, Source: b, Link: netgraph.NoLink, Match: ipnet.Interval{Lo: 500, Hi: 1000}, Priority: 5}, // drop rule
	} {
		if err := s1.Network().InsertRuleInto(r, &d); err != nil {
			t.Fatal(err)
		}
	}
	specs := []monitor.Spec{
		monitor.Reachable{From: a, To: c},
		monitor.Waypoint{From: a, To: c, Via: b},
		monitor.Isolated{GroupA: []netgraph.NodeID{a}, GroupB: []netgraph.NodeID{c}},
		monitor.LoopFree{},
		monitor.BlackHoleFree{Sinks: map[netgraph.NodeID]bool{c: true}},
	}
	for _, sp := range specs {
		s1.Monitor().Register(sp)
	}

	var buf bytes.Buffer
	if err := s1.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	s2 := New()
	if err := s2.LoadState(strings.NewReader(saved)); err != nil {
		t.Fatalf("LoadState: %v\nstate:\n%s", err, saved)
	}

	// Topology comes back id-for-id, including the drop bookkeeping the
	// plain node/link rows cannot carry.
	if s2.Graph().NumNodes() != s1.Graph().NumNodes() || s2.Graph().NumLinks() != s1.Graph().NumLinks() {
		t.Fatalf("topology size: %d/%d nodes, %d/%d links",
			s2.Graph().NumNodes(), s1.Graph().NumNodes(), s2.Graph().NumLinks(), s1.Graph().NumLinks())
	}
	for v := 0; v < s1.Graph().NumNodes(); v++ {
		if s1.Graph().NodeName(netgraph.NodeID(v)) != s2.Graph().NodeName(netgraph.NodeID(v)) {
			t.Fatalf("node %d renamed: %q vs %q", v,
				s1.Graph().NodeName(netgraph.NodeID(v)), s2.Graph().NodeName(netgraph.NodeID(v)))
		}
	}
	if s1.Graph().DropNode() != s2.Graph().DropNode() {
		t.Fatalf("drop node: %d vs %d", s1.Graph().DropNode(), s2.Graph().DropNode())
	}
	if !core.BehaviourEqual(s1.Network(), s2.Network()) {
		t.Fatalf("restored network forwards differently")
	}

	// Every invariant re-registered with its from-scratch verdict.
	want := s1.Monitor().Invariants()
	got := s2.Monitor().Invariants()
	if len(got) != len(want) || len(got) != len(specs) {
		t.Fatalf("restored %d invariants, want %d", len(got), len(want))
	}
	for i := range want {
		if monitor.FormatSpec(got[i].Spec) != monitor.FormatSpec(want[i].Spec) || got[i].Status != want[i].Status {
			t.Fatalf("invariant %d: %q %v, want %q %v", i,
				monitor.FormatSpec(got[i].Spec), got[i].Status,
				monitor.FormatSpec(want[i].Spec), want[i].Status)
		}
	}

	// The restored server keeps checking incrementally: removing the
	// second hop must flip reach and waypoint exactly as on s1.
	var d2 core.Delta
	if err := s2.Network().RemoveRuleInto(2, &d2); err != nil {
		t.Fatal(err)
	}
	if evs := s2.Monitor().Apply(&d2); len(evs) == 0 {
		t.Fatalf("restored monitor inert after mutation")
	}

	// Restoring into a non-empty server is refused.
	if err := s2.LoadState(strings.NewReader(saved)); err == nil {
		t.Fatalf("LoadState into non-empty server succeeded")
	}
	// Garbage is refused with a line number.
	if err := New().LoadState(strings.NewReader(stateHeader + "\nnonsense here\n")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("garbage state error: %v", err)
	}
	if err := New().LoadState(strings.NewReader("not a state file\n")); err == nil {
		t.Fatalf("missing header accepted")
	}
}
