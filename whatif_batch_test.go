package deltanet

import (
	"fmt"
	"math/rand"
	"testing"
)

// whatifTopo builds a 5-switch mesh on two checkers so batch and
// sequential application can be compared link by link.
func whatifTopo() (*Checker, *Checker, []SwitchID, []LinkID) {
	build := func() (*Checker, []SwitchID, []LinkID) {
		c := New(WithoutLoopChecking())
		var sw []SwitchID
		for i := 0; i < 5; i++ {
			sw = append(sw, c.AddSwitch(fmt.Sprintf("s%d", i)))
		}
		var links []LinkID
		for i := range sw {
			for j := range sw {
				if i != j {
					links = append(links, c.AddLink(sw[i], sw[j]))
				}
			}
		}
		return c, sw, links
	}
	a, sw, links := build()
	b, _, _ := build()
	return a, b, sw, links
}

// TestWhatIfAfterBatchMatchesSequential: the failure subgraph computed
// after an atomic batch must be identical, link for link and atom range
// for atom range, to one computed after the same updates applied one at a
// time — ApplyBatch's dedup/compaction must not perturb what-if analyses.
func TestWhatIfAfterBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	batchC, seqC, _, links := whatifTopo()

	nextID := RuleID(1)
	var live []RuleID
	randomOps := func(n int) []BatchOp {
		var ops []BatchOp
		removed := map[RuleID]bool{}
		for k := 0; k < n; k++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				id := live[rng.Intn(len(live))]
				if removed[id] {
					continue
				}
				removed[id] = true
				ops = append(ops, RemoveOp(id))
				continue
			}
			l := links[rng.Intn(len(links))]
			lo := uint64(rng.Intn(1 << 14))
			r := Rule{
				ID:       nextID,
				Source:   batchC.Network().Graph().Link(l).Src,
				Link:     l,
				Match:    Interval{Lo: lo, Hi: lo + 1 + uint64(rng.Intn(1<<12))},
				Priority: Priority(rng.Intn(16)),
			}
			nextID++
			live = append(live, r.ID)
			ops = append(ops, InsertOp(r))
		}
		var kept []RuleID
		for _, id := range live {
			if !removed[id] {
				kept = append(kept, id)
			}
		}
		live = kept
		return ops
	}

	for round := 0; round < 8; round++ {
		ops := randomOps(12)
		if _, err := batchC.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			var err error
			if op.Insert {
				_, err = seqC.InsertRule(op.Rule)
			} else {
				_, err = seqC.RemoveRule(op.Rule.ID)
			}
			if err != nil {
				t.Fatal(err)
			}
		}

		if !BehaviourEqual(batchC, seqC) {
			t.Fatalf("round %d: behaviours diverge", round)
		}
		for _, l := range links {
			bs := batchC.WhatIfLinkFails(l)
			ss := seqC.WhatIfLinkFails(l)
			if got, want := fingerprint(batchC, l, bs.Links, bs.Labels, bs.Affected),
				fingerprint(seqC, l, ss.Links, ss.Labels, ss.Affected); got != want {
				t.Fatalf("round %d link %d:\nbatch: %s\nseq:   %s", round, l, got, want)
			}
		}
	}
}

// fingerprint canonicalizes a failure subgraph by rendering every
// affected label as merged address intervals (atom ids may differ between
// the two engines; address ranges may not).
func fingerprint(c *Checker, failed LinkID, links []LinkID, labels []*AtomSet, affected *AtomSet) string {
	s := fmt.Sprintf("fail=%d affected=%v", failed, rangesOf(c, affected))
	for i, l := range links {
		s += fmt.Sprintf(" %d=%v", l, rangesOf(c, labels[i]))
	}
	return s
}

// rangesOf converts an atom set to merged address intervals.
func rangesOf(c *Checker, atoms *AtomSet) []Interval {
	var out []Interval
	c.Network().ForEachAtom(func(id AtomID, iv Interval) bool {
		if !atoms.Contains(int(id)) {
			return true
		}
		if n := len(out); n > 0 && out[n-1].Hi == iv.Lo {
			out[n-1].Hi = iv.Hi
		} else {
			out = append(out, iv)
		}
		return true
	})
	return out
}
