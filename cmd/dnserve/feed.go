// feed.go wires the repo's feed generators into dnserve as live replay
// sources: -feed builds an update stream from one of the substrate
// packages (internal/bgp churn, internal/sdnip controller traces,
// internal/openflow recorded op streams) and replays it through the
// same ingest ring the binary batch protocol uses (Server.IngestOps),
// so a single flag turns the service into a sustained-rate harness —
// backpressure, coalescing, journaling, and watch evaluation all
// exercised exactly as a remote binary client would.
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"deltanet/internal/bgp"
	"deltanet/internal/core"
	"deltanet/internal/datasets"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
	"deltanet/internal/openflow"
	"deltanet/internal/server"
)

// feedUsage documents the -feed grammar (also in the flag help).
const feedUsage = "bgp:<updates>[:<seed>], sdnip:<airtel1|airtel2|4switch>[:<scale>], or openflow:<file>"

// feedChunk is how many ops each IngestOps call carries: large enough
// to amortize the per-call validation read lock, small enough that the
// ring's backpressure granularity stays fine.
const feedChunk = 256

// feedSource is a built feed: a name for logging, the op stream, and —
// for sources that define their own network — the topology that must be
// rebuilt into the server before replay.
type feedSource struct {
	name  string
	ops   []core.BatchOp
	graph *netgraph.Graph // nil: replay against the topology already loaded
}

// buildFeed parses a -feed spec and materializes the op stream. It does
// not touch the server; installFeedTopology does that after the caller
// has settled -trace/-state loading.
func buildFeed(spec string) (*feedSource, error) {
	kind, rest, _ := strings.Cut(spec, ":")
	switch kind {
	case "bgp":
		nStr, seedStr, haveSeed := strings.Cut(rest, ":")
		n, err := strconv.Atoi(nStr)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-feed %q: want bgp:<updates>[:<seed>] with a positive update count", spec)
		}
		seed := int64(1)
		if haveSeed {
			seed, err = strconv.ParseInt(seedStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("-feed %q: bad seed %q", spec, seedStr)
			}
		}
		g, ops := bgpFeed(n, seed)
		return &feedSource{name: spec, ops: ops, graph: g}, nil
	case "sdnip":
		name, scaleStr, haveScale := strings.Cut(rest, ":")
		scale := 1.0
		if haveScale {
			var err error
			scale, err = strconv.ParseFloat(scaleStr, 64)
			if err != nil || scale <= 0 {
				return nil, fmt.Errorf("-feed %q: bad scale %q", spec, scaleStr)
			}
		}
		switch name {
		case "airtel1", "airtel2", "4switch":
		default:
			return nil, fmt.Errorf("-feed %q: unknown sdnip trace %q (want airtel1, airtel2, or 4switch)", spec, name)
		}
		tr, err := datasets.Build(name, scale)
		if err != nil {
			return nil, err
		}
		ops := make([]core.BatchOp, len(tr.Ops))
		for i, op := range tr.Ops {
			ops[i] = core.BatchOp{Insert: op.Insert, Rule: op.Rule}
		}
		return &feedSource{name: spec, ops: ops, graph: tr.Graph}, nil
	case "openflow":
		if rest == "" {
			return nil, fmt.Errorf("-feed %q: want openflow:<file>", spec)
		}
		f, err := os.Open(rest)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		trOps, err := openflow.DecodeOps(f)
		if err != nil {
			return nil, fmt.Errorf("-feed %q: %v", spec, err)
		}
		ops := make([]core.BatchOp, len(trOps))
		for i, op := range trOps {
			ops[i] = core.BatchOp{Insert: op.Insert, Rule: op.Rule}
		}
		// An openflow stream is ops only — it replays against whatever
		// topology -trace/-state loaded (graph stays nil).
		return &feedSource{name: spec, ops: ops}, nil
	default:
		return nil, fmt.Errorf("-feed %q: unknown source (want %s)", spec, feedUsage)
	}
}

// bgpFeed converts n synthetic BGP updates into rule churn on a minimal
// gateway topology: one ingress switch forwarding every announced prefix
// over its single uplink. Announcements insert a rule for the prefix
// (priority = prefix length, longest-match style), withdrawals remove
// it, and a re-announcement of a live prefix flaps it (remove + insert)
// — the working-set churn shape real RIB replay produces.
func bgpFeed(n int, seed int64) (*netgraph.Graph, []core.BatchOp) {
	g := netgraph.New()
	ingress := g.AddNode("ingress")
	peer := g.AddNode("peer")
	uplink := g.AddLink(ingress, peer)
	feed := bgp.NewFeed(seed, 0.3)
	live := make(map[ipnet.Prefix]core.RuleID)
	next := core.RuleID(1)
	ops := make([]core.BatchOp, 0, n)
	for _, u := range feed.Updates(n) {
		id, known := live[u.Prefix]
		switch u.Kind {
		case bgp.Announce:
			if known {
				ops = append(ops, core.RemoveOp(id)) // flap
			} else {
				id = next
				next++
				live[u.Prefix] = id
			}
			iv := u.Prefix.Interval()
			ops = append(ops, core.InsertOp(core.Rule{
				ID: id, Source: ingress, Link: uplink,
				Match: iv, Priority: core.Priority(u.Prefix.Len),
			}))
		case bgp.Withdraw:
			if known {
				ops = append(ops, core.RemoveOp(id))
				delete(live, u.Prefix)
			}
		}
	}
	return g, ops
}

// installFeedTopology rebuilds a feed's own topology into the server's
// graph (protocol ids match the feed's), refusing to mix with a
// topology that is already loaded — the feed's node/link ids would
// collide with it.
func installFeedTopology(s *server.Server, fs *feedSource) error {
	if fs.graph == nil {
		if s.Graph().NumNodes() == 0 {
			return fmt.Errorf("-feed %s: an openflow stream carries no topology; load one with -trace or -state", fs.name)
		}
		return nil
	}
	if s.Graph().NumNodes() != 0 {
		return fmt.Errorf("-feed %s: the feed defines its own topology; it cannot be combined with -trace or an existing -state", fs.name)
	}
	for v := netgraph.NodeID(0); int(v) < fs.graph.NumNodes(); v++ {
		s.Graph().AddNode(fs.graph.NodeName(v))
	}
	for _, l := range fs.graph.Links() {
		s.Graph().AddLink(l.Src, l.Dst)
	}
	return nil
}

// replayFeed streams the feed through the ingest ring and logs the
// sustained rate. IngestOps blocks under backpressure (the ring bounds
// buffered memory) and reports false when the server is shutting down
// or the stream references unknown topology — either way the replay
// stops; it never takes the server down.
func replayFeed(s *server.Server, fs *feedSource) {
	start := time.Now()
	n := 0
	for n < len(fs.ops) {
		end := n + feedChunk
		if end > len(fs.ops) {
			end = len(fs.ops)
		}
		if !s.IngestOps(fs.ops[n:end]) {
			fmt.Fprintf(os.Stderr, "dnserve: feed %s stopped after %d/%d ops (shutdown or refused chunk)\n",
				fs.name, n, len(fs.ops))
			return
		}
		n = end
	}
	s.IngestBarrier()
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "dnserve: feed %s replayed %d ops in %v (%.0f updates/s)\n",
		fs.name, n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
}
