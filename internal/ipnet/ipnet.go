// Package ipnet converts IP prefixes to and from the half-closed integer
// intervals that Delta-net's atoms partition (paper §3.1).
//
// An IPv4 CIDR prefix a.b.c.d/len denotes the half-closed interval
// [base : base + 2^(32-len)) over 32-bit destination addresses; e.g.
// 0.0.0.10/31 = [10 : 12) and 0.0.0.0/28 = [0 : 16), the paper's Table 1.
// Bounds are held in uint64 so the exclusive upper bound 2^32 (the paper's
// MAX) is representable. The same machinery generalizes to any fixed header
// width up to 63 bits via the Space type; the evaluation uses the 32-bit
// IPv4 space throughout, as the paper does.
package ipnet

import (
	"fmt"
	"strconv"
	"strings"
)

// Space describes a k-bit match field: destination addresses are integers in
// [0, 2^k). The paper fixes MIN = 0 and MAX = 2^k (§3.1).
type Space struct {
	Bits int
}

// IPv4 is the 32-bit destination-IP space used by all of the paper's
// experiments.
var IPv4 = Space{Bits: 32}

// Max returns the exclusive upper bound 2^k of the space.
func (s Space) Max() uint64 { return 1 << uint(s.Bits) }

// Contains reports whether the interval lies within the space.
func (s Space) Contains(iv Interval) bool {
	return iv.Lo < iv.Hi && iv.Hi <= s.Max()
}

// Interval is a half-closed interval [Lo : Hi) of destination addresses.
type Interval struct {
	Lo, Hi uint64
}

// Empty reports whether the interval contains no addresses.
func (iv Interval) Empty() bool { return iv.Lo >= iv.Hi }

// Size returns the number of addresses in the interval.
func (iv Interval) Size() uint64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Contains reports whether addr lies in the interval.
func (iv Interval) Contains(addr uint64) bool { return iv.Lo <= addr && addr < iv.Hi }

// Overlaps reports whether the two intervals share at least one address.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Lo < o.Hi && o.Lo < iv.Hi
}

// Intersect returns the overlap of the two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if lo > hi {
		hi = lo
	}
	return Interval{lo, hi}
}

// CoveredBy reports whether iv is fully inside o.
func (iv Interval) CoveredBy(o Interval) bool {
	return o.Lo <= iv.Lo && iv.Hi <= o.Hi
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%d:%d)", iv.Lo, iv.Hi)
}

// Prefix is a CIDR prefix in a k-bit space. Addr holds the network address
// in the low k bits; bits above Len are zero.
type Prefix struct {
	Addr uint64
	Len  int
	Bits int // width of the space; 32 for IPv4
}

// NewPrefix constructs a prefix in the IPv4 space, masking Addr to the
// prefix length.
func NewPrefix(addr uint64, length int) Prefix {
	return NewPrefixIn(IPv4, addr, length)
}

// NewPrefixIn constructs a prefix in the given space, masking addr down to
// the prefix length so that host bits are ignored.
func NewPrefixIn(s Space, addr uint64, length int) Prefix {
	if length < 0 {
		length = 0
	}
	if length > s.Bits {
		length = s.Bits
	}
	shift := uint(s.Bits - length)
	addr = (addr >> shift) << shift
	return Prefix{Addr: addr, Len: length, Bits: s.Bits}
}

// Interval returns the half-closed interval of addresses the prefix matches.
func (p Prefix) Interval() Interval {
	size := uint64(1) << uint(p.Bits-p.Len)
	return Interval{Lo: p.Addr, Hi: p.Addr + size}
}

// Contains reports whether addr matches the prefix.
func (p Prefix) Contains(addr uint64) bool { return p.Interval().Contains(addr) }

// Overlaps reports whether two prefixes share addresses; for CIDR prefixes
// this holds exactly when one contains the other.
func (p Prefix) Overlaps(o Prefix) bool { return p.Interval().Overlaps(o.Interval()) }

// String renders an IPv4-space prefix in dotted-quad CIDR form, and any
// other space as "addr/len".
func (p Prefix) String() string {
	if p.Bits == 32 {
		a := uint32(p.Addr)
		return fmt.Sprintf("%d.%d.%d.%d/%d", a>>24, a>>16&0xff, a>>8&0xff, a&0xff, p.Len)
	}
	return fmt.Sprintf("%d/%d", p.Addr, p.Len)
}

// ParsePrefix parses "a.b.c.d/len" (IPv4 CIDR) or "a.b.c.d" (host /32) into
// a Prefix in the IPv4 space. Host bits below the prefix length are masked
// off, matching router behaviour.
func ParsePrefix(s string) (Prefix, error) {
	addrPart := s
	length := 32
	if i := strings.IndexByte(s, '/'); i >= 0 {
		addrPart = s[:i]
		var err error
		length, err = strconv.Atoi(s[i+1:])
		if err != nil {
			return Prefix{}, fmt.Errorf("ipnet: bad prefix length in %q: %v", s, err)
		}
		if length < 0 || length > 32 {
			return Prefix{}, fmt.Errorf("ipnet: prefix length %d out of range in %q", length, s)
		}
	}
	parts := strings.Split(addrPart, ".")
	if len(parts) != 4 {
		return Prefix{}, fmt.Errorf("ipnet: bad IPv4 address %q", addrPart)
	}
	var addr uint64
	for _, part := range parts {
		o, err := strconv.Atoi(part)
		if err != nil || o < 0 || o > 255 {
			return Prefix{}, fmt.Errorf("ipnet: bad octet %q in %q", part, s)
		}
		addr = addr<<8 | uint64(o)
	}
	return NewPrefix(addr, length), nil
}

// MustParsePrefix is ParsePrefix that panics on error; for tests, examples
// and table-driven literals.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// PrefixFromInterval recovers the CIDR prefix denoting iv, if iv is
// exactly a prefix-aligned block (size a power of two, base aligned to the
// size). Rules generated from prefixes round-trip through intervals
// losslessly; arbitrary intervals return ok == false.
func PrefixFromInterval(s Space, iv Interval) (Prefix, bool) {
	size := iv.Size()
	if size == 0 || size&(size-1) != 0 || iv.Lo%size != 0 || iv.Hi > s.Max() {
		return Prefix{}, false
	}
	length := s.Bits
	for b := uint64(1); b < size; b <<= 1 {
		length--
	}
	return Prefix{Addr: iv.Lo, Len: length, Bits: s.Bits}, true
}

// IntervalToPrefixes decomposes an arbitrary half-closed interval into the
// minimal list of CIDR prefixes covering it exactly, in ascending address
// order. This is the inverse direction of Prefix.Interval and demonstrates
// the paper's §5 observation that an atom such as [0:10) is generally *not*
// a single prefix (it needs at least two).
func IntervalToPrefixes(s Space, iv Interval) []Prefix {
	var out []Prefix
	lo, hi := iv.Lo, iv.Hi
	if hi > s.Max() {
		hi = s.Max()
	}
	for lo < hi {
		// Largest block size that is aligned at lo...
		size := lo & (^lo + 1) // lowest set bit of lo; 0 means unconstrained
		if size == 0 {
			size = s.Max()
		}
		// ...and that does not overshoot hi.
		for size > hi-lo {
			size >>= 1
		}
		length := s.Bits
		for b := uint64(1); b < size; b <<= 1 {
			length--
		}
		out = append(out, Prefix{Addr: lo, Len: length, Bits: s.Bits})
		lo += size
	}
	return out
}

// FormatAddr renders a 32-bit address in dotted-quad form.
func FormatAddr(addr uint64) string {
	a := uint32(addr)
	return fmt.Sprintf("%d.%d.%d.%d", a>>24, a>>16&0xff, a>>8&0xff, a&0xff)
}
