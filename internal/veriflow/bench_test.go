package veriflow

import (
	"math/rand"
	"testing"

	"deltanet/internal/core"
	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// loadEngine populates an engine with n overlapping prefix rules over a
// mesh, returning it with the rule list.
func loadEngine(b *testing.B, n int) (*Engine, []Rule, *netgraph.Graph) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := netgraph.New()
	var nodes []netgraph.NodeID
	for i := 0; i < 10; i++ {
		nodes = append(nodes, g.AddNode(string(rune('a'+i))))
	}
	var links []netgraph.LinkID
	for i := range nodes {
		for j := range nodes {
			if i != j {
				links = append(links, g.AddLink(nodes[i], nodes[j]))
			}
		}
	}
	e := NewEngine(g)
	rules := make([]Rule, n)
	for i := range rules {
		l := links[rng.Intn(len(links))]
		length := 8 + rng.Intn(17)
		rules[i] = Rule{
			ID:       core.RuleID(i + 1),
			Source:   g.Link(l).Src,
			Link:     l,
			Prefix:   ipnet.NewPrefix(uint64(rng.Intn(1<<24))<<8, length),
			Priority: core.Priority(rng.Intn(1 << 10)),
		}
		if _, err := e.InsertRule(rules[i]); err != nil {
			b.Fatal(err)
		}
	}
	return e, rules, g
}

func BenchmarkInsertWithVerification(b *testing.B) {
	e, _, g := loadEngine(b, 2000)
	rng := rand.New(rand.NewSource(2))
	links := g.Links()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := links[rng.Intn(len(links))]
		r := Rule{
			ID:       core.RuleID(1<<20 + i),
			Source:   l.Src,
			Link:     l.ID,
			Prefix:   ipnet.NewPrefix(uint64(rng.Intn(1<<24))<<8, 8+rng.Intn(17)),
			Priority: core.Priority(rng.Intn(1 << 10)),
		}
		if _, err := e.InsertRule(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAffectedECs(b *testing.B) {
	e, _, _ := loadEngine(b, 5000)
	p := ipnet.MustParsePrefix("0.0.0.0/4") // wide prefix: many overlaps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AffectedECs(p)
	}
}

func BenchmarkForwardingGraph(b *testing.B) {
	e, rules, _ := loadEngine(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ec := rules[i%len(rules)].Prefix.Interval()
		e.ForwardingGraph(ipnet.Interval{Lo: ec.Lo, Hi: ec.Lo + 1})
	}
}

func BenchmarkWhatIfLinkFailure(b *testing.B) {
	e, _, g := loadEngine(b, 3000)
	links := g.Links()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.WhatIfLinkFailure(links[i%len(links)].ID, false)
	}
}
