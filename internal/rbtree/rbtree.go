// Package rbtree provides a generic left-leaning-free, classic red-black
// tree with ordered iteration, arbitrary deletion, min/max access, and deep
// cloning.
//
// Delta-net uses balanced binary search trees in two roles (paper §3.1–3.2):
// the ordered boundary map M, and the per-(atom, source) priority trees held
// in the owner structure. Both need logarithmic insert, delete and lookup;
// the owner trees additionally need Max (the highest-priority rule) and
// Clone (the owner[α′] ← owner[α] copy in Algorithm 1, line 4). A single
// generic implementation serves both.
package rbtree

// color of a node. The zero value is red, which is what freshly inserted
// nodes must be, so newNode needs no explicit color assignment.
type color bool

const (
	red   color = false
	black color = true
)

// Node is a single element of the tree. Nodes are owned by the tree; callers
// must not retain them across mutations.
type Node[K any, V any] struct {
	Key   K
	Value V

	left, right, parent *Node[K, V]
	color               color
}

// Tree is a red-black tree ordered by a comparison function.
// The zero Tree is not usable; construct with New.
type Tree[K any, V any] struct {
	root *Node[K, V]
	size int
	cmp  func(a, b K) int
}

// New returns an empty tree ordered by cmp, which must return a negative
// number, zero, or a positive number as a < b, a == b, a > b.
func New[K any, V any](cmp func(a, b K) int) *Tree[K, V] {
	return &Tree[K, V]{cmp: cmp}
}

// Len reports the number of nodes in the tree.
func (t *Tree[K, V]) Len() int { return t.size }

// Empty reports whether the tree has no nodes.
func (t *Tree[K, V]) Empty() bool { return t.size == 0 }

// Get returns the value stored under key and whether it was present.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	if n := t.find(key); n != nil {
		return n.Value, true
	}
	var zero V
	return zero, false
}

// Has reports whether key is present.
func (t *Tree[K, V]) Has(key K) bool { return t.find(key) != nil }

func (t *Tree[K, V]) find(key K) *Node[K, V] {
	n := t.root
	for n != nil {
		c := t.cmp(key, n.Key)
		switch {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// Insert stores value under key. If the key already exists its value is
// replaced and Insert reports false; otherwise a new node is created and
// Insert reports true.
func (t *Tree[K, V]) Insert(key K, value V) bool {
	var parent *Node[K, V]
	link := &t.root
	for *link != nil {
		parent = *link
		c := t.cmp(key, parent.Key)
		switch {
		case c < 0:
			link = &parent.left
		case c > 0:
			link = &parent.right
		default:
			parent.Value = value
			return false
		}
	}
	n := &Node[K, V]{Key: key, Value: value, parent: parent}
	*link = n
	t.size++
	t.insertFixup(n)
	return true
}

func (t *Tree[K, V]) insertFixup(n *Node[K, V]) {
	for n.parent != nil && n.parent.color == red {
		g := n.parent.parent // grandparent exists: the root is black
		if n.parent == g.left {
			u := g.right
			if u != nil && u.color == red {
				n.parent.color = black
				u.color = black
				g.color = red
				n = g
				continue
			}
			if n == n.parent.right {
				n = n.parent
				t.rotateLeft(n)
			}
			n.parent.color = black
			g.color = red
			t.rotateRight(g)
		} else {
			u := g.left
			if u != nil && u.color == red {
				n.parent.color = black
				u.color = black
				g.color = red
				n = g
				continue
			}
			if n == n.parent.left {
				n = n.parent
				t.rotateRight(n)
			}
			n.parent.color = black
			g.color = red
			t.rotateLeft(g)
		}
	}
	t.root.color = black
}

func (t *Tree[K, V]) rotateLeft(x *Node[K, V]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[K, V]) rotateRight(x *Node[K, V]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

// Delete removes key from the tree and reports whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	n := t.find(key)
	if n == nil {
		return false
	}
	t.deleteNode(n)
	return true
}

// deleteNode removes n from the tree using the classic CLRS scheme.
func (t *Tree[K, V]) deleteNode(z *Node[K, V]) {
	t.size--
	y := z
	yOrig := y.color
	var x, xParent *Node[K, V]
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = minNode(z.right)
		yOrig = y.color
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yOrig == black {
		t.deleteFixup(x, xParent)
	}
	// Detach z fully so stale pointers cannot keep subtrees alive.
	z.left, z.right, z.parent = nil, nil, nil
}

func (t *Tree[K, V]) transplant(u, v *Node[K, V]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func isBlack[K any, V any](n *Node[K, V]) bool { return n == nil || n.color == black }

func (t *Tree[K, V]) deleteFixup(x, parent *Node[K, V]) {
	for x != t.root && isBlack(x) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if w.color == red {
				w.color = black
				parent.color = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if isBlack(w.left) && isBlack(w.right) {
				w.color = red
				x = parent
				parent = x.parent
				continue
			}
			if isBlack(w.right) {
				w.left.color = black
				w.color = red
				t.rotateRight(w)
				w = parent.right
			}
			w.color = parent.color
			parent.color = black
			w.right.color = black
			t.rotateLeft(parent)
			x = t.root
			parent = nil
		} else {
			w := parent.left
			if w.color == red {
				w.color = black
				parent.color = red
				t.rotateRight(parent)
				w = parent.left
			}
			if isBlack(w.right) && isBlack(w.left) {
				w.color = red
				x = parent
				parent = x.parent
				continue
			}
			if isBlack(w.left) {
				w.right.color = black
				w.color = red
				t.rotateLeft(w)
				w = parent.left
			}
			w.color = parent.color
			parent.color = black
			w.left.color = black
			t.rotateRight(parent)
			x = t.root
			parent = nil
		}
	}
	if x != nil {
		x.color = black
	}
}

func minNode[K any, V any](n *Node[K, V]) *Node[K, V] {
	for n.left != nil {
		n = n.left
	}
	return n
}

func maxNode[K any, V any](n *Node[K, V]) *Node[K, V] {
	for n.right != nil {
		n = n.right
	}
	return n
}

// Min returns the node with the smallest key, or nil if the tree is empty.
func (t *Tree[K, V]) Min() *Node[K, V] {
	if t.root == nil {
		return nil
	}
	return minNode(t.root)
}

// Max returns the node with the largest key, or nil if the tree is empty.
// For owner trees keyed by priority this is bst.highest_priority_rule().
func (t *Tree[K, V]) Max() *Node[K, V] {
	if t.root == nil {
		return nil
	}
	return maxNode(t.root)
}

// Floor returns the node with the largest key <= key, or nil.
func (t *Tree[K, V]) Floor(key K) *Node[K, V] {
	var best *Node[K, V]
	n := t.root
	for n != nil {
		c := t.cmp(key, n.Key)
		switch {
		case c < 0:
			n = n.left
		case c > 0:
			best = n
			n = n.right
		default:
			return n
		}
	}
	return best
}

// Ceil returns the node with the smallest key >= key, or nil.
func (t *Tree[K, V]) Ceil(key K) *Node[K, V] {
	var best *Node[K, V]
	n := t.root
	for n != nil {
		c := t.cmp(key, n.Key)
		switch {
		case c < 0:
			best = n
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n
		}
	}
	return best
}

// Lower returns the node with the largest key strictly < key, or nil.
func (t *Tree[K, V]) Lower(key K) *Node[K, V] {
	var best *Node[K, V]
	n := t.root
	for n != nil {
		if t.cmp(key, n.Key) > 0 {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	return best
}

// Higher returns the node with the smallest key strictly > key, or nil.
func (t *Tree[K, V]) Higher(key K) *Node[K, V] {
	var best *Node[K, V]
	n := t.root
	for n != nil {
		if t.cmp(key, n.Key) < 0 {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	return best
}

// Next returns the in-order successor of n, or nil.
func (n *Node[K, V]) Next() *Node[K, V] {
	if n.right != nil {
		return minNode(n.right)
	}
	p := n.parent
	for p != nil && n == p.right {
		n = p
		p = p.parent
	}
	return p
}

// Prev returns the in-order predecessor of n, or nil.
func (n *Node[K, V]) Prev() *Node[K, V] {
	if n.left != nil {
		return maxNode(n.left)
	}
	p := n.parent
	for p != nil && n == p.left {
		n = p
		p = p.parent
	}
	return p
}

// Ascend calls fn for each node in key order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(k K, v V) bool) {
	for n := t.Min(); n != nil; n = n.Next() {
		if !fn(n.Key, n.Value) {
			return
		}
	}
}

// AscendRange calls fn for each node with lo <= key < hi, in key order,
// until fn returns false.
func (t *Tree[K, V]) AscendRange(lo, hi K, fn func(k K, v V) bool) {
	for n := t.Ceil(lo); n != nil && t.cmp(n.Key, hi) < 0; n = n.Next() {
		if !fn(n.Key, n.Value) {
			return
		}
	}
}

// Descend calls fn for each node in reverse key order until fn returns false.
func (t *Tree[K, V]) Descend(fn func(k K, v V) bool) {
	for n := t.Max(); n != nil; n = n.Prev() {
		if !fn(n.Key, n.Value) {
			return
		}
	}
}

// Clone returns a deep structural copy of the tree. Keys and values are
// copied by assignment. The copy shares no nodes with the original, so the
// two may diverge independently — exactly what Algorithm 1's owner copy
// (line 4) requires when an atom splits.
func (t *Tree[K, V]) Clone() *Tree[K, V] {
	c := &Tree[K, V]{cmp: t.cmp, size: t.size}
	c.root = cloneNode(t.root, nil)
	return c
}

func cloneNode[K any, V any](n, parent *Node[K, V]) *Node[K, V] {
	if n == nil {
		return nil
	}
	m := &Node[K, V]{Key: n.Key, Value: n.Value, color: n.color, parent: parent}
	m.left = cloneNode(n.left, m)
	m.right = cloneNode(n.right, m)
	return m
}

// Clear removes all nodes.
func (t *Tree[K, V]) Clear() {
	t.root = nil
	t.size = 0
}

// Keys returns all keys in ascending order. Intended for tests and tooling.
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	t.Ascend(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Values returns all values in ascending key order. Intended for tests and
// tooling.
func (t *Tree[K, V]) Values() []V {
	out := make([]V, 0, t.size)
	t.Ascend(func(_ K, v V) bool {
		out = append(out, v)
		return true
	})
	return out
}

// CheckInvariants verifies the red-black properties and key ordering,
// returning a descriptive non-nil error message string if violated (empty
// string when valid). It is exported for use by tests of this package and of
// packages that embed trees in larger structures.
func (t *Tree[K, V]) CheckInvariants() string {
	if t.root == nil {
		if t.size != 0 {
			return "empty tree with nonzero size"
		}
		return ""
	}
	if t.root.color != black {
		return "root is not black"
	}
	if t.root.parent != nil {
		return "root has a parent"
	}
	count := 0
	msg := ""
	var walk func(n *Node[K, V]) int // returns black height
	walk = func(n *Node[K, V]) int {
		if n == nil {
			return 1
		}
		count++
		if n.color == red {
			if !isBlack(n.left) || !isBlack(n.right) {
				msg = "red node with red child"
			}
		}
		if n.left != nil {
			if n.left.parent != n {
				msg = "broken parent pointer (left)"
			}
			if t.cmp(n.left.Key, n.Key) >= 0 {
				msg = "left child key not less than parent"
			}
		}
		if n.right != nil {
			if n.right.parent != n {
				msg = "broken parent pointer (right)"
			}
			if t.cmp(n.right.Key, n.Key) <= 0 {
				msg = "right child key not greater than parent"
			}
		}
		lh := walk(n.left)
		rh := walk(n.right)
		if lh != rh {
			msg = "unequal black heights"
		}
		h := lh
		if n.color == black {
			h++
		}
		return h
	}
	walk(t.root)
	if msg != "" {
		return msg
	}
	if count != t.size {
		return "size does not match node count"
	}
	return ""
}
