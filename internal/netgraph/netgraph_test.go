package netgraph

import "testing"

func TestAddNode(t *testing.T) {
	g := New()
	a := g.AddNode("s1")
	b := g.AddNode("s2")
	if a == b {
		t.Fatal("distinct names share id")
	}
	if g.AddNode("s1") != a {
		t.Fatal("AddNode not idempotent per name")
	}
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes=%d", g.NumNodes())
	}
	if g.NodeByName("s2") != b || g.NodeByName("nope") != NoNode {
		t.Fatal("NodeByName wrong")
	}
	if g.NodeName(a) != "s1" {
		t.Fatalf("NodeName=%q", g.NodeName(a))
	}
	if g.NodeName(99) == "" {
		t.Fatal("NodeName out of range should still format")
	}
}

func TestAddLink(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab := g.AddLink(a, b)
	ac := g.AddLink(a, c)
	ba := g.AddLink(b, a)
	if g.AddLink(a, b) != ab {
		t.Fatal("duplicate link not reused")
	}
	if g.NumLinks() != 3 {
		t.Fatalf("NumLinks=%d", g.NumLinks())
	}
	if g.FindLink(a, b) != ab || g.FindLink(b, c) != NoLink {
		t.Fatal("FindLink wrong")
	}
	l := g.Link(ab)
	if l.Src != a || l.Dst != b || l.ID != ab {
		t.Fatalf("Link record %+v", l)
	}
	if len(g.Out(a)) != 2 || len(g.In(a)) != 1 {
		t.Fatalf("adjacency: out=%v in=%v", g.Out(a), g.In(a))
	}
	_ = ac
	_ = ba
	if len(g.Links()) != 3 {
		t.Fatal("Links() wrong length")
	}
}

func TestDropLink(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	if g.DropNode() != NoNode {
		t.Fatal("drop node should not exist yet")
	}
	da := g.DropLink(a)
	if g.DropLink(a) != da {
		t.Fatal("DropLink not idempotent")
	}
	db := g.DropLink(b)
	if da == db {
		t.Fatal("per-source drop links must differ")
	}
	sink := g.DropNode()
	if sink == NoNode {
		t.Fatal("drop node missing")
	}
	if len(g.Out(sink)) != 0 {
		t.Fatal("drop sink must have no out-edges")
	}
	if !g.IsDropLink(da) || !g.IsDropLink(db) {
		t.Fatal("IsDropLink false negative")
	}
	ab := g.AddLink(a, b)
	if g.IsDropLink(ab) {
		t.Fatal("IsDropLink false positive")
	}
}

func TestIsDropLinkWithoutSink(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	ab := g.AddLink(a, b)
	if g.IsDropLink(ab) {
		t.Fatal("IsDropLink without sink")
	}
}

func TestPortNode(t *testing.T) {
	g := New()
	p1 := g.PortNode("s1", 1)
	p2 := g.PortNode("s1", 2)
	if p1 == p2 {
		t.Fatal("ports collapsed")
	}
	if g.PortNode("s1", 1) != p1 {
		t.Fatal("PortNode not stable")
	}
	if g.NodeName(p1) != "s1@1" {
		t.Fatalf("port node name %q", g.NodeName(p1))
	}
}

func TestClone(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddLink(a, b)
	g.DropLink(a)
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumLinks() != g.NumLinks() {
		t.Fatal("clone size mismatch")
	}
	// Divergence.
	c.AddNode("x")
	c.AddLink(b, a)
	if g.NumNodes() == c.NumNodes() || g.NumLinks() == c.NumLinks() {
		t.Fatal("clone aliases original")
	}
	if c.NodeByName("a") != a || c.FindLink(a, b) == NoLink {
		t.Fatal("clone contents wrong")
	}
	if !c.IsDropLink(c.DropLink(a)) {
		t.Fatal("clone drop state wrong")
	}
}
