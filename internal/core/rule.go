// Package core implements the Delta-net engine: the atom representation
// (paper §3.1) and the incremental edge-labelling algorithms for rule
// insertion and removal (paper §3.2, Algorithms 1 and 2).
//
// The engine maintains three global structures, exactly as the paper
// describes:
//
//   - M, the ordered boundary map from interval bounds to atom identifiers
//     (internal/intervalmap);
//   - label[link], a dynamic bitset of atoms per directed link: the atoms a
//     packet's designated header field may fall in for the packet to be
//     forwarded along the link (internal/bitset);
//   - owner[α][source], the rules at source whose interval contains atom
//     α, ordered by priority; the maximum is the rule that "owns" α at
//     that node. The paper prescribes a balanced BST per (atom, source);
//     this engine stores the same ordered sets flat — a sorted cell
//     directory plus packed rule-slot slab per atom (owner.go) — which
//     preserves the logarithmic search bound and removes the per-node
//     heap allocations.
//
// Each rule insertion or removal yields a Delta — the delta-graph of §3.3 —
// from which property checkers (internal/check) verify invariants such as
// loop freedom incrementally.
package core

import (
	"fmt"

	"deltanet/internal/ipnet"
	"deltanet/internal/netgraph"
)

// RuleID identifies a rule. Callers choose ids; they must be unique among
// live rules.
type RuleID int64

// Priority orders rules within one forwarding table: higher wins. Rules
// with overlapping intervals in the same table should have distinct
// priorities (paper footnote 2, OpenFlow semantics); the engine breaks
// remaining ties deterministically by RuleID, larger id winning, and this
// tie-break is part of the engine's documented behaviour rather than an
// error.
type Priority int32

// Rule is an IP-prefix forwarding rule: at node Source, packets whose
// designated field falls in Match are forwarded along Link, unless a
// higher-priority rule at Source also matches. A rule with Link ==
// netgraph.NoLink drops matching packets (the engine routes it to the
// per-node drop link so Algorithms 1 and 2 stay uniform).
type Rule struct {
	ID       RuleID
	Source   netgraph.NodeID
	Link     netgraph.LinkID
	Match    ipnet.Interval
	Priority Priority
}

// FromPrefix is a convenience constructor for the common CIDR case.
func FromPrefix(id RuleID, src netgraph.NodeID, link netgraph.LinkID, p ipnet.Prefix, prio Priority) Rule {
	return Rule{ID: id, Source: src, Link: link, Match: p.Interval(), Priority: prio}
}

func (r Rule) String() string {
	return fmt.Sprintf("rule %d @node %d prio %d %v -> link %d", r.ID, r.Source, r.Priority, r.Match, r.Link)
}

// prioKey orders the owner BSTs: by priority, then by rule id so that
// overlapping equal-priority rules still have a deterministic winner.
type prioKey struct {
	prio Priority
	id   RuleID
}

func cmpPrioKey(a, b prioKey) int {
	switch {
	case a.prio < b.prio:
		return -1
	case a.prio > b.prio:
		return 1
	case a.id < b.id:
		return -1
	case a.id > b.id:
		return 1
	default:
		return 0
	}
}

func (r *Rule) key() prioKey { return prioKey{prio: r.Priority, id: r.ID} }
