// Allpairs: the Datalog-style pre-deployment query of the paper's §3.3 —
// Algorithm 3 computes which packets can flow between EVERY pair of nodes
// in one pass, the class of query that per-update checkers cannot answer
// without rebuilding state per class.
//
// We build a campus data plane, run the serial and parallel variants of
// the all-pairs transitive closure, verify they agree, and use the result
// to answer an isolation question ("can guest subnets reach the core?").
//
// Run with: go run ./examples/allpairs
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"deltanet/internal/bgp"
	"deltanet/internal/check"
	"deltanet/internal/core"
	"deltanet/internal/intervalmap"
	"deltanet/internal/routes"
	"deltanet/internal/topo"
)

func main() {
	g, err := topo.Build("berkeley")
	if err != nil {
		log.Fatal(err)
	}
	n := core.NewNetwork(g, core.Options{})

	// Populate the campus with shortest-path routes for 120 prefixes.
	feed := bgp.NewFeed(7, 0.3)
	comp := routes.NewCompiler(g, 8)
	switches := topo.SwitchNodes(g)
	for i := 0; i < 120; i++ {
		for _, r := range comp.RulesForPrefix(feed.Next(), switches) {
			if _, err := n.InsertRule(r); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("campus data plane: %d nodes, %d rules, %d atoms\n",
		g.NumNodes(), n.NumRules(), n.NumAtoms())

	t0 := time.Now()
	serial := check.AllPairs(n)
	tSerial := time.Since(t0)

	t0 = time.Now()
	parallel := check.AllPairsParallel(n, 0)
	tParallel := time.Since(t0)

	// Cross-validate.
	pairs, connected := 0, 0
	for i := range serial {
		for j := range serial[i] {
			if i == j {
				continue
			}
			if !serial[i][j].Equal(parallel[i][j]) {
				log.Fatalf("serial/parallel disagree at (%d,%d)", i, j)
			}
			pairs++
			if !serial[i][j].Empty() {
				connected++
			}
		}
	}
	fmt.Printf("all-pairs closure over %d ordered pairs: %d carry traffic\n", pairs, connected)
	fmt.Printf("  serial:   %v\n  parallel: %v (%d CPUs)\n",
		tSerial.Round(time.Microsecond), tParallel.Round(time.Microsecond), runtime.GOMAXPROCS(0))

	// Isolation query from the closure: do any access switches exchange
	// traffic directly visible at the core?
	acc1, core1 := g.NodeByName("acc1"), g.NodeByName("core1")
	flows := serial[acc1][core1]
	fmt.Printf("\npackets flowing acc1 -> core1: %d atom class(es)\n", flows.Len())
	if flows.Len() > 0 {
		shown := 0
		flows.ForEach(func(a int) bool {
			iv, _ := n.AtomInterval(intervalmap.AtomID(a))
			fmt.Printf("  %v\n", iv)
			shown++
			return shown < 3
		})
	}
}
